#include "baseband/qpsk.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace acorn::baseband {
namespace {

std::vector<std::uint8_t> random_bits(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
  return bits;
}

TEST(Qpsk, MapProducesUnitEnergySymbols) {
  for (int b0 : {0, 1}) {
    for (int b1 : {0, 1}) {
      EXPECT_NEAR(std::abs(qpsk_map(b0, b1)), 1.0, 1e-12);
    }
  }
}

TEST(Qpsk, FourDistinctPoints) {
  const Cx p00 = qpsk_map(0, 0);
  const Cx p01 = qpsk_map(0, 1);
  const Cx p10 = qpsk_map(1, 0);
  const Cx p11 = qpsk_map(1, 1);
  EXPECT_GT(std::abs(p00 - p01), 0.5);
  EXPECT_GT(std::abs(p00 - p10), 0.5);
  EXPECT_GT(std::abs(p00 - p11), 0.5);
  EXPECT_GT(std::abs(p01 - p10), 0.5);
}

TEST(Qpsk, GrayMappingAdjacentPointsDifferInOneBit) {
  // Horizontally adjacent constellation points differ only in bit0,
  // vertically adjacent only in bit1.
  int b0 = 0;
  int b1 = 0;
  qpsk_demap(Cx(1.0, 1.0), b0, b1);
  const int q1_b0 = b0, q1_b1 = b1;
  qpsk_demap(Cx(-1.0, 1.0), b0, b1);
  EXPECT_NE(q1_b0, b0);
  EXPECT_EQ(q1_b1, b1);
}

TEST(Qpsk, RoundTripNoiseless) {
  const auto bits = random_bits(1000, 3);
  const auto symbols = qpsk_modulate(bits);
  const auto decoded = qpsk_demodulate(symbols);
  ASSERT_EQ(decoded.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(decoded[i], bits[i]) << i;
  }
}

TEST(Qpsk, OddBitCountIsPadded) {
  const std::vector<std::uint8_t> bits = {1, 0, 1};
  const auto symbols = qpsk_modulate(bits);
  EXPECT_EQ(symbols.size(), 2u);
  const auto decoded = qpsk_demodulate(symbols);
  EXPECT_EQ(decoded.size(), 4u);
  EXPECT_EQ(decoded[0], 1);
  EXPECT_EQ(decoded[1], 0);
  EXPECT_EQ(decoded[2], 1);
  EXPECT_EQ(decoded[3], 0);  // pad bit
}

TEST(Qpsk, ResilientToSmallNoise) {
  const auto bits = random_bits(2000, 5);
  auto symbols = qpsk_modulate(bits);
  util::Rng rng(6);
  for (auto& s : symbols) {
    s += Cx(rng.normal(0.0, 0.1), rng.normal(0.0, 0.1));
  }
  const auto decoded = qpsk_demodulate(symbols);
  for (std::size_t i = 0; i < bits.size(); ++i) EXPECT_EQ(decoded[i], bits[i]);
}

TEST(Dqpsk, RoundTripNoiseless) {
  const auto bits = random_bits(2000, 7);
  const auto symbols = dqpsk_modulate(bits);
  const auto decoded = dqpsk_demodulate(symbols);
  ASSERT_GE(decoded.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(decoded[i], bits[i]) << i;
  }
}

TEST(Dqpsk, SymbolsHaveUnitEnergy) {
  const auto bits = random_bits(100, 9);
  for (const Cx s : dqpsk_modulate(bits)) {
    EXPECT_NEAR(std::abs(s), 1.0, 1e-12);
  }
}

TEST(Dqpsk, ImmuneToCommonPhaseRotation) {
  // The differential property: a constant phase offset on every symbol
  // leaves the decoded bits unchanged.
  const auto bits = random_bits(500, 11);
  auto symbols = dqpsk_modulate(bits);
  const Cx rot = std::polar(1.0, 0.7);
  // A common rotation multiplies every symbol; the first difference picks
  // up the rotation though, so skip the first dibit in the comparison.
  for (auto& s : symbols) s *= rot;
  const auto decoded = dqpsk_demodulate(symbols);
  for (std::size_t i = 2; i < bits.size(); ++i) {
    EXPECT_EQ(decoded[i], bits[i]) << i;
  }
}

TEST(Dqpsk, DiffersFromCoherentQpskStream) {
  const auto bits = random_bits(64, 13);
  const auto coherent = qpsk_modulate(bits);
  const auto differential = dqpsk_modulate(bits);
  ASSERT_EQ(coherent.size(), differential.size());
  bool any_different = false;
  for (std::size_t i = 0; i < coherent.size(); ++i) {
    if (std::abs(coherent[i] - differential[i]) > 1e-9) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace acorn::baseband
