// The flat-engine contract: sim::NetSnapshot must reproduce the legacy
// object-at-a-time evaluator (Wlan::evaluate_reference) bit-for-bit —
// every ApStats field of every cell, on randomized deployments covering
// all four combos of sinr_interference x weighted_contention, both
// transports, and degenerate associations (roamed / disconnected
// clients).
#include "sim/netkernel.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/allocation.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace acorn::sim {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

// Random deployment: 1-5 APs with 0-3 clients each, random link
// qualities, random AP-AP and cross-cell losses (spanning isolated,
// contending and hidden-interferer regimes). Mirrors the oracle-cache
// equivalence test's generator.
ScenarioBuilder random_builder(util::Rng& rng, bool sinr, bool weighted) {
  ScenarioBuilder b;
  const int n_aps = static_cast<int>(rng.uniform_int(1, 5));
  for (int a = 0; a < n_aps; ++a) {
    CellSpec spec;
    const int n_clients = static_cast<int>(rng.uniform_int(0, 3));
    for (int c = 0; c < n_clients; ++c) {
      spec.client_losses_db.push_back(rng.uniform(78.0, 112.0));
    }
    b.cells.push_back(spec);
  }
  b.ap_ap_loss_db = rng.uniform(80.0, 140.0);
  b.cross_loss_db = rng.uniform(95.0, 140.0);
  b.config.sinr_interference = sinr;
  b.config.weighted_contention = weighted;
  return b;
}

net::Association random_association(const ScenarioBuilder& b,
                                    util::Rng& rng) {
  net::Association assoc = b.intended_association();
  const int n_aps = static_cast<int>(b.cells.size());
  for (int& owner : assoc) {
    const double roll = rng.uniform();
    if (roll < 0.15) {
      owner = net::kUnassociated;
    } else if (roll < 0.35) {
      owner = static_cast<int>(rng.uniform_int(0, n_aps - 1));
    }
  }
  return assoc;
}

void expect_identical(const Evaluation& got, const Evaluation& expected) {
  EXPECT_EQ(got.total_goodput_bps, expected.total_goodput_bps);
  ASSERT_EQ(got.per_ap.size(), expected.per_ap.size());
  for (std::size_t a = 0; a < got.per_ap.size(); ++a) {
    const ApStats& g = got.per_ap[a];
    const ApStats& e = expected.per_ap[a];
    EXPECT_EQ(g.ap_id, e.ap_id);
    EXPECT_EQ(g.num_clients, e.num_clients);
    EXPECT_EQ(g.medium_share, e.medium_share);
    EXPECT_EQ(g.atd_s_per_bit, e.atd_s_per_bit);
    EXPECT_EQ(g.mac_throughput_bps, e.mac_throughput_bps);
    EXPECT_EQ(g.goodput_bps, e.goodput_bps);
    EXPECT_EQ(g.client_ids, e.client_ids);
    EXPECT_EQ(g.client_delay_s_per_bit, e.client_delay_s_per_bit);
    EXPECT_EQ(g.client_goodput_bps, e.client_goodput_bps);
  }
}

TEST(NetSnapshot, BitIdenticalToReferenceOnRandomTopologies) {
  util::Rng rng(0xF1A7);
  int scenarios = 0;
  for (int trial = 0; trial < 56; ++trial) {
    const bool sinr = (trial % 2) == 1;
    const bool weighted = (trial / 2 % 2) == 1;
    const ScenarioBuilder b = random_builder(rng, sinr, weighted);
    const Wlan wlan = b.build();
    const net::Association assoc = random_association(b, rng);
    const NetSnapshot snap(wlan, assoc);
    const core::ChannelAllocator alloc{net::ChannelPlan(6)};
    for (int rep = 0; rep < 5; ++rep) {
      const net::ChannelAssignment f =
          alloc.random_assignment(wlan.topology().num_aps(), rng);
      const mac::TrafficType traffic =
          (rep % 2) == 0 ? mac::TrafficType::kUdp : mac::TrafficType::kTcp;
      const Evaluation expected =
          wlan.evaluate_reference(assoc, f, traffic);
      SCOPED_TRACE("trial " + std::to_string(trial) + " rep " +
                   std::to_string(rep) + " sinr=" + std::to_string(sinr) +
                   " weighted=" + std::to_string(weighted));
      expect_identical(snap.evaluate(f, traffic), expected);
      // And the public entry point, which delegates to a fresh snapshot.
      expect_identical(wlan.evaluate(assoc, f, traffic), expected);
    }
    ++scenarios;
  }
  EXPECT_GE(scenarios, 50);
}

TEST(NetSnapshot, CellClientsMatchClientsOf) {
  util::Rng rng(0xCE11);
  const ScenarioBuilder b = random_builder(rng, false, false);
  const Wlan wlan = b.build();
  const net::Association assoc = random_association(b, rng);
  const NetSnapshot snap(wlan, assoc);
  for (int ap = 0; ap < wlan.topology().num_aps(); ++ap) {
    const std::vector<int> expected = wlan.clients_of(assoc, ap);
    const std::span<const int> got = snap.cell_clients(ap);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]);
    }
  }
}

TEST(NetSnapshot, SharesMatchInterferenceHelpers) {
  util::Rng rng(0x54A2);
  for (int trial = 0; trial < 10; ++trial) {
    const ScenarioBuilder b = random_builder(rng, false, false);
    const Wlan wlan = b.build();
    const net::Association assoc = b.intended_association();
    const NetSnapshot snap(wlan, assoc);
    const core::ChannelAllocator alloc{net::ChannelPlan(6)};
    const net::ChannelAssignment f =
        alloc.random_assignment(wlan.topology().num_aps(), rng);
    std::vector<double> activity;
    snap.unweighted_shares(f, activity);
    ASSERT_EQ(activity.size(),
              static_cast<std::size_t>(wlan.topology().num_aps()));
    for (int ap = 0; ap < wlan.topology().num_aps(); ++ap) {
      EXPECT_EQ(activity[static_cast<std::size_t>(ap)],
                net::medium_access_share(snap.graph(), f, ap));
      EXPECT_EQ(snap.weighted_share(f, ap),
                net::medium_access_share_weighted(snap.graph(), f, ap));
    }
  }
}

TEST(NetSnapshot, RejectsMalformedInputsLikeTheReference) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const Wlan wlan = b.build();
  EXPECT_THROW(NetSnapshot(wlan, net::Association{0}),
               std::invalid_argument);
  const NetSnapshot snap(wlan, b.intended_association());
  EXPECT_THROW(snap.evaluate({net::Channel::basic(0)}),
               std::invalid_argument);
  EXPECT_THROW(
      wlan.evaluate(net::Association{0}, {net::Channel::basic(0)}),
      std::invalid_argument);
}

// The consolidated rate helper behind client_delay_s_per_bit must still
// agree with deriving the delay from client_rate by hand.
TEST(Wlan, ClientDelayConsistentWithClientRate) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const Wlan wlan = b.build();
  for (int ap = 0; ap < wlan.topology().num_aps(); ++ap) {
    for (int c = 0; c < wlan.topology().num_clients(); ++c) {
      for (const phy::ChannelWidth width :
           {phy::ChannelWidth::k20MHz, phy::ChannelWidth::k40MHz}) {
        const phy::RateDecision rate = wlan.client_rate(ap, c, width);
        const phy::McsEntry& entry = phy::mcs(rate.mcs_index);
        const double expected = mac::per_bit_delay_s(
            wlan.config().timing, entry.rate_bps(width, wlan.config().gi),
            wlan.config().payload_bytes * 8, rate.per);
        EXPECT_EQ(wlan.client_delay_s_per_bit(ap, c, width), expected);
      }
    }
  }
}

}  // namespace
}  // namespace acorn::sim
