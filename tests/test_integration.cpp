// End-to-end scenario tests: ACORN against the baselines on deployments
// shaped like the paper's evaluation section (§5.2). These assert the
// *shape* results — who wins and by roughly what factor — that the
// benches then report in full.
#include <gtest/gtest.h>

#include "baselines/kauffmann17.hpp"
#include "baselines/optimal.hpp"
#include "baselines/simple.hpp"
#include "core/controller.hpp"
#include "core/width_switch.hpp"
#include "testutil.hpp"

namespace acorn {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

TEST(Integration, Topology1AcornRescuesPoorCell) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const core::AcornController acorn;
  util::Rng rng(1);
  const core::ConfigureResult ours = acorn.configure(wlan, rng);
  const baselines::Kauffmann17 k17{net::ChannelPlan(12)};
  const baselines::Kauffmann17::Result theirs = k17.configure(wlan);
  const auto eval_theirs = wlan.evaluate(theirs.association,
                                         theirs.assignment);
  // Associations agree (paper: "identical"), the widths differ.
  EXPECT_EQ(ours.association, theirs.association);
  // The poor cell (AP0) gains at least 1.5x; the paper saw ~4x.
  const double ap0_ours = ours.evaluation.per_ap[0].goodput_bps;
  const double ap0_theirs = eval_theirs.per_ap[0].goodput_bps;
  EXPECT_GT(ap0_ours, 1.5 * std::max(ap0_theirs, 1.0));
  // Network-wide, ACORN is at least as good.
  EXPECT_GE(ours.evaluation.total_goodput_bps,
            eval_theirs.total_goodput_bps * 0.99);
}

// Five-AP deployment shaped like the paper's Topology 2: a mix of good
// and poor cells, enough channels for full isolation.
ScenarioBuilder topology2_builder() {
  ScenarioBuilder b;
  b.cells = {
      CellSpec{{testutil::kGoodLinkLoss, testutil::kGoodLinkLoss + 2.0}},
      CellSpec{{testutil::kGoodLinkLoss + 1.0}},
      CellSpec{{testutil::kGoodLinkLoss + 3.0}},
      CellSpec{{testutil::kPoorLinkLoss, testutil::kPoorLinkLoss + 0.2}},
      CellSpec{{testutil::kMarginalLinkLoss}},
  };
  return b;
}

TEST(Integration, Topology2PoorCellsGetTwentyMhz) {
  const ScenarioBuilder b = topology2_builder();
  const sim::Wlan wlan = b.build();
  const core::AcornController acorn;
  util::Rng rng(2);
  const core::ConfigureResult ours = acorn.configure(wlan, rng);
  // AP3 (poor clients) must end on 20 MHz; good APs 0-2 on bonds.
  EXPECT_EQ(ours.assignment[3].width(), phy::ChannelWidth::k20MHz);
  EXPECT_EQ(ours.assignment[0].width(), phy::ChannelWidth::k40MHz);
  EXPECT_EQ(ours.assignment[1].width(), phy::ChannelWidth::k40MHz);
  EXPECT_EQ(ours.assignment[2].width(), phy::ChannelWidth::k40MHz);
}

TEST(Integration, Topology2AcornBeatsK17PerPoorAp) {
  const ScenarioBuilder b = topology2_builder();
  const sim::Wlan wlan = b.build();
  const core::AcornController acorn;
  util::Rng rng(3);
  const core::ConfigureResult ours = acorn.configure(wlan, rng);
  const baselines::Kauffmann17 k17{net::ChannelPlan(12)};
  const baselines::Kauffmann17::Result theirs = k17.configure(wlan);
  const auto eval_theirs =
      wlan.evaluate(theirs.association, theirs.assignment);
  // The paper's headline: 1.5x-6x gains on the poor cells.
  const double gain3 = ours.evaluation.per_ap[3].goodput_bps /
                       std::max(eval_theirs.per_ap[3].goodput_bps, 1.0);
  EXPECT_GT(gain3, 1.5);
  EXPECT_GE(ours.evaluation.total_goodput_bps,
            eval_theirs.total_goodput_bps);
}

// Fig. 11: three mutually contending APs, only four 20 MHz channels.
struct DenseFixture {
  sim::Wlan wlan;
  net::Association assoc;

  DenseFixture() : wlan(build()), assoc{0, 1, 2} {}

  static sim::Wlan build() {
    ScenarioBuilder b;
    b.cells = {CellSpec{{testutil::kGoodLinkLoss}},
               CellSpec{{testutil::kPoorLinkLoss}},
               CellSpec{{testutil::kPoorLinkLoss + 0.2}}};
    b.ap_ap_loss_db = 85.0;  // all three contend
    return b.build();
  }
};

TEST(Integration, DenseAcornBondsOnlyTheGoodAp) {
  DenseFixture f;
  const core::AcornController acorn({net::ChannelPlan(4), {}, {}, 1800.0});
  const core::AllocationResult result = acorn.reallocate(
      f.wlan, f.assoc,
      {net::Channel::bonded(0), net::Channel::bonded(0),
       net::Channel::bonded(0)});
  // Only AP0 should hold a bond; the poor APs use 20 MHz.
  EXPECT_EQ(result.assignment[0].width(), phy::ChannelWidth::k40MHz);
  EXPECT_EQ(result.assignment[1].width(), phy::ChannelWidth::k20MHz);
  EXPECT_EQ(result.assignment[2].width(), phy::ChannelWidth::k20MHz);
  // And the assignment isolates everyone (4 channels suffice).
  EXPECT_FALSE(result.assignment[0].conflicts(result.assignment[1]));
  EXPECT_FALSE(result.assignment[0].conflicts(result.assignment[2]));
  EXPECT_FALSE(result.assignment[1].conflicts(result.assignment[2]));
}

TEST(Integration, DenseAcornBeatsAggressiveAllForty) {
  DenseFixture f;
  const core::AcornController acorn({net::ChannelPlan(4), {}, {}, 1800.0});
  const core::AllocationResult ours = acorn.reallocate(
      f.wlan, f.assoc,
      {net::Channel::bonded(0), net::Channel::bonded(1),
       net::Channel::bonded(0)});
  // Aggressive CB with 4 channels: two bonds exist, three APs -> overlap.
  const net::ChannelAssignment all40 = {net::Channel::bonded(0),
                                        net::Channel::bonded(1),
                                        net::Channel::bonded(0)};
  const double aggressive =
      f.wlan.evaluate(f.assoc, all40).total_goodput_bps;
  // Paper: "almost 2x improvement over the aggressive allocation".
  EXPECT_GT(ours.final_bps, 1.4 * aggressive);
}

TEST(Integration, AcornBeatsBestOfRandomConfigs) {
  // Table 3's shape on a random deployment.
  util::Rng rng(7);
  net::Topology topo = net::Topology::random(4, 10, 120.0, rng);
  net::PathLossModel plm;
  plm.shadowing_sigma_db = 4.0;
  net::LinkBudget budget(topo, plm, rng);
  sim::Wlan wlan(std::move(topo), std::move(budget), sim::WlanConfig{});
  const core::AcornController acorn;
  const core::ConfigureResult ours = acorn.configure(wlan, rng);
  double best_random = 0.0;
  for (int trial = 0; trial < 25; ++trial) {
    const baselines::RandomConfig cfg =
        baselines::random_configuration(wlan, net::ChannelPlan(12), rng);
    best_random = std::max(
        best_random,
        wlan.evaluate(cfg.association, cfg.assignment).total_goodput_bps);
  }
  EXPECT_GE(ours.evaluation.total_goodput_bps, best_random * 0.98);
}

TEST(Integration, ApproximationRatioBeatsTheoryBound) {
  // Fig. 14's shape: with 2 channels T >= Y*/(Delta+1); with 6 channels
  // T approaches Y*.
  DenseFixture f;
  const double upper = core::isolated_upper_bound_bps(f.wlan, f.assoc);
  for (int channels : {2, 4, 6}) {
    const core::AcornController acorn(
        {net::ChannelPlan(channels), {}, {}, 1800.0});
    util::Rng rng(9);
    core::ChannelAllocator alloc{net::ChannelPlan(channels)};
    const core::AllocationResult result = alloc.allocate(
        f.wlan, f.assoc, alloc.random_assignment(3, rng));
    EXPECT_GE(result.final_bps, upper / 3.0 * 0.95)
        << channels << " channels";
    if (channels == 6) {
      EXPECT_GE(result.final_bps, 0.9 * upper);
    }
  }
}

TEST(Integration, MobilityWidthSwitchHappensOnce) {
  // Walking away from the AP: ACORN's width decision flips 40 -> 20 at
  // some point and stays there (Fig. 13(a)).
  // Sweep over the connected regime: beyond ~111 dB the mobile client is
  // dead on both widths and the comparison is between two starved cells.
  int flips = 0;
  phy::ChannelWidth prev = phy::ChannelWidth::k40MHz;
  for (double loss = 82.0; loss <= 111.0; loss += 0.5) {
    ScenarioBuilder b;
    b.cells = {CellSpec{
        {testutil::kGoodLinkLoss, testutil::kGoodLinkLoss + 1.0, loss}}};
    const sim::Wlan wlan = b.build();
    const core::WidthDecision d = core::decide_width(wlan, 0, {0, 1, 2});
    if (d.width != prev) {
      ++flips;
      prev = d.width;
    }
  }
  EXPECT_EQ(flips, 1);
  EXPECT_EQ(prev, phy::ChannelWidth::k20MHz);
}

TEST(Integration, AcornGroupsPoorJoinerAwayFromGoodCell) {
  // The association-divergence behind Topology 2: a poor client that
  // hears both a poor cell and a good cell joins the poor cell under
  // ACORN (Eq. 4 sees the network-wide damage) but the good cell under
  // the selfish rule.
  net::Topology topo;
  topo.add_ap({0.0, 0.0});
  topo.add_ap({50.0, 0.0});
  topo.add_client({1.0, 0.0});
  topo.add_client({51.0, 0.0});
  topo.add_client({25.0, 0.0});
  util::Rng rng(1);
  net::PathLossModel plm;
  net::LinkBudget budget(topo, plm, rng);
  budget.set_ap_ap_loss_db(0, 1, testutil::kIsolatedLoss);
  budget.set_ap_client_loss_db(0, 0, testutil::kPoorLinkLoss);
  budget.set_ap_client_loss_db(1, 0, testutil::kIsolatedLoss);
  budget.set_ap_client_loss_db(0, 1, testutil::kIsolatedLoss);
  budget.set_ap_client_loss_db(1, 1, testutil::kGoodLinkLoss);
  budget.set_ap_client_loss_db(0, 2, testutil::kPoorLinkLoss + 0.2);
  budget.set_ap_client_loss_db(1, 2, testutil::kPoorLinkLoss - 0.6);
  const sim::Wlan wlan(std::move(topo), std::move(budget),
                       sim::WlanConfig{});
  const net::ChannelAssignment ch = {net::Channel::basic(4),
                                     net::Channel::bonded(0)};
  const net::Association base = {0, 1, net::kUnassociated};
  const core::UserAssociation ua;
  const baselines::Kauffmann17 k17{net::ChannelPlan(12)};
  EXPECT_EQ(ua.select_ap(wlan, base, ch, 2), std::optional<int>(0));
  EXPECT_EQ(k17.select_ap(wlan, base, ch, 2), std::optional<int>(1));
  // And ACORN's choice yields the higher network throughput.
  net::Association ours = base;
  ours[2] = 0;
  net::Association theirs = base;
  theirs[2] = 1;
  EXPECT_GT(wlan.evaluate(ours, ch).total_goodput_bps,
            wlan.evaluate(theirs, ch).total_goodput_bps);
}

TEST(Integration, OptimalConfirmsGreedyOnSmallDense) {
  DenseFixture f;
  const net::ChannelPlan plan(4);
  const baselines::OptimalResult best =
      baselines::optimal_assignment(f.wlan, f.assoc, plan);
  core::ChannelAllocator alloc{plan};
  util::Rng rng(11);
  const core::AllocationResult greedy =
      alloc.allocate(f.wlan, f.assoc, alloc.random_assignment(3, rng));
  // In practice the greedy reaches (or nearly reaches) the optimum —
  // the paper's "much better than the worst case" observation.
  EXPECT_GE(greedy.final_bps, 0.9 * best.total_bps);
}

}  // namespace
}  // namespace acorn
