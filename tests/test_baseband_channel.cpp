#include "baseband/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace acorn::baseband {
namespace {

TEST(FadingChannel, RejectsBadConfig) {
  util::Rng rng(1);
  ChannelConfig bad;
  bad.num_taps = 0;
  EXPECT_THROW(FadingChannel(bad, rng), std::invalid_argument);
  ChannelConfig bad2;
  bad2.sample_rate_hz = 0.0;
  EXPECT_THROW(FadingChannel(bad2, rng), std::invalid_argument);
}

TEST(FadingChannel, NoiseVarianceFollowsEquationOne) {
  util::Rng rng(2);
  ChannelConfig cfg;
  cfg.sample_rate_hz = 20e6;
  const FadingChannel ch(cfg, rng);
  // sigma^2 = N0 * Fs; N0 = -174 dBm/Hz.
  EXPECT_NEAR(util::mw_to_dbm(ch.noise_variance_mw()),
              -174.0 + 10.0 * std::log10(20e6), 1e-9);
}

TEST(FadingChannel, DoublingBandwidthDoublesNoise) {
  util::Rng rng(2);
  ChannelConfig c20;
  c20.sample_rate_hz = 20e6;
  ChannelConfig c40;
  c40.sample_rate_hz = 40e6;
  const FadingChannel ch20(c20, rng);
  const FadingChannel ch40(c40, rng);
  EXPECT_NEAR(ch40.noise_variance_mw() / ch20.noise_variance_mw(), 2.0,
              1e-9);
}

TEST(FadingChannel, NoiseFigureScalesNoise) {
  util::Rng rng(2);
  ChannelConfig cfg;
  cfg.noise_figure_db = 6.0;
  const FadingChannel with_nf(cfg, rng);
  cfg.noise_figure_db = 0.0;
  const FadingChannel without(cfg, rng);
  EXPECT_NEAR(
      util::lin_to_db(with_nf.noise_variance_mw() / without.noise_variance_mw()),
      6.0, 1e-9);
}

TEST(FadingChannel, DeterministicTapsCarryPathLoss) {
  util::Rng rng(3);
  ChannelConfig cfg;
  cfg.rayleigh = false;
  cfg.num_taps = 1;
  cfg.path_loss_db = 20.0;
  const FadingChannel ch(cfg, rng);
  ASSERT_EQ(ch.taps().size(), 1u);
  EXPECT_NEAR(std::norm(ch.taps()[0]), 0.01, 1e-9);
}

TEST(FadingChannel, RayleighTapsAveragePathGain) {
  util::Rng rng(4);
  ChannelConfig cfg;
  cfg.num_taps = 3;
  cfg.path_loss_db = 10.0;
  double total = 0.0;
  const int trials = 4000;
  FadingChannel ch(cfg, rng);
  for (int t = 0; t < trials; ++t) {
    ch.redraw(rng);
    for (const Cx& tap : ch.taps()) total += std::norm(tap);
  }
  EXPECT_NEAR(total / trials, 0.1, 0.01);
}

TEST(FadingChannel, PropagateLengthIsConvolutionLength) {
  util::Rng rng(5);
  ChannelConfig cfg;
  cfg.num_taps = 4;
  cfg.rayleigh = false;
  const FadingChannel ch(cfg, rng);
  const std::vector<Cx> tx(100, Cx(1.0, 0.0));
  EXPECT_EQ(ch.propagate(tx).size(), 103u);
}

TEST(FadingChannel, SingleTapPropagateIsScaling) {
  util::Rng rng(6);
  ChannelConfig cfg;
  cfg.rayleigh = false;
  cfg.path_loss_db = 6.0;
  const FadingChannel ch(cfg, rng);
  const std::vector<Cx> tx = {Cx(2.0, 0.0), Cx(0.0, 2.0)};
  const auto out = ch.propagate(tx);
  const double expected = 2.0 * std::sqrt(util::db_to_lin(-6.0));
  EXPECT_NEAR(std::abs(out[0]), expected, 1e-12);
  EXPECT_NEAR(std::abs(out[1]), expected, 1e-12);
}

TEST(FadingChannel, FrequencyResponseOfSingleTapIsFlat) {
  util::Rng rng(7);
  ChannelConfig cfg;
  cfg.rayleigh = false;
  const FadingChannel ch(cfg, rng);
  const auto h = ch.frequency_response(64);
  for (const Cx& x : h) EXPECT_NEAR(std::abs(x), 1.0, 1e-12);
}

TEST(FadingChannel, FrequencyResponseIsSelectiveWithMultipath) {
  util::Rng rng(8);
  ChannelConfig cfg;
  cfg.num_taps = 4;
  const FadingChannel ch(cfg, rng);
  const auto h = ch.frequency_response(64);
  double min_mag = 1e9;
  double max_mag = 0.0;
  for (const Cx& x : h) {
    min_mag = std::min(min_mag, std::abs(x));
    max_mag = std::max(max_mag, std::abs(x));
  }
  EXPECT_GT(max_mag / std::max(min_mag, 1e-12), 1.2);
}

TEST(FadingChannel, FrequencyResponseValidatesArgs) {
  util::Rng rng(9);
  ChannelConfig cfg;
  cfg.num_taps = 3;
  const FadingChannel ch(cfg, rng);
  EXPECT_THROW(ch.frequency_response(63), std::invalid_argument);
  EXPECT_THROW(ch.frequency_response(2), std::invalid_argument);
}

TEST(AddAwgn, MatchesRequestedVariance) {
  util::Rng rng(10);
  std::vector<Cx> samples(200000, Cx{});
  add_awgn(samples, 4.0, rng);
  double power = 0.0;
  for (const Cx& x : samples) power += std::norm(x);
  EXPECT_NEAR(power / samples.size(), 4.0, 0.05);
}

TEST(AddAwgn, ZeroVarianceIsNoOp) {
  util::Rng rng(11);
  std::vector<Cx> samples(10, Cx(1.0, 2.0));
  add_awgn(samples, 0.0, rng);
  for (const Cx& x : samples) EXPECT_EQ(x, Cx(1.0, 2.0));
}

TEST(AddAwgn, RejectsNegativeVariance) {
  util::Rng rng(12);
  std::vector<Cx> samples(4);
  EXPECT_THROW(add_awgn(samples, -1.0, rng), std::invalid_argument);
}

TEST(FadingChannel, RedrawChangesRealization) {
  util::Rng rng(13);
  ChannelConfig cfg;
  cfg.num_taps = 2;
  FadingChannel ch(cfg, rng);
  const Cx before = ch.taps()[0];
  ch.redraw(rng);
  EXPECT_NE(before, ch.taps()[0]);
}

}  // namespace
}  // namespace acorn::baseband
