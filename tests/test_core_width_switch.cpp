#include "core/width_switch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "testutil.hpp"

namespace acorn::core {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

TEST(WidthSwitch, GoodCellStaysBonded) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss, testutil::kGoodLinkLoss}}};
  const sim::Wlan wlan = b.build();
  const WidthDecision d = decide_width(wlan, 0, {0, 1});
  EXPECT_EQ(d.width, phy::ChannelWidth::k40MHz);
  EXPECT_GT(d.cell_bps_40, d.cell_bps_20);
}

TEST(WidthSwitch, PoorClientForcesFallback) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss, testutil::kPoorLinkLoss}}};
  const sim::Wlan wlan = b.build();
  const WidthDecision d = decide_width(wlan, 0, {0, 1});
  EXPECT_EQ(d.width, phy::ChannelWidth::k20MHz);
}

TEST(WidthSwitch, EmptyCellDefaultsToBond) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{}}};
  const sim::Wlan wlan = b.build();
  const WidthDecision d = decide_width(wlan, 0, {});
  EXPECT_EQ(d.width, phy::ChannelWidth::k40MHz);
  EXPECT_EQ(d.cell_bps_20, 0.0);
  EXPECT_EQ(d.cell_bps_40, 0.0);
}

TEST(WidthSwitch, MediumShareScalesBothSidesEqually) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}}};
  const sim::Wlan wlan = b.build();
  const WidthDecision full = decide_width(wlan, 0, {0}, 1.0);
  const WidthDecision half = decide_width(wlan, 0, {0}, 0.5);
  EXPECT_EQ(full.width, half.width);
  EXPECT_NEAR(half.cell_bps_40, full.cell_bps_40 / 2.0, 1.0);
}

// Build the half-asymmetry scenario for the context-aware overload: AP0
// holds bond {0,1} with one medium-link client; AP1 is OUTSIDE carrier-
// sense range of both AP0 and the client (no graph edge, loss 100 dB ->
// rx -85 dBm < -82) but close enough that, with the hidden-interference
// model on, it raises the client's noise floor on whichever basic
// channel it occupies.
struct HalfScenario {
  sim::Wlan wlan;
  net::Association assoc{0, 1};
  net::InterferenceGraph graph;

  static sim::Wlan make_wlan() {
    net::Topology topo;
    topo.add_ap({0.0, 0.0});
    topo.add_ap({100.0, 0.0});
    topo.add_client({1.0, 0.0});   // AP0's
    topo.add_client({99.0, 0.0});  // AP1's
    util::Rng rng(1);
    net::LinkBudget budget(topo, net::PathLossModel{}, rng);
    budget.set_ap_client_loss_db(0, 0, testutil::kMediumLinkLoss);
    budget.set_ap_client_loss_db(1, 0, 100.0);  // hidden interferer
    budget.set_ap_client_loss_db(0, 1, testutil::kIsolatedLoss);
    budget.set_ap_client_loss_db(1, 1, testutil::kGoodLinkLoss);
    budget.set_ap_ap_loss_db(0, 1, testutil::kIsolatedLoss);
    sim::WlanConfig config;
    config.sinr_interference = true;
    return sim::Wlan(topo, std::move(budget), config);
  }

  HalfScenario()
      : wlan(make_wlan()),
        graph(wlan.topology(), wlan.budget(), assoc,
              wlan.config().interference) {}
};

TEST(WidthSwitch, SecondaryHalfWinsUnderPrimaryInterference) {
  // Regression for the silent always-primary fallback: with the
  // interferer camped on the bond's PRIMARY half, the clean secondary
  // half must win the 20 MHz comparison and the decision must name it.
  const HalfScenario s;
  ASSERT_FALSE(s.graph.adjacent(0, 1));  // hidden, not contending
  const net::ChannelAssignment assignment{net::Channel::bonded(0),
                                          net::Channel::basic(0)};
  const WidthDecision d =
      decide_width(s.wlan, 0, {0}, s.graph, assignment);
  EXPECT_GT(d.cell_bps_20_secondary, d.cell_bps_20_primary);
  EXPECT_DOUBLE_EQ(d.cell_bps_20,
                   std::max(d.cell_bps_20_primary,
                            d.cell_bps_20_secondary));
  EXPECT_EQ(d.width, phy::ChannelWidth::k20MHz);
  ASSERT_TRUE(d.channel.has_value());
  EXPECT_EQ(*d.channel, net::Channel::basic(1)) << "picked the "
                                                   "interfered half";
}

TEST(WidthSwitch, PrimaryHalfWinsUnderSecondaryInterference) {
  // Mirror image: interferer on the secondary half -> the primary half
  // wins (what the pre-fix code happened to do, now by measurement).
  const HalfScenario s;
  const net::ChannelAssignment assignment{net::Channel::bonded(0),
                                          net::Channel::basic(1)};
  const WidthDecision d =
      decide_width(s.wlan, 0, {0}, s.graph, assignment);
  EXPECT_GT(d.cell_bps_20_primary, d.cell_bps_20_secondary);
  EXPECT_EQ(d.width, phy::ChannelWidth::k20MHz);
  ASSERT_TRUE(d.channel.has_value());
  EXPECT_EQ(*d.channel, net::Channel::basic(0));
}

TEST(WidthSwitch, IndistinguishableHalvesTieToPrimary) {
  // With hidden interference off the halves are bit-identical, and the
  // tie must go to the primary so the operating channel is stable.
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kPoorLinkLoss}}};
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const net::InterferenceGraph graph(wlan.topology(), wlan.budget(),
                                     assoc,
                                     wlan.config().interference);
  const net::ChannelAssignment assignment{net::Channel::bonded(0)};
  const WidthDecision d = decide_width(wlan, 0, {0}, graph, assignment);
  EXPECT_DOUBLE_EQ(d.cell_bps_20_primary, d.cell_bps_20_secondary);
  EXPECT_EQ(d.width, phy::ChannelWidth::k20MHz);  // poor link narrows
  ASSERT_TRUE(d.channel.has_value());
  EXPECT_EQ(*d.channel, net::Channel::basic(0));
}

TEST(WidthSwitch, ContextOverloadRequiresBond) {
  const HalfScenario s;
  const net::ChannelAssignment assignment{net::Channel::basic(2),
                                          net::Channel::basic(0)};
  EXPECT_THROW(decide_width(s.wlan, 0, {0}, s.graph, assignment),
               std::invalid_argument);
}

TEST(WidthSwitch, DecisionFlipsAsLinkDegrades) {
  // Sweep the single client's loss: the decision must flip from 40 to 20
  // exactly once (the mobility experiment's switch point).
  // Sweep the connected regime only: past ~111 dB the client is dead on
  // both widths and the comparison degenerates.
  bool seen_20 = false;
  for (double loss = 85.0; loss <= 111.0; loss += 1.0) {
    ScenarioBuilder b;
    b.cells = {CellSpec{{loss}}};
    const sim::Wlan wlan = b.build();
    const WidthDecision d = decide_width(wlan, 0, {0});
    if (d.width == phy::ChannelWidth::k20MHz) seen_20 = true;
    if (seen_20) {
      EXPECT_EQ(d.width, phy::ChannelWidth::k20MHz)
          << "flapped back at loss " << loss;
    }
  }
  EXPECT_TRUE(seen_20);
}

}  // namespace
}  // namespace acorn::core
