#include "core/width_switch.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace acorn::core {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

TEST(WidthSwitch, GoodCellStaysBonded) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss, testutil::kGoodLinkLoss}}};
  const sim::Wlan wlan = b.build();
  const WidthDecision d = decide_width(wlan, 0, {0, 1});
  EXPECT_EQ(d.width, phy::ChannelWidth::k40MHz);
  EXPECT_GT(d.cell_bps_40, d.cell_bps_20);
}

TEST(WidthSwitch, PoorClientForcesFallback) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss, testutil::kPoorLinkLoss}}};
  const sim::Wlan wlan = b.build();
  const WidthDecision d = decide_width(wlan, 0, {0, 1});
  EXPECT_EQ(d.width, phy::ChannelWidth::k20MHz);
}

TEST(WidthSwitch, EmptyCellDefaultsToBond) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{}}};
  const sim::Wlan wlan = b.build();
  const WidthDecision d = decide_width(wlan, 0, {});
  EXPECT_EQ(d.width, phy::ChannelWidth::k40MHz);
  EXPECT_EQ(d.cell_bps_20, 0.0);
  EXPECT_EQ(d.cell_bps_40, 0.0);
}

TEST(WidthSwitch, MediumShareScalesBothSidesEqually) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}}};
  const sim::Wlan wlan = b.build();
  const WidthDecision full = decide_width(wlan, 0, {0}, 1.0);
  const WidthDecision half = decide_width(wlan, 0, {0}, 0.5);
  EXPECT_EQ(full.width, half.width);
  EXPECT_NEAR(half.cell_bps_40, full.cell_bps_40 / 2.0, 1.0);
}

TEST(WidthSwitch, DecisionFlipsAsLinkDegrades) {
  // Sweep the single client's loss: the decision must flip from 40 to 20
  // exactly once (the mobility experiment's switch point).
  // Sweep the connected regime only: past ~111 dB the client is dead on
  // both widths and the comparison degenerates.
  bool seen_20 = false;
  for (double loss = 85.0; loss <= 111.0; loss += 1.0) {
    ScenarioBuilder b;
    b.cells = {CellSpec{{loss}}};
    const sim::Wlan wlan = b.build();
    const WidthDecision d = decide_width(wlan, 0, {0});
    if (d.width == phy::ChannelWidth::k20MHz) seen_20 = true;
    if (seen_20) {
      EXPECT_EQ(d.width, phy::ChannelWidth::k20MHz)
          << "flapped back at loss " << loss;
    }
  }
  EXPECT_TRUE(seen_20);
}

}  // namespace
}  // namespace acorn::core
