// Tests for the hidden-interference (SINR) option of the WLAN evaluator.
#include <gtest/gtest.h>

#include "core/allocation.hpp"
#include "testutil.hpp"

namespace acorn::sim {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

// Two cells whose APs cannot hear each other (no contention) but whose
// clients hear the other AP at a controllable level.
struct HiddenFixture {
  double interferer_to_client_db;
  bool sinr;

  Wlan build() const {
    net::Topology topo;
    topo.add_ap({0, 0});
    topo.add_ap({80, 0});
    topo.add_client({1, 0});
    topo.add_client({79, 0});
    util::Rng rng(3);
    net::PathLossModel plm;
    net::LinkBudget budget(topo, plm, rng);
    budget.set_ap_ap_loss_db(0, 1, testutil::kIsolatedLoss);
    budget.set_ap_client_loss_db(0, 0, testutil::kMediumLinkLoss);
    budget.set_ap_client_loss_db(1, 1, testutil::kMediumLinkLoss);
    // Cross links: each client hears the other AP at the given loss but
    // stays out of association range checks (we force the association).
    budget.set_ap_client_loss_db(1, 0, interferer_to_client_db);
    budget.set_ap_client_loss_db(0, 1, interferer_to_client_db);
    WlanConfig cfg;
    cfg.sinr_interference = sinr;
    return Wlan(std::move(topo), std::move(budget), cfg);
  }
};

// Below carrier sense (-82 dBm) yet far above the per-subcarrier noise
// floor: a textbook hidden interferer.
constexpr double kHotInterferer = 100.0;

TEST(SinrModel, OffByDefaultMatchesLegacyEvaluation) {
  const HiddenFixture with{kHotInterferer, false};
  const Wlan wlan = with.build();
  const net::Association assoc = {0, 1};
  const net::ChannelAssignment same = {net::Channel::basic(0),
                                       net::Channel::basic(0)};
  const net::ChannelAssignment split = {net::Channel::basic(0),
                                        net::Channel::basic(3)};
  // Without SINR modeling, hidden co-channel APs are invisible: both
  // assignments score the same.
  EXPECT_NEAR(wlan.evaluate(assoc, same).total_goodput_bps,
              wlan.evaluate(assoc, split).total_goodput_bps, 1.0);
}

TEST(SinrModel, HiddenInterferenceLowersCoChannelThroughput) {
  const HiddenFixture fixture{kHotInterferer, true};
  const Wlan wlan = fixture.build();
  const net::Association assoc = {0, 1};
  const net::ChannelAssignment same = {net::Channel::basic(0),
                                       net::Channel::basic(0)};
  const net::ChannelAssignment split = {net::Channel::basic(0),
                                        net::Channel::basic(3)};
  const double on_same = wlan.evaluate(assoc, same).total_goodput_bps;
  const double on_split = wlan.evaluate(assoc, split).total_goodput_bps;
  EXPECT_LT(on_same, 0.8 * on_split);
}

TEST(SinrModel, FarInterfererIsHarmless) {
  const HiddenFixture fixture{testutil::kIsolatedLoss, true};
  const Wlan wlan = fixture.build();
  const net::Association assoc = {0, 1};
  const net::ChannelAssignment same = {net::Channel::basic(0),
                                       net::Channel::basic(0)};
  const net::ChannelAssignment split = {net::Channel::basic(0),
                                        net::Channel::basic(3)};
  EXPECT_NEAR(wlan.evaluate(assoc, same).total_goodput_bps,
              wlan.evaluate(assoc, split).total_goodput_bps,
              0.01 * wlan.evaluate(assoc, split).total_goodput_bps);
}

TEST(SinrModel, ContendingApsAreNotDoubleCharged) {
  // When the APs DO hear each other, the medium is shared (M = 1/2) and
  // no hidden-interference penalty applies on top.
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kMediumLinkLoss}},
             CellSpec{{testutil::kMediumLinkLoss}}};
  b.ap_ap_loss_db = 85.0;
  b.config.sinr_interference = true;
  const Wlan wlan = b.build();
  ScenarioBuilder b2 = b;
  b2.config.sinr_interference = false;
  const Wlan legacy = b2.build();
  const net::Association assoc = b.intended_association();
  const net::ChannelAssignment same = {net::Channel::basic(0),
                                       net::Channel::basic(0)};
  EXPECT_NEAR(wlan.evaluate(assoc, same).total_goodput_bps,
              legacy.evaluate(assoc, same).total_goodput_bps, 1.0);
}

TEST(SinrModel, AllocatorSeparatesHiddenInterferers) {
  const HiddenFixture fixture{kHotInterferer, true};
  const Wlan wlan = fixture.build();
  const net::Association assoc = {0, 1};
  const core::ChannelAllocator alloc{net::ChannelPlan(12)};
  const core::AllocationResult result = alloc.allocate(
      wlan, assoc,
      {net::Channel::basic(0), net::Channel::basic(0)});
  EXPECT_FALSE(result.assignment[0].conflicts(result.assignment[1]));
}

TEST(SinrModel, InterferenceScalesWithOverlap) {
  const HiddenFixture fixture{kHotInterferer, true};
  const Wlan wlan = fixture.build();
  const net::Association assoc = {0, 1};
  const net::InterferenceGraph graph(wlan.topology(), wlan.budget(), assoc,
                                     wlan.config().interference);
  const net::ChannelAssignment other_on_bond = {net::Channel::basic(0),
                                                net::Channel::bonded(0)};
  const double full = wlan.hidden_interference_mw(
      0, 0, net::Channel::bonded(0), graph,
      {net::Channel::bonded(0), net::Channel::bonded(0)});
  const double half = wlan.hidden_interference_mw(
      0, 0, net::Channel::basic(0), graph, other_on_bond);
  EXPECT_GT(full, 0.0);
  EXPECT_GT(full, half);
}

}  // namespace
}  // namespace acorn::sim
