#include "baseband/interleaver.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace acorn::baseband {
namespace {

std::vector<std::uint8_t> random_bits(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
  return bits;
}

TEST(Interleaver, RejectsBadParameters) {
  EXPECT_THROW(BlockInterleaver(0, 1), std::invalid_argument);
  EXPECT_THROW(BlockInterleaver(50, 1, 16), std::invalid_argument);
  EXPECT_THROW(BlockInterleaver(48, 0), std::invalid_argument);
}

TEST(Interleaver, RoundTripLegacySizes) {
  // Legacy 802.11a sizes: Ncbps for BPSK..64QAM on 48 carriers.
  for (const auto& [n_cbps, n_bpsc] :
       {std::pair{48, 1}, {96, 2}, {192, 4}, {288, 6}}) {
    const BlockInterleaver il(n_cbps, n_bpsc);
    const auto bits = random_bits(static_cast<std::size_t>(n_cbps), 1);
    EXPECT_EQ(il.deinterleave(il.interleave(bits)), bits)
        << n_cbps << "/" << n_bpsc;
  }
}

TEST(Interleaver, RoundTripHtSizes) {
  for (const auto width :
       {phy::ChannelWidth::k20MHz, phy::ChannelWidth::k40MHz}) {
    for (const auto mod :
         {phy::Modulation::kBpsk, phy::Modulation::kQpsk,
          phy::Modulation::kQam16, phy::Modulation::kQam64}) {
      const BlockInterleaver il = BlockInterleaver::for_ht(width, mod);
      EXPECT_EQ(il.block_size(),
                phy::data_subcarriers(width) * phy::bits_per_symbol(mod));
      const auto bits =
          random_bits(static_cast<std::size_t>(il.block_size()), 2);
      EXPECT_EQ(il.deinterleave(il.interleave(bits)), bits);
    }
  }
}

TEST(Interleaver, ActuallyPermutes) {
  const BlockInterleaver il = BlockInterleaver::for_ht(
      phy::ChannelWidth::k20MHz, phy::Modulation::kQam16);
  // An aperiodic pattern (a strictly periodic one can be invariant under
  // the permutation's parity structure).
  std::vector<std::uint8_t> ramp(
      static_cast<std::size_t>(il.block_size()));
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<std::uint8_t>((i * 7 % 13) & 1);
  }
  EXPECT_NE(il.interleave(ramp), ramp);
}

TEST(Interleaver, BreaksUpBursts) {
  // The whole point: a run of adjacent pre-interleaver bits must land on
  // widely separated positions.
  const BlockInterleaver il = BlockInterleaver::for_ht(
      phy::ChannelWidth::k20MHz, phy::Modulation::kQpsk);
  const int n = il.block_size();
  std::vector<std::uint8_t> marker(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < 8; ++i) marker[static_cast<std::size_t>(i)] = 1;
  const auto spread = il.interleave(marker);
  // Find marked positions and check min pairwise distance.
  std::vector<int> positions;
  for (int i = 0; i < n; ++i) {
    if (spread[static_cast<std::size_t>(i)]) positions.push_back(i);
  }
  ASSERT_EQ(positions.size(), 8u);
  for (std::size_t i = 1; i < positions.size(); ++i) {
    EXPECT_GE(positions[i] - positions[i - 1], 4);
  }
}

TEST(Interleaver, StreamValidatesLength) {
  const BlockInterleaver il(48, 1);
  const auto bits = random_bits(50, 3);
  EXPECT_THROW(il.interleave_stream(bits), std::invalid_argument);
  EXPECT_THROW(il.deinterleave_stream(bits), std::invalid_argument);
}

TEST(Interleaver, StreamRoundTrip) {
  const BlockInterleaver il(96, 2);
  const auto bits = random_bits(96 * 5, 4);
  EXPECT_EQ(il.deinterleave_stream(il.interleave_stream(bits)), bits);
}

}  // namespace
}  // namespace acorn::baseband
