#include "baseband/phy_chain.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "phy/link.hpp"

namespace acorn::baseband {
namespace {

PhyChainConfig clean_config(int mcs) {
  PhyChainConfig cfg;
  cfg.mcs_index = mcs;
  cfg.tx_dbm = 15.0;
  cfg.path_loss_db = 70.0;  // enormous SNR
  cfg.rayleigh = false;
  cfg.num_taps = 1;
  cfg.packet_bytes = 200;
  return cfg;
}

TEST(PhyChain, RejectsMultiStreamMcs) {
  util::Rng rng(1);
  PhyChainConfig cfg = clean_config(8);
  EXPECT_THROW(run_phy_chain(cfg, 1, rng), std::invalid_argument);
}

TEST(PhyChain, RejectsBadCounts) {
  util::Rng rng(1);
  PhyChainConfig cfg = clean_config(0);
  EXPECT_THROW(run_phy_chain(cfg, 0, rng), std::invalid_argument);
  cfg.packet_bytes = 0;
  EXPECT_THROW(run_phy_chain(cfg, 1, rng), std::invalid_argument);
}

TEST(PhyChain, LosslessAtHighSnrForEveryMcs) {
  for (int mcs = 0; mcs <= 7; ++mcs) {
    util::Rng rng(2);
    const PhyChainResult r = run_phy_chain(clean_config(mcs), 5, rng);
    EXPECT_EQ(r.bit_errors, 0) << "MCS " << mcs;
    EXPECT_EQ(r.packet_errors, 0) << "MCS " << mcs;
  }
}

TEST(PhyChain, BothWidthsWork) {
  for (const auto width :
       {phy::ChannelWidth::k20MHz, phy::ChannelWidth::k40MHz}) {
    util::Rng rng(3);
    PhyChainConfig cfg = clean_config(4);
    cfg.width = width;
    const PhyChainResult r = run_phy_chain(cfg, 3, rng);
    EXPECT_EQ(r.packet_errors, 0) << to_string(width);
  }
}

TEST(PhyChain, DeterministicPerSeed) {
  PhyChainConfig cfg = clean_config(2);
  cfg.path_loss_db = 97.0;
  cfg.rayleigh = true;
  util::Rng r1(4);
  util::Rng r2(4);
  const PhyChainResult a = run_phy_chain(cfg, 10, r1);
  const PhyChainResult b = run_phy_chain(cfg, 10, r2);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.packet_errors, b.packet_errors);
}

TEST(PhyChain, FailsAtAbysmalSnr) {
  util::Rng rng(5);
  PhyChainConfig cfg = clean_config(7);
  cfg.path_loss_db = 115.0;
  const PhyChainResult r = run_phy_chain(cfg, 5, rng);
  EXPECT_EQ(r.packet_errors, r.packets_sent);
}

TEST(PhyChain, FortyMhzFailsBeforeTwentyAtFixedTx) {
  // The paper's central micro-effect, measured end to end through the
  // *coded* chain: same Tx, the bonded channel loses packets first.
  PhyChainConfig cfg;
  cfg.mcs_index = 2;
  cfg.tx_dbm = 0.0;
  cfg.path_loss_db = 93.0;
  cfg.rayleigh = false;
  cfg.num_taps = 1;
  cfg.packet_bytes = 400;
  util::Rng r1(6);
  const PhyChainResult on20 = run_phy_chain(cfg, 15, r1);
  cfg.width = phy::ChannelWidth::k40MHz;
  util::Rng r2(6);
  const PhyChainResult on40 = run_phy_chain(cfg, 15, r2);
  EXPECT_LT(on20.per(), on40.per());
  EXPECT_NEAR(on20.mean_snr_db - on40.mean_snr_db, 3.17, 0.4);
}

TEST(PhyChain, MeasuredWaterfallTracksAnalyticModel) {
  // Calibration: the SNR at which the measured PER crosses 0.5 should be
  // within ~2 dB of where the analytic link model (no fading margin, no
  // MIMO adjustment) predicts it for the same MCS.
  phy::LinkConfig lc;
  lc.shadow_db = 0.0;
  lc.stbc_gain_db = 0.0;
  lc.noise_figure_db = 0.0;
  const phy::LinkModel model(lc);
  for (int mcs : {0, 2, 4}) {
    // Analytic 50% point.
    double predicted = -10.0;
    for (double snr = -5.0; snr <= 35.0; snr += 0.1) {
      if (model.per(phy::mcs(mcs), snr) < 0.5) {
        predicted = snr;
        break;
      }
    }
    // Measured 50% point via path-loss sweep (static channel).
    double measured = -100.0;
    for (double pl = 110.0; pl >= 80.0; pl -= 1.0) {
      PhyChainConfig cfg;
      cfg.mcs_index = mcs;
      cfg.tx_dbm = 0.0;
      cfg.path_loss_db = pl;
      cfg.rayleigh = false;
      cfg.num_taps = 1;
      cfg.packet_bytes = 200;
      util::Rng rng(7);
      const PhyChainResult r = run_phy_chain(cfg, 8, rng);
      if (r.per() < 0.5) {
        measured = r.mean_snr_db;
        break;
      }
    }
    EXPECT_NEAR(measured, predicted, 2.5) << "MCS " << mcs;
  }
}

TEST(PhyChain, SoftDecisionBeatsHardAtMarginalSnr) {
  PhyChainConfig cfg;
  cfg.mcs_index = 2;
  cfg.tx_dbm = 0.0;
  cfg.path_loss_db = 95.5;
  cfg.rayleigh = false;
  cfg.num_taps = 1;
  cfg.packet_bytes = 300;
  util::Rng r1(9);
  const PhyChainResult hard = run_phy_chain(cfg, 15, r1);
  cfg.soft_decision = true;
  util::Rng r2(9);
  const PhyChainResult soft = run_phy_chain(cfg, 15, r2);
  EXPECT_LT(soft.per(), hard.per());
}

TEST(PhyChain, SoftDecisionLosslessAtHighSnr) {
  PhyChainConfig cfg = clean_config(6);
  cfg.soft_decision = true;
  util::Rng rng(10);
  const PhyChainResult r = run_phy_chain(cfg, 4, rng);
  EXPECT_EQ(r.packet_errors, 0);
}

TEST(PhyChain, RoundTripFunctionMatchesRunLoop) {
  PhyChainConfig cfg = clean_config(1);
  util::Rng rng(8);
  FadingChannel channel(
      ChannelConfig{phy::width_hz(cfg.width), cfg.noise_psd_dbm_per_hz,
                    cfg.noise_figure_db, cfg.path_loss_db, cfg.num_taps,
                    2.0, cfg.rayleigh},
      rng);
  std::vector<std::uint8_t> bits(800);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
  const auto decoded = phy_chain_roundtrip(cfg, bits, channel, rng);
  EXPECT_EQ(decoded, bits);
}

}  // namespace
}  // namespace acorn::baseband
