#include "baseband/scrambler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace acorn::baseband {
namespace {

TEST(Scrambler, RejectsZeroSeed) {
  EXPECT_THROW(Scrambler(0), std::invalid_argument);
  Scrambler s(1);
  EXPECT_THROW(s.reset(0x80), std::invalid_argument);  // 0x80 & 0x7F == 0
}

TEST(Scrambler, SelfInverse) {
  util::Rng rng(1);
  std::vector<std::uint8_t> bits(1000);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
  EXPECT_EQ(descramble(scramble(bits, 0x3A), 0x3A), bits);
}

TEST(Scrambler, DifferentSeedsDifferentKeystream) {
  const std::vector<std::uint8_t> zeros(100, 0);
  EXPECT_NE(scramble(zeros, 0x5D), scramble(zeros, 0x2B));
}

TEST(Scrambler, KeystreamPeriodIs127) {
  // Maximal-length 7-bit LFSR: period 2^7 - 1.
  Scrambler s(0x5D);
  std::vector<std::uint8_t> first(127);
  for (auto& b : first) b = s.next_bit();
  std::vector<std::uint8_t> second(127);
  for (auto& b : second) b = s.next_bit();
  EXPECT_EQ(first, second);
  // And it is not shorter: the first 127 bits are not themselves
  // periodic with period 1..63 (checking a few divisors suffices for a
  // maximal-length sequence).
  for (std::size_t period : {1u, 7u, 31u, 63u}) {
    bool same = true;
    for (std::size_t i = 0; i + period < first.size(); ++i) {
      if (first[i] != first[i + period]) {
        same = false;
        break;
      }
    }
    EXPECT_FALSE(same) << "period " << period;
  }
}

TEST(Scrambler, WhitensConstantInput) {
  // An all-zero payload must come out roughly balanced.
  const std::vector<std::uint8_t> zeros(1270, 0);
  const auto out = scramble(zeros);
  int ones = 0;
  for (std::uint8_t b : out) ones += b;
  EXPECT_NEAR(static_cast<double>(ones) / out.size(), 0.5, 0.05);
}

TEST(Scrambler, ProcessContinuesKeystream) {
  Scrambler a(0x11);
  const std::vector<std::uint8_t> zeros(64, 0);
  const auto first = a.process(zeros);
  const auto second = a.process(zeros);
  EXPECT_NE(first, second);  // keystream advanced
  // Equivalent to one 128-bit pass.
  Scrambler b(0x11);
  const std::vector<std::uint8_t> lots(128, 0);
  const auto whole = b.process(lots);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(whole[i], first[i]);
    EXPECT_EQ(whole[64 + i], second[i]);
  }
}

}  // namespace
}  // namespace acorn::baseband
