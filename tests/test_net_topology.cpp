#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acorn::net {
namespace {

TEST(Point, Distance) {
  EXPECT_DOUBLE_EQ(distance(Point{0, 0}, Point{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance(Point{1, 1}, Point{1, 1}), 0.0);
}

TEST(Topology, IdsAreDense) {
  Topology topo;
  EXPECT_EQ(topo.add_ap(Point{0, 0}), 0);
  EXPECT_EQ(topo.add_ap(Point{1, 0}), 1);
  EXPECT_EQ(topo.add_client(Point{0, 1}), 0);
  EXPECT_EQ(topo.add_client(Point{1, 1}), 1);
  EXPECT_EQ(topo.num_aps(), 2);
  EXPECT_EQ(topo.num_clients(), 2);
}

TEST(Topology, StoresPositionsAndPower) {
  Topology topo;
  topo.add_ap(Point{2, 3}, 18.0);
  EXPECT_DOUBLE_EQ(topo.ap(0).position.x, 2.0);
  EXPECT_DOUBLE_EQ(topo.ap(0).tx_dbm, 18.0);
  topo.add_client(Point{5, 6});
  EXPECT_DOUBLE_EQ(topo.client(0).position.y, 6.0);
}

TEST(Topology, AccessorsThrowOnBadId) {
  Topology topo;
  topo.add_ap(Point{0, 0});
  EXPECT_THROW(topo.ap(1), std::out_of_range);
  EXPECT_THROW(topo.client(0), std::out_of_range);
}

TEST(Topology, MutableAccessors) {
  Topology topo;
  topo.add_ap(Point{0, 0});
  topo.ap(0).tx_dbm = 10.0;
  EXPECT_DOUBLE_EQ(topo.ap(0).tx_dbm, 10.0);
}

TEST(Topology, RandomRejectsBadParams) {
  util::Rng rng(1);
  EXPECT_THROW(Topology::random(0, 5, 100.0, rng), std::invalid_argument);
  EXPECT_THROW(Topology::random(2, -1, 100.0, rng), std::invalid_argument);
  EXPECT_THROW(Topology::random(2, 5, 0.0, rng), std::invalid_argument);
}

TEST(Topology, RandomGeneratesRequestedCounts) {
  util::Rng rng(2);
  const Topology topo = Topology::random(5, 20, 100.0, rng);
  EXPECT_EQ(topo.num_aps(), 5);
  EXPECT_EQ(topo.num_clients(), 20);
}

TEST(Topology, RandomClientsInsideArea) {
  util::Rng rng(3);
  const Topology topo = Topology::random(4, 50, 80.0, rng);
  for (const ClientNode& c : topo.clients()) {
    EXPECT_GE(c.position.x, 0.0);
    EXPECT_LE(c.position.x, 80.0);
    EXPECT_GE(c.position.y, 0.0);
    EXPECT_LE(c.position.y, 80.0);
  }
}

TEST(Topology, GridApsSpreadOut) {
  util::Rng rng(4);
  const Topology topo = Topology::random(4, 0, 100.0, rng, true);
  // Jittered 2x2 grid: pairwise distances stay well above zero.
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      EXPECT_GT(distance(topo.ap(a).position, topo.ap(b).position), 15.0);
    }
  }
}

TEST(Topology, RandomIsDeterministicPerSeed) {
  util::Rng r1(5);
  util::Rng r2(5);
  const Topology a = Topology::random(3, 10, 50.0, r1);
  const Topology b = Topology::random(3, 10, 50.0, r2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.client(i).position.x, b.client(i).position.x);
  }
}

}  // namespace
}  // namespace acorn::net
