#include "net/channels.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acorn::net {
namespace {

TEST(Channel, BasicProperties) {
  const Channel c = Channel::basic(3);
  EXPECT_EQ(c.width(), phy::ChannelWidth::k20MHz);
  EXPECT_FALSE(c.is_bonded());
  EXPECT_EQ(c.primary(), 3);
  EXPECT_EQ(c.occupied(), std::vector<int>{3});
}

TEST(Channel, BondedProperties) {
  const Channel c = Channel::bonded(2);
  EXPECT_EQ(c.width(), phy::ChannelWidth::k40MHz);
  EXPECT_TRUE(c.is_bonded());
  EXPECT_EQ(c.primary(), 4);
  EXPECT_EQ(c.occupied(), (std::vector<int>{4, 5}));
}

TEST(Channel, RejectsNegativeIndices) {
  EXPECT_THROW(Channel::basic(-1), std::invalid_argument);
  EXPECT_THROW(Channel::bonded(-1), std::invalid_argument);
}

TEST(Channel, DistinctBasicsDoNotConflict) {
  EXPECT_FALSE(Channel::basic(0).conflicts(Channel::basic(1)));
  EXPECT_TRUE(Channel::basic(0).conflicts(Channel::basic(0)));
}

TEST(Channel, CompositeConflictsWithItsHalves) {
  // The paper's coloring rule: {c_i, c_j} conflicts with c_i and c_j but
  // c_i and c_j do not conflict with each other.
  const Channel bond = Channel::bonded(0);  // {0, 1}
  EXPECT_TRUE(bond.conflicts(Channel::basic(0)));
  EXPECT_TRUE(bond.conflicts(Channel::basic(1)));
  EXPECT_FALSE(bond.conflicts(Channel::basic(2)));
  EXPECT_FALSE(Channel::basic(0).conflicts(Channel::basic(1)));
}

TEST(Channel, ConflictIsSymmetric) {
  const Channel bond = Channel::bonded(1);  // {2, 3}
  const Channel basic = Channel::basic(3);
  EXPECT_EQ(bond.conflicts(basic), basic.conflicts(bond));
}

TEST(Channel, AdjacentBondsDoNotConflict) {
  EXPECT_FALSE(Channel::bonded(0).conflicts(Channel::bonded(1)));
  EXPECT_TRUE(Channel::bonded(0).conflicts(Channel::bonded(0)));
}

TEST(Channel, OverlapFractions) {
  const Channel bond = Channel::bonded(0);  // {0,1}
  EXPECT_DOUBLE_EQ(bond.overlap_fraction(Channel::basic(0)), 0.5);
  EXPECT_DOUBLE_EQ(Channel::basic(0).overlap_fraction(bond), 1.0);
  EXPECT_DOUBLE_EQ(bond.overlap_fraction(bond), 1.0);
  EXPECT_DOUBLE_EQ(bond.overlap_fraction(Channel::bonded(1)), 0.0);
}

TEST(Channel, EqualityAndToString) {
  EXPECT_EQ(Channel::basic(2), Channel::basic(2));
  EXPECT_NE(Channel::basic(2), Channel::basic(3));
  EXPECT_NE(Channel::basic(0), Channel::bonded(0));
  EXPECT_EQ(Channel::basic(2).to_string(), "ch2 (20MHz)");
  EXPECT_EQ(Channel::bonded(1).to_string(), "ch2+3 (40MHz)");
}

TEST(ChannelPlan, DefaultTwelveChannels) {
  const ChannelPlan plan;
  EXPECT_EQ(plan.num_basic(), 12);
  EXPECT_EQ(plan.num_bonded(), 6);
  EXPECT_EQ(plan.basic_channels().size(), 12u);
  EXPECT_EQ(plan.bonded_channels().size(), 6u);
  EXPECT_EQ(plan.all_channels().size(), 18u);
}

TEST(ChannelPlan, OddChannelCountFloorsBonds) {
  const ChannelPlan plan(5);
  EXPECT_EQ(plan.num_bonded(), 2);
}

TEST(ChannelPlan, RejectsEmptyPlan) {
  EXPECT_THROW(ChannelPlan(0), std::invalid_argument);
}

TEST(ChannelPlan, BondsCoverDisjointPairs) {
  const ChannelPlan plan(12);
  const auto bonds = plan.bonded_channels();
  for (std::size_t i = 0; i < bonds.size(); ++i) {
    for (std::size_t j = i + 1; j < bonds.size(); ++j) {
      EXPECT_FALSE(bonds[i].conflicts(bonds[j]));
    }
  }
}

TEST(ChannelPlan, AllChannelsBasicFirst) {
  const ChannelPlan plan(4);
  const auto all = plan.all_channels();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_FALSE(all[0].is_bonded());
  EXPECT_FALSE(all[3].is_bonded());
  EXPECT_TRUE(all[4].is_bonded());
  EXPECT_TRUE(all[5].is_bonded());
}

}  // namespace
}  // namespace acorn::net
