#include "net/channels.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acorn::net {
namespace {

TEST(Channel, BasicProperties) {
  const Channel c = Channel::basic(3);
  EXPECT_EQ(c.width(), phy::ChannelWidth::k20MHz);
  EXPECT_FALSE(c.is_bonded());
  EXPECT_EQ(c.primary(), 3);
  EXPECT_EQ(c.occupied(), std::vector<int>{3});
}

TEST(Channel, BondedProperties) {
  const Channel c = Channel::bonded(2);
  EXPECT_EQ(c.width(), phy::ChannelWidth::k40MHz);
  EXPECT_TRUE(c.is_bonded());
  EXPECT_EQ(c.primary(), 4);
  EXPECT_EQ(c.occupied(), (std::vector<int>{4, 5}));
}

TEST(Channel, RejectsNegativeIndices) {
  EXPECT_THROW(Channel::basic(-1), std::invalid_argument);
  EXPECT_THROW(Channel::bonded(-1), std::invalid_argument);
}

TEST(Channel, DistinctBasicsDoNotConflict) {
  EXPECT_FALSE(Channel::basic(0).conflicts(Channel::basic(1)));
  EXPECT_TRUE(Channel::basic(0).conflicts(Channel::basic(0)));
}

TEST(Channel, CompositeConflictsWithItsHalves) {
  // The paper's coloring rule: {c_i, c_j} conflicts with c_i and c_j but
  // c_i and c_j do not conflict with each other.
  const Channel bond = Channel::bonded(0);  // {0, 1}
  EXPECT_TRUE(bond.conflicts(Channel::basic(0)));
  EXPECT_TRUE(bond.conflicts(Channel::basic(1)));
  EXPECT_FALSE(bond.conflicts(Channel::basic(2)));
  EXPECT_FALSE(Channel::basic(0).conflicts(Channel::basic(1)));
}

TEST(Channel, ConflictIsSymmetric) {
  const Channel bond = Channel::bonded(1);  // {2, 3}
  const Channel basic = Channel::basic(3);
  EXPECT_EQ(bond.conflicts(basic), basic.conflicts(bond));
}

TEST(Channel, AdjacentBondsDoNotConflict) {
  EXPECT_FALSE(Channel::bonded(0).conflicts(Channel::bonded(1)));
  EXPECT_TRUE(Channel::bonded(0).conflicts(Channel::bonded(0)));
}

TEST(Channel, OverlapFractions) {
  const Channel bond = Channel::bonded(0);  // {0,1}
  EXPECT_DOUBLE_EQ(bond.overlap_fraction(Channel::basic(0)), 0.5);
  EXPECT_DOUBLE_EQ(Channel::basic(0).overlap_fraction(bond), 1.0);
  EXPECT_DOUBLE_EQ(bond.overlap_fraction(bond), 1.0);
  EXPECT_DOUBLE_EQ(bond.overlap_fraction(Channel::bonded(1)), 0.0);
}

TEST(Channel, EqualityAndToString) {
  EXPECT_EQ(Channel::basic(2), Channel::basic(2));
  EXPECT_NE(Channel::basic(2), Channel::basic(3));
  EXPECT_NE(Channel::basic(0), Channel::bonded(0));
  EXPECT_EQ(Channel::basic(2).to_string(), "ch2 (20MHz)");
  EXPECT_EQ(Channel::bonded(1).to_string(), "ch2+3 (40MHz)");
}

TEST(ChannelPlan, DefaultTwelveChannels) {
  const ChannelPlan plan;
  EXPECT_EQ(plan.num_basic(), 12);
  EXPECT_EQ(plan.num_bonded(), 6);
  EXPECT_EQ(plan.basic_channels().size(), 12u);
  EXPECT_EQ(plan.bonded_channels().size(), 6u);
  EXPECT_EQ(plan.all_channels().size(), 18u);
}

TEST(ChannelPlan, OddChannelCountFloorsBonds) {
  const ChannelPlan plan(5);
  EXPECT_EQ(plan.num_bonded(), 2);
}

TEST(ChannelPlan, RejectsEmptyPlan) {
  EXPECT_THROW(ChannelPlan(0), std::invalid_argument);
}

TEST(ChannelPlan, BondsCoverDisjointPairs) {
  const ChannelPlan plan(12);
  const auto bonds = plan.bonded_channels();
  for (std::size_t i = 0; i < bonds.size(); ++i) {
    for (std::size_t j = i + 1; j < bonds.size(); ++j) {
      EXPECT_FALSE(bonds[i].conflicts(bonds[j]));
    }
  }
}

TEST(Channel, OverlapAndConflictPropertiesAcrossAllPairs) {
  // The DCB contention model (dcb::distill_shares, the multi-channel
  // DCF) leans on conflicts/overlap_fraction agreeing with the occupied
  // sets for every color pair, so pin the algebra across the whole
  // vocabulary: every basic and bonded color of a 13-channel plan (odd,
  // so the last basic channel is in no bond).
  std::vector<Channel> colors;
  for (int i = 0; i < 13; ++i) colors.push_back(Channel::basic(i));
  for (int p = 0; p < 6; ++p) colors.push_back(Channel::bonded(p));
  const auto shared_count = [](const Channel& a, const Channel& b) {
    int shared = 0;
    for (int ca : a.occupied()) {
      for (int cb : b.occupied()) shared += ca == cb ? 1 : 0;
    }
    return shared;
  };
  for (const Channel& a : colors) {
    // Self: total overlap, conflicting.
    EXPECT_TRUE(a.conflicts(a));
    EXPECT_DOUBLE_EQ(a.overlap_fraction(a), 1.0);
    for (const Channel& b : colors) {
      const int shared = shared_count(a, b);
      // conflicts == "occupied sets intersect", symmetric.
      EXPECT_EQ(a.conflicts(b), shared > 0) << a.to_string() << " vs "
                                            << b.to_string();
      EXPECT_EQ(a.conflicts(b), b.conflicts(a));
      // overlap_fraction is shared/|own|: values limited to {0, .5, 1},
      // nonzero exactly when conflicting, and the shared count is
      // symmetric: overlap(a,b)*|a| == overlap(b,a)*|b|.
      const double f_ab = a.overlap_fraction(b);
      const double f_ba = b.overlap_fraction(a);
      EXPECT_TRUE(f_ab == 0.0 || f_ab == 0.5 || f_ab == 1.0)
          << a.to_string() << " vs " << b.to_string() << ": " << f_ab;
      EXPECT_DOUBLE_EQ(
          f_ab, static_cast<double>(shared) /
                    static_cast<double>(a.occupied().size()));
      EXPECT_DOUBLE_EQ(f_ab * static_cast<double>(a.occupied().size()),
                       f_ba * static_cast<double>(b.occupied().size()));
      EXPECT_EQ(f_ab > 0.0, a.conflicts(b));
    }
  }
}

TEST(Channel, AdjacentBondsAreAlignedAndDisjoint) {
  // 802.11n bonds are even-aligned: bonded(p) occupies {2p, 2p+1}, so
  // two *different* bonds can never share a basic channel — "adjacent
  // bonds sharing one basic channel" (e.g. {1,2}) are unrepresentable
  // by construction, which is exactly why the all-pairs walk above sees
  // only {0, 0.5, 1} overlaps. Pin that alignment here so a future
  // channelization change (e.g. allowing odd-aligned bonds) must
  // revisit the DCB contention model's assumptions.
  for (int p = 0; p < 5; ++p) {
    const Channel bond = Channel::bonded(p);
    EXPECT_EQ(bond.primary() % 2, 0);
    EXPECT_EQ(bond.occupied(),
              (std::vector<int>{2 * p, 2 * p + 1}));
    EXPECT_FALSE(bond.conflicts(Channel::bonded(p + 1)));
    EXPECT_DOUBLE_EQ(bond.overlap_fraction(Channel::bonded(p + 1)), 0.0);
  }
}

TEST(ChannelPlan, AllChannelsBasicFirst) {
  const ChannelPlan plan(4);
  const auto all = plan.all_channels();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_FALSE(all[0].is_bonded());
  EXPECT_FALSE(all[3].is_bonded());
  EXPECT_TRUE(all[4].is_bonded());
  EXPECT_TRUE(all[5].is_bonded());
}

}  // namespace
}  // namespace acorn::net
