#include "core/allocation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "testutil.hpp"

namespace acorn::core {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

TEST(Allocator, ValidatesConfig) {
  EXPECT_THROW(ChannelAllocator(net::ChannelPlan(4), {0.9, 10}),
               std::invalid_argument);
  EXPECT_THROW(ChannelAllocator(net::ChannelPlan(4), {1.05, 0}),
               std::invalid_argument);
}

TEST(Allocator, RandomAssignmentUsesPlanColors) {
  const ChannelAllocator alloc{net::ChannelPlan(4)};
  util::Rng rng(1);
  const net::ChannelAssignment a = alloc.random_assignment(50, rng);
  EXPECT_EQ(a.size(), 50u);
  for (const net::Channel& c : a) {
    for (int occ : c.occupied()) {
      EXPECT_GE(occ, 0);
      EXPECT_LT(occ, 4);
    }
  }
}

TEST(Allocator, RejectsWrongInitialSize) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const ChannelAllocator alloc{net::ChannelPlan(4)};
  EXPECT_THROW(alloc.allocate(wlan, b.intended_association(),
                              {net::Channel::basic(0)}),
               std::invalid_argument);
}

TEST(Allocator, NeverDecreasesThroughput) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const ChannelAllocator alloc{net::ChannelPlan(12)};
  util::Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const net::ChannelAssignment initial = alloc.random_assignment(2, rng);
    const double before =
        wlan.evaluate(assoc, initial).total_goodput_bps;
    const AllocationResult result = alloc.allocate(wlan, assoc, initial);
    EXPECT_GE(result.final_bps, before - 1.0);
    // The trajectory is monotone nondecreasing.
    for (std::size_t i = 1; i < result.trajectory_bps.size(); ++i) {
      EXPECT_GE(result.trajectory_bps[i], result.trajectory_bps[i - 1] - 1.0);
    }
  }
}

TEST(Allocator, AssignsTwentyToPoorCell) {
  // Topology 1 behaviour: the allocator must end with the poor cell on a
  // 20 MHz channel and the good cell on a 40 MHz bond.
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const ChannelAllocator alloc{net::ChannelPlan(12)};
  util::Rng rng(3);
  const AllocationResult result = alloc.allocate(
      wlan, b.intended_association(), alloc.random_assignment(2, rng));
  EXPECT_EQ(result.assignment[0].width(), phy::ChannelWidth::k20MHz);
  EXPECT_EQ(result.assignment[1].width(), phy::ChannelWidth::k40MHz);
}

TEST(Allocator, SeparatesContendingAps) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}},
             CellSpec{{testutil::kGoodLinkLoss}}};
  b.ap_ap_loss_db = 90.0;  // contending
  const sim::Wlan wlan = b.build();
  const ChannelAllocator alloc{net::ChannelPlan(12)};
  // Start both on the same bond.
  net::ChannelAssignment initial = {net::Channel::bonded(0),
                                    net::Channel::bonded(0)};
  const AllocationResult result =
      alloc.allocate(wlan, b.intended_association(), initial);
  EXPECT_FALSE(result.assignment[0].conflicts(result.assignment[1]));
}

TEST(Allocator, StopsWhenNoImprovementPossible) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const ChannelAllocator alloc{net::ChannelPlan(12)};
  util::Rng rng(4);
  const AllocationResult first = alloc.allocate(
      wlan, b.intended_association(), alloc.random_assignment(2, rng));
  // Re-running from the fixed point changes nothing.
  const AllocationResult second =
      alloc.allocate(wlan, b.intended_association(), first.assignment);
  EXPECT_EQ(second.switches, 0);
  EXPECT_NEAR(second.final_bps, first.final_bps, 1.0);
}

TEST(Allocator, CountsEvaluationsAndSwitches) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const ChannelAllocator alloc{net::ChannelPlan(4)};
  net::ChannelAssignment initial = {net::Channel::bonded(0),
                                    net::Channel::bonded(0)};
  const AllocationResult result =
      alloc.allocate(wlan, b.intended_association(), initial);
  EXPECT_GT(result.evaluations, 0);
  EXPECT_GE(result.switches, 1);
  EXPECT_EQ(result.trajectory_bps.size(),
            static_cast<std::size_t>(result.switches) + 1);
}

TEST(Allocator, ConvergedNetworkStopsAfterOneScan) {
  // Regression: a round that commits zero switches must end the search
  // unconditionally. With epsilon == 1.0 (allowed by the ctor) the old
  // epsilon test `y < eps * y_round_start` never fired on a converged
  // network and all max_rounds rounds burned full n_aps x n_colors scans.
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const int n_colors =
      static_cast<int>(net::ChannelPlan(4).all_channels().size());
  const ChannelAllocator alloc{net::ChannelPlan(4), {1.0, 16}};
  util::Rng rng(21);
  const AllocationResult first = alloc.allocate(
      wlan, b.intended_association(), alloc.random_assignment(2, rng));
  // Re-run from the fixed point: exactly the initial evaluation plus one
  // full scan, O(n_aps x n_colors), then stop.
  const AllocationResult second =
      alloc.allocate(wlan, b.intended_association(), first.assignment);
  EXPECT_EQ(second.switches, 0);
  EXPECT_EQ(second.evaluations, 1 + 2 * (n_colors - 1));
}

TEST(Allocator, DegenerateZeroGoodputStopsAfterOneScan) {
  // Regression: with no clients every oracle call returns 0, so
  // `y < eps * y_round_start` (0 < eps * 0) was always false and the old
  // loop rescanned the empty network for all max_rounds rounds.
  ScenarioBuilder b;
  b.cells = {CellSpec{{}}, CellSpec{{}}};  // two APs, zero clients
  const sim::Wlan wlan = b.build();
  const int n_colors =
      static_cast<int>(net::ChannelPlan(4).all_channels().size());
  const ChannelAllocator alloc{net::ChannelPlan(4)};
  const AllocationResult result = alloc.allocate(
      wlan, {}, {net::Channel::basic(0), net::Channel::basic(1)});
  EXPECT_EQ(result.final_bps, 0.0);
  EXPECT_EQ(result.switches, 0);
  EXPECT_EQ(result.evaluations, 1 + 2 * (n_colors - 1));
}

TEST(Allocator, EvaluationCounterIncludesInitialMeasurement) {
  // The paper's k counter: the initial y(F_0) call plus every candidate
  // trial. On a flat landscape one scan finds no winner and the search
  // ends, so the count is exact.
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const int n_colors =
      static_cast<int>(net::ChannelPlan(4).all_channels().size());
  const ChannelAllocator alloc{net::ChannelPlan(4)};
  const ThroughputOracle flat =
      [](const net::Association&, const net::ChannelAssignment&) {
        return 1.0;
      };
  const AllocationResult result =
      alloc.allocate(wlan, b.intended_association(),
                     {net::Channel::basic(0), net::Channel::basic(1)}, flat);
  EXPECT_EQ(result.evaluations, 1 + 2 * (n_colors - 1));
}

TEST(Allocator, CustomOracleIsUsed) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const ChannelAllocator alloc{net::ChannelPlan(4)};
  int oracle_calls = 0;
  const ThroughputOracle oracle =
      [&oracle_calls](const net::Association&,
                      const net::ChannelAssignment&) {
        ++oracle_calls;
        return 1.0;  // flat landscape: nothing to improve
      };
  const AllocationResult result =
      alloc.allocate(wlan, b.intended_association(),
                     {net::Channel::basic(0), net::Channel::basic(1)},
                     oracle);
  EXPECT_GT(oracle_calls, 0);
  EXPECT_EQ(result.switches, 0);
}

TEST(Allocator, WorstCaseBoundHolds) {
  // O(1/(Delta+1)): final throughput >= Y* / (Delta + 1) on a contending
  // pair (Delta = 1).
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}},
             CellSpec{{testutil::kMediumLinkLoss}}};
  b.ap_ap_loss_db = 88.0;
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const ChannelAllocator alloc{net::ChannelPlan(2)};
  util::Rng rng(5);
  const double upper = isolated_upper_bound_bps(wlan, assoc);
  for (int trial = 0; trial < 5; ++trial) {
    const AllocationResult result =
        alloc.allocate(wlan, assoc, alloc.random_assignment(2, rng));
    EXPECT_GE(result.final_bps, upper / 2.0 * 0.95);
  }
}

TEST(Allocator, ReachesUpperBoundWithPlentyOfChannels) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}},
             CellSpec{{testutil::kGoodLinkLoss}}};
  b.ap_ap_loss_db = 88.0;
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const ChannelAllocator alloc{net::ChannelPlan(12)};
  util::Rng rng(6);
  const AllocationResult result =
      alloc.allocate(wlan, assoc, alloc.random_assignment(2, rng));
  EXPECT_NEAR(result.final_bps, isolated_upper_bound_bps(wlan, assoc),
              0.02 * result.final_bps);
}

TEST(UpperBound, SumsIsolatedBests) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const double upper = isolated_upper_bound_bps(wlan, assoc);
  EXPECT_NEAR(upper,
              wlan.isolated_best_bps(0, {0, 1}) +
                  wlan.isolated_best_bps(1, {2, 3}),
              1.0);
}

}  // namespace
}  // namespace acorn::core
