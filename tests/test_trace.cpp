#include "trace/association_trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acorn::trace {
namespace {

TEST(DurationModel, CdfIsAValidDistribution) {
  const AssociationDurationModel m;
  EXPECT_EQ(m.cdf(0.0), 0.0);
  EXPECT_EQ(m.cdf(-5.0), 0.0);
  EXPECT_NEAR(m.cdf(1e7), 1.0, 1e-6);
  double prev = 0.0;
  for (double x = 10.0; x < 30000.0; x *= 1.3) {
    const double c = m.cdf(x);
    EXPECT_GE(c, prev);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST(DurationModel, MedianNearThirtyOneMinutes) {
  // The paper reports ~31 min; the synthetic model targets that band.
  const AssociationDurationModel m;
  const double median = m.quantile(0.5);
  EXPECT_GT(median, 25.0 * 60.0);
  EXPECT_LT(median, 35.0 * 60.0);
}

TEST(DurationModel, NinetyPercentBelowFortyMinutes) {
  const AssociationDurationModel m;
  EXPECT_GE(m.cdf(40.0 * 60.0), 0.88);  // paper: "more than 90%"
}

TEST(DurationModel, HeavyTailExists) {
  const AssociationDurationModel m;
  // A visible fraction of sessions outlast two hours (Fig. 9's tail).
  const double above_2h = 1.0 - m.cdf(7200.0);
  EXPECT_GT(above_2h, 0.005);
  EXPECT_LT(above_2h, 0.10);
}

TEST(DurationModel, QuantileInvertsCdf) {
  const AssociationDurationModel m;
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    const double q = m.quantile(p);
    EXPECT_NEAR(m.cdf(q), p, 1e-3);
  }
}

TEST(DurationModel, QuantileRejectsBadP) {
  const AssociationDurationModel m;
  EXPECT_THROW(m.quantile(0.0), std::invalid_argument);
  EXPECT_THROW(m.quantile(1.0), std::invalid_argument);
}

TEST(DurationModel, SamplesMatchAnalyticCdf) {
  const AssociationDurationModel m;
  util::Rng rng(1);
  std::vector<double> samples(20000);
  for (auto& s : samples) s = m.sample(rng);
  const util::Ecdf ecdf(std::move(samples));
  for (double x : {900.0, 1800.0, 2400.0, 5000.0}) {
    EXPECT_NEAR(ecdf.at(x), m.cdf(x), 0.02) << "x=" << x;
  }
}

TEST(TraceGenerator, RejectsBadConfig) {
  const AssociationDurationModel m;
  util::Rng rng(2);
  TraceConfig cfg;
  cfg.num_aps = 0;
  EXPECT_THROW(generate_trace(cfg, m, rng), std::invalid_argument);
  cfg = TraceConfig{};
  cfg.mean_gap_s = 0.0;
  EXPECT_THROW(generate_trace(cfg, m, rng), std::invalid_argument);
}

TEST(TraceGenerator, ProducesRequestedVolume) {
  const AssociationDurationModel m;
  util::Rng rng(3);
  TraceConfig cfg;
  cfg.num_aps = 10;
  cfg.sessions_per_ap = 20;
  const auto trace = generate_trace(cfg, m, rng);
  EXPECT_EQ(trace.size(), 200u);
}

TEST(TraceGenerator, SessionsPerApDoNotOverlap) {
  const AssociationDurationModel m;
  util::Rng rng(4);
  TraceConfig cfg;
  cfg.num_aps = 3;
  cfg.sessions_per_ap = 30;
  const auto trace = generate_trace(cfg, m, rng);
  double last_end[3] = {0.0, 0.0, 0.0};
  for (const AssociationRecord& r : trace) {
    EXPECT_GE(r.start_s, last_end[r.ap_id]);
    last_end[r.ap_id] = r.start_s + r.duration_s;
  }
}

TEST(TraceGenerator, DurationsOfExtractsAll) {
  const AssociationDurationModel m;
  util::Rng rng(5);
  TraceConfig cfg;
  cfg.num_aps = 2;
  cfg.sessions_per_ap = 5;
  const auto trace = generate_trace(cfg, m, rng);
  const auto durations = durations_of(trace);
  ASSERT_EQ(durations.size(), trace.size());
  for (double d : durations) EXPECT_GT(d, 0.0);
}

TEST(Periodicity, RecommendsThirtyMinutes) {
  // The paper runs channel allocation every 30 min because the median
  // association lasts ~31 min.
  const AssociationDurationModel m;
  EXPECT_DOUBLE_EQ(recommended_period_s(m), 1800.0);
}

TEST(Periodicity, TracksTheMedian) {
  AssociationDurationModel m;
  m.body_median_s = 600.0;  // 10-minute sessions
  const double period = recommended_period_s(m);
  EXPECT_GE(period, 300.0);
  EXPECT_LE(period, 900.0);
}

}  // namespace
}  // namespace acorn::trace
