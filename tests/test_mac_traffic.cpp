#include "mac/traffic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace acorn::mac {
namespace {

TEST(ResidualLoss, ZeroPerIsZero) {
  const TrafficModel m;
  EXPECT_EQ(residual_loss(m, 0.0), 0.0);
}

TEST(ResidualLoss, RetriesSuppressLossGeometrically) {
  TrafficModel m;
  m.retry_limit = 3;
  EXPECT_NEAR(residual_loss(m, 0.1), std::pow(0.1, 4), 1e-15);
}

TEST(ResidualLoss, CertainPerSurvivesRetries) {
  const TrafficModel m;
  EXPECT_DOUBLE_EQ(residual_loss(m, 1.0), 1.0);
}

TEST(ResidualLoss, RejectsOutOfRange) {
  const TrafficModel m;
  EXPECT_THROW(residual_loss(m, -0.1), std::invalid_argument);
  EXPECT_THROW(residual_loss(m, 1.1), std::invalid_argument);
}

TEST(MathisCap, InfiniteWithoutLoss) {
  const TrafficModel m;
  EXPECT_TRUE(std::isinf(mathis_cap_bps(m, 0.0)));
}

TEST(MathisCap, KnownValue) {
  TrafficModel m;
  m.rtt_s = 0.01;
  m.mss_bits = 1460 * 8;
  // q = 0.01: MSS/(RTT*sqrt(2q/3)).
  const double expected = 1460.0 * 8.0 / (0.01 * std::sqrt(2.0 * 0.01 / 3.0));
  EXPECT_NEAR(mathis_cap_bps(m, 0.01), expected, 1.0);
}

TEST(MathisCap, DecreasesWithLoss) {
  const TrafficModel m;
  EXPECT_GT(mathis_cap_bps(m, 1e-4), mathis_cap_bps(m, 1e-2));
}

TEST(TransportGoodput, UdpIsEfficiencyScaled) {
  const TrafficModel m;
  EXPECT_NEAR(transport_goodput_bps(m, TrafficType::kUdp, 100e6, 0.9),
              m.udp_efficiency * 100e6, 1.0);
}

TEST(TransportGoodput, UdpIgnoresPer) {
  // The MAC throughput already accounts for retries; UDP adds nothing.
  const TrafficModel m;
  EXPECT_DOUBLE_EQ(transport_goodput_bps(m, TrafficType::kUdp, 50e6, 0.0),
                   transport_goodput_bps(m, TrafficType::kUdp, 50e6, 0.6));
}

TEST(TransportGoodput, TcpBelowUdpOnCleanLink) {
  const TrafficModel m;
  const double udp = transport_goodput_bps(m, TrafficType::kUdp, 100e6, 0.0);
  const double tcp = transport_goodput_bps(m, TrafficType::kTcp, 100e6, 0.0);
  EXPECT_LT(tcp, udp);
  EXPECT_NEAR(tcp, m.tcp_efficiency * 100e6, 1.0);
}

TEST(TransportGoodput, TcpCollapsesUnderHeavyLoss) {
  const TrafficModel m;
  const double clean = transport_goodput_bps(m, TrafficType::kTcp, 50e6, 0.0);
  const double lossy = transport_goodput_bps(m, TrafficType::kTcp, 50e6, 0.8);
  EXPECT_LT(lossy, 0.5 * clean);
}

TEST(TransportGoodput, TcpMoreSensitiveThanUdp) {
  // Paper §3.2: "TCP is more sensitive to packet losses" — the relative
  // drop from a PER increase is larger for TCP.
  const TrafficModel m;
  const double udp_drop =
      transport_goodput_bps(m, TrafficType::kUdp, 50e6, 0.7) /
      transport_goodput_bps(m, TrafficType::kUdp, 50e6, 0.0);
  const double tcp_drop =
      transport_goodput_bps(m, TrafficType::kTcp, 50e6, 0.7) /
      transport_goodput_bps(m, TrafficType::kTcp, 50e6, 0.0);
  EXPECT_LT(tcp_drop, udp_drop);
}

TEST(TransportGoodput, RejectsNegativeThroughput) {
  const TrafficModel m;
  EXPECT_THROW(transport_goodput_bps(m, TrafficType::kUdp, -1.0, 0.0),
               std::invalid_argument);
}

TEST(TransportGoodput, ModerateLossDoesNotBindMathis) {
  // With default retry limit 7, PER 0.3 leaves residual ~2e-4: the Mathis
  // cap sits far above the MAC goodput, so the short-timescale window
  // factor (1 - PER)^k is what shapes the result.
  const TrafficModel m;
  const double tcp = transport_goodput_bps(m, TrafficType::kTcp, 60e6, 0.3);
  EXPECT_NEAR(tcp,
              m.tcp_efficiency * std::pow(0.7, m.tcp_loss_sensitivity) * 60e6,
              1e3);
}

TEST(TransportGoodput, WindowFactorPenalizesPerDirectly) {
  // Two links with the same MAC goodput but different PERs: TCP prefers
  // the cleaner one even though MAC retries already equalized them.
  const TrafficModel m;
  const double clean = transport_goodput_bps(m, TrafficType::kTcp, 40e6, 0.05);
  const double dirty = transport_goodput_bps(m, TrafficType::kTcp, 40e6, 0.30);
  EXPECT_GT(clean, 1.2 * dirty);
}

}  // namespace
}  // namespace acorn::mac
