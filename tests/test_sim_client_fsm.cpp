#include "sim/client_fsm.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acorn::sim {
namespace {

struct Harness {
  EventQueue queue;
  double rss_ap0 = -60.0;
  double rss_ap1 = -80.0;
  std::optional<int> pick = 0;

  ClientFsm make(ClientFsmConfig cfg = {}) {
    return ClientFsm(
        7, cfg,
        [this](int ap) { return ap == 0 ? rss_ap0 : rss_ap1; },
        [this]() { return pick; });
  }
};

TEST(ClientFsm, RejectsMissingHooks) {
  EXPECT_THROW(ClientFsm(0, {}, nullptr, []() { return std::nullopt; }),
               std::invalid_argument);
}

TEST(ClientFsm, StartsIdle) {
  Harness h;
  ClientFsm fsm = h.make();
  EXPECT_EQ(fsm.state(), ClientState::kIdle);
  EXPECT_EQ(fsm.serving_ap(), -1);
}

TEST(ClientFsm, JoinWalksThroughScanAndAssociation) {
  Harness h;
  ClientFsm fsm = h.make();
  fsm.join(h.queue);
  EXPECT_EQ(fsm.state(), ClientState::kScanning);
  h.queue.run_until(0.4);  // scan takes 0.5 s
  EXPECT_EQ(fsm.state(), ClientState::kScanning);
  h.queue.run_until(0.55);
  EXPECT_EQ(fsm.state(), ClientState::kAssociating);
  h.queue.run_until(0.7);
  EXPECT_EQ(fsm.state(), ClientState::kAssociated);
  EXPECT_EQ(fsm.serving_ap(), 0);
}

TEST(ClientFsm, JoinTwiceIsAnError) {
  Harness h;
  ClientFsm fsm = h.make();
  fsm.join(h.queue);
  EXPECT_THROW(fsm.join(h.queue), std::logic_error);
}

TEST(ClientFsm, NoApMeansIdleWithRetry) {
  Harness h;
  h.pick = std::nullopt;
  ClientFsm fsm = h.make();
  fsm.join(h.queue);
  h.queue.run_until(1.0);
  EXPECT_EQ(fsm.state(), ClientState::kIdle);
  // An AP appears: the scheduled rescan finds it.
  h.pick = 1;
  h.queue.run_until(5.0);
  EXPECT_EQ(fsm.state(), ClientState::kAssociated);
  EXPECT_EQ(fsm.serving_ap(), 1);
}

TEST(ClientFsm, StaysPutWithoutBetterAp) {
  Harness h;
  ClientFsm fsm = h.make();
  fsm.join(h.queue);
  h.queue.run_until(30.0);
  EXPECT_EQ(fsm.state(), ClientState::kAssociated);
  EXPECT_EQ(fsm.serving_ap(), 0);
  // Exactly one association in the history.
  int associations = 0;
  for (const ClientTransition& tr : fsm.history()) {
    if (tr.to == ClientState::kAssociated) ++associations;
  }
  EXPECT_EQ(associations, 1);
}

TEST(ClientFsm, RoamsWhenAlternativeClearsHysteresis) {
  Harness h;
  ClientFsm fsm = h.make();
  fsm.join(h.queue);
  h.queue.run_until(1.0);
  ASSERT_EQ(fsm.serving_ap(), 0);
  // AP1 becomes much stronger and the policy starts picking it.
  h.rss_ap1 = -50.0;
  h.pick = 1;
  h.queue.run_until(10.0);
  EXPECT_EQ(fsm.state(), ClientState::kAssociated);
  EXPECT_EQ(fsm.serving_ap(), 1);
}

TEST(ClientFsm, DoesNotRoamWithinHysteresis) {
  Harness h;
  ClientFsm fsm = h.make();
  fsm.join(h.queue);
  h.queue.run_until(1.0);
  // AP1 only 3 dB better (< default 6 dB hysteresis), policy prefers it.
  h.rss_ap1 = h.rss_ap0 + 3.0;
  h.pick = 1;
  h.queue.run_until(20.0);
  EXPECT_EQ(fsm.serving_ap(), 0);
}

TEST(ClientFsm, RescansWhenServingLinkDies) {
  Harness h;
  ClientFsm fsm = h.make();
  fsm.join(h.queue);
  h.queue.run_until(1.0);
  ASSERT_EQ(fsm.serving_ap(), 0);
  h.rss_ap0 = -105.0;  // below min_serving_rss
  h.pick = 1;
  h.queue.run_until(10.0);
  EXPECT_EQ(fsm.serving_ap(), 1);
}

TEST(ClientFsm, LeaveDetachesAndCancelsTimers) {
  Harness h;
  ClientFsm fsm = h.make();
  fsm.join(h.queue);
  h.queue.run_until(1.0);
  ASSERT_EQ(fsm.state(), ClientState::kAssociated);
  fsm.leave(h.queue);
  EXPECT_EQ(fsm.state(), ClientState::kIdle);
  EXPECT_EQ(fsm.serving_ap(), -1);
  // Any still-queued monitor events are no-ops.
  h.queue.run_until(60.0);
  EXPECT_EQ(fsm.state(), ClientState::kIdle);
}

TEST(ClientFsm, HistoryRecordsTimesInOrder) {
  Harness h;
  ClientFsm fsm = h.make();
  fsm.join(h.queue);
  h.queue.run_until(2.0);
  const auto& history = fsm.history();
  ASSERT_GE(history.size(), 3u);
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_GE(history[i].time_s, history[i - 1].time_s);
  }
  EXPECT_EQ(history.front().to, ClientState::kScanning);
  EXPECT_EQ(history.back().to, ClientState::kAssociated);
}

TEST(ClientFsm, StateNames) {
  EXPECT_STREQ(to_string(ClientState::kIdle), "IDLE");
  EXPECT_STREQ(to_string(ClientState::kAssociated), "ASSOCIATED");
}

}  // namespace
}  // namespace acorn::sim
