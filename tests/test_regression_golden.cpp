// Golden regression values for fixed seeds. These pin the *calibrated
// shape* of the model: if a change moves any of these outside the stated
// bands, the paper-reproduction benches have drifted and EXPERIMENTS.md
// needs re-validation. Bands are deliberately loose — they encode the
// claims, not exact floats.
#include <gtest/gtest.h>

#include "baselines/kauffmann17.hpp"
#include "core/controller.hpp"
#include "phy/noise.hpp"
#include "phy/sigma.hpp"
#include "testutil.hpp"
#include "trace/association_trace.hpp"

namespace acorn {
namespace {

TEST(Golden, CbPenaltyIsAboutThreeDb) {
  EXPECT_NEAR(phy::cb_snr_penalty_db(), 3.17, 0.02);
}

TEST(Golden, Topology1Numbers) {
  const testutil::ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const core::AcornController acorn;
  util::Rng rng(1);
  const core::ConfigureResult ours = acorn.configure(wlan, rng);
  // Poor cell on 20 MHz in the 4-8 Mbps band; good cell on a bond in the
  // 35-50 Mbps band.
  EXPECT_EQ(ours.assignment[0].width(), phy::ChannelWidth::k20MHz);
  EXPECT_GT(ours.evaluation.per_ap[0].goodput_bps, 4e6);
  EXPECT_LT(ours.evaluation.per_ap[0].goodput_bps, 8e6);
  EXPECT_GT(ours.evaluation.per_ap[1].goodput_bps, 35e6);
  EXPECT_LT(ours.evaluation.per_ap[1].goodput_bps, 50e6);
  // The gain over the forced-CB baseline stays in the paper's 1.5x-6x
  // band for this cell class.
  const baselines::Kauffmann17 k17{net::ChannelPlan(12)};
  const auto theirs = k17.configure(wlan);
  const auto eval =
      wlan.evaluate(theirs.association, theirs.assignment);
  const double gain = ours.evaluation.per_ap[0].goodput_bps /
                      eval.per_ap[0].goodput_bps;
  EXPECT_GT(gain, 1.5);
  EXPECT_LT(gain, 8.0);
}

TEST(Golden, SigmaWindowsStayPut) {
  const phy::LinkModel link;
  const auto window = phy::sigma_window(link, phy::mcs(2));
  ASSERT_TRUE(window.has_value());
  EXPECT_NEAR(window->enter_db, 6.9, 1.0);
  EXPECT_NEAR(window->exit_db, 11.3, 1.0);
}

TEST(Golden, LinkClassSemantics) {
  // The scenario link classes must keep their meaning: good prefers CB,
  // weak/poor prefer 20 MHz with specific gain bands.
  testutil::ScenarioBuilder b;
  b.cells = {testutil::CellSpec{{testutil::kWeakLinkLoss}},
             testutil::CellSpec{{testutil::kPoorLinkLoss}},
             testutil::CellSpec{{testutil::kGoodLinkLoss}}};
  const sim::Wlan wlan = b.build();
  const double weak20 =
      wlan.isolated_cell_bps(0, {0}, phy::ChannelWidth::k20MHz);
  const double weak40 =
      wlan.isolated_cell_bps(0, {0}, phy::ChannelWidth::k40MHz);
  EXPECT_GT(weak20 / weak40, 1.2);
  EXPECT_LT(weak20 / weak40, 2.5);
  const double poor20 =
      wlan.isolated_cell_bps(1, {1}, phy::ChannelWidth::k20MHz);
  const double poor40 =
      wlan.isolated_cell_bps(1, {1}, phy::ChannelWidth::k40MHz);
  EXPECT_GT(poor20 / poor40, 2.0);
  // At cell level the fixed per-frame MAC overhead (no aggregation, as
  // in the paper's era) caps CB's gain well below the PHY-level ratio;
  // see the aggregation ablation bench.
  const double good20 =
      wlan.isolated_cell_bps(2, {2}, phy::ChannelWidth::k20MHz);
  const double good40 =
      wlan.isolated_cell_bps(2, {2}, phy::ChannelWidth::k40MHz);
  EXPECT_GT(good40 / good20, 1.05);
  // The PHY-level goodput ratio stays near the nominal-rate advantage.
  const auto cmp = phy::compare_widths(wlan.link_model(), 15.0,
                                       testutil::kGoodLinkLoss);
  EXPECT_GT(cmp.on40.goodput_bps / cmp.on20.goodput_bps, 1.6);
}

TEST(Golden, TraceMedianAndPeriod) {
  const trace::AssociationDurationModel model;
  EXPECT_NEAR(model.quantile(0.5) / 60.0, 30.0, 2.0);
  EXPECT_DOUBLE_EQ(trace::recommended_period_s(model), 1800.0);
}

TEST(Golden, McsRatesExact) {
  EXPECT_DOUBLE_EQ(
      phy::mcs(7).rate_bps(phy::ChannelWidth::k20MHz,
                           phy::GuardInterval::kLong800ns),
      65e6);
  EXPECT_DOUBLE_EQ(
      phy::mcs(15).rate_bps(phy::ChannelWidth::k40MHz,
                            phy::GuardInterval::kShort400ns),
      300e6);
}

}  // namespace
}  // namespace acorn
