#include "phy/sigma.hpp"

#include <gtest/gtest.h>

#include "phy/noise.hpp"

namespace acorn::phy {
namespace {

TEST(RateRatio, IsAboutTwo) {
  for (const McsEntry& e : mcs_table()) {
    EXPECT_NEAR(rate_ratio_40_over_20(e), 108.0 / 52.0, 1e-9);
  }
}

TEST(Sigma, ApproachesOneAtHighSnr) {
  const LinkModel link;
  // Both widths deliver everything: sigma -> 1.
  EXPECT_NEAR(sigma_at_snr(link, mcs(2), 35.0), 1.0, 1e-3);
}

TEST(Sigma, NearOneDeepInOutage) {
  const LinkModel link;
  // Both PERs ~ 1; the ratio of tiny delivery probabilities stays small
  // or is treated as 1 (paper: "sigma ~ 1" at low Tx).
  const double s = sigma_at_snr(link, mcs(6), -15.0);
  EXPECT_TRUE(s >= 0.0);
}

TEST(Sigma, ExceedsTwoInTransitionWindow) {
  const LinkModel link;
  // Paper Fig. 5: for each modcod there is a power band where CB hurts.
  const auto window = sigma_window(link, mcs(2));
  ASSERT_TRUE(window.has_value());
  const double mid = 0.5 * (window->enter_db + window->exit_db);
  EXPECT_GE(sigma_at_snr(link, mcs(2), mid), 2.0);
}

TEST(Sigma, WindowsRiseWithModulationAggressiveness) {
  const LinkModel link;
  // Table 1 ordering: QPSK3/4 < 16QAM3/4 < 64QAM3/4 < 64QAM5/6.
  const auto qpsk = sigma_window(link, mcs(2));
  const auto qam16 = sigma_window(link, mcs(4));
  const auto qam64 = sigma_window(link, mcs(6));
  const auto qam64h = sigma_window(link, mcs(7));
  ASSERT_TRUE(qpsk && qam16 && qam64 && qam64h);
  EXPECT_LT(qpsk->enter_db, qam16->enter_db);
  EXPECT_LT(qam16->enter_db, qam64->enter_db);
  EXPECT_LT(qam64->enter_db, qam64h->enter_db);
}

TEST(Sigma, WindowSpansFewDb) {
  const LinkModel link;
  // Paper: "maps to a 2-3 dB difference in SNR". Allow some slack for the
  // model's fading margin.
  for (int idx : {2, 4, 6, 7}) {
    const auto window = sigma_window(link, mcs(idx));
    ASSERT_TRUE(window.has_value()) << "MCS " << idx;
    const double span = window->exit_db - window->enter_db;
    EXPECT_GT(span, 1.0) << "MCS " << idx;
    EXPECT_LT(span, 8.0) << "MCS " << idx;
  }
}

TEST(Sigma, NoWindowWhenSweepStartsAboveTransition) {
  const LinkModel link;
  // Both widths are error-free above 30 dB, so sigma never reaches 2.
  EXPECT_FALSE(sigma_window(link, mcs(2), 2.0, 30.0, 40.0).has_value());
}

TEST(Sigma, SweepRespectsCap) {
  const LinkModel link;
  const auto sweep = sigma_sweep(link, mcs(4), 100.0);
  EXPECT_EQ(sweep.size(), 101u);
  for (const auto& pt : sweep) {
    EXPECT_LE(pt.sigma, 10.0);
    EXPECT_GE(pt.sigma, 0.0);
  }
}

TEST(Sigma, SweepPowerAxisIsMonotone) {
  const LinkModel link;
  const auto sweep = sigma_sweep(link, mcs(4), 100.0, -10.0, 25.0, 51);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].tx_dbm, sweep[i - 1].tx_dbm);
  }
  EXPECT_NEAR(sweep.front().tx_dbm, -10.0, 1e-9);
  EXPECT_NEAR(sweep.back().tx_dbm, 25.0, 1e-9);
}

TEST(Sigma, SweepShowsHumpShape) {
  const LinkModel link;
  // On a mid-quality link, sigma starts ~1ish, rises >= 2, returns ~1.
  const auto sweep = sigma_sweep(link, mcs(2), 112.0, -5.0, 30.0, 141);
  double peak = 0.0;
  for (const auto& pt : sweep) peak = std::max(peak, pt.sigma);
  EXPECT_GE(peak, 2.0);
  EXPECT_NEAR(sweep.back().sigma, 1.0, 0.05);
}

TEST(Sigma, ConsistentWithTxFormulation) {
  const LinkModel link;
  const double tx = 10.0;
  const double pl = 100.0;
  const double snr20 = link.snr_db(tx, pl, ChannelWidth::k20MHz);
  EXPECT_DOUBLE_EQ(sigma(link, mcs(4), tx, pl),
                   sigma_at_snr(link, mcs(4), snr20));
}

// Table 1 regeneration property: each modcod's window exists within the
// sweep range used by the bench.
class SigmaWindowSweep : public ::testing::TestWithParam<int> {};

TEST_P(SigmaWindowSweep, WindowInsideSweepRange) {
  const LinkModel link;
  const auto window = sigma_window(link, mcs(GetParam()), 2.0, -15.0, 40.0);
  ASSERT_TRUE(window.has_value());
  EXPECT_GT(window->enter_db, -15.0);
  EXPECT_LT(window->exit_db, 40.0);
}

INSTANTIATE_TEST_SUITE_P(Table1Modcods, SigmaWindowSweep,
                         ::testing::Values(2, 4, 6, 7));

}  // namespace
}  // namespace acorn::phy
