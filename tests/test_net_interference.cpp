#include "net/interference.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acorn::net {
namespace {

// Three APs on a line; AP0-AP1 within CS range, AP2 isolated. One client
// per AP.
struct Fixture {
  Topology topo;
  PathLossModel model;
  util::Rng rng{1};
  LinkBudget budget;
  Association assoc;

  Fixture()
      : topo(make_topo()),
        budget(topo, model, rng),
        assoc{0, 1, 2} {
    budget.set_ap_ap_loss_db(0, 1, 90.0);   // 15 - 90 = -75 > CS
    budget.set_ap_ap_loss_db(0, 2, 130.0);  // below CS
    budget.set_ap_ap_loss_db(1, 2, 130.0);
    for (int a = 0; a < 3; ++a) {
      for (int c = 0; c < 3; ++c) {
        budget.set_ap_client_loss_db(a, c, a == c ? 80.0 : 130.0);
      }
    }
  }

  static Topology make_topo() {
    Topology t;
    t.add_ap(Point{0, 0});
    t.add_ap(Point{30, 0});
    t.add_ap(Point{300, 0});
    t.add_client(Point{1, 1});
    t.add_client(Point{31, 1});
    t.add_client(Point{301, 1});
    return t;
  }
};

TEST(InterferenceGraph, DirectApApEdges) {
  Fixture f;
  const InterferenceGraph g(f.topo, f.budget, f.assoc);
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_FALSE(g.adjacent(0, 2));
  EXPECT_FALSE(g.adjacent(1, 2));
}

TEST(InterferenceGraph, RejectsWrongAssociationSize) {
  Fixture f;
  const Association bad = {0, 1};
  EXPECT_THROW(InterferenceGraph(f.topo, f.budget, bad),
               std::invalid_argument);
}

TEST(InterferenceGraph, ClientEdgeCreatesApEdge) {
  // AP2 cannot hear AP1, but AP2's client is within AP1's range
  // (footnote 5: competing with the other AP's clients).
  Fixture f;
  f.budget.set_ap_client_loss_db(1, 2, 85.0);  // AP1 heard by client 2
  const InterferenceGraph g(f.topo, f.budget, f.assoc);
  EXPECT_TRUE(g.adjacent(1, 2));
}

TEST(InterferenceGraph, DegreeAndMaxDegree) {
  Fixture f;
  const InterferenceGraph g(f.topo, f.budget, f.assoc);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.degree(2), 0);
  EXPECT_EQ(g.max_degree(), 1);
}

TEST(InterferenceGraph, NeighborsList) {
  Fixture f;
  const InterferenceGraph g(f.topo, f.budget, f.assoc);
  EXPECT_EQ(g.neighbors(0), std::vector<int>{1});
  EXPECT_TRUE(g.neighbors(2).empty());
}

TEST(InterferenceGraph, BoundsChecking) {
  Fixture f;
  const InterferenceGraph g(f.topo, f.budget, f.assoc);
  EXPECT_THROW(g.adjacent(0, 3), std::out_of_range);
  EXPECT_THROW(g.adjacent(-1, 0), std::out_of_range);
}

TEST(InterferenceGraph, CsThresholdRespected) {
  Fixture f;
  InterferenceConfig cfg;
  cfg.carrier_sense_dbm = -60.0;  // very deaf: nothing contends
  const InterferenceGraph g(f.topo, f.budget, f.assoc, cfg);
  EXPECT_FALSE(g.adjacent(0, 1));
}

TEST(Contenders, OnlyOverlappingChannelsCount) {
  Fixture f;
  const InterferenceGraph g(f.topo, f.budget, f.assoc);
  ChannelAssignment same = {Channel::basic(0), Channel::basic(0),
                            Channel::basic(0)};
  EXPECT_EQ(contenders(g, same, 0), std::vector<int>{1});
  ChannelAssignment split = {Channel::basic(0), Channel::basic(1),
                             Channel::basic(0)};
  EXPECT_TRUE(contenders(g, split, 0).empty());
}

TEST(Contenders, BondOverlapsItsHalves) {
  Fixture f;
  const InterferenceGraph g(f.topo, f.budget, f.assoc);
  ChannelAssignment mix = {Channel::bonded(0), Channel::basic(1),
                           Channel::basic(5)};
  // AP0's bond {0,1} overlaps AP1's basic 1.
  EXPECT_EQ(contenders(g, mix, 0), std::vector<int>{1});
  EXPECT_EQ(contenders(g, mix, 1), std::vector<int>{0});
}

TEST(Contenders, NonAdjacentApsNeverContend) {
  Fixture f;
  const InterferenceGraph g(f.topo, f.budget, f.assoc);
  ChannelAssignment same = {Channel::basic(0), Channel::basic(0),
                            Channel::basic(0)};
  // AP2 shares the channel but is out of range of both.
  EXPECT_TRUE(contenders(g, same, 2).empty());
}

TEST(MediumShare, MatchesPaperFormula) {
  Fixture f;
  const InterferenceGraph g(f.topo, f.budget, f.assoc);
  ChannelAssignment same = {Channel::basic(0), Channel::basic(0),
                            Channel::basic(0)};
  EXPECT_DOUBLE_EQ(medium_access_share(g, same, 0), 0.5);
  EXPECT_DOUBLE_EQ(medium_access_share(g, same, 2), 1.0);
}

TEST(WeightedShare, MatchesBinaryOnFullOverlap) {
  Fixture f;
  const InterferenceGraph g(f.topo, f.budget, f.assoc);
  ChannelAssignment same = {Channel::basic(0), Channel::basic(0),
                            Channel::basic(0)};
  EXPECT_DOUBLE_EQ(medium_access_share_weighted(g, same, 0),
                   medium_access_share(g, same, 0));
}

TEST(WeightedShare, PartialOverlapCostsHalf) {
  Fixture f;
  const InterferenceGraph g(f.topo, f.budget, f.assoc);
  // AP0 on a bond {0,1}, neighbor AP1 on basic 1: overlap fraction of
  // AP0's band is 1/2 -> M = 1 / 1.5.
  ChannelAssignment mix = {Channel::bonded(0), Channel::basic(1),
                           Channel::basic(5)};
  EXPECT_DOUBLE_EQ(medium_access_share_weighted(g, mix, 0), 1.0 / 1.5);
  // The binary model charges a full slot.
  EXPECT_DOUBLE_EQ(medium_access_share(g, mix, 0), 0.5);
  // From the 20 MHz AP's perspective the bond covers its whole band.
  EXPECT_DOUBLE_EQ(medium_access_share_weighted(g, mix, 1), 0.5);
}

TEST(WeightedShare, NoOverlapIsFullShare) {
  Fixture f;
  const InterferenceGraph g(f.topo, f.budget, f.assoc);
  ChannelAssignment split = {Channel::basic(0), Channel::basic(1),
                             Channel::basic(2)};
  EXPECT_DOUBLE_EQ(medium_access_share_weighted(g, split, 0), 1.0);
}

TEST(MediumShare, AssignmentSizeValidated) {
  Fixture f;
  const InterferenceGraph g(f.topo, f.budget, f.assoc);
  ChannelAssignment wrong = {Channel::basic(0)};
  EXPECT_THROW(contenders(g, wrong, 0), std::invalid_argument);
}

}  // namespace
}  // namespace acorn::net
