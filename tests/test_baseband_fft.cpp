#include "baseband/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace acorn::baseband {
namespace {

TEST(Fft, PowerOfTwoDetection) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_TRUE(is_power_of_two(128));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(12));
  EXPECT_FALSE(is_power_of_two(100));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Cx> data(12);
  EXPECT_THROW(fft_in_place(data), std::invalid_argument);
  EXPECT_THROW(ifft_in_place(data), std::invalid_argument);
}

TEST(Fft, DeltaTransformsToFlatSpectrum) {
  std::vector<Cx> data(8, Cx{});
  data[0] = Cx(1.0, 0.0);
  const auto spec = fft(data);
  for (const Cx& x : spec) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantTransformsToDcBin) {
  std::vector<Cx> data(16, Cx(1.0, 0.0));
  const auto spec = fft(data);
  EXPECT_NEAR(spec[0].real(), 16.0, 1e-12);
  for (std::size_t k = 1; k < spec.size(); ++k) {
    EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInCorrectBin) {
  const std::size_t n = 64;
  const std::size_t tone = 5;
  std::vector<Cx> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * M_PI * tone * i / n;
    data[i] = Cx(std::cos(phase), std::sin(phase));
  }
  const auto spec = fft(data);
  EXPECT_NEAR(std::abs(spec[tone]), static_cast<double>(n), 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != tone) {
      EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, RoundTripIsIdentity) {
  // Table-driven twiddles: no per-stage drift, so the round trip holds
  // to near machine precision (the accumulated-twiddle kernel needed
  // 1e-10 here).
  util::Rng rng(5);
  for (std::size_t n : {8u, 64u, 128u, 256u}) {
    std::vector<Cx> data(n);
    for (auto& x : data) x = Cx(rng.normal(), rng.normal());
    const auto back = ifft(fft(data));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(back[i].real(), data[i].real(), 1e-13);
      EXPECT_NEAR(back[i].imag(), data[i].imag(), 1e-13);
    }
  }
}

TEST(Fft, LongTransformRoundTripStaysTight) {
  // 4096-point forward/inverse identity: the old `w *= wlen`
  // accumulation lost ~4 digits over butterflies this long.
  util::Rng rng(21);
  const std::size_t n = 4096;
  std::vector<Cx> data(n);
  for (auto& x : data) x = Cx(rng.normal(), rng.normal());
  const auto back = ifft(fft(data));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i].real(), data[i].real(), 1e-12);
    EXPECT_NEAR(back[i].imag(), data[i].imag(), 1e-12);
  }
}

TEST(Fft, PlanMatchesFreeFunctions) {
  util::Rng rng(22);
  const FftPlan plan(64);
  EXPECT_EQ(plan.size(), 64u);
  std::vector<Cx> a(64);
  for (auto& x : a) x = Cx(rng.normal(), rng.normal());
  std::vector<Cx> b = a;
  fft_in_place(a);
  plan.forward(b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);  // same plan tables -> bit-identical
  }
  EXPECT_THROW(plan.forward(std::span<Cx>(a.data(), 32)),
               std::invalid_argument);
  EXPECT_THROW(FftPlan(24), std::invalid_argument);
}

TEST(Fft, SharedPlanCacheReturnsSameInstance) {
  const FftPlan& p1 = fft_plan(128);
  const FftPlan& p2 = fft_plan(128);
  EXPECT_EQ(&p1, &p2);
  EXPECT_THROW(fft_plan(96), std::invalid_argument);
}

TEST(Fft, ParsevalEnergyConservation) {
  util::Rng rng(6);
  const std::size_t n = 128;
  std::vector<Cx> data(n);
  double time_energy = 0.0;
  for (auto& x : data) {
    x = Cx(rng.normal(), rng.normal());
    time_energy += std::norm(x);
  }
  const auto spec = fft(data);
  double freq_energy = 0.0;
  for (const Cx& x : spec) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n), 1e-6);
}

TEST(Fft, Linearity) {
  util::Rng rng(7);
  const std::size_t n = 32;
  std::vector<Cx> a(n);
  std::vector<Cx> b(n);
  std::vector<Cx> sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = Cx(rng.normal(), rng.normal());
    b[i] = Cx(rng.normal(), rng.normal());
    sum[i] = a[i] + 2.0 * b[i];
  }
  const auto fa = fft(a);
  const auto fb = fft(b);
  const auto fs = fft(sum);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(fs[k] - (fa[k] + 2.0 * fb[k])), 0.0, 1e-9);
  }
}

TEST(Ifft, NormalizationGivesUnitRoundTrip) {
  // IFFT of a one-hot frequency grid has 1/N amplitude per sample.
  std::vector<Cx> grid(64, Cx{});
  grid[3] = Cx(1.0, 0.0);
  const auto time = ifft(grid);
  for (const Cx& x : time) {
    EXPECT_NEAR(std::abs(x), 1.0 / 64.0, 1e-12);
  }
}

}  // namespace
}  // namespace acorn::baseband
