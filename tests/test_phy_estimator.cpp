#include "phy/estimator.hpp"

#include <gtest/gtest.h>

#include "phy/noise.hpp"

namespace acorn::phy {
namespace {

TEST(Calibration, SameWidthIsIdentity) {
  const LinkEstimator est;
  EXPECT_DOUBLE_EQ(est.calibrate_snr_db(12.0, ChannelWidth::k20MHz,
                                        ChannelWidth::k20MHz),
                   12.0);
  EXPECT_DOUBLE_EQ(est.calibrate_snr_db(12.0, ChannelWidth::k40MHz,
                                        ChannelWidth::k40MHz),
                   12.0);
}

TEST(Calibration, TwentyToFortySubtractsShift) {
  const LinkEstimator est;
  EXPECT_DOUBLE_EQ(est.calibrate_snr_db(12.0, ChannelWidth::k20MHz,
                                        ChannelWidth::k40MHz),
                   9.0);
}

TEST(Calibration, FortyToTwentyAddsShift) {
  const LinkEstimator est;
  EXPECT_DOUBLE_EQ(est.calibrate_snr_db(12.0, ChannelWidth::k40MHz,
                                        ChannelWidth::k20MHz),
                   15.0);
}

TEST(Calibration, RoundTripIsIdentity) {
  const LinkEstimator est;
  const double snr = 7.3;
  const double there = est.calibrate_snr_db(snr, ChannelWidth::k20MHz,
                                            ChannelWidth::k40MHz);
  EXPECT_DOUBLE_EQ(est.calibrate_snr_db(there, ChannelWidth::k40MHz,
                                        ChannelWidth::k20MHz),
                   snr);
}

TEST(Calibration, PaperShiftApproximatesTruePenalty) {
  // The paper uses 3 dB; the physical penalty is 3.17 dB. The estimator
  // should be within a quarter dB of the truth.
  const EstimatorConfig cfg;
  EXPECT_NEAR(cfg.width_shift_db, cb_snr_penalty_db(), 0.25);
}

TEST(Estimate, PipelineProducesConsistentPer) {
  const LinkEstimator est;
  const LinkEstimate e = est.estimate(mcs(2), 10.0, ChannelWidth::k20MHz,
                                      ChannelWidth::k20MHz);
  EXPECT_NEAR(e.per, packet_error_rate(e.ber, 1500 * 8), 1e-12);
}

TEST(Estimate, FortyPredictionWorseOnMarginalLink) {
  const LinkEstimator est;
  const double snr20 = 8.0;
  const LinkEstimate on20 = est.estimate(mcs(2), snr20, ChannelWidth::k20MHz,
                                         ChannelWidth::k20MHz);
  const LinkEstimate on40 = est.estimate(mcs(2), snr20, ChannelWidth::k20MHz,
                                         ChannelWidth::k40MHz);
  EXPECT_GT(on40.per, on20.per);
}

TEST(Estimate, GoodputUsesTargetWidthRate) {
  const LinkEstimator est;
  const LinkEstimate on40 = est.estimate(mcs(7), 38.0, ChannelWidth::k20MHz,
                                         ChannelWidth::k40MHz);
  // Near-zero PER at 35 dB: goodput ~ nominal 40 MHz rate.
  EXPECT_NEAR(on40.goodput_bps, 135e6, 1e6);
}

TEST(BestEstimate, PicksHighestGoodput) {
  const LinkEstimator est;
  const LinkEstimate best = est.best_estimate(20.0, ChannelWidth::k20MHz,
                                              ChannelWidth::k20MHz);
  for (const McsEntry& e : mcs_table()) {
    const LinkEstimate cand = est.estimate(e, 20.0, ChannelWidth::k20MHz,
                                           ChannelWidth::k20MHz);
    EXPECT_GE(best.goodput_bps, cand.goodput_bps - 1e-9);
  }
}

TEST(Classify, StrongLinkIsGood) {
  const LinkEstimator est;
  EXPECT_EQ(est.classify(30.0, ChannelWidth::k20MHz, ChannelWidth::k40MHz),
            LinkQuality::kGood);
}

TEST(Classify, HopelessLinkIsPoor) {
  const LinkEstimator est;
  EXPECT_EQ(est.classify(-8.0, ChannelWidth::k20MHz, ChannelWidth::k40MHz),
            LinkQuality::kPoor);
}

TEST(Classify, WidthChangesClassificationNearBoundary) {
  const LinkEstimator est;
  // Find an SNR that is good on 20 MHz but poor on 40 MHz — the heart of
  // ACORN's CB decision.
  bool found = false;
  for (double snr = -5.0; snr <= 15.0; snr += 0.25) {
    if (est.classify(snr, ChannelWidth::k20MHz, ChannelWidth::k20MHz) ==
            LinkQuality::kGood &&
        est.classify(snr, ChannelWidth::k20MHz, ChannelWidth::k40MHz) ==
            LinkQuality::kPoor) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Estimator, EstimateTracksLinkModelWithinTolerance) {
  // The estimator (3.0 dB shift, no fading margin) should be a coarse but
  // sane predictor of the true model (3.17 dB, shadowed): within an
  // order of magnitude in PER on the waterfall.
  EstimatorConfig ecfg;
  const LinkEstimator est(ecfg);
  LinkConfig lcfg;
  const LinkModel truth(lcfg);
  const double snr20 = 12.0;
  const double true_per40 =
      truth.per(mcs(2), snr20 - cb_snr_penalty_db());
  const LinkEstimate pred = est.estimate(mcs(2), snr20, ChannelWidth::k20MHz,
                                         ChannelWidth::k40MHz);
  // Coarse classification agreement (paper: "only needs a coarse
  // estimate").
  EXPECT_EQ(pred.per > 0.5, true_per40 > 0.5);
}

}  // namespace
}  // namespace acorn::phy
