#include "phy/modulation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/units.hpp"

namespace acorn::phy {
namespace {

TEST(Modulation, BitsPerSymbol) {
  EXPECT_EQ(bits_per_symbol(Modulation::kBpsk), 1);
  EXPECT_EQ(bits_per_symbol(Modulation::kQpsk), 2);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam16), 4);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam64), 6);
}

TEST(Modulation, ConstellationSizes) {
  EXPECT_EQ(constellation_size(Modulation::kBpsk), 2);
  EXPECT_EQ(constellation_size(Modulation::kQpsk), 4);
  EXPECT_EQ(constellation_size(Modulation::kQam16), 16);
  EXPECT_EQ(constellation_size(Modulation::kQam64), 64);
}

TEST(Modulation, Names) {
  EXPECT_EQ(to_string(Modulation::kBpsk), "BPSK");
  EXPECT_EQ(to_string(Modulation::kQam64), "64QAM");
}

TEST(QFunction, KnownValues) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.0), 0.158655, 1e-5);
  EXPECT_NEAR(q_function(3.0), 0.001349, 1e-5);
}

TEST(QFunction, SymmetryAroundZero) {
  EXPECT_NEAR(q_function(-1.0) + q_function(1.0), 1.0, 1e-12);
}

TEST(UncodedBer, BpskKnownPoint) {
  // At Eb/N0 = 10 dB, BPSK BER ~ 3.87e-6.
  const double ber = uncoded_ber(Modulation::kBpsk, util::db_to_lin(10.0));
  EXPECT_NEAR(ber, 3.87e-6, 0.2e-6);
}

TEST(UncodedBer, QpskMatchesBpskAtSameEbN0) {
  // QPSK Es/N0 = 2 Eb/N0, so doubling the symbol SNR must reproduce BPSK.
  const double eb = util::db_to_lin(6.0);
  EXPECT_NEAR(uncoded_ber(Modulation::kQpsk, 2.0 * eb),
              uncoded_ber(Modulation::kBpsk, eb), 1e-12);
}

TEST(UncodedBer, MonotoneDecreasingInSnr) {
  for (const Modulation mod : {Modulation::kBpsk, Modulation::kQpsk,
                               Modulation::kQam16, Modulation::kQam64}) {
    double prev = 1.0;
    for (double snr_db = -10.0; snr_db <= 35.0; snr_db += 1.0) {
      const double ber = uncoded_ber_db(mod, snr_db);
      EXPECT_LE(ber, prev + 1e-15) << to_string(mod) << " at " << snr_db;
      prev = ber;
    }
  }
}

TEST(UncodedBer, HigherOrderModulationIsWorseAtSameSnr) {
  for (double snr_db = 5.0; snr_db <= 25.0; snr_db += 5.0) {
    const double qpsk = uncoded_ber_db(Modulation::kQpsk, snr_db);
    const double qam16 = uncoded_ber_db(Modulation::kQam16, snr_db);
    const double qam64 = uncoded_ber_db(Modulation::kQam64, snr_db);
    EXPECT_LE(qpsk, qam16);
    EXPECT_LE(qam16, qam64);
  }
}

TEST(UncodedBer, CappedAtHalf) {
  EXPECT_LE(uncoded_ber(Modulation::kQam64, 0.0), 0.5);
  EXPECT_LE(uncoded_ber(Modulation::kQam16, 1e-9), 0.5);
}

TEST(UncodedBer, RejectsNegativeSnr) {
  EXPECT_THROW(uncoded_ber(Modulation::kBpsk, -0.1), std::invalid_argument);
}

TEST(ShadowedBer, ZeroShadowReducesToAwgn) {
  EXPECT_DOUBLE_EQ(uncoded_ber_shadowed_db(Modulation::kQpsk, 8.0, 0.0),
                   uncoded_ber_db(Modulation::kQpsk, 8.0));
}

TEST(ShadowedBer, ShadowingRaisesBerAtHighSnr) {
  // Jensen: BER is convex in SNR(dB) in the waterfall, so averaging over
  // jitter increases it where the curve is steep.
  const double plain = uncoded_ber_db(Modulation::kQpsk, 12.0);
  const double shadowed = uncoded_ber_shadowed_db(Modulation::kQpsk, 12.0, 3.0);
  EXPECT_GT(shadowed, plain);
}

TEST(ShadowedBer, StillMonotoneInSnr) {
  double prev = 1.0;
  for (double snr = -5.0; snr <= 30.0; snr += 1.0) {
    const double ber = uncoded_ber_shadowed_db(Modulation::kQam16, snr, 2.5);
    EXPECT_LE(ber, prev + 1e-15);
    prev = ber;
  }
}

// Property sweep: per-modulation BER sanity over a parameter grid.
class ModulationSweep : public ::testing::TestWithParam<Modulation> {};

TEST_P(ModulationSweep, BerWithinProbabilityBounds) {
  for (double snr_db = -20.0; snr_db <= 40.0; snr_db += 0.5) {
    const double ber = uncoded_ber_db(GetParam(), snr_db);
    EXPECT_GE(ber, 0.0);
    EXPECT_LE(ber, 0.5);
  }
}

TEST_P(ModulationSweep, ShadowedBerWithinBounds) {
  for (double shadow = 0.5; shadow <= 6.0; shadow += 0.5) {
    for (double snr_db = -10.0; snr_db <= 30.0; snr_db += 2.0) {
      const double ber = uncoded_ber_shadowed_db(GetParam(), snr_db, shadow);
      EXPECT_GE(ber, 0.0);
      EXPECT_LE(ber, 0.5 + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModulations, ModulationSweep,
                         ::testing::Values(Modulation::kBpsk,
                                           Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

}  // namespace
}  // namespace acorn::phy
