// DCB policy layer: the distilled per-cell width shares against the
// slot-level multi-channel DCF (the model hierarchy's cross-validation)
// and the flow-level evaluate_policy contract.
#include "dcb/policy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "testutil.hpp"

namespace acorn::dcb {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

// --- slot-level simulator ------------------------------------------------

TEST(MultiDcf, RejectsBadArguments) {
  util::Rng rng(1);
  const mac::DcfConfig cfg;
  EXPECT_THROW(mac::simulate_dcf_multichannel(cfg, {}, 100, rng),
               std::invalid_argument);
  EXPECT_THROW(
      mac::simulate_dcf_multichannel(cfg, {mac::MultiDcfStation{}}, 0,
                                     rng),
      std::invalid_argument);
}

TEST(MultiDcf, StaticBondedStationsMatchSingleChannelDcf) {
  // All-static stations on one bond behave like the single-channel
  // simulator: equal shares, same collision regime.
  for (int n : {1, 2, 4}) {
    std::vector<mac::MultiDcfStation> stations(
        static_cast<std::size_t>(n));
    for (auto& s : stations) s.channel = net::Channel::bonded(0);
    util::Rng rng(7 + static_cast<std::uint64_t>(n));
    const mac::MultiDcfResult r = mac::simulate_dcf_multichannel(
        mac::DcfConfig{}, stations, 50000, rng);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(r.station_share[static_cast<std::size_t>(i)],
                  mac::predicted_share(n), 0.02)
          << n << " stations";
      // Static never narrows.
      EXPECT_EQ(r.airtime_narrow[static_cast<std::size_t>(i)], 0.0);
    }
    if (n == 1) {
      EXPECT_EQ(r.collisions, 0);
    }
  }
}

TEST(MultiDcf, DisjointChannelsDoNotCollide) {
  std::vector<mac::MultiDcfStation> stations(2);
  stations[0].channel = net::Channel::basic(0);
  stations[1].channel = net::Channel::basic(1);
  util::Rng rng(3);
  const mac::MultiDcfResult r = mac::simulate_dcf_multichannel(
      mac::DcfConfig{}, stations, 20000, rng);
  EXPECT_EQ(r.collisions, 0);
  // Each station owns its channel outright.
  EXPECT_NEAR(r.station_share[0], 0.5, 0.02);
}

TEST(MultiDcf, DeterministicPerSeed) {
  std::vector<mac::MultiDcfStation> stations(3);
  stations[0].channel = net::Channel::bonded(0);
  stations[0].mode = mac::WidthMode::kAlwaysMax;
  stations[1].channel = net::Channel::basic(1);
  stations[2].channel = net::Channel::basic(0);
  util::Rng r1(11);
  util::Rng r2(11);
  const mac::MultiDcfResult a = mac::simulate_dcf_multichannel(
      mac::DcfConfig{}, stations, 10000, r1);
  const mac::MultiDcfResult b = mac::simulate_dcf_multichannel(
      mac::DcfConfig{}, stations, 10000, r2);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.airtime_full, b.airtime_full);
  EXPECT_EQ(a.airtime_narrow, b.airtime_narrow);
}

// --- distilled shares vs slot level --------------------------------------

// Fully-adjacent scenario: every AP hears every other (matching the slot
// simulator, where all stations share one collision domain).
sim::Wlan adjacent_wlan(int n_aps) {
  ScenarioBuilder b;
  for (int i = 0; i < n_aps; ++i) {
    b.cells.push_back(CellSpec{{testutil::kGoodLinkLoss}});
  }
  b.ap_ap_loss_db = 60.0;  // well inside carrier sense
  return b.build();
}

net::InterferenceGraph graph_of(const sim::Wlan& wlan,
                                const net::Association& assoc) {
  return net::InterferenceGraph(wlan.topology(), wlan.budget(), assoc,
                                wlan.config().interference);
}

net::Association home_assoc(int n) {
  net::Association assoc(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) assoc[static_cast<std::size_t>(i)] = i;
  return assoc;
}

TEST(DistillShares, StaticMatchesPaperShares) {
  const sim::Wlan wlan = adjacent_wlan(3);
  const net::Association assoc = home_assoc(3);
  const net::InterferenceGraph graph = graph_of(wlan, assoc);
  const net::ChannelAssignment assignment{net::Channel::bonded(0),
                                          net::Channel::basic(0),
                                          net::Channel::basic(2)};
  const auto shares =
      distill_shares(graph, assignment, WidthPolicy::static_width());
  for (int ap = 0; ap < 3; ++ap) {
    EXPECT_DOUBLE_EQ(shares[static_cast<std::size_t>(ap)].full,
                     net::medium_access_share(graph, assignment, ap));
    EXPECT_EQ(shares[static_cast<std::size_t>(ap)].narrow, 0.0);
  }
}

TEST(DistillShares, LoneBondedApSplitsByPolicy) {
  const sim::Wlan wlan = adjacent_wlan(1);
  const net::Association assoc = home_assoc(1);
  const net::InterferenceGraph graph = graph_of(wlan, assoc);
  const net::ChannelAssignment assignment{net::Channel::bonded(0)};
  const auto always =
      distill_shares(graph, assignment, WidthPolicy::always_max());
  EXPECT_DOUBLE_EQ(always[0].full, 1.0);
  EXPECT_DOUBLE_EQ(always[0].narrow, 0.0);
  const auto prob =
      distill_shares(graph, assignment, WidthPolicy::probabilistic(0.3));
  EXPECT_DOUBLE_EQ(prob[0].full, 0.3);
  EXPECT_DOUBLE_EQ(prob[0].narrow, 0.7);
  // Slot-level cross-check: a lone probabilistic station splits its
  // airtime p : 1-p between widths (binomial noise only).
  std::vector<mac::MultiDcfStation> stations(1);
  stations[0].channel = net::Channel::bonded(0);
  stations[0].mode = mac::WidthMode::kProbabilistic;
  stations[0].wide_probability = 0.3;
  util::Rng rng(5);
  const mac::MultiDcfResult r = mac::simulate_dcf_multichannel(
      mac::DcfConfig{}, stations, 50000, rng);
  const double wide_fraction =
      r.airtime_full[0] / (r.airtime_full[0] + r.airtime_narrow[0]);
  EXPECT_NEAR(wide_fraction, 0.3, 0.02);
}

TEST(DistillShares, PrimaryContenderHalvesTheShareSlotExact) {
  // Bonded always-max AP vs a basic AP on its PRIMARY half: both the
  // distilled model and the slot simulator agree the bond transmits
  // wide on every opportunity at share 1/2 (the secondary is idle
  // whenever the primary countdown is won).
  const sim::Wlan wlan = adjacent_wlan(2);
  const net::Association assoc = home_assoc(2);
  const net::InterferenceGraph graph = graph_of(wlan, assoc);
  const net::ChannelAssignment assignment{net::Channel::bonded(0),
                                          net::Channel::basic(0)};
  const auto shares =
      distill_shares(graph, assignment, WidthPolicy::always_max());
  EXPECT_DOUBLE_EQ(shares[0].full, 0.5);
  EXPECT_DOUBLE_EQ(shares[0].narrow, 0.0);

  std::vector<mac::MultiDcfStation> stations(2);
  stations[0].channel = net::Channel::bonded(0);
  stations[0].mode = mac::WidthMode::kAlwaysMax;
  stations[1].channel = net::Channel::basic(0);
  util::Rng rng(6);
  const mac::MultiDcfResult r = mac::simulate_dcf_multichannel(
      mac::DcfConfig{}, stations, 100000, rng);
  EXPECT_NEAR(r.station_share[0], 0.5, 0.02);
  EXPECT_EQ(r.airtime_narrow[0], 0.0);  // secondary always idle at fire
}

TEST(DistillShares, CoBondPairSlotExact) {
  const sim::Wlan wlan = adjacent_wlan(2);
  const net::Association assoc = home_assoc(2);
  const net::InterferenceGraph graph = graph_of(wlan, assoc);
  const net::ChannelAssignment assignment{net::Channel::bonded(0),
                                          net::Channel::bonded(0)};
  const auto shares =
      distill_shares(graph, assignment, WidthPolicy::always_max());
  EXPECT_DOUBLE_EQ(shares[0].full, 0.5);
  EXPECT_DOUBLE_EQ(shares[0].narrow, 0.0);
  EXPECT_DOUBLE_EQ(shares[1].full, 0.5);

  std::vector<mac::MultiDcfStation> stations(2);
  for (auto& s : stations) {
    s.channel = net::Channel::bonded(0);
    s.mode = mac::WidthMode::kAlwaysMax;
  }
  util::Rng rng(8);
  const mac::MultiDcfResult r = mac::simulate_dcf_multichannel(
      mac::DcfConfig{}, stations, 100000, rng);
  EXPECT_NEAR(r.station_share[0], 0.5, 0.02);
  EXPECT_EQ(r.airtime_narrow[0], 0.0);
  EXPECT_EQ(r.airtime_narrow[1], 0.0);
}

TEST(DistillShares, SaturatedSecondaryOccupantDocumentedTolerance) {
  // The adversarial case: a basic AP camps on the bond's SECONDARY half
  // (invisible to the primary countdown). The mean-field model says the
  // saturated occupant owns its channel (u_sec = 1), so the bonded AP
  // should effectively never widen: full = 0, narrow = M_p = 1.
  const sim::Wlan wlan = adjacent_wlan(2);
  const net::Association assoc = home_assoc(2);
  const net::InterferenceGraph graph = graph_of(wlan, assoc);
  const net::ChannelAssignment assignment{net::Channel::bonded(0),
                                          net::Channel::basic(1)};
  const auto shares =
      distill_shares(graph, assignment, WidthPolicy::always_max());
  EXPECT_DOUBLE_EQ(shares[0].full, 0.0);
  EXPECT_DOUBLE_EQ(shares[0].narrow, 1.0);

  // DOCUMENTED TOLERANCE: the slot simulator disagrees by up to ~0.25
  // on the wide fraction. The discrepancy is protocol overhead the
  // idealized flow model does not carry: after each of the bonded AP's
  // own wide frames both stations re-contend from DIFS, so the bond
  // wins the race to an *idle* secondary roughly half the time and
  // wide streaks survive (measured wide fraction ~0.21-0.25 at the
  // default frame length, insensitive to frame duration). The distilled
  // model deliberately reports the idealized saturated limit instead of
  // modeling renewal streaks; consumers read `full` as "air time the
  // policy can bank on", not as a slot-exact prediction.
  std::vector<mac::MultiDcfStation> stations(2);
  stations[0].channel = net::Channel::bonded(0);
  stations[0].mode = mac::WidthMode::kAlwaysMax;
  stations[1].channel = net::Channel::basic(1);
  util::Rng rng(9);
  const mac::MultiDcfResult r = mac::simulate_dcf_multichannel(
      mac::DcfConfig{}, stations, 100000, rng);
  const double wide_fraction =
      r.airtime_full[0] / (r.airtime_full[0] + r.airtime_narrow[0]);
  EXPECT_LE(std::abs(wide_fraction - shares[0].full), 0.30);
  // Qualitatively both agree: narrow dominates, and the bonded AP's
  // total air time stays near its full primary share (the narrow
  // fallback keeps it transmitting through the occupant).
  EXPECT_GT(r.airtime_narrow[0], 2.0 * r.airtime_full[0]);
  EXPECT_GT(r.airtime_full[0] + r.airtime_narrow[0], 0.6);
}

TEST(DistillShares, SharesAreValidForRandomAssignments) {
  const sim::Wlan wlan = adjacent_wlan(6);
  const net::Association assoc = home_assoc(6);
  const net::InterferenceGraph graph = graph_of(wlan, assoc);
  const net::ChannelPlan plan(4);
  const auto colors = plan.all_channels();
  util::Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    net::ChannelAssignment assignment;
    for (int ap = 0; ap < 6; ++ap) {
      assignment.push_back(colors[static_cast<std::size_t>(
          rng.uniform_int(0,
                          static_cast<std::int64_t>(colors.size()) - 1))]);
    }
    for (const WidthPolicy& policy : standard_policies(0.4)) {
      const auto shares = distill_shares(graph, assignment, policy);
      for (int ap = 0; ap < 6; ++ap) {
        const WidthShares& s = shares[static_cast<std::size_t>(ap)];
        EXPECT_GE(s.full, 0.0);
        EXPECT_GE(s.narrow, 0.0);
        EXPECT_LE(s.total(), 1.0 + 1e-12);
        if (!assignment[static_cast<std::size_t>(ap)].is_bonded()) {
          EXPECT_EQ(s.narrow, 0.0);
        }
      }
    }
  }
}

// --- flow level -----------------------------------------------------------

TEST(EvaluatePolicy, StaticBitIdenticalToStandardEvaluation) {
  const sim::Wlan wlan = adjacent_wlan(3);
  const net::Association assoc = home_assoc(3);
  const sim::NetSnapshot snap(wlan, assoc);
  const net::ChannelAssignment assignment{net::Channel::bonded(0),
                                          net::Channel::basic(1),
                                          net::Channel::basic(2)};
  const DcbEvaluation dcb =
      evaluate_policy(snap, assignment, WidthPolicy::static_width());
  const sim::Evaluation ref = snap.evaluate(assignment);
  EXPECT_DOUBLE_EQ(dcb.total_goodput_bps, ref.total_goodput_bps);
  for (int ap = 0; ap < 3; ++ap) {
    EXPECT_DOUBLE_EQ(dcb.cell_goodput_bps[static_cast<std::size_t>(ap)],
                     ref.per_ap[static_cast<std::size_t>(ap)].goodput_bps);
  }
}

TEST(EvaluatePolicy, DcbPolicySplitsBondedCellAcrossWidths) {
  // Bonded AP with a probabilistic policy and free spectrum: the cell's
  // goodput is the share-weighted sum of a 40 MHz evaluation and a
  // 20 MHz (primary-half) evaluation — strictly between the all-20 and
  // all-40 outcomes for a good link.
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}}};
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const sim::NetSnapshot snap(wlan, assoc);
  const net::ChannelAssignment bonded{net::Channel::bonded(0)};
  const net::ChannelAssignment narrow{net::Channel::basic(0)};

  const double bps40 = snap.evaluate(bonded).total_goodput_bps;
  const double bps20 = snap.evaluate(narrow).total_goodput_bps;
  ASSERT_GT(bps40, bps20);  // good link: the bond wins outright

  const DcbEvaluation prob =
      evaluate_policy(snap, bonded, WidthPolicy::probabilistic(0.5));
  EXPECT_DOUBLE_EQ(prob.total_goodput_bps, 0.5 * bps40 + 0.5 * bps20);
  const DcbEvaluation always =
      evaluate_policy(snap, bonded, WidthPolicy::always_max());
  EXPECT_DOUBLE_EQ(always.total_goodput_bps, bps40);
}

TEST(EvaluatePolicy, AlwaysMaxRecoversAirtimeFromSecondaryOccupant) {
  // Bond + saturated basic occupant of its secondary half: static loses
  // half the medium (it contends at 40 MHz against the occupant), while
  // always-max falls back to the primary half and keeps transmitting in
  // parallel — the Faridi/Bellalta argument for DCB in dense networks.
  const sim::Wlan wlan = adjacent_wlan(2);
  const net::Association assoc = home_assoc(2);
  const sim::NetSnapshot snap(wlan, assoc);
  const net::ChannelAssignment assignment{net::Channel::bonded(0),
                                          net::Channel::basic(1)};
  const DcbEvaluation st =
      evaluate_policy(snap, assignment, WidthPolicy::static_width());
  const DcbEvaluation am =
      evaluate_policy(snap, assignment, WidthPolicy::always_max());
  // The bonded cell: share 1/2 at 40 MHz (static) vs share ~1 at 20 MHz
  // (always-max, narrow) — for a good link 20 MHz at full share beats
  // 40 MHz at half share.
  EXPECT_GT(am.cell_goodput_bps[0], st.cell_goodput_bps[0]);
  EXPECT_GT(am.shares[0].narrow, 0.9);
  EXPECT_DOUBLE_EQ(st.shares[0].full, 0.5);
}

}  // namespace
}  // namespace acorn::dcb
