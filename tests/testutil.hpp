// Shared scenario helpers for the test suite, re-exporting the library's
// scripted-deployment builder plus a canned Topology-1 shape.
#pragma once

#include "sim/scenario.hpp"

namespace acorn::testutil {

using acorn::sim::CellSpec;
using acorn::sim::ScenarioBuilder;

inline constexpr double kGoodLinkLoss = sim::kGoodLinkLoss;
inline constexpr double kMediumLinkLoss = sim::kMediumLinkLoss;
inline constexpr double kMarginalLinkLoss = sim::kMarginalLinkLoss;
inline constexpr double kWeakLinkLoss = sim::kWeakLinkLoss;
inline constexpr double kPoorLinkLoss = sim::kPoorLinkLoss;
inline constexpr double kIsolatedLoss = sim::kIsolatedLoss;

/// Two isolated cells: AP0 with two poor clients, AP1 with two good ones
/// (the paper's Topology 1 shape).
inline ScenarioBuilder topology1_builder() {
  ScenarioBuilder b;
  b.cells = {CellSpec{{kPoorLinkLoss, kPoorLinkLoss + 0.2}},
             CellSpec{{kGoodLinkLoss, kGoodLinkLoss + 2.0}}};
  return b;
}

}  // namespace acorn::testutil
