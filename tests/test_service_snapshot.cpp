#include "service/snapshot.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "service/wire.hpp"

namespace acorn::service {
namespace {

// Scratch directory removed (with contents) on scope exit.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/acorn_snap_XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

WlanSnapshot sample_snapshot(std::uint32_t wlan_id = 7) {
  WlanSnapshot s;
  s.wlan_id = wlan_id;
  s.epoch = 42;
  s.events_applied = 1234;
  s.deployment = "ap 0 0\nap 10 0\nclient 1 1\nclient 9 1\nseed 3\n";
  s.association = {0, 1};
  s.allocated = {net::Channel::bonded(0), net::Channel::basic(5)};
  s.operating = {net::Channel::basic(0), net::Channel::basic(5)};
  s.loss_overrides = {LossOverride{0, 0, 81.5}, LossOverride{1, 1, 95.25}};
  s.loads = {LoadHint{0, 0.75}};
  s.dirty_clients = {0, 1};
  return s;
}

void expect_equal(const WlanSnapshot& a, const WlanSnapshot& b) {
  EXPECT_EQ(encode_snapshot(a), encode_snapshot(b));
}

TEST(ServiceSnapshot, CodecRoundTrip) {
  const WlanSnapshot snap = sample_snapshot();
  const std::vector<std::uint8_t> bytes = encode_snapshot(snap);
  const WlanSnapshot back = decode_snapshot(bytes);
  EXPECT_EQ(back.wlan_id, snap.wlan_id);
  EXPECT_EQ(back.epoch, snap.epoch);
  EXPECT_EQ(back.events_applied, snap.events_applied);
  EXPECT_EQ(back.deployment, snap.deployment);
  EXPECT_EQ(back.association, snap.association);
  EXPECT_EQ(back.dirty_clients, snap.dirty_clients);
  expect_equal(back, snap);
}

TEST(ServiceSnapshot, EmptyFieldsRoundTrip) {
  WlanSnapshot snap;
  snap.wlan_id = 1;
  snap.deployment = "ap 0 0\nclient 1 1\n";
  expect_equal(decode_snapshot(encode_snapshot(snap)), snap);
}

TEST(ServiceSnapshot, ChecksumCatchesEveryBitFlip) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(sample_snapshot());
  // Flip one bit in every byte (body and trailer alike): the checksum
  // or the strict decoder must refuse each mutant.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> bad = bytes;
    bad[i] ^= 0x10;
    EXPECT_THROW(decode_snapshot(bad), WireError) << "byte " << i;
  }
}

TEST(ServiceSnapshot, TruncationRejected) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(sample_snapshot());
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_THROW(
        decode_snapshot(std::span<const std::uint8_t>(bytes.data(), n)),
        WireError)
        << "length " << n;
  }
}

TEST(ServiceSnapshot, WriteLoadRoundTrip) {
  const TempDir dir;
  const WlanSnapshot a = sample_snapshot(1);
  const WlanSnapshot b = sample_snapshot(2);
  ASSERT_TRUE(write_snapshot(dir.path(), a));
  ASSERT_TRUE(write_snapshot(dir.path(), b));

  std::vector<WlanSnapshot> loaded = load_snapshots(dir.path());
  ASSERT_EQ(loaded.size(), 2u);
  if (loaded[0].wlan_id > loaded[1].wlan_id) {
    std::swap(loaded[0], loaded[1]);
  }
  expect_equal(loaded[0], a);
  expect_equal(loaded[1], b);
}

TEST(ServiceSnapshot, RewriteReplacesAtomically) {
  const TempDir dir;
  WlanSnapshot snap = sample_snapshot(3);
  ASSERT_TRUE(write_snapshot(dir.path(), snap));
  snap.epoch = 43;
  snap.loss_overrides.push_back(LossOverride{0, 1, 101.0});
  ASSERT_TRUE(write_snapshot(dir.path(), snap));
  const std::vector<WlanSnapshot> loaded = load_snapshots(dir.path());
  ASSERT_EQ(loaded.size(), 1u);
  expect_equal(loaded[0], snap);
  // No .tmp residue after a successful rename.
  EXPECT_NE(::access(snapshot_path(dir.path(), 3).c_str(), F_OK), -1);
  EXPECT_EQ(::access((snapshot_path(dir.path(), 3) + ".tmp").c_str(), F_OK),
            -1);
}

TEST(ServiceSnapshot, CorruptFileSkippedHealthyOnesRecovered) {
  const TempDir dir;
  ASSERT_TRUE(write_snapshot(dir.path(), sample_snapshot(1)));
  ASSERT_TRUE(write_snapshot(dir.path(), sample_snapshot(2)));
  // Corrupt wlan_1: truncate it mid-body.
  {
    std::FILE* f =
        std::fopen(snapshot_path(dir.path(), 1).c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(::ftruncate(::fileno(f), 10), 0);
    std::fclose(f);
  }
  const std::vector<WlanSnapshot> loaded = load_snapshots(dir.path());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].wlan_id, 2u);
}

TEST(ServiceSnapshot, RemoveDeletesSnapAndTmp) {
  const TempDir dir;
  ASSERT_TRUE(write_snapshot(dir.path(), sample_snapshot(9)));
  remove_snapshot(dir.path(), 9);
  EXPECT_TRUE(load_snapshots(dir.path()).empty());
  EXPECT_EQ(::access(snapshot_path(dir.path(), 9).c_str(), F_OK), -1);
}

}  // namespace
}  // namespace acorn::service
