#include "service/snapshot.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "service/wire.hpp"

namespace acorn::service {
namespace {

// Scratch directory removed (with contents) on scope exit.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/acorn_snap_XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

WlanSnapshot sample_snapshot(std::uint32_t wlan_id = 7) {
  WlanSnapshot s;
  s.wlan_id = wlan_id;
  s.epoch = 42;
  s.events_applied = 1234;
  s.deployment = "ap 0 0\nap 10 0\nclient 1 1\nclient 9 1\nseed 3\n";
  s.association = {0, 1};
  s.allocated = {net::Channel::bonded(0), net::Channel::basic(5)};
  s.operating = {net::Channel::basic(0), net::Channel::basic(5)};
  s.loss_overrides = {LossOverride{0, 0, 81.5}, LossOverride{1, 1, 95.25}};
  s.loads = {LoadHint{0, 0.75}};
  s.dirty_clients = {0, 1};
  return s;
}

void expect_equal(const WlanSnapshot& a, const WlanSnapshot& b) {
  EXPECT_EQ(encode_snapshot(a), encode_snapshot(b));
}

TEST(ServiceSnapshot, CodecRoundTrip) {
  const WlanSnapshot snap = sample_snapshot();
  const std::vector<std::uint8_t> bytes = encode_snapshot(snap);
  const WlanSnapshot back = decode_snapshot(bytes);
  EXPECT_EQ(back.wlan_id, snap.wlan_id);
  EXPECT_EQ(back.epoch, snap.epoch);
  EXPECT_EQ(back.events_applied, snap.events_applied);
  EXPECT_EQ(back.deployment, snap.deployment);
  EXPECT_EQ(back.association, snap.association);
  EXPECT_EQ(back.dirty_clients, snap.dirty_clients);
  expect_equal(back, snap);
}

TEST(ServiceSnapshot, EmptyFieldsRoundTrip) {
  WlanSnapshot snap;
  snap.wlan_id = 1;
  snap.deployment = "ap 0 0\nclient 1 1\n";
  expect_equal(decode_snapshot(encode_snapshot(snap)), snap);
}

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

// Encode `snap` in the version-1 layout (no dirty-client section).
std::vector<std::uint8_t> encode_snapshot_v1(const WlanSnapshot& snap) {
  ByteWriter w;
  w.u32(kSnapshotMagic);
  w.u16(1);
  w.u32(snap.wlan_id);
  w.u64(snap.epoch);
  w.u64(snap.events_applied);
  w.str(snap.deployment);
  w.u32(static_cast<std::uint32_t>(snap.association.size()));
  for (int ap : snap.association) w.i32(ap);
  w.u32(static_cast<std::uint32_t>(snap.allocated.size()));
  for (const net::Channel& c : snap.allocated) w.channel(c);
  w.u32(static_cast<std::uint32_t>(snap.operating.size()));
  for (const net::Channel& c : snap.operating) w.channel(c);
  w.u32(static_cast<std::uint32_t>(snap.loss_overrides.size()));
  for (const LossOverride& o : snap.loss_overrides) {
    w.u32(o.ap);
    w.u32(o.client);
    w.f64(o.loss_db);
  }
  w.u32(static_cast<std::uint32_t>(snap.loads.size()));
  for (const LoadHint& l : snap.loads) {
    w.u32(l.client);
    w.f64(l.load);
  }
  w.u64(fnv1a(w.data()));
  return w.take();
}

// Upgrading a deployment must not drop its persisted v1 state: the old
// layout (no dirty-client section) still decodes, and the lost dirty
// set degrades to "re-probe everyone at the next epoch".
TEST(ServiceSnapshot, Version1StillDecodesWithAllClientsDirty) {
  WlanSnapshot snap = sample_snapshot();
  snap.dirty_clients.clear();  // not representable in v1
  const WlanSnapshot back = decode_snapshot(encode_snapshot_v1(snap));
  EXPECT_EQ(back.wlan_id, snap.wlan_id);
  EXPECT_EQ(back.epoch, snap.epoch);
  EXPECT_EQ(back.events_applied, snap.events_applied);
  EXPECT_EQ(back.deployment, snap.deployment);
  EXPECT_EQ(back.association, snap.association);
  EXPECT_EQ(back.loads.size(), snap.loads.size());
  // Every client is conservatively dirty.
  EXPECT_EQ(back.dirty_clients,
            (std::vector<std::uint32_t>{0, 1}));
}

TEST(ServiceSnapshot, FutureVersionRejected) {
  std::vector<std::uint8_t> bytes = encode_snapshot(sample_snapshot());
  // Patch the version field (offset 4, little-endian u16) to 3 and
  // re-stamp the checksum so only the version is at fault.
  bytes[4] = 3;
  const std::span<const std::uint8_t> body(bytes.data(), bytes.size() - 8);
  const std::uint64_t sum = fnv1a(body);
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(sum >> (8 * i));
  }
  EXPECT_THROW(decode_snapshot(bytes), WireError);
}

TEST(ServiceSnapshot, ChecksumCatchesEveryBitFlip) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(sample_snapshot());
  // Flip one bit in every byte (body and trailer alike): the checksum
  // or the strict decoder must refuse each mutant.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> bad = bytes;
    bad[i] ^= 0x10;
    EXPECT_THROW(decode_snapshot(bad), WireError) << "byte " << i;
  }
}

TEST(ServiceSnapshot, TruncationRejected) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(sample_snapshot());
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_THROW(
        decode_snapshot(std::span<const std::uint8_t>(bytes.data(), n)),
        WireError)
        << "length " << n;
  }
}

TEST(ServiceSnapshot, WriteLoadRoundTrip) {
  const TempDir dir;
  const WlanSnapshot a = sample_snapshot(1);
  const WlanSnapshot b = sample_snapshot(2);
  ASSERT_TRUE(write_snapshot(dir.path(), a));
  ASSERT_TRUE(write_snapshot(dir.path(), b));

  std::vector<WlanSnapshot> loaded = load_snapshots(dir.path());
  ASSERT_EQ(loaded.size(), 2u);
  if (loaded[0].wlan_id > loaded[1].wlan_id) {
    std::swap(loaded[0], loaded[1]);
  }
  expect_equal(loaded[0], a);
  expect_equal(loaded[1], b);
}

TEST(ServiceSnapshot, RewriteReplacesAtomically) {
  const TempDir dir;
  WlanSnapshot snap = sample_snapshot(3);
  ASSERT_TRUE(write_snapshot(dir.path(), snap));
  snap.epoch = 43;
  snap.loss_overrides.push_back(LossOverride{0, 1, 101.0});
  ASSERT_TRUE(write_snapshot(dir.path(), snap));
  const std::vector<WlanSnapshot> loaded = load_snapshots(dir.path());
  ASSERT_EQ(loaded.size(), 1u);
  expect_equal(loaded[0], snap);
  // No .tmp residue after a successful rename.
  EXPECT_NE(::access(snapshot_path(dir.path(), 3).c_str(), F_OK), -1);
  EXPECT_EQ(::access((snapshot_path(dir.path(), 3) + ".tmp").c_str(), F_OK),
            -1);
}

TEST(ServiceSnapshot, CorruptFileSkippedHealthyOnesRecovered) {
  const TempDir dir;
  ASSERT_TRUE(write_snapshot(dir.path(), sample_snapshot(1)));
  ASSERT_TRUE(write_snapshot(dir.path(), sample_snapshot(2)));
  // Corrupt wlan_1: truncate it mid-body.
  {
    std::FILE* f =
        std::fopen(snapshot_path(dir.path(), 1).c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(::ftruncate(::fileno(f), 10), 0);
    std::fclose(f);
  }
  const std::vector<WlanSnapshot> loaded = load_snapshots(dir.path());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].wlan_id, 2u);
}

TEST(ServiceSnapshot, RemoveDeletesSnapAndTmp) {
  const TempDir dir;
  ASSERT_TRUE(write_snapshot(dir.path(), sample_snapshot(9)));
  remove_snapshot(dir.path(), 9);
  EXPECT_TRUE(load_snapshots(dir.path()).empty());
  EXPECT_EQ(::access(snapshot_path(dir.path(), 9).c_str(), F_OK), -1);
}

}  // namespace
}  // namespace acorn::service
