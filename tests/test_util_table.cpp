#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acorn::util {
namespace {

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RejectsRowWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable t({"a", "b"});
  t.add_row({"xx", "y"});
  const std::string out = t.to_string();
  // Each line should start its second column at the same offset.
  const auto first_line_end = out.find('\n');
  ASSERT_NE(first_line_end, std::string::npos);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace acorn::util
