// Gap-to-optimal report: the acceptance criterion is bit-identical
// results at any thread count over the dense random-drop family, with
// all three width policies evaluated per scenario.
#include "dcb/gap_report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace acorn::dcb {
namespace {

GapReportConfig small_config(int scenarios, int threads) {
  GapReportConfig cfg;
  cfg.drop.num_aps = 4;  // 6^4 = 1296 exact evaluations per scenario
  cfg.drop.num_clients = 12;
  cfg.num_scenarios = scenarios;
  cfg.seed = 33;
  cfg.num_threads = threads;
  return cfg;
}

TEST(GapReport, BitIdenticalAcrossThreadCounts) {
  // sweep_scenarios derives scenario i's rng stream from (seed, i), so
  // the partitioning across workers must not matter. Compare every
  // double bit-exactly between a serial and a 3-worker run.
  const GapReport serial = run_gap_report(small_config(8, 1));
  const GapReport threaded = run_gap_report(small_config(8, 3));
  ASSERT_EQ(serial.scenarios.size(), threaded.scenarios.size());
  for (std::size_t i = 0; i < serial.scenarios.size(); ++i) {
    const GapScenario& a = serial.scenarios[i];
    const GapScenario& b = threaded.scenarios[i];
    EXPECT_EQ(a.acorn_bps, b.acorn_bps) << "scenario " << i;
    EXPECT_EQ(a.optimal_bps, b.optimal_bps) << "scenario " << i;
    EXPECT_EQ(a.gap, b.gap) << "scenario " << i;
    EXPECT_EQ(a.exact, b.exact) << "scenario " << i;
    ASSERT_EQ(a.policy_bps.size(), b.policy_bps.size());
    for (std::size_t p = 0; p < a.policy_bps.size(); ++p) {
      EXPECT_EQ(a.policy_bps[p], b.policy_bps[p])
          << "scenario " << i << " policy " << p;
    }
  }
  EXPECT_EQ(serial.mean_gap, threaded.mean_gap);
  EXPECT_EQ(serial.p95_gap, threaded.p95_gap);
  EXPECT_EQ(serial.max_gap, threaded.max_gap);
  EXPECT_EQ(serial.mean_policy_bps, threaded.mean_policy_bps);
}

TEST(GapReport, InvariantsHoldPerScenario) {
  const GapReport r = run_gap_report(small_config(6, 2));
  ASSERT_EQ(r.scenarios.size(), 6u);
  EXPECT_EQ(r.num_exact, 6);  // 4 APs: every scenario fits the budget
  const auto policies = standard_policies();
  for (const GapScenario& s : r.scenarios) {
    EXPECT_TRUE(s.exact);
    EXPECT_GT(s.acorn_bps, 0.0);
    // The exact optimum can never lose to Algorithm 2.
    EXPECT_GE(s.optimal_bps, s.acorn_bps);
    EXPECT_GE(s.gap, 0.0);
    EXPECT_LE(s.gap, 1.0);
    // All three width policies reported, static first, and the static
    // column equals Algorithm 2's own objective (same kernel).
    ASSERT_EQ(s.policy_bps.size(), policies.size());
    EXPECT_DOUBLE_EQ(s.policy_bps[0], s.acorn_bps);
    for (double bps : s.policy_bps) EXPECT_GT(bps, 0.0);
  }
  EXPECT_GE(r.max_gap, r.p95_gap);
  EXPECT_GE(r.p95_gap, 0.0);
  EXPECT_GE(r.max_gap, r.mean_gap);
}

TEST(GapReport, InexactScenariosExcludedFromGapAggregates) {
  // Shrink the exact budget so every scenario takes the bounded branch:
  // gaps are then meaningless and the aggregates must say so.
  GapReportConfig cfg = small_config(3, 1);
  cfg.max_exact_evaluations = 10;
  const GapReport r = run_gap_report(cfg);
  EXPECT_EQ(r.num_exact, 0);
  EXPECT_EQ(r.mean_gap, 0.0);
  EXPECT_EQ(r.p95_gap, 0.0);
  EXPECT_EQ(r.max_gap, 0.0);
  for (const GapScenario& s : r.scenarios) {
    EXPECT_FALSE(s.exact);
    EXPECT_GT(s.optimal_bps, 0.0);  // bounded search still reports
  }
}

TEST(GapReport, FormatMentionsTheHeadlineNumbers) {
  const GapReport r = run_gap_report(small_config(4, 1));
  const std::string text = format_gap_report(r);
  EXPECT_NE(text.find("scenarios"), std::string::npos);
  EXPECT_NE(text.find("gap to optimal"), std::string::npos);
  EXPECT_NE(text.find("p95"), std::string::npos);
  EXPECT_NE(text.find("static"), std::string::npos);
  EXPECT_NE(text.find("always-max"), std::string::npos);
}

TEST(GapReport, RejectsBadConfig) {
  GapReportConfig cfg = small_config(0, 1);
  EXPECT_THROW(run_gap_report(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace acorn::dcb
