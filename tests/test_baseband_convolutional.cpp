#include "baseband/convolutional.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace acorn::baseband {
namespace {

std::vector<std::uint8_t> random_bits(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
  return bits;
}

TEST(Convolutional, EncodeDoublesLengthPlusTail) {
  const ConvolutionalCode code;
  const auto bits = random_bits(100, 1);
  EXPECT_EQ(code.encode(bits).size(), 2 * (100 + 6));
  EXPECT_EQ(code.encode(bits, false).size(), 200u);
}

TEST(Convolutional, AllZeroInputGivesAllZeroOutput) {
  const ConvolutionalCode code;
  const std::vector<std::uint8_t> zeros(50, 0);
  for (std::uint8_t b : code.encode(zeros)) EXPECT_EQ(b, 0);
}

TEST(Convolutional, RoundTripNoiseless) {
  const ConvolutionalCode code;
  const auto bits = random_bits(500, 2);
  const auto decoded = code.decode(code.encode(bits));
  ASSERT_EQ(decoded.size(), bits.size());
  EXPECT_EQ(decoded, bits);
}

TEST(Convolutional, DecodeRejectsOddLength) {
  const ConvolutionalCode code;
  const std::vector<std::uint8_t> odd(7, 0);
  EXPECT_THROW(code.decode(odd), std::invalid_argument);
}

TEST(Convolutional, CorrectsScatteredErrors) {
  // dfree = 10: a handful of well-separated channel errors must vanish.
  const ConvolutionalCode code;
  const auto bits = random_bits(400, 3);
  auto coded = code.encode(bits);
  for (std::size_t pos : {10u, 150u, 300u, 500u, 700u}) {
    coded[pos] ^= 1;
  }
  EXPECT_EQ(code.decode(coded), bits);
}

TEST(Convolutional, CorrectsErasures) {
  const ConvolutionalCode code;
  const auto bits = random_bits(200, 4);
  auto coded = code.encode(bits);
  // Erase every 6th coded bit (worse than rate-3/4 puncturing).
  for (std::size_t i = 0; i < coded.size(); i += 6) coded[i] = kErasedBit;
  EXPECT_EQ(code.decode(coded), bits);
}

TEST(Convolutional, BurstBeyondCapacityFails) {
  const ConvolutionalCode code;
  const auto bits = random_bits(100, 5);
  auto coded = code.encode(bits);
  for (std::size_t i = 40; i < 80; ++i) coded[i] ^= 1;  // 40-bit burst
  EXPECT_NE(code.decode(coded), bits);
}

TEST(Convolutional, UnterminatedRoundTrip) {
  const ConvolutionalCode code;
  const auto bits = random_bits(300, 6);
  const auto decoded = code.decode(code.encode(bits, false), false);
  // Without termination, the last few bits lack protection; the body
  // must still be exact.
  ASSERT_EQ(decoded.size(), bits.size());
  for (std::size_t i = 0; i + 8 < bits.size(); ++i) {
    EXPECT_EQ(decoded[i], bits[i]) << i;
  }
}

TEST(Puncturing, LengthsMatchRates) {
  // 1200 rate-1/2 coded bits -> 1200 (1/2), 900 (2/3), 800 (3/4),
  // 720 (5/6).
  EXPECT_EQ(punctured_length(1200, phy::CodeRate::kRate12), 1200u);
  EXPECT_EQ(punctured_length(1200, phy::CodeRate::kRate23), 900u);
  EXPECT_EQ(punctured_length(1200, phy::CodeRate::kRate34), 800u);
  EXPECT_EQ(punctured_length(1200, phy::CodeRate::kRate56), 720u);
}

TEST(Puncturing, RateOneHalfIsIdentity) {
  const auto bits = random_bits(100, 7);
  EXPECT_EQ(puncture(bits, phy::CodeRate::kRate12),
            std::vector<std::uint8_t>(bits.begin(), bits.end()));
}

TEST(Puncturing, DepunctureRestoresKeptBitsAndMarksErasures) {
  const auto coded = random_bits(120, 8);
  for (const phy::CodeRate rate :
       {phy::CodeRate::kRate23, phy::CodeRate::kRate34,
        phy::CodeRate::kRate56}) {
    const auto punct = puncture(coded, rate);
    const auto back = depuncture(punct, rate, coded.size());
    ASSERT_EQ(back.size(), coded.size());
    std::size_t erased = 0;
    for (std::size_t i = 0; i < coded.size(); ++i) {
      if (back[i] == kErasedBit) {
        ++erased;
      } else {
        EXPECT_EQ(back[i], coded[i]) << i;
      }
    }
    EXPECT_EQ(erased, coded.size() - punct.size());
  }
}

TEST(Puncturing, DepunctureValidatesLength) {
  const auto punct = random_bits(10, 9);
  EXPECT_THROW(depuncture(punct, phy::CodeRate::kRate34, 100),
               std::invalid_argument);
}

// Punctured round trips through the decoder, per rate.
class PuncturedRoundTrip
    : public ::testing::TestWithParam<phy::CodeRate> {};

TEST_P(PuncturedRoundTrip, CleanChannel) {
  const ConvolutionalCode code;
  const auto bits = random_bits(600, 10);
  const auto coded = code.encode(bits);
  const auto punct = puncture(coded, GetParam());
  const auto depunct = depuncture(punct, GetParam(), coded.size());
  EXPECT_EQ(code.decode(depunct), bits);
}

TEST_P(PuncturedRoundTrip, SurvivesSparseErrors) {
  const ConvolutionalCode code;
  const auto bits = random_bits(600, 11);
  const auto coded = code.encode(bits);
  auto punct = puncture(coded, GetParam());
  // One error every 100 bits: within even the rate-5/6 correction power.
  for (std::size_t i = 50; i < punct.size(); i += 100) punct[i] ^= 1;
  const auto depunct = depuncture(punct, GetParam(), coded.size());
  EXPECT_EQ(code.decode(depunct), bits);
}

INSTANTIATE_TEST_SUITE_P(AllRates, PuncturedRoundTrip,
                         ::testing::Values(phy::CodeRate::kRate12,
                                           phy::CodeRate::kRate23,
                                           phy::CodeRate::kRate34,
                                           phy::CodeRate::kRate56));

TEST(Convolutional, WeakerRatesFailFirstUnderNoise) {
  // At a fixed channel BER, decoded error rate must rise with puncturing
  // (mirrors the analytic ordering in phy/coding.hpp).
  const ConvolutionalCode code;
  util::Rng rng(12);
  const auto bits = random_bits(2000, 13);
  const auto coded = code.encode(bits);
  double prev_errors = -1.0;
  for (const phy::CodeRate rate :
       {phy::CodeRate::kRate12, phy::CodeRate::kRate34,
        phy::CodeRate::kRate56}) {
    auto punct = puncture(coded, rate);
    for (auto& b : punct) {
      if (rng.bernoulli(0.04)) b ^= 1;
    }
    const auto decoded =
        code.decode(depuncture(punct, rate, coded.size()));
    double errors = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (decoded[i] != bits[i]) ++errors;
    }
    EXPECT_GE(errors, prev_errors) << to_string(rate);
    prev_errors = errors;
  }
  EXPECT_GT(prev_errors, 0.0);  // rate 5/6 must show residual errors
}


TEST(SoftViterbi, RoundTripWithConfidentLlrs) {
  const ConvolutionalCode code;
  const auto bits = random_bits(400, 20);
  const auto coded = code.encode(bits);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? -4.0 : 4.0;  // positive = bit 0
  }
  EXPECT_EQ(code.decode_soft(llrs), bits);
}

TEST(SoftViterbi, RejectsOddLength) {
  const ConvolutionalCode code;
  const std::vector<double> odd(5, 1.0);
  EXPECT_THROW(code.decode_soft(odd), std::invalid_argument);
}

TEST(SoftViterbi, ErasuresAreNeutral) {
  const ConvolutionalCode code;
  const auto bits = random_bits(200, 21);
  const auto coded = code.encode(bits);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = (i % 5 == 0) ? 0.0 : (coded[i] ? -3.0 : 3.0);
  }
  EXPECT_EQ(code.decode_soft(llrs), bits);
}

TEST(SoftViterbi, BeatsHardOnNoisyLlrs) {
  // Same channel observations: soft keeps confidence information the
  // hard slicer throws away.
  const ConvolutionalCode code;
  util::Rng rng(22);
  int soft_errors = 0;
  int hard_errors = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto bits = random_bits(300, 23 + static_cast<std::uint64_t>(trial));
    const auto coded = code.encode(bits);
    std::vector<double> llrs(coded.size());
    std::vector<std::uint8_t> hard(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) {
      // BPSK-ish observation at low SNR.
      const double x = (coded[i] ? -1.0 : 1.0) + rng.normal(0.0, 0.9);
      llrs[i] = 2.0 * x;
      hard[i] = x < 0.0 ? 1 : 0;
    }
    const auto soft_out = code.decode_soft(llrs);
    const auto hard_out = code.decode(hard);
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (soft_out[i] != bits[i]) ++soft_errors;
      if (hard_out[i] != bits[i]) ++hard_errors;
    }
  }
  EXPECT_LT(soft_errors, hard_errors / 2 + 1)
      << "soft " << soft_errors << " vs hard " << hard_errors;
}

TEST(SoftDepuncture, ErasuresAreZeroLlrs) {
  std::vector<double> punctured = {1.0, -2.0, 3.0};
  const auto out =
      depuncture_soft(punctured, phy::CodeRate::kRate34, 4);
  // Hmm: rate 3/4 keeps 4 of every 6; with coded_len 4 the kept count is
  // punctured_length(4, 3/4). Validate shape through the library itself.
  EXPECT_EQ(out.size(), 4u);
}

}  // namespace
}  // namespace acorn::baseband
