#include "net/pathloss.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acorn::net {
namespace {

TEST(PathLossModel, ReferenceLossAtOneMeter) {
  const PathLossModel m;
  EXPECT_DOUBLE_EQ(m.median_loss_db(1.0), m.ref_loss_db);
}

TEST(PathLossModel, ClampsInsideReferenceDistance) {
  const PathLossModel m;
  EXPECT_DOUBLE_EQ(m.median_loss_db(0.1), m.ref_loss_db);
}

TEST(PathLossModel, TenXDistanceAddsTenNExponentDb) {
  PathLossModel m;
  m.exponent = 3.5;
  EXPECT_NEAR(m.median_loss_db(10.0) - m.median_loss_db(1.0), 35.0, 1e-9);
  EXPECT_NEAR(m.median_loss_db(100.0) - m.median_loss_db(10.0), 35.0, 1e-9);
}

TEST(PathLossModel, MonotoneInDistance) {
  const PathLossModel m;
  double prev = 0.0;
  for (double d = 1.0; d < 200.0; d += 5.0) {
    const double loss = m.median_loss_db(d);
    EXPECT_GE(loss, prev);
    prev = loss;
  }
}

Topology two_by_two() {
  Topology topo;
  topo.add_ap(Point{0, 0});
  topo.add_ap(Point{50, 0});
  topo.add_client(Point{10, 0});
  topo.add_client(Point{40, 0});
  return topo;
}

TEST(LinkBudget, NoShadowingMatchesMedianLoss) {
  util::Rng rng(1);
  const Topology topo = two_by_two();
  PathLossModel m;
  m.shadowing_sigma_db = 0.0;
  const LinkBudget budget(topo, m, rng);
  EXPECT_NEAR(budget.ap_client_loss_db(0, 0), m.median_loss_db(10.0), 1e-9);
  EXPECT_NEAR(budget.ap_client_loss_db(1, 1), m.median_loss_db(10.0), 1e-9);
  EXPECT_NEAR(budget.ap_ap_loss_db(0, 1), m.median_loss_db(50.0), 1e-9);
}

TEST(LinkBudget, ApApLossIsSymmetricAndZeroOnDiagonal) {
  util::Rng rng(2);
  const Topology topo = two_by_two();
  PathLossModel m;
  m.shadowing_sigma_db = 4.0;
  const LinkBudget budget(topo, m, rng);
  EXPECT_DOUBLE_EQ(budget.ap_ap_loss_db(0, 1), budget.ap_ap_loss_db(1, 0));
  EXPECT_DOUBLE_EQ(budget.ap_ap_loss_db(0, 0), 0.0);
}

TEST(LinkBudget, ShadowingPerturbsLosses) {
  util::Rng rng(3);
  const Topology topo = two_by_two();
  PathLossModel m;
  m.shadowing_sigma_db = 6.0;
  const LinkBudget budget(topo, m, rng);
  // At least one link should deviate visibly from the median.
  const double deviation =
      std::abs(budget.ap_client_loss_db(0, 0) - m.median_loss_db(10.0));
  EXPECT_GT(deviation + std::abs(budget.ap_client_loss_db(1, 1) -
                                 m.median_loss_db(10.0)),
            0.1);
}

TEST(LinkBudget, RxPowerUsesApTxPower) {
  util::Rng rng(4);
  Topology topo = two_by_two();
  topo.ap(0).tx_dbm = 18.0;
  PathLossModel m;
  m.shadowing_sigma_db = 0.0;
  const LinkBudget budget(topo, m, rng);
  EXPECT_NEAR(budget.rx_at_client_dbm(topo, 0, 0),
              18.0 - m.median_loss_db(10.0), 1e-9);
}

TEST(LinkBudget, OverridesApply) {
  util::Rng rng(5);
  const Topology topo = two_by_two();
  const PathLossModel m;
  LinkBudget budget(topo, m, rng);
  budget.set_ap_client_loss_db(0, 1, 77.0);
  EXPECT_DOUBLE_EQ(budget.ap_client_loss_db(0, 1), 77.0);
  budget.set_ap_ap_loss_db(0, 1, 120.0);
  EXPECT_DOUBLE_EQ(budget.ap_ap_loss_db(0, 1), 120.0);
  EXPECT_DOUBLE_EQ(budget.ap_ap_loss_db(1, 0), 120.0);
}

TEST(LinkBudget, BoundsChecking) {
  util::Rng rng(6);
  const Topology topo = two_by_two();
  const PathLossModel m;
  LinkBudget budget(topo, m, rng);
  EXPECT_THROW(budget.ap_client_loss_db(2, 0), std::out_of_range);
  EXPECT_THROW(budget.ap_client_loss_db(0, 2), std::out_of_range);
  EXPECT_THROW(budget.ap_ap_loss_db(-1, 0), std::out_of_range);
  EXPECT_THROW(budget.set_ap_ap_loss_db(0, 0, 10.0), std::out_of_range);
}

}  // namespace
}  // namespace acorn::net
