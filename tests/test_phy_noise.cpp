#include "phy/noise.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/units.hpp"

namespace acorn::phy {
namespace {

TEST(NoiseFloor, MatchesEquationOne) {
  // Paper Eq. 1: N = -174 + 10 log10(B).
  EXPECT_NEAR(noise_floor_dbm(20e6), -174.0 + 10.0 * std::log10(20e6), 1e-9);
}

TEST(NoiseFloor, DoublingBandwidthAddsThreeDb) {
  const double n20 = noise_floor_dbm(20e6);
  const double n40 = noise_floor_dbm(40e6);
  EXPECT_NEAR(n40 - n20, 10.0 * std::log10(2.0), 1e-9);
}

TEST(NoiseFloor, NoiseFigureAddsDirectly) {
  EXPECT_NEAR(noise_floor_dbm(20e6, 6.0) - noise_floor_dbm(20e6), 6.0, 1e-12);
}

TEST(NoiseFloor, RejectsNonPositiveBandwidth) {
  EXPECT_THROW(noise_floor_dbm(0.0), std::invalid_argument);
  EXPECT_THROW(noise_floor_dbm(-1.0), std::invalid_argument);
}

TEST(NoisePerSubcarrier, IsWidthIndependent) {
  // The FFT bin is 312.5 kHz for both widths: identical per-bin noise.
  EXPECT_NEAR(noise_per_subcarrier_dbm(),
              noise_floor_dbm(kSubcarrierSpacingHz), 1e-12);
}

TEST(TxPerSubcarrier, SplitsTotalPowerEvenly) {
  const double tx = 15.0;
  EXPECT_NEAR(tx_per_subcarrier_dbm(tx, ChannelWidth::k20MHz),
              tx - 10.0 * std::log10(52.0), 1e-9);
  EXPECT_NEAR(tx_per_subcarrier_dbm(tx, ChannelWidth::k40MHz),
              tx - 10.0 * std::log10(108.0), 1e-9);
}

TEST(CbPenalty, IsAboutThreeDb) {
  // The paper rounds 10 log10(108/52) = 3.17 dB to "about 3 dB".
  EXPECT_NEAR(cb_snr_penalty_db(), 3.17, 0.01);
}

TEST(SnrPerSubcarrier, WidthGapEqualsCbPenalty) {
  const double snr20 =
      snr_per_subcarrier_db(15.0, 90.0, ChannelWidth::k20MHz);
  const double snr40 =
      snr_per_subcarrier_db(15.0, 90.0, ChannelWidth::k40MHz);
  EXPECT_NEAR(snr20 - snr40, cb_snr_penalty_db(), 1e-9);
}

TEST(SnrPerSubcarrier, LinearInTxAndLoss) {
  const double base = snr_per_subcarrier_db(10.0, 90.0, ChannelWidth::k20MHz);
  EXPECT_NEAR(snr_per_subcarrier_db(13.0, 90.0, ChannelWidth::k20MHz),
              base + 3.0, 1e-9);
  EXPECT_NEAR(snr_per_subcarrier_db(10.0, 95.0, ChannelWidth::k20MHz),
              base - 5.0, 1e-9);
}

TEST(Shannon, MatchesEquationTwo) {
  // C = B log2(1 + SNR): 20 MHz at SNR 3 (linear) -> 40 Mbps.
  EXPECT_NEAR(shannon_capacity_bps(20e6, 3.0), 40e6, 1.0);
}

TEST(Shannon, RejectsNegativeSnr) {
  EXPECT_THROW(shannon_capacity_bps(20e6, -0.5), std::invalid_argument);
}

TEST(Shannon, WideningHelpsAtHighSnr) {
  // Strong link: doubling B nearly doubles capacity.
  const double c20 = shannon_capacity_for_width_bps(15.0, 70.0,
                                                    ChannelWidth::k20MHz);
  const double c40 = shannon_capacity_for_width_bps(15.0, 70.0,
                                                    ChannelWidth::k40MHz);
  EXPECT_GT(c40, 1.5 * c20);
}

TEST(Shannon, WideningHurtsAtVeryLowSnr) {
  // The paper's §3.1 argument: at low SNR the log term dominates and
  // halving SNR can shrink capacity despite doubling B.
  bool found_regime = false;
  for (double pl = 120.0; pl <= 150.0; pl += 1.0) {
    const double c20 =
        shannon_capacity_for_width_bps(15.0, pl, ChannelWidth::k20MHz);
    const double c40 =
        shannon_capacity_for_width_bps(15.0, pl, ChannelWidth::k40MHz);
    if (c40 < c20) {
      found_regime = true;
      break;
    }
  }
  // With equal total SNR scaling, C40 = 2 * B log2(1 + S/2) >= C20 always
  // in pure AWGN; the crossover requires the per-subcarrier view. Verify
  // instead that the 40 MHz advantage shrinks toward 1x as SNR drops.
  const double hi = shannon_capacity_for_width_bps(15.0, 70.0,
                                                   ChannelWidth::k40MHz) /
                    shannon_capacity_for_width_bps(15.0, 70.0,
                                                   ChannelWidth::k20MHz);
  const double lo = shannon_capacity_for_width_bps(15.0, 140.0,
                                                   ChannelWidth::k40MHz) /
                    shannon_capacity_for_width_bps(15.0, 140.0,
                                                   ChannelWidth::k20MHz);
  EXPECT_LT(lo, hi);
  EXPECT_LT(lo, 1.2);
  (void)found_regime;
}

}  // namespace
}  // namespace acorn::phy
