#include "sim/arrivals.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acorn::sim {
namespace {

DurationSampler constant(double d) {
  return [d](util::Rng&) { return d; };
}

TEST(Arrivals, RejectsBadConfig) {
  util::Rng rng(1);
  ArrivalConfig cfg;
  cfg.rate_per_s = 0.0;
  EXPECT_THROW(generate_arrivals(cfg, constant(1.0), rng),
               std::invalid_argument);
  cfg = ArrivalConfig{};
  cfg.horizon_s = -1.0;
  EXPECT_THROW(generate_arrivals(cfg, constant(1.0), rng),
               std::invalid_argument);
  cfg = ArrivalConfig{};
  EXPECT_THROW(generate_arrivals(cfg, DurationSampler{}, rng),
               std::invalid_argument);
}

TEST(Arrivals, AllWithinHorizonAndSorted) {
  util::Rng rng(2);
  ArrivalConfig cfg;
  cfg.rate_per_s = 0.1;
  cfg.horizon_s = 1000.0;
  const auto sessions = generate_arrivals(cfg, constant(60.0), rng);
  double prev = 0.0;
  for (const ArrivalEvent& s : sessions) {
    EXPECT_GE(s.arrive_s, prev);
    EXPECT_LT(s.arrive_s, cfg.horizon_s);
    EXPECT_NEAR(s.depart_s - s.arrive_s, 60.0, 1e-9);
    prev = s.arrive_s;
  }
}

TEST(Arrivals, CountMatchesPoissonRate) {
  util::Rng rng(3);
  ArrivalConfig cfg;
  cfg.rate_per_s = 0.05;
  cfg.horizon_s = 100000.0;
  const auto sessions = generate_arrivals(cfg, constant(10.0), rng);
  EXPECT_NEAR(static_cast<double>(sessions.size()), 5000.0, 300.0);
}

TEST(Arrivals, SlotsCycleRoundRobin) {
  util::Rng rng(4);
  ArrivalConfig cfg;
  cfg.rate_per_s = 0.1;
  cfg.horizon_s = 2000.0;
  cfg.num_client_slots = 3;
  const auto sessions = generate_arrivals(cfg, constant(5.0), rng);
  ASSERT_GE(sessions.size(), 6u);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    EXPECT_EQ(sessions[i].client_slot, static_cast<int>(i % 3));
  }
}

TEST(Arrivals, ActiveSessionCounting) {
  std::vector<ArrivalEvent> sessions = {
      {0.0, 10.0, 0}, {5.0, 15.0, 1}, {20.0, 30.0, 2}};
  EXPECT_EQ(active_sessions(sessions, -1.0), 0);
  EXPECT_EQ(active_sessions(sessions, 0.0), 1);
  EXPECT_EQ(active_sessions(sessions, 7.0), 2);
  EXPECT_EQ(active_sessions(sessions, 12.0), 1);
  EXPECT_EQ(active_sessions(sessions, 17.0), 0);
  EXPECT_EQ(active_sessions(sessions, 25.0), 1);
  EXPECT_EQ(active_sessions(sessions, 30.0), 0);  // half-open interval
}

TEST(Arrivals, DurationSamplerIsUsed) {
  util::Rng rng(5);
  ArrivalConfig cfg;
  cfg.rate_per_s = 0.01;
  cfg.horizon_s = 10000.0;
  int calls = 0;
  const auto sessions = generate_arrivals(
      cfg,
      [&calls](util::Rng&) {
        ++calls;
        return 42.0;
      },
      rng);
  EXPECT_EQ(static_cast<std::size_t>(calls), sessions.size());
}

TEST(Arrivals, DeterministicPerSeed) {
  ArrivalConfig cfg;
  cfg.rate_per_s = 0.02;
  cfg.horizon_s = 5000.0;
  util::Rng r1(9);
  util::Rng r2(9);
  const auto a = generate_arrivals(cfg, constant(30.0), r1);
  const auto b = generate_arrivals(cfg, constant(30.0), r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrive_s, b[i].arrive_s);
  }
}

}  // namespace
}  // namespace acorn::sim
