#include <gtest/gtest.h>

#include "baselines/kauffmann17.hpp"
#include "core/allocation.hpp"
#include "baselines/optimal.hpp"
#include "baselines/simple.hpp"
#include "testutil.hpp"

namespace acorn::baselines {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

TEST(Kauffmann17, AllocatesOnlyBonds) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const Kauffmann17 k17{net::ChannelPlan(12)};
  const net::ChannelAssignment assignment = k17.allocate(wlan);
  for (const net::Channel& c : assignment) {
    EXPECT_TRUE(c.is_bonded());
  }
}

TEST(Kauffmann17, SeparatesContendingApsAcrossBonds) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}},
             CellSpec{{testutil::kGoodLinkLoss}}};
  b.ap_ap_loss_db = 85.0;
  const sim::Wlan wlan = b.build();
  const Kauffmann17 k17{net::ChannelPlan(12)};
  const net::ChannelAssignment assignment = k17.allocate(wlan);
  EXPECT_FALSE(assignment[0].conflicts(assignment[1]));
}

TEST(Kauffmann17, NoiseFloorIsLowerBoundOfMetric) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const Kauffmann17 k17{net::ChannelPlan(12)};
  const net::ChannelAssignment assignment = k17.allocate(wlan);
  const double metric = k17.noise_plus_interference_mw(
      wlan, assignment, 0, net::Channel::bonded(2));
  EXPECT_GT(metric, 0.0);
}

TEST(Kauffmann17, InterferenceMetricSeesCoChannelAps) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}},
             CellSpec{{testutil::kGoodLinkLoss}}};
  b.ap_ap_loss_db = 85.0;
  const sim::Wlan wlan = b.build();
  const Kauffmann17 k17{net::ChannelPlan(12)};
  net::ChannelAssignment both_same = {net::Channel::bonded(0),
                                      net::Channel::bonded(0)};
  const double on_same = k17.noise_plus_interference_mw(
      wlan, both_same, 0, net::Channel::bonded(0));
  const double on_clear = k17.noise_plus_interference_mw(
      wlan, both_same, 0, net::Channel::bonded(3));
  EXPECT_GT(on_same, 10.0 * on_clear);
}

TEST(Kauffmann17, SelfishAssociationPicksOwnBestThroughput) {
  // One strong AP already crowded vs an empty weaker AP: the selfish
  // client still picks whichever maximizes its own rate share.
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss, testutil::kGoodLinkLoss,
                       testutil::kGoodLinkLoss}},
             CellSpec{{}}};
  b.cross_loss_db = testutil::kMediumLinkLoss;
  const sim::Wlan wlan = b.build();
  const Kauffmann17 k17{net::ChannelPlan(12)};
  net::Association assoc = {0, 0, net::kUnassociated};
  const net::ChannelAssignment ch = {net::Channel::bonded(0),
                                     net::Channel::bonded(1)};
  const auto pick = k17.select_ap(wlan, assoc, ch, 2);
  ASSERT_TRUE(pick.has_value());
  // Empty medium-quality AP beats sharing a crowded cell 3 ways.
  EXPECT_EQ(*pick, 1);
}

TEST(Kauffmann17, ConfigureAssociatesEveryone) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const Kauffmann17 k17{net::ChannelPlan(12)};
  const Kauffmann17::Result result = k17.configure(wlan);
  for (int owner : result.association) {
    EXPECT_NE(owner, net::kUnassociated);
  }
}

TEST(RssAssociation, PicksStrongestSignal) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}}, CellSpec{{}}};
  b.cross_loss_db = testutil::kGoodLinkLoss + 5.0;
  const sim::Wlan wlan = b.build();
  EXPECT_EQ(rss_association(wlan, 0), std::optional<int>(0));
}

TEST(RssAssociation, NulloptWhenOutOfRange) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kIsolatedLoss}}};
  const sim::Wlan wlan = b.build();
  EXPECT_FALSE(rss_association(wlan, 0).has_value());
}

TEST(RssAssociateAll, CoversAllClients) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const net::Association assoc = rss_associate_all(wlan);
  EXPECT_EQ(assoc.size(), 4u);
  EXPECT_EQ(assoc[0], 0);
  EXPECT_EQ(assoc[2], 1);
}

TEST(RandomAssociateAll, OnlyInRangeApsChosen) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const net::Association assoc = random_associate_all(wlan, rng);
    EXPECT_EQ(assoc[0], 0);  // only AP0 audible to client 0
    EXPECT_EQ(assoc[3], 1);
  }
}

TEST(FixedWidth, RoundRobinAcrossPool) {
  const net::ChannelPlan plan(4);
  const net::ChannelAssignment on20 =
      fixed_width_assignment(plan, 6, phy::ChannelWidth::k20MHz);
  ASSERT_EQ(on20.size(), 6u);
  EXPECT_EQ(on20[0], net::Channel::basic(0));
  EXPECT_EQ(on20[3], net::Channel::basic(3));
  EXPECT_EQ(on20[4], net::Channel::basic(0));
  const net::ChannelAssignment on40 =
      fixed_width_assignment(plan, 3, phy::ChannelWidth::k40MHz);
  EXPECT_EQ(on40[0], net::Channel::bonded(0));
  EXPECT_EQ(on40[2], net::Channel::bonded(0));
}

TEST(RandomConfiguration, ShapesAreConsistent) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  util::Rng rng(4);
  const RandomConfig cfg =
      random_configuration(wlan, net::ChannelPlan(12), rng);
  EXPECT_EQ(cfg.assignment.size(), 2u);
  EXPECT_EQ(cfg.association.size(), 4u);
}

TEST(Optimal, ThrowsWhenSearchSpaceTooLarge) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  EXPECT_THROW(optimal_assignment(wlan, b.intended_association(),
                                  net::ChannelPlan(12),
                                  mac::TrafficType::kUdp, 10),
               std::invalid_argument);
}

TEST(Optimal, FindsIsolationWhenPossible) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}},
             CellSpec{{testutil::kGoodLinkLoss}}};
  b.ap_ap_loss_db = 85.0;
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const OptimalResult best =
      optimal_assignment(wlan, assoc, net::ChannelPlan(4));
  EXPECT_FALSE(best.assignment[0].conflicts(best.assignment[1]));
  EXPECT_EQ(best.evaluated, 36);  // 6 colors ^ 2 APs
}

TEST(Optimal, DominatesGreedyAllocator) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}},
             CellSpec{{testutil::kMarginalLinkLoss}},
             CellSpec{{testutil::kMediumLinkLoss}}};
  b.ap_ap_loss_db = 88.0;
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const net::ChannelPlan plan(4);
  const OptimalResult best = optimal_assignment(wlan, assoc, plan);
  const core::ChannelAllocator alloc{plan};
  util::Rng rng(5);
  const core::AllocationResult greedy =
      alloc.allocate(wlan, assoc, alloc.random_assignment(3, rng));
  EXPECT_GE(best.total_bps, greedy.final_bps - 1.0);
}

}  // namespace
}  // namespace acorn::baselines
