#include "mac/dcf.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace acorn::mac {
namespace {

TEST(Dcf, RejectsBadArguments) {
  util::Rng rng(1);
  const DcfConfig cfg;
  EXPECT_THROW(simulate_dcf(cfg, 0, 100, rng), std::invalid_argument);
  EXPECT_THROW(simulate_dcf(cfg, 2, 0, rng), std::invalid_argument);
}

TEST(Dcf, SingleStationOwnsTheMedium) {
  util::Rng rng(2);
  const DcfResult r = simulate_dcf(DcfConfig{}, 1, 2000, rng);
  ASSERT_EQ(r.station_share.size(), 1u);
  EXPECT_DOUBLE_EQ(r.station_share[0], 1.0);
  EXPECT_EQ(r.collisions, 0);
  EXPECT_GT(r.utilization, 0.5);  // only DIFS+backoff overhead
}

TEST(Dcf, SharesSumToOne) {
  util::Rng rng(3);
  const DcfResult r = simulate_dcf(DcfConfig{}, 4, 20000, rng);
  double sum = 0.0;
  for (double s : r.station_share) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Dcf, SaturatedStationsShareEqually) {
  // The paper's M = 1/(n+1) claim: each of n+1 stations gets an equal
  // share of the successful airtime.
  for (int n : {2, 3, 5, 8}) {
    util::Rng rng(100 + static_cast<std::uint64_t>(n));
    const DcfResult r = simulate_dcf(DcfConfig{}, n, 60000, rng);
    for (double share : r.station_share) {
      EXPECT_NEAR(share, predicted_share(n), 0.015)
          << n << " stations";
    }
  }
}

TEST(Dcf, CollisionRateGrowsWithContention) {
  util::Rng rng(4);
  const double c2 = simulate_dcf(DcfConfig{}, 2, 30000, rng).collision_rate;
  const double c8 = simulate_dcf(DcfConfig{}, 8, 30000, rng).collision_rate;
  const double c16 =
      simulate_dcf(DcfConfig{}, 16, 30000, rng).collision_rate;
  EXPECT_LT(c2, c8);
  EXPECT_LT(c8, c16);
  EXPECT_GT(c2, 0.0);
  EXPECT_LT(c16, 0.5);
}

TEST(Dcf, UtilizationDegradesGracefully) {
  // Collisions waste air time, so utilization falls with n but stays
  // high — the flow-level model's "share only" view is a few percent
  // optimistic, not qualitatively wrong.
  util::Rng rng(5);
  const double u1 = simulate_dcf(DcfConfig{}, 1, 20000, rng).utilization;
  const double u8 = simulate_dcf(DcfConfig{}, 8, 20000, rng).utilization;
  EXPECT_GT(u1, u8);
  EXPECT_GT(u8, 0.55);
}

TEST(Dcf, DeterministicPerSeed) {
  util::Rng r1(6);
  util::Rng r2(6);
  const DcfResult a = simulate_dcf(DcfConfig{}, 3, 5000, r1);
  const DcfResult b = simulate_dcf(DcfConfig{}, 3, 5000, r2);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.collisions, b.collisions);
}

TEST(Dcf, ShareAccuracyContractDegradesGracefully) {
  // The distilled DCB shares (dcb::distill_shares) inherit the paper's
  // §5.1 claim that M_a = 1/(|con_a|+1) holds "with very high accuracy"
  // under saturation. This is the claim's stated accuracy contract as
  // collision overhead grows with n, measured against the slot
  // simulator at 100k transmission events:
  //
  //     n   measured worst relative share error   contract bound
  //     2                 ~0.2%                        3%
  //     4                 ~0.8%                        3%
  //     8                 ~4%                          9%
  //    16                 ~9%                         18%
  //    32                ~16%                         30%
  //
  // The bounds are ~2x the measured error (sampling slack). Below
  // n = 8 the claim is tight (the paper's operating regime: |con| is
  // small after channel allocation spreads APs out); past n = 16 binary
  // exponential backoff's short-term unfairness dominates and the
  // closed form is a trend, not a prediction — flow-level consumers
  // must not lean on it for dense single-channel cells.
  const struct {
    int n;
    double bound;
  } contract[] = {{2, 0.03}, {4, 0.03}, {8, 0.09}, {16, 0.18}, {32, 0.30}};
  double previous_error = 0.0;
  for (const auto& row : contract) {
    util::Rng rng(100 + static_cast<std::uint64_t>(row.n));
    const DcfResult r = simulate_dcf(DcfConfig{}, row.n, 100000, rng);
    double worst = 0.0;
    for (double share : r.station_share) {
      worst = std::max(
          worst, std::abs(share - predicted_share(row.n)) *
                     static_cast<double>(row.n));
    }
    EXPECT_LE(worst, row.bound) << row.n << " stations";
    // Graceful: the error envelope is monotone in n (allow sampling
    // jitter between adjacent sizes via the 2x contract slack).
    EXPECT_LE(previous_error, row.bound) << row.n << " stations";
    previous_error = worst;
    // Collision overhead is the driver: it must grow with n yet stay
    // far from medium collapse, and the medium must stay mostly useful.
    EXPECT_LT(r.collision_rate, 0.40) << row.n << " stations";
    EXPECT_GT(r.utilization, 0.50) << row.n << " stations";
  }
}

TEST(Dcf, LongerFramesRaiseUtilization) {
  util::Rng r1(7);
  util::Rng r2(7);
  DcfConfig short_frames;
  short_frames.frame_us = 100.0;
  DcfConfig long_frames;
  long_frames.frame_us = 1000.0;
  const double u_short =
      simulate_dcf(short_frames, 4, 20000, r1).utilization;
  const double u_long = simulate_dcf(long_frames, 4, 20000, r2).utilization;
  EXPECT_GT(u_long, u_short);
}

}  // namespace
}  // namespace acorn::mac
