#include "mac/dcf.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/stats.hpp"

namespace acorn::mac {
namespace {

TEST(Dcf, RejectsBadArguments) {
  util::Rng rng(1);
  const DcfConfig cfg;
  EXPECT_THROW(simulate_dcf(cfg, 0, 100, rng), std::invalid_argument);
  EXPECT_THROW(simulate_dcf(cfg, 2, 0, rng), std::invalid_argument);
}

TEST(Dcf, SingleStationOwnsTheMedium) {
  util::Rng rng(2);
  const DcfResult r = simulate_dcf(DcfConfig{}, 1, 2000, rng);
  ASSERT_EQ(r.station_share.size(), 1u);
  EXPECT_DOUBLE_EQ(r.station_share[0], 1.0);
  EXPECT_EQ(r.collisions, 0);
  EXPECT_GT(r.utilization, 0.5);  // only DIFS+backoff overhead
}

TEST(Dcf, SharesSumToOne) {
  util::Rng rng(3);
  const DcfResult r = simulate_dcf(DcfConfig{}, 4, 20000, rng);
  double sum = 0.0;
  for (double s : r.station_share) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Dcf, SaturatedStationsShareEqually) {
  // The paper's M = 1/(n+1) claim: each of n+1 stations gets an equal
  // share of the successful airtime.
  for (int n : {2, 3, 5, 8}) {
    util::Rng rng(100 + static_cast<std::uint64_t>(n));
    const DcfResult r = simulate_dcf(DcfConfig{}, n, 60000, rng);
    for (double share : r.station_share) {
      EXPECT_NEAR(share, predicted_share(n), 0.015)
          << n << " stations";
    }
  }
}

TEST(Dcf, CollisionRateGrowsWithContention) {
  util::Rng rng(4);
  const double c2 = simulate_dcf(DcfConfig{}, 2, 30000, rng).collision_rate;
  const double c8 = simulate_dcf(DcfConfig{}, 8, 30000, rng).collision_rate;
  const double c16 =
      simulate_dcf(DcfConfig{}, 16, 30000, rng).collision_rate;
  EXPECT_LT(c2, c8);
  EXPECT_LT(c8, c16);
  EXPECT_GT(c2, 0.0);
  EXPECT_LT(c16, 0.5);
}

TEST(Dcf, UtilizationDegradesGracefully) {
  // Collisions waste air time, so utilization falls with n but stays
  // high — the flow-level model's "share only" view is a few percent
  // optimistic, not qualitatively wrong.
  util::Rng rng(5);
  const double u1 = simulate_dcf(DcfConfig{}, 1, 20000, rng).utilization;
  const double u8 = simulate_dcf(DcfConfig{}, 8, 20000, rng).utilization;
  EXPECT_GT(u1, u8);
  EXPECT_GT(u8, 0.55);
}

TEST(Dcf, DeterministicPerSeed) {
  util::Rng r1(6);
  util::Rng r2(6);
  const DcfResult a = simulate_dcf(DcfConfig{}, 3, 5000, r1);
  const DcfResult b = simulate_dcf(DcfConfig{}, 3, 5000, r2);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.collisions, b.collisions);
}

TEST(Dcf, LongerFramesRaiseUtilization) {
  util::Rng r1(7);
  util::Rng r2(7);
  DcfConfig short_frames;
  short_frames.frame_us = 100.0;
  DcfConfig long_frames;
  long_frames.frame_us = 1000.0;
  const double u_short =
      simulate_dcf(short_frames, 4, 20000, r1).utilization;
  const double u_long = simulate_dcf(long_frames, 4, 20000, r2).utilization;
  EXPECT_GT(u_long, u_short);
}

}  // namespace
}  // namespace acorn::mac
