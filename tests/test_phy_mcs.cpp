#include "phy/mcs.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acorn::phy {
namespace {

constexpr double kMbps = 1e6;

TEST(McsTable, HasSixteenRows) { EXPECT_EQ(mcs_table().size(), 16u); }

TEST(McsTable, IndicesAreDense) {
  for (int i = 0; i <= kMaxMcs; ++i) EXPECT_EQ(mcs(i).index, i);
}

TEST(McsTable, RejectsOutOfRange) {
  EXPECT_THROW(mcs(-1), std::out_of_range);
  EXPECT_THROW(mcs(16), std::out_of_range);
}

TEST(McsTable, StreamCounts) {
  for (int i = 0; i <= 7; ++i) EXPECT_EQ(mcs(i).streams, 1);
  for (int i = 8; i <= 15; ++i) EXPECT_EQ(mcs(i).streams, 2);
}

TEST(McsTable, SecondEightRowsMirrorFirstEight) {
  for (int i = 0; i <= 7; ++i) {
    EXPECT_EQ(mcs(i).modulation, mcs(i + 8).modulation);
    EXPECT_EQ(mcs(i).code_rate, mcs(i + 8).code_rate);
  }
}

// The standard's nominal rates (long GI).
TEST(McsRates, Mcs0_20MHzIs6p5Mbps) {
  EXPECT_NEAR(mcs(0).rate_bps(ChannelWidth::k20MHz, GuardInterval::kLong800ns),
              6.5 * kMbps, 1e3);
}

TEST(McsRates, Mcs7_20MHzIs65Mbps) {
  EXPECT_NEAR(mcs(7).rate_bps(ChannelWidth::k20MHz, GuardInterval::kLong800ns),
              65.0 * kMbps, 1e3);
}

TEST(McsRates, Mcs7_40MHzIs135Mbps) {
  EXPECT_NEAR(mcs(7).rate_bps(ChannelWidth::k40MHz, GuardInterval::kLong800ns),
              135.0 * kMbps, 1e3);
}

TEST(McsRates, Mcs15_40MHzIs270Mbps) {
  EXPECT_NEAR(
      mcs(15).rate_bps(ChannelWidth::k40MHz, GuardInterval::kLong800ns),
      270.0 * kMbps, 1e3);
}

TEST(McsRates, ShortGiBoostsByTenNinths) {
  const double lgi =
      mcs(7).rate_bps(ChannelWidth::k20MHz, GuardInterval::kLong800ns);
  const double sgi =
      mcs(7).rate_bps(ChannelWidth::k20MHz, GuardInterval::kShort400ns);
  EXPECT_NEAR(sgi / lgi, 10.0 / 9.0, 1e-9);
}

TEST(McsRates, FortyIsSlightlyMoreThanDoubleTwenty) {
  // 108/52 ~ 2.077: the paper's "slightly higher than double".
  for (const McsEntry& e : mcs_table()) {
    const double r20 = e.rate_bps(ChannelWidth::k20MHz,
                                  GuardInterval::kLong800ns);
    const double r40 = e.rate_bps(ChannelWidth::k40MHz,
                                  GuardInterval::kLong800ns);
    EXPECT_NEAR(r40 / r20, 108.0 / 52.0, 1e-9) << "MCS " << e.index;
    EXPECT_GT(r40, 2.0 * r20);
  }
}

TEST(McsRates, MonotoneWithinStreamGroup) {
  for (int i = 1; i <= 7; ++i) {
    EXPECT_GT(mcs(i).rate_bps(ChannelWidth::k20MHz, GuardInterval::kLong800ns),
              mcs(i - 1).rate_bps(ChannelWidth::k20MHz,
                                  GuardInterval::kLong800ns));
  }
  for (int i = 9; i <= 15; ++i) {
    EXPECT_GT(mcs(i).rate_bps(ChannelWidth::k40MHz, GuardInterval::kLong800ns),
              mcs(i - 1).rate_bps(ChannelWidth::k40MHz,
                                  GuardInterval::kLong800ns));
  }
}

TEST(McsRates, TwoStreamsDoubleOneStream) {
  for (int i = 0; i <= 7; ++i) {
    const double one =
        mcs(i).rate_bps(ChannelWidth::k20MHz, GuardInterval::kLong800ns);
    const double two =
        mcs(i + 8).rate_bps(ChannelWidth::k20MHz, GuardInterval::kLong800ns);
    EXPECT_NEAR(two, 2.0 * one, 1e-6);
  }
}

TEST(ChannelWidth, BandwidthAndSubcarriers) {
  EXPECT_DOUBLE_EQ(width_hz(ChannelWidth::k20MHz), 20e6);
  EXPECT_DOUBLE_EQ(width_hz(ChannelWidth::k40MHz), 40e6);
  EXPECT_EQ(data_subcarriers(ChannelWidth::k20MHz), 52);
  EXPECT_EQ(data_subcarriers(ChannelWidth::k40MHz), 108);
}

TEST(ChannelWidth, Names) {
  EXPECT_EQ(to_string(ChannelWidth::k20MHz), "20MHz");
  EXPECT_EQ(to_string(ChannelWidth::k40MHz), "40MHz");
  EXPECT_EQ(to_string(MimoMode::kStbc), "STBC");
  EXPECT_EQ(to_string(MimoMode::kSdm), "SDM");
}

}  // namespace
}  // namespace acorn::phy
