#include "sim/deployment_file.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acorn::sim {
namespace {

TEST(DeploymentFile, ParsesMinimalDeployment) {
  const DeploymentSpec spec = parse_deployment(
      "ap 0 0\n"
      "client 5 5\n");
  EXPECT_EQ(spec.topology.num_aps(), 1);
  EXPECT_EQ(spec.topology.num_clients(), 1);
  EXPECT_DOUBLE_EQ(spec.topology.ap(0).tx_dbm, 15.0);
  EXPECT_EQ(spec.num_channels, 12);
}

TEST(DeploymentFile, ParsesAllKeywords) {
  const DeploymentSpec spec = parse_deployment(
      "# a comment line\n"
      "pathloss exponent 4.0\n"
      "pathloss ref 50\n"
      "pathloss shadowing 6\n"
      "channels 4\n"
      "seed 99\n"
      "ap 1 2 18   # inline comment\n"
      "client 3 4\n");
  EXPECT_DOUBLE_EQ(spec.pathloss.exponent, 4.0);
  EXPECT_DOUBLE_EQ(spec.pathloss.ref_loss_db, 50.0);
  EXPECT_DOUBLE_EQ(spec.pathloss.shadowing_sigma_db, 6.0);
  EXPECT_EQ(spec.num_channels, 4);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_DOUBLE_EQ(spec.topology.ap(0).tx_dbm, 18.0);
}

TEST(DeploymentFile, BlankAndCommentLinesIgnored) {
  const DeploymentSpec spec = parse_deployment(
      "\n"
      "   \n"
      "# only comments here\n"
      "ap 0 0\n");
  EXPECT_EQ(spec.topology.num_aps(), 1);
}

TEST(DeploymentFile, ErrorsCarryLineNumbers) {
  try {
    parse_deployment("ap 0 0\nbogus 1 2\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(DeploymentFile, RejectsMalformedFields) {
  EXPECT_THROW(parse_deployment("ap 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_deployment("client\n"), std::invalid_argument);
  EXPECT_THROW(parse_deployment("ap 0 0\npathloss bogus 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_deployment("ap 0 0\nchannels 0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_deployment("ap 0 0 15 77\n"), std::invalid_argument);
}

TEST(DeploymentFile, RejectsEmptyDeployment) {
  EXPECT_THROW(parse_deployment("# nothing\n"), std::invalid_argument);
  EXPECT_THROW(parse_deployment("client 1 1\n"), std::invalid_argument);
}

TEST(DeploymentFile, BuildProducesWorkingWlan) {
  const DeploymentSpec spec = parse_deployment(
      "pathloss shadowing 3\n"
      "seed 5\n"
      "ap 0 0\n"
      "ap 60 0\n"
      "client 2 1\n"
      "client 58 1\n");
  const Wlan wlan = spec.build();
  EXPECT_EQ(wlan.topology().num_aps(), 2);
  const net::Association assoc = {0, 1};
  const net::ChannelAssignment ch = {net::Channel::basic(0),
                                     net::Channel::basic(1)};
  EXPECT_GT(wlan.evaluate(assoc, ch).total_goodput_bps, 1e6);
}

TEST(DeploymentFile, BuildIsDeterministicPerSeed) {
  const std::string text =
      "pathloss shadowing 5\nseed 11\nap 0 0\nclient 10 0\n";
  const Wlan a = parse_deployment(text).build();
  const Wlan b = parse_deployment(text).build();
  EXPECT_DOUBLE_EQ(a.budget().ap_client_loss_db(0, 0),
                   b.budget().ap_client_loss_db(0, 0));
}

}  // namespace
}  // namespace acorn::sim
