#include "baseband/preamble.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baseband/channel.hpp"
#include "util/rng.hpp"

namespace acorn::baseband {
namespace {

TEST(Barker, SequenceProperties) {
  const auto seq = barker11();
  ASSERT_EQ(seq.size(), 11u);
  for (int chip : seq) EXPECT_TRUE(chip == 1 || chip == -1);
  // Barker codes have off-peak aperiodic autocorrelation magnitude <= 1.
  for (std::size_t shift = 1; shift < seq.size(); ++shift) {
    int corr = 0;
    for (std::size_t i = 0; i + shift < seq.size(); ++i) {
      corr += seq[i] * seq[i + shift];
    }
    EXPECT_LE(std::abs(corr), 1) << "shift " << shift;
  }
}

TEST(Preamble, LengthAndAmplitude) {
  const auto p = make_preamble(4, 2.0);
  EXPECT_EQ(p.size(), 44u);
  for (const Cx& x : p) EXPECT_NEAR(std::abs(x), 2.0, 1e-12);
}

TEST(Preamble, DetectsCleanPreambleAtOffset) {
  const auto p = make_preamble();
  std::vector<Cx> rx(30, Cx{});
  rx.insert(rx.end(), p.begin(), p.end());
  rx.insert(rx.end(), 100, Cx(0.1, 0.0));  // payload-ish
  const auto pos = detect_preamble(rx);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 30u + p.size());
}

TEST(Preamble, DetectsUnderModerateNoise) {
  util::Rng rng(3);
  const auto p = make_preamble(4, 1.0);
  std::vector<Cx> rx(50, Cx{});
  rx.insert(rx.end(), p.begin(), p.end());
  rx.insert(rx.end(), 50, Cx{});
  add_awgn(rx, 0.05, rng);
  const auto pos = detect_preamble(rx);
  ASSERT_TRUE(pos.has_value());
  EXPECT_NEAR(static_cast<double>(*pos), 50.0 + p.size(), 2.0);
}

TEST(Preamble, NoDetectionInPureNoise) {
  util::Rng rng(4);
  std::vector<Cx> rx(300, Cx{});
  add_awgn(rx, 1.0, rng);
  EXPECT_FALSE(detect_preamble(rx, 4, 0.9).has_value());
}

TEST(Preamble, NoDetectionWhenBufferTooShort) {
  const std::vector<Cx> rx(10, Cx(1.0, 0.0));
  EXPECT_FALSE(detect_preamble(rx).has_value());
}

TEST(Preamble, DetectionSurvivesPhaseRotation) {
  const auto p = make_preamble();
  std::vector<Cx> rx(20, Cx{});
  const Cx rot = std::polar(1.0, 1.2);
  for (const Cx& x : p) rx.push_back(x * rot);
  rx.insert(rx.end(), 40, Cx{});
  const auto pos = detect_preamble(rx);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 20u + p.size());
}

}  // namespace
}  // namespace acorn::baseband
