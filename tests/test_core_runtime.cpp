#include "core/runtime.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace acorn::core {
namespace {

struct Fixture {
  testutil::ScenarioBuilder builder = testutil::topology1_builder();
  sim::Wlan wlan = builder.build();
  AcornController controller{make_config()};
  sim::EventQueue queue;

  static AcornConfig make_config() {
    AcornConfig cfg;
    cfg.period_s = 100.0;  // fast periods for tests
    return cfg;
  }

  PeriodicRuntime make_runtime() {
    return PeriodicRuntime(
        wlan, controller,
        net::ChannelAssignment(2, net::Channel::bonded(0)));
  }
};

TEST(Runtime, RejectsWrongInitialSize) {
  Fixture f;
  EXPECT_THROW(PeriodicRuntime(f.wlan, f.controller,
                               {net::Channel::basic(0)}),
               std::invalid_argument);
}

TEST(Runtime, ClientsStartUnassociated) {
  Fixture f;
  PeriodicRuntime rt = f.make_runtime();
  for (int owner : rt.association()) {
    EXPECT_EQ(owner, net::kUnassociated);
  }
}

TEST(Runtime, ArrivalAssociatesImmediately) {
  Fixture f;
  PeriodicRuntime rt = f.make_runtime();
  const auto ap = rt.client_arrived(0);
  ASSERT_TRUE(ap.has_value());
  EXPECT_EQ(rt.association()[0], *ap);
}

TEST(Runtime, DoubleArrivalIsAnError) {
  Fixture f;
  PeriodicRuntime rt = f.make_runtime();
  rt.client_arrived(0);
  EXPECT_THROW(rt.client_arrived(0), std::logic_error);
  EXPECT_THROW(rt.client_arrived(99), std::out_of_range);
}

TEST(Runtime, DepartureDetaches) {
  Fixture f;
  PeriodicRuntime rt = f.make_runtime();
  rt.client_arrived(0);
  rt.client_departed(0);
  EXPECT_EQ(rt.association()[0], net::kUnassociated);
  // Re-arrival works.
  EXPECT_TRUE(rt.client_arrived(0).has_value());
}

TEST(Runtime, MaintenancePassesFireOnPeriod) {
  Fixture f;
  PeriodicRuntime rt = f.make_runtime();
  for (int u = 0; u < 4; ++u) rt.client_arrived(u);
  rt.start(f.queue, 350.0);
  f.queue.run_until(1000.0);
  // Periods at 100, 200, 300 (350 horizon cuts the 400 firing).
  EXPECT_EQ(rt.reports().size(), 3u);
  EXPECT_DOUBLE_EQ(rt.reports()[0].time_s, 100.0);
  EXPECT_DOUBLE_EQ(rt.reports()[2].time_s, 300.0);
}

TEST(Runtime, MaintenanceFixesBadInitialAssignment) {
  Fixture f;
  PeriodicRuntime rt = f.make_runtime();  // both APs on the same bond
  for (int u = 0; u < 4; ++u) rt.client_arrived(u);
  rt.start(f.queue, 150.0);
  f.queue.run();
  // After the first pass the poor cell must sit on 20 MHz.
  EXPECT_EQ(rt.assignment()[0].width(), phy::ChannelWidth::k20MHz);
  EXPECT_EQ(rt.assignment()[1].width(), phy::ChannelWidth::k40MHz);
  ASSERT_FALSE(rt.reports().empty());
  EXPECT_GT(rt.reports().front().switches, 0);
  EXPECT_EQ(rt.reports().front().active_clients, 4);
}

TEST(Runtime, SecondPassIsQuiescent) {
  Fixture f;
  PeriodicRuntime rt = f.make_runtime();
  for (int u = 0; u < 4; ++u) rt.client_arrived(u);
  rt.start(f.queue, 250.0);
  f.queue.run();
  ASSERT_EQ(rt.reports().size(), 2u);
  EXPECT_EQ(rt.reports()[1].switches, 0);
}

TEST(Runtime, ObserverSeesEveryReport) {
  Fixture f;
  PeriodicRuntime rt = f.make_runtime();
  int calls = 0;
  rt.set_observer([&calls](const MaintenanceReport&) { ++calls; });
  rt.start(f.queue, 300.0);
  f.queue.run();
  EXPECT_EQ(calls, 3);
}

TEST(Runtime, ReportsThroughputOfCurrentPopulation) {
  Fixture f;
  PeriodicRuntime rt = f.make_runtime();
  rt.client_arrived(2);  // one good client only
  rt.start(f.queue, 100.0);
  f.queue.run();
  ASSERT_EQ(rt.reports().size(), 1u);
  EXPECT_EQ(rt.reports()[0].active_clients, 1);
  EXPECT_GT(rt.reports()[0].total_goodput_bps, 10e6);
}

}  // namespace
}  // namespace acorn::core
