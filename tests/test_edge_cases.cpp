// Cross-cutting edge cases: degenerate deployments, single-element
// inputs, and copy semantics that the benches rely on.
#include <gtest/gtest.h>

#include "baselines/simple.hpp"
#include "core/controller.hpp"
#include "sim/deployment_file.hpp"
#include "testutil.hpp"

namespace acorn {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

TEST(EdgeCases, SingleApSingleClientConfigures) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}}};
  const sim::Wlan wlan = b.build();
  const core::AcornController acorn;
  util::Rng rng(1);
  const core::ConfigureResult r = acorn.configure(wlan, rng);
  EXPECT_EQ(r.association[0], 0);
  EXPECT_EQ(r.assignment[0].width(), phy::ChannelWidth::k40MHz);
  EXPECT_GT(r.evaluation.total_goodput_bps, 10e6);
}

TEST(EdgeCases, ApWithNoClientsIsHarmless) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}}, CellSpec{{}}};
  const sim::Wlan wlan = b.build();
  const core::AcornController acorn;
  util::Rng rng(2);
  const core::ConfigureResult r = acorn.configure(wlan, rng);
  EXPECT_EQ(r.evaluation.per_ap[1].num_clients, 0);
  EXPECT_EQ(r.evaluation.per_ap[1].goodput_bps, 0.0);
  EXPECT_GT(r.evaluation.total_goodput_bps, 10e6);
}

TEST(EdgeCases, ClientOutOfAllRangeStaysUnassociated) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss, testutil::kIsolatedLoss}}};
  const sim::Wlan wlan = b.build();
  const core::AcornController acorn;
  util::Rng rng(3);
  const core::ConfigureResult r = acorn.configure(wlan, rng);
  EXPECT_EQ(r.association[0], 0);
  EXPECT_EQ(r.association[1], net::kUnassociated);
}

TEST(EdgeCases, SingleChannelPlanStillWorks) {
  // With one 20 MHz channel and no bond, the allocator has exactly one
  // color — everything shares it.
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}},
             CellSpec{{testutil::kGoodLinkLoss}}};
  b.ap_ap_loss_db = 85.0;
  const sim::Wlan wlan = b.build();
  core::AcornConfig cfg;
  cfg.plan = net::ChannelPlan(1);
  const core::AcornController acorn(cfg);
  util::Rng rng(4);
  const core::ConfigureResult r = acorn.configure(wlan, rng);
  EXPECT_EQ(r.assignment[0], net::Channel::basic(0));
  EXPECT_EQ(r.assignment[1], net::Channel::basic(0));
  EXPECT_NEAR(r.evaluation.per_ap[0].medium_share, 0.5, 1e-9);
}

TEST(EdgeCases, WlanCopyIsIndependent) {
  // The scanning ablation copies a Wlan and perturbs the copy's budget;
  // the original must not move.
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan original = b.build();
  sim::Wlan copy = original;
  const double before = original.budget().ap_client_loss_db(0, 0);
  copy.budget().set_ap_client_loss_db(0, 0, before - 20.0);
  EXPECT_DOUBLE_EQ(original.budget().ap_client_loss_db(0, 0), before);
  EXPECT_DOUBLE_EQ(copy.budget().ap_client_loss_db(0, 0), before - 20.0);
}

TEST(EdgeCases, ZeroClientNetworkEvaluates) {
  net::Topology topo;
  topo.add_ap({0, 0});
  util::Rng rng(5);
  net::PathLossModel plm;
  net::LinkBudget budget(topo, plm, rng);
  const sim::Wlan wlan(std::move(topo), std::move(budget),
                       sim::WlanConfig{});
  const sim::Evaluation eval =
      wlan.evaluate({}, {net::Channel::bonded(0)});
  EXPECT_EQ(eval.total_goodput_bps, 0.0);
}

TEST(EdgeCases, DeploymentFileDrivesFullPipeline) {
  const sim::DeploymentSpec spec = sim::parse_deployment(
      "channels 4\n"
      "seed 9\n"
      "pathloss shadowing 2\n"
      "ap 0 0\n"
      "ap 50 0\n"
      "client 1 1\n"
      "client 49 1\n"
      "client 26 0\n");
  const sim::Wlan wlan = spec.build();
  core::AcornConfig cfg;
  cfg.plan = net::ChannelPlan(spec.num_channels);
  const core::AcornController acorn(cfg);
  util::Rng rng(spec.seed);
  const core::ConfigureResult r = acorn.configure(wlan, rng);
  EXPECT_GT(r.evaluation.total_goodput_bps, 1e6);
  for (const net::Channel& c : r.assignment) {
    for (int occ : c.occupied()) EXPECT_LT(occ, 4);
  }
}

TEST(EdgeCases, AllClientsOnOneApUnderScarcity) {
  // 6 clients, one AP: the anomaly model must keep totals finite and
  // shares equal.
  ScenarioBuilder b;
  b.cells = {CellSpec{{80.0, 82.0, 84.0, 86.0, 88.0, 90.0}}};
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const sim::Evaluation eval =
      wlan.evaluate(assoc, {net::Channel::bonded(0)});
  ASSERT_EQ(eval.per_ap[0].client_goodput_bps.size(), 6u);
  const double first = eval.per_ap[0].client_goodput_bps[0];
  for (double g : eval.per_ap[0].client_goodput_bps) {
    EXPECT_NEAR(g, first, first * 0.01);  // equal long-term shares
  }
}

TEST(EdgeCases, RssTieBreaksDeterministically) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}}, CellSpec{{}}};
  b.cross_loss_db = testutil::kGoodLinkLoss;  // exact RSS tie
  const sim::Wlan wlan = b.build();
  const auto pick1 = baselines::rss_association(wlan, 0);
  const auto pick2 = baselines::rss_association(wlan, 0);
  ASSERT_TRUE(pick1.has_value());
  EXPECT_EQ(*pick1, *pick2);
}

}  // namespace
}  // namespace acorn
