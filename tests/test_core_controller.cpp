#include "core/controller.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace acorn::core {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

TEST(Controller, DefaultPeriodIsThirtyMinutes) {
  const AcornController acorn;
  EXPECT_DOUBLE_EQ(acorn.config().period_s, 1800.0);
}

TEST(Controller, ConfigureAssociatesEveryReachableClient) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const AcornController acorn;
  util::Rng rng(1);
  const ConfigureResult result = acorn.configure(wlan, rng);
  for (int c = 0; c < wlan.topology().num_clients(); ++c) {
    EXPECT_NE(result.association[static_cast<std::size_t>(c)],
              net::kUnassociated)
        << "client " << c;
  }
}

TEST(Controller, ConfigureReproducesTopology1Shape) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const AcornController acorn;
  util::Rng rng(2);
  const ConfigureResult result = acorn.configure(wlan, rng);
  // Poor cell on 20 MHz, good cell on 40 MHz.
  EXPECT_EQ(result.assignment[0].width(), phy::ChannelWidth::k20MHz);
  EXPECT_EQ(result.assignment[1].width(), phy::ChannelWidth::k40MHz);
  // Both cells have positive throughput.
  EXPECT_GT(result.evaluation.per_ap[0].goodput_bps, 1e6);
  EXPECT_GT(result.evaluation.per_ap[1].goodput_bps, 10e6);
}

TEST(Controller, ArrivalOrderIsRespected) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const AcornController acorn;
  util::Rng rng(3);
  const std::vector<int> order = {3, 2, 1, 0};
  const ConfigureResult result = acorn.configure(wlan, rng, &order);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NE(result.association[static_cast<std::size_t>(c)],
              net::kUnassociated);
  }
}

TEST(Controller, AssociateClientMutatesAssociation) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const AcornController acorn;
  net::Association assoc(4, net::kUnassociated);
  const net::ChannelAssignment ch = {net::Channel::basic(0),
                                     net::Channel::basic(2)};
  const auto ap = acorn.associate_client(wlan, assoc, ch, 2);
  ASSERT_TRUE(ap.has_value());
  EXPECT_EQ(assoc[2], *ap);
}

TEST(Controller, ReallocateFromFixedPointIsStable) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const AcornController acorn;
  util::Rng rng(4);
  const ConfigureResult result = acorn.configure(wlan, rng);
  const AllocationResult again =
      acorn.reallocate(wlan, result.association, result.assignment);
  EXPECT_EQ(again.switches, 0);
}

TEST(Controller, DeterministicForSeed) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const AcornController acorn;
  util::Rng r1(5);
  util::Rng r2(5);
  const ConfigureResult a = acorn.configure(wlan, r1);
  const ConfigureResult c = acorn.configure(wlan, r2);
  EXPECT_EQ(a.association, c.association);
  EXPECT_NEAR(a.evaluation.total_goodput_bps,
              c.evaluation.total_goodput_bps, 1.0);
}

TEST(Controller, TcpConfigurationAlsoWorks) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const AcornController acorn;
  util::Rng rng(6);
  const ConfigureResult result =
      acorn.configure(wlan, rng, nullptr, mac::TrafficType::kTcp);
  EXPECT_GT(result.evaluation.total_goodput_bps, 0.0);
}

TEST(Controller, CustomPlanIsUsed) {
  AcornConfig cfg;
  cfg.plan = net::ChannelPlan(2);
  const AcornController acorn(cfg);
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  util::Rng rng(7);
  const ConfigureResult result = acorn.configure(wlan, rng);
  for (const net::Channel& c : result.assignment) {
    for (int occ : c.occupied()) EXPECT_LT(occ, 2);
  }
}

}  // namespace
}  // namespace acorn::core
