#include "core/oracle_cache.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/controller.hpp"
#include "core/estimated_oracle.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace acorn::core {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

// The paper's Topology 2 shape (five APs mixing good, marginal and poor
// cells) — the deployment the perf benches time.
ScenarioBuilder topology2_builder() {
  ScenarioBuilder b;
  b.cells = {
      CellSpec{{testutil::kGoodLinkLoss, testutil::kGoodLinkLoss + 2.0}},
      CellSpec{{testutil::kGoodLinkLoss + 1.0}},
      CellSpec{{testutil::kGoodLinkLoss + 3.0}},
      CellSpec{{testutil::kPoorLinkLoss, testutil::kPoorLinkLoss + 0.2}},
      CellSpec{{testutil::kWeakLinkLoss}},
  };
  return b;
}

// A random deployment: 1-5 APs with 0-3 clients each, random link
// qualities, random AP-AP and cross-cell losses (spanning isolated,
// contending and hidden-interferer regimes).
ScenarioBuilder random_builder(util::Rng& rng, bool sinr, bool weighted) {
  ScenarioBuilder b;
  const int n_aps = static_cast<int>(rng.uniform_int(1, 5));
  for (int a = 0; a < n_aps; ++a) {
    CellSpec spec;
    const int n_clients = static_cast<int>(rng.uniform_int(0, 3));
    for (int c = 0; c < n_clients; ++c) {
      spec.client_losses_db.push_back(rng.uniform(78.0, 112.0));
    }
    b.cells.push_back(spec);
  }
  b.ap_ap_loss_db = rng.uniform(80.0, 140.0);
  b.cross_loss_db = rng.uniform(95.0, 140.0);
  b.config.sinr_interference = sinr;
  b.config.weighted_contention = weighted;
  return b;
}

// Shuffle the intended association: some clients roam to a random AP,
// some disconnect entirely.
net::Association random_association(const ScenarioBuilder& b,
                                    util::Rng& rng) {
  net::Association assoc = b.intended_association();
  const int n_aps = static_cast<int>(b.cells.size());
  for (int& owner : assoc) {
    const double roll = rng.uniform();
    if (roll < 0.15) {
      owner = net::kUnassociated;
    } else if (roll < 0.35) {
      owner = static_cast<int>(rng.uniform_int(0, n_aps - 1));
    }
  }
  return assoc;
}

TEST(CachedOracle, BitIdenticalToFullEvaluateOnRandomTopologies) {
  // >= 50 random (topology, association) pairs covering all four combos
  // of sinr_interference x weighted_contention, several assignments each.
  util::Rng rng(0xCAC4E);
  int scenarios = 0;
  for (int trial = 0; trial < 56; ++trial) {
    const bool sinr = (trial % 2) == 1;
    const bool weighted = (trial / 2 % 2) == 1;
    const ScenarioBuilder b = random_builder(rng, sinr, weighted);
    const sim::Wlan wlan = b.build();
    const net::Association assoc = random_association(b, rng);
    const CachedOracle cached(wlan, assoc);
    const ChannelAllocator alloc{net::ChannelPlan(6)};
    for (int rep = 0; rep < 6; ++rep) {
      const net::ChannelAssignment f =
          alloc.random_assignment(wlan.topology().num_aps(), rng);
      const double expected = wlan.evaluate(assoc, f).total_goodput_bps;
      // The flat engine behind evaluate() must itself match the legacy
      // object-at-a-time path, so the whole chain is pinned to the
      // original semantics.
      EXPECT_EQ(expected,
                wlan.evaluate_reference(assoc, f).total_goodput_bps)
          << "trial " << trial << " rep " << rep;
      // Exact bit-identity, not near-equality: cache misses run the same
      // per-cell code, hits replay a stored double.
      EXPECT_EQ(cached.total_bps(f), expected)
          << "trial " << trial << " rep " << rep << " sinr=" << sinr
          << " weighted=" << weighted;
      // And again, now that every cell is memoized.
      EXPECT_EQ(cached.total_bps(f), expected);
    }
    ++scenarios;
  }
  EXPECT_GE(scenarios, 50);
}

TEST(CachedOracle, MemoizesCellsAndReusesGraph) {
  const ScenarioBuilder b = topology2_builder();
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const CachedOracle cached(wlan, assoc);
  const ChannelAllocator alloc{net::ChannelPlan(12)};
  util::Rng rng(7);
  const net::ChannelAssignment f = alloc.random_assignment(5, rng);
  cached.total_bps(f);
  const OracleCacheStats first = cached.stats();
  EXPECT_GT(first.cell_evals, 0u);
  cached.total_bps(f);  // identical assignment: every cell replays
  const OracleCacheStats second = cached.stats();
  EXPECT_EQ(second.cell_evals, first.cell_evals);
  EXPECT_GE(second.cell_hits, first.cell_hits + 5);
  // A single-AP flip only re-evaluates the cells it actually changed.
  net::ChannelAssignment flipped = f;
  flipped[0] = flipped[0] == net::Channel::basic(11)
                   ? net::Channel::basic(10)
                   : net::Channel::basic(11);
  cached.total_bps(flipped);
  const OracleCacheStats third = cached.stats();
  EXPECT_LT(third.cell_evals - second.cell_evals, 5u);
}

// The optional per-client weights turn the objective into
// sum_c w_c * goodput_c. Misses and hits must both honor them, and the
// result must equal the manual weighted sum over the exact evaluator's
// per-client goodputs, bit for bit (same per-cell summation order).
TEST(CachedOracle, WeightedObjectiveMatchesManualSum) {
  util::Rng rng(0x10AD);
  for (int trial = 0; trial < 24; ++trial) {
    const ScenarioBuilder b =
        random_builder(rng, (trial % 2) == 1, (trial / 2 % 2) == 1);
    const sim::Wlan wlan = b.build();
    const net::Association assoc = random_association(b, rng);
    const int n_clients = wlan.topology().num_clients();
    std::vector<double> weights;
    for (int c = 0; c < n_clients; ++c) {
      weights.push_back(rng.uniform(0.0, 2.0));
    }
    const CachedOracle cached(wlan, assoc, mac::TrafficType::kUdp, weights);
    const ChannelAllocator alloc{net::ChannelPlan(6)};
    for (int rep = 0; rep < 4; ++rep) {
      const net::ChannelAssignment f =
          alloc.random_assignment(wlan.topology().num_aps(), rng);
      const sim::Evaluation eval = wlan.evaluate(assoc, f);
      double expected = 0.0;
      for (const sim::ApStats& cell : eval.per_ap) {
        if (cell.client_ids.empty()) continue;
        double cell_sum = 0.0;
        for (std::size_t i = 0; i < cell.client_ids.size(); ++i) {
          cell_sum += weights[static_cast<std::size_t>(cell.client_ids[i])] *
                      cell.client_goodput_bps[i];
        }
        expected += cell_sum;
      }
      EXPECT_EQ(cached.total_bps(f), expected) << "trial " << trial;
      EXPECT_EQ(cached.total_bps(f), expected) << "memoized replay";
    }
  }
}

// A load-weighted objective must be able to *reorder* candidate
// assignments — that is the whole point of threading offered loads into
// Algorithm 2. Find two assignments whose per-client goodput profiles
// are non-proportional, then pick weights that make the unweighted
// loser the weighted winner.
TEST(CachedOracle, WeightsCanReorderAssignments) {
  const ScenarioBuilder b = topology2_builder();
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const int n_aps = wlan.topology().num_aps();
  const int n_clients = wlan.topology().num_clients();
  const ChannelAllocator alloc{net::ChannelPlan(4)};
  util::Rng rng(99);

  // Per-client goodputs of one assignment, indexed by client id.
  const auto client_goodputs = [&](const net::ChannelAssignment& f) {
    std::vector<double> g(static_cast<std::size_t>(n_clients), 0.0);
    for (const sim::ApStats& cell : wlan.evaluate(assoc, f).per_ap) {
      for (std::size_t i = 0; i < cell.client_ids.size(); ++i) {
        g[static_cast<std::size_t>(cell.client_ids[i])] =
            cell.client_goodput_bps[i];
      }
    }
    return g;
  };

  bool flipped = false;
  for (int attempt = 0; attempt < 200 && !flipped; ++attempt) {
    const net::ChannelAssignment f1 = alloc.random_assignment(n_aps, rng);
    const net::ChannelAssignment f2 = alloc.random_assignment(n_aps, rng);
    const CachedOracle plain(wlan, assoc);
    const double u1 = plain.total_bps(f1);
    const double u2 = plain.total_bps(f2);
    if (u1 == u2) continue;
    const net::ChannelAssignment& winner = u1 > u2 ? f1 : f2;
    const net::ChannelAssignment& loser = u1 > u2 ? f2 : f1;
    const std::vector<double> gw = client_goodputs(winner);
    const std::vector<double> gl = client_goodputs(loser);
    // A client doing strictly better under the unweighted loser is the
    // lever: load all the weight onto it.
    for (int c = 0; c < n_clients; ++c) {
      const std::size_t ci = static_cast<std::size_t>(c);
      if (gl[ci] <= gw[ci]) continue;
      std::vector<double> weights(static_cast<std::size_t>(n_clients), 1e-6);
      weights[ci] = 1.0;
      const CachedOracle weighted(wlan, assoc, mac::TrafficType::kUdp,
                                  weights);
      if (weighted.total_bps(loser) > weighted.total_bps(winner)) {
        flipped = true;
        break;
      }
    }
  }
  EXPECT_TRUE(flipped)
      << "no weight vector reordered any assignment pair — the weighted "
         "objective is not reaching the optimizer";
}

TEST(CachedOracle, RejectsWrongWeightVectorSize) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  EXPECT_THROW(CachedOracle(wlan, b.intended_association(),
                            mac::TrafficType::kUdp, {1.0}),
               std::invalid_argument);
}

TEST(CachedOracle, RejectsWrongAssignmentSize) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const CachedOracle cached(wlan, b.intended_association());
  EXPECT_THROW(cached.total_bps({net::Channel::basic(0)}),
               std::invalid_argument);
}

TEST(MakeCachedOracle, RebuildsOnAssociationChange) {
  const ScenarioBuilder b = topology2_builder();
  const sim::Wlan wlan = b.build();
  const ThroughputOracle oracle = make_cached_oracle(wlan);
  const ChannelAllocator alloc{net::ChannelPlan(12)};
  util::Rng rng(9);
  const net::ChannelAssignment f = alloc.random_assignment(5, rng);
  const net::Association intended = b.intended_association();
  net::Association roamed = intended;
  roamed[0] = net::kUnassociated;
  EXPECT_EQ(oracle(intended, f),
            wlan.evaluate(intended, f).total_goodput_bps);
  EXPECT_EQ(oracle(roamed, f), wlan.evaluate(roamed, f).total_goodput_bps);
  EXPECT_EQ(oracle(intended, f),
            wlan.evaluate(intended, f).total_goodput_bps);
}

// The acceptance gate for the cache: allocation driven by the cached
// oracle lands on exactly the same assignment, throughput and trajectory
// as the uncached full-evaluate path, on the bench's topology2 and under
// the heavier interference models.
TEST(CachedOracle, AllocationIdenticalToUncachedPath) {
  for (const bool sinr : {false, true}) {
    ScenarioBuilder b = topology2_builder();
    b.ap_ap_loss_db = 85.0;  // contending, so channels actually matter
    b.config.sinr_interference = sinr;
    b.config.weighted_contention = sinr;
    const sim::Wlan wlan = b.build();
    const net::Association assoc = b.intended_association();

    AllocationConfig cached_cfg;
    AllocationConfig uncached_cfg;
    uncached_cfg.cache_oracle = false;
    const ChannelAllocator cached{net::ChannelPlan(6), cached_cfg};
    const ChannelAllocator uncached{net::ChannelPlan(6), uncached_cfg};
    util::Rng rng(42);
    for (int trial = 0; trial < 3; ++trial) {
      const net::ChannelAssignment start = cached.random_assignment(5, rng);
      const AllocationResult a = cached.allocate(wlan, assoc, start);
      const AllocationResult u = uncached.allocate(wlan, assoc, start);
      EXPECT_EQ(a.final_bps, u.final_bps);
      EXPECT_EQ(a.evaluations, u.evaluations);
      EXPECT_EQ(a.switches, u.switches);
      ASSERT_EQ(a.assignment.size(), u.assignment.size());
      for (std::size_t i = 0; i < a.assignment.size(); ++i) {
        EXPECT_EQ(a.assignment[i], u.assignment[i]);
      }
      ASSERT_EQ(a.trajectory_bps.size(), u.trajectory_bps.size());
      for (std::size_t i = 0; i < a.trajectory_bps.size(); ++i) {
        EXPECT_EQ(a.trajectory_bps[i], u.trajectory_bps[i]);
      }
    }
  }
}

TEST(CachedOracle, ParallelScanIdenticalToSerial) {
  ScenarioBuilder b = topology2_builder();
  b.ap_ap_loss_db = 85.0;
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();

  AllocationConfig parallel_cfg;
  parallel_cfg.num_threads = 4;
  const ChannelAllocator serial{net::ChannelPlan(6)};
  const ChannelAllocator parallel{net::ChannelPlan(6), parallel_cfg};
  util::Rng rng(43);
  for (int trial = 0; trial < 3; ++trial) {
    const net::ChannelAssignment start = serial.random_assignment(5, rng);
    const AllocationResult s = serial.allocate(wlan, assoc, start);
    const AllocationResult p = parallel.allocate(wlan, assoc, start);
    EXPECT_EQ(s.final_bps, p.final_bps);
    EXPECT_EQ(s.evaluations, p.evaluations);
    EXPECT_EQ(s.switches, p.switches);
    ASSERT_EQ(s.assignment.size(), p.assignment.size());
    for (std::size_t i = 0; i < s.assignment.size(); ++i) {
      EXPECT_EQ(s.assignment[i], p.assignment[i]);
    }
  }
}

TEST(MeasurementOracle, MemoizedCallsAreStableAcrossAssociations) {
  const ScenarioBuilder b = topology2_builder();
  const sim::Wlan wlan = b.build();
  const ChannelAllocator alloc{net::ChannelPlan(12)};
  util::Rng rng(11);
  const net::ChannelAssignment measured = alloc.random_assignment(5, rng);
  const net::ChannelAssignment trial = alloc.random_assignment(5, rng);
  const ThroughputOracle oracle = make_measurement_oracle(wlan, measured);
  const net::Association intended = b.intended_association();
  net::Association roamed = intended;
  roamed[1] = 0;
  // A fresh oracle (empty memo) must agree exactly with a warm one, both
  // before and after the cached association changes underneath it.
  const double cold_intended =
      make_measurement_oracle(wlan, measured)(intended, trial);
  const double cold_roamed =
      make_measurement_oracle(wlan, measured)(roamed, trial);
  EXPECT_EQ(oracle(intended, trial), cold_intended);
  EXPECT_EQ(oracle(intended, trial), cold_intended);
  EXPECT_EQ(oracle(roamed, trial), cold_roamed);
  EXPECT_EQ(oracle(intended, trial), cold_intended);
}

}  // namespace
}  // namespace acorn::core
