// Kai et al. optimal channel/width baseline: the exact branch must agree
// with the existing exhaustive search, the bounded branch must stay
// within budget and never lose to its own starting points.
#include "baselines/kai.hpp"

#include <gtest/gtest.h>

#include "baselines/optimal.hpp"
#include "baselines/simple.hpp"
#include "dcb/random_drop.hpp"
#include "testutil.hpp"

namespace acorn::baselines {
namespace {

struct Bench {
  sim::Wlan wlan;
  net::Association assoc;
  core::CachedOracle oracle;

  explicit Bench(const sim::Wlan& w)
      : wlan(w),
        assoc(rss_associate_all(wlan)),
        oracle(wlan, assoc) {}
};

sim::Wlan random_wlan(std::uint64_t seed, int num_aps = 4) {
  dcb::RandomDropConfig cfg;
  cfg.num_aps = num_aps;
  cfg.num_clients = num_aps * 3;
  util::Rng rng(seed);
  return dcb::random_drop(cfg, rng).build();
}

TEST(Kai, ExactBranchMatchesExhaustiveSearch) {
  // Same search space, same oracle kernel: the exact branch must land on
  // the same total as optimal_assignment (assignments may differ only if
  // tied, so compare the achieved objective, bit-exactly).
  const net::ChannelPlan plan(4);
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    const Bench b(random_wlan(seed));
    util::Rng rng(99);
    const KaiResult kai = kai_optimal_allocation(b.oracle, plan, rng);
    ASSERT_TRUE(kai.exact) << "seed " << seed;
    const OptimalResult ref =
        optimal_assignment(b.wlan, b.assoc, plan);
    EXPECT_DOUBLE_EQ(kai.total_bps, ref.total_bps) << "seed " << seed;
    EXPECT_EQ(kai.evaluations, ref.evaluated);
    // The reported assignment really achieves the reported total.
    EXPECT_DOUBLE_EQ(b.oracle.total_bps(kai.assignment), kai.total_bps);
  }
}

TEST(Kai, ExactBranchIsRngIndependent) {
  const net::ChannelPlan plan(4);
  const Bench b(random_wlan(6));
  util::Rng r1(1);
  util::Rng r2(777);
  const KaiResult a = kai_optimal_allocation(b.oracle, plan, r1);
  const KaiResult c = kai_optimal_allocation(b.oracle, plan, r2);
  ASSERT_TRUE(a.exact);
  EXPECT_EQ(a.assignment, c.assignment);
  EXPECT_DOUBLE_EQ(a.total_bps, c.total_bps);
}

TEST(Kai, BoundedBranchEngagesAboveBudgetAndRespectsIt) {
  const net::ChannelPlan plan(4);
  const Bench b(random_wlan(8, /*num_aps=*/6));
  KaiConfig cfg;
  cfg.max_exact_evaluations = 100;  // 6^6 = 46656 >> 100: force search
  cfg.restarts = 2;
  cfg.max_search_evaluations = 3000;
  util::Rng rng(21);
  const KaiResult r = kai_optimal_allocation(b.oracle, plan, rng, cfg);
  EXPECT_FALSE(r.exact);
  EXPECT_LE(r.evaluations, cfg.max_search_evaluations);
  EXPECT_GT(r.total_bps, 0.0);
  EXPECT_EQ(r.assignment.size(), 6u);
  EXPECT_DOUBLE_EQ(b.oracle.total_bps(r.assignment), r.total_bps);
}

TEST(Kai, BoundedBranchFindsTheOptimumOnEasyInstances) {
  // Steepest ascent with restarts on a small instance should usually
  // reach the global optimum; require it on a seed where it does, as a
  // quality canary (if the search regresses, this catches it).
  const net::ChannelPlan plan(4);
  const Bench b(random_wlan(3));
  util::Rng exact_rng(1);
  const KaiResult exact = kai_optimal_allocation(b.oracle, plan,
                                                 exact_rng);
  ASSERT_TRUE(exact.exact);
  KaiConfig cfg;
  cfg.max_exact_evaluations = 10;  // force the bounded branch
  util::Rng rng(5);
  const KaiResult search = kai_optimal_allocation(b.oracle, plan, rng,
                                                  cfg);
  ASSERT_FALSE(search.exact);
  EXPECT_NEAR(search.total_bps, exact.total_bps,
              exact.total_bps * 1e-12);
}

TEST(Kai, ConvenienceOverloadMatchesOracleOverload) {
  const net::ChannelPlan plan(4);
  const Bench b(random_wlan(9));
  util::Rng r1(2);
  util::Rng r2(2);
  const KaiResult via_oracle = kai_optimal_allocation(b.oracle, plan, r1);
  const KaiResult via_wlan =
      kai_optimal_allocation(b.wlan, b.assoc, plan, r2);
  EXPECT_EQ(via_oracle.assignment, via_wlan.assignment);
  EXPECT_DOUBLE_EQ(via_oracle.total_bps, via_wlan.total_bps);
}

}  // namespace
}  // namespace acorn::baselines
