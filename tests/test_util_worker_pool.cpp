// Edge cases for util::WorkerPool (the fork-join pool the allocator's
// candidate scan uses) and scheduling semantics of util::PooledExecutor
// (the N-shards-over-M-workers executor acornd runs on).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/worker_pool.hpp"

namespace acorn::util {
namespace {

// ---------------------------------------------------------------- pool

TEST(WorkerPool, ZeroTasksReturnsImmediately) {
  WorkerPool pool(4);
  std::atomic<int> calls{0};
  pool.run(0, [&](int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(WorkerPool, FewerTasksThanWorkersRunsEachOnce) {
  WorkerPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.run(3, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, ManyMoreTasksThanWorkersCoversAll) {
  WorkerPool pool(3);
  constexpr int kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  int total = 0;
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
    total += h.load();
  }
  EXPECT_EQ(total, kTasks);
}

TEST(WorkerPool, ExceptionInTaskRethrowsOnCaller) {
  WorkerPool pool(4);
  EXPECT_THROW(pool.run(16,
                        [](int i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
}

TEST(WorkerPool, UsableAgainAfterException) {
  WorkerPool pool(4);
  EXPECT_THROW(
      pool.run(8, [](int) { throw std::runtime_error("first round"); }),
      std::runtime_error);
  std::atomic<int> calls{0};
  pool.run(8, [&](int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 8);
}

TEST(WorkerPool, ReuseAcrossManyRounds) {
  WorkerPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.run(64, [&](int i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 50L * (64L * 63L / 2L));
}

TEST(WorkerPool, SingleThreadRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.run(16, [&](int i) { seen[static_cast<std::size_t>(i)] =
                                std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

// ------------------------------------------------------------ executor

/// Counting task: each run_pass() consumes the pending count and
/// returns the preloaded wake hint.
class CountingTask : public PooledExecutor::Task {
 public:
  using Clock = PooledExecutor::Clock;

  explicit CountingTask(Clock::time_point wake = Clock::time_point::max())
      : wake_(wake) {}

  int passes() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return passes_;
  }

  void wait_for_passes(int n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return passes_ >= n; });
  }

  void set_wake(Clock::time_point wake) {
    const std::lock_guard<std::mutex> lock(mutex_);
    wake_ = wake;
  }

  void block_next_pass() {
    const std::lock_guard<std::mutex> lock(mutex_);
    block_ = true;
  }

  void release_pass() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      block_ = false;
    }
    cv_.notify_all();
  }

 private:
  Clock::time_point run_pass() override {
    std::unique_lock<std::mutex> lock(mutex_);
    ++passes_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return !block_; });
    return wake_;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int passes_ = 0;
  bool block_ = false;
  Clock::time_point wake_;
};

TEST(PooledExecutor, AttachRunsFirstPassAndNotifySchedulesMore) {
  PooledExecutor exec(2);
  CountingTask task;  // idles until notified
  exec.attach(task);
  task.wait_for_passes(1);
  exec.notify(task);
  task.wait_for_passes(2);
  exec.notify(task);
  task.wait_for_passes(3);
  exec.detach(task);
  EXPECT_EQ(task.passes(), 3);
}

TEST(PooledExecutor, MinRequeuesUntilTaskGoesIdle) {
  PooledExecutor exec(1);
  CountingTask task(CountingTask::Clock::time_point::min());
  exec.attach(task);
  task.wait_for_passes(5);  // self-requeues with no further notifies
  task.set_wake(CountingTask::Clock::time_point::max());
  const int settled = task.passes();
  exec.detach(task);
  EXPECT_GE(task.passes(), settled);
}

TEST(PooledExecutor, TimerDeadlineFiresWithoutNotify) {
  PooledExecutor exec(1);
  CountingTask task(CountingTask::Clock::now() +
                    std::chrono::milliseconds(30));
  exec.attach(task);
  task.wait_for_passes(1);
  task.set_wake(CountingTask::Clock::time_point::max());
  task.wait_for_passes(2);  // only the timer can have requeued it
  exec.detach(task);
  EXPECT_GE(task.passes(), 2);
}

TEST(PooledExecutor, NotifyDuringPassTriggersFollowupPass) {
  PooledExecutor exec(2);
  CountingTask task;
  task.block_next_pass();
  exec.attach(task);
  task.wait_for_passes(1);   // worker is parked inside run_pass()
  exec.notify(task);         // marks the running task dirty
  task.release_pass();
  task.wait_for_passes(2);   // dirty flag forced a second pass
  exec.detach(task);
  EXPECT_GE(task.passes(), 2);
}

TEST(PooledExecutor, DetachBlocksUntilPassFinishes) {
  PooledExecutor exec(2);
  CountingTask task;
  task.block_next_pass();
  exec.attach(task);
  task.wait_for_passes(1);
  std::atomic<bool> detached{false};
  std::thread detacher([&] {
    exec.detach(task);
    detached.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(detached.load());  // still inside run_pass()
  task.release_pass();
  detacher.join();
  EXPECT_TRUE(detached.load());
  exec.notify(task);  // no-op after detach
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(task.passes(), 1);
}

TEST(PooledExecutor, DetachedTaskCanReattach) {
  PooledExecutor exec(1);
  CountingTask task;
  exec.attach(task);
  task.wait_for_passes(1);
  exec.detach(task);
  exec.attach(task);
  task.wait_for_passes(2);
  exec.detach(task);
  EXPECT_GE(task.passes(), 2);
}

TEST(PooledExecutor, ManyTasksOverFewWorkersAllRun) {
  PooledExecutor exec(2);
  std::vector<std::unique_ptr<CountingTask>> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back(std::make_unique<CountingTask>());
    exec.attach(*tasks.back());
  }
  for (auto& t : tasks) t->wait_for_passes(1);
  for (auto& t : tasks) exec.notify(*t);
  for (auto& t : tasks) t->wait_for_passes(2);
  for (auto& t : tasks) exec.detach(*t);
  for (auto& t : tasks) EXPECT_GE(t->passes(), 2);
}

}  // namespace
}  // namespace acorn::util
