#include "phy/link.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "phy/noise.hpp"

namespace acorn::phy {
namespace {

TEST(LinkModel, RejectsBadPayload) {
  LinkConfig cfg;
  cfg.payload_bytes = 0;
  EXPECT_THROW(LinkModel{cfg}, std::invalid_argument);
}

TEST(LinkModel, ModeImpliedByStreams) {
  EXPECT_EQ(mode_for(mcs(0)), MimoMode::kStbc);
  EXPECT_EQ(mode_for(mcs(7)), MimoMode::kStbc);
  EXPECT_EQ(mode_for(mcs(8)), MimoMode::kSdm);
  EXPECT_EQ(mode_for(mcs(15)), MimoMode::kSdm);
}

TEST(LinkModel, SnrUsesNoiseFigure) {
  LinkConfig cfg;
  cfg.noise_figure_db = 5.0;
  const LinkModel link(cfg);
  EXPECT_NEAR(link.snr_db(15.0, 90.0, ChannelWidth::k20MHz),
              snr_per_subcarrier_db(15.0, 90.0, ChannelWidth::k20MHz, 5.0),
              1e-9);
}

TEST(LinkModel, EffectiveSnrStbcGainSdmPenalty) {
  LinkConfig cfg;
  cfg.stbc_gain_db = 3.0;
  cfg.sdm_penalty_db = 6.0;
  const LinkModel link(cfg);
  EXPECT_NEAR(link.effective_snr_db(10.0, mcs(3)), 13.0, 1e-12);
  EXPECT_NEAR(link.effective_snr_db(10.0, mcs(11)), 4.0, 1e-12);
}

TEST(LinkModel, PerDecreasesWithSnr) {
  const LinkModel link;
  for (int idx : {0, 4, 7, 12, 15}) {
    double prev = 1.1;
    for (double snr = -5.0; snr <= 40.0; snr += 1.0) {
      const double per = link.per(mcs(idx), snr);
      EXPECT_LE(per, prev + 1e-12) << "MCS " << idx << " snr " << snr;
      prev = per;
    }
  }
}

TEST(LinkModel, PerIsProbability) {
  const LinkModel link;
  for (const McsEntry& e : mcs_table()) {
    for (double snr = -20.0; snr <= 50.0; snr += 5.0) {
      const double per = link.per(e, snr);
      EXPECT_GE(per, 0.0);
      EXPECT_LE(per, 1.0);
    }
  }
}

TEST(LinkModel, FortyMhzWorseAtSameTxPower) {
  const LinkModel link;
  // Marginal link: the 3.17 dB penalty must show in PER.
  const double per20 = link.per_at(mcs(2), 15.0, 104.0, ChannelWidth::k20MHz);
  const double per40 = link.per_at(mcs(2), 15.0, 104.0, ChannelWidth::k40MHz);
  EXPECT_LT(per20, per40);
}

TEST(LinkModel, SameSnrSamePerRegardlessOfWidth) {
  // Paper Fig. 3(a)/4(a): for equal per-subcarrier SNR, error rates do
  // not depend on the width (the model's PER depends on SNR only).
  const LinkModel link;
  const double snr = 9.0;
  EXPECT_DOUBLE_EQ(link.per(mcs(2), snr), link.per(mcs(2), snr));
}

TEST(LinkModel, GoodputApproachesNominalRateAtHighSnr) {
  const LinkModel link;
  const double goodput = link.goodput_bps(
      mcs(7), ChannelWidth::k20MHz, GuardInterval::kLong800ns, 40.0);
  EXPECT_NEAR(goodput, 65e6, 0.05e6);
}

TEST(LinkModel, GoodputZeroAtAbysmalSnr) {
  const LinkModel link;
  const double goodput = link.goodput_bps(
      mcs(15), ChannelWidth::k40MHz, GuardInterval::kLong800ns, -10.0);
  EXPECT_LT(goodput, 1e3);
}

TEST(LinkModel, StbcOutlivesSdmAtLowSnr) {
  const LinkModel link;
  // Same modulation/code (MCS 4 vs 12) at a marginal SNR: the single
  // stream with diversity must deliver more.
  const double snr = 16.0;
  const double stbc = link.goodput_bps(mcs(4), ChannelWidth::k20MHz,
                                       GuardInterval::kLong800ns, snr);
  const double sdm = link.goodput_bps(mcs(12), ChannelWidth::k20MHz,
                                      GuardInterval::kLong800ns, snr);
  EXPECT_GT(stbc, sdm);
}

TEST(LinkModel, SdmWinsAtHighSnr) {
  const LinkModel link;
  const double snr = 35.0;
  const double stbc = link.goodput_bps(mcs(7), ChannelWidth::k20MHz,
                                       GuardInterval::kLong800ns, snr);
  const double sdm = link.goodput_bps(mcs(15), ChannelWidth::k20MHz,
                                      GuardInterval::kLong800ns, snr);
  EXPECT_GT(sdm, stbc);
}

TEST(LinkModel, PerAtMatchesSnrPath) {
  const LinkModel link;
  const double snr = link.snr_db(15.0, 100.0, ChannelWidth::k20MHz);
  EXPECT_DOUBLE_EQ(link.per_at(mcs(3), 15.0, 100.0, ChannelWidth::k20MHz),
                   link.per(mcs(3), snr));
}

// Parameterized: every MCS has a usable SNR operating point where PER is
// low but not yet trivially zero at a slightly lower SNR.
class McsOperatingPoint : public ::testing::TestWithParam<int> {};

TEST_P(McsOperatingPoint, HasWaterfallRegion) {
  const LinkModel link;
  const McsEntry& entry = mcs(GetParam());
  double low_snr = -25.0;
  double high_snr = 55.0;
  EXPECT_GT(link.per(entry, low_snr), 0.99);
  EXPECT_LT(link.per(entry, high_snr), 1e-4);
  // Find the 50% point and check it is strictly inside the sweep.
  double mid = low_snr;
  for (double snr = low_snr; snr <= high_snr; snr += 0.25) {
    if (link.per(entry, snr) < 0.5) {
      mid = snr;
      break;
    }
  }
  EXPECT_GT(mid, low_snr);
  EXPECT_LT(mid, high_snr);
}

INSTANTIATE_TEST_SUITE_P(AllMcs, McsOperatingPoint, ::testing::Range(0, 16));

}  // namespace
}  // namespace acorn::phy
