// Dense random-drop generator: determinism, geometry, and exact
// deployment-file round-trip.
#include "dcb/random_drop.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "baselines/simple.hpp"
#include "net/interference.hpp"

namespace acorn::dcb {
namespace {

TEST(RandomDrop, RejectsBadConfig) {
  util::Rng rng(1);
  RandomDropConfig bad;
  bad.num_aps = 0;
  EXPECT_THROW(random_drop(bad, rng), std::invalid_argument);
  bad = RandomDropConfig{};
  bad.num_clients = -1;
  EXPECT_THROW(random_drop(bad, rng), std::invalid_argument);
  bad = RandomDropConfig{};
  bad.area_m = 0.0;
  EXPECT_THROW(random_drop(bad, rng), std::invalid_argument);
  bad = RandomDropConfig{};
  bad.num_channels = 0;
  EXPECT_THROW(random_drop(bad, rng), std::invalid_argument);
}

TEST(RandomDrop, ShapeMatchesConfig) {
  util::Rng rng(2);
  RandomDropConfig cfg;
  cfg.num_aps = 7;
  cfg.num_clients = 21;
  cfg.area_m = 80.0;
  const sim::DeploymentSpec spec = random_drop(cfg, rng);
  EXPECT_EQ(spec.topology.num_aps(), 7);
  EXPECT_EQ(spec.topology.num_clients(), 21);
  EXPECT_EQ(spec.num_channels, cfg.num_channels);
  for (int ap = 0; ap < spec.topology.num_aps(); ++ap) {
    const auto& node = spec.topology.ap(ap);
    EXPECT_GE(node.position.x, 0.0);
    EXPECT_LE(node.position.x, cfg.area_m);
    EXPECT_GE(node.position.y, 0.0);
    EXPECT_LE(node.position.y, cfg.area_m);
    EXPECT_DOUBLE_EQ(node.tx_dbm, cfg.ap_tx_dbm);
  }
  for (int c = 0; c < spec.topology.num_clients(); ++c) {
    const auto& node = spec.topology.client(c);
    EXPECT_GE(node.position.x, 0.0);
    EXPECT_LE(node.position.x, cfg.area_m);
  }
}

TEST(RandomDrop, DeterministicPerRngStream) {
  RandomDropConfig cfg;
  util::Rng r1(42);
  util::Rng r2(42);
  const sim::DeploymentSpec a = random_drop(cfg, r1);
  const sim::DeploymentSpec b = random_drop(cfg, r2);
  EXPECT_EQ(sim::format_deployment(a), sim::format_deployment(b));
  // Consecutive draws from one stream differ (the generator advances
  // the rng).
  const sim::DeploymentSpec c = random_drop(cfg, r1);
  EXPECT_NE(sim::format_deployment(a), sim::format_deployment(c));
}

TEST(RandomDrop, FormatParseRoundTripIsExact) {
  // The acceptance path for emitting scenarios as files: every double
  // (positions, tx power, pathloss parameters) and the seed survive a
  // format -> parse cycle bit-exactly, so a deployment file names the
  // same network the generator built in memory.
  RandomDropConfig cfg;
  cfg.num_aps = 6;
  cfg.num_clients = 18;
  util::Rng rng(7);
  const sim::DeploymentSpec spec = random_drop(cfg, rng);
  const std::string text = sim::format_deployment(spec);
  const sim::DeploymentSpec back = sim::parse_deployment(text);

  ASSERT_EQ(back.topology.num_aps(), spec.topology.num_aps());
  ASSERT_EQ(back.topology.num_clients(), spec.topology.num_clients());
  EXPECT_EQ(back.num_channels, spec.num_channels);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.pathloss.exponent, spec.pathloss.exponent);
  EXPECT_EQ(back.pathloss.ref_loss_db, spec.pathloss.ref_loss_db);
  EXPECT_EQ(back.pathloss.shadowing_sigma_db,
            spec.pathloss.shadowing_sigma_db);
  for (int ap = 0; ap < spec.topology.num_aps(); ++ap) {
    EXPECT_EQ(back.topology.ap(ap).position.x,
              spec.topology.ap(ap).position.x);
    EXPECT_EQ(back.topology.ap(ap).position.y,
              spec.topology.ap(ap).position.y);
    EXPECT_EQ(back.topology.ap(ap).tx_dbm, spec.topology.ap(ap).tx_dbm);
  }
  for (int c = 0; c < spec.topology.num_clients(); ++c) {
    EXPECT_EQ(back.topology.client(c).position.x,
              spec.topology.client(c).position.x);
    EXPECT_EQ(back.topology.client(c).position.y,
              spec.topology.client(c).position.y);
  }
  // And the round-tripped spec builds the identical network.
  const sim::Wlan w1 = spec.build();
  const sim::Wlan w2 = back.build();
  for (int ap = 0; ap < spec.topology.num_aps(); ++ap) {
    for (int c = 0; c < spec.topology.num_clients(); ++c) {
      EXPECT_EQ(w1.budget().ap_client_loss_db(ap, c),
                w2.budget().ap_client_loss_db(ap, c));
    }
  }
}

TEST(RandomDrop, DenseFamilyActuallyContends) {
  // The point of the dense default (~14 AP/ha): most scenarios have at
  // least one carrier-sense edge, i.e. the allocator has real work.
  RandomDropConfig cfg;
  util::Rng rng(11);
  int scenarios_with_contention = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const sim::DeploymentSpec spec = random_drop(cfg, rng);
    const sim::Wlan wlan = spec.build();
    const net::Association assoc = baselines::rss_associate_all(wlan);
    const net::InterferenceGraph graph(wlan.topology(), wlan.budget(),
                                       assoc,
                                       wlan.config().interference);
    bool any_edge = false;
    for (int a = 0; a < cfg.num_aps && !any_edge; ++a) {
      for (int b = a + 1; b < cfg.num_aps; ++b) {
        if (graph.adjacent(a, b)) {
          any_edge = true;
          break;
        }
      }
    }
    if (any_edge) ++scenarios_with_contention;
  }
  EXPECT_GE(scenarios_with_contention, trials * 3 / 4);
}

TEST(RandomDrop, DensityMetric) {
  RandomDropConfig cfg;
  cfg.num_aps = 5;
  cfg.area_m = 60.0;
  EXPECT_NEAR(cfg.aps_per_hectare(), 13.888, 0.01);
}

}  // namespace
}  // namespace acorn::dcb
