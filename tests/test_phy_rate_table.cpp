// The exact-MCS-threshold-table contract: phy::RateTable::decide must be
// bit-identical to the argmax sweep phy::best_rate for every SNR, width,
// GI and link configuration — index, mode, PER and goodput, not merely
// close. Randomized draws plus adversarial probes right at the bisected
// crossover points.
#include "phy/rate_table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace acorn::phy {
namespace {

void expect_same_decision(const RateTable& table, const LinkModel& link,
                          double snr_db) {
  const RateDecision expected =
      best_rate(link, table.width(), snr_db, table.gi());
  const RateDecision got = table.decide(snr_db);
  EXPECT_EQ(got.mcs_index, expected.mcs_index) << "snr " << snr_db;
  EXPECT_EQ(got.mode, expected.mode) << "snr " << snr_db;
  // Bit-identity on the doubles, not near-equality.
  EXPECT_EQ(got.per, expected.per) << "snr " << snr_db;
  EXPECT_EQ(got.goodput_bps, expected.goodput_bps) << "snr " << snr_db;
}

TEST(RateTable, SegmentsAreOrderedAndStartAtMinusInfinity) {
  const LinkModel link{LinkConfig{}};
  for (const ChannelWidth width :
       {ChannelWidth::k20MHz, ChannelWidth::k40MHz}) {
    for (const GuardInterval gi :
         {GuardInterval::kLong800ns, GuardInterval::kShort400ns}) {
      const auto table = RateTable::shared(link, width, gi);
      const auto& segments = table->segments();
      ASSERT_FALSE(segments.empty());
      EXPECT_EQ(segments.front().start_snr_db,
                -std::numeric_limits<double>::infinity());
      for (std::size_t i = 1; i < segments.size(); ++i) {
        EXPECT_LT(segments[i - 1].start_snr_db, segments[i].start_snr_db);
        // Adjacent segments must actually differ, else the boundary is
        // spurious.
        EXPECT_NE(segments[i - 1].mcs_index, segments[i].mcs_index);
        const McsEntry& entry = mcs(segments[i].mcs_index);
        EXPECT_EQ(segments[i].rate_bps, entry.rate_bps(width, gi));
      }
    }
  }
}

TEST(RateTable, BitIdenticalToBestRateOnRandomSnrsAllWidthsAndGis) {
  const LinkModel link{LinkConfig{}};
  util::Rng rng(0x7AB1E);
  for (const ChannelWidth width :
       {ChannelWidth::k20MHz, ChannelWidth::k40MHz}) {
    for (const GuardInterval gi :
         {GuardInterval::kLong800ns, GuardInterval::kShort400ns}) {
      const auto table = RateTable::shared(link, width, gi);
      // Dense draws across the operating range plus far outside it.
      for (int i = 0; i < 400; ++i) {
        expect_same_decision(*table, link, rng.uniform(-20.0, 50.0));
      }
      for (int i = 0; i < 50; ++i) {
        expect_same_decision(*table, link, rng.uniform(-200.0, 200.0));
      }
    }
  }
}

TEST(RateTable, BitIdenticalRightAtTheBisectedCrossovers) {
  // The hardest inputs are the crossover points themselves: one double
  // below the boundary the old winner must still win, at the boundary
  // the new one must. Probe every segment edge from both sides.
  const LinkModel link{LinkConfig{}};
  for (const ChannelWidth width :
       {ChannelWidth::k20MHz, ChannelWidth::k40MHz}) {
    const auto table =
        RateTable::shared(link, width, GuardInterval::kLong800ns);
    const auto& segments = table->segments();
    for (std::size_t i = 1; i < segments.size(); ++i) {
      const double edge = segments[i].start_snr_db;
      const double below =
          std::nextafter(edge, -std::numeric_limits<double>::infinity());
      expect_same_decision(*table, link, edge);
      expect_same_decision(*table, link, below);
      EXPECT_EQ(table->pick_index(edge), segments[i].mcs_index);
      EXPECT_EQ(table->pick_index(below), segments[i - 1].mcs_index);
    }
  }
}

TEST(RateTable, BitIdenticalAcrossRandomLinkConfigs) {
  util::Rng rng(0xC0FF);
  for (int cfg_trial = 0; cfg_trial < 4; ++cfg_trial) {
    LinkConfig cfg;
    cfg.shadow_db = rng.uniform(0.5, 6.0);
    cfg.stbc_gain_db = rng.uniform(1.0, 4.0);
    cfg.sdm_penalty_db = rng.uniform(3.0, 9.0);
    cfg.payload_bytes = static_cast<int>(rng.uniform_int(200, 4000));
    const LinkModel link{cfg};
    const ChannelWidth width = (cfg_trial % 2) == 0 ? ChannelWidth::k20MHz
                                                    : ChannelWidth::k40MHz;
    const GuardInterval gi = (cfg_trial / 2 % 2) == 0
                                 ? GuardInterval::kLong800ns
                                 : GuardInterval::kShort400ns;
    const RateTable table(link, width, gi);
    for (int i = 0; i < 200; ++i) {
      expect_same_decision(table, link, rng.uniform(-15.0, 45.0));
    }
    for (std::size_t s = 1; s < table.segments().size(); ++s) {
      const double edge = table.segments()[s].start_snr_db;
      expect_same_decision(table, link, edge);
      expect_same_decision(
          table, link,
          std::nextafter(edge, -std::numeric_limits<double>::infinity()));
    }
  }
}

TEST(RateTable, BracketedConstructionMatchesDenseReferenceExactly) {
  // The bracketed probe strategy (dead-zone shortcut + pruned seeded
  // argmax) must reproduce the dense 16-row-sweep reference segment for
  // segment — same boundaries to the last bit, same winners — across
  // widths, GIs and randomized link configs.
  util::Rng rng(0xB4ACE);
  for (int trial = 0; trial < 6; ++trial) {
    LinkConfig cfg;
    if (trial > 1) {
      cfg.shadow_db = rng.uniform(0.5, 6.0);
      cfg.stbc_gain_db = rng.uniform(1.0, 4.0);
      cfg.sdm_penalty_db = rng.uniform(3.0, 9.0);
      cfg.payload_bytes = static_cast<int>(rng.uniform_int(200, 4000));
    }
    const LinkModel link{cfg};
    const ChannelWidth width =
        (trial % 2) == 0 ? ChannelWidth::k20MHz : ChannelWidth::k40MHz;
    const GuardInterval gi = (trial / 2 % 2) == 0 ? GuardInterval::kLong800ns
                                                  : GuardInterval::kShort400ns;
    const RateTable fast(link, width, gi, RateTable::Construction::kBracketed);
    const RateTable dense(link, width, gi,
                          RateTable::Construction::kDenseReference);
    ASSERT_EQ(fast.segments().size(), dense.segments().size())
        << "trial " << trial;
    for (std::size_t i = 0; i < dense.segments().size(); ++i) {
      EXPECT_EQ(fast.segments()[i].start_snr_db,
                dense.segments()[i].start_snr_db)
          << "trial " << trial << " segment " << i;
      EXPECT_EQ(fast.segments()[i].mcs_index, dense.segments()[i].mcs_index);
      EXPECT_EQ(fast.segments()[i].mode, dense.segments()[i].mode);
      EXPECT_EQ(fast.segments()[i].rate_bps, dense.segments()[i].rate_bps);
    }
    // The point of the exercise: the bracketed scan must spend far fewer
    // goodput probes. 4x is conservative; in practice it is ~8x.
    EXPECT_LT(fast.construction_goodput_probes() * 4,
              dense.construction_goodput_probes())
        << "trial " << trial;
    EXPECT_GT(fast.construction_goodput_probes(), 0u);
  }
}

TEST(RateTable, BracketedDecisionsMatchBestRateDeepInTheDeadZone) {
  // The dead zone (every row's goodput exactly 0) is where the bracketed
  // scan spends one probe instead of sixteen; make sure decisions there
  // are still bit-identical to best_rate, including just around the
  // zone's upper edge.
  const LinkModel link{LinkConfig{}};
  util::Rng rng(0xDEAD2);
  const RateTable table(link, ChannelWidth::k20MHz,
                        GuardInterval::kLong800ns);
  for (int i = 0; i < 120; ++i) {
    expect_same_decision(table, link, rng.uniform(-80.0, -2.0));
  }
}

TEST(RateTable, ExtremeSnrsClampToBoundarySegments) {
  const LinkModel link{LinkConfig{}};
  const auto table = RateTable::shared(link, ChannelWidth::k20MHz,
                                       GuardInterval::kLong800ns);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(table->pick_index(-inf), table->segments().front().mcs_index);
  EXPECT_EQ(table->pick_index(inf), table->segments().back().mcs_index);
  expect_same_decision(*table, link, -500.0);
  expect_same_decision(*table, link, 500.0);
}

TEST(RateTable, SharedCacheReturnsOneTablePerConfiguration) {
  const LinkModel link{LinkConfig{}};
  const auto a = RateTable::shared(link, ChannelWidth::k20MHz,
                                   GuardInterval::kLong800ns);
  const auto b = RateTable::shared(link, ChannelWidth::k20MHz,
                                   GuardInterval::kLong800ns);
  const auto c = RateTable::shared(link, ChannelWidth::k40MHz,
                                   GuardInterval::kLong800ns);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  LinkConfig other;
  other.payload_bytes = 256;
  const auto d = RateTable::shared(LinkModel{other}, ChannelWidth::k20MHz,
                                   GuardInterval::kLong800ns);
  EXPECT_NE(a.get(), d.get());
}

}  // namespace
}  // namespace acorn::phy
