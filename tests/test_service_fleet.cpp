// Fleet-scale acornd: the pooled shard executor must be observationally
// identical to the thread-per-WLAN reference mode.
//
// All events ride one pipelined connection, so each shard's mailbox
// order is the send order no matter how many workers the pool has or
// how they interleave across shards — which makes "identical" checkable
// to the byte: after the same schedule, every WLAN's snapshot encoding
// must match the reference mode exactly, at every worker count.
//
// The fleet_smoke test (256 WLANs over 4 pooled workers, trace-driven
// churn) is additionally labelled `fleet_smoke` so CI can run it alone
// in the tier-1, ASan and TSan lanes.
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/snapshot.hpp"
#include "trace/load_gen.hpp"
#include "util/rng.hpp"

namespace acorn::service {
namespace {

constexpr int kWindow = 64;

std::string sock_path(const char* tag, int workers) {
  return "/tmp/acorn_fleet_test_" + std::to_string(::getpid()) + "_" + tag +
         "_" + std::to_string(workers) + ".sock";
}

void send_event(Client& client, const trace::LoadEvent& e) {
  switch (e.kind) {
    case trace::LoadEventKind::kJoin:
      client.send(ClientJoin{e.wlan_id, e.client});
      break;
    case trace::LoadEventKind::kLeave:
      client.send(ClientLeave{e.wlan_id, e.client});
      break;
    case trace::LoadEventKind::kSnr:
      client.send(SnrUpdate{e.wlan_id, e.ap, e.client, e.value});
      break;
    case trace::LoadEventKind::kLoad:
      client.send(LoadUpdate{e.wlan_id, e.client, e.value});
      break;
  }
}

/// Run `events` against a fresh daemon with the given worker mode
/// (0 = thread-per-WLAN reference) and return every WLAN's snapshot
/// bytes. A ForceReconfigure for a rotating WLAN is interleaved every
/// `reconfigure_stride` events — in-stream, so it lands at the same
/// position in that WLAN's mailbox in every mode.
std::vector<std::vector<std::uint8_t>> run_schedule(
    const char* tag, int workers, int num_wlans, const std::string& floor,
    const std::vector<trace::LoadEvent>& events, int reconfigure_stride) {
  DaemonConfig config;
  config.unix_path = sock_path(tag, workers);
  config.epoch_s = 0.0;  // no timer epochs: the schedule is the clock
  config.workers = workers;
  Daemon daemon(config);
  daemon.start();
  Client client = Client::connect_unix(config.unix_path);

  std::int64_t sent = 0;
  std::int64_t recvd = 0;
  const auto pump = [&](const Message& msg) {
    client.send(msg);
    ++sent;
    if (sent - recvd >= kWindow) {
      (void)client.recv();
      ++recvd;
    }
  };
  for (int w = 0; w < num_wlans; ++w) {
    pump(RegisterWlan{static_cast<std::uint32_t>(1 + w), floor});
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    send_event(client, events[i]);
    ++sent;
    if (sent - recvd >= kWindow) {
      (void)client.recv();
      ++recvd;
    }
    if (reconfigure_stride > 0 &&
        (i + 1) % static_cast<std::size_t>(reconfigure_stride) == 0) {
      pump(ForceReconfigure{static_cast<std::uint32_t>(
          1 + (i / static_cast<std::size_t>(reconfigure_stride)) %
                  static_cast<std::size_t>(num_wlans))});
    }
  }
  while (recvd < sent) {
    (void)client.recv();
    ++recvd;
  }

  std::vector<std::vector<std::uint8_t>> snaps;
  snaps.reserve(static_cast<std::size_t>(num_wlans));
  for (int w = 0; w < num_wlans; ++w) {
    const auto state = daemon.wlan_state(static_cast<std::uint32_t>(1 + w));
    EXPECT_TRUE(state.has_value());
    snaps.push_back(state ? encode_snapshot(*state)
                          : std::vector<std::uint8_t>{});
  }
  client.close();
  daemon.stop();
  return snaps;
}

/// Seeded random mutating schedule: joins, leaves, SNR drift and load
/// hints scattered across the fleet (heavier on mutation than the trace
/// generator, including double-joins and leaves of absent clients).
std::vector<trace::LoadEvent> random_schedule(int num_wlans, int clients,
                                              int aps, int count,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<trace::LoadEvent> events;
  events.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    trace::LoadEvent e;
    e.t_s = static_cast<double>(i);
    e.wlan_id = static_cast<std::uint32_t>(
        rng.uniform_int(1, num_wlans));
    e.client = static_cast<std::uint32_t>(
        rng.uniform_int(0, clients - 1));
    const double kind = rng.uniform();
    if (kind < 0.30) {
      e.kind = trace::LoadEventKind::kJoin;
    } else if (kind < 0.45) {
      e.kind = trace::LoadEventKind::kLeave;
    } else if (kind < 0.80) {
      e.kind = trace::LoadEventKind::kSnr;
      e.ap = static_cast<std::uint32_t>(rng.uniform_int(0, aps - 1));
      e.value = rng.uniform(70.0, 115.0);
    } else {
      e.kind = trace::LoadEventKind::kLoad;
      e.value = rng.uniform();
    }
    events.push_back(e);
  }
  return events;
}

TEST(ServiceFleet, PooledMatchesReferenceOnRandomSchedules) {
  constexpr int kWlans = 6;
  constexpr int kClients = 6;
  constexpr int kAps = 3;
  const std::string floor = trace::synthetic_floor(kAps, kClients, 11);
  const std::vector<trace::LoadEvent> events =
      random_schedule(kWlans, kClients, kAps, 800, 0xF1EE7);

  const auto reference =
      run_schedule("rand", 0, kWlans, floor, events, 37);
  ASSERT_EQ(reference.size(), static_cast<std::size_t>(kWlans));
  for (const int workers : {1, 2, 4}) {
    const auto pooled =
        run_schedule("rand", workers, kWlans, floor, events, 37);
    ASSERT_EQ(pooled.size(), reference.size());
    for (int w = 0; w < kWlans; ++w) {
      EXPECT_EQ(pooled[static_cast<std::size_t>(w)],
                reference[static_cast<std::size_t>(w)])
          << "wlan " << (1 + w) << " diverged at " << workers
          << " pooled workers";
    }
  }
}

TEST(ServiceFleet, FleetSmoke256WlansOver4PooledWorkers) {
  constexpr int kWlans = 256;
  const std::string floor = trace::synthetic_floor(3, 8, 7);

  trace::FleetLoadConfig lc;
  lc.num_wlans = kWlans;
  lc.clients_per_wlan = 8;
  lc.aps_per_wlan = 3;
  lc.horizon_s = 400.0;
  lc.duration_scale = 0.1;
  lc.seed = 42;
  std::vector<trace::LoadEvent> events = trace::generate_fleet_load(lc);
  ASSERT_GT(events.size(), 1000u);
  if (events.size() > 4000) events.resize(4000);

  const auto reference =
      run_schedule("smoke", 0, kWlans, floor, events, 64);
  const auto pooled = run_schedule("smoke", 4, kWlans, floor, events, 64);
  ASSERT_EQ(pooled.size(), reference.size());
  for (int w = 0; w < kWlans; ++w) {
    EXPECT_EQ(pooled[static_cast<std::size_t>(w)],
              reference[static_cast<std::size_t>(w)])
        << "wlan " << (1 + w) << " diverged under the pooled executor";
  }
}

TEST(ServiceFleet, PooledTimerEpochsFire) {
  DaemonConfig config;
  config.unix_path = sock_path("timer", 2);
  config.epoch_s = 0.05;
  config.workers = 2;
  Daemon daemon(config);
  daemon.start();
  Client client = Client::connect_unix(config.unix_path);
  client.call(RegisterWlan{1, trace::synthetic_floor(2, 4, 3)});
  client.call(ClientJoin{1, 0});

  // The pool's timer wheel, not a dedicated shard thread, must drive
  // the periodic epoch.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::uint64_t epochs = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const Message reply = client.call(QueryStats{});
    epochs = std::get<StatsReply>(reply).epochs_total;
    if (epochs >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(epochs, 2u);
  client.close();
  daemon.stop();
}

TEST(ServiceFleet, RemoveAndReregisterUnderPooledExecutor) {
  DaemonConfig config;
  config.unix_path = sock_path("remove", 2);
  config.epoch_s = 0.0;
  config.workers = 2;
  Daemon daemon(config);
  daemon.start();
  Client client = Client::connect_unix(config.unix_path);
  const std::string floor = trace::synthetic_floor(2, 4, 3);

  // Register/apply/remove cycles exercise the detach path (quiesce,
  // timer cancel) while other shards stay live on the same workers.
  client.call(RegisterWlan{7, floor});
  for (int round = 0; round < 5; ++round) {
    client.call(RegisterWlan{1, floor});
    client.call(ClientJoin{1, 0});
    client.call(SnrUpdate{1, 0, 0, 90.0});
    client.call(ForceReconfigure{1});
    client.call(RemoveWlan{1});
    client.call(ClientJoin{7, static_cast<std::uint32_t>(round % 4)});
  }
  const Message reply = client.call(QueryStats{});
  EXPECT_EQ(std::get<StatsReply>(reply).num_wlans, 1u);
  const auto state = daemon.wlan_state(7);
  ASSERT_TRUE(state.has_value());
  EXPECT_GT(state->events_applied, 0u);
  client.close();
  daemon.stop();
}

}  // namespace
}  // namespace acorn::service
