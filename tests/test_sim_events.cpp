#include "sim/events.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace acorn::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0.0);
  EXPECT_EQ(q.processed(), 0u);
}

TEST(EventQueue, ProcessesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&](double) { order.push_back(3); });
  q.schedule(1.0, [&](double) { order.push_back(1); });
  q.schedule(2.0, [&](double) { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&](double) { order.push_back(1); });
  q.schedule(1.0, [&](double) { order.push_back(2); });
  q.schedule(1.0, [&](double) { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(5.0, [&](double now) { seen = now; });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&](double) { ++fired; });
  q.schedule(10.0, [&](double) { ++fired; });
  q.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  EXPECT_FALSE(q.empty());
  q.run_until(20.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void(double)> periodic = [&](double) {
    ++count;
    if (count < 5) q.schedule_in(1.0, periodic);
  };
  q.schedule(0.0, periodic);
  q.run_until(100.0);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 100.0);
}

TEST(EventQueue, RejectsPastSchedulingAndEmptyHandlers) {
  EventQueue q;
  q.schedule(5.0, [](double) {});
  q.run();
  EXPECT_THROW(q.schedule(1.0, [](double) {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1.0, [](double) {}), std::invalid_argument);
  EXPECT_THROW(q.schedule(10.0, EventQueue::Handler{}),
               std::invalid_argument);
}

TEST(EventQueue, ScheduleInIsRelativeToNow) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule(4.0, [&](double) {
    q.schedule_in(2.5, [&](double now) { fired_at = now; });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 6.5);
}

}  // namespace
}  // namespace acorn::sim
