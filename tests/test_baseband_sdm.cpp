#include "baseband/sdm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "baseband/channel.hpp"
#include "baseband/qpsk.hpp"
#include "baseband/stbc.hpp"
#include "util/rng.hpp"

namespace acorn::baseband {
namespace {

Mimo2x2 random_channel(util::Rng& rng) {
  Mimo2x2 h;
  for (auto& row : h) {
    for (auto& x : row) {
      x = Cx(rng.normal(0.0, std::sqrt(0.5)),
             rng.normal(0.0, std::sqrt(0.5)));
    }
  }
  return h;
}

TEST(Sdm, DeterminantOfIdentityIsOne) {
  const Mimo2x2 eye = {{{Cx(1, 0), Cx(0, 0)}, {Cx(0, 0), Cx(1, 0)}}};
  EXPECT_NEAR(std::abs(mimo_determinant(eye) - Cx(1, 0)), 0.0, 1e-12);
}

TEST(Sdm, ZfRecoversNoiselessStreams) {
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const Mimo2x2 h = random_channel(rng);
    const Cx x0(rng.normal(), rng.normal());
    const Cx x1(rng.normal(), rng.normal());
    const Cx r0 = h[0][0] * x0 + h[0][1] * x1;
    const Cx r1 = h[1][0] * x0 + h[1][1] * x1;
    const auto detected = zf_detect(h, r0, r1);
    EXPECT_NEAR(std::abs(detected[0] - x0), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(detected[1] - x1), 0.0, 1e-9);
  }
}

TEST(Sdm, ZfThrowsOnSingularChannel) {
  const Mimo2x2 singular = {{{Cx(1, 0), Cx(1, 0)}, {Cx(1, 0), Cx(1, 0)}}};
  EXPECT_THROW(zf_detect(singular, Cx{}, Cx{}), std::domain_error);
}

TEST(Sdm, NoiseAmplificationIdentityIsOne) {
  const Mimo2x2 eye = {{{Cx(1, 0), Cx(0, 0)}, {Cx(0, 0), Cx(1, 0)}}};
  const auto amp = zf_noise_amplification(eye);
  EXPECT_NEAR(amp[0], 1.0, 1e-12);
  EXPECT_NEAR(amp[1], 1.0, 1e-12);
}

TEST(Sdm, NoiseAmplificationGrowsAsChannelDegenerates) {
  // Nearly collinear columns: ZF must amplify noise heavily.
  const Mimo2x2 bad = {{{Cx(1, 0), Cx(0.99, 0)}, {Cx(1, 0), Cx(1.0, 0)}}};
  const auto amp = zf_noise_amplification(bad);
  EXPECT_GT(amp[0], 100.0);
  EXPECT_GT(amp[1], 100.0);
}

TEST(Sdm, SplitMergeRoundTrip) {
  util::Rng rng(2);
  std::vector<Cx> symbols(40);
  for (auto& s : symbols) s = Cx(rng.normal(), rng.normal());
  const SdmStreams streams = sdm_split(symbols);
  const auto merged = sdm_merge(streams.stream0, streams.stream1);
  ASSERT_EQ(merged.size(), symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_EQ(merged[i], symbols[i]);
  }
}

TEST(Sdm, SplitPadsOddLength) {
  const std::vector<Cx> symbols = {Cx(1, 0), Cx(2, 0), Cx(3, 0)};
  const SdmStreams streams = sdm_split(symbols);
  EXPECT_EQ(streams.stream0.size(), 2u);
  EXPECT_EQ(streams.stream1.size(), 2u);
  EXPECT_EQ(streams.stream1[1], Cx{});
}

TEST(Sdm, MergeValidatesLengths) {
  const std::vector<Cx> a(3);
  const std::vector<Cx> b(4);
  EXPECT_THROW(sdm_merge(a, b), std::invalid_argument);
}

// The mode tradeoff the auto-rate exploits: at equal total Tx and the
// same QPSK symbols, STBC has (much) lower BER than SDM, while SDM moves
// twice the symbols per channel use.
TEST(Sdm, StbcBeatsSdmInReliabilityAtSameSnr) {
  util::Rng rng(3);
  const int kSymbols = 4000;
  const double noise_var = 0.25;  // per receive antenna
  int sdm_errors = 0;
  int stbc_errors = 0;
  int total_bits = 0;
  for (int block = 0; block < kSymbols / 2; ++block) {
    const Mimo2x2 h = random_channel(rng);
    std::vector<std::uint8_t> bits(4);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
    const auto symbols = qpsk_modulate(bits);  // 2 symbols
    auto awgn = [&rng, noise_var] {
      return Cx(rng.normal(0.0, std::sqrt(noise_var / 2.0)),
                rng.normal(0.0, std::sqrt(noise_var / 2.0)));
    };

    // SDM: both symbols in one use; per-antenna power split by sqrt(2).
    const double g = 1.0 / std::sqrt(2.0);
    const Cx r0 =
        g * (h[0][0] * symbols[0] + h[0][1] * symbols[1]) + awgn();
    const Cx r1 =
        g * (h[1][0] * symbols[0] + h[1][1] * symbols[1]) + awgn();
    const auto det = zf_detect(h, r0 / g, r1 / g);
    const auto sdm_bits =
        qpsk_demodulate(std::vector<Cx>{det[0], det[1]});

    // STBC: the same two symbols over two uses via Alamouti (h[rx][tx]
    // maps to the combiner's h_xy = tx x -> rx y convention).
    const Cx ra0 = g * (h[0][0] * symbols[0] + h[0][1] * symbols[1]) + awgn();
    const Cx ra1 = g * (h[0][0] * (-std::conj(symbols[1])) +
                        h[0][1] * std::conj(symbols[0])) +
                   awgn();
    const Cx rb0 = g * (h[1][0] * symbols[0] + h[1][1] * symbols[1]) + awgn();
    const Cx rb1 = g * (h[1][0] * (-std::conj(symbols[1])) +
                        h[1][1] * std::conj(symbols[0])) +
                   awgn();
    const StbcDecoded d = alamouti_combine(
        ra0 / g, ra1 / g, rb0 / g, rb1 / g, h[0][0], h[1][0], h[0][1],
        h[1][1]);
    const double gain = d.gain > 1e-12 ? d.gain : 1.0;
    const auto stbc_bits =
        qpsk_demodulate(std::vector<Cx>{d.s0 / gain, d.s1 / gain});

    for (int i = 0; i < 4; ++i) {
      if (sdm_bits[static_cast<std::size_t>(i)] != bits[static_cast<std::size_t>(i)]) ++sdm_errors;
      if (stbc_bits[static_cast<std::size_t>(i)] != bits[static_cast<std::size_t>(i)]) ++stbc_errors;
      ++total_bits;
    }
  }
  EXPECT_GT(total_bits, 0);
  EXPECT_LT(stbc_errors, sdm_errors / 2)
      << "STBC " << stbc_errors << " vs SDM " << sdm_errors;
}


TEST(Mmse, MatchesZfWithoutNoise) {
  util::Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const Mimo2x2 h = random_channel(rng);
    const Cx x0(rng.normal(), rng.normal());
    const Cx x1(rng.normal(), rng.normal());
    const Cx r0 = h[0][0] * x0 + h[0][1] * x1;
    const Cx r1 = h[1][0] * x0 + h[1][1] * x1;
    const auto zf = zf_detect(h, r0, r1);
    const auto mmse = mmse_detect(h, r0, r1, 0.0);
    EXPECT_NEAR(std::abs(zf[0] - mmse[0]), 0.0, 1e-8);
    EXPECT_NEAR(std::abs(zf[1] - mmse[1]), 0.0, 1e-8);
  }
}

TEST(Mmse, SurvivesSingularChannel) {
  const Mimo2x2 singular = {{{Cx(1, 0), Cx(1, 0)}, {Cx(1, 0), Cx(1, 0)}}};
  // ZF throws; MMSE regularizes and returns a finite estimate.
  const auto out = mmse_detect(singular, Cx(2, 0), Cx(2, 0), 0.1);
  EXPECT_TRUE(std::isfinite(out[0].real()));
  EXPECT_TRUE(std::isfinite(out[1].real()));
}

TEST(Mmse, RejectsNegativeNoise) {
  const Mimo2x2 eye = {{{Cx(1, 0), Cx(0, 0)}, {Cx(0, 0), Cx(1, 0)}}};
  EXPECT_THROW(mmse_detect(eye, Cx{}, Cx{}, -0.1), std::invalid_argument);
}

TEST(Mmse, BeatsZfOnIllConditionedChannels) {
  // Bit errors of hard-sliced QPSK under noise, channels near-singular:
  // MMSE's regularization must win.
  util::Rng rng(11);
  int zf_errors = 0;
  int mmse_errors = 0;
  const double noise_var = 0.05;
  for (int trial = 0; trial < 2000; ++trial) {
    Mimo2x2 h = random_channel(rng);
    // Force near-collinearity.
    h[0][1] = h[0][0] * 1.05 + Cx(rng.normal(0.0, 0.05), 0.0);
    h[1][1] = h[1][0] * 1.05 + Cx(rng.normal(0.0, 0.05), 0.0);
    std::vector<std::uint8_t> bits(4);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
    const auto symbols = qpsk_modulate(bits);
    auto awgn = [&rng, noise_var] {
      return Cx(rng.normal(0.0, std::sqrt(noise_var / 2.0)),
                rng.normal(0.0, std::sqrt(noise_var / 2.0)));
    };
    const Cx r0 = h[0][0] * symbols[0] + h[0][1] * symbols[1] + awgn();
    const Cx r1 = h[1][0] * symbols[0] + h[1][1] * symbols[1] + awgn();
    std::vector<Cx> zf_syms;
    try {
      const auto zf = zf_detect(h, r0, r1);
      zf_syms = {zf[0], zf[1]};
    } catch (const std::domain_error&) {
      zf_syms = {Cx{}, Cx{}};
    }
    const auto mmse = mmse_detect(h, r0, r1, noise_var);
    const auto zf_bits = qpsk_demodulate(zf_syms);
    const auto mmse_bits =
        qpsk_demodulate(std::vector<Cx>{mmse[0], mmse[1]});
    for (int i = 0; i < 4; ++i) {
      if (zf_bits[static_cast<std::size_t>(i)] !=
          bits[static_cast<std::size_t>(i)]) ++zf_errors;
      if (mmse_bits[static_cast<std::size_t>(i)] !=
          bits[static_cast<std::size_t>(i)]) ++mmse_errors;
    }
  }
  EXPECT_LT(mmse_errors, zf_errors);
}

}  // namespace
}  // namespace acorn::baseband
