#include "baseband/stbc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace acorn::baseband {
namespace {

TEST(Alamouti, EncodeStructure) {
  const std::vector<Cx> syms = {Cx(1.0, 0.0), Cx(0.0, 1.0)};
  const StbcStreams s = alamouti_encode(syms);
  ASSERT_EQ(s.antenna_a.size(), 2u);
  ASSERT_EQ(s.antenna_b.size(), 2u);
  EXPECT_EQ(s.antenna_a[0], syms[0]);
  EXPECT_EQ(s.antenna_b[0], syms[1]);
  EXPECT_EQ(s.antenna_a[1], -std::conj(syms[1]));
  EXPECT_EQ(s.antenna_b[1], std::conj(syms[0]));
}

TEST(Alamouti, EncodePadsOddLength) {
  const std::vector<Cx> syms = {Cx(1.0, 0.0)};
  const StbcStreams s = alamouti_encode(syms);
  EXPECT_EQ(s.antenna_a.size(), 2u);
  EXPECT_EQ(s.antenna_b[0], Cx{});
}

TEST(Alamouti, PerfectRecoveryNoiseless2x2) {
  util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const Cx s0(rng.normal(), rng.normal());
    const Cx s1(rng.normal(), rng.normal());
    const Cx h_aa(rng.normal(), rng.normal());
    const Cx h_ab(rng.normal(), rng.normal());
    const Cx h_ba(rng.normal(), rng.normal());
    const Cx h_bb(rng.normal(), rng.normal());
    // Received: slot0 r = h_A * a0 + h_B * b0; slot1 with the conjugates.
    const Cx r_a0 = h_aa * s0 + h_ba * s1;
    const Cx r_a1 = h_aa * (-std::conj(s1)) + h_ba * std::conj(s0);
    const Cx r_b0 = h_ab * s0 + h_bb * s1;
    const Cx r_b1 = h_ab * (-std::conj(s1)) + h_bb * std::conj(s0);
    const StbcDecoded d =
        alamouti_combine(r_a0, r_a1, r_b0, r_b1, h_aa, h_ab, h_ba, h_bb);
    EXPECT_NEAR(std::abs(d.s0 / d.gain - s0), 0.0, 1e-10);
    EXPECT_NEAR(std::abs(d.s1 / d.gain - s1), 0.0, 1e-10);
  }
}

TEST(Alamouti, GainIsSumOfPathPowers) {
  const Cx h(3.0, 4.0);  // |h|^2 = 25
  const StbcDecoded d = alamouti_combine(Cx{}, Cx{}, Cx{}, Cx{}, h, h, h, h);
  EXPECT_NEAR(d.gain, 100.0, 1e-12);
}

TEST(Alamouti, CombineStreamsRoundTrip) {
  util::Rng rng(5);
  std::vector<Cx> syms(40);
  for (auto& s : syms) s = Cx(rng.normal(), rng.normal());
  const Cx h_aa(0.7, -0.1);
  const Cx h_ab(-0.3, 0.4);
  const Cx h_ba(0.1, 0.9);
  const Cx h_bb(0.5, 0.2);
  const StbcStreams tx = alamouti_encode(syms);
  std::vector<Cx> rx_a(tx.antenna_a.size());
  std::vector<Cx> rx_b(tx.antenna_a.size());
  for (std::size_t i = 0; i < tx.antenna_a.size(); ++i) {
    rx_a[i] = h_aa * tx.antenna_a[i] + h_ba * tx.antenna_b[i];
    rx_b[i] = h_ab * tx.antenna_a[i] + h_bb * tx.antenna_b[i];
  }
  const auto decoded = alamouti_combine_streams(rx_a, rx_b, h_aa, h_ab,
                                                h_ba, h_bb);
  ASSERT_EQ(decoded.size(), syms.size());
  for (std::size_t i = 0; i < syms.size(); ++i) {
    EXPECT_NEAR(std::abs(decoded[i] - syms[i]), 0.0, 1e-10) << i;
  }
}

TEST(Alamouti, CombineStreamsRejectsBadLengths) {
  const std::vector<Cx> even(4);
  const std::vector<Cx> odd(3);
  const std::vector<Cx> other(6);
  EXPECT_THROW(
      alamouti_combine_streams(odd, odd, Cx{1.0}, Cx{}, Cx{}, Cx{1.0}),
      std::invalid_argument);
  EXPECT_THROW(
      alamouti_combine_streams(even, other, Cx{1.0}, Cx{}, Cx{}, Cx{1.0}),
      std::invalid_argument);
}

TEST(Alamouti, DiversityImprovesWorstCase) {
  // With one dead path the 2x2 combiner still recovers the symbols.
  util::Rng rng(7);
  const Cx s0(1.0, 0.0);
  const Cx s1(0.0, -1.0);
  const Cx dead{};
  const Cx h_ab(0.8, 0.1);
  const Cx h_ba(0.2, -0.5);
  const Cx h_bb(0.4, 0.4);
  const Cx r_a0 = dead * s0 + h_ba * s1;
  const Cx r_a1 = dead * (-std::conj(s1)) + h_ba * std::conj(s0);
  const Cx r_b0 = h_ab * s0 + h_bb * s1;
  const Cx r_b1 = h_ab * (-std::conj(s1)) + h_bb * std::conj(s0);
  const StbcDecoded d =
      alamouti_combine(r_a0, r_a1, r_b0, r_b1, dead, h_ab, h_ba, h_bb);
  ASSERT_GT(d.gain, 0.0);
  EXPECT_NEAR(std::abs(d.s0 / d.gain - s0), 0.0, 1e-10);
  EXPECT_NEAR(std::abs(d.s1 / d.gain - s1), 0.0, 1e-10);
}

}  // namespace
}  // namespace acorn::baseband
