#include "baseband/qam.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "util/rng.hpp"

namespace acorn::baseband {
namespace {

std::vector<std::uint8_t> random_bits(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
  return bits;
}

constexpr phy::Modulation kAll[] = {
    phy::Modulation::kBpsk, phy::Modulation::kQpsk, phy::Modulation::kQam16,
    phy::Modulation::kQam64};

TEST(Qam, UnitAverageEnergy) {
  // Over all symbols of the constellation, mean |s|^2 = 1.
  for (const auto mod : kAll) {
    const int k = phy::bits_per_symbol(mod);
    double energy = 0.0;
    const int count = 1 << k;
    for (int v = 0; v < count; ++v) {
      std::vector<std::uint8_t> bits(static_cast<std::size_t>(k));
      for (int b = 0; b < k; ++b) {
        bits[static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>((v >> (k - 1 - b)) & 1);
      }
      energy += std::norm(qam_map_symbol(bits, mod));
    }
    EXPECT_NEAR(energy / count, 1.0, 1e-9) << to_string(mod);
  }
}

TEST(Qam, AllConstellationPointsDistinct) {
  for (const auto mod : kAll) {
    const int k = phy::bits_per_symbol(mod);
    std::set<std::pair<long, long>> seen;
    for (int v = 0; v < (1 << k); ++v) {
      std::vector<std::uint8_t> bits(static_cast<std::size_t>(k));
      for (int b = 0; b < k; ++b) {
        bits[static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>((v >> (k - 1 - b)) & 1);
      }
      const Cx s = qam_map_symbol(bits, mod);
      seen.insert({std::lround(s.real() * 1e6), std::lround(s.imag() * 1e6)});
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(1 << k))
        << to_string(mod);
  }
}

TEST(Qam, RoundTripNoiseless) {
  for (const auto mod : kAll) {
    const auto bits = random_bits(1200, 3);
    const auto symbols = qam_modulate(bits, mod);
    const auto decoded = qam_demodulate(symbols, mod);
    ASSERT_GE(decoded.size(), bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
      EXPECT_EQ(decoded[i], bits[i]) << to_string(mod) << " bit " << i;
    }
  }
}

TEST(Qam, GrayNeighborsDifferInOneBit) {
  // Walk adjacent I-levels of 16-QAM: Gray coding means one bit flip.
  const auto mod = phy::Modulation::kQam16;
  std::vector<std::uint8_t> prev_bits;
  const double norm = 1.0 / std::sqrt(10.0);
  for (double level = -3.0; level <= 3.0; level += 2.0) {
    std::vector<std::uint8_t> bits(4);
    qam_demap_symbol(Cx(level * norm, 3.0 * norm), mod, bits);
    if (!prev_bits.empty()) {
      int diff = 0;
      for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i] != prev_bits[i]) ++diff;
      }
      EXPECT_EQ(diff, 1) << "level " << level;
    }
    prev_bits = bits;
  }
}

TEST(Qam, HardDecisionNearestNeighbor) {
  // A small perturbation decodes to the original point.
  util::Rng rng(4);
  for (const auto mod : kAll) {
    const auto bits = random_bits(600, 5);
    auto symbols = qam_modulate(bits, mod);
    const double margin = mod == phy::Modulation::kQam64 ? 0.05 : 0.15;
    for (auto& s : symbols) {
      s += Cx(rng.uniform(-margin, margin), rng.uniform(-margin, margin));
    }
    const auto decoded = qam_demodulate(symbols, mod);
    for (std::size_t i = 0; i < bits.size(); ++i) {
      EXPECT_EQ(decoded[i], bits[i]) << to_string(mod);
    }
  }
}

TEST(Qam, PadsPartialSymbols) {
  const std::vector<std::uint8_t> bits = {1, 0, 1};  // 3 bits into 64-QAM
  const auto symbols = qam_modulate(bits, phy::Modulation::kQam64);
  EXPECT_EQ(symbols.size(), 1u);
  const auto decoded = qam_demodulate(symbols, phy::Modulation::kQam64);
  EXPECT_EQ(decoded.size(), 6u);
  EXPECT_EQ(decoded[0], 1);
  EXPECT_EQ(decoded[1], 0);
  EXPECT_EQ(decoded[2], 1);
}

TEST(Qam, MapValidatesBitCount) {
  const std::vector<std::uint8_t> three(3, 0);
  EXPECT_THROW(qam_map_symbol(three, phy::Modulation::kQam16),
               std::invalid_argument);
  std::vector<std::uint8_t> out(3);
  EXPECT_THROW(qam_demap_symbol(Cx{}, phy::Modulation::kQam16, out),
               std::invalid_argument);
}

TEST(Qam, QpskMatchesLegacyMapper) {
  // The dedicated QPSK mapper and the generic QAM mapper agree up to the
  // same Gray convention: both produce unit-energy points on (+-1,+-1)/sqrt(2).
  const auto bits = random_bits(100, 6);
  const auto symbols = qam_modulate(bits, phy::Modulation::kQpsk);
  for (const Cx s : symbols) {
    EXPECT_NEAR(std::abs(s.real()), 1.0 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(s.imag()), 1.0 / std::sqrt(2.0), 1e-12);
  }
}

TEST(QamSoft, SignsAgreeWithHardDecisions) {
  util::Rng rng(7);
  for (const auto mod : kAll) {
    const auto bits = random_bits(240, 8);
    auto symbols = qam_modulate(bits, mod);
    for (auto& s : symbols) {
      s += Cx(rng.normal(0.0, 0.05), rng.normal(0.0, 0.05));
    }
    const std::vector<double> vars(symbols.size(), 0.05 * 0.05 * 2.0);
    const auto llrs = qam_soft_demodulate(symbols, mod, vars);
    const auto hard = qam_demodulate(symbols, mod);
    ASSERT_EQ(llrs.size(), hard.size());
    for (std::size_t i = 0; i < hard.size(); ++i) {
      // Positive LLR = bit 0; sign must agree with the hard slicer.
      EXPECT_EQ(hard[i], llrs[i] < 0.0 ? 1 : 0) << to_string(mod) << i;
    }
  }
}

TEST(QamSoft, ConfidenceScalesWithNoiseVariance) {
  const std::vector<Cx> one = {qam_map_symbol(
      std::vector<std::uint8_t>{0, 0}, phy::Modulation::kQpsk)};
  const std::vector<double> quiet = {0.01};
  const std::vector<double> loud = {1.0};
  const auto llr_quiet =
      qam_soft_demodulate(one, phy::Modulation::kQpsk, quiet);
  const auto llr_loud =
      qam_soft_demodulate(one, phy::Modulation::kQpsk, loud);
  EXPECT_GT(llr_quiet[0], llr_loud[0]);
  EXPECT_GT(llr_loud[0], 0.0);
}

TEST(QamSoft, ValidatesVarianceCount) {
  const std::vector<Cx> two(2);
  const std::vector<double> one_var = {0.1};
  EXPECT_THROW(
      qam_soft_demodulate(two, phy::Modulation::kQpsk, one_var),
      std::invalid_argument);
}

}  // namespace
}  // namespace acorn::baseband
