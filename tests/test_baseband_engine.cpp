// Determinism and allocation contracts of the parallel packet engine:
//
//  - run_bermac / run_phy_chain are bit-identical at any thread count
//    (each packet derives its own RNG stream; reduction is in packet
//    order), including the constellation capture path.
//  - The steady-state packet loop is allocation-free: the allocation
//    count of a sweep does not grow with the packet count (workspaces
//    are sized once per worker, never per packet).
#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "baseband/bermac.hpp"
#include "baseband/engine.hpp"
#include "baseband/phy_chain.hpp"
#include "util/rng.hpp"

// Global allocation counter for the zero-allocation tests. Overriding
// operator new here affects this test binary only.
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace acorn;

baseband::BermacConfig bermac_config(bool stbc, phy::ChannelWidth width,
                                     int capture) {
  baseband::BermacConfig cfg;
  cfg.width = width;
  cfg.packet_bytes = 120;
  cfg.packets = 9;
  cfg.use_stbc = stbc;
  cfg.rayleigh = true;
  cfg.num_taps = 3;
  cfg.path_loss_db = 88.0;
  cfg.tx_dbm = 4.0;
  cfg.capture_symbols = capture;
  return cfg;
}

baseband::BermacResult run_with_threads(baseband::BermacConfig cfg,
                                        int threads, std::uint64_t seed) {
  cfg.num_threads = threads;
  util::Rng rng(seed);
  return run_bermac(cfg, rng);
}

void expect_identical(const baseband::BermacResult& a,
                      const baseband::BermacResult& b) {
  EXPECT_EQ(a.bits_sent, b.bits_sent);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packet_errors, b.packet_errors);
  // Bit-identical means the doubles match exactly, not approximately:
  // the same packets were produced from the same streams and reduced in
  // the same order.
  EXPECT_EQ(a.mean_snr_db, b.mean_snr_db);
  EXPECT_EQ(a.evm_rms, b.evm_rms);
  ASSERT_EQ(a.constellation.size(), b.constellation.size());
  for (std::size_t i = 0; i < a.constellation.size(); ++i) {
    EXPECT_EQ(a.constellation[i], b.constellation[i]) << "symbol " << i;
  }
}

TEST(EngineDeterminism, BermacSisoMatchesSerialAtAnyThreadCount) {
  for (const auto width :
       {phy::ChannelWidth::k20MHz, phy::ChannelWidth::k40MHz}) {
    const auto cfg = bermac_config(/*stbc=*/false, width, /*capture=*/0);
    const auto serial = run_with_threads(cfg, 1, 0x11u);
    expect_identical(serial, run_with_threads(cfg, 2, 0x11u));
    expect_identical(serial, run_with_threads(cfg, 5, 0x11u));
  }
}

TEST(EngineDeterminism, BermacStbcMatchesSerialAtAnyThreadCount) {
  const auto cfg = bermac_config(/*stbc=*/true, phy::ChannelWidth::k20MHz,
                                 /*capture=*/0);
  const auto serial = run_with_threads(cfg, 1, 0x22u);
  expect_identical(serial, run_with_threads(cfg, 2, 0x22u));
  expect_identical(serial, run_with_threads(cfg, 5, 0x22u));
}

TEST(EngineDeterminism, ConstellationCaptureMatchesSerial) {
  // Capture spans several packets, so this checks the per-packet slice
  // arithmetic as well as the RNG streams.
  for (const bool stbc : {false, true}) {
    auto cfg = bermac_config(stbc, phy::ChannelWidth::k20MHz,
                             /*capture=*/1200);
    const auto serial = run_with_threads(cfg, 1, 0x33u);
    EXPECT_EQ(serial.constellation.size(), 1200u);
    expect_identical(serial, run_with_threads(cfg, 3, 0x33u));
  }
}

TEST(EngineDeterminism, CaptureLargerThanRunIsClamped) {
  auto cfg = bermac_config(/*stbc=*/false, phy::ChannelWidth::k20MHz,
                           /*capture=*/1 << 28);
  const auto serial = run_with_threads(cfg, 1, 0x44u);
  const std::size_t syms_per_packet =
      (static_cast<std::size_t>(cfg.packet_bytes) * 8 + 1) / 2;
  EXPECT_EQ(serial.constellation.size(),
            syms_per_packet * static_cast<std::size_t>(cfg.packets));
  expect_identical(serial, run_with_threads(cfg, 4, 0x44u));
}

baseband::PhyChainResult run_chain_with_threads(baseband::PhyChainConfig cfg,
                                                int threads, int packets,
                                                std::uint64_t seed) {
  cfg.num_threads = threads;
  util::Rng rng(seed);
  return run_phy_chain(cfg, packets, rng);
}

void expect_identical(const baseband::PhyChainResult& a,
                      const baseband::PhyChainResult& b) {
  EXPECT_EQ(a.bits_sent, b.bits_sent);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packet_errors, b.packet_errors);
  EXPECT_EQ(a.mean_snr_db, b.mean_snr_db);
}

TEST(EngineDeterminism, PhyChainMatchesSerialAtAnyThreadCount) {
  for (const int mcs : {0, 7}) {
    for (const bool soft : {false, true}) {
      baseband::PhyChainConfig cfg;
      cfg.mcs_index = mcs;
      cfg.packet_bytes = 60;
      cfg.path_loss_db = 92.0;
      cfg.soft_decision = soft;
      const auto serial = run_chain_with_threads(cfg, 1, 7, 0x55u);
      expect_identical(serial, run_chain_with_threads(cfg, 2, 7, 0x55u));
      expect_identical(serial, run_chain_with_threads(cfg, 5, 7, 0x55u));
    }
  }
}

TEST(EngineDeterminism, ResultDependsOnCallerRngState) {
  // The engine consumes exactly one draw from the caller's generator, so
  // different caller states must give different sweeps.
  const auto cfg = bermac_config(/*stbc=*/false, phy::ChannelWidth::k20MHz,
                                 /*capture=*/64);
  const auto a = run_with_threads(cfg, 1, 0x66u);
  const auto b = run_with_threads(cfg, 1, 0x67u);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.constellation.size(); ++i) {
    if (a.constellation[i] != b.constellation[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

std::size_t bermac_alloc_count(int packets) {
  auto cfg = bermac_config(/*stbc=*/false, phy::ChannelWidth::k20MHz,
                           /*capture=*/0);
  cfg.packets = packets;
  cfg.num_threads = 1;
  util::Rng rng(0x77u);
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  const auto result = run_bermac(cfg, rng);
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_GT(result.bits_sent, 0);
  return after - before;
}

TEST(EngineAllocation, BermacSteadyStateIsAllocationFree) {
  // Warm up the FFT plan cache and any lazy statics, then require that a
  // 6x longer sweep performs exactly as many allocations as a short one:
  // setup allocates (workspaces, the stats vector), per-packet work must
  // not.
  (void)bermac_alloc_count(2);
  const std::size_t short_run = bermac_alloc_count(2);
  const std::size_t long_run = bermac_alloc_count(12);
  EXPECT_EQ(short_run, long_run);
}

std::size_t chain_alloc_count(int packets, bool soft) {
  baseband::PhyChainConfig cfg;
  cfg.mcs_index = 3;
  cfg.packet_bytes = 60;
  cfg.path_loss_db = 90.0;
  cfg.soft_decision = soft;
  cfg.num_threads = 1;
  util::Rng rng(0x88u);
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  const auto result = run_phy_chain(cfg, packets, rng);
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_GT(result.bits_sent, 0);
  return after - before;
}

TEST(EngineAllocation, PhyChainSteadyStateIsAllocationFree) {
  for (const bool soft : {false, true}) {
    (void)chain_alloc_count(2, soft);
    const std::size_t short_run = chain_alloc_count(2, soft);
    const std::size_t long_run = chain_alloc_count(12, soft);
    EXPECT_EQ(short_run, long_run) << (soft ? "soft" : "hard");
  }
}

TEST(EngineThreads, ResolveNumThreads) {
  EXPECT_EQ(baseband::resolve_num_threads(1), 1);
  EXPECT_EQ(baseband::resolve_num_threads(4), 4);
  EXPECT_GE(baseband::resolve_num_threads(0), 1);
  EXPECT_GE(baseband::resolve_num_threads(-3), 1);
}

}  // namespace
