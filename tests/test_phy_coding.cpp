#include "phy/coding.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace acorn::phy {
namespace {

TEST(CodeRate, NumericValues) {
  EXPECT_DOUBLE_EQ(code_rate_value(CodeRate::kRate12), 0.5);
  EXPECT_DOUBLE_EQ(code_rate_value(CodeRate::kRate23), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(code_rate_value(CodeRate::kRate34), 0.75);
  EXPECT_DOUBLE_EQ(code_rate_value(CodeRate::kRate56), 5.0 / 6.0);
}

TEST(CodeRate, Names) {
  EXPECT_EQ(to_string(CodeRate::kRate12), "1/2");
  EXPECT_EQ(to_string(CodeRate::kRate56), "5/6");
}

TEST(CodeRate, FreeDistancesDecreaseWithPuncturing) {
  EXPECT_EQ(free_distance(CodeRate::kRate12), 10);
  EXPECT_EQ(free_distance(CodeRate::kRate23), 6);
  EXPECT_EQ(free_distance(CodeRate::kRate34), 5);
  EXPECT_EQ(free_distance(CodeRate::kRate56), 4);
}

TEST(CodedBer, ZeroChannelErrorsGiveZero) {
  for (const CodeRate r : {CodeRate::kRate12, CodeRate::kRate23,
                           CodeRate::kRate34, CodeRate::kRate56}) {
    EXPECT_EQ(coded_ber(r, 0.0), 0.0);
  }
}

TEST(CodedBer, SaturatesAtHalf) {
  EXPECT_DOUBLE_EQ(coded_ber(CodeRate::kRate12, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(coded_ber(CodeRate::kRate34, 0.49), 0.5);
}

TEST(CodedBer, RejectsOutOfRangeInput) {
  EXPECT_THROW(coded_ber(CodeRate::kRate12, -0.01), std::invalid_argument);
  EXPECT_THROW(coded_ber(CodeRate::kRate12, 1.01), std::invalid_argument);
}

TEST(CodedBer, CodingGainAtLowChannelBer) {
  // At p = 1e-3 the rate-1/2 K=7 code must be far below the channel BER.
  const double out = coded_ber(CodeRate::kRate12, 1e-3);
  EXPECT_LT(out, 1e-8);
}

TEST(CodedBer, StrongerCodeIsBetterAtSameChannelBer) {
  for (double p : {1e-4, 1e-3, 1e-2}) {
    const double r12 = coded_ber(CodeRate::kRate12, p);
    const double r23 = coded_ber(CodeRate::kRate23, p);
    const double r34 = coded_ber(CodeRate::kRate34, p);
    const double r56 = coded_ber(CodeRate::kRate56, p);
    EXPECT_LE(r12, r23) << "p=" << p;
    EXPECT_LE(r23, r34) << "p=" << p;
    EXPECT_LE(r34, r56) << "p=" << p;
  }
}

TEST(CodedBer, MonotoneInChannelBer) {
  for (const CodeRate r : {CodeRate::kRate12, CodeRate::kRate23,
                           CodeRate::kRate34, CodeRate::kRate56}) {
    double prev = 0.0;
    for (double p = 0.0; p <= 0.2; p += 0.002) {
      const double out = coded_ber(r, p);
      EXPECT_GE(out, prev - 1e-15) << to_string(r) << " at p=" << p;
      prev = out;
    }
  }
}

TEST(PacketErrorRate, ZeroBerGivesZeroPer) {
  EXPECT_EQ(packet_error_rate(0.0, 12000), 0.0);
}

TEST(PacketErrorRate, CertainBerGivesCertainLoss) {
  EXPECT_EQ(packet_error_rate(0.5, 12000), 1.0);
}

TEST(PacketErrorRate, MatchesClosedForm) {
  const double ber = 1e-4;
  const int bits = 1000;
  EXPECT_NEAR(packet_error_rate(ber, bits),
              1.0 - std::pow(1.0 - ber, bits), 1e-12);
}

TEST(PacketErrorRate, StableForTinyBer) {
  // 1 - (1-1e-15)^12000 ~ 1.2e-11; naive pow would lose precision.
  const double per = packet_error_rate(1e-15, 12000);
  EXPECT_NEAR(per, 12000e-15, 1e-16);
}

TEST(PacketErrorRate, LongerPacketsFailMoreOften) {
  const double short_per = packet_error_rate(1e-5, 800);
  const double long_per = packet_error_rate(1e-5, 12000);
  EXPECT_LT(short_per, long_per);
}

TEST(PacketErrorRate, RejectsNonPositiveLength) {
  EXPECT_THROW(packet_error_rate(0.1, 0), std::invalid_argument);
  EXPECT_THROW(packet_error_rate(0.1, -5), std::invalid_argument);
}

// Parameterized waterfall check: each rate's coded BER crosses 1e-5
// somewhere in a sane channel-BER range, and more puncturing needs a
// cleaner channel.
class CodingWaterfall : public ::testing::TestWithParam<CodeRate> {};

TEST_P(CodingWaterfall, CrossesTargetInSaneRange) {
  double crossing = -1.0;
  for (double p = 1e-4; p <= 0.2; p *= 1.05) {
    if (coded_ber(GetParam(), p) > 1e-5) {
      crossing = p;
      break;
    }
  }
  ASSERT_GT(crossing, 0.0);
  EXPECT_GT(crossing, 1e-4);
  EXPECT_LT(crossing, 0.1);
}

INSTANTIATE_TEST_SUITE_P(AllRates, CodingWaterfall,
                         ::testing::Values(CodeRate::kRate12,
                                           CodeRate::kRate23,
                                           CodeRate::kRate34,
                                           CodeRate::kRate56));

}  // namespace
}  // namespace acorn::phy
