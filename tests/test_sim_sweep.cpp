// The sweep-driver determinism contract: sim::sweep_scenarios must
// return bit-identical results for any thread count (1 vs 2 vs 5),
// because every scenario derives its RNG stream purely from (seed,
// index) and writes only its own slot. Exercised on full
// evaluate/allocate scenarios, including the sinr_interference model,
// and run under TSan by the tsan preset.
#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "baselines/simple.hpp"
#include "core/allocation.hpp"
#include "sim/wlan.hpp"

namespace acorn::sim {
namespace {

// One full scenario: a random deployment, an RSS association and a
// random channel assignment, scored by the flat evaluator.
double evaluate_scenario(util::Rng& rng, bool sinr) {
  const int n_aps = static_cast<int>(rng.uniform_int(2, 5));
  const int n_clients = static_cast<int>(rng.uniform_int(2, 10));
  net::Topology topo = net::Topology::random(n_aps, n_clients, 120.0, rng);
  net::PathLossModel plm;
  plm.shadowing_sigma_db = 4.0;
  net::LinkBudget budget(topo, plm, rng);
  WlanConfig config;
  config.sinr_interference = sinr;
  const Wlan wlan(std::move(topo), std::move(budget), config);
  const net::Association assoc = baselines::rss_associate_all(wlan);
  const core::ChannelAllocator alloc{net::ChannelPlan(6)};
  const net::ChannelAssignment f = alloc.random_assignment(n_aps, rng);
  return wlan.evaluate(assoc, f).total_goodput_bps;
}

std::vector<double> run_sweep(std::size_t n, std::uint64_t seed,
                              int threads, bool sinr) {
  SweepOptions options;
  options.seed = seed;
  options.num_threads = threads;
  return sweep_scenarios(n, options, [sinr](util::Rng& rng, std::size_t) {
    return evaluate_scenario(rng, sinr);
  });
}

TEST(SweepScenarios, BitIdenticalAcrossThreadCounts) {
  for (const bool sinr : {false, true}) {
    const std::vector<double> serial = run_sweep(16, 0x53ED, 1, sinr);
    ASSERT_EQ(serial.size(), 16u);
    for (const int threads : {2, 5}) {
      const std::vector<double> parallel =
          run_sweep(16, 0x53ED, threads, sinr);
      ASSERT_EQ(parallel.size(), serial.size());
      for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i], serial[i])
            << "scenario " << i << " threads " << threads
            << " sinr " << sinr;
      }
    }
  }
}

TEST(SweepScenarios, AllocationScenariosAreDeterministicToo) {
  // The heavier workload class: each scenario runs Algorithm 2 end to
  // end (cached oracle, candidate scan) on its own deployment.
  const auto body = [](util::Rng& rng, std::size_t) {
    const int n_aps = 3;
    net::Topology topo = net::Topology::random(n_aps, 6, 100.0, rng);
    net::PathLossModel plm;
    plm.shadowing_sigma_db = 4.0;
    net::LinkBudget budget(topo, plm, rng);
    const Wlan wlan(std::move(topo), std::move(budget), WlanConfig{});
    const net::Association assoc = baselines::rss_associate_all(wlan);
    const core::ChannelAllocator alloc{net::ChannelPlan(6)};
    const core::AllocationResult r = alloc.allocate(
        wlan, assoc, alloc.random_assignment(n_aps, rng));
    return r.final_bps;
  };
  SweepOptions serial_opts;
  serial_opts.seed = 0xA110C;
  serial_opts.num_threads = 1;
  const std::vector<double> serial = sweep_scenarios(6, serial_opts, body);
  SweepOptions parallel_opts = serial_opts;
  parallel_opts.num_threads = 5;
  const std::vector<double> parallel =
      sweep_scenarios(6, parallel_opts, body);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "scenario " << i;
  }
}

TEST(SweepScenarios, IndependentOfScenarioCountPrefix) {
  // derive_stream(seed, i) depends only on (seed, i): the first k results
  // of a longer sweep equal the k-scenario sweep exactly.
  const std::vector<double> longer = run_sweep(12, 0xBEE, 2, false);
  const std::vector<double> shorter = run_sweep(7, 0xBEE, 3, false);
  for (std::size_t i = 0; i < shorter.size(); ++i) {
    EXPECT_EQ(shorter[i], longer[i]);
  }
}

TEST(SweepScenarios, PropagatesScenarioExceptions) {
  for (const int threads : {1, 4}) {
    SweepOptions options;
    options.seed = 1;
    options.num_threads = threads;
    EXPECT_THROW(
        sweep_scenarios(8, options,
                        [](util::Rng&, std::size_t i) -> int {
                          if (i == 3) throw std::runtime_error("boom");
                          return 0;
                        }),
        std::runtime_error)
        << "threads " << threads;
  }
}

TEST(SweepScenarios, EmptySweepAndThreadResolution) {
  SweepOptions options;
  options.num_threads = 0;  // hardware concurrency
  const std::vector<double> none = sweep_scenarios(
      0, options, [](util::Rng&, std::size_t) { return 1.0; });
  EXPECT_TRUE(none.empty());
  EXPECT_GE(resolve_sweep_threads(0), 1);
  EXPECT_EQ(resolve_sweep_threads(3), 3);
}

}  // namespace
}  // namespace acorn::sim
