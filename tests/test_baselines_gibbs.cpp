#include "baselines/gibbs.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "core/oracle_cache.hpp"
#include "testutil.hpp"

namespace acorn::baselines {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

TEST(Gibbs, ValidatesConfig) {
  GibbsConfig bad;
  bad.sweeps = 0;
  EXPECT_THROW(GibbsAllocator(net::ChannelPlan(4), bad),
               std::invalid_argument);
  bad = GibbsConfig{};
  bad.cooling = 1.5;
  EXPECT_THROW(GibbsAllocator(net::ChannelPlan(4), bad),
               std::invalid_argument);
}

TEST(Gibbs, BondsOnlyUsesBonds) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const GibbsAllocator gibbs{net::ChannelPlan(12)};
  util::Rng rng(1);
  const net::ChannelAssignment a = gibbs.allocate(wlan, rng);
  ASSERT_EQ(a.size(), 2u);
  for (const net::Channel& c : a) EXPECT_TRUE(c.is_bonded());
}

TEST(Gibbs, FullColorSetCanUseBasics) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  GibbsConfig cfg;
  cfg.bonds_only = false;
  const GibbsAllocator gibbs{net::ChannelPlan(2), cfg};
  // With 2 basic channels + 1 bond, repeated runs must occasionally pick
  // a basic color.
  util::Rng rng(2);
  bool saw_basic = false;
  for (int trial = 0; trial < 20 && !saw_basic; ++trial) {
    for (const net::Channel& c : gibbs.allocate(wlan, rng)) {
      if (!c.is_bonded()) saw_basic = true;
    }
  }
  EXPECT_TRUE(saw_basic);
}

TEST(Gibbs, EnergyCountsOverlapWeightedInterference) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}},
             CellSpec{{testutil::kGoodLinkLoss}}};
  b.ap_ap_loss_db = 85.0;
  const sim::Wlan wlan = b.build();
  const GibbsAllocator gibbs{net::ChannelPlan(12)};
  const net::ChannelAssignment assignment = {net::Channel::bonded(0),
                                             net::Channel::bonded(0)};
  const double co = gibbs.energy_mw(wlan, assignment, 0,
                                    net::Channel::bonded(0));
  const double clear = gibbs.energy_mw(wlan, assignment, 0,
                                       net::Channel::bonded(3));
  const double half = gibbs.energy_mw(wlan, assignment, 0,
                                      net::Channel::basic(0));
  EXPECT_GT(co, 0.0);
  EXPECT_EQ(clear, 0.0);
  EXPECT_GT(co, half);
  EXPECT_GT(half, 0.0);
}

TEST(Gibbs, CoolsIntoLowInterferenceStates) {
  // Two contending APs, plenty of bonds: the sampler should separate
  // them (interference energy 0) essentially always after cooling.
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}},
             CellSpec{{testutil::kGoodLinkLoss}}};
  b.ap_ap_loss_db = 85.0;
  const sim::Wlan wlan = b.build();
  const GibbsAllocator gibbs{net::ChannelPlan(12)};
  util::Rng rng(3);
  int separated = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const net::ChannelAssignment a = gibbs.allocate(wlan, rng);
    if (!a[0].conflicts(a[1])) ++separated;
  }
  EXPECT_GE(separated, 9);
}

TEST(Gibbs, DeterministicPerSeed) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const GibbsAllocator gibbs{net::ChannelPlan(12)};
  util::Rng r1(4);
  util::Rng r2(4);
  EXPECT_EQ(gibbs.allocate(wlan, r1), gibbs.allocate(wlan, r2));
}

TEST(Gibbs, AllocateBestNeverScoresBelowPlainAllocate) {
  // allocate_best consumes the same random stream as allocate, so the
  // final sweep's assignment is among the candidates it scored — the
  // returned assignment can only be at least as good under the oracle.
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}},
             CellSpec{{testutil::kMediumLinkLoss}},
             CellSpec{{testutil::kPoorLinkLoss}}};
  b.ap_ap_loss_db = 85.0;
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const core::ThroughputOracle oracle = core::make_cached_oracle(wlan);
  const GibbsAllocator gibbs{net::ChannelPlan(12)};
  for (std::uint64_t seed = 10; seed < 15; ++seed) {
    util::Rng r1(seed);
    util::Rng r2(seed);
    const net::ChannelAssignment plain = gibbs.allocate(wlan, r1);
    const net::ChannelAssignment best =
        gibbs.allocate_best(wlan, assoc, r2, oracle);
    EXPECT_GE(oracle(assoc, best), oracle(assoc, plain));
  }
}

TEST(Gibbs, AllocateBestRejectsNullOracle) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const GibbsAllocator gibbs{net::ChannelPlan(12)};
  util::Rng rng(5);
  EXPECT_THROW(
      gibbs.allocate_best(wlan, b.intended_association(), rng, {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace acorn::baselines
