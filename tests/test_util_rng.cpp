#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace acorn::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(42);
  Rng b(43);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(2, 5));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 2);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalScalesWithMeanAndStddev) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(19);
  const int n = 100001;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.lognormal(std::log(100.0), 0.5);
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 100.0, 3.0);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NormalFastMomentsMatch) {
  Rng rng(29);
  const int n = 400000;
  double sum = 0.0;
  double sq = 0.0;
  double cube = 0.0;
  double quart = 0.0;
  int tail = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal_fast();
    sum += x;
    sq += x * x;
    cube += x * x * x;
    quart += x * x * x * x;
    if (std::abs(x) > 3.442619855899) ++tail;  // past the ziggurat base
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.01);
  EXPECT_NEAR(cube / n, 0.0, 0.03);   // skewness
  EXPECT_NEAR(quart / n, 3.0, 0.06);  // kurtosis
  // Tail mass beyond r=3.4426 is 2*Q(r) ~ 5.77e-4: the tail sampler
  // must actually fire, and at roughly the right rate.
  EXPECT_GT(tail, 100);
  EXPECT_LT(tail, 500);
}

TEST(Rng, NormalFastIsDeterministic) {
  Rng a(31);
  Rng b(31);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.normal_fast(), b.normal_fast());
}

TEST(Rng, FillBitsIsFairAndMatchesWidth) {
  Rng rng(37);
  std::vector<std::uint8_t> bits(100003);  // not a multiple of 64
  rng.fill_bits(bits);
  std::size_t ones = 0;
  for (const std::uint8_t b : bits) {
    ASSERT_LE(b, 1u);
    ones += b;
  }
  EXPECT_NEAR(static_cast<double>(ones) / bits.size(), 0.5, 0.01);
}

TEST(Rng, JumpIsDeterministicAndDiverges) {
  Rng a(41);
  Rng b(41);
  a.jump();
  b.jump();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(41);
  Rng d(41);
  d.jump();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c.next_u64() == d.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DeriveStreamIsPureFunctionOfSeedAndIndex) {
  Rng a = Rng::derive_stream(99, 7);
  Rng b = Rng::derive_stream(99, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DeriveStreamIndicesAreIndependent) {
  // Adjacent indices must not share state words (a naive seed+index
  // SplitMix64 derivation would overlap in 3 of 4 words).
  Rng s0 = Rng::derive_stream(1234, 0);
  Rng s1 = Rng::derive_stream(1234, 1);
  Rng other = Rng::derive_stream(1235, 0);
  int same01 = 0;
  int same_seed = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t x = s0.next_u64();
    if (x == s1.next_u64()) ++same01;
    if (x == other.next_u64()) ++same_seed;
  }
  EXPECT_EQ(same01, 0);
  EXPECT_EQ(same_seed, 0);
  // Cross-correlation of uniforms from adjacent streams stays at noise
  // level.
  Rng u0 = Rng::derive_stream(77, 10);
  Rng u1 = Rng::derive_stream(77, 11);
  double corr = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    corr += (u0.uniform() - 0.5) * (u1.uniform() - 0.5);
  }
  EXPECT_NEAR(corr / n, 0.0, 0.005);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace acorn::util
