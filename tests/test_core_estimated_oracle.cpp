#include "core/estimated_oracle.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace acorn::core {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

TEST(MeasurementOracle, ValidatesMeasuredOnSize) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  EXPECT_THROW(make_measurement_oracle(wlan, {net::Channel::basic(0)}),
               std::invalid_argument);
}

TEST(MeasurementOracle, TracksExactEvaluatorOrdering) {
  // The estimator need not match absolute throughput, but it must rank
  // "poor cell on 20" above "poor cell on 40" like the truth does.
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const net::ChannelAssignment current = {net::Channel::bonded(0),
                                          net::Channel::bonded(1)};
  const ThroughputOracle oracle = make_measurement_oracle(wlan, current);
  const net::ChannelAssignment poor_on_20 = {net::Channel::basic(5),
                                             net::Channel::bonded(1)};
  EXPECT_GT(oracle(assoc, poor_on_20), oracle(assoc, current));
}

TEST(MeasurementOracle, EmptyCellsContributeNothing) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const net::Association none(4, net::kUnassociated);
  const net::ChannelAssignment ch = {net::Channel::basic(0),
                                     net::Channel::basic(1)};
  const ThroughputOracle oracle = make_measurement_oracle(wlan, ch);
  EXPECT_EQ(oracle(none, ch), 0.0);
}

TEST(MeasurementOracle, WithinBallparkOfExactEvaluator) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const net::ChannelAssignment ch = {net::Channel::basic(5),
                                     net::Channel::bonded(0)};
  const ThroughputOracle oracle = make_measurement_oracle(wlan, ch);
  const double estimated = oracle(assoc, ch);
  const double exact = wlan.evaluate(assoc, ch).total_goodput_bps;
  // Same width as measured: only the estimator's fading-margin
  // difference separates them. Coarse agreement is the requirement
  // (the paper: "only needs a coarse estimate").
  EXPECT_GT(estimated, 0.4 * exact);
  EXPECT_LT(estimated, 2.5 * exact);
}

TEST(MeasurementOracle, AllocatorReachesSameStructureAsGenie) {
  // Run Algorithm 2 with the measurement oracle and with the exact
  // evaluator: the structural outcome (which APs bond) must agree on the
  // canonical poor/good deployment.
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const net::ChannelAssignment start = {net::Channel::bonded(0),
                                        net::Channel::bonded(0)};
  const ChannelAllocator alloc{net::ChannelPlan(12)};
  const AllocationResult genie = alloc.allocate(wlan, assoc, start);
  const AllocationResult measured = alloc.allocate(
      wlan, assoc, start, make_measurement_oracle(wlan, start));
  EXPECT_EQ(measured.assignment[0].width(), genie.assignment[0].width());
  EXPECT_EQ(measured.assignment[1].width(), genie.assignment[1].width());
  // And the measured-oracle allocation scores well under the truth.
  const double truth_of_measured =
      wlan.evaluate(assoc, measured.assignment).total_goodput_bps;
  EXPECT_GT(truth_of_measured, 0.9 * genie.final_bps);
}

}  // namespace
}  // namespace acorn::core
