#include "mac/anomaly.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace acorn::mac {
namespace {

constexpr int kPayloadBits = 1500 * 8;

TEST(Anomaly, EmptyCellIsZero) {
  const MacTiming t;
  const CellThroughput out = anomaly_throughput(t, {}, 1.0, kPayloadBits);
  EXPECT_EQ(out.cell_bps, 0.0);
  EXPECT_EQ(out.per_client_bps, 0.0);
}

TEST(Anomaly, RejectsBadShare) {
  const MacTiming t;
  const std::vector<CellClient> clients = {{0, 65e6, 0.0}};
  EXPECT_THROW(anomaly_throughput(t, clients, 0.0, kPayloadBits),
               std::invalid_argument);
  EXPECT_THROW(anomaly_throughput(t, clients, 1.5, kPayloadBits),
               std::invalid_argument);
}

TEST(Anomaly, SingleClientGetsLinkGoodput) {
  const MacTiming t;
  const std::vector<CellClient> clients = {{0, 65e6, 0.0}};
  const CellThroughput out = anomaly_throughput(t, clients, 1.0, kPayloadBits);
  const double expected = 1.0 / per_bit_delay_s(t, 65e6, kPayloadBits, 0.0);
  EXPECT_NEAR(out.cell_bps, expected, 1.0);
  EXPECT_NEAR(out.per_client_bps, expected, 1.0);
}

TEST(Anomaly, EqualClientsSplitEvenly) {
  const MacTiming t;
  const std::vector<CellClient> clients = {{0, 65e6, 0.0}, {1, 65e6, 0.0}};
  const CellThroughput out = anomaly_throughput(t, clients, 1.0, kPayloadBits);
  const double single = 1.0 / per_bit_delay_s(t, 65e6, kPayloadBits, 0.0);
  EXPECT_NEAR(out.per_client_bps, single / 2.0, 1.0);
  EXPECT_NEAR(out.cell_bps, single, 1.0);
}

TEST(Anomaly, SlowClientDragsEveryoneDown) {
  // The Heusse et al. anomaly: one 6.5 Mbps client in a 65 Mbps cell
  // pulls the fast client far below its fair share.
  const MacTiming t;
  const std::vector<CellClient> fast_only = {{0, 65e6, 0.0}, {1, 65e6, 0.0}};
  const std::vector<CellClient> mixed = {{0, 65e6, 0.0}, {1, 6.5e6, 0.0}};
  const CellThroughput fast = anomaly_throughput(t, fast_only, 1.0,
                                                 kPayloadBits);
  const CellThroughput slow = anomaly_throughput(t, mixed, 1.0, kPayloadBits);
  EXPECT_LT(slow.per_client_bps, 0.4 * fast.per_client_bps);
  // Both clients in the mixed cell get the *same* throughput.
  EXPECT_NEAR(slow.per_client_bps * 2.0, slow.cell_bps, 1.0);
}

TEST(Anomaly, CellThroughputNearHarmonicMean) {
  const MacTiming t;
  const std::vector<CellClient> mixed = {{0, 65e6, 0.0}, {1, 13e6, 0.0}};
  const CellThroughput out = anomaly_throughput(t, mixed, 1.0, kPayloadBits);
  // ATD = d1 + d2; cell = 2/ATD, which is the harmonic-mean structure.
  const double d1 = per_bit_delay_s(t, 65e6, kPayloadBits, 0.0);
  const double d2 = per_bit_delay_s(t, 13e6, kPayloadBits, 0.0);
  EXPECT_NEAR(out.cell_bps, 2.0 / (d1 + d2), 1.0);
}

TEST(Anomaly, MediumShareScalesLinearly) {
  const MacTiming t;
  const std::vector<CellClient> clients = {{0, 65e6, 0.0}, {1, 26e6, 0.1}};
  const CellThroughput full = anomaly_throughput(t, clients, 1.0,
                                                 kPayloadBits);
  const CellThroughput half = anomaly_throughput(t, clients, 0.5,
                                                 kPayloadBits);
  EXPECT_NEAR(half.cell_bps, full.cell_bps / 2.0, 1.0);
}

TEST(Anomaly, PerClientDelaysExposedInBeaconOrder) {
  const MacTiming t;
  const std::vector<CellClient> clients = {{7, 65e6, 0.0}, {9, 13e6, 0.2}};
  const CellThroughput out = anomaly_throughput(t, clients, 1.0,
                                                kPayloadBits);
  ASSERT_EQ(out.client_delay_s_per_bit.size(), 2u);
  EXPECT_LT(out.client_delay_s_per_bit[0], out.client_delay_s_per_bit[1]);
  EXPECT_NEAR(out.atd_s_per_bit,
              out.client_delay_s_per_bit[0] + out.client_delay_s_per_bit[1],
              1e-15);
}

TEST(Anomaly, LossyClientCountsLikeSlowClient) {
  const MacTiming t;
  // 50% PER at 65 Mbps ~ equivalent delay to a clean ~32.5 Mbps link
  // (modulo constant overhead).
  const std::vector<CellClient> lossy = {{0, 65e6, 0.5}};
  const std::vector<CellClient> slow = {{0, 32.5e6, 0.0}};
  const double d_lossy =
      anomaly_throughput(t, lossy, 1.0, kPayloadBits).atd_s_per_bit;
  const double d_slow =
      anomaly_throughput(t, slow, 1.0, kPayloadBits).atd_s_per_bit;
  EXPECT_NEAR(d_lossy / d_slow, 1.0, 0.35);
}

TEST(Anomaly, ManyClientsScaleAtd) {
  const MacTiming t;
  std::vector<CellClient> clients;
  for (int i = 0; i < 10; ++i) clients.push_back({i, 65e6, 0.0});
  const CellThroughput out = anomaly_throughput(t, clients, 1.0,
                                                kPayloadBits);
  const double single = per_bit_delay_s(t, 65e6, kPayloadBits, 0.0);
  EXPECT_NEAR(out.atd_s_per_bit, 10.0 * single, 1e-12);
  EXPECT_NEAR(out.per_client_bps, 0.1 / single, 1.0);
}

}  // namespace
}  // namespace acorn::mac
