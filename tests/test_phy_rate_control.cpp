#include "phy/rate_control.hpp"

#include <gtest/gtest.h>

namespace acorn::phy {
namespace {

TEST(RateControl, PicksTopMcsOnPerfectLink) {
  const LinkModel link;
  const RateDecision d = best_rate(link, ChannelWidth::k20MHz, 45.0);
  EXPECT_EQ(d.mcs_index, 15);
  EXPECT_EQ(d.mode, MimoMode::kSdm);
  EXPECT_LT(d.per, 1e-6);
}

TEST(RateControl, FallsBackToStbcOnWeakLink) {
  const LinkModel link;
  const RateDecision d = best_rate(link, ChannelWidth::k20MHz, 6.0);
  EXPECT_EQ(d.mode, MimoMode::kStbc);
  EXPECT_LE(d.mcs_index, 2);
}

TEST(RateControl, GoodputNeverNegative) {
  const LinkModel link;
  for (double snr = -20.0; snr <= 50.0; snr += 2.5) {
    const RateDecision d = best_rate(link, ChannelWidth::k40MHz, snr);
    EXPECT_GE(d.goodput_bps, 0.0);
  }
}

TEST(RateControl, GoodputMonotoneInSnr) {
  const LinkModel link;
  for (const ChannelWidth w : {ChannelWidth::k20MHz, ChannelWidth::k40MHz}) {
    double prev = -1.0;
    for (double snr = -15.0; snr <= 45.0; snr += 1.0) {
      const double g = best_rate(link, w, snr).goodput_bps;
      EXPECT_GE(g, prev - 1e-6);
      prev = g;
    }
  }
}

TEST(RateControl, SelectedMcsNondecreasingInSnr) {
  const LinkModel link;
  int prev = 0;
  for (double snr = 0.0; snr <= 45.0; snr += 1.0) {
    const int idx = best_rate(link, ChannelWidth::k20MHz, snr).mcs_index;
    // Mode switches can step the index around 7 -> 8, but the goodput
    // ordering keeps the nominal rate nondecreasing.
    const double rate = mcs(idx).rate_bps(ChannelWidth::k20MHz,
                                          GuardInterval::kLong800ns);
    const double prev_rate = mcs(prev).rate_bps(ChannelWidth::k20MHz,
                                                GuardInterval::kLong800ns);
    EXPECT_GE(rate, prev_rate * 0.99) << "snr " << snr;
    prev = idx;
  }
}

TEST(RateControl, FortySelectsLessAggressiveMcsAtFixedTx) {
  // Paper Fig. 6(b): MCS*(40) <= MCS*(20) for the same link.
  const LinkModel link;
  for (double pl = 80.0; pl <= 108.0; pl += 2.0) {
    const WidthComparison cmp = compare_widths(link, 15.0, pl);
    const double rate20 = mcs(cmp.on20.mcs_index)
                              .rate_bps(ChannelWidth::k20MHz,
                                        GuardInterval::kLong800ns);
    const double rate40_as20 = mcs(cmp.on40.mcs_index)
                                   .rate_bps(ChannelWidth::k20MHz,
                                             GuardInterval::kLong800ns);
    EXPECT_LE(rate40_as20, rate20 + 1e-6) << "PL " << pl;
  }
}

TEST(RateControl, CbGainNeverExceedsNominalRateRatio) {
  // The CB gain is bounded by the nominal rate ratio 108/52 ~ 2.077,
  // reached only when both widths run error-free at MCS 15.
  const LinkModel link;
  for (double pl = 70.0; pl <= 112.0; pl += 1.0) {
    const WidthComparison cmp = compare_widths(link, 15.0, pl);
    if (cmp.on20.goodput_bps > 1e5) {
      EXPECT_LE(cmp.on40.goodput_bps,
                108.0 / 52.0 * cmp.on20.goodput_bps + 1e5)
          << "PL " << pl;
    }
  }
}

TEST(RateControl, CbGainBelowDoubleOffTheRateCeiling) {
  // Paper Fig. 6(a): away from the MCS-15 ceiling, the measured points
  // sit below y = 2x because the 40 MHz side runs at higher PER / lower
  // MCS for the same Tx.
  const LinkModel link;
  bool any_checked = false;
  for (double pl = 84.0; pl <= 108.0; pl += 1.0) {
    const WidthComparison cmp = compare_widths(link, 15.0, pl);
    if (cmp.on20.goodput_bps > 1e5 && cmp.on20.mcs_index < 15) {
      EXPECT_LE(cmp.on40.goodput_bps, 2.0 * cmp.on20.goodput_bps + 1e5)
          << "PL " << pl;
      any_checked = true;
    }
  }
  EXPECT_TRUE(any_checked);
}

TEST(RateControl, TwentyWinsOnPoorLinks) {
  // Paper §3.2: below ~6 dB SNR the 20 MHz channel gives more throughput.
  const LinkModel link;
  const WidthComparison cmp = compare_widths(link, 15.0, 110.0);
  EXPECT_FALSE(cmp.cb_wins());
  EXPECT_GT(cmp.on20.goodput_bps, 0.0);
}

TEST(RateControl, CbWinsOnStrongLinks) {
  const LinkModel link;
  const WidthComparison cmp = compare_widths(link, 15.0, 80.0);
  EXPECT_TRUE(cmp.cb_wins());
  EXPECT_GT(cmp.on40.goodput_bps, 1.5 * cmp.on20.goodput_bps);
}

TEST(RateControl, BestRateAtUsesLinkBudget) {
  const LinkModel link;
  const RateDecision via_at =
      best_rate_at(link, ChannelWidth::k20MHz, 15.0, 95.0);
  const RateDecision via_snr = best_rate(
      link, ChannelWidth::k20MHz, link.snr_db(15.0, 95.0,
                                              ChannelWidth::k20MHz));
  EXPECT_EQ(via_at.mcs_index, via_snr.mcs_index);
  EXPECT_DOUBLE_EQ(via_at.goodput_bps, via_snr.goodput_bps);
}

// Width-crossover property: scanning path loss from strong to weak, CB
// must win first and lose beyond some crossover, with no flapping back.
TEST(RateControl, SingleCrossoverInPathLoss) {
  const LinkModel link;
  bool seen_loss = false;
  for (double pl = 70.0; pl <= 118.0; pl += 0.5) {
    const WidthComparison cmp = compare_widths(link, 15.0, pl);
    const bool both_dead =
        cmp.on20.goodput_bps < 1e4 && cmp.on40.goodput_bps < 1e4;
    if (both_dead) break;
    if (!cmp.cb_wins()) seen_loss = true;
    if (seen_loss) {
      EXPECT_FALSE(cmp.cb_wins()) << "CB flapped back at PL " << pl;
    }
  }
  EXPECT_TRUE(seen_loss);
}

}  // namespace
}  // namespace acorn::phy
