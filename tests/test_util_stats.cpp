#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace acorn::util {
namespace {

TEST(Mean, EmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Mean, SimpleAverage) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Variance, FewerThanTwoSamplesIsZero) {
  const std::vector<double> one = {5.0};
  EXPECT_EQ(variance(one), 0.0);
}

TEST(Variance, KnownValue) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Population variance is 4; sample variance = 4 * 8 / 7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Stddev, IsSqrtOfVariance) {
  const std::vector<double> xs = {1.0, 3.0};
  EXPECT_NEAR(stddev(xs), std::sqrt(2.0), 1e-12);
}

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Percentile, EndpointsAreMinAndMax) {
  const std::vector<double> xs = {4.0, -1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), -1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 9.0);
}

TEST(Percentile, ThrowsOnEmptyOrBadP) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101.0), std::invalid_argument);
}

TEST(RSquared, PerfectFitIsOne) {
  const std::vector<double> obs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(obs, obs), 1.0);
}

TEST(RSquared, MeanPredictorIsZero) {
  const std::vector<double> obs = {1.0, 2.0, 3.0};
  const std::vector<double> pred = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r_squared(obs, pred), 0.0);
}

TEST(RSquared, ThrowsOnLengthMismatch) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_THROW(r_squared(a, b), std::invalid_argument);
}

TEST(RSquared, ConstantObservedHandled) {
  const std::vector<double> obs = {2.0, 2.0};
  const std::vector<double> same = {2.0, 2.0};
  const std::vector<double> off = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(obs, same), 1.0);
  EXPECT_DOUBLE_EQ(r_squared(obs, off), 0.0);
}

TEST(LinearFit, RecoversExactLine) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys = {1.0, 3.0, 5.0, 7.0};
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, ThrowsOnTooFewPoints) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(linear_fit(xs, xs), std::invalid_argument);
}

TEST(Ecdf, ThrowsOnEmpty) {
  EXPECT_THROW(Ecdf({}), std::invalid_argument);
}

TEST(Ecdf, StepFunctionValues) {
  const Ecdf ecdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ecdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.at(100.0), 1.0);
}

TEST(Ecdf, QuantileInverseOfAt) {
  const Ecdf ecdf({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 50.0);
}

TEST(Ecdf, QuantileRejectsOutOfRange) {
  const Ecdf ecdf({1.0});
  EXPECT_THROW(ecdf.quantile(0.0), std::invalid_argument);
  EXPECT_THROW(ecdf.quantile(1.5), std::invalid_argument);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinsAndClampsValues) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(-5.0);  // clamped to bin 0
  h.add(25.0);  // clamped to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(JainFairness, PerfectlyEqualIsOne) {
  const std::vector<double> xs = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_fairness(xs), 1.0);
}

TEST(JainFairness, SingleWinnerIsOneOverN) {
  const std::vector<double> xs = {10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(xs), 0.25);
}

TEST(JainFairness, KnownMixedValue) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  // (6)^2 / (3 * 14) = 36/42.
  EXPECT_NEAR(jain_fairness(xs), 36.0 / 42.0, 1e-12);
}

TEST(JainFairness, AllZeroIsTriviallyFair) {
  const std::vector<double> xs = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(xs), 1.0);
}

TEST(JainFairness, RejectsEmptyAndNegative) {
  EXPECT_THROW(jain_fairness({}), std::invalid_argument);
  const std::vector<double> neg = {1.0, -0.5};
  EXPECT_THROW(jain_fairness(neg), std::invalid_argument);
}

TEST(Histogram, BinCenters) {
  const Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

}  // namespace
}  // namespace acorn::util
