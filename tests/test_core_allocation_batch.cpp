// Bit-identity property suite for the batched candidate scan.
//
// The contract under test: CachedOracle::total_bps_batch and the
// batch-scanning ChannelAllocator::allocate overload produce EXACTLY the
// doubles the serial one-candidate-at-a-time path produces — same
// winner sequence, same trajectory, same final assignment — at any
// batch size, thread count, or kernel (SIMD vs scalar), across all four
// sinr_interference x weighted_contention model combos and on
// degenerate networks. Equality is ==, never near.
#include <gtest/gtest.h>

#include <vector>

#include "core/allocation.hpp"
#include "core/oracle_cache.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace acorn::core {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

// Random deployment spanning isolated, contending and hidden-interferer
// regimes (same shape as the oracle-cache suite, one AP larger).
ScenarioBuilder random_builder(util::Rng& rng, bool sinr, bool weighted) {
  ScenarioBuilder b;
  const int n_aps = static_cast<int>(rng.uniform_int(1, 6));
  for (int a = 0; a < n_aps; ++a) {
    CellSpec spec;
    const int n_clients = static_cast<int>(rng.uniform_int(0, 3));
    for (int c = 0; c < n_clients; ++c) {
      spec.client_losses_db.push_back(rng.uniform(78.0, 112.0));
    }
    b.cells.push_back(spec);
  }
  b.ap_ap_loss_db = rng.uniform(80.0, 140.0);
  b.cross_loss_db = rng.uniform(95.0, 140.0);
  b.config.sinr_interference = sinr;
  b.config.weighted_contention = weighted;
  return b;
}

net::Association random_association(const ScenarioBuilder& b,
                                    util::Rng& rng) {
  net::Association assoc = b.intended_association();
  const int n_aps = static_cast<int>(b.cells.size());
  for (int& owner : assoc) {
    const double roll = rng.uniform();
    if (roll < 0.15) {
      owner = net::kUnassociated;
    } else if (roll < 0.35) {
      owner = static_cast<int>(rng.uniform_int(0, n_aps - 1));
    }
  }
  return assoc;
}

void expect_identical(const AllocationResult& want,
                      const AllocationResult& got) {
  ASSERT_EQ(want.assignment.size(), got.assignment.size());
  for (std::size_t i = 0; i < want.assignment.size(); ++i) {
    EXPECT_EQ(want.assignment[i], got.assignment[i]);
  }
  EXPECT_EQ(want.evaluations, got.evaluations);
  EXPECT_EQ(want.switches, got.switches);
  ASSERT_EQ(want.trajectory_bps.size(), got.trajectory_bps.size());
  for (std::size_t i = 0; i < want.trajectory_bps.size(); ++i) {
    // Exact: the batched scan must commit the same winner at the same
    // throughput on every step.
    EXPECT_EQ(want.trajectory_bps[i], got.trajectory_bps[i]) << "step " << i;
  }
  EXPECT_EQ(want.final_bps, got.final_bps);
}

TEST(BatchScan, TotalBpsBatchBitIdenticalToSerialFlips) {
  util::Rng rng(0xBA7C4);
  const net::ChannelPlan plan(6);
  const std::vector<net::Channel> colors = plan.all_channels();
  int checked = 0;
  for (int trial = 0; trial < 24; ++trial) {
    const bool sinr = (trial % 2) == 1;
    const bool weighted = (trial / 2 % 2) == 1;
    const ScenarioBuilder b = random_builder(rng, sinr, weighted);
    const sim::Wlan wlan = b.build();
    const net::Association assoc = random_association(b, rng);
    const int n_aps = wlan.topology().num_aps();
    const ChannelAllocator alloc{plan};
    const net::ChannelAssignment base =
        alloc.random_assignment(n_aps, rng);

    // Every (AP, color) flip, including no-op flips to the current
    // channel (the batch path must special-case them to the base value).
    std::vector<FlipCandidate> flips;
    for (int ap = 0; ap < n_aps; ++ap) {
      for (const net::Channel& c : colors) {
        flips.push_back(FlipCandidate{ap, c});
      }
    }
    const CachedOracle oracle(wlan, assoc);
    std::vector<double> batched(flips.size(), -1.0);
    oracle.total_bps_batch(base, flips, batched);
    // Independent oracle for the scalar kernel so its values are really
    // computed scalar, not replayed from the SIMD run's cell memo.
    const CachedOracle oracle_scalar(wlan, assoc);
    std::vector<double> scalar(flips.size(), -1.0);
    oracle_scalar.total_bps_batch(base, flips, scalar,
                                  sim::BatchKernel::kScalar);

    // Independent oracle for the serial reference, so no state the batch
    // call may have created can leak into it.
    const CachedOracle ref(wlan, assoc);
    for (std::size_t j = 0; j < flips.size(); ++j) {
      net::ChannelAssignment flipped = base;
      flipped[static_cast<std::size_t>(flips[j].ap)] = flips[j].channel;
      const double want = ref.total_bps(flipped);
      EXPECT_EQ(want, batched[j])
          << "trial " << trial << " flip " << j << " (sinr=" << sinr
          << " weighted=" << weighted << ")";
      EXPECT_EQ(want, scalar[j]) << "scalar kernel, flip " << j;
      ++checked;
    }
    const OracleCacheStats stats = oracle.stats();
    EXPECT_EQ(stats.batch_calls, 1u);
    EXPECT_EQ(stats.batch_candidates, flips.size());
    EXPECT_EQ(oracle_scalar.stats().batch_calls, 1u);
  }
  // Make sure the loop actually exercised a meaningful corpus.
  EXPECT_GT(checked, 500);
}

TEST(BatchScan, AllocateIdenticalAcrossBatchSizesThreadsAndKernels) {
  util::Rng rng(0xA110C);
  const net::ChannelPlan plan(6);
  for (int trial = 0; trial < 12; ++trial) {
    const bool sinr = (trial % 2) == 1;
    const bool weighted = (trial / 2 % 2) == 1;
    const ScenarioBuilder b = random_builder(rng, sinr, weighted);
    const sim::Wlan wlan = b.build();
    const net::Association assoc = random_association(b, rng);
    const int n_aps = wlan.topology().num_aps();

    AllocationConfig serial_cfg;
    serial_cfg.batch_scan = false;
    serial_cfg.num_threads = 1;
    const ChannelAllocator serial_alloc{plan, serial_cfg};
    const net::ChannelAssignment initial =
        serial_alloc.random_assignment(n_aps, rng);
    const CachedOracle oracle(wlan, assoc);
    const AllocationResult want =
        serial_alloc.allocate(wlan, assoc, initial, oracle);

    struct Combo {
      int batch_size;
      int threads;
      sim::BatchKernel kernel;
    };
    const Combo combos[] = {
        {1, 1, sim::BatchKernel::kAuto},
        {7, 1, sim::BatchKernel::kAuto},
        {16, 1, sim::BatchKernel::kScalar},
        {64, 1, sim::BatchKernel::kAuto},
        {16, 2, sim::BatchKernel::kAuto},
        {7, 5, sim::BatchKernel::kScalar},
        {64, 5, sim::BatchKernel::kAuto},
    };
    for (const Combo& combo : combos) {
      AllocationConfig cfg;
      cfg.batch_scan = true;
      cfg.batch_size = combo.batch_size;
      cfg.num_threads = combo.threads;
      cfg.batch_kernel = combo.kernel;
      const ChannelAllocator batch_alloc{plan, cfg};
      const CachedOracle fresh(wlan, assoc);
      const AllocationResult got =
          batch_alloc.allocate(wlan, assoc, initial, fresh);
      expect_identical(want, got);
      // The batched scan must actually have engaged (unless the run had
      // nothing to scan, which random non-empty deployments never hit).
      if (want.evaluations > 1) {
        EXPECT_GT(fresh.stats().batch_calls, 0u);
      }
    }
  }
}

TEST(BatchScan, DefaultAllocatePathUsesBatchedScan) {
  // The no-oracle allocate() overload should route through a
  // CachedOracle and the batched scan by default — and still match the
  // uncached full-evaluate reference exactly.
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const ChannelAllocator alloc{net::ChannelPlan(8)};
  util::Rng rng(7);
  const net::ChannelAssignment initial = alloc.random_assignment(2, rng);
  const AllocationResult batched = alloc.allocate(wlan, assoc, initial);

  AllocationConfig uncached_cfg;
  uncached_cfg.cache_oracle = false;
  const ChannelAllocator uncached{net::ChannelPlan(8), uncached_cfg};
  const AllocationResult want = uncached.allocate(wlan, assoc, initial);
  expect_identical(want, batched);
}

TEST(BatchScan, DegenerateZeroGoodputNetworks) {
  // Nobody associated: total goodput is exactly 0 for every assignment;
  // the scan must terminate with zero switches, identically on both
  // paths. Then the same with clients present but links so poor every
  // cell pins to the PER cap (tiny but nonzero goodput).
  util::Rng rng(0xDE6E);
  const net::ChannelPlan plan(6);
  for (const double loss : {1e9, 190.0}) {
    ScenarioBuilder b;
    b.cells = {CellSpec{{loss}}, CellSpec{{loss, loss}}, CellSpec{{}}};
    b.config.sinr_interference = true;
    const sim::Wlan wlan = b.build();
    net::Association assoc = b.intended_association();
    if (loss == 1e9) {
      for (int& owner : assoc) owner = net::kUnassociated;
    }
    AllocationConfig serial_cfg;
    serial_cfg.batch_scan = false;
    const ChannelAllocator serial_alloc{plan, serial_cfg};
    const ChannelAllocator batch_alloc{plan};
    const net::ChannelAssignment initial =
        serial_alloc.random_assignment(3, rng);
    const CachedOracle o1(wlan, assoc);
    const CachedOracle o2(wlan, assoc);
    const AllocationResult want =
        serial_alloc.allocate(wlan, assoc, initial, o1);
    const AllocationResult got =
        batch_alloc.allocate(wlan, assoc, initial, o2);
    expect_identical(want, got);
  }
}

TEST(BatchScan, RejectsMismatchedInputs) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const CachedOracle oracle(wlan, assoc);
  const net::ChannelAssignment base = {net::Channel::basic(0),
                                       net::Channel::basic(1)};
  const std::vector<FlipCandidate> flips = {
      FlipCandidate{0, net::Channel::basic(2)}};
  std::vector<double> out(2, 0.0);
  EXPECT_THROW(oracle.total_bps_batch(base, flips, out),
               std::invalid_argument);
  out.resize(1);
  const std::vector<FlipCandidate> bad_ap = {
      FlipCandidate{9, net::Channel::basic(2)}};
  EXPECT_THROW(oracle.total_bps_batch(base, bad_ap, out),
               std::invalid_argument);

  // Oracle bound to a different association is rejected by allocate.
  net::Association other = assoc;
  for (int& owner : other) owner = net::kUnassociated;
  const CachedOracle mismatched(wlan, other);
  const ChannelAllocator alloc{net::ChannelPlan(4)};
  EXPECT_THROW(alloc.allocate(wlan, assoc, base, mismatched),
               std::invalid_argument);
}

}  // namespace
}  // namespace acorn::core
