#include "sim/mobility.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acorn::sim {
namespace {

TEST(Trajectory, RejectsDegenerateInput) {
  EXPECT_THROW(Trajectory({Waypoint{0.0, {0, 0}}}), std::invalid_argument);
  EXPECT_THROW(
      Trajectory({Waypoint{1.0, {0, 0}}, Waypoint{1.0, {1, 0}}}),
      std::invalid_argument);
  EXPECT_THROW(
      Trajectory({Waypoint{2.0, {0, 0}}, Waypoint{1.0, {1, 0}}}),
      std::invalid_argument);
}

TEST(Trajectory, InterpolatesLinearly) {
  const Trajectory t({Waypoint{0.0, {0, 0}}, Waypoint{10.0, {100, 50}}});
  const net::Point mid = t.position_at(5.0);
  EXPECT_DOUBLE_EQ(mid.x, 50.0);
  EXPECT_DOUBLE_EQ(mid.y, 25.0);
}

TEST(Trajectory, ClampsOutsideSpan) {
  const Trajectory t({Waypoint{1.0, {10, 0}}, Waypoint{2.0, {20, 0}}});
  EXPECT_DOUBLE_EQ(t.position_at(0.0).x, 10.0);
  EXPECT_DOUBLE_EQ(t.position_at(5.0).x, 20.0);
}

TEST(Trajectory, MultiSegmentPath) {
  const Trajectory t({Waypoint{0.0, {0, 0}}, Waypoint{1.0, {10, 0}},
                      Waypoint{3.0, {10, 20}}});
  EXPECT_DOUBLE_EQ(t.position_at(0.5).x, 5.0);
  EXPECT_DOUBLE_EQ(t.position_at(2.0).y, 10.0);
  EXPECT_DOUBLE_EQ(t.position_at(2.0).x, 10.0);
}

TEST(Trajectory, SpanAccessors) {
  const Trajectory t({Waypoint{2.0, {0, 0}}, Waypoint{7.0, {1, 1}}});
  EXPECT_DOUBLE_EQ(t.start_s(), 2.0);
  EXPECT_DOUBLE_EQ(t.end_s(), 7.0);
  EXPECT_DOUBLE_EQ(t.duration_s(), 5.0);
}

TEST(Trajectory, LineFactory) {
  const Trajectory t = Trajectory::line({0, 0}, {30, 40}, 10.0, 50.0);
  EXPECT_DOUBLE_EQ(t.start_s(), 10.0);
  EXPECT_DOUBLE_EQ(t.end_s(), 60.0);
  const net::Point mid = t.position_at(35.0);
  EXPECT_DOUBLE_EQ(mid.x, 15.0);
  EXPECT_DOUBLE_EQ(mid.y, 20.0);
}

TEST(Trajectory, LineRejectsNonPositiveDuration) {
  EXPECT_THROW(Trajectory::line({0, 0}, {1, 1}, 0.0, 0.0),
               std::invalid_argument);
}

TEST(Trajectory, WalkAwayIncreasesDistanceMonotonically) {
  const net::Point ap{0, 0};
  const Trajectory t = Trajectory::line({2, 0}, {60, 0}, 0.0, 50.0);
  double prev = 0.0;
  for (double s = 0.0; s <= 50.0; s += 5.0) {
    const double d = net::distance(ap, t.position_at(s));
    EXPECT_GE(d, prev);
    prev = d;
  }
}

}  // namespace
}  // namespace acorn::sim
