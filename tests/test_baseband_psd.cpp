#include "baseband/psd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "baseband/ofdm.hpp"
#include "baseband/qpsk.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace acorn::baseband {
namespace {

std::vector<Cx> tone(double freq_hz, double fs, std::size_t n,
                     double amplitude) {
  std::vector<Cx> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * M_PI * freq_hz * static_cast<double>(i) / fs;
    out[i] = amplitude * Cx(std::cos(phase), std::sin(phase));
  }
  return out;
}

TEST(WelchPsd, RejectsBadArguments) {
  const std::vector<Cx> samples(100);
  EXPECT_THROW(welch_psd(samples, 48, 20e6), std::invalid_argument);
  EXPECT_THROW(welch_psd(samples, 256, 20e6), std::invalid_argument);
}

TEST(WelchPsd, OutputShape) {
  const std::vector<Cx> samples(1024, Cx(1.0, 0.0));
  const PsdEstimate psd = welch_psd(samples, 256, 20e6);
  EXPECT_EQ(psd.freq_hz.size(), 256u);
  EXPECT_EQ(psd.psd_dbm_hz.size(), 256u);
}

TEST(WelchPsd, FrequencyAxisIsCenteredAndAscending) {
  const std::vector<Cx> samples(512, Cx(1.0, 0.0));
  const PsdEstimate psd = welch_psd(samples, 128, 20e6);
  EXPECT_LT(psd.freq_hz.front(), 0.0);
  EXPECT_GT(psd.freq_hz.back(), 0.0);
  for (std::size_t i = 1; i < psd.freq_hz.size(); ++i) {
    EXPECT_GT(psd.freq_hz[i], psd.freq_hz[i - 1]);
  }
  EXPECT_NEAR(psd.freq_hz.front(), -10e6, 1.0);
}

TEST(WelchPsd, ToneAppearsAtItsFrequency) {
  const double fs = 20e6;
  const double f0 = 2.5e6;
  const auto samples = tone(f0, fs, 4096, 1.0);
  const PsdEstimate psd = welch_psd(samples, 256, fs);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < psd.psd_dbm_hz.size(); ++k) {
    if (psd.psd_dbm_hz[k] > psd.psd_dbm_hz[peak]) peak = k;
  }
  EXPECT_NEAR(psd.freq_hz[peak], f0, fs / 256.0 + 1.0);
}

TEST(WelchPsd, PowerScalingTracksAmplitude) {
  const double fs = 20e6;
  const auto weak = tone(1e6, fs, 4096, 1.0);
  const auto strong = tone(1e6, fs, 4096, 2.0);
  const PsdEstimate p_weak = welch_psd(weak, 256, fs);
  const PsdEstimate p_strong = welch_psd(strong, 256, fs);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < p_weak.psd_dbm_hz.size(); ++k) {
    if (p_weak.psd_dbm_hz[k] > p_weak.psd_dbm_hz[peak]) peak = k;
  }
  // 2x amplitude = +6 dB.
  EXPECT_NEAR(p_strong.psd_dbm_hz[peak] - p_weak.psd_dbm_hz[peak], 6.0, 0.5);
}

std::vector<Cx> ofdm_waveform(phy::ChannelWidth width, double power_mw,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  const Ofdm ofdm(width);
  std::vector<std::uint8_t> bits(60000);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
  return ofdm.modulate(qpsk_modulate(bits), power_mw);
}

TEST(WelchPsd, Figure1ThreeDbPerSubcarrierDrop) {
  // The paper's Fig. 1: same total Tx power, the 40 MHz channel's
  // per-subcarrier (in-band) PSD sits ~3 dB below the 20 MHz channel's.
  const double p = util::dbm_to_mw(15.0);
  const auto tx20 = ofdm_waveform(phy::ChannelWidth::k20MHz, p, 11);
  const auto tx40 = ofdm_waveform(phy::ChannelWidth::k40MHz, p, 12);
  const PsdEstimate psd20 = welch_psd(tx20, 256, 20e6);
  const PsdEstimate psd40 = welch_psd(tx40, 256, 40e6);
  const double lvl20 = inband_level_dbm_hz(psd20, 0.7 * 17.5e6);
  const double lvl40 = inband_level_dbm_hz(psd40, 0.7 * 35.6e6);
  EXPECT_NEAR(lvl20 - lvl40, 3.17, 0.6);
}

TEST(InbandLevel, ThrowsWhenNoBins) {
  PsdEstimate psd;
  psd.freq_hz = {5e6};
  psd.psd_dbm_hz = {-90.0};
  EXPECT_THROW(inband_level_dbm_hz(psd, 1e3), std::invalid_argument);
}

TEST(WelchPsd, OutOfBandFloorWellBelowInband) {
  const auto tx = ofdm_waveform(phy::ChannelWidth::k20MHz, 1.0, 13);
  const PsdEstimate psd = welch_psd(tx, 512, 20e6);
  const double inband = inband_level_dbm_hz(psd, 10e6);
  // Guard band near the Nyquist edges carries far less power.
  double edge = -1e9;
  for (std::size_t k = 0; k < psd.freq_hz.size(); ++k) {
    if (std::abs(psd.freq_hz[k]) > 9.5e6) {
      edge = std::max(edge, psd.psd_dbm_hz[k]);
    }
  }
  EXPECT_GT(inband - edge, 10.0);
}

}  // namespace
}  // namespace acorn::baseband
