// End-to-end tests of acornd: daemon smoke over a Unix socket, protocol
// error handling, TCP transport, and the kill-and-restart durability
// contract (state recovered from the epoch snapshots is exactly the
// state the pre-crash daemon reported).
#include "service/daemon.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>

#include <chrono>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"

namespace acorn::service {
namespace {

constexpr const char* kDeployment = R"(# test floor: 3 APs, 8 clients
pathloss exponent 3.5
pathloss shadowing 4
channels 12
seed 7
ap 10 10
ap 50 10
ap 30 40
client 12 12
client 14  8
client 48 14
client 52  9
client 28 38
client 35 42
client 30 25
client 45 30
)";

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/acorn_daemon_XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Client connect_with_retry(const std::string& unix_path) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    try {
      return Client::connect_unix(unix_path);
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  throw std::runtime_error("daemon never came up at " + unix_path);
}

std::vector<std::uint8_t> reply_bytes(const Message& msg) {
  return encode_frame(0, msg);
}

TEST(ServiceDaemon, SmokeOverUnixSocket) {
  const TempDir dir;
  DaemonConfig config;
  config.unix_path = dir.path() + "/sock";
  config.state_dir = dir.path() + "/state";
  config.epoch_s = 0.0;  // epochs on demand only: keeps the test exact
  Daemon daemon(config);
  daemon.start();

  Client client = Client::connect_unix(config.unix_path);
  {
    const Message reply = client.call(RegisterWlan{1, kDeployment});
    ASSERT_TRUE(std::holds_alternative<OkReply>(reply));
  }

  // ~100 protocol events: every client joins, then SNR/load churn.
  int events = 1;
  for (std::uint32_t c = 0; c < 8; ++c) {
    const Message reply = client.call(ClientJoin{1, c});
    ++events;
    ASSERT_TRUE(std::holds_alternative<OkReply>(reply));
    EXPECT_GE(std::get<OkReply>(reply).value, 0) << "client " << c;
  }
  for (int round = 0; round < 12; ++round) {
    for (std::uint32_t c = 0; c < 8; ++c) {
      const double loss = 80.0 + 2.0 * c + 0.25 * round;
      const Message reply =
          client.call(SnrUpdate{1, c % 3, c, loss});
      ++events;
      ASSERT_TRUE(std::holds_alternative<OkReply>(reply));
    }
  }
  {
    const Message reply = client.call(LoadUpdate{1, 3, 0.5});
    ++events;
    ASSERT_TRUE(std::holds_alternative<OkReply>(reply));
  }
  {
    const Message reply = client.call(ForceReconfigure{1});
    ++events;
    ASSERT_TRUE(std::holds_alternative<OkReply>(reply));
  }

  const Message config_reply = client.call(QueryConfig{1});
  ASSERT_TRUE(std::holds_alternative<ConfigReply>(config_reply));
  const auto& cfg = std::get<ConfigReply>(config_reply);
  EXPECT_EQ(cfg.wlan_id, 1u);
  EXPECT_EQ(cfg.epoch, 1u);
  EXPECT_EQ(cfg.association.size(), 8u);
  EXPECT_EQ(cfg.allocated.size(), 3u);
  EXPECT_EQ(cfg.operating.size(), 3u);
  EXPECT_GT(cfg.total_goodput_bps, 0.0);

  const Message stats_reply = client.call(QueryStats{});
  ASSERT_TRUE(std::holds_alternative<StatsReply>(stats_reply));
  const auto& stats = std::get<StatsReply>(stats_reply);
  EXPECT_EQ(stats.num_wlans, 1u);
  EXPECT_GE(stats.frames_rx, static_cast<std::uint64_t>(events));
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.epochs_total, 1u);
  EXPECT_GE(stats.snapshots_written, 1u);
  EXPECT_GT(stats.oracle_cell_evals, 0u);
  EXPECT_GT(stats.oracle_share_evals, 0u);
  // Every mutating event was logged; their group commits were counted.
  EXPECT_GE(stats.wal_records, 1u);
  EXPECT_GE(stats.wal_flushes, 1u);
  EXPECT_LE(stats.wal_flushes, stats.wal_records);
  std::uint64_t latency_total = 0;
  for (std::uint64_t b : stats.latency_us_log2) latency_total += b;
  EXPECT_GE(latency_total, static_cast<std::uint64_t>(events));

  // Shutdown over the wire terminates the loop.
  const Message bye = client.call(Shutdown{});
  ASSERT_TRUE(std::holds_alternative<OkReply>(bye));
  daemon.wait();
  daemon.stop();
  EXPECT_FALSE(daemon.running());
}

// Offered loads must reach Algorithm 2's objective, not just the
// snapshot. With two channels and three contending APs, concentrating
// all load on one cell's client flips the allocation: the hot cell is
// given the channel to itself while the idle cells share the other one.
TEST(ServiceDaemon, LoadUpdateRedirectsAllocation) {
  constexpr const char* kScarceDeployment = R"(# 3 APs, 2 channels
pathloss exponent 3.5
pathloss shadowing 4
channels 2
seed 7
ap 10 10
ap 50 10
ap 30 40
client 12 12
client 14  8
client 48 14
client 52  9
client 28 38
client 35 42
client 30 25
client 45 30
)";
  const auto epoch_allocation = [&](bool focus_load_on_client5) {
    const TempDir dir;
    DaemonConfig config;
    config.unix_path = dir.path() + "/sock";
    config.epoch_s = 0.0;
    Daemon daemon(config);
    daemon.start();
    Client client = Client::connect_unix(config.unix_path);
    EXPECT_TRUE(std::holds_alternative<OkReply>(
        client.call(RegisterWlan{1, kScarceDeployment})));
    for (std::uint32_t c = 0; c < 8; ++c) {
      EXPECT_TRUE(
          std::holds_alternative<OkReply>(client.call(ClientJoin{1, c})));
    }
    if (focus_load_on_client5) {
      for (std::uint32_t c = 0; c < 8; ++c) {
        EXPECT_TRUE(std::holds_alternative<OkReply>(
            client.call(LoadUpdate{1, c, c == 5 ? 1.0 : 1e-6})));
      }
    }
    EXPECT_TRUE(
        std::holds_alternative<OkReply>(client.call(ForceReconfigure{1})));
    const Message reply = client.call(QueryConfig{1});
    EXPECT_TRUE(std::holds_alternative<ConfigReply>(reply));
    std::vector<net::Channel> allocated =
        std::get<ConfigReply>(reply).allocated;
    daemon.stop();
    return allocated;
  };

  const std::vector<net::Channel> base = epoch_allocation(false);
  const std::vector<net::Channel> hot = epoch_allocation(true);
  ASSERT_EQ(base.size(), 3u);
  ASSERT_EQ(hot.size(), 3u);
  EXPECT_NE(base, hot) << "offered loads did not change the allocation";
  // Client 5 lives in AP2's cell: under the focused load AP2's channel
  // must not be contended by either idle AP.
  EXPECT_EQ(hot[2].overlap_fraction(hot[0]), 0.0);
  EXPECT_EQ(hot[2].overlap_fraction(hot[1]), 0.0);
}

// A re-association probe that fails (Algorithm 1 admits no AP — here
// because every link degraded to a 300 dB loss) must keep the client on
// its previous AP instead of silently dropping it. Covers both probe
// paths: an explicit re-join and the dirty-client re-probe an epoch
// runs after SNR churn.
TEST(ServiceDaemon, FailedReassociationKeepsClient) {
  const TempDir dir;
  DaemonConfig config;
  config.unix_path = dir.path() + "/sock";
  config.epoch_s = 0.0;
  Daemon daemon(config);
  daemon.start();

  Client client = Client::connect_unix(config.unix_path);
  ASSERT_TRUE(std::holds_alternative<OkReply>(
      client.call(RegisterWlan{1, kDeployment})));
  const Message joined = client.call(ClientJoin{1, 0});
  ASSERT_TRUE(std::holds_alternative<OkReply>(joined));
  const std::int32_t home_ap = std::get<OkReply>(joined).value;
  ASSERT_GE(home_ap, 0);

  // Degrade every AP->client-0 link beyond any usable MCS.
  for (std::uint32_t ap = 0; ap < 3; ++ap) {
    ASSERT_TRUE(std::holds_alternative<OkReply>(
        client.call(SnrUpdate{1, ap, 0, 300.0})));
  }
  // Explicit re-join: the probe fails, the old association survives.
  const Message rejoined = client.call(ClientJoin{1, 0});
  ASSERT_TRUE(std::holds_alternative<OkReply>(rejoined));
  EXPECT_EQ(std::get<OkReply>(rejoined).value, home_ap)
      << "failed probe dropped the client";

  // Epoch re-probe of the dirty client: same contract.
  ASSERT_TRUE(
      std::holds_alternative<OkReply>(client.call(ForceReconfigure{1})));
  const Message cfg_reply = client.call(QueryConfig{1});
  ASSERT_TRUE(std::holds_alternative<ConfigReply>(cfg_reply));
  EXPECT_EQ(std::get<ConfigReply>(cfg_reply).association[0], home_ap)
      << "epoch re-probe dropped the client";
  daemon.stop();
}

TEST(ServiceDaemon, ErrorPaths) {
  const TempDir dir;
  DaemonConfig config;
  config.unix_path = dir.path() + "/sock";
  config.epoch_s = 0.0;
  Daemon daemon(config);
  daemon.start();

  Client client = Client::connect_unix(config.unix_path);
  {
    const Message reply = client.call(QueryConfig{99});
    ASSERT_TRUE(std::holds_alternative<ErrorReply>(reply));
    EXPECT_EQ(std::get<ErrorReply>(reply).code,
              static_cast<std::uint16_t>(ErrorCode::kUnknownWlan));
  }
  {
    const Message reply = client.call(RegisterWlan{1, "not a deployment %"});
    ASSERT_TRUE(std::holds_alternative<ErrorReply>(reply));
    EXPECT_EQ(std::get<ErrorReply>(reply).code,
              static_cast<std::uint16_t>(ErrorCode::kBadDeployment));
  }
  ASSERT_TRUE(std::holds_alternative<OkReply>(
      client.call(RegisterWlan{1, kDeployment})));
  {
    const Message reply = client.call(RegisterWlan{1, kDeployment});
    ASSERT_TRUE(std::holds_alternative<ErrorReply>(reply));
    EXPECT_EQ(std::get<ErrorReply>(reply).code,
              static_cast<std::uint16_t>(ErrorCode::kAlreadyRegistered));
  }
  {
    const Message reply = client.call(ClientJoin{1, 500});
    ASSERT_TRUE(std::holds_alternative<ErrorReply>(reply));
    EXPECT_EQ(std::get<ErrorReply>(reply).code,
              static_cast<std::uint16_t>(ErrorCode::kBadArgument));
  }
  // Ids at/above 2^31 must not wrap negative through an int cast and
  // slip past the bounds checks (that was an OOB write).
  for (const std::uint32_t evil :
       {std::uint32_t{0x80000000u}, std::uint32_t{0xffffffffu}}) {
    for (const Message& msg :
         {Message{ClientJoin{1, evil}}, Message{ClientLeave{1, evil}},
          Message{SnrUpdate{1, evil, 0, 90.0}},
          Message{SnrUpdate{1, 0, evil, 90.0}},
          Message{LoadUpdate{1, evil, 0.5}}}) {
      const Message reply = client.call(msg);
      ASSERT_TRUE(std::holds_alternative<ErrorReply>(reply));
      EXPECT_EQ(std::get<ErrorReply>(reply).code,
                static_cast<std::uint16_t>(ErrorCode::kBadArgument));
    }
  }
  // Non-finite (or negative) measurements must be rejected, not written
  // into the link budget and persisted.
  for (const double bad :
       {std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(), -1.0}) {
    for (const Message& msg :
         {Message{SnrUpdate{1, 0, 0, bad}}, Message{LoadUpdate{1, 0, bad}}}) {
      const Message reply = client.call(msg);
      ASSERT_TRUE(std::holds_alternative<ErrorReply>(reply));
      EXPECT_EQ(std::get<ErrorReply>(reply).code,
                static_cast<std::uint16_t>(ErrorCode::kBadArgument));
    }
  }
  {
    const Message reply = client.call(RemoveWlan{1});
    ASSERT_TRUE(std::holds_alternative<OkReply>(reply));
    const Message again = client.call(RemoveWlan{1});
    ASSERT_TRUE(std::holds_alternative<ErrorReply>(again));
  }

  // A garbage frame gets its connection dropped; the daemon survives
  // and other connections keep working.
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    // Length prefix far beyond kMaxFramePayload.
    const std::uint8_t junk[] = {0xff, 0xff, 0xff, 0x7f};
    ASSERT_EQ(::write(fd, junk, sizeof(junk)),
              static_cast<ssize_t>(sizeof(junk)));
    // The daemon answers with a best-effort ErrorReply, then closes:
    // read() must reach EOF rather than hang.
    std::uint8_t buf[512];
    while (true) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n == 0) break;  // connection dropped, as specified
      ASSERT_GT(n, 0);
    }
    ::close(fd);
  }
  const Message stats_reply = client.call(QueryStats{});
  ASSERT_TRUE(std::holds_alternative<StatsReply>(stats_reply));
  EXPECT_GE(std::get<StatsReply>(stats_reply).protocol_errors, 1u);
  daemon.stop();
}

TEST(ServiceDaemon, TcpTransport) {
  DaemonConfig config;
  config.tcp = true;
  config.tcp_port = 0;  // ephemeral
  config.epoch_s = 0.0;
  Daemon daemon(config);
  try {
    daemon.start();
  } catch (const std::exception& e) {
    GTEST_SKIP() << "cannot bind TCP in this environment: " << e.what();
  }
  ASSERT_GT(daemon.tcp_port(), 0);
  Client client = Client::connect_tcp(
      "127.0.0.1", static_cast<std::uint16_t>(daemon.tcp_port()));
  ASSERT_TRUE(std::holds_alternative<OkReply>(
      client.call(RegisterWlan{5, kDeployment})));
  const Message reply = client.call(QueryConfig{5});
  ASSERT_TRUE(std::holds_alternative<ConfigReply>(reply));
  EXPECT_EQ(std::get<ConfigReply>(reply).wlan_id, 5u);
  daemon.stop();
}

// The durability contract, deterministic half: kill a *quiescent* daemon
// with SIGKILL (no chance to flush anything) and restart over the same
// state directory — the recovered daemon must answer QueryConfig with
// exactly the bytes the pre-crash daemon reported, because the last
// completed epoch wrote a full snapshot and recovery is bit-identical.
// Nondeterministic half: drive one acknowledged event past the last
// snapshot, then kill immediately after submitting a reconfigure, so
// SIGKILL can land mid-epoch or mid-snapshot-write — recovery must
// replay the acknowledged event from the WAL and land on a *complete*
// state (atomic snapshot + intact log records), i.e. either just
// before the unacknowledged reconfigure or just after it.
TEST(ServiceDaemon, KillAndRestartRecovery) {
  const TempDir dir;
  const std::string sock = dir.path() + "/sock";
  const std::string state = dir.path() + "/state";

  const pid_t child = ::fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    // Child: host the daemon until SIGKILL.
    DaemonConfig config;
    config.unix_path = sock;
    config.state_dir = state;
    config.epoch_s = 0.0;
    try {
      Daemon daemon(config);
      daemon.start();
      daemon.wait();
    } catch (...) {
    }
    ::_exit(0);
  }

  std::vector<std::uint8_t> c1_bytes;
  std::uint64_t c1_epoch = 0;
  {
    Client client = connect_with_retry(sock);
    ASSERT_TRUE(std::holds_alternative<OkReply>(
        client.call(RegisterWlan{1, kDeployment})));
    for (std::uint32_t c = 0; c < 8; ++c) {
      ASSERT_TRUE(
          std::holds_alternative<OkReply>(client.call(ClientJoin{1, c})));
    }
    ASSERT_TRUE(std::holds_alternative<OkReply>(
        client.call(SnrUpdate{1, 0, 0, 84.5})));
    ASSERT_TRUE(std::holds_alternative<OkReply>(
        client.call(SnrUpdate{1, 1, 3, 101.25})));
    ASSERT_TRUE(std::holds_alternative<OkReply>(
        client.call(ForceReconfigure{1})));
    const Message c1 = client.call(QueryConfig{1});
    ASSERT_TRUE(std::holds_alternative<ConfigReply>(c1));
    c1_epoch = std::get<ConfigReply>(c1).epoch;
    EXPECT_EQ(c1_epoch, 1u);
    c1_bytes = reply_bytes(c1);
  }

  // Deterministic kill: quiescent daemon, last epoch fully snapshot.
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));

  {
    DaemonConfig config;
    config.unix_path = sock;
    config.state_dir = state;
    config.epoch_s = 0.0;
    Daemon daemon(config);
    daemon.start();
    Client client = Client::connect_unix(sock);
    const Message recovered = client.call(QueryConfig{1});
    ASSERT_TRUE(std::holds_alternative<ConfigReply>(recovered));
    EXPECT_EQ(reply_bytes(recovered), c1_bytes)
        << "recovered state differs from the pre-kill report";

    // Nondeterministic kill: more events, then reconfigure and SIGKILL
    // racing the epoch. Run it against this in-process daemon's child...
    daemon.stop();
  }

  // Second round: restart a child daemon on the recovered state, drive
  // new events, kill it mid-reconfigure, and require recovery to land on
  // a complete snapshot (old epoch or new, never torn).
  const pid_t child2 = ::fork();
  ASSERT_NE(child2, -1);
  if (child2 == 0) {
    DaemonConfig config;
    config.unix_path = sock;
    config.state_dir = state;
    config.epoch_s = 0.0;
    try {
      Daemon daemon(config);
      daemon.start();
      daemon.wait();
    } catch (...) {
    }
    ::_exit(0);
  }
  {
    Client client = connect_with_retry(sock);
    ASSERT_TRUE(std::holds_alternative<OkReply>(
        client.call(SnrUpdate{1, 2, 6, 99.0})));
    // Fire the reconfigure and kill without waiting for the reply.
    client.send(ForceReconfigure{1});
  }
  ASSERT_EQ(::kill(child2, SIGKILL), 0);
  ASSERT_EQ(::waitpid(child2, &status, 0), child2);

  {
    DaemonConfig config;
    config.unix_path = sock;
    config.state_dir = state;
    config.epoch_s = 0.0;
    Daemon daemon(config);
    daemon.start();
    Client client = Client::connect_unix(sock);
    const Message recovered = client.call(QueryConfig{1});
    ASSERT_TRUE(std::holds_alternative<ConfigReply>(recovered));
    const auto& cfg = std::get<ConfigReply>(recovered);
    // The acknowledged SnrUpdate (event 12) was never covered by an
    // epoch snapshot, but its reply was released only after the WAL
    // fsync — so recovery must replay it. The trailing ForceReconfigure
    // was never acknowledged: depending on where SIGKILL landed it is
    // either absent (epoch 1, 12 events) or fully recovered (epoch 2,
    // 13 events) — but never half-applied.
    EXPECT_TRUE(cfg.epoch == c1_epoch || cfg.epoch == c1_epoch + 1)
        << "recovered epoch " << cfg.epoch;
    if (cfg.epoch == c1_epoch) {
      EXPECT_EQ(cfg.events_applied, 12u);
    } else {
      EXPECT_EQ(cfg.events_applied, 13u);
    }
    EXPECT_EQ(cfg.association.size(), 8u);
    EXPECT_GT(cfg.total_goodput_bps, 0.0);
    daemon.stop();
  }
}

}  // namespace
}  // namespace acorn::service
