#include "mac/airtime.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acorn::mac {
namespace {

TEST(FrameAirtime, RejectsBadArgs) {
  const MacTiming t;
  EXPECT_THROW(frame_airtime_s(t, 0.0, 12000), std::invalid_argument);
  EXPECT_THROW(frame_airtime_s(t, 65e6, 0), std::invalid_argument);
}

TEST(FrameAirtime, OverheadPlusPayload) {
  MacTiming t;
  const double overhead_us = t.difs_us + t.mean_backoff_slots * t.slot_us +
                             t.preamble_us + t.sifs_us + t.ack_us;
  const double airtime = frame_airtime_s(t, 65e6, 12000);
  EXPECT_NEAR(airtime, overhead_us * 1e-6 + 12000.0 / 65e6, 1e-12);
}

TEST(FrameAirtime, SlowerRateTakesLonger) {
  const MacTiming t;
  EXPECT_GT(frame_airtime_s(t, 6.5e6, 12000),
            frame_airtime_s(t, 65e6, 12000));
}

TEST(FrameAirtime, OverheadDominatesShortFrames) {
  // A tiny frame at a high rate is nearly all overhead — the reason MAC
  // efficiency falls at high MCS.
  const MacTiming t;
  const double airtime = frame_airtime_s(t, 270e6, 100);
  EXPECT_GT(airtime, 100e-6);  // >> payload time of 0.37 us
}

TEST(FrameAirtime, AmpduAmortizesOverhead) {
  MacTiming plain;
  MacTiming aggregated;
  aggregated.ampdu_frames = 16;
  const double t1 = frame_airtime_s(plain, 65e6, 12000);
  const double t16 = frame_airtime_s(aggregated, 65e6, 12000);
  // Per-MPDU airtime shrinks but never below the pure payload time.
  EXPECT_LT(t16, t1);
  EXPECT_GT(t16, 12000.0 / 65e6);
}

TEST(FrameAirtime, AmpduApproachesPayloadTimeAsymptotically) {
  MacTiming timing;
  timing.ampdu_frames = 1024;
  const double t = frame_airtime_s(timing, 135e6, 12000);
  EXPECT_NEAR(t, 12000.0 / 135e6, 2e-6);
}

TEST(FrameAirtime, RejectsBadAmpdu) {
  MacTiming timing;
  timing.ampdu_frames = 0;
  EXPECT_THROW(frame_airtime_s(timing, 65e6, 12000), std::invalid_argument);
}

TEST(ExpectedAttempts, NoLossIsOneAttempt) {
  const MacTiming t;
  EXPECT_DOUBLE_EQ(expected_attempts(t, 0.0), 1.0);
}

TEST(ExpectedAttempts, MatchesGeometricMean) {
  const MacTiming t;
  EXPECT_NEAR(expected_attempts(t, 0.5), 2.0, 1e-12);
  EXPECT_NEAR(expected_attempts(t, 0.9), 10.0, 1e-9);
}

TEST(ExpectedAttempts, CappedForStarvingLinks) {
  const MacTiming t;
  EXPECT_NEAR(expected_attempts(t, 1.0), 1.0 / (1.0 - t.per_cap), 1e-6);
}

TEST(ExpectedAttempts, RejectsOutOfRangePer) {
  const MacTiming t;
  EXPECT_THROW(expected_attempts(t, -0.1), std::invalid_argument);
  EXPECT_THROW(expected_attempts(t, 1.1), std::invalid_argument);
}

TEST(PerBitDelay, InverseOfGoodput) {
  const MacTiming t;
  const double d = per_bit_delay_s(t, 65e6, 12000, 0.0);
  // 1/d is the per-client MAC goodput: below the PHY rate, above half.
  EXPECT_LT(1.0 / d, 65e6);
  EXPECT_GT(1.0 / d, 30e6);
}

TEST(PerBitDelay, LossInflatesDelayProportionally) {
  const MacTiming t;
  const double clean = per_bit_delay_s(t, 65e6, 12000, 0.0);
  const double lossy = per_bit_delay_s(t, 65e6, 12000, 0.5);
  EXPECT_NEAR(lossy / clean, 2.0, 1e-9);
}

TEST(PerBitDelay, PoorLinkDelayExplodes) {
  const MacTiming t;
  const double dead = per_bit_delay_s(t, 6.5e6, 12000, 0.9999);
  const double fine = per_bit_delay_s(t, 6.5e6, 12000, 0.0);
  EXPECT_GT(dead / fine, 500.0);
}

}  // namespace
}  // namespace acorn::mac
