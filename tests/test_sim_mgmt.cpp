#include "sim/mgmt.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace acorn::sim {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

struct Fixture {
  ScenarioBuilder builder;
  Wlan wlan;
  net::Association assoc;
  net::ChannelAssignment assignment;

  Fixture()
      : builder(make_builder()),
        wlan(builder.build()),
        assoc(builder.intended_association()),
        assignment{net::Channel::basic(0), net::Channel::basic(0)} {}

  static ScenarioBuilder make_builder() {
    ScenarioBuilder b;
    b.cells = {CellSpec{{testutil::kGoodLinkLoss, testutil::kMediumLinkLoss}},
               CellSpec{{testutil::kGoodLinkLoss}}};
    b.ap_ap_loss_db = 90.0;  // contending pair
    return b;
  }

  net::InterferenceGraph graph() const {
    return net::InterferenceGraph(wlan.topology(), wlan.budget(), assoc,
                                  wlan.config().interference);
  }
};

TEST(Mgmt, BeaconCarriesPaperFields) {
  Fixture f;
  const auto g = f.graph();
  const Beacon beacon = make_beacon(f.wlan, g, f.assoc, f.assignment, 0);
  EXPECT_EQ(beacon.ap_id, 0);
  EXPECT_EQ(beacon.num_clients, 2);
  EXPECT_EQ(beacon.client_ids.size(), 2u);
  EXPECT_EQ(beacon.client_delays_s_per_bit.size(), 2u);
  EXPECT_GT(beacon.atd_s_per_bit, 0.0);
  EXPECT_DOUBLE_EQ(beacon.access_share, 0.5);  // one co-channel contender
}

TEST(Mgmt, AtdIsSumOfClientDelays) {
  Fixture f;
  const auto g = f.graph();
  const Beacon beacon = make_beacon(f.wlan, g, f.assoc, f.assignment, 0);
  double sum = 0.0;
  for (double d : beacon.client_delays_s_per_bit) sum += d;
  EXPECT_NEAR(beacon.atd_s_per_bit, sum, 1e-15);
}

TEST(Mgmt, EmptyCellBeaconIsZero) {
  Fixture f;
  net::Association none(f.assoc.size(), net::kUnassociated);
  const net::InterferenceGraph g(f.wlan.topology(), f.wlan.budget(), none,
                                 f.wlan.config().interference);
  const Beacon beacon = make_beacon(f.wlan, g, none, f.assignment, 1);
  EXPECT_EQ(beacon.num_clients, 0);
  EXPECT_EQ(beacon.atd_s_per_bit, 0.0);
}

TEST(Mgmt, TrialBeaconIncludesJoiningClient) {
  Fixture f;
  net::Association without = f.assoc;
  without[2] = net::kUnassociated;  // client 2 not yet joined
  const net::InterferenceGraph g(f.wlan.topology(), f.wlan.budget(), without,
                                 f.wlan.config().interference);
  const Beacon plain = make_beacon(f.wlan, g, without, f.assignment, 1);
  const Beacon trial =
      make_beacon_with_client(f.wlan, g, without, f.assignment, 1, 2);
  EXPECT_EQ(plain.num_clients, 0);
  EXPECT_EQ(trial.num_clients, 1);
  EXPECT_GT(trial.atd_s_per_bit, plain.atd_s_per_bit);
}

TEST(Mgmt, TrialBeaconIdempotentForExistingClient) {
  Fixture f;
  const auto g = f.graph();
  const Beacon trial =
      make_beacon_with_client(f.wlan, g, f.assoc, f.assignment, 0, 0);
  EXPECT_EQ(trial.num_clients, 2);  // client 0 already associated
}

TEST(Mgmt, ChannelWidthAffectsBeaconDelays) {
  Fixture f;
  const auto g = f.graph();
  net::ChannelAssignment bonded = {net::Channel::bonded(0),
                                   net::Channel::basic(5)};
  const Beacon on40 = make_beacon(f.wlan, g, f.assoc, bonded, 0);
  const Beacon on20 = make_beacon(f.wlan, g, f.assoc, f.assignment, 0);
  // Good links: wider channel lowers per-bit delay.
  EXPECT_LT(on40.atd_s_per_bit, on20.atd_s_per_bit);
}

TEST(Mgmt, CoChannelCensusMatchesContenders) {
  Fixture f;
  const auto g = f.graph();
  EXPECT_EQ(co_channel_neighbors(g, f.assignment, 0), 1);
  net::ChannelAssignment split = {net::Channel::basic(0),
                                  net::Channel::basic(3)};
  EXPECT_EQ(co_channel_neighbors(g, split, 0), 0);
}

TEST(Mgmt, ApsInRangeRespectsThreshold) {
  Fixture f;
  // Client 0 has loss 80 to AP0 (rx -65) and isolated loss to AP1.
  const auto in_range = aps_in_range(f.wlan, 0);
  EXPECT_EQ(in_range, std::vector<int>{0});
  // A stricter threshold empties the list.
  EXPECT_TRUE(aps_in_range(f.wlan, 0, -50.0).empty());
}

TEST(Mgmt, ApsInRangeSeesCrossCellWhenConfigured) {
  ScenarioBuilder b = Fixture::make_builder();
  b.cross_loss_db = 95.0;  // every client hears every AP
  const Wlan wlan = b.build();
  const auto in_range = aps_in_range(wlan, 0);
  EXPECT_EQ(in_range.size(), 2u);
}

}  // namespace
}  // namespace acorn::sim
