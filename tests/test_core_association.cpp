#include "core/association.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace acorn::core {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

// Two APs both audible to every client (cross_loss picks the visibility).
ScenarioBuilder open_builder(double cross_loss) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}},
             CellSpec{{testutil::kGoodLinkLoss}}};
  b.cross_loss_db = cross_loss;
  return b;
}

TEST(Association, NoApInRangeReturnsNullopt) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kIsolatedLoss}}};
  const sim::Wlan wlan = b.build();
  const UserAssociation ua;
  net::Association assoc = {net::kUnassociated};
  const net::ChannelAssignment ch = {net::Channel::basic(0)};
  EXPECT_FALSE(ua.select_ap(wlan, assoc, ch, 0).has_value());
}

TEST(Association, SingleVisibleApIsChosen) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}},
             CellSpec{{}}};
  const sim::Wlan wlan = b.build();
  const UserAssociation ua;
  net::Association assoc = {net::kUnassociated};
  const net::ChannelAssignment ch = {net::Channel::basic(0),
                                     net::Channel::basic(1)};
  EXPECT_EQ(ua.select_ap(wlan, assoc, ch, 0), std::optional<int>(0));
}

TEST(Association, UtilitiesComputedForAllInRange) {
  ScenarioBuilder b = open_builder(82.0);
  const sim::Wlan wlan = b.build();
  const UserAssociation ua;
  net::Association assoc = {net::kUnassociated, net::kUnassociated};
  const net::ChannelAssignment ch = {net::Channel::basic(0),
                                     net::Channel::basic(1)};
  const auto utils = ua.candidate_utilities(wlan, assoc, ch, 0);
  EXPECT_EQ(utils.size(), 2u);
  for (const CandidateUtility& u : utils) {
    EXPECT_GT(u.x_with, 0.0);
    EXPECT_GT(u.utility, 0.0);
  }
}

TEST(Association, JoinsEmptierOfTwoEqualAps) {
  // AP0 already serves a client; an identical new client should join AP1
  // (network throughput is higher with one client per AP).
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss, testutil::kGoodLinkLoss}},
             CellSpec{{}}};
  b.cross_loss_db = testutil::kGoodLinkLoss + 1.0;  // both APs audible
  const sim::Wlan wlan = b.build();
  const UserAssociation ua;
  net::Association assoc = {0, net::kUnassociated};
  const net::ChannelAssignment ch = {net::Channel::basic(0),
                                     net::Channel::basic(2)};
  EXPECT_EQ(ua.select_ap(wlan, assoc, ch, 1), std::optional<int>(1));
}

TEST(Association, GroupsPoorClientWithPoorCell) {
  // The ACORN signature behaviour: a poor client joins the AP already
  // serving poor clients rather than wrecking the good cell, even when
  // the good AP's signal is somewhat stronger.
  net::Topology topo;
  topo.add_ap({0, 0});
  topo.add_ap({60, 0});
  topo.add_client({1, 1});    // good client of AP0
  topo.add_client({59, 1});   // poor client of AP1
  topo.add_client({30, 10});  // joining poor client
  util::Rng rng(3);
  net::PathLossModel plm;
  net::LinkBudget budget(topo, plm, rng);
  budget.set_ap_ap_loss_db(0, 1, testutil::kIsolatedLoss);
  budget.set_ap_client_loss_db(0, 0, testutil::kGoodLinkLoss);
  budget.set_ap_client_loss_db(1, 0, testutil::kIsolatedLoss);
  budget.set_ap_client_loss_db(1, 1, testutil::kPoorLinkLoss);
  budget.set_ap_client_loss_db(0, 1, testutil::kIsolatedLoss);
  // The joiner is poor to both APs (slightly stronger toward AP0).
  budget.set_ap_client_loss_db(0, 2, testutil::kPoorLinkLoss - 1.0);
  budget.set_ap_client_loss_db(1, 2, testutil::kPoorLinkLoss);
  const sim::Wlan wlan(topo, budget, sim::WlanConfig{});
  const UserAssociation ua;
  net::Association assoc = {0, 1, net::kUnassociated};
  const net::ChannelAssignment ch = {net::Channel::bonded(0),
                                     net::Channel::basic(4)};
  EXPECT_EQ(ua.select_ap(wlan, assoc, ch, 2), std::optional<int>(1));
}

TEST(Association, UtilityMatchesEquationFour) {
  // Hand-check Eq. 4 on a tiny instance: one AP with one existing client
  // plus the joiner; a second AP out of the client's range.
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss, testutil::kGoodLinkLoss}},
             CellSpec{{}}};
  const sim::Wlan wlan = b.build();
  const UserAssociation ua;
  net::Association assoc = {0, net::kUnassociated};
  const net::ChannelAssignment ch = {net::Channel::basic(0),
                                     net::Channel::basic(1)};
  const auto utils = ua.candidate_utilities(wlan, assoc, ch, 1);
  ASSERT_EQ(utils.size(), 1u);
  // U = K_i * X_w with no other APs in range; K_i = 2.
  EXPECT_NEAR(utils[0].utility, 2.0 * utils[0].x_with, 1e-9);
}

TEST(Association, XWithoutExceedsXWith) {
  // Removing the joiner's delay raises the per-client throughput.
  ScenarioBuilder b = open_builder(90.0);
  const sim::Wlan wlan = b.build();
  const UserAssociation ua;
  net::Association assoc = {0, net::kUnassociated};
  const net::ChannelAssignment ch = {net::Channel::basic(0),
                                     net::Channel::basic(1)};
  const auto utils = ua.candidate_utilities(wlan, assoc, ch, 1);
  for (const CandidateUtility& u : utils) {
    if (u.ap_id == 0) {
      // AP0 already serves client 0: removing the joiner's delay raises
      // the per-client throughput.
      EXPECT_GE(u.x_without, u.x_with);
    } else {
      // AP1 would be empty without the joiner; X_wo is the 0 sentinel.
      EXPECT_EQ(u.x_without, 0.0);
    }
  }
}

TEST(Association, RespectsRssThresholdConfig) {
  ScenarioBuilder b = open_builder(90.0);
  const sim::Wlan wlan = b.build();
  AssociationConfig cfg;
  cfg.min_rss_dbm = -70.0;  // strict: only the home AP (loss 80) is heard
  const UserAssociation ua(cfg);
  net::Association assoc = {net::kUnassociated, net::kUnassociated};
  const net::ChannelAssignment ch = {net::Channel::basic(0),
                                     net::Channel::basic(1)};
  const auto utils = ua.candidate_utilities(wlan, assoc, ch, 0);
  EXPECT_EQ(utils.size(), 1u);
}

}  // namespace
}  // namespace acorn::core
