// Randomized property sweeps over deployments (TEST_P over seeds): the
// invariants of the configuration pipeline that must hold on *any*
// instance, not just the scripted topologies.
#include <gtest/gtest.h>

#include "baselines/simple.hpp"
#include "core/controller.hpp"
#include "testutil.hpp"

namespace acorn::core {
namespace {

sim::Wlan random_wlan(std::uint64_t seed, int n_aps = 4, int n_clients = 10) {
  util::Rng rng(seed);
  net::Topology topo =
      net::Topology::random(n_aps, n_clients, 120.0, rng);
  net::PathLossModel plm;
  plm.shadowing_sigma_db = 4.0;
  net::LinkBudget budget(topo, plm, rng);
  return sim::Wlan(std::move(topo), std::move(budget), sim::WlanConfig{});
}

class RandomDeployment : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDeployment, AllocationTrajectoryIsMonotone) {
  const sim::Wlan wlan = random_wlan(GetParam());
  const net::Association assoc = baselines::rss_associate_all(wlan);
  const ChannelAllocator alloc{net::ChannelPlan(12)};
  util::Rng rng(GetParam() + 1);
  const AllocationResult r = alloc.allocate(
      wlan, assoc, alloc.random_assignment(wlan.topology().num_aps(), rng));
  for (std::size_t i = 1; i < r.trajectory_bps.size(); ++i) {
    EXPECT_GE(r.trajectory_bps[i], r.trajectory_bps[i - 1] - 1.0);
  }
  EXPECT_NEAR(r.final_bps, r.trajectory_bps.back(), 1.0);
}

TEST_P(RandomDeployment, AllocationIsIdempotentAtFixedPoint) {
  const sim::Wlan wlan = random_wlan(GetParam());
  const net::Association assoc = baselines::rss_associate_all(wlan);
  const ChannelAllocator alloc{net::ChannelPlan(12)};
  util::Rng rng(GetParam() + 2);
  const AllocationResult first = alloc.allocate(
      wlan, assoc, alloc.random_assignment(wlan.topology().num_aps(), rng));
  const AllocationResult second =
      alloc.allocate(wlan, assoc, first.assignment);
  EXPECT_EQ(second.switches, 0);
}

TEST_P(RandomDeployment, AssignedColorsComeFromThePlan) {
  const sim::Wlan wlan = random_wlan(GetParam());
  const AcornController acorn({net::ChannelPlan(6), {}, {}, 1800.0});
  util::Rng rng(GetParam() + 3);
  const ConfigureResult r = acorn.configure(wlan, rng);
  for (const net::Channel& c : r.assignment) {
    for (int occ : c.occupied()) {
      EXPECT_GE(occ, 0);
      EXPECT_LT(occ, 6);
    }
  }
}

TEST_P(RandomDeployment, AssociationTargetsAreValidAps) {
  const sim::Wlan wlan = random_wlan(GetParam());
  const AcornController acorn;
  util::Rng rng(GetParam() + 4);
  const ConfigureResult r = acorn.configure(wlan, rng);
  for (int owner : r.association) {
    EXPECT_GE(owner, net::kUnassociated);
    EXPECT_LT(owner, wlan.topology().num_aps());
  }
}

TEST_P(RandomDeployment, EvaluationTotalsAreConsistent) {
  const sim::Wlan wlan = random_wlan(GetParam());
  const AcornController acorn;
  util::Rng rng(GetParam() + 5);
  const ConfigureResult r = acorn.configure(wlan, rng);
  double sum = 0.0;
  for (const sim::ApStats& ap : r.evaluation.per_ap) {
    EXPECT_GE(ap.medium_share, 0.0);
    EXPECT_LE(ap.medium_share, 1.0);
    sum += ap.goodput_bps;
  }
  EXPECT_NEAR(sum, r.evaluation.total_goodput_bps, 1.0);
}

TEST_P(RandomDeployment, AcornNotWorseThanStockConfiguration) {
  const sim::Wlan wlan = random_wlan(GetParam());
  const AcornController acorn;
  util::Rng rng(GetParam() + 6);
  const ConfigureResult ours = acorn.configure(wlan, rng);
  const net::Association rss = baselines::rss_associate_all(wlan);
  const net::ChannelAssignment fixed40 = baselines::fixed_width_assignment(
      net::ChannelPlan(12), wlan.topology().num_aps(),
      phy::ChannelWidth::k40MHz);
  const double stock = wlan.evaluate(rss, fixed40).total_goodput_bps;
  // ACORN configures from beacon *estimates*, so it is not an oracle; it
  // must land at least in the stock configuration's ballpark on every
  // instance (and beats it on average — see the ablation bench).
  EXPECT_GE(ours.evaluation.total_goodput_bps, stock * 0.9);
}

TEST_P(RandomDeployment, TcpNeverExceedsUdp) {
  const sim::Wlan wlan = random_wlan(GetParam());
  const net::Association rss = baselines::rss_associate_all(wlan);
  const net::ChannelAssignment ch = baselines::fixed_width_assignment(
      net::ChannelPlan(12), wlan.topology().num_aps(),
      phy::ChannelWidth::k20MHz);
  const double udp =
      wlan.evaluate(rss, ch, mac::TrafficType::kUdp).total_goodput_bps;
  const double tcp =
      wlan.evaluate(rss, ch, mac::TrafficType::kTcp).total_goodput_bps;
  EXPECT_LE(tcp, udp + 1.0);
}

TEST_P(RandomDeployment, WeightedContentionNeverBelowBinary) {
  // The weighted model charges at most a full slot per neighbor, so each
  // AP's share (and hence total throughput) can only grow.
  util::Rng rng(GetParam());
  net::Topology topo = net::Topology::random(4, 10, 100.0, rng);
  net::PathLossModel plm;
  plm.shadowing_sigma_db = 4.0;
  net::LinkBudget budget(topo, plm, rng);
  sim::WlanConfig binary_cfg;
  sim::WlanConfig weighted_cfg;
  weighted_cfg.weighted_contention = true;
  const sim::Wlan binary(topo, budget, binary_cfg);
  const sim::Wlan weighted(topo, budget, weighted_cfg);
  const net::Association rss = baselines::rss_associate_all(binary);
  const ChannelAllocator alloc{net::ChannelPlan(4)};
  util::Rng rng2(GetParam() + 7);
  const net::ChannelAssignment assignment =
      alloc.random_assignment(4, rng2);
  EXPECT_GE(weighted.evaluate(rss, assignment).total_goodput_bps,
            binary.evaluate(rss, assignment).total_goodput_bps - 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDeployment,
                         ::testing::Values(11u, 23u, 37u, 51u, 77u, 93u));

}  // namespace
}  // namespace acorn::core
