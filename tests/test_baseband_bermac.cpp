#include "baseband/bermac.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "phy/modulation.hpp"
#include "phy/noise.hpp"
#include "util/units.hpp"

namespace acorn::baseband {
namespace {

BermacConfig quick_config() {
  BermacConfig cfg;
  cfg.packets = 20;
  cfg.packet_bytes = 200;
  cfg.tx_dbm = 10.0;
  cfg.path_loss_db = 85.0;
  return cfg;
}

TEST(Bermac, RejectsBadConfig) {
  util::Rng rng(1);
  BermacConfig cfg = quick_config();
  cfg.packets = 0;
  EXPECT_THROW(run_bermac(cfg, rng), std::invalid_argument);
  cfg = quick_config();
  cfg.packet_bytes = -1;
  EXPECT_THROW(run_bermac(cfg, rng), std::invalid_argument);
}

TEST(Bermac, AccountingIsConsistent) {
  util::Rng rng(2);
  const BermacConfig cfg = quick_config();
  const BermacResult r = run_bermac(cfg, rng);
  EXPECT_EQ(r.packets_sent, 20);
  EXPECT_EQ(r.bits_sent, 20 * 200 * 8);
  EXPECT_LE(r.packet_errors, r.packets_sent);
  EXPECT_LE(r.bit_errors, r.bits_sent);
  EXPECT_GE(r.ber(), 0.0);
  EXPECT_LE(r.ber(), 1.0);
}

TEST(Bermac, DeterministicForSameSeed) {
  const BermacConfig cfg = quick_config();
  util::Rng r1(7);
  util::Rng r2(7);
  const BermacResult a = run_bermac(cfg, r1);
  const BermacResult b = run_bermac(cfg, r2);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.packet_errors, b.packet_errors);
  EXPECT_DOUBLE_EQ(a.mean_snr_db, b.mean_snr_db);
}

TEST(Bermac, CleanChannelHasNoErrors) {
  util::Rng rng(3);
  BermacConfig cfg = quick_config();
  cfg.tx_dbm = 20.0;
  cfg.path_loss_db = 60.0;  // enormous SNR
  cfg.rayleigh = false;
  cfg.num_taps = 1;
  const BermacResult r = run_bermac(cfg, rng);
  EXPECT_EQ(r.bit_errors, 0);
  EXPECT_EQ(r.packet_errors, 0);
}

TEST(Bermac, HopelessChannelLosesEverything) {
  util::Rng rng(4);
  BermacConfig cfg = quick_config();
  cfg.tx_dbm = 0.0;
  cfg.path_loss_db = 130.0;
  const BermacResult r = run_bermac(cfg, rng);
  EXPECT_EQ(r.packet_errors, r.packets_sent);
  EXPECT_GT(r.ber(), 0.2);
}

TEST(Bermac, BerDecreasesWithTxPower) {
  BermacConfig cfg = quick_config();
  cfg.packets = 40;
  cfg.path_loss_db = 98.0;
  util::Rng r1(5);
  cfg.tx_dbm = 2.0;
  const double low = run_bermac(cfg, r1).ber();
  util::Rng r2(5);
  cfg.tx_dbm = 14.0;
  const double high = run_bermac(cfg, r2).ber();
  EXPECT_LT(high, low);
}

TEST(Bermac, FortyMhzWorseAtSameTx) {
  // Fig. 3(b)/4(b): fixed Tx, wider channel -> lower SNR -> more errors.
  BermacConfig cfg = quick_config();
  cfg.packets = 40;
  cfg.path_loss_db = 96.0;
  cfg.tx_dbm = 6.0;
  util::Rng r1(6);
  const BermacResult res20 = run_bermac(cfg, r1);
  cfg.width = phy::ChannelWidth::k40MHz;
  util::Rng r2(6);
  const BermacResult res40 = run_bermac(cfg, r2);
  EXPECT_GT(res40.ber(), res20.ber());
  EXPECT_NEAR(res20.mean_snr_db - res40.mean_snr_db,
              phy::cb_snr_penalty_db(), 0.8);
}

TEST(Bermac, MeasuredSnrTracksLinkBudget) {
  util::Rng rng(8);
  BermacConfig cfg = quick_config();
  cfg.rayleigh = false;
  cfg.num_taps = 1;
  cfg.use_stbc = false;
  const BermacResult r = run_bermac(cfg, rng);
  EXPECT_NEAR(r.mean_snr_db,
              phy::snr_per_subcarrier_db(cfg.tx_dbm, cfg.path_loss_db,
                                         cfg.width),
              0.6);
}

TEST(Bermac, StbcMeasuredSnrGainsDiversity) {
  // 2x2 MRC over 4 unit-mean paths with per-antenna power P/2:
  // E[gain] = 4 * P/2 = 2P -> ~3 dB above the SISO budget.
  BermacConfig cfg = quick_config();
  cfg.packets = 60;
  util::Rng r1(9);
  const BermacResult stbc = run_bermac(cfg, r1);
  cfg.use_stbc = false;
  util::Rng r2(9);
  const BermacResult siso = run_bermac(cfg, r2);
  EXPECT_NEAR(stbc.mean_snr_db - siso.mean_snr_db, 3.0, 1.5);
}

TEST(Bermac, StbcBeatsSisoAtSameBudget) {
  BermacConfig cfg = quick_config();
  cfg.packets = 50;
  cfg.path_loss_db = 99.0;
  cfg.tx_dbm = 8.0;
  util::Rng r1(10);
  const BermacResult stbc = run_bermac(cfg, r1);
  cfg.use_stbc = false;
  util::Rng r2(10);
  const BermacResult siso = run_bermac(cfg, r2);
  EXPECT_LE(stbc.ber(), siso.ber());
}

TEST(Bermac, ConstellationCaptureWorks) {
  util::Rng rng(11);
  BermacConfig cfg = quick_config();
  cfg.capture_symbols = 500;
  const BermacResult r = run_bermac(cfg, rng);
  EXPECT_EQ(r.constellation.size(), 500u);
  EXPECT_GT(r.evm_rms, 0.0);
}

TEST(Bermac, EvmGrowsWhenBonding) {
  // Fig. 2: wider channel at the same Tx -> fuzzier constellation.
  BermacConfig cfg = quick_config();
  cfg.packets = 10;
  cfg.capture_symbols = 2000;
  cfg.path_loss_db = 92.0;
  util::Rng r1(12);
  const BermacResult on20 = run_bermac(cfg, r1);
  cfg.width = phy::ChannelWidth::k40MHz;
  util::Rng r2(12);
  const BermacResult on40 = run_bermac(cfg, r2);
  EXPECT_GT(on40.evm_rms, on20.evm_rms);
}

TEST(Bermac, DqpskRoundTripAtHighSnr) {
  util::Rng rng(13);
  BermacConfig cfg = quick_config();
  cfg.dqpsk = true;
  cfg.tx_dbm = 20.0;
  cfg.path_loss_db = 70.0;
  cfg.rayleigh = false;
  const BermacResult r = run_bermac(cfg, rng);
  EXPECT_EQ(r.bit_errors, 0);
}

TEST(Bermac, UncodedBerTracksTheoryOnAwgn) {
  // Fig. 3(a): measured points should sit near the theoretical QPSK curve
  // when fading is disabled (pure AWGN).
  BermacConfig cfg;
  cfg.packets = 60;
  cfg.packet_bytes = 500;
  cfg.use_stbc = false;
  cfg.rayleigh = false;
  cfg.num_taps = 1;
  cfg.tx_dbm = 0.0;
  cfg.path_loss_db = 95.5;  // ~6.4 dB per-subcarrier SNR
  util::Rng rng(14);
  const BermacResult r = run_bermac(cfg, rng);
  const double theory =
      phy::uncoded_ber_db(phy::Modulation::kQpsk, r.mean_snr_db);
  ASSERT_GT(r.ber(), 0.0);
  const double ratio = r.ber() / theory;
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
}

}  // namespace
}  // namespace acorn::baseband
