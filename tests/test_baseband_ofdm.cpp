#include "baseband/ofdm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "baseband/qpsk.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace acorn::baseband {
namespace {

TEST(Ofdm, SubcarrierCountsMatchPaper) {
  const Ofdm o20(phy::ChannelWidth::k20MHz);
  const Ofdm o40(phy::ChannelWidth::k40MHz);
  EXPECT_EQ(o20.num_data_subcarriers(), 52);
  EXPECT_EQ(o20.num_pilot_subcarriers(), 4);
  EXPECT_EQ(o40.num_data_subcarriers(), 108);
  EXPECT_EQ(o40.num_pilot_subcarriers(), 6);
}

TEST(Ofdm, FftSizes) {
  EXPECT_EQ(Ofdm(phy::ChannelWidth::k20MHz).fft_size(), 64);
  EXPECT_EQ(Ofdm(phy::ChannelWidth::k40MHz).fft_size(), 128);
}

TEST(Ofdm, CyclicPrefixIsQuarterSymbol) {
  const Ofdm o20(phy::ChannelWidth::k20MHz);
  EXPECT_EQ(o20.cp_length(), 16);
  EXPECT_EQ(o20.symbol_length(), 80);
  const Ofdm o40(phy::ChannelWidth::k40MHz);
  EXPECT_EQ(o40.cp_length(), 32);
  EXPECT_EQ(o40.symbol_length(), 160);
}

TEST(Ofdm, SampleRates) {
  EXPECT_DOUBLE_EQ(Ofdm(phy::ChannelWidth::k20MHz).sample_rate_hz(), 20e6);
  EXPECT_DOUBLE_EQ(Ofdm(phy::ChannelWidth::k40MHz).sample_rate_hz(), 40e6);
}

TEST(Ofdm, DcBinNeverUsed) {
  for (const auto width :
       {phy::ChannelWidth::k20MHz, phy::ChannelWidth::k40MHz}) {
    const Ofdm ofdm(width);
    for (int bin : ofdm.data_bins()) EXPECT_NE(bin, 0);
    for (int bin : ofdm.pilot_bins()) EXPECT_NE(bin, 0);
  }
}

TEST(Ofdm, BinsAreDisjointAndInRange) {
  for (const auto width :
       {phy::ChannelWidth::k20MHz, phy::ChannelWidth::k40MHz}) {
    const Ofdm ofdm(width);
    std::vector<char> used(static_cast<std::size_t>(ofdm.fft_size()), 0);
    for (int bin : ofdm.data_bins()) {
      ASSERT_GE(bin, 0);
      ASSERT_LT(bin, ofdm.fft_size());
      EXPECT_EQ(used[static_cast<std::size_t>(bin)], 0);
      used[static_cast<std::size_t>(bin)] = 1;
    }
    for (int bin : ofdm.pilot_bins()) {
      EXPECT_EQ(used[static_cast<std::size_t>(bin)], 0);
      used[static_cast<std::size_t>(bin)] = 1;
    }
  }
}

TEST(Ofdm, NumOfdmSymbolsRoundsUp) {
  const Ofdm ofdm(phy::ChannelWidth::k20MHz);
  EXPECT_EQ(ofdm.num_ofdm_symbols(1), 1u);
  EXPECT_EQ(ofdm.num_ofdm_symbols(52), 1u);
  EXPECT_EQ(ofdm.num_ofdm_symbols(53), 2u);
  EXPECT_EQ(ofdm.num_ofdm_symbols(104), 2u);
}

TEST(Ofdm, ModulateProducesRequestedAveragePower) {
  util::Rng rng(3);
  const Ofdm ofdm(phy::ChannelWidth::k20MHz);
  std::vector<std::uint8_t> bits(52 * 2 * 40);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
  const auto symbols = qpsk_modulate(bits);
  const double p_mw = util::dbm_to_mw(10.0);
  const auto tx = ofdm.modulate(symbols, p_mw);
  double power = 0.0;
  for (const Cx& x : tx) power += std::norm(x);
  power /= static_cast<double>(tx.size());
  EXPECT_NEAR(power / p_mw, 1.0, 0.15);
}

TEST(Ofdm, PerfectChannelRoundTrip) {
  util::Rng rng(4);
  for (const auto width :
       {phy::ChannelWidth::k20MHz, phy::ChannelWidth::k40MHz}) {
    const Ofdm ofdm(width);
    std::vector<std::uint8_t> bits(1000);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
    const auto symbols = qpsk_modulate(bits);
    const auto tx = ofdm.modulate(symbols, 1.0);
    const std::vector<Cx> flat(static_cast<std::size_t>(ofdm.fft_size()),
                               Cx(1.0, 0.0));
    const auto eq = ofdm.demodulate(tx, flat, symbols.size(), 1.0);
    ASSERT_EQ(eq.size(), symbols.size());
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      EXPECT_NEAR(std::abs(eq[i] - symbols[i]), 0.0, 1e-9) << i;
    }
  }
}

TEST(Ofdm, EqualizationUndoesScalarChannel) {
  util::Rng rng(5);
  const Ofdm ofdm(phy::ChannelWidth::k20MHz);
  std::vector<std::uint8_t> bits(208);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
  const auto symbols = qpsk_modulate(bits);
  auto tx = ofdm.modulate(symbols, 1.0);
  const Cx h = std::polar(0.5, 1.1);
  for (auto& x : tx) x *= h;
  const std::vector<Cx> channel(static_cast<std::size_t>(ofdm.fft_size()), h);
  const auto eq = ofdm.demodulate(tx, channel, symbols.size(), 1.0);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_NEAR(std::abs(eq[i] - symbols[i]), 0.0, 1e-9);
  }
}

TEST(Ofdm, DemodulateChecksArguments) {
  const Ofdm ofdm(phy::ChannelWidth::k20MHz);
  const std::vector<Cx> short_rx(10);
  const std::vector<Cx> flat(64, Cx(1.0, 0.0));
  EXPECT_THROW(ofdm.demodulate(short_rx, flat, 52, 1.0),
               std::invalid_argument);
  const std::vector<Cx> wrong_h(32, Cx(1.0, 0.0));
  const std::vector<Cx> rx(80);
  EXPECT_THROW(ofdm.demodulate(rx, wrong_h, 52, 1.0), std::invalid_argument);
}

TEST(Ofdm, ExtractBinsMatchesModulatedGrid) {
  util::Rng rng(6);
  const Ofdm ofdm(phy::ChannelWidth::k20MHz);
  std::vector<std::uint8_t> bits(104);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
  const auto symbols = qpsk_modulate(bits);
  const auto tx = ofdm.modulate(symbols, 1.0);
  // Flattened layout: symbol s starts at s * num_data_subcarriers().
  const auto bins = ofdm.extract_bins(tx, 1);
  ASSERT_EQ(bins.size(), 52u);
  const double amp = ofdm.subcarrier_amplitude(1.0);
  for (std::size_t k = 0; k < symbols.size(); ++k) {
    EXPECT_NEAR(std::abs(bins[k] / amp - symbols[k]), 0.0, 1e-9);
  }
}

TEST(Ofdm, SubcarrierAmplitudeRejectsBadPower) {
  const Ofdm ofdm(phy::ChannelWidth::k20MHz);
  EXPECT_THROW(ofdm.subcarrier_amplitude(0.0), std::invalid_argument);
  EXPECT_THROW(ofdm.subcarrier_amplitude(-1.0), std::invalid_argument);
}

TEST(Ofdm, SamePowerMeansLowerPerSubcarrierAmplitudeOn40) {
  // The CB micro-effect at waveform level: same total power spread over
  // more carriers -> smaller amplitude each.
  const Ofdm o20(phy::ChannelWidth::k20MHz);
  const Ofdm o40(phy::ChannelWidth::k40MHz);
  const double a20 = o20.subcarrier_amplitude(1.0);
  const double a40 = o40.subcarrier_amplitude(1.0);
  // amp ~ N / sqrt(N_used): compare per-subcarrier *received* energy by
  // normalizing out the IFFT size: energy_sc = (amp/N)^2.
  const double e20 = (a20 / 64.0) * (a20 / 64.0);
  const double e40 = (a40 / 128.0) * (a40 / 128.0);
  EXPECT_NEAR(util::lin_to_db(e20 / e40), 10.0 * std::log10(114.0 / 56.0),
              1e-9);
}

}  // namespace
}  // namespace acorn::baseband
