#include "service/wire.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace acorn::service {
namespace {

// Structural equality via the codec itself: two messages are equal iff
// they encode to the same bytes (the codec is canonical — no padding,
// no optional fields).
std::vector<std::uint8_t> bytes_of(std::uint32_t seq, const Message& m) {
  return encode_frame(seq, m);
}

net::Channel random_channel(util::Rng& rng) {
  if (rng.uniform() < 0.5) {
    return net::Channel::basic(
        static_cast<int>(rng.uniform_int(0, 11)));
  }
  return net::Channel::bonded(static_cast<int>(rng.uniform_int(0, 5)));
}

std::string random_string(util::Rng& rng, int max_len) {
  const int n = static_cast<int>(rng.uniform_int(0, max_len));
  std::string s;
  s.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(rng.uniform_int(32, 126)));
  }
  return s;
}

std::vector<std::uint8_t> random_blob(util::Rng& rng, int max_len) {
  const int n = static_cast<int>(rng.uniform_int(0, max_len));
  std::vector<std::uint8_t> b;
  b.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    b.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
  }
  return b;
}

Message random_message(util::Rng& rng) {
  const auto u32 = [&rng] {
    return static_cast<std::uint32_t>(rng.next_u64());
  };
  const auto u64 = [&rng] { return rng.next_u64(); };
  switch (rng.uniform_int(0, 16)) {
    case 0:
      return RegisterWlan{u32(), random_string(rng, 200)};
    case 1:
      return RemoveWlan{u32()};
    case 2:
      return ClientJoin{u32(), u32()};
    case 3:
      return ClientLeave{u32(), u32()};
    case 4:
      return SnrUpdate{u32(), u32(), u32(), rng.uniform(-10.0, 150.0)};
    case 5:
      return LoadUpdate{u32(), u32(), rng.uniform()};
    case 6:
      return ForceReconfigure{u32()};
    case 7:
      return QueryConfig{u32()};
    case 8:
      return QueryStats{};
    case 9:
      return Shutdown{};
    case 10:
      return FollowLog{};
    case 11:
      return SnapshotFrame{random_blob(rng, 300)};
    case 12: {
      LogRecordFrame r;
      r.wlan_id = u32();
      r.record_seq = u64();
      r.payload = random_blob(rng, 120);
      return r;
    }
    case 13:
      return OkReply{static_cast<std::int32_t>(u32())};
    case 14:
      return ErrorReply{static_cast<std::uint16_t>(rng.uniform_int(1, 4)),
                        random_string(rng, 60)};
    case 15: {
      ConfigReply r;
      r.wlan_id = u32();
      r.epoch = u64();
      r.events_applied = u64();
      r.total_goodput_bps = rng.uniform(0.0, 1e9);
      const int n_clients = static_cast<int>(rng.uniform_int(0, 12));
      for (int i = 0; i < n_clients; ++i) {
        r.association.push_back(
            static_cast<int>(rng.uniform_int(-1, 5)));
      }
      const int n_aps = static_cast<int>(rng.uniform_int(0, 6));
      for (int i = 0; i < n_aps; ++i) {
        r.allocated.push_back(random_channel(rng));
        r.operating.push_back(random_channel(rng));
      }
      return r;
    }
    default: {
      StatsReply r;
      r.num_wlans = u32();
      r.frames_rx = u64();
      r.events_total = u64();
      r.protocol_errors = u64();
      r.epochs_total = u64();
      r.snapshots_written = u64();
      r.wal_records = u64();
      r.wal_flushes = u64();
      r.channel_switches = u64();
      r.width_switches = u64();
      r.assoc_changes = u64();
      r.oracle_cell_evals = u64();
      r.oracle_cell_hits = u64();
      r.oracle_share_evals = u64();
      r.oracle_share_hits = u64();
      r.last_epoch_ms = rng.uniform(0.0, 1e4);
      const int n = static_cast<int>(rng.uniform_int(0, 32));
      for (int i = 0; i < n; ++i) r.latency_us_log2.push_back(u64());
      r.wal_syncs = u64();
      r.wal_coalesced_events = u64();
      const int n_sync = static_cast<int>(rng.uniform_int(0, 32));
      for (int i = 0; i < n_sync; ++i) r.wal_sync_us_log2.push_back(u64());
      const int n_batch = static_cast<int>(rng.uniform_int(0, 32));
      for (int i = 0; i < n_batch; ++i) r.wal_batch_log2.push_back(u64());
      return r;
    }
  }
}

TEST(ServiceWire, RandomizedRoundTripAllTypes) {
  util::Rng rng(0xAC0121);
  FrameBuffer buffer;
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint32_t seq = static_cast<std::uint32_t>(rng.next_u64());
    const Message msg = random_message(rng);
    const std::vector<std::uint8_t> wire = encode_frame(seq, msg);
    // Feed the stream in random-sized chunks, as a socket would.
    std::size_t off = 0;
    std::optional<Frame> got;
    while (off < wire.size()) {
      ASSERT_FALSE(got.has_value());
      const std::size_t n = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(wire.size() - off)));
      buffer.append(wire.data() + off, n);
      off += n;
      if (auto f = buffer.next()) got = std::move(f);
    }
    ASSERT_TRUE(got.has_value()) << "trial " << trial;
    EXPECT_EQ(got->seq, seq);
    EXPECT_EQ(type_of(got->msg), type_of(msg));
    EXPECT_EQ(bytes_of(seq, got->msg), wire) << "trial " << trial;
    EXPECT_EQ(buffer.buffered(), 0u);
  }
}

TEST(ServiceWire, PipelinedFramesComeBackInOrder) {
  util::Rng rng(7);
  std::vector<Message> msgs;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 40; ++i) {
    msgs.push_back(random_message(rng));
    const auto wire =
        encode_frame(static_cast<std::uint32_t>(i), msgs.back());
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  FrameBuffer buffer;
  buffer.append(stream.data(), stream.size());
  for (int i = 0; i < 40; ++i) {
    const std::optional<Frame> f = buffer.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->seq, static_cast<std::uint32_t>(i));
    EXPECT_EQ(bytes_of(f->seq, f->msg),
              bytes_of(f->seq, msgs[static_cast<std::size_t>(i)]));
  }
  EXPECT_FALSE(buffer.next().has_value());
}

TEST(ServiceWire, TruncatedFrameIsNotAnError) {
  const std::vector<std::uint8_t> wire =
      encode_frame(9, SnrUpdate{1, 2, 3, 95.5});
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameBuffer buffer;
    buffer.append(wire.data(), cut);
    EXPECT_FALSE(buffer.next().has_value()) << "cut at " << cut;
    buffer.append(wire.data() + cut, wire.size() - cut);
    EXPECT_TRUE(buffer.next().has_value()) << "cut at " << cut;
  }
}

TEST(ServiceWire, GarbageLengthPrefixRejected) {
  // Length prefix above kMaxFramePayload: reject immediately, without
  // waiting for (or allocating) the impossible payload.
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::uint8_t prefix[4];
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<std::uint8_t>(huge >> (8 * i));
  }
  FrameBuffer buffer;
  buffer.append(prefix, 4);
  EXPECT_THROW(buffer.next(), WireError);
}

TEST(ServiceWire, UndersizedPayloadRejected) {
  // A 3-byte payload cannot hold the [version][type][seq] header.
  const std::uint8_t wire[] = {3, 0, 0, 0, 1, 0, 1};
  FrameBuffer buffer;
  buffer.append(wire, sizeof(wire));
  EXPECT_THROW(buffer.next(), WireError);
}

TEST(ServiceWire, BadVersionAndTypeRejected) {
  std::vector<std::uint8_t> wire = encode_frame(1, QueryStats{});
  {
    std::vector<std::uint8_t> bad = wire;
    bad[4] = 0xff;  // version low byte
    FrameBuffer buffer;
    buffer.append(bad.data(), bad.size());
    EXPECT_THROW(buffer.next(), WireError);
  }
  {
    std::vector<std::uint8_t> bad = wire;
    bad[6] = 0x7f;  // type low byte -> unknown
    FrameBuffer buffer;
    buffer.append(bad.data(), bad.size());
    EXPECT_THROW(buffer.next(), WireError);
  }
}

TEST(ServiceWire, TruncatedBodyAndTrailingBytesRejected) {
  const std::vector<std::uint8_t> wire =
      encode_frame(3, SnrUpdate{1, 2, 3, 95.5});
  {
    // Shrink the body by one byte but fix up the length prefix so the
    // frame "completes": decode must throw, not read out of bounds.
    std::vector<std::uint8_t> bad(wire.begin(), wire.end() - 1);
    const std::uint32_t len =
        static_cast<std::uint32_t>(bad.size()) - 4;
    for (int i = 0; i < 4; ++i) {
      bad[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(len >> (8 * i));
    }
    FrameBuffer buffer;
    buffer.append(bad.data(), bad.size());
    EXPECT_THROW(buffer.next(), WireError);
  }
  {
    std::vector<std::uint8_t> bad = wire;
    bad.push_back(0xee);
    const std::uint32_t len =
        static_cast<std::uint32_t>(bad.size()) - 4;
    for (int i = 0; i < 4; ++i) {
      bad[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(len >> (8 * i));
    }
    FrameBuffer buffer;
    buffer.append(bad.data(), bad.size());
    EXPECT_THROW(buffer.next(), WireError);
  }
}

TEST(ServiceWire, MalformedChannelRejected) {
  // Hand-craft a ConfigReply whose channel word claims a bonded channel
  // on an odd primary (bonded primaries are always even).
  ByteWriter w;
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(MsgType::kConfigReply));
  w.u32(1);     // seq
  w.u32(5);     // wlan_id
  w.u64(0);     // epoch
  w.u64(0);     // events_applied
  w.f64(0.0);   // total_goodput_bps
  w.u32(0);     // association: empty
  w.u32(1);     // allocated: one channel
  w.u8(1);      // bonded
  w.i32(3);     // odd primary -> invalid
  w.u32(0);     // operating: empty
  EXPECT_THROW(decode_payload(w.data()), WireError);
}

TEST(ServiceWire, DoubleBitPatternsSurvive) {
  // Doubles travel as IEEE-754 bit patterns: denormals, infinities and
  // negative zero all round-trip bit-exactly.
  for (double v : {0.0, -0.0, 1e-310, 95.5,
                   std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::max()}) {
    const std::vector<std::uint8_t> wire =
        encode_frame(1, SnrUpdate{0, 0, 0, v});
    FrameBuffer buffer;
    buffer.append(wire.data(), wire.size());
    const std::optional<Frame> f = buffer.next();
    ASSERT_TRUE(f.has_value());
    const auto& snr = std::get<SnrUpdate>(f->msg);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(snr.loss_db),
              std::bit_cast<std::uint64_t>(v));
  }
}

}  // namespace
}  // namespace acorn::service
