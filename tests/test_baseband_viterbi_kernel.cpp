// Randomized equivalence suite for the butterfly Viterbi kernel against
// the kept reference decoder (viterbi_reference.hpp), which derives its
// trellis independently from the generator polynomials. Hard decoding
// must be bit-exact; soft decoding is exact whenever the LLRs are
// integers within +/-kSoftLevelMax (quantization scale 1). The SIMD and
// scalar kernels must agree on every decision bitmask and final metric.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <random>
#include <vector>

#include "baseband/convolutional.hpp"
#include "baseband/viterbi_kernel.hpp"
#include "baseband/viterbi_reference.hpp"

// Global allocation counter for the zero-allocation tests. Overriding
// operator new here affects this test binary only.
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace acorn::baseband {
namespace {

constexpr phy::CodeRate kAllRates[] = {
    phy::CodeRate::kRate12, phy::CodeRate::kRate23, phy::CodeRate::kRate34,
    phy::CodeRate::kRate56};

std::size_t pattern_period(phy::CodeRate rate) {
  switch (rate) {
    case phy::CodeRate::kRate12: return 2;
    case phy::CodeRate::kRate23: return 4;
    case phy::CodeRate::kRate34: return 6;
    case phy::CodeRate::kRate56: return 10;
  }
  return 0;
}

std::vector<std::uint8_t> random_bits(std::mt19937_64& gen, std::size_t n) {
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(gen() & 1);
  return bits;
}

// Encode -> puncture -> flip some punctured bits -> depuncture: the hard
// stream a receiver would hand the decoder, erasures included.
std::vector<std::uint8_t> noisy_hard_stream(std::mt19937_64& gen,
                                            std::size_t payload,
                                            phy::CodeRate rate,
                                            bool terminated,
                                            double flip_prob) {
  const ConvolutionalCode code;
  const auto bits = random_bits(gen, payload);
  const auto coded = code.encode(bits, terminated);
  auto punct = puncture(coded, rate);
  std::bernoulli_distribution flip(flip_prob);
  for (auto& b : punct) {
    if (flip(gen)) b ^= 1;
  }
  return depuncture(punct, rate, coded.size());
}

TEST(ViterbiKernelHard, BitExactAcrossRatesAndTermination) {
  const ConvolutionalCode code;
  std::mt19937_64 gen(0xC0DEC0DEu);
  std::uniform_int_distribution<std::size_t> len(1, 320);
  for (const phy::CodeRate rate : kAllRates) {
    for (const bool terminated : {true, false}) {
      for (int trial = 0; trial < 24; ++trial) {
        const std::size_t payload = len(gen);
        const auto stream =
            noisy_hard_stream(gen, payload, rate, terminated, 0.08);
        const auto fast = code.decode(stream, terminated);
        const auto ref = reference::viterbi_decode(stream, terminated);
        ASSERT_EQ(fast, ref)
            << "rate period " << pattern_period(rate) << " terminated "
            << terminated << " payload " << payload << " trial " << trial;
      }
    }
  }
}

TEST(ViterbiKernelHard, LengthEdgesAroundPuncturePeriod) {
  // Payload lengths that land the coded length on, just before and just
  // after a puncture-period boundary exercise punctured_length's partial
  // prefix and the depuncture phase counter.
  const ConvolutionalCode code;
  std::mt19937_64 gen(0xED6Eu);
  for (const phy::CodeRate rate : kAllRates) {
    const std::size_t p = pattern_period(rate);
    std::vector<std::size_t> payloads = {1, 2, 3, p - 1, p, p + 1,
                                         2 * p - 1, 2 * p, 2 * p + 1,
                                         5 * p - 1, 5 * p, 5 * p + 1};
    for (const std::size_t payload : payloads) {
      if (payload == 0) continue;
      const auto stream =
          noisy_hard_stream(gen, payload, rate, /*terminated=*/true, 0.05);
      const auto fast = code.decode(stream, true);
      const auto ref = reference::viterbi_decode(stream, true);
      ASSERT_EQ(fast, ref)
          << "rate period " << p << " payload " << payload;
    }
  }
}

TEST(ViterbiKernelHard, AllErasureSpans) {
  // Whole puncture periods of erasures (a fade wiping out consecutive
  // symbols) force long runs of tied metrics: both decoders must break
  // every tie identically. The fully erased stream is the extreme case.
  const ConvolutionalCode code;
  std::mt19937_64 gen(0x5EEDu);
  for (const phy::CodeRate rate : kAllRates) {
    const std::size_t p = pattern_period(rate);
    for (int trial = 0; trial < 8; ++trial) {
      auto stream =
          noisy_hard_stream(gen, 60 + 3 * p, rate, /*terminated=*/true, 0.0);
      const std::size_t span = p * (2 + static_cast<std::size_t>(trial % 3));
      const std::size_t start =
          (gen() % (stream.size() - span)) & ~std::size_t{1};
      std::fill_n(stream.begin() + static_cast<std::ptrdiff_t>(start), span,
                  kErasedBit);
      ASSERT_EQ(code.decode(stream, true),
                reference::viterbi_decode(stream, true))
          << "rate period " << p << " erased [" << start << ", "
          << start + span << ")";
    }
  }
  // Everything erased: pure tie-break territory.
  for (const bool terminated : {true, false}) {
    const std::vector<std::uint8_t> erased(96, kErasedBit);
    EXPECT_EQ(code.decode(erased, terminated),
              reference::viterbi_decode(erased, terminated));
  }
}

TEST(ViterbiKernelSoft, ExactWithIntegerLlrs) {
  // Integer LLRs whose largest magnitude is exactly kSoftLevelMax
  // quantize with scale 1 (lrint is the identity), so the kernel must
  // reproduce the double-precision reference decoder bit for bit —
  // including the zero-LLR erasures depuncturing inserts.
  const ConvolutionalCode code;
  std::mt19937_64 gen(0x50F7u);
  std::uniform_int_distribution<int> level(-viterbi::kSoftLevelMax,
                                           viterbi::kSoftLevelMax);
  std::uniform_int_distribution<std::size_t> len(2, 200);
  for (const phy::CodeRate rate : kAllRates) {
    for (const bool terminated : {true, false}) {
      for (int trial = 0; trial < 16; ++trial) {
        const std::size_t payload = len(gen);
        const std::size_t coded_len =
            ConvolutionalCode::encoded_length(payload, terminated);
        std::vector<double> punct(punctured_length(coded_len, rate));
        for (auto& l : punct) l = static_cast<double>(level(gen));
        punct[gen() % punct.size()] =
            (gen() & 1) ? viterbi::kSoftLevelMax : -viterbi::kSoftLevelMax;
        const auto llrs = depuncture_soft(punct, rate, coded_len);
        const auto fast = code.decode_soft(llrs, terminated);
        const auto ref = reference::viterbi_decode_soft(llrs, terminated);
        ASSERT_EQ(fast, ref)
            << "rate period " << pattern_period(rate) << " terminated "
            << terminated << " payload " << payload << " trial " << trial;
      }
    }
  }
}

TEST(ViterbiKernelSoft, RecoversPayloadFromNoisyDoubleLlrs) {
  // Continuous LLRs exercise the quantizer: at a comfortable SNR the
  // quantized kernel and the double-precision reference must both
  // recover the payload exactly (statistical equivalence shows up as
  // identical decisions here; near-threshold behaviour is covered by the
  // phy-chain waterfall tests).
  const ConvolutionalCode code;
  std::mt19937_64 gen(0xF10A7u);
  std::normal_distribution<double> noise(0.0, 0.8);
  for (const phy::CodeRate rate : kAllRates) {
    for (int trial = 0; trial < 12; ++trial) {
      const auto bits = random_bits(gen, 240);
      const auto coded = code.encode(bits, true);
      std::vector<double> llr_coded(coded.size());
      for (std::size_t i = 0; i < coded.size(); ++i) {
        llr_coded[i] = (coded[i] ? -4.0 : 4.0) + noise(gen);
      }
      std::vector<double> punct(punctured_length(coded.size(), rate));
      {
        // Puncture the soft stream with the same pattern the bit
        // puncturer uses: a depunctured all-ones stream marks the kept
        // positions with 1 and the punctured ones with kErasedBit.
        const std::vector<std::uint8_t> ones(coded.size(), 1);
        const auto mask = depuncture(puncture(ones, rate), rate, coded.size());
        std::size_t cursor = 0;
        for (std::size_t i = 0; i < mask.size(); ++i) {
          if (mask[i] == 1) punct[cursor++] = llr_coded[i];
        }
      }
      const auto llrs = depuncture_soft(punct, rate, coded.size());
      EXPECT_EQ(code.decode_soft(llrs, true), bits)
          << "kernel, rate period " << pattern_period(rate);
      EXPECT_EQ(reference::viterbi_decode_soft(llrs, true), bits)
          << "reference, rate period " << pattern_period(rate);
    }
  }
}

TEST(ViterbiKernelForward, SimdMatchesScalarExactly) {
  // Decisions and final metrics must be bit-identical between the two
  // kernels at step counts below, at, and across the normalization
  // interval (and over many random level streams).
  std::mt19937_64 gen(0xACE5u);
  std::uniform_int_distribution<int> level(-viterbi::kSoftLevelMax,
                                           viterbi::kSoftLevelMax);
  const std::size_t interval = viterbi::kNormInterval;
  const std::size_t step_cases[] = {1,           interval - 1, interval,
                                    interval + 1, 10 * interval - 3,
                                    10 * interval, 401};
  for (const std::size_t steps : step_cases) {
    for (int trial = 0; trial < 6; ++trial) {
      std::vector<std::int16_t> levels(2 * steps);
      for (auto& l : levels) l = static_cast<std::int16_t>(level(gen));
      std::vector<std::uint64_t> dec_a(steps);
      std::vector<std::uint64_t> dec_b(steps);
      std::array<std::int16_t, viterbi::kNumStates> met_a;
      std::array<std::int16_t, viterbi::kNumStates> met_b;
      viterbi::forward(levels.data(), steps, dec_a.data(), met_a.data());
      viterbi::forward_scalar(levels.data(), steps, dec_b.data(),
                              met_b.data());
      ASSERT_EQ(dec_a, dec_b) << "steps " << steps << " trial " << trial;
      ASSERT_TRUE(std::equal(met_a.begin(), met_a.end(), met_b.begin()))
          << "steps " << steps << " trial " << trial;
    }
  }
}

std::size_t decode_alloc_count(bool soft, int iterations) {
  const ConvolutionalCode code;
  std::mt19937_64 gen(0xA110Cu);
  const auto bits = random_bits(gen, 400);
  const auto coded = code.encode(bits, true);
  std::vector<double> llrs(coded.begin(), coded.end());
  for (auto& l : llrs) l = l ? -3.0 : 3.0;
  std::vector<std::uint8_t> out(bits.size());
  ViterbiWorkspace ws;
  // Warm call sizes the workspace.
  if (soft) {
    code.decode_soft_into(llrs, out, ws);
  } else {
    code.decode_into(coded, out, ws);
  }
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < iterations; ++i) {
    if (soft) {
      code.decode_soft_into(llrs, out, ws);
    } else {
      code.decode_into(coded, out, ws);
    }
  }
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(out, bits);
  return after - before;
}

TEST(ViterbiKernelAllocation, WarmDecodeIsAllocationFree) {
  EXPECT_EQ(decode_alloc_count(/*soft=*/false, 8), 0u);
  EXPECT_EQ(decode_alloc_count(/*soft=*/true, 8), 0u);
}

}  // namespace
}  // namespace acorn::baseband
