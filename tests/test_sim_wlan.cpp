#include "sim/wlan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "testutil.hpp"

namespace acorn::sim {
namespace {

using testutil::CellSpec;
using testutil::ScenarioBuilder;

TEST(Wlan, ClientSnrMatchesLinkModel) {
  const Wlan wlan = testutil::topology1_builder().build();
  const double snr =
      wlan.client_snr_db(1, 2, phy::ChannelWidth::k20MHz);
  EXPECT_NEAR(snr, wlan.link_model().snr_db(
                       15.0, testutil::kGoodLinkLoss,
                       phy::ChannelWidth::k20MHz),
              1e-9);
}

TEST(Wlan, EvaluateValidatesSizes) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const Wlan wlan = b.build();
  const net::ChannelAssignment good = {net::Channel::basic(0),
                                       net::Channel::basic(1)};
  EXPECT_THROW(wlan.evaluate({0}, good), std::invalid_argument);
  EXPECT_THROW(wlan.evaluate(b.intended_association(),
                             {net::Channel::basic(0)}),
               std::invalid_argument);
}

TEST(Wlan, ClientsOfFiltersAssociation) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const Wlan wlan = b.build();
  const net::Association assoc = {0, 1, 1, net::kUnassociated};
  EXPECT_EQ(wlan.clients_of(assoc, 0), std::vector<int>{0});
  EXPECT_EQ(wlan.clients_of(assoc, 1), (std::vector<int>{1, 2}));
}

TEST(Wlan, UnassociatedClientContributesNothing) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const Wlan wlan = b.build();
  const net::ChannelAssignment ch = {net::Channel::basic(0),
                                     net::Channel::basic(2)};
  const net::Association all = b.intended_association();
  net::Association missing = all;
  missing[0] = net::kUnassociated;
  const double with_all = wlan.evaluate(all, ch).total_goodput_bps;
  const double with_missing = wlan.evaluate(missing, ch).total_goodput_bps;
  // The poor cell's remaining client gets everything the pair had and
  // more (one slow client fewer): total cannot drop.
  EXPECT_GE(with_missing, with_all * 0.99);
}

TEST(Wlan, IsolatedCellPrefersWidthByLinkClass) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}},
             CellSpec{{testutil::kPoorLinkLoss}}};
  const Wlan wlan = b.build();
  // Good cell: 40 MHz wins; poor cell: 20 MHz wins.
  EXPECT_GT(wlan.isolated_cell_bps(0, {0}, phy::ChannelWidth::k40MHz),
            wlan.isolated_cell_bps(0, {0}, phy::ChannelWidth::k20MHz));
  EXPECT_LT(wlan.isolated_cell_bps(1, {1}, phy::ChannelWidth::k40MHz),
            wlan.isolated_cell_bps(1, {1}, phy::ChannelWidth::k20MHz));
}

TEST(Wlan, IsolatedBestTakesMaxOverWidths) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}}};
  const Wlan wlan = b.build();
  const double best = wlan.isolated_best_bps(0, {0});
  EXPECT_DOUBLE_EQ(
      best, std::max(wlan.isolated_cell_bps(0, {0}, phy::ChannelWidth::k20MHz),
                     wlan.isolated_cell_bps(0, {0},
                                            phy::ChannelWidth::k40MHz)));
}

TEST(Wlan, IsolatedCellBitIdenticalToReference) {
  // Sweep client losses across the whole operating range (strong link
  // down past the association edge) so every RateTable segment is
  // exercised, then demand exact equality with the best_rate reference.
  std::vector<double> losses;
  for (double l = 60.0; l <= 118.0; l += 1.7) losses.push_back(l);
  ScenarioBuilder b;
  b.cells = {CellSpec{losses}};
  const Wlan wlan = b.build();
  std::vector<int> clients(losses.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    clients[i] = static_cast<int>(i);
  }
  for (phy::ChannelWidth width :
       {phy::ChannelWidth::k20MHz, phy::ChannelWidth::k40MHz}) {
    for (mac::TrafficType traffic :
         {mac::TrafficType::kUdp, mac::TrafficType::kTcp}) {
      EXPECT_EQ(wlan.isolated_cell_bps(0, clients, width, traffic),
                wlan.isolated_cell_bps_reference(0, clients, width, traffic));
      for (int c : clients) {
        EXPECT_EQ(wlan.isolated_cell_bps(0, {c}, width, traffic),
                  wlan.isolated_cell_bps_reference(0, {c}, width, traffic));
      }
    }
  }
  EXPECT_EQ(wlan.isolated_cell_bps(0, {}, phy::ChannelWidth::k20MHz), 0.0);
}

TEST(Wlan, ContentionHalvesThroughput) {
  ScenarioBuilder b;
  b.cells = {CellSpec{{testutil::kGoodLinkLoss}},
             CellSpec{{testutil::kGoodLinkLoss}}};
  b.ap_ap_loss_db = 90.0;  // within carrier sense
  const Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const net::ChannelAssignment same = {net::Channel::basic(0),
                                       net::Channel::basic(0)};
  const net::ChannelAssignment split = {net::Channel::basic(0),
                                        net::Channel::basic(1)};
  const Evaluation on_same = wlan.evaluate(assoc, same);
  const Evaluation on_split = wlan.evaluate(assoc, split);
  EXPECT_NEAR(on_same.total_goodput_bps / on_split.total_goodput_bps, 0.5,
              0.05);
  EXPECT_DOUBLE_EQ(on_same.per_ap[0].medium_share, 0.5);
  EXPECT_DOUBLE_EQ(on_split.per_ap[0].medium_share, 1.0);
}

TEST(Wlan, AnomalyVisibleAtCellLevel) {
  // Mixed cell: adding a poor client hurts the good client's share.
  ScenarioBuilder good_only;
  good_only.cells = {CellSpec{{testutil::kGoodLinkLoss}}};
  ScenarioBuilder mixed;
  mixed.cells = {
      CellSpec{{testutil::kGoodLinkLoss, testutil::kPoorLinkLoss}}};
  const Wlan wg = good_only.build();
  const Wlan wm = mixed.build();
  const net::ChannelAssignment ch = {net::Channel::basic(0)};
  const Evaluation eg = wg.evaluate(good_only.intended_association(), ch);
  const Evaluation em = wm.evaluate(mixed.intended_association(), ch);
  const double good_alone = eg.per_ap[0].client_goodput_bps[0];
  const double good_with_poor = em.per_ap[0].client_goodput_bps[0];
  EXPECT_LT(good_with_poor, 0.25 * good_alone);
}

TEST(Wlan, TcpBelowUdp) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const Wlan wlan = b.build();
  const net::ChannelAssignment ch = {net::Channel::basic(0),
                                     net::Channel::basic(2)};
  const double udp = wlan.evaluate(b.intended_association(), ch,
                                   mac::TrafficType::kUdp)
                         .total_goodput_bps;
  const double tcp = wlan.evaluate(b.intended_association(), ch,
                                   mac::TrafficType::kTcp)
                         .total_goodput_bps;
  EXPECT_LT(tcp, udp);
  EXPECT_GT(tcp, 0.3 * udp);
}

TEST(Wlan, StatsBookkeepingConsistent) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const Wlan wlan = b.build();
  const net::ChannelAssignment ch = {net::Channel::basic(0),
                                     net::Channel::bonded(1)};
  const Evaluation eval = wlan.evaluate(b.intended_association(), ch);
  double total = 0.0;
  for (const ApStats& s : eval.per_ap) {
    EXPECT_EQ(s.client_ids.size(),
              static_cast<std::size_t>(s.num_clients));
    EXPECT_EQ(s.client_goodput_bps.size(), s.client_ids.size());
    double cell = 0.0;
    for (double g : s.client_goodput_bps) cell += g;
    EXPECT_NEAR(cell, s.goodput_bps, 1.0);
    total += s.goodput_bps;
  }
  EXPECT_NEAR(total, eval.total_goodput_bps, 1.0);
}

TEST(Wlan, DelayMatchesWidthOfAssignedChannel) {
  const ScenarioBuilder b = testutil::topology1_builder();
  const Wlan wlan = b.build();
  // Poor client: delay on 40 MHz must exceed delay on 20 MHz.
  const double d20 =
      wlan.client_delay_s_per_bit(0, 0, phy::ChannelWidth::k20MHz);
  const double d40 =
      wlan.client_delay_s_per_bit(0, 0, phy::ChannelWidth::k40MHz);
  EXPECT_GT(d40, d20);
}

}  // namespace
}  // namespace acorn::sim
