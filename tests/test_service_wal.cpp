// Durability tests for the write-ahead event log, in both layouts:
// the per-shard `wlan_<id>.wal` files and the shared `seg_<n>.walseg`
// group-commit segments.
//
// Three layers:
//  * file level — both codecs round-trip, and the loaders stop at torn
//    tails, flipped bits, and ordinal gaps while keeping the valid
//    prefix; shared segments interleave WLANs and honor seq-0
//    tombstones (a dead incarnation's records must not leak into a
//    reused id);
//  * crash level — SIGKILL a daemon at randomized points inside an event
//    burst (including inside the group-commit flush window): after
//    restart the recovered state must contain every acknowledged event
//    and be byte-identical to a never-killed reference daemon fed the
//    same event prefix — in either WAL mode, including recovering one
//    mode's files with the other;
//  * replication level — a warm standby following the leader's log
//    converges to byte-identical per-WLAN state, tracks WLANs registered
//    after it attached, and tears down removed ones.
#include "service/eventlog.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/snapshot.hpp"
#include "service/wire.hpp"

namespace acorn::service {
namespace {

constexpr const char* kDeployment = R"(# test floor: 3 APs, 8 clients
pathloss exponent 3.5
pathloss shadowing 4
channels 12
seed 7
ap 10 10
ap 50 10
ap 30 40
client 12 12
client 14  8
client 48 14
client 52  9
client 28 38
client 35 42
client 30 25
client 45 30
)";

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/acorn_wal_XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Client connect_with_retry(const std::string& unix_path) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    try {
      return Client::connect_unix(unix_path);
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  throw std::runtime_error("daemon never came up at " + unix_path);
}

// The deterministic event script both the victim and the reference
// daemon play. Only shard events (each advances events_applied by one);
// registration is done separately.
std::vector<Message> event_script_for(std::uint32_t wlan) {
  std::vector<Message> ev;
  for (std::uint32_t c = 0; c < 8; ++c) ev.push_back(ClientJoin{wlan, c});
  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t c = 0; c < 8; ++c) {
      ev.push_back(
          SnrUpdate{wlan, c % 3, c, 80.0 + 2.0 * c + 0.5 * round});
    }
    ev.push_back(LoadUpdate{wlan, round % 8u, 0.25 * (round + 1)});
    ev.push_back(ForceReconfigure{wlan});
  }
  return ev;
}

std::vector<Message> event_script() { return event_script_for(1); }

// Shared-layout segment files present in `dir`, ascending index.
std::vector<std::string> segment_files(const std::string& dir) {
  std::vector<std::string> out;
  for (std::uint64_t i = 1; i < 1000; ++i) {
    const std::string path = wal_segment_path(dir, i);
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0) out.push_back(path);
  }
  return out;
}

std::vector<std::uint8_t> state_bytes(const Daemon& daemon,
                                      std::uint32_t wlan_id) {
  const std::optional<WlanSnapshot> snap = daemon.wlan_state(wlan_id);
  if (!snap.has_value()) return {};
  return encode_snapshot(*snap);
}

// --------------------------------------------------------------------
// File level.

TEST(ServiceWal, WriterRoundTripAndUnsyncedTailLost) {
  const TempDir dir;
  std::vector<std::vector<std::uint8_t>> payloads;
  {
    WalWriter w;
    ASSERT_TRUE(w.open(dir.path(), 3));
    for (std::uint64_t s = 1; s <= 5; ++s) {
      payloads.push_back(encode_payload(
          0, Message{SnrUpdate{3, 0, static_cast<std::uint32_t>(s), 80.0}}));
      w.append(s, payloads.back());
    }
    ASSERT_TRUE(w.sync());
    // Buffered but never synced: these two must not survive the close
    // (they model events whose replies were never released).
    w.append(6, payloads.front());
    w.append(7, payloads.front());
    EXPECT_GT(w.buffered_bytes(), 0u);
  }
  const WalLoadResult res = load_wal(dir.path(), 3);
  EXPECT_TRUE(res.clean);
  ASSERT_EQ(res.records.size(), 5u);
  for (std::size_t i = 0; i < res.records.size(); ++i) {
    EXPECT_EQ(res.records[i].seq, i + 1);
    EXPECT_EQ(res.records[i].payload, payloads[i]);
    const Frame f = decode_payload(res.records[i].payload);
    ASSERT_TRUE(std::holds_alternative<SnrUpdate>(f.msg));
    EXPECT_EQ(std::get<SnrUpdate>(f.msg).client, i + 1);
  }
}

TEST(ServiceWal, MissingAndEmptyLogsAreClean) {
  const TempDir dir;
  const WalLoadResult missing = load_wal(dir.path(), 1);
  EXPECT_TRUE(missing.clean);
  EXPECT_TRUE(missing.records.empty());

  WalWriter w;
  ASSERT_TRUE(w.open(dir.path(), 1));
  ASSERT_TRUE(w.sync());  // header-less empty file
  const WalLoadResult empty = load_wal(dir.path(), 1);
  EXPECT_TRUE(empty.clean);
  EXPECT_TRUE(empty.records.empty());
}

TEST(ServiceWal, TornTailKeepsValidPrefix) {
  const TempDir dir;
  WalWriter w;
  ASSERT_TRUE(w.open(dir.path(), 9));
  const std::vector<std::uint8_t> payload =
      encode_payload(0, Message{ClientLeave{9, 0}});
  for (std::uint64_t s = 1; s <= 4; ++s) w.append(s, payload);
  ASSERT_TRUE(w.sync());
  w.close();

  // Chop 5 bytes off the end: the final record loses part of its
  // checksum trailer, exactly what a crash mid-write leaves behind.
  const std::string path = wal_path(dir.path(), 9);
  struct stat st{};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  ASSERT_EQ(::truncate(path.c_str(), st.st_size - 5), 0);

  const WalLoadResult res = load_wal(dir.path(), 9);
  EXPECT_FALSE(res.clean);
  ASSERT_EQ(res.records.size(), 3u);
  EXPECT_EQ(res.records.back().seq, 3u);
}

TEST(ServiceWal, BitFlipStopsAtCorruptRecord) {
  const TempDir dir;
  WalWriter w;
  ASSERT_TRUE(w.open(dir.path(), 9));
  const std::vector<std::uint8_t> payload =
      encode_payload(0, Message{ClientLeave{9, 0}});
  for (std::uint64_t s = 1; s <= 4; ++s) w.append(s, payload);
  ASSERT_TRUE(w.sync());
  w.close();

  // Flip one bit in the last byte (inside record 4's checksum).
  const std::string path = wal_path(dir.path(), 9);
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
  const int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
  std::fputc(byte ^ 0x40, f);
  std::fclose(f);

  const WalLoadResult res = load_wal(dir.path(), 9);
  EXPECT_FALSE(res.clean);
  ASSERT_EQ(res.records.size(), 3u);
}

TEST(ServiceWal, OrdinalGapRefusesRemainder) {
  const TempDir dir;
  const std::vector<std::uint8_t> payload =
      encode_payload(0, Message{ClientLeave{2, 1}});
  // Hand-craft header + records 1, 2, 4: the gap invalidates the rest.
  std::vector<std::uint8_t> bytes;
  {
    ByteWriter hdr;
    hdr.u32(kWalMagic);
    hdr.u16(kWalVersion);
    bytes.insert(bytes.end(), hdr.data().begin(), hdr.data().end());
  }
  for (const std::uint64_t seq : {1ull, 2ull, 4ull}) {
    const std::vector<std::uint8_t> rec = encode_wal_record(seq, payload);
    bytes.insert(bytes.end(), rec.begin(), rec.end());
  }
  std::FILE* f = std::fopen(wal_path(dir.path(), 2).c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  const WalLoadResult res = load_wal(dir.path(), 2);
  EXPECT_FALSE(res.clean);
  ASSERT_EQ(res.records.size(), 2u);
  EXPECT_EQ(res.records.back().seq, 2u);
}

// --------------------------------------------------------------------
// File level: shared group-commit segments.

TEST(ServiceWal, SegmentRoundTripSplitsPerWlan) {
  const TempDir dir;
  const std::vector<std::uint8_t> p1 =
      encode_payload(0, Message{ClientJoin{1, 0}});
  const std::vector<std::uint8_t> p2 =
      encode_payload(0, Message{ClientJoin{2, 0}});
  {
    WalSegmentWriter w;
    ASSERT_TRUE(w.open(dir.path(), 1));
    // Interleave two WLANs' records, the shape one coalesced fdatasync
    // covers in production.
    w.append(1, 1, p1);
    w.append(2, 1, p2);
    w.append(1, 2, p1);
    w.append(2, 2, p2);
    w.append(1, 3, p1);
    ASSERT_TRUE(w.sync());
    // Buffered but never synced: must not survive the close.
    w.append(2, 3, p2);
    EXPECT_GT(w.buffered_bytes(), 0u);
  }
  const SegmentLoadResult res = load_wal_segments(dir.path());
  EXPECT_TRUE(res.clean);
  EXPECT_EQ(res.next_index, 2u);
  ASSERT_EQ(res.records.size(), 2u);
  ASSERT_EQ(res.records.at(1).size(), 3u);
  ASSERT_EQ(res.records.at(2).size(), 2u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(res.records.at(1)[i].seq, i + 1);
    EXPECT_EQ(res.records.at(1)[i].payload, p1);
  }
  ASSERT_EQ(res.segments.size(), 1u);
  EXPECT_EQ(res.segments[0].index, 1u);
  EXPECT_EQ(res.segments[0].max_seq.at(1), 3u);
  EXPECT_EQ(res.segments[0].max_seq.at(2), 2u);
}

TEST(ServiceWal, SegmentTornTailKeepsPrefixAndEarlierSegments) {
  const TempDir dir;
  const std::vector<std::uint8_t> payload =
      encode_payload(0, Message{ClientLeave{1, 0}});
  {
    WalSegmentWriter w;
    ASSERT_TRUE(w.open(dir.path(), 1));
    w.append(1, 1, payload);
    w.append(1, 2, payload);
    ASSERT_TRUE(w.sync());
  }
  {
    WalSegmentWriter w;
    ASSERT_TRUE(w.open(dir.path(), 2));
    w.append(1, 3, payload);
    w.append(1, 4, payload);
    ASSERT_TRUE(w.sync());
  }
  // Tear the newest segment mid-record, as a crash during the
  // coalesced write would.
  const std::string path = wal_segment_path(dir.path(), 2);
  struct stat st{};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  ASSERT_EQ(::truncate(path.c_str(), st.st_size - 5), 0);

  const SegmentLoadResult res = load_wal_segments(dir.path());
  EXPECT_FALSE(res.clean);
  EXPECT_EQ(res.next_index, 3u);  // never append to a torn tail
  ASSERT_EQ(res.records.at(1).size(), 3u);
  EXPECT_EQ(res.records.at(1).back().seq, 3u);
}

TEST(ServiceWal, SegmentBitFlipStopsAtCorruptRecord) {
  const TempDir dir;
  const std::vector<std::uint8_t> payload =
      encode_payload(0, Message{ClientLeave{1, 0}});
  {
    WalSegmentWriter w;
    ASSERT_TRUE(w.open(dir.path(), 1));
    for (std::uint64_t s = 1; s <= 4; ++s) w.append(1, s, payload);
    ASSERT_TRUE(w.sync());
  }
  const std::string path = wal_segment_path(dir.path(), 1);
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
  const int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
  std::fputc(byte ^ 0x40, f);
  std::fclose(f);

  const SegmentLoadResult res = load_wal_segments(dir.path());
  EXPECT_FALSE(res.clean);
  ASSERT_EQ(res.records.at(1).size(), 3u);
}

// A seq-0 tombstone must fence a dead incarnation's records even when
// they live in an *earlier* segment — per-WLAN ordinals restart on
// re-registration, so without the fence the old records would merge
// into the new incarnation's replay.
TEST(ServiceWal, SegmentTombstoneFencesDeadIncarnation) {
  const TempDir dir;
  const std::vector<std::uint8_t> old_inc =
      encode_payload(0, Message{ClientJoin{7, 0}});
  const std::vector<std::uint8_t> new_inc =
      encode_payload(0, Message{ClientJoin{7, 1}});
  {
    WalSegmentWriter w;
    ASSERT_TRUE(w.open(dir.path(), 1));
    for (std::uint64_t s = 1; s <= 3; ++s) w.append(7, s, old_inc);
    w.append(8, 1, old_inc);  // an unrelated WLAN must be untouched
    ASSERT_TRUE(w.sync());
  }
  {
    WalSegmentWriter w;
    ASSERT_TRUE(w.open(dir.path(), 2));
    w.append(7, 0, std::span<const std::uint8_t>{});  // tombstone
    w.append(7, 1, new_inc);
    w.append(7, 2, new_inc);
    ASSERT_TRUE(w.sync());
  }
  const SegmentLoadResult res = load_wal_segments(dir.path());
  EXPECT_TRUE(res.clean);
  ASSERT_EQ(res.records.at(7).size(), 2u);
  EXPECT_EQ(res.records.at(7)[0].payload, new_inc);
  EXPECT_EQ(res.records.at(7)[0].seq, 1u);
  ASSERT_EQ(res.records.at(8).size(), 1u);
  // Coverage follows the fence: segment 1 no longer pins WLAN 7.
  ASSERT_EQ(res.segments.size(), 2u);
  EXPECT_EQ(res.segments[0].max_seq.count(7), 0u);
  EXPECT_EQ(res.segments[0].max_seq.at(8), 1u);
  EXPECT_EQ(res.segments[1].max_seq.at(7), 2u);
}

// A mid-history hole in a WLAN's segment records (lost segment, bit
// rot) must stop the replay at the intact prefix instead of inventing
// state: daemon-level, because the per-WLAN contiguity check lives in
// shard replay, not in the segment scanner.
TEST(ServiceWal, SegmentOrdinalGapStopsReplayAtPrefix) {
  const TempDir dir;
  const std::string sock = dir.path() + "/sock";
  const std::string state = dir.path() + "/state";
  {
    DaemonConfig config;
    config.unix_path = sock;
    config.state_dir = state;
    config.epoch_s = 0.0;
    Daemon daemon(config);
    daemon.start();
    Client client = Client::connect_unix(sock);
    ASSERT_TRUE(std::holds_alternative<OkReply>(
        client.call(RegisterWlan{1, kDeployment})));
    daemon.stop();  // clean: snapshot at events_applied = 0, no segments
  }
  // Hand-craft a segment whose records skip ordinal 3.
  {
    WalSegmentWriter w;
    ASSERT_TRUE(w.open(dir.path() + "/state", 1));
    std::uint32_t client_id = 0;
    for (const std::uint64_t seq : {1ull, 2ull, 4ull}) {
      w.append(1, seq,
               encode_payload(0, Message{ClientJoin{1, client_id++}}));
    }
    ASSERT_TRUE(w.sync());
  }
  DaemonConfig config;
  config.state_dir = state;
  config.epoch_s = 0.0;
  Daemon recovered(config);
  recovered.start();
  const std::optional<WlanSnapshot> snap = recovered.wlan_state(1);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->events_applied, 2u);  // contiguous prefix only
  recovered.stop();
}

// --------------------------------------------------------------------
// Crash level.

// SIGKILL a child daemon at a randomized instant inside a pipelined
// event burst, restart over its state directory, and require:
//  (1) every acknowledged event survived (recovered ordinal >= number of
//      replies the client actually received), and
//  (2) the recovered state is byte-identical to a never-killed reference
//      daemon fed exactly the recovered event prefix.
// Different flush windows move the kill relative to the group-commit
// fsync; the invariants must hold for all of them — and for every
// (victim, recovery) WAL-mode pairing, since either mode must recover
// the other's files.
void run_sigkill_burst(WalMode victim_mode, WalMode recover_mode,
                       std::uint32_t rng_seed, int iterations) {
  const std::vector<Message> script = event_script();
  std::mt19937 rng(rng_seed);
  const std::uint32_t flush_windows[] = {0, 200, 5000};

  for (int iter = 0; iter < iterations; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const TempDir dir;
    const std::string sock = dir.path() + "/sock";
    const std::string state = dir.path() + "/state";
    const std::uint32_t flush_us = flush_windows[iter % 3];

    const pid_t child = ::fork();
    ASSERT_NE(child, -1);
    if (child == 0) {
      DaemonConfig config;
      config.unix_path = sock;
      config.state_dir = state;
      config.epoch_s = 0.0;
      config.wal_flush_us = flush_us;
      config.wal_mode = victim_mode;
      try {
        Daemon daemon(config);
        daemon.start();
        daemon.wait();
      } catch (...) {
      }
      ::_exit(0);
    }

    std::size_t acked = 0;
    {
      Client client = connect_with_retry(sock);
      ASSERT_TRUE(std::holds_alternative<OkReply>(
          client.call(RegisterWlan{1, kDeployment})));
      // Acknowledged prefix, then a pipelined burst racing the kill.
      const std::size_t prefix = 4 + static_cast<std::size_t>(rng() % 8);
      for (std::size_t i = 0; i < prefix; ++i) {
        ASSERT_TRUE(std::holds_alternative<OkReply>(client.call(script[i])));
      }
      acked = prefix;
      for (std::size_t i = prefix; i < script.size(); ++i) {
        client.send(script[i]);
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng() % 4000));
      ASSERT_EQ(::kill(child, SIGKILL), 0);
      int status = 0;
      ASSERT_EQ(::waitpid(child, &status, 0), child);
      ASSERT_TRUE(WIFSIGNALED(status));
      // Replies already in flight when the daemon died are still
      // acknowledgements: drain until EOF.
      try {
        while (true) {
          const Frame f = client.recv();
          if (std::holds_alternative<OkReply>(f.msg)) ++acked;
        }
      } catch (const std::exception&) {
        // connection drained
      }
    }

    // Recover over the same state directory.
    DaemonConfig config;
    config.state_dir = state;
    config.unix_path = sock;
    config.epoch_s = 0.0;
    config.wal_mode = recover_mode;
    Daemon recovered(config);
    recovered.start();
    const std::optional<WlanSnapshot> snap = recovered.wlan_state(1);
    ASSERT_TRUE(snap.has_value());
    const std::uint64_t m = snap->events_applied;
    EXPECT_GE(m, acked) << "acknowledged events lost (flush window "
                        << flush_us << " us)";
    EXPECT_LE(m, script.size());

    // Reference: a fresh daemon fed exactly the first m script events.
    const TempDir ref_dir;
    DaemonConfig ref_config;
    ref_config.state_dir = ref_dir.path() + "/state";
    ref_config.unix_path = ref_dir.path() + "/sock";
    ref_config.epoch_s = 0.0;
    Daemon reference(ref_config);
    reference.start();
    {
      Client client = connect_with_retry(ref_config.unix_path);
      ASSERT_TRUE(std::holds_alternative<OkReply>(
          client.call(RegisterWlan{1, kDeployment})));
      for (std::uint64_t i = 0; i < m; ++i) {
        ASSERT_TRUE(std::holds_alternative<OkReply>(
            client.call(script[static_cast<std::size_t>(i)])));
      }
    }
    EXPECT_EQ(state_bytes(recovered, 1), state_bytes(reference, 1))
        << "recovered state diverges from the deterministic replay at "
        << m << " events";
    reference.stop();
    recovered.stop();
  }
}

TEST(ServiceWal, SigkillNeverLosesAcknowledgedEventsShared) {
  run_sigkill_burst(WalMode::kShared, WalMode::kShared, 20260808u, 6);
}

TEST(ServiceWal, SigkillNeverLosesAcknowledgedEventsPerShard) {
  run_sigkill_burst(WalMode::kPerShard, WalMode::kPerShard, 20260809u, 6);
}

// A state dir written by one mode recovered by the other: the upgrade
// and rollback paths.
TEST(ServiceWal, SigkillRecoveryAcrossWalModes) {
  run_sigkill_burst(WalMode::kPerShard, WalMode::kShared, 20260810u, 3);
  run_sigkill_burst(WalMode::kShared, WalMode::kPerShard, 20260811u, 3);
}

// Shared mode's distinguishing load: several WLANs' records interleaved
// in the same segments, racing a SIGKILL. Replies from different shards
// interleave freely on the shared connection, so acknowledgements are
// matched to WLANs through the reply's echoed request seq; every
// acknowledged event of *every* WLAN must survive, and each recovered
// WLAN must be byte-identical to a reference daemon fed its recovered
// prefix (per-WLAN replies are FIFO, so the acked set per WLAN is a
// prefix of its script).
TEST(ServiceWal, SigkillSharedModeInterleavedWlans) {
  constexpr std::uint32_t kWlans = 3;
  std::vector<std::vector<Message>> scripts;
  for (std::uint32_t w = 1; w <= kWlans; ++w) {
    scripts.push_back(event_script_for(w));
  }
  // Round-robin interleaving: send_order[i] = WLAN owning send i.
  std::vector<std::uint32_t> send_order;
  for (std::size_t i = 0; i < scripts[0].size(); ++i) {
    for (std::uint32_t w = 0; w < kWlans; ++w) send_order.push_back(w);
  }
  std::mt19937 rng(20260812u);

  for (int iter = 0; iter < 4; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const TempDir dir;
    const std::string sock = dir.path() + "/sock";
    const std::string state = dir.path() + "/state";

    const pid_t child = ::fork();
    ASSERT_NE(child, -1);
    if (child == 0) {
      DaemonConfig config;
      config.unix_path = sock;
      config.state_dir = state;
      config.epoch_s = 0.0;
      config.wal_flush_us = (iter % 2 == 0) ? 0u : 200u;
      config.wal_mode = WalMode::kShared;
      try {
        Daemon daemon(config);
        daemon.start();
        daemon.wait();
      } catch (...) {
      }
      ::_exit(0);
    }

    std::vector<std::uint64_t> acked_per_wlan(kWlans, 0);
    {
      Client client = connect_with_retry(sock);
      for (std::uint32_t w = 1; w <= kWlans; ++w) {
        ASSERT_TRUE(std::holds_alternative<OkReply>(
            client.call(RegisterWlan{w, kDeployment})));
      }
      const std::size_t prefix =
          kWlans * (2 + static_cast<std::size_t>(rng() % 4));
      std::vector<std::size_t> cursor(kWlans, 0);
      std::map<std::uint32_t, std::uint32_t> seq_to_wlan;
      for (std::size_t i = 0; i < send_order.size(); ++i) {
        const std::uint32_t w = send_order[i];
        const Message& msg = scripts[w][cursor[w]++];
        if (i < prefix) {
          ASSERT_TRUE(std::holds_alternative<OkReply>(client.call(msg)));
          ++acked_per_wlan[w];
        } else {
          seq_to_wlan[client.send(msg)] = w;
        }
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng() % 4000));
      ASSERT_EQ(::kill(child, SIGKILL), 0);
      int status = 0;
      ASSERT_EQ(::waitpid(child, &status, 0), child);
      ASSERT_TRUE(WIFSIGNALED(status));
      // Replies already in flight when the daemon died are still
      // acknowledgements; shards interleave on the connection, so match
      // each to its WLAN by seq.
      try {
        while (true) {
          const Frame f = client.recv();
          const auto it = seq_to_wlan.find(f.seq);
          if (it != seq_to_wlan.end() &&
              std::holds_alternative<OkReply>(f.msg)) {
            ++acked_per_wlan[it->second];
          }
        }
      } catch (const std::exception&) {
        // connection drained
      }
    }

    DaemonConfig config;
    config.state_dir = state;
    config.epoch_s = 0.0;
    config.wal_mode = WalMode::kShared;
    Daemon recovered(config);
    recovered.start();

    const TempDir ref_dir;
    DaemonConfig ref_config;
    ref_config.state_dir = ref_dir.path() + "/state";
    ref_config.unix_path = ref_dir.path() + "/sock";
    ref_config.epoch_s = 0.0;
    Daemon reference(ref_config);
    reference.start();
    Client ref_client = connect_with_retry(ref_config.unix_path);

    for (std::uint32_t w = 0; w < kWlans; ++w) {
      SCOPED_TRACE("wlan " + std::to_string(w + 1));
      const std::optional<WlanSnapshot> snap =
          recovered.wlan_state(w + 1);
      ASSERT_TRUE(snap.has_value());
      const std::uint64_t m = snap->events_applied;
      EXPECT_GE(m, acked_per_wlan[w]) << "acknowledged events lost";
      ASSERT_LE(m, scripts[w].size());
      ASSERT_TRUE(std::holds_alternative<OkReply>(
          ref_client.call(RegisterWlan{w + 1, kDeployment})));
      for (std::uint64_t i = 0; i < m; ++i) {
        ASSERT_TRUE(std::holds_alternative<OkReply>(
            ref_client.call(scripts[w][static_cast<std::size_t>(i)])));
      }
      EXPECT_EQ(state_bytes(recovered, w + 1), state_bytes(reference, w + 1))
          << "recovered WLAN diverges from the deterministic replay at "
          << m << " events";
    }
    reference.stop();
    recovered.stop();
  }
}

// Tiny segments + periodic epochs: rotation must produce new segments
// and checkpoint-driven retirement must delete covered ones, keeping
// the on-disk log bounded instead of growing forever.
TEST(ServiceWal, SharedSegmentsRotateAndRetire) {
  const TempDir dir;
  const std::string sock = dir.path() + "/sock";
  const std::string state = dir.path() + "/state";
  DaemonConfig config;
  config.unix_path = sock;
  config.state_dir = state;
  config.epoch_s = 0.0;
  config.wal_flush_us = 0;
  config.wal_mode = WalMode::kShared;
  config.wal_segment_bytes = 2048;  // rotate every ~25 records
  Daemon daemon(config);
  daemon.start();
  {
    Client client = Client::connect_unix(sock);
    ASSERT_TRUE(std::holds_alternative<OkReply>(
        client.call(RegisterWlan{1, kDeployment})));
    for (std::uint32_t c = 0; c < 8; ++c) {
      ASSERT_TRUE(
          std::holds_alternative<OkReply>(client.call(ClientJoin{1, c})));
    }
    for (int round = 0; round < 10; ++round) {
      for (std::uint32_t c = 0; c < 16; ++c) {
        ASSERT_TRUE(std::holds_alternative<OkReply>(client.call(
            SnrUpdate{1, c % 3, c % 8, 80.0 + c + 0.1 * round})));
      }
      // Epoch snapshot -> checkpoint -> everything before it retirable.
      ASSERT_TRUE(std::holds_alternative<OkReply>(
          client.call(ForceReconfigure{1})));
    }
  }
  const std::uint64_t events = daemon.wlan_state(1)->events_applied;
  daemon.stop();

  // Enough bytes flowed for several rotations...
  const SegmentLoadResult res = load_wal_segments(state);
  EXPECT_GE(res.next_index, 5u) << "segments never rotated";
  // ...but retirement kept only the uncovered suffix: the still-open
  // segment plus at most a couple closed ones pinned by post-checkpoint
  // records.
  EXPECT_LE(segment_files(state).size(), 3u)
      << "covered segments were never retired";

  // And the bounded log still recovers the full state.
  DaemonConfig rconfig;
  rconfig.state_dir = state;
  rconfig.epoch_s = 0.0;
  Daemon recovered(rconfig);
  recovered.start();
  ASSERT_TRUE(recovered.wlan_state(1).has_value());
  EXPECT_EQ(recovered.wlan_state(1)->events_applied, events);
  recovered.stop();
}

// Deterministic corruption recovery end to end: events whose records are
// destroyed on disk after the fact must roll the state back to the
// intact prefix (torn tails happen; silent corruption must not become
// silent state invention).
void run_corrupt_tail(WalMode mode) {
  const TempDir dir;
  const std::string sock = dir.path() + "/sock";
  const std::string state = dir.path() + "/state";

  const pid_t child = ::fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    DaemonConfig config;
    config.unix_path = sock;
    config.state_dir = state;
    config.epoch_s = 0.0;
    config.wal_flush_us = 0;
    config.wal_mode = mode;
    try {
      Daemon daemon(config);
      daemon.start();
      daemon.wait();
    } catch (...) {
    }
    ::_exit(0);
  }
  {
    Client client = connect_with_retry(sock);
    ASSERT_TRUE(std::holds_alternative<OkReply>(
        client.call(RegisterWlan{1, kDeployment})));
    for (std::uint32_t c = 0; c < 4; ++c) {
      ASSERT_TRUE(
          std::holds_alternative<OkReply>(client.call(ClientJoin{1, c})));
    }
  }
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);

  // All four joins are acknowledged, so the log holds records 1..4 past
  // the registration snapshot. Chop into the last record.
  if (mode == WalMode::kPerShard) {
    const WalLoadResult before = load_wal(state, 1);
    ASSERT_TRUE(before.clean);
    ASSERT_EQ(before.records.size(), 4u);
    const std::string path = wal_path(state, 1);
    struct stat st{};
    ASSERT_EQ(::stat(path.c_str(), &st), 0);
    ASSERT_EQ(::truncate(path.c_str(), st.st_size - 3), 0);
  } else {
    const SegmentLoadResult before = load_wal_segments(state);
    ASSERT_TRUE(before.clean);
    ASSERT_EQ(before.records.at(1).size(), 4u);
    const std::vector<std::string> segs = segment_files(state);
    ASSERT_FALSE(segs.empty());
    const std::string& path = segs.back();
    struct stat st{};
    ASSERT_EQ(::stat(path.c_str(), &st), 0);
    ASSERT_EQ(::truncate(path.c_str(), st.st_size - 3), 0);
  }

  DaemonConfig config;
  config.state_dir = state;
  config.epoch_s = 0.0;
  config.wal_mode = mode;
  Daemon recovered(config);
  recovered.start();
  const std::optional<WlanSnapshot> snap = recovered.wlan_state(1);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->events_applied, 3u);  // intact prefix only
  int associated = 0;
  for (const int ap : snap->association) {
    if (ap >= 0) ++associated;
  }
  EXPECT_EQ(associated, 3);
  recovered.stop();
}

TEST(ServiceWal, RecoveryStopsAtCorruptTailPerShard) {
  run_corrupt_tail(WalMode::kPerShard);
}

TEST(ServiceWal, RecoveryStopsAtCorruptTailShared) {
  run_corrupt_tail(WalMode::kShared);
}

// --------------------------------------------------------------------
// Replication level.

// Wait until `predicate` holds or ~5 s elapse.
template <typename F>
bool eventually(F predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

void run_follower_convergence(WalMode leader_mode) {
  const TempDir dir;
  DaemonConfig leader_config;
  leader_config.unix_path = dir.path() + "/sock";
  leader_config.state_dir = dir.path() + "/leader";
  leader_config.epoch_s = 0.0;
  leader_config.wal_flush_us = 0;
  leader_config.wal_mode = leader_mode;
  Daemon leader(leader_config);
  leader.start();

  Client client = Client::connect_unix(leader_config.unix_path);
  ASSERT_TRUE(std::holds_alternative<OkReply>(
      client.call(RegisterWlan{1, kDeployment})));
  for (std::uint32_t c = 0; c < 4; ++c) {
    ASSERT_TRUE(
        std::holds_alternative<OkReply>(client.call(ClientJoin{1, c})));
  }

  DaemonConfig follower_config;
  follower_config.state_dir = dir.path() + "/follower";
  follower_config.follow = "unix:" + leader_config.unix_path;
  follower_config.epoch_s = 1000.0;  // must be ignored in follow mode
  Daemon follower(follower_config);
  follower.start();

  // The snapshot handed to the follower at attach covers the first four
  // joins; everything after arrives as log records.
  ASSERT_TRUE(eventually([&] {
    const auto snap = follower.wlan_state(1);
    return snap.has_value() && snap->events_applied >= 4;
  })) << "follower never received the attach snapshot";

  // Play the whole script (re-joining an associated client is a legal
  // re-association probe, so the overlap with the joins above is fine).
  for (const Message& msg : event_script()) {
    ASSERT_TRUE(std::holds_alternative<OkReply>(client.call(msg)));
  }
  const std::uint64_t leader_events = leader.wlan_state(1)->events_applied;
  ASSERT_TRUE(eventually([&] {
    const auto snap = follower.wlan_state(1);
    return snap.has_value() && snap->events_applied == leader_events;
  })) << "follower never caught up to " << leader_events << " events";
  EXPECT_EQ(state_bytes(follower, 1), state_bytes(leader, 1))
      << "warm standby state is not byte-identical to the leader";

  // A WLAN registered *after* the follower attached is mirrored too.
  ASSERT_TRUE(std::holds_alternative<OkReply>(
      client.call(RegisterWlan{2, kDeployment})));
  ASSERT_TRUE(
      std::holds_alternative<OkReply>(client.call(ClientJoin{2, 0})));
  ASSERT_TRUE(eventually([&] {
    const auto snap = follower.wlan_state(2);
    return snap.has_value() && snap->events_applied >= 1;
  })) << "follower missed the post-attach registration";
  ASSERT_TRUE(eventually([&] {
    return state_bytes(follower, 2) == state_bytes(leader, 2);
  }));

  // RemoveWlan propagates as a control record.
  ASSERT_TRUE(std::holds_alternative<OkReply>(client.call(RemoveWlan{2})));
  ASSERT_TRUE(eventually([&] {
    return !follower.wlan_state(2).has_value();
  })) << "follower kept a removed WLAN";
  EXPECT_TRUE(follower.wlan_state(1).has_value());

  follower.stop();
  leader.stop();
}

// In shared mode the follower stream is released by the coordinator's
// commit thread (a record reaches a follower no later than the client's
// acknowledgement); in per-shard mode by the shard itself. Both paths
// must converge byte-identically.
TEST(ServiceWal, FollowerConvergesByteIdenticalShared) {
  run_follower_convergence(WalMode::kShared);
}

TEST(ServiceWal, FollowerConvergesByteIdenticalPerShard) {
  run_follower_convergence(WalMode::kPerShard);
}

// A standby that resubscribed (leader restart) and is then killed must
// come back up with the replicated state. Regression: the replacement
// shard used to be started *before* the old one was stopped, so the old
// shard's final snapshot overwrote the fresh resubscribe checkpoint on
// disk; the records streamed afterwards then sat above a sequence gap
// and recovery silently discarded them — exactly the promoted-standby
// scenario the feature exists for.
TEST(ServiceWal, PromotedStandbySurvivesResubscribe) {
  const TempDir dir;
  const std::string sock = dir.path() + "/sock";
  const std::string alt_sock = dir.path() + "/sock2";
  const std::string follower_sock = dir.path() + "/fsock";
  const std::string leader_state = dir.path() + "/leader";
  const std::string follower_state = dir.path() + "/follower";

  DaemonConfig leader_config;
  leader_config.unix_path = sock;
  leader_config.state_dir = leader_state;
  leader_config.epoch_s = 0.0;
  leader_config.wal_flush_us = 0;

  // The follower runs in a child process so it can be SIGKILLed without
  // the clean-shutdown snapshot masking what is actually on disk. Fork
  // before the leader spawns its threads (TSan refuses new threads in a
  // child of a multi-threaded fork); the follower's reconnect loop
  // simply retries until the leader's socket appears.
  const pid_t child = ::fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    DaemonConfig config;
    config.unix_path = follower_sock;
    config.state_dir = follower_state;
    config.follow = "unix:" + sock;
    config.epoch_s = 0.0;
    config.wal_flush_us = 0;
    try {
      Daemon daemon(config);
      daemon.start();
      daemon.wait();
    } catch (...) {
    }
    ::_exit(0);
  }

  auto leader = std::make_unique<Daemon>(leader_config);
  leader->start();
  {
    Client client = Client::connect_unix(sock);
    ASSERT_TRUE(std::holds_alternative<OkReply>(
        client.call(RegisterWlan{1, kDeployment})));
    for (std::uint32_t c = 0; c < 4; ++c) {
      ASSERT_TRUE(
          std::holds_alternative<OkReply>(client.call(ClientJoin{1, c})));
    }
  }

  // events_applied as seen through the follower's own socket; -1 while
  // the WLAN (or the follower itself) is not up yet.
  const auto follower_events = [&](Client& client) -> std::int64_t {
    const Message reply = client.call(QueryConfig{1});
    if (const auto* cfg = std::get_if<ConfigReply>(&reply)) {
      return static_cast<std::int64_t>(cfg->events_applied);
    }
    return -1;
  };

  {
    Client fclient = connect_with_retry(follower_sock);
    ASSERT_TRUE(eventually([&] { return follower_events(fclient) >= 4; }))
        << "follower never received the attach snapshot";
  }

  // Leader goes away; the follower enters its reconnect loop. Advance
  // the leader's state out of band (same state dir, different socket)
  // so the eventual resubscribe snapshot is *ahead* of the follower.
  leader->stop();
  leader.reset();
  {
    DaemonConfig interim_config = leader_config;
    interim_config.unix_path = alt_sock;
    Daemon interim(interim_config);
    interim.start();
    Client client = Client::connect_unix(alt_sock);
    for (std::uint32_t c = 0; c < 4; ++c) {
      ASSERT_TRUE(std::holds_alternative<OkReply>(
          client.call(SnrUpdate{1, c % 3, c, 85.0 + c})));
    }
    interim.stop();
  }

  // Leader returns on the original endpoint: the follower resubscribes,
  // receives the newer snapshot, and then streams live records.
  Daemon leader2(leader_config);
  leader2.start();
  {
    Client client = connect_with_retry(sock);
    for (std::uint32_t c = 4; c < 8; ++c) {
      ASSERT_TRUE(
          std::holds_alternative<OkReply>(client.call(ClientJoin{1, c})));
    }
  }
  const std::uint64_t leader_events = leader2.wlan_state(1)->events_applied;
  ASSERT_EQ(leader_events, 12u);
  {
    Client fclient = connect_with_retry(follower_sock);
    ASSERT_TRUE(eventually([&] {
      return follower_events(fclient) ==
             static_cast<std::int64_t>(leader_events);
    })) << "follower never converged after the resubscribe";
  }

  // Promote: kill the standby, recover over its state directory.
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));

  DaemonConfig promoted_config;
  promoted_config.state_dir = follower_state;
  promoted_config.epoch_s = 0.0;
  Daemon promoted(promoted_config);
  promoted.start();
  const std::optional<WlanSnapshot> snap = promoted.wlan_state(1);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->events_applied, leader_events)
      << "promoted standby lost replicated events across the resubscribe";
  EXPECT_EQ(state_bytes(promoted, 1), state_bytes(leader2, 1))
      << "promoted standby state diverges from the leader";
  promoted.stop();
  leader2.stop();
}

}  // namespace
}  // namespace acorn::service
