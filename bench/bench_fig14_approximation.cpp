// Figure 14: how close ACORN's channel allocation gets to the isolated
// upper bound Y* in practice, for 2 / 4 / 6 available 20 MHz channels.
// Paper: 9 triplets of contending APs (Delta = 2). With 2 channels,
// T >= Y*/3 (the theory line y = 3x bounds the points); with 6 channels
// T ~ Y*; with 4 channels often near-optimal because some AP prefers
// 20 MHz, freeing a bond for the others.
#include <cstdio>

#include "common.hpp"
#include "core/allocation.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

// One triplet of mutually contending APs with a given mix of client
// qualities.
sim::ScenarioBuilder triplet(double l1, double l2, double l3) {
  sim::ScenarioBuilder b;
  b.cells = {sim::CellSpec{{l1}}, sim::CellSpec{{l2}},
             sim::CellSpec{{l3}}};
  b.ap_ap_loss_db = 85.0;
  return b;
}

}  // namespace

int main() {
  bench::banner("Figure 14: allocation T vs upper bound Y* (2/4/6 channels)",
                "T >= Y*/(Delta+1) = Y*/3 always; T ~ Y* with 6 channels");
  // Nine AP-triplets spanning quality mixes (paper: 9 sets of APs).
  const double G = sim::kGoodLinkLoss;
  const double M = sim::kMediumLinkLoss;
  const double P = sim::kPoorLinkLoss;
  const double A = sim::kMarginalLinkLoss;
  const sim::ScenarioBuilder sets[] = {
      triplet(G, G, G),         triplet(G, G, M),
      triplet(G, M, M),         triplet(G, P, P),
      triplet(G, A, P),         triplet(M, M, A),
      triplet(M, A, P),         triplet(A, A, A),
      triplet(G + 4.0, M, P),
  };

  util::TextTable t({"set", "Y* (Mbps)", "T 2ch (Mbps)", "T/Y* 2ch",
                     "T 4ch (Mbps)", "T/Y* 4ch", "T 6ch (Mbps)",
                     "T/Y* 6ch"});
  bool bound_holds = true;
  double worst6 = 1.0;
  // The paper's k counter per channel count (now counts the initial
  // y(F_0) measurement plus every candidate trial).
  long long evals2 = 0, evals4 = 0, evals6 = 0;
  int idx = 0;
  for (const sim::ScenarioBuilder& b : sets) {
    ++idx;
    const sim::Wlan wlan = b.build();
    const net::Association assoc = b.intended_association();
    const double upper = core::isolated_upper_bound_bps(wlan, assoc);
    std::vector<std::string> row = {std::to_string(idx),
                                    bench::mbps(upper)};
    for (int channels : {2, 4, 6}) {
      const core::ChannelAllocator alloc{net::ChannelPlan(channels)};
      util::Rng rng(bench::kDefaultSeed + static_cast<std::uint64_t>(idx));
      const core::AllocationResult result =
          alloc.allocate(wlan, assoc, alloc.random_assignment(3, rng));
      const double ratio = result.final_bps / upper;
      row.push_back(bench::mbps(result.final_bps));
      row.push_back(util::TextTable::num(ratio, 2));
      if (result.final_bps < upper / 3.0 * 0.95) bound_holds = false;
      if (channels == 6) worst6 = std::min(worst6, ratio);
      (channels == 2 ? evals2 : channels == 4 ? evals4 : evals6) +=
          result.evaluations;
    }
    t.add_row(row);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("oracle evaluations k (incl. the initial measurement), all 9 "
              "sets: %lld (2ch) / %lld (4ch) / %lld (6ch)\n",
              evals2, evals4, evals6);
  std::printf("T >= Y*/3 (the y = 3x line) on every set: %s\n",
              bound_holds ? "yes" : "NO");
  std::printf("worst T/Y* with 6 channels: %.2f (paper: ~1.0 — full "
              "isolation)\n",
              worst6);
  std::printf("note: Y* is a loose bound below 6 channels since full "
              "isolation is impossible (paper makes the same remark).\n");
  return 0;
}
