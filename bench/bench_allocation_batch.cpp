// Batched candidate-scan throughput: Algorithm 2's inner loop through
// the PR4 one-candidate-at-a-time cached path versus the PR7 batched
// SIMD scan (CachedOracle::total_bps_batch + persistent worker pool),
// plus the RateTable construction cost before/after the bracketed probe
// strategy.
//
// Both scan paths run the same random enterprise deployments from the
// same derived RNG streams and must agree bit-for-bit on every final
// assignment and throughput — the bench doubles as a determinism check
// and enforces an in-process speedup floor so `ctest -L perf_smoke`
// fails if the batched path regresses to the serial one. Rows land in
// BENCH_network.json (label "pr4" for the old path, "pr7" for the new).
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "baselines/simple.hpp"
#include "common.hpp"
#include "core/allocation.hpp"
#include "core/oracle_cache.hpp"
#include "phy/rate_table.hpp"
#include "sim/wlan.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

struct Scenario {
  std::unique_ptr<sim::Wlan> wlan;
  net::Association assoc;
  net::ChannelAssignment initial;
};

struct PathResult {
  double seconds = 0.0;
  std::int64_t evals = 0;   // candidate evaluations Algorithm 2 performed
  double checksum = 0.0;    // sum of final_bps, must match across paths
};

// Random enterprise floors in the table-3 deployment class, alternating
// the interference model so both kernel shapes (plain contention and
// SINR/hidden-interferer) are timed.
std::vector<Scenario> make_scenarios(int count, int aps, int clients,
                                     double radius_m) {
  std::vector<Scenario> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int s = 0; s < count; ++s) {
    util::Rng rng(bench::kDefaultSeed + 977u * static_cast<unsigned>(s));
    net::Topology topo = net::Topology::random(aps, clients, radius_m, rng);
    net::PathLossModel plm;
    plm.shadowing_sigma_db = 4.0;
    net::LinkBudget budget(topo, plm, rng);
    sim::WlanConfig config;
    config.sinr_interference = (s % 2) == 1;
    config.weighted_contention = (s % 3) == 1;
    auto wlan = std::make_unique<sim::Wlan>(std::move(topo),
                                            std::move(budget), config);
    const baselines::RandomConfig cfg =
        baselines::random_configuration(*wlan, net::ChannelPlan(12), rng);
    Scenario sc;
    sc.wlan = std::move(wlan);
    sc.assoc = cfg.association;
    sc.initial = cfg.assignment;
    out.push_back(std::move(sc));
  }
  return out;
}

PathResult run_path(const std::vector<Scenario>& scenarios,
                    const core::AllocationConfig& acfg, int reps) {
  const net::ChannelPlan plan(12);
  const core::ChannelAllocator alloc{plan, acfg};
  PathResult r;
  // Each rep rebuilds its oracles, so reps repeat identical work; they
  // exist to stretch smoke-sized runs past scheduler noise.
  for (int rep = 0; rep < reps; ++rep) {
    PathResult pass;
    for (const Scenario& s : scenarios) {
      // Oracle construction (interference graph, rx matrix) is untimed:
      // both paths share it and the scan is what this bench measures.
      const core::CachedOracle oracle(*s.wlan, s.assoc);
      const bench::Stopwatch watch;
      const core::AllocationResult result =
          alloc.allocate(*s.wlan, s.assoc, s.initial, oracle);
      pass.seconds += watch.seconds();
      pass.evals += result.evaluations;
      pass.checksum += result.final_bps;
    }
    r.seconds += pass.seconds;
    r.evals += pass.evals;
    r.checksum += pass.checksum;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::banner("Batched candidate scan: PR7 SIMD batch vs PR4 serial",
                "Algorithm 2 inner-loop throughput, bit-identical paths");

  // Full mode times enterprise-scale floors (the paper's §6 deployments
  // run 25+ APs); the serial path's per-candidate memo-key rebuilds grow
  // with network size, so this is also where the batched scan's
  // amortization is representative. Smoke keeps CI runs to a second.
  const int scenarios = opts.smoke ? 2 : 4;
  const int aps = opts.smoke ? 8 : 24;
  const int clients = opts.smoke ? 22 : 60;
  const double radius_m = opts.smoke ? 140.0 : 230.0;
  const int reps = opts.smoke ? 8 : 1;
  const std::vector<Scenario> floor_set =
      make_scenarios(scenarios, aps, clients, radius_m);

  core::AllocationConfig serial_cfg;
  serial_cfg.batch_scan = false;
  serial_cfg.num_threads = 1;
  const PathResult serial = run_path(floor_set, serial_cfg, reps);
  bench::emit_evals("bench_allocation_batch", "alloc_scan_random",
                    serial.seconds, serial.evals, 1, "pr4");

  core::AllocationConfig batch_cfg;
  batch_cfg.batch_scan = true;
  batch_cfg.num_threads = 1;
  const PathResult batched = run_path(floor_set, batch_cfg, reps);
  bench::emit_evals("bench_allocation_batch", "alloc_scan_random",
                    batched.seconds, batched.evals, 1, "pr7");

  // Multi-threaded run: on the single-core recording box this is a
  // determinism check only, not a perf claim — hence the label.
  core::AllocationConfig mt_cfg = batch_cfg;
  mt_cfg.num_threads = 2;
  const PathResult mt = run_path(floor_set, mt_cfg, reps);
  bench::emit_evals("bench_allocation_batch", "alloc_scan_random",
                    mt.seconds, mt.evals, 2, "pr7_determinism_1core");

  const double speedup = batched.seconds > 0.0 && serial.seconds > 0.0
                             ? serial.seconds / batched.seconds
                             : 0.0;
  util::TextTable t({"path", "threads", "evals", "evals/s", "speedup"});
  const auto row = [&](const char* name, int threads, const PathResult& p) {
    t.add_row({name, std::to_string(threads),
               std::to_string(static_cast<long long>(p.evals)),
               util::TextTable::num(p.seconds > 0.0
                                        ? static_cast<double>(p.evals) /
                                              p.seconds
                                        : 0.0,
                                    0),
               util::TextTable::num(p.seconds > 0.0
                                        ? serial.seconds / p.seconds
                                        : 0.0,
                                    2) +
                   "x"});
  };
  row("pr4 serial", 1, serial);
  row("pr7 batched", 1, batched);
  row("pr7 batched", 2, mt);
  std::printf("\n%s\n", t.to_string().c_str());

  bool identical = true;
  bool ok = true;
  if (batched.checksum != serial.checksum || mt.checksum != serial.checksum ||
      batched.evals != serial.evals || mt.evals != serial.evals) {
    std::printf("FAIL: batched scan is not bit-identical to the serial "
                "path\n");
    identical = false;
    ok = false;
  }
  // In-process floor: the batched scan must clearly beat the serial
  // one-at-a-time path even on smoke-sized runs (full runs measure well
  // above the 5x acceptance line; the smoke floor leaves headroom for
  // loaded CI boxes). Sanitizer instrumentation distorts the two
  // paths' relative cost, so those lanes check bit-identity only.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  constexpr bool kSanitized = true;
#else
  constexpr bool kSanitized = false;
#endif
#else
  constexpr bool kSanitized = false;
#endif
  const double floor = opts.smoke ? 2.0 : 5.0;
  std::printf("batched speedup over serial scan: %.2fx (floor %.1fx%s)\n",
              speedup, floor,
              kSanitized ? ", not enforced under sanitizers" : "");
  if (!kSanitized && speedup < floor) {
    std::printf("FAIL: batched candidate scan below the perf floor\n");
    ok = false;
  }

  // RateTable construction: the bracketed probe strategy must cut the
  // goodput-probe count hard while producing identical segments.
  {
    const phy::LinkModel link{phy::LinkConfig{}};
    const bench::Stopwatch wd;
    const phy::RateTable dense(link, phy::ChannelWidth::k20MHz,
                               phy::GuardInterval::kLong800ns,
                               phy::RateTable::Construction::kDenseReference);
    const double dense_s = wd.seconds();
    const bench::Stopwatch wb;
    const phy::RateTable fast(link, phy::ChannelWidth::k20MHz,
                              phy::GuardInterval::kLong800ns,
                              phy::RateTable::Construction::kBracketed);
    const double fast_s = wb.seconds();
    bench::emit_evals(
        "bench_allocation_batch", "rate_table_construction", dense_s,
        static_cast<std::int64_t>(dense.construction_goodput_probes()), 1,
        "pr4");
    bench::emit_evals(
        "bench_allocation_batch", "rate_table_construction", fast_s,
        static_cast<std::int64_t>(fast.construction_goodput_probes()), 1,
        "pr7");
    std::printf("rate table construction: %llu probes %.3fs dense -> %llu "
                "probes %.3fs bracketed\n",
                static_cast<unsigned long long>(
                    dense.construction_goodput_probes()),
                dense_s,
                static_cast<unsigned long long>(
                    fast.construction_goodput_probes()),
                fast_s);
    if (fast.segments().size() != dense.segments().size() ||
        fast.construction_goodput_probes() * 4 >=
            dense.construction_goodput_probes()) {
      std::printf("FAIL: bracketed rate-table construction regressed\n");
      ok = false;
    }
  }

  std::printf("batched scan bit-identical to serial path: %s\n",
              identical ? "yes" : "NO");
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
