// Figure 10: per-AP throughput, ACORN vs the adapted [17] scheme, on the
// paper's two interference-free topologies.
// Paper: Topology 1 — identical associations, but ACORN gives the
// poor-client AP a 20 MHz channel (4x gain on AP1, their numbering).
// Topology 2 — ACORN groups similar-quality clients and uses 20 MHz for
// poor cells: 6x (AP4), 1.5x (AP5), 1.8x (AP3) gains.
//
// Both topology comparisons are independent scenarios, so they run
// through sim::sweep_scenarios (`--threads N` parallelizes them with
// bit-identical output for any thread count).
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/kauffmann17.hpp"
#include "common.hpp"
#include "core/controller.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

struct TopologyResult {
  const char* name = "";
  core::ConfigureResult ours;
  baselines::Kauffmann17::Result theirs;
  sim::Evaluation eval_theirs;
  int num_aps = 0;
  int num_clients = 0;
};

TopologyResult run_topology(const char* name,
                            const sim::ScenarioBuilder& builder,
                            util::Rng& rng) {
  const sim::Wlan wlan = builder.build();
  TopologyResult r;
  r.name = name;
  r.num_aps = wlan.topology().num_aps();
  r.num_clients = wlan.topology().num_clients();
  const core::AcornController acorn;
  r.ours = acorn.configure(wlan, rng);
  const baselines::Kauffmann17 k17{net::ChannelPlan(12)};
  r.theirs = k17.configure(wlan);
  r.eval_theirs = wlan.evaluate(r.theirs.association, r.theirs.assignment);
  return r;
}

void print_topology(const TopologyResult& r) {
  std::printf("--- %s ---\n", r.name);
  util::TextTable t({"AP", "ACORN channel", "ACORN (Mbps)", "[17] channel",
                     "[17] (Mbps)", "gain"});
  for (int ap = 0; ap < r.num_aps; ++ap) {
    const double a = r.ours.evaluation.per_ap[ap].goodput_bps;
    const double b = r.eval_theirs.per_ap[ap].goodput_bps;
    t.add_row({"AP" + std::to_string(ap + 1),
               r.ours.assignment[static_cast<std::size_t>(ap)].to_string(),
               bench::mbps(a),
               r.theirs.assignment[static_cast<std::size_t>(ap)].to_string(),
               bench::mbps(b),
               b > 1e4 ? util::TextTable::num(a / b, 2) + "x"
                       : (a > 1e4 ? ">10x" : "-")});
  }
  t.add_row({"Total", "", bench::mbps(r.ours.evaluation.total_goodput_bps),
             "", bench::mbps(r.eval_theirs.total_goodput_bps),
             util::TextTable::num(r.ours.evaluation.total_goodput_bps /
                                      r.eval_theirs.total_goodput_bps,
                                  2) +
                 "x"});
  std::printf("%s\n", t.to_string().c_str());

  std::printf("associations  ACORN: ");
  for (int c = 0; c < r.num_clients; ++c) {
    std::printf("c%d->AP%d ", c,
                r.ours.association[static_cast<std::size_t>(c)] + 1);
  }
  std::printf("\n              [17]:  ");
  for (int c = 0; c < r.num_clients; ++c) {
    std::printf("c%d->AP%d ", c,
                r.theirs.association[static_cast<std::size_t>(c)] + 1);
  }
  std::printf("\n\n");
}

// The Topology 2 association effect in isolation: ACORN groups clients of
// similar quality (paper: "tries to group clients with similar link
// qualities in the same cell"), [17]'s selfish rule lets a poor client
// join the good cell and drag it down via the performance anomaly.
void run_grouping_detail() {
  net::Topology topo;
  topo.add_ap({0.0, 0.0});
  topo.add_ap({50.0, 0.0});
  topo.add_client({1.0, 0.0});   // p0: poor, only hears AP_a
  topo.add_client({51.0, 0.0});  // g0: good, only hears AP_b
  topo.add_client({25.0, 0.0});  // joiner: poor toward both, b slightly better
  util::Rng rng(1);
  net::PathLossModel plm;
  net::LinkBudget budget(topo, plm, rng);
  budget.set_ap_ap_loss_db(0, 1, sim::kIsolatedLoss);
  budget.set_ap_client_loss_db(0, 0, sim::kPoorLinkLoss);
  budget.set_ap_client_loss_db(1, 0, sim::kIsolatedLoss);
  budget.set_ap_client_loss_db(0, 1, sim::kIsolatedLoss);
  budget.set_ap_client_loss_db(1, 1, sim::kGoodLinkLoss);
  budget.set_ap_client_loss_db(0, 2, sim::kPoorLinkLoss + 0.2);
  budget.set_ap_client_loss_db(1, 2, sim::kPoorLinkLoss - 0.6);
  const sim::Wlan wlan(std::move(topo), std::move(budget),
                       sim::WlanConfig{});
  const net::ChannelAssignment ch = {net::Channel::basic(4),
                                     net::Channel::bonded(0)};
  net::Association base = {0, 1, net::kUnassociated};

  const core::UserAssociation ua;
  net::Association ours = base;
  ours[2] = ua.select_ap(wlan, base, ch, 2).value_or(net::kUnassociated);
  const baselines::Kauffmann17 k17{net::ChannelPlan(12)};
  net::Association theirs = base;
  theirs[2] = k17.select_ap(wlan, base, ch, 2).value_or(net::kUnassociated);

  std::printf("--- Topology 2 grouping detail (poor client joins) ---\n");
  std::printf("ACORN sends the joiner to AP%d (the poor cell); [17] to "
              "AP%d (the good cell)\n",
              ours[2] + 1, theirs[2] + 1);
  const sim::Evaluation e_ours = wlan.evaluate(ours, ch);
  const sim::Evaluation e_theirs = wlan.evaluate(theirs, ch);
  util::TextTable t({"scheme", "joiner ->", "good cell (Mbps)",
                     "poor cell (Mbps)", "total (Mbps)"});
  t.add_row({"ACORN", "AP" + std::to_string(ours[2] + 1),
             bench::mbps(e_ours.per_ap[1].goodput_bps),
             bench::mbps(e_ours.per_ap[0].goodput_bps),
             bench::mbps(e_ours.total_goodput_bps)});
  t.add_row({"[17]", "AP" + std::to_string(theirs[2] + 1),
             bench::mbps(e_theirs.per_ap[1].goodput_bps),
             bench::mbps(e_theirs.per_ap[0].goodput_bps),
             bench::mbps(e_theirs.total_goodput_bps)});
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::banner("Figure 10: ACORN vs [17] on interference-free topologies",
                "poor cells gain 1.5x-6x from 20 MHz channels under ACORN");

  struct Scenario {
    const char* name;
    sim::ScenarioBuilder builder;
  };
  const std::vector<Scenario> scenarios = {
      {"Topology 1 (2 APs: poor cell + good cell)", bench::topology1()},
      {"Topology 2 (5 APs: 3 good, 1 poor, 1 marginal)",
       bench::topology2()},
  };
  const std::vector<TopologyResult> results = sim::sweep_scenarios(
      scenarios.size(), {bench::kDefaultSeed, opts.threads},
      [&scenarios](util::Rng& rng, std::size_t i) {
        return run_topology(scenarios[i].name, scenarios[i].builder, rng);
      });
  for (const TopologyResult& r : results) print_topology(r);
  run_grouping_detail();
  return 0;
}
