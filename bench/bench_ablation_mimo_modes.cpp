// Ablation: STBC vs SDM at sample level — the measured justification for
// the link abstraction's mode model (STBC = +diversity gain, SDM =
// per-stream penalty but double rate). Sweeping SNR over Rayleigh 2x2
// channels: SDM's *throughput* (2 symbols/use scaled by symbol success)
// overtakes STBC's beyond a crossover, while STBC always wins on raw
// error rate. The auto-rate's mode switch lives at that crossover.
#include <cmath>
#include <cstdio>

#include "baseband/qpsk.hpp"
#include "baseband/sdm.hpp"
#include "baseband/stbc.hpp"
#include "common.hpp"
#include "phy/coding.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace acorn;
using baseband::Cx;

namespace {

struct ModeStats {
  double ber_sdm = 0.0;
  double ber_stbc = 0.0;
  double tput_sdm = 0.0;   // correct bits per channel use
  double tput_stbc = 0.0;
};

ModeStats measure(double snr_db, util::Rng& rng) {
  const double noise_var = util::db_to_lin(-snr_db);
  const int kBlocks = 3000;
  int sdm_err = 0;
  int stbc_err = 0;
  int bits_total = 0;
  auto awgn = [&rng, noise_var] {
    return Cx(rng.normal(0.0, std::sqrt(noise_var / 2.0)),
              rng.normal(0.0, std::sqrt(noise_var / 2.0)));
  };
  for (int block = 0; block < kBlocks; ++block) {
    baseband::Mimo2x2 h;
    for (auto& row : h) {
      for (auto& x : row) {
        x = Cx(rng.normal(0.0, std::sqrt(0.5)),
               rng.normal(0.0, std::sqrt(0.5)));
      }
    }
    std::vector<std::uint8_t> bits(4);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
    const auto symbols = baseband::qpsk_modulate(bits);
    const double g = 1.0 / std::sqrt(2.0);  // per-antenna power split

    const Cx r0 = g * (h[0][0] * symbols[0] + h[0][1] * symbols[1]) + awgn();
    const Cx r1 = g * (h[1][0] * symbols[0] + h[1][1] * symbols[1]) + awgn();
    std::vector<std::uint8_t> sdm_bits;
    try {
      const auto det = baseband::zf_detect(h, r0 / g, r1 / g);
      sdm_bits = baseband::qpsk_demodulate(std::vector<Cx>{det[0], det[1]});
    } catch (const std::domain_error&) {
      sdm_bits = {0, 0, 0, 0};
    }

    const Cx ra0 = r0;  // reuse slot-0 observations for Alamouti slot 0
    const Cx rb0 = r1;
    const Cx ra1 = g * (h[0][0] * (-std::conj(symbols[1])) +
                        h[0][1] * std::conj(symbols[0])) +
                   awgn();
    const Cx rb1 = g * (h[1][0] * (-std::conj(symbols[1])) +
                        h[1][1] * std::conj(symbols[0])) +
                   awgn();
    const baseband::StbcDecoded d = baseband::alamouti_combine(
        ra0 / g, ra1 / g, rb0 / g, rb1 / g, h[0][0], h[1][0], h[0][1],
        h[1][1]);
    const double gain = d.gain > 1e-12 ? d.gain : 1.0;
    const auto stbc_bits = baseband::qpsk_demodulate(
        std::vector<Cx>{d.s0 / gain, d.s1 / gain});

    for (int i = 0; i < 4; ++i) {
      if (sdm_bits[static_cast<std::size_t>(i)] !=
          bits[static_cast<std::size_t>(i)]) {
        ++sdm_err;
      }
      if (stbc_bits[static_cast<std::size_t>(i)] !=
          bits[static_cast<std::size_t>(i)]) {
        ++stbc_err;
      }
      ++bits_total;
    }
  }
  ModeStats out;
  out.ber_sdm = static_cast<double>(sdm_err) / bits_total;
  out.ber_stbc = static_cast<double>(stbc_err) / bits_total;
  // Deliverable throughput: nominal bits per channel use (4 for SDM, 2
  // for STBC) scaled by the packet success rate after rate-1/2 coding of
  // a 1500-byte frame — the raw BER alone flatters SDM because coding
  // turns moderate BER into total loss.
  const int kFrameBits = 1500 * 8;
  const double per_sdm = phy::packet_error_rate(
      phy::coded_ber(phy::CodeRate::kRate12, out.ber_sdm), kFrameBits);
  const double per_stbc = phy::packet_error_rate(
      phy::coded_ber(phy::CodeRate::kRate12, out.ber_stbc), kFrameBits);
  out.tput_sdm = 4.0 * (1.0 - per_sdm);
  out.tput_stbc = 2.0 * (1.0 - per_stbc);
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation: STBC vs SDM (sample-level 2x2 Rayleigh)",
                "STBC always wins BER; SDM wins throughput past a "
                "crossover — the auto-rate's mode switch");
  util::Rng rng(bench::kDefaultSeed);
  util::TextTable t({"SNR (dB)", "BER STBC", "BER SDM",
                     "coded bits/use STBC", "coded bits/use SDM", "winner"});
  double crossover = -100.0;
  for (double snr = -2.0; snr <= 22.0; snr += 2.0) {
    const ModeStats s = measure(snr, rng);
    const bool sdm_wins = s.tput_sdm > s.tput_stbc;
    if (sdm_wins && crossover < -99.0) crossover = snr;
    t.add_row({util::TextTable::num(snr, 0),
               util::TextTable::num(s.ber_stbc, 4),
               util::TextTable::num(s.ber_sdm, 4),
               util::TextTable::num(s.tput_stbc, 2),
               util::TextTable::num(s.tput_sdm, 2),
               sdm_wins ? "SDM" : "STBC"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("SDM overtakes STBC at ~%.0f dB — matching the link "
              "abstraction's mode split (STBC on weak links, SDM on "
              "strong ones).\n",
              crossover);
  return 0;
}
