// Figure 6: (a) per-link throughput with rate control, 40 vs 20 MHz, UDP
// and TCP, across 24 links of varied quality; (b) the optimal MCS chosen
// on each width.
// Paper: ~20% of trials favor 20 MHz (clustered at low throughput /
// SNR < 6 dB); TCP favors 20 MHz more often (~30%) than UDP (~10%); most
// points lie below y = 2x; MCS*(40) is less aggressive than MCS*(20).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "mac/airtime.hpp"
#include "mac/traffic.hpp"
#include "phy/rate_control.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

// MAC+transport goodput of a single saturated link at a width.
double link_goodput(const phy::LinkModel& link, const mac::MacTiming& timing,
                    const mac::TrafficModel& traffic, mac::TrafficType type,
                    phy::ChannelWidth width, double loss_db) {
  const phy::RateDecision d = best_rate_at(link, width, 15.0, loss_db);
  const phy::McsEntry& entry = phy::mcs(d.mcs_index);
  const double rate = entry.rate_bps(width, phy::GuardInterval::kLong800ns);
  const double delay = mac::per_bit_delay_s(timing, rate, 12000, d.per);
  return mac::transport_goodput_bps(traffic, type, 1.0 / delay, d.per);
}

}  // namespace

int main() {
  bench::banner("Figure 6: link throughput 40 vs 20 MHz (rate control)",
                "(a) low-SNR links favor 20 MHz, TCP more often than UDP, "
                "points below y=2x; (b) MCS*(40) <= MCS*(20)");
  const phy::LinkModel link;
  const mac::MacTiming timing;
  const mac::TrafficModel traffic;

  // 24 links spanning the testbed's quality range; like the paper's
  // indoor/outdoor mix, a good fraction sit in the marginal regime where
  // the width decision is interesting.
  std::vector<double> losses;
  for (int i = 0; i < 10; ++i) losses.push_back(78.0 + 2.2 * i);
  for (int i = 0; i < 14; ++i) losses.push_back(99.0 + 0.85 * i);

  std::printf("(a) throughput scatter\n");
  util::TextTable a({"link", "loss(dB)", "snr20(dB)", "UDP 20 (Mbps)",
                     "UDP 40 (Mbps)", "TCP 20 (Mbps)", "TCP 40 (Mbps)"});
  int udp_20_wins = 0;
  int tcp_20_wins = 0;
  int udp_below_2x = 0;
  int live_links = 0;
  for (std::size_t i = 0; i < losses.size(); ++i) {
    const double u20 = link_goodput(link, timing, traffic,
                                    mac::TrafficType::kUdp,
                                    phy::ChannelWidth::k20MHz, losses[i]);
    const double u40 = link_goodput(link, timing, traffic,
                                    mac::TrafficType::kUdp,
                                    phy::ChannelWidth::k40MHz, losses[i]);
    const double t20 = link_goodput(link, timing, traffic,
                                    mac::TrafficType::kTcp,
                                    phy::ChannelWidth::k20MHz, losses[i]);
    const double t40 = link_goodput(link, timing, traffic,
                                    mac::TrafficType::kTcp,
                                    phy::ChannelWidth::k40MHz, losses[i]);
    a.add_row({std::to_string(i + 1), util::TextTable::num(losses[i], 1),
               util::TextTable::num(
                   link.snr_db(15.0, losses[i], phy::ChannelWidth::k20MHz),
                   1),
               bench::mbps(u20), bench::mbps(u40), bench::mbps(t20),
               bench::mbps(t40)});
    if (u20 < 1e5 && u40 < 1e5) continue;
    ++live_links;
    if (u20 > u40) ++udp_20_wins;
    if (t20 > t40) ++tcp_20_wins;
    if (u40 <= 2.0 * u20) ++udp_below_2x;
  }
  std::printf("%s\n", a.to_string().c_str());
  std::printf("20MHz wins: UDP %d/%d (paper ~10%%), TCP %d/%d (paper "
              "~30%%); UDP points below y=2x: %d/%d\n\n",
              udp_20_wins, live_links, tcp_20_wins, live_links,
              udp_below_2x, live_links);

  std::printf("(b) optimal MCS per width\n");
  util::TextTable b({"link", "MCS*(20)", "mode(20)", "MCS*(40)", "mode(40)",
                     "less aggressive on 40?"});
  int less_aggressive = 0;
  int counted = 0;
  for (std::size_t i = 0; i < losses.size(); ++i) {
    const phy::RateDecision d20 =
        best_rate_at(link, phy::ChannelWidth::k20MHz, 15.0, losses[i]);
    const phy::RateDecision d40 =
        best_rate_at(link, phy::ChannelWidth::k40MHz, 15.0, losses[i]);
    const double r20 = phy::mcs(d20.mcs_index)
                           .rate_bps(phy::ChannelWidth::k20MHz,
                                     phy::GuardInterval::kLong800ns);
    const double r40_as20 = phy::mcs(d40.mcs_index)
                                .rate_bps(phy::ChannelWidth::k20MHz,
                                          phy::GuardInterval::kLong800ns);
    const bool less = r40_as20 <= r20 + 1.0;
    b.add_row({std::to_string(i + 1), std::to_string(d20.mcs_index),
               std::string(to_string(d20.mode)),
               std::to_string(d40.mcs_index),
               std::string(to_string(d40.mode)), less ? "yes" : "no"});
    if (d20.goodput_bps > 1e5) {
      ++counted;
      if (less) ++less_aggressive;
    }
  }
  std::printf("%s\n", b.to_string().c_str());
  std::printf("MCS*(40) no more aggressive than MCS*(20) on %d/%d live "
              "links (paper: almost always)\n",
              less_aggressive, counted);
  return 0;
}
