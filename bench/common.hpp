// Shared helpers for the experiment benches: banner printing, the canned
// deployments of the paper's evaluation section, a tiny command-line
// parser (--threads N, --smoke) and a machine-readable throughput
// emitter that appends JSON lines to BENCH_baseband.json so the perf
// trajectory of the baseband engine is tracked across PRs.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "sim/scenario.hpp"
#include "util/table.hpp"

namespace acorn::bench {

inline constexpr std::uint64_t kDefaultSeed = 0xAC0121;

/// Options shared by the baseband benches. `--threads N` sets the packet
/// driver's thread count (0 = hardware concurrency); `--smoke` shrinks
/// packet counts so the bench doubles as a CTest perf_smoke target.
struct BenchOptions {
  int threads = 1;
  bool smoke = false;
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opts.smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opts.threads = std::atoi(argv[++i]);
    }
  }
  return opts;
}

/// Monotonic stopwatch for the throughput records.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Hardware context stamped into every emitted JSON row, so records
/// taken on a 1-core box are distinguishable from multi-core runs
/// without hand-maintained row relabelling (the old `*_determinism_1core`
/// convention).
struct HwContext {
  int hw_threads = 0;
  std::string cpu;  // "model name" from /proc/cpuinfo; empty if unreadable
};

inline const HwContext& hw_context() {
  static const HwContext ctx = [] {
    HwContext c;
    c.hw_threads = static_cast<int>(std::thread::hardware_concurrency());
    std::FILE* f = std::fopen("/proc/cpuinfo", "r");
    if (f != nullptr) {
      char line[256];
      while (std::fgets(line, sizeof(line), f) != nullptr) {
        if (std::strncmp(line, "model name", 10) != 0) continue;
        const char* colon = std::strchr(line, ':');
        if (colon != nullptr) {
          std::string name = colon + 1;
          // Trim edges and drop anything that would break the JSON
          // string (quotes, backslashes, control bytes).
          std::string clean;
          for (const char ch : name) {
            if (ch == '"' || ch == '\\' || static_cast<unsigned char>(ch) < 0x20) {
              continue;
            }
            clean += ch;
          }
          const std::size_t b = clean.find_first_not_of(' ');
          const std::size_t e = clean.find_last_not_of(' ');
          if (b != std::string::npos) c.cpu = clean.substr(b, e - b + 1);
        }
        break;
      }
      std::fclose(f);
    }
    return c;
  }();
  return ctx;
}

/// The hardware fields every emitter appends, leading comma included.
inline const std::string& hw_json_fields() {
  static const std::string fields = [] {
    const HwContext& c = hw_context();
    char buf[320];
    std::snprintf(buf, sizeof(buf), ",\"hw_threads\":%d,\"cpu\":\"%s\"",
                  c.hw_threads, c.cpu.c_str());
    return std::string(buf);
  }();
  return fields;
}

/// Append one JSON line to BENCH_baseband.json (path overridable via
/// ACORN_BENCH_JSON; record label via ACORN_BENCH_LABEL, e.g. "seed" for
/// a before/after comparison). `samples` counts complex baseband samples
/// pushed through the chain, so msamples_per_sec tracks the sample-level
/// work independent of packet size.
inline void emit_throughput(const std::string& bench,
                            const std::string& case_name, double seconds,
                            std::int64_t packets, std::int64_t samples,
                            int threads) {
  const char* path = std::getenv("ACORN_BENCH_JSON");
  const char* label = std::getenv("ACORN_BENCH_LABEL");
  std::FILE* f = std::fopen(path != nullptr ? path : "BENCH_baseband.json",
                            "a");
  if (f == nullptr) return;
  const double pps = seconds > 0.0 ? static_cast<double>(packets) / seconds
                                   : 0.0;
  const double msps = seconds > 0.0
                          ? static_cast<double>(samples) / seconds / 1e6
                          : 0.0;
  std::fprintf(f,
               "{\"bench\":\"%s\",\"case\":\"%s\",\"label\":\"%s\","
               "\"threads\":%d,\"packets\":%lld,\"seconds\":%.6f,"
               "\"packets_per_sec\":%.1f,\"msamples_per_sec\":%.3f%s}\n",
               bench.c_str(), case_name.c_str(),
               label != nullptr ? label : "current", threads,
               static_cast<long long>(packets), seconds, pps, msps,
               hw_json_fields().c_str());
  std::fclose(f);
}

/// Append one JSON line to BENCH_network.json (path overridable via
/// ACORN_BENCH_JSON) for the network-layer scenario sweeps: `evals`
/// counts full-network Wlan evaluations pushed through the engine.
/// Unlike the baseband emitter, the record label is usually passed
/// explicitly ("seed" for the reference evaluator rows, "after" for the
/// flat engine) because one bench run times both implementations;
/// `label_override == nullptr` falls back to ACORN_BENCH_LABEL.
inline void emit_evals(const std::string& bench,
                       const std::string& case_name, double seconds,
                       std::int64_t evals, int threads,
                       const char* label_override = nullptr) {
  const char* path = std::getenv("ACORN_BENCH_JSON");
  const char* label = label_override != nullptr
                          ? label_override
                          : std::getenv("ACORN_BENCH_LABEL");
  std::FILE* f = std::fopen(path != nullptr ? path : "BENCH_network.json",
                            "a");
  if (f == nullptr) return;
  const double eps = seconds > 0.0 ? static_cast<double>(evals) / seconds
                                   : 0.0;
  std::fprintf(f,
               "{\"bench\":\"%s\",\"case\":\"%s\",\"label\":\"%s\","
               "\"threads\":%d,\"evals\":%lld,\"seconds\":%.6f,"
               "\"evals_per_sec\":%.1f%s}\n",
               bench.c_str(), case_name.c_str(),
               label != nullptr ? label : "current", threads,
               static_cast<long long>(evals), seconds, eps,
               hw_json_fields().c_str());
  std::fclose(f);
}

/// Append one JSON line to BENCH_service.json (path overridable via
/// ACORN_BENCH_JSON) for the acornd protocol benches: `events` counts
/// request frames fully round-tripped (sent, dispatched, replied).
/// `extra_json` lets a caller attach bench-specific fields (fleet size,
/// worker count, epoch percentiles); it must be empty or start with ','.
inline void emit_events(const std::string& bench,
                        const std::string& case_name, double seconds,
                        std::int64_t events,
                        const char* label_override = nullptr,
                        const std::string& extra_json = std::string()) {
  const char* path = std::getenv("ACORN_BENCH_JSON");
  const char* label = label_override != nullptr
                          ? label_override
                          : std::getenv("ACORN_BENCH_LABEL");
  std::FILE* f = std::fopen(path != nullptr ? path : "BENCH_service.json",
                            "a");
  if (f == nullptr) return;
  const double eps = seconds > 0.0 ? static_cast<double>(events) / seconds
                                   : 0.0;
  std::fprintf(f,
               "{\"bench\":\"%s\",\"case\":\"%s\",\"label\":\"%s\","
               "\"events\":%lld,\"seconds\":%.6f,"
               "\"events_per_sec\":%.1f%s%s}\n",
               bench.c_str(), case_name.c_str(),
               label != nullptr ? label : "current",
               static_cast<long long>(events), seconds, eps,
               extra_json.c_str(), hw_json_fields().c_str());
  std::fclose(f);
}

inline void banner(const std::string& experiment,
                   const std::string& paper_claim,
                   std::uint64_t seed = kDefaultSeed) {
  std::printf("\n==================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("seed: %llu\n", static_cast<unsigned long long>(seed));
  std::printf("==================================================\n");
}

inline std::string mbps(double bps, int precision = 2) {
  return util::TextTable::num(bps / 1e6, precision);
}

/// The paper's Topology 1: AP0 serves poor clients, AP1 good ones,
/// cells isolated from each other.
inline sim::ScenarioBuilder topology1() {
  sim::ScenarioBuilder b;
  b.cells = {
      sim::CellSpec{{sim::kPoorLinkLoss, sim::kPoorLinkLoss + 0.2}},
      sim::CellSpec{{sim::kGoodLinkLoss, sim::kGoodLinkLoss + 2.0}}};
  return b;
}

/// The paper's Topology 2: five APs mixing good, marginal and poor cells.
inline sim::ScenarioBuilder topology2() {
  sim::ScenarioBuilder b;
  b.cells = {
      sim::CellSpec{{sim::kGoodLinkLoss, sim::kGoodLinkLoss + 2.0}},
      sim::CellSpec{{sim::kGoodLinkLoss + 1.0}},
      sim::CellSpec{{sim::kGoodLinkLoss + 3.0}},
      sim::CellSpec{{sim::kPoorLinkLoss, sim::kPoorLinkLoss + 0.2}},
      sim::CellSpec{{sim::kWeakLinkLoss}},
  };
  return b;
}

/// The Fig. 11 dense deployment: three mutually contending APs, one good
/// client and two poor ones.
inline sim::ScenarioBuilder dense3() {
  sim::ScenarioBuilder b;
  b.cells = {sim::CellSpec{{sim::kGoodLinkLoss}},
             sim::CellSpec{{sim::kPoorLinkLoss}},
             sim::CellSpec{{sim::kPoorLinkLoss + 0.5}}};
  b.ap_ap_loss_db = 85.0;
  return b;
}

}  // namespace acorn::bench
