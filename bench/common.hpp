// Shared helpers for the experiment benches: banner printing and the
// canned deployments of the paper's evaluation section.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "sim/scenario.hpp"
#include "util/table.hpp"

namespace acorn::bench {

inline constexpr std::uint64_t kDefaultSeed = 0xAC0121;

inline void banner(const std::string& experiment,
                   const std::string& paper_claim,
                   std::uint64_t seed = kDefaultSeed) {
  std::printf("\n==================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("seed: %llu\n", static_cast<unsigned long long>(seed));
  std::printf("==================================================\n");
}

inline std::string mbps(double bps, int precision = 2) {
  return util::TextTable::num(bps / 1e6, precision);
}

/// The paper's Topology 1: AP0 serves poor clients, AP1 good ones,
/// cells isolated from each other.
inline sim::ScenarioBuilder topology1() {
  sim::ScenarioBuilder b;
  b.cells = {
      sim::CellSpec{{sim::kPoorLinkLoss, sim::kPoorLinkLoss + 0.2}},
      sim::CellSpec{{sim::kGoodLinkLoss, sim::kGoodLinkLoss + 2.0}}};
  return b;
}

/// The paper's Topology 2: five APs mixing good, marginal and poor cells.
inline sim::ScenarioBuilder topology2() {
  sim::ScenarioBuilder b;
  b.cells = {
      sim::CellSpec{{sim::kGoodLinkLoss, sim::kGoodLinkLoss + 2.0}},
      sim::CellSpec{{sim::kGoodLinkLoss + 1.0}},
      sim::CellSpec{{sim::kGoodLinkLoss + 3.0}},
      sim::CellSpec{{sim::kPoorLinkLoss, sim::kPoorLinkLoss + 0.2}},
      sim::CellSpec{{sim::kWeakLinkLoss}},
  };
  return b;
}

/// The Fig. 11 dense deployment: three mutually contending APs, one good
/// client and two poor ones.
inline sim::ScenarioBuilder dense3() {
  sim::ScenarioBuilder b;
  b.cells = {sim::CellSpec{{sim::kGoodLinkLoss}},
             sim::CellSpec{{sim::kPoorLinkLoss}},
             sim::CellSpec{{sim::kPoorLinkLoss + 0.5}}};
  b.ap_ap_loss_db = 85.0;
  return b;
}

}  // namespace acorn::bench
