// Dynamic channel bonding: gap-to-optimal report throughput + quality
// floors, and the multi-channel slot simulator's event rate.
//
// The full run is the acceptance configuration: 200 dense random-drop
// scenarios (5 APs, 4 basic channels), each solved by Algorithm 2 AND
// the exact Kai et al. optimum (6^5 = 7776 assignments through the
// memoizing oracle), with all three width policies evaluated on
// Algorithm 2's allocation. The bench enforces the quality floors the
// subsystem advertises (exact optimum on every scenario of the family,
// mean/p95 gap bounds) and re-runs the sweep at a second thread count
// to prove bit-identical results, so `ctest -L perf_smoke` catches both
// perf and determinism regressions. Rows land in BENCH_network.json
// where `evals` counts full-network oracle evaluations (Algorithm 2's
// scans plus the exhaustive search).
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "dcb/gap_report.hpp"
#include "mac/dcf.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

std::int64_t total_evals(const dcb::GapReport& r) {
  std::int64_t evals = 0;
  for (const dcb::GapScenario& s : r.scenarios) {
    evals += s.acorn_evaluations + s.optimal_evaluations;
  }
  return evals;
}

bool reports_identical(const dcb::GapReport& a, const dcb::GapReport& b) {
  if (a.scenarios.size() != b.scenarios.size()) return false;
  for (std::size_t i = 0; i < a.scenarios.size(); ++i) {
    const dcb::GapScenario& x = a.scenarios[i];
    const dcb::GapScenario& y = b.scenarios[i];
    if (x.acorn_bps != y.acorn_bps || x.optimal_bps != y.optimal_bps ||
        x.gap != y.gap || x.exact != y.exact ||
        x.policy_bps != y.policy_bps) {
      return false;
    }
  }
  return a.mean_gap == b.mean_gap && a.p95_gap == b.p95_gap &&
         a.max_gap == b.max_gap;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::banner("DCB gap-to-optimal sweep + multi-channel DCF",
                "Algorithm 2 vs exact optimum on dense random drops; "
                "per-transmission width policies");

  dcb::GapReportConfig cfg;
  cfg.num_scenarios = opts.smoke ? 12 : 200;
  cfg.seed = bench::kDefaultSeed;
  cfg.num_threads = opts.threads;
  if (opts.smoke) {
    cfg.drop.num_aps = 4;  // 6^4 exact searches keep smoke ~100 ms
    cfg.drop.num_clients = 12;
  }

  const bench::Stopwatch watch;
  const dcb::GapReport report = dcb::run_gap_report(cfg);
  const double seconds = watch.seconds();
  const std::int64_t evals = total_evals(report);
  bench::emit_evals("bench_dcb", "gap_report_dense", seconds, evals,
                    cfg.num_threads);

  std::printf("\n%s\n", dcb::format_gap_report(report).c_str());
  std::printf("sweep: %.3fs, %lld oracle evaluations (%.0f evals/s)\n",
              seconds, static_cast<long long>(evals),
              seconds > 0.0 ? static_cast<double>(evals) / seconds : 0.0);

  bool ok = true;

  // Determinism: the same sweep at a different worker count must be
  // bit-identical (scenario streams derive from (seed, index)).
  dcb::GapReportConfig alt = cfg;
  alt.num_threads = cfg.num_threads == 2 ? 3 : 2;
  const bench::Stopwatch alt_watch;
  const dcb::GapReport alt_report = dcb::run_gap_report(alt);
  bench::emit_evals("bench_dcb", "gap_report_dense", alt_watch.seconds(),
                    total_evals(alt_report), alt.num_threads,
                    "determinism");
  if (!reports_identical(report, alt_report)) {
    std::printf("FAIL: gap report differs between %d and %d threads\n",
                cfg.num_threads, alt.num_threads);
    ok = false;
  }

  // Quality floors — what the subsystem advertises for this family.
  if (report.num_exact != static_cast<int>(report.scenarios.size())) {
    std::printf("FAIL: exact optimum missing on %d scenarios\n",
                static_cast<int>(report.scenarios.size()) -
                    report.num_exact);
    ok = false;
  }
  // Measured on the acceptance run: mean gap ~5%, p95 ~12%. The floors
  // leave generous room for family-parameter jitter while still
  // catching an allocator regression (a broken Algorithm 2 shows up as
  // tens of percent).
  if (report.mean_gap > 0.15 || report.p95_gap > 0.30) {
    std::printf("FAIL: Algorithm 2 gap regressed (mean %.1f%%, p95 "
                "%.1f%%)\n",
                100.0 * report.mean_gap, 100.0 * report.p95_gap);
    ok = false;
  }

  // Slot-level simulator throughput: the validation workload (bonded
  // always-max AP + basic secondary occupant + basic primary contender).
  {
    std::vector<mac::MultiDcfStation> stations(3);
    stations[0].channel = net::Channel::bonded(0);
    stations[0].mode = mac::WidthMode::kAlwaysMax;
    stations[1].channel = net::Channel::basic(0);
    stations[2].channel = net::Channel::basic(1);
    const long long events = opts.smoke ? 200000 : 2000000;
    util::Rng rng(bench::kDefaultSeed);
    const bench::Stopwatch slot_watch;
    const mac::MultiDcfResult r = mac::simulate_dcf_multichannel(
        mac::DcfConfig{}, stations, events, rng);
    const double slot_seconds = slot_watch.seconds();
    bench::emit_evals("bench_dcb", "multichannel_dcf", slot_seconds,
                      r.successes + r.collisions, 1);
    std::printf("slot simulator: %lld events in %.3fs (%.0f events/s)\n",
                static_cast<long long>(r.successes + r.collisions),
                slot_seconds,
                slot_seconds > 0.0
                    ? static_cast<double>(r.successes + r.collisions) /
                          slot_seconds
                    : 0.0);
    // Conservative absolute smoke floor (measured >10x higher even on
    // the 1-core recording box); relative floors need a reference path
    // this subsystem doesn't have. Not enforced under sanitizers.
    if (!kSanitized && slot_seconds > 0.0 &&
        static_cast<double>(r.successes + r.collisions) / slot_seconds <
            50000.0) {
      std::printf("FAIL: slot simulator below the event-rate floor\n");
      ok = false;
    }
  }

  const double evals_per_sec =
      seconds > 0.0 ? static_cast<double>(evals) / seconds : 0.0;
  if (!kSanitized && evals_per_sec < 20000.0) {
    std::printf("FAIL: gap sweep below the evaluation-rate floor "
                "(%.0f evals/s)\n",
                evals_per_sec);
    ok = false;
  }

  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
