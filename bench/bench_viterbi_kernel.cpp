// Decoder-only microbench for the butterfly Viterbi trellis kernel:
// the SIMD forward pass, the scalar butterfly fallback and the kept
// pre-butterfly reference decoder over the same coded stream, plus the
// full decode path (levels + forward + traceback) for hard and soft
// inputs. Throughput is reported in trellis steps (coded bit pairs) per
// second — the `samples` field of the JSON record counts steps here,
// not baseband samples.
#include <array>
#include <cstdio>
#include <random>
#include <vector>

#include "baseband/convolutional.hpp"
#include "baseband/viterbi_kernel.hpp"
#include "baseband/viterbi_reference.hpp"
#include "common.hpp"
#include "util/table.hpp"

using namespace acorn;
using baseband::ConvolutionalCode;

namespace {

struct Case {
  const char* name;
  double seconds = 0.0;
  std::int64_t decodes = 0;
  std::int64_t steps = 0;
};

void report(util::TextTable& t, const Case& c, double ref_msteps) {
  const double msteps = static_cast<double>(c.steps) / c.seconds / 1e6;
  t.add_row({c.name, util::TextTable::num(msteps, 1),
             util::TextTable::num(msteps / ref_msteps, 1)});
  bench::emit_throughput("bench_viterbi_kernel", c.name, c.seconds,
                         c.decodes, c.steps, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::banner("Viterbi trellis kernel: butterfly/SIMD vs reference",
                "coded chain decodes as fast as the uncoded chain moves "
                "bits");
  std::printf("SIMD kernel active: %s\n",
              baseband::viterbi::simd_active() ? "yes" : "no (scalar)");

  const int iters = opts.smoke ? 40 : 2000;
  const std::size_t payload = 1200;  // 150-byte packet
  const ConvolutionalCode code;
  std::mt19937_64 gen(bench::kDefaultSeed);
  std::vector<std::uint8_t> bits(payload);
  for (auto& b : bits) b = static_cast<std::uint8_t>(gen() & 1);
  const auto coded = code.encode(bits, true);
  const std::size_t steps = coded.size() / 2;

  // Lightly noisy hard stream and matching soft LLRs.
  auto noisy = coded;
  std::bernoulli_distribution flip(0.04);
  for (auto& b : noisy) {
    if (flip(gen)) b ^= 1;
  }
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = (coded[i] ? -4.0 : 4.0) + noise(gen);
  }

  std::vector<std::uint8_t> out(payload);
  baseband::ViterbiWorkspace ws;
  std::vector<std::int16_t> levels(coded.size());
  std::vector<std::uint64_t> decisions(steps);
  std::array<std::int16_t, baseband::viterbi::kNumStates> metric;
  baseband::viterbi::levels_from_hard(noisy, levels.data());

  Case forward_simd{"forward"};
  Case forward_scalar{"forward_scalar"};
  Case decode_hard{"decode_hard"};
  Case decode_soft{"decode_soft"};
  Case ref_hard{"reference_hard"};
  Case ref_soft{"reference_soft"};

  // Warm up (sizes the workspace, faults the pages).
  code.decode_into(noisy, out, ws);
  code.decode_soft_into(llrs, out, ws);

  {
    const bench::Stopwatch sw;
    for (int i = 0; i < iters; ++i) {
      baseband::viterbi::forward(levels.data(), steps, decisions.data(),
                                 metric.data());
    }
    forward_simd.seconds = sw.seconds();
  }
  {
    const bench::Stopwatch sw;
    for (int i = 0; i < iters; ++i) {
      baseband::viterbi::forward_scalar(levels.data(), steps,
                                        decisions.data(), metric.data());
    }
    forward_scalar.seconds = sw.seconds();
  }
  {
    const bench::Stopwatch sw;
    for (int i = 0; i < iters; ++i) code.decode_into(noisy, out, ws);
    decode_hard.seconds = sw.seconds();
  }
  {
    const bench::Stopwatch sw;
    for (int i = 0; i < iters; ++i) code.decode_soft_into(llrs, out, ws);
    decode_soft.seconds = sw.seconds();
  }
  // The reference decoder is slow; keep its share of the runtime small.
  const int ref_iters = std::max(1, iters / 10);
  {
    const bench::Stopwatch sw;
    for (int i = 0; i < ref_iters; ++i) {
      (void)baseband::reference::viterbi_decode(noisy);
    }
    ref_hard.seconds = sw.seconds();
  }
  {
    const bench::Stopwatch sw;
    for (int i = 0; i < ref_iters; ++i) {
      (void)baseband::reference::viterbi_decode_soft(llrs);
    }
    ref_soft.seconds = sw.seconds();
  }

  for (Case* c : {&forward_simd, &forward_scalar, &decode_hard,
                  &decode_soft}) {
    c->decodes = iters;
    c->steps = static_cast<std::int64_t>(steps) * iters;
  }
  for (Case* c : {&ref_hard, &ref_soft}) {
    c->decodes = ref_iters;
    c->steps = static_cast<std::int64_t>(steps) * ref_iters;
  }

  const double ref_msteps =
      static_cast<double>(ref_hard.steps) / ref_hard.seconds / 1e6;
  util::TextTable t({"case", "Msteps/s", "x vs reference_hard"});
  for (const Case* c : {&forward_simd, &forward_scalar, &decode_hard,
                        &decode_soft, &ref_hard, &ref_soft}) {
    report(t, *c, ref_msteps);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("(1 step = 1 trellis stage = 2 coded bits; %zu steps per "
              "%zu-bit packet)\n",
              steps, payload);
  return 0;
}
