// Figure 8: per-channel PER stability.
// Paper: on the MIMO-stabilised testbed, a link's PER at MCS 15 varies
// negligibly across the twelve 20 MHz channels (and the six 40 MHz
// bonds) — the assumption behind measuring one channel and remapping.
//
// Our substrate models this directly: per-channel variation enters as a
// small deterministic frequency-dependent SNR ripple (hash of the channel
// index, sigma ~0.4 dB), and the bench verifies the resulting PER spread
// stays small.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "net/channels.hpp"
#include "phy/link.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

// Deterministic per-(link, channel) SNR ripple in dB.
double channel_ripple_db(int link_id, int channel_index) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(link_id) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<std::uint64_t>(channel_index + 1) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  h *= 0x2545F4914F6CDD1DULL;
  h ^= h >> 29;
  // Map to roughly N(0, 0.4 dB) via a coarse uniform sum.
  const double u1 = static_cast<double>(h & 0xffff) / 65535.0;
  const double u2 = static_cast<double>((h >> 16) & 0xffff) / 65535.0;
  const double u3 = static_cast<double>((h >> 32) & 0xffff) / 65535.0;
  return (u1 + u2 + u3 - 1.5) * 0.8;
}

}  // namespace

int main() {
  bench::banner("Figure 8: link PER across channels (MCS 15)",
                "variation across same-width channels is negligible");
  const phy::LinkModel link;
  const net::ChannelPlan plan(12);
  const struct {
    const char* name;
    double loss_db;
  } links[] = {{"Link1", 86.0}, {"Link2", 89.0}, {"Link3", 92.0}};

  for (const auto width :
       {phy::ChannelWidth::k20MHz, phy::ChannelWidth::k40MHz}) {
    const int n_channels = width == phy::ChannelWidth::k20MHz
                               ? plan.num_basic()
                               : plan.num_bonded();
    std::printf("--- %s ---\n", to_string(width).c_str());
    util::TextTable t({"channel", "Link1 PER", "Link2 PER", "Link3 PER"});
    std::vector<std::vector<double>> pers(3);
    for (int ch = 0; ch < n_channels; ++ch) {
      std::vector<std::string> row = {std::to_string(ch)};
      for (int l = 0; l < 3; ++l) {
        const double snr =
            link.snr_db(15.0, links[l].loss_db, width) +
            channel_ripple_db(l, ch + (width == phy::ChannelWidth::k40MHz
                                           ? 100
                                           : 0));
        const double per = link.per(phy::mcs(15), snr);
        pers[static_cast<std::size_t>(l)].push_back(per);
        row.push_back(util::TextTable::num(per, 3));
      }
      t.add_row(row);
    }
    std::printf("%s", t.to_string().c_str());
    for (int l = 0; l < 3; ++l) {
      const auto& xs = pers[static_cast<std::size_t>(l)];
      std::printf("%s: mean PER %.3f, stddev %.3f\n", links[l].name,
                  util::mean(xs), util::stddev(xs));
    }
    std::printf("\n");
  }
  std::printf("stddev << mean spread across links: the paper's "
              "one-channel-measurement assumption holds.\n");
  return 0;
}
