// Ablation: the O(1/(Delta+1)) worst case (paper §4.2) made concrete.
// The worst local optimum traps every AP on the *same* color; this bench
// constructs that start on cliques of increasing Delta, measures where
// the greedy actually lands, and compares against the theoretical floor
// Y*/(Delta+1) and the brute-force optimum.
#include <cstdio>

#include "baselines/optimal.hpp"
#include "common.hpp"
#include "core/allocation.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

// A clique of n mutually-contending APs, one good client each.
sim::ScenarioBuilder clique(int n) {
  sim::ScenarioBuilder b;
  for (int i = 0; i < n; ++i) {
    b.cells.push_back(sim::CellSpec{{sim::kGoodLinkLoss + i}});
  }
  b.ap_ap_loss_db = 85.0;
  return b;
}

}  // namespace

int main() {
  bench::banner("Ablation: worst-case approximation vs practice",
                "greedy never lands below Y*/(Delta+1) and usually far "
                "above it");
  util::TextTable t({"APs (clique)", "Delta", "channels", "Y* (Mbps)",
                     "floor Y*/(D+1)", "greedy from same-color",
                     "greedy/Y*", "optimal (Mbps)"});
  for (int n : {2, 3, 4}) {
    const sim::ScenarioBuilder b = clique(n);
    const sim::Wlan wlan = b.build();
    const net::Association assoc = b.intended_association();
    const int delta = n - 1;
    // Enough channels that isolation is possible only partially (n
    // channels for n APs: basic-only isolation, bonds must overlap).
    const net::ChannelPlan plan(n);
    const double upper = core::isolated_upper_bound_bps(wlan, assoc);

    // Adversarial start: everyone on the same bond.
    net::ChannelAssignment start(static_cast<std::size_t>(n),
                                 net::Channel::bonded(0));
    const core::ChannelAllocator alloc{plan};
    const core::AllocationResult greedy = alloc.allocate(wlan, assoc, start);

    std::string optimal = "-";
    if (n <= 3) {
      optimal = bench::mbps(
          baselines::optimal_assignment(wlan, assoc, plan).total_bps);
    }
    t.add_row({std::to_string(n), std::to_string(delta), std::to_string(n),
               bench::mbps(upper), bench::mbps(upper / (delta + 1)),
               bench::mbps(greedy.final_bps),
               util::TextTable::num(greedy.final_bps / upper, 2), optimal});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("the theoretical floor is loose: in practice the greedy "
              "escapes the same-color optimum (matches Fig. 14's "
              "conclusion).\n");
  return 0;
}
