// Ablation: the throughput-vs-fairness tradeoff (paper §4: "we tradeoff
// some level of fairness for significant gains in the total network-wide
// throughput", citing PF-scheduler practice).
// Compares ACORN against the delay-minimizing [17] adaptation and the
// Gibbs-sampler variant on total throughput AND Jain's fairness index of
// per-client goodputs.
#include <cstdio>

#include "baselines/gibbs.hpp"
#include "baselines/kauffmann17.hpp"
#include "baselines/simple.hpp"
#include "common.hpp"
#include "core/controller.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

struct Outcome {
  double total_mbps = 0.0;
  double fairness = 0.0;
};

Outcome measure(const sim::Wlan& wlan, const net::Association& assoc,
                const net::ChannelAssignment& assignment) {
  const sim::Evaluation eval = wlan.evaluate(assoc, assignment);
  std::vector<double> per_client;
  for (const sim::ApStats& ap : eval.per_ap) {
    for (double g : ap.client_goodput_bps) per_client.push_back(g);
  }
  Outcome out;
  out.total_mbps = eval.total_goodput_bps / 1e6;
  out.fairness = per_client.empty() ? 1.0 : util::jain_fairness(per_client);
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation: total throughput vs Jain fairness",
                "ACORN trades some fairness for network throughput (by "
                "design, like PF scheduling)");
  const int kTrials = 6;
  std::vector<double> acorn_tput, acorn_fair, k17_tput, k17_fair,
      gibbs_tput, gibbs_fair;
  util::Rng rng(bench::kDefaultSeed);
  for (int trial = 0; trial < kTrials; ++trial) {
    net::Topology topo = net::Topology::random(5, 15, 130.0, rng);
    net::PathLossModel plm;
    plm.shadowing_sigma_db = 4.0;
    net::LinkBudget budget(topo, plm, rng);
    const sim::Wlan wlan(std::move(topo), std::move(budget),
                         sim::WlanConfig{});

    const core::AcornController acorn;
    const core::ConfigureResult ours = acorn.configure(wlan, rng);
    const Outcome a = measure(wlan, ours.association, ours.assignment);
    acorn_tput.push_back(a.total_mbps);
    acorn_fair.push_back(a.fairness);

    const baselines::Kauffmann17 k17{net::ChannelPlan(12)};
    const baselines::Kauffmann17::Result theirs = k17.configure(wlan);
    const Outcome k = measure(wlan, theirs.association, theirs.assignment);
    k17_tput.push_back(k.total_mbps);
    k17_fair.push_back(k.fairness);

    const baselines::GibbsAllocator gibbs{net::ChannelPlan(12)};
    const net::ChannelAssignment gibbs_ch = gibbs.allocate(wlan, rng);
    const net::Association rss = baselines::rss_associate_all(wlan);
    const Outcome g = measure(wlan, rss, gibbs_ch);
    gibbs_tput.push_back(g.total_mbps);
    gibbs_fair.push_back(g.fairness);
  }

  util::TextTable t({"scheme", "mean total (Mbps)", "mean Jain index"});
  t.add_row({"ACORN", util::TextTable::num(util::mean(acorn_tput), 1),
             util::TextTable::num(util::mean(acorn_fair), 3)});
  t.add_row({"[17] adapted (delay-greedy)",
             util::TextTable::num(util::mean(k17_tput), 1),
             util::TextTable::num(util::mean(k17_fair), 3)});
  t.add_row({"Gibbs + RSS",
             util::TextTable::num(util::mean(gibbs_tput), 1),
             util::TextTable::num(util::mean(gibbs_fair), 3)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("expected shape: ACORN highest throughput; fairness "
              "comparable or slightly lower than the delay-minimizing "
              "baseline (the paper's stated tradeoff).\n");
  return 0;
}
