// Figure 2: received QPSK constellations with 52 vs 108 subcarriers.
// Paper: with CB the received symbols scatter further from the ideal
// points (lower per-subcarrier energy -> higher baud error rate).
#include <cstdio>

#include "baseband/bermac.hpp"
#include "common.hpp"
#include "util/stats.hpp"

using namespace acorn;

namespace {

struct ConstellationStats {
  double evm_rms = 0.0;
  double mean_radius = 0.0;
  double snr_db = 0.0;
  int quadrant_errors = 0;
  int points = 0;
};

ConstellationStats measure(phy::ChannelWidth width, std::uint64_t seed) {
  baseband::BermacConfig cfg;
  cfg.width = width;
  cfg.packets = 8;
  cfg.packet_bytes = 400;
  cfg.tx_dbm = 8.0;
  cfg.path_loss_db = 93.0;
  cfg.capture_symbols = 2000;
  util::Rng rng(seed);
  const baseband::BermacResult r = run_bermac(cfg, rng);
  ConstellationStats out;
  out.evm_rms = r.evm_rms;
  out.snr_db = r.mean_snr_db;
  out.points = static_cast<int>(r.constellation.size());
  const double ideal = 1.0 / std::sqrt(2.0);
  for (const baseband::Cx& p : r.constellation) {
    out.mean_radius += std::abs(p);
    // A symbol decoded in the wrong quadrant relative to the nearest
    // ideal point is a baud error candidate.
    if (std::abs(p.real()) < 1e-12 || std::abs(p.imag()) < 1e-12 ||
        std::abs(std::abs(p.real()) - ideal) > ideal ||
        std::abs(std::abs(p.imag()) - ideal) > ideal) {
      ++out.quadrant_errors;
    }
  }
  out.mean_radius /= std::max(out.points, 1);
  return out;
}

}  // namespace

int main() {
  bench::banner(
      "Figure 2: RX constellation spread, 52 vs 108 subcarriers",
      "CB halves per-subcarrier energy -> visibly fuzzier constellation");
  const ConstellationStats s20 =
      measure(phy::ChannelWidth::k20MHz, bench::kDefaultSeed);
  const ConstellationStats s40 =
      measure(phy::ChannelWidth::k40MHz, bench::kDefaultSeed + 1);

  util::TextTable t({"metric", "20MHz (52 sc)", "40MHz (108 sc)"});
  t.add_row({"captured symbols", std::to_string(s20.points),
             std::to_string(s40.points)});
  t.add_row({"mean per-subcarrier SNR (dB)",
             util::TextTable::num(s20.snr_db, 1),
             util::TextTable::num(s40.snr_db, 1)});
  t.add_row({"EVM (rms, fraction of Es)",
             util::TextTable::num(s20.evm_rms, 3),
             util::TextTable::num(s40.evm_rms, 3)});
  t.add_row({"mean symbol radius (ideal 1.0)",
             util::TextTable::num(s20.mean_radius, 3),
             util::TextTable::num(s40.mean_radius, 3)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("EVM ratio 40/20: %.2f (expect > 1: wider spread with CB)\n",
              s40.evm_rms / s20.evm_rms);
  return 0;
}
