// Ablation: frame aggregation (A-MPDU) and channel bonding.
// The paper's 2010 testbed sends one MPDU per channel access, so the
// fixed MAC overhead (DIFS + backoff + preamble + ACK) eats most of the
// PHY-rate advantage of bonding at cell level. Aggregation amortizes
// that overhead, letting CB's nominal 2.08x reach the application — this
// bench quantifies how the CB gain of a good cell grows with the A-MPDU
// size, and confirms the poor-cell/20 MHz story is aggregation-proof.
#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

using namespace acorn;

int main() {
  bench::banner("Ablation: A-MPDU aggregation vs channel-bonding gain",
                "overhead amortization moves the cell-level CB gain from "
                "~1.1x toward the PHY ratio ~2x");
  util::TextTable t({"A-MPDU frames", "good cell 20 (Mbps)",
                     "good cell 40 (Mbps)", "CB gain",
                     "poor cell 20 (Mbps)", "poor cell 40 (Mbps)",
                     "20 still wins?"});
  for (int frames : {1, 2, 4, 8, 16, 32}) {
    sim::ScenarioBuilder b;
    b.cells = {sim::CellSpec{{sim::kGoodLinkLoss}},
               sim::CellSpec{{sim::kPoorLinkLoss}}};
    b.config.timing.ampdu_frames = frames;
    const sim::Wlan wlan = b.build();
    const double g20 =
        wlan.isolated_cell_bps(0, {0}, phy::ChannelWidth::k20MHz);
    const double g40 =
        wlan.isolated_cell_bps(0, {0}, phy::ChannelWidth::k40MHz);
    const double p20 =
        wlan.isolated_cell_bps(1, {1}, phy::ChannelWidth::k20MHz);
    const double p40 =
        wlan.isolated_cell_bps(1, {1}, phy::ChannelWidth::k40MHz);
    t.add_row({std::to_string(frames), bench::mbps(g20), bench::mbps(g40),
               util::TextTable::num(g40 / g20, 2) + "x", bench::mbps(p20),
               bench::mbps(p40), p20 > p40 ? "yes" : "NO"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("the poor cell prefers 20 MHz at every aggregation level — "
              "ACORN's decision logic is robust to the MAC generation; "
              "only the magnitude of the good cell's CB gain grows.\n");
  return 0;
}
