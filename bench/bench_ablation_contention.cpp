// Ablation: contention model. The paper charges a full contention slot
// for any spectral overlap (M = 1/(|con|+1)); the overlap-weighted
// variant charges a 20 MHz neighbor inside a 40 MHz bond half a slot.
// This bench quantifies how much the modeling choice moves the results
// on dense deployments — and whether ACORN's *decisions* change.
#include <cstdio>

#include "common.hpp"
#include "core/controller.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

sim::Wlan build(bool weighted) {
  sim::ScenarioBuilder b = bench::dense3();
  b.config.weighted_contention = weighted;
  return b.build();
}

}  // namespace

int main() {
  bench::banner("Ablation: binary vs overlap-weighted contention",
                "the paper's binary model is conservative for mixed-width "
                "overlap");
  const net::Association assoc = bench::dense3().intended_association();

  // Fixed mixed-width assignment where the models differ: AP0 bonded,
  // AP1 on one of its halves, AP2 clear.
  const net::ChannelAssignment mixed = {net::Channel::bonded(0),
                                        net::Channel::basic(1),
                                        net::Channel::basic(2)};
  util::TextTable t({"model", "AP1 share", "AP1 (Mbps)", "total (Mbps)"});
  for (const bool weighted : {false, true}) {
    const sim::Wlan wlan = build(weighted);
    const sim::Evaluation eval = wlan.evaluate(assoc, mixed);
    t.add_row({weighted ? "overlap-weighted" : "binary (paper)",
               util::TextTable::num(eval.per_ap[0].medium_share, 2),
               bench::mbps(eval.per_ap[0].goodput_bps),
               bench::mbps(eval.total_goodput_bps)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Do ACORN's allocations differ under the two models?
  util::TextTable d({"model", "AP1", "AP2", "AP3", "final (Mbps)"});
  for (const bool weighted : {false, true}) {
    const sim::Wlan wlan = build(weighted);
    const core::AcornController acorn({net::ChannelPlan(4), {}, {}, 1800.0});
    const core::AllocationResult r = acorn.reallocate(
        wlan, assoc,
        {net::Channel::bonded(0), net::Channel::bonded(0),
         net::Channel::bonded(0)});
    d.add_row({weighted ? "overlap-weighted" : "binary (paper)",
               r.assignment[0].to_string(), r.assignment[1].to_string(),
               r.assignment[2].to_string(), bench::mbps(r.final_bps)});
  }
  std::printf("%s\n", d.to_string().c_str());
  std::printf("conclusion: the weighted model credits partial overlap "
              "with extra share, but the allocation structure (bond the "
              "good AP, isolate the poor ones) is stable across models.\n");
  return 0;
}
