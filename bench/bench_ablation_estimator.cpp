// Ablation: genie oracle vs the deployed measurement pipeline.
// Algorithm 2's quality depends on what each AP can estimate. The genie
// oracle evaluates candidate channels exactly; the measurement oracle
// only has per-client SNR measured on the *current* channel, the ±3 dB
// width calibration, theoretical BER/PER, and the IAPP census — exactly
// the paper's §4.2 information set. The gap between the two is the cost
// of running on estimates.
#include <cstdio>

#include "baselines/simple.hpp"
#include "common.hpp"
#include "core/estimated_oracle.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace acorn;

int main() {
  bench::banner("Ablation: exact (genie) vs measurement-driven allocation",
                "coarse estimates suffice — the paper's design premise");
  const int kTrials = 8;
  std::vector<double> genie_scores;
  std::vector<double> measured_scores;
  util::Rng rng(bench::kDefaultSeed);
  util::TextTable t({"trial", "genie (Mbps)", "measurement (Mbps)",
                     "measurement / genie"});
  for (int trial = 0; trial < kTrials; ++trial) {
    net::Topology topo = net::Topology::random(5, 12, 130.0, rng);
    net::PathLossModel plm;
    plm.shadowing_sigma_db = 4.0;
    net::LinkBudget budget(topo, plm, rng);
    const sim::Wlan wlan(std::move(topo), std::move(budget),
                         sim::WlanConfig{});
    const net::Association assoc = baselines::rss_associate_all(wlan);
    const core::ChannelAllocator alloc{net::ChannelPlan(12)};
    const net::ChannelAssignment start =
        alloc.random_assignment(wlan.topology().num_aps(), rng);

    const core::AllocationResult genie = alloc.allocate(wlan, assoc, start);
    const core::AllocationResult measured = alloc.allocate(
        wlan, assoc, start, core::make_measurement_oracle(wlan, start));
    // Score both under the truth.
    const double genie_truth =
        wlan.evaluate(assoc, genie.assignment).total_goodput_bps;
    const double measured_truth =
        wlan.evaluate(assoc, measured.assignment).total_goodput_bps;
    genie_scores.push_back(genie_truth);
    measured_scores.push_back(measured_truth);
    t.add_row({std::to_string(trial + 1), bench::mbps(genie_truth),
               bench::mbps(measured_truth),
               util::TextTable::num(measured_truth / genie_truth, 3)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("mean: genie %.1f Mbps, measurement %.1f Mbps (%.1f%% of "
              "genie)\n",
              util::mean(genie_scores) / 1e6,
              util::mean(measured_scores) / 1e6,
              100.0 * util::mean(measured_scores) /
                  util::mean(genie_scores));
  std::printf("the deployed pipeline gives up only a few percent — the "
              "paper's \"coarse estimate of link quality\" claim.\n");
  return 0;
}
