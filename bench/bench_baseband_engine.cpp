// Monte-Carlo baseband engine throughput: fixed-configuration packet
// sweeps through the uncoded (BERMAC) and coded (phy_chain) chains, the
// workloads that dominate every paper figure. Appends packets/sec and
// Msamples/sec records to BENCH_baseband.json so the perf trajectory is
// tracked across PRs (ACORN_BENCH_LABEL tags before/after runs).
#include <cstdio>

#include "baseband/bermac.hpp"
#include "baseband/ofdm.hpp"
#include "baseband/phy_chain.hpp"
#include "common.hpp"

using namespace acorn;

namespace {

std::int64_t bermac_samples_per_packet(const baseband::BermacConfig& cfg) {
  const baseband::Ofdm ofdm(cfg.width);
  const std::int64_t antennas = cfg.use_stbc ? 2 : 1;
  return antennas * static_cast<std::int64_t>(
                        ofdm.num_ofdm_symbols(
                            static_cast<std::size_t>(cfg.packet_bytes) * 8 /
                            2) *
                        static_cast<std::size_t>(ofdm.symbol_length()));
}

void run_bermac_case(const char* name, bool stbc,
                     const bench::BenchOptions& opts) {
  baseband::BermacConfig cfg;
  cfg.packets = opts.smoke ? 10 : 200;
  cfg.packet_bytes = 1500;
  cfg.use_stbc = stbc;
  cfg.rayleigh = false;
  cfg.num_taps = 1;
  cfg.path_loss_db = stbc ? 94.0 : 96.0;
  cfg.tx_dbm = 6.0;
  cfg.num_threads = opts.threads;
  util::Rng rng(bench::kDefaultSeed);
  const bench::Stopwatch timer;
  const baseband::BermacResult r = run_bermac(cfg, rng);
  const double s = timer.seconds();
  std::printf("%-22s %8.1f pkt/s  (ber %.3g, per %.3f)\n", name,
              cfg.packets / s, r.ber(), r.per());
  bench::emit_throughput("bench_baseband_engine", name, s, cfg.packets,
                         cfg.packets * bermac_samples_per_packet(cfg),
                         opts.threads);
}

void run_chain_case(const char* name, bool soft,
                    const bench::BenchOptions& opts) {
  baseband::PhyChainConfig cfg;
  cfg.mcs_index = 2;
  cfg.packet_bytes = 300;
  cfg.rayleigh = false;
  cfg.num_taps = 1;
  cfg.path_loss_db = 95.0;
  cfg.tx_dbm = 0.0;
  cfg.soft_decision = soft;
  cfg.num_threads = opts.threads;
  const int packets = opts.smoke ? 10 : 100;
  util::Rng rng(bench::kDefaultSeed);
  const bench::Stopwatch timer;
  const baseband::PhyChainResult r = run_phy_chain(cfg, packets, rng);
  const double s = timer.seconds();
  const baseband::Ofdm ofdm(cfg.width);
  // Rough coded-packet sample count: data bits -> rate-1/2 + tail ->
  // punctured at MCS2's 3/4 -> QPSK -> OFDM symbols.
  const std::int64_t bits = static_cast<std::int64_t>(cfg.packet_bytes) * 8;
  const std::int64_t punctured = (2 * (bits + 6) * 2 + 2) / 3;
  const std::int64_t n_cbps = ofdm.num_data_subcarriers() * 2;
  const std::int64_t n_sym = (punctured + n_cbps - 1) / n_cbps;
  std::printf("%-22s %8.1f pkt/s  (per %.3f)\n", name, packets / s, r.per());
  bench::emit_throughput("bench_baseband_engine", name, s, packets,
                         packets * n_sym * ofdm.symbol_length(),
                         opts.threads);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::banner("Baseband engine throughput",
                "packet sweeps behind Figs. 1-6 and the coded calibration");
  std::printf("threads: %d%s\n\n", opts.threads,
              opts.smoke ? " (smoke)" : "");
  run_bermac_case("bermac_qpsk_siso", false, opts);
  run_bermac_case("bermac_qpsk_stbc", true, opts);
  run_chain_case("phy_chain_mcs2_hard", false, opts);
  run_chain_case("phy_chain_mcs2_soft", true, opts);
  return 0;
}
