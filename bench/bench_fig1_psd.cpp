// Figure 1: PSD estimate with different channel widths.
// Paper: at the same total Tx power, the in-band per-subcarrier PSD of a
// 40 MHz channel sits ~3 dB below that of a 20 MHz channel (-92 vs -95 dB
// in their WARP measurement).
#include <cstdio>

#include "baseband/ofdm.hpp"
#include "baseband/psd.hpp"
#include "baseband/qpsk.hpp"
#include "common.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

using namespace acorn;

namespace {

baseband::PsdEstimate measure(phy::ChannelWidth width, double tx_dbm,
                              util::Rng& rng) {
  const baseband::Ofdm ofdm(width);
  std::vector<std::uint8_t> bits(120000);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
  const auto tx =
      ofdm.modulate(baseband::qpsk_modulate(bits), util::dbm_to_mw(tx_dbm));
  return baseband::welch_psd(tx, 256, ofdm.sample_rate_hz());
}

}  // namespace

int main() {
  bench::banner("Figure 1: PSD estimate, 20 vs 40 MHz at equal Tx",
                "~3 dB per-subcarrier drop when bonding (-92 -> -95 dB)");
  util::Rng rng(bench::kDefaultSeed);
  const double tx_dbm = 15.0;
  const auto psd20 = measure(phy::ChannelWidth::k20MHz, tx_dbm, rng);
  const auto psd40 = measure(phy::ChannelWidth::k40MHz, tx_dbm, rng);

  // Decimated PSD profile around Fc (as in the paper's plot).
  util::TextTable profile({"freq offset (MHz)", "PSD 20MHz (dBm/Hz)",
                           "PSD 40MHz (dBm/Hz)"});
  for (double f = -24e6; f <= 24e6; f += 4e6) {
    auto level_at = [f](const baseband::PsdEstimate& psd) -> std::string {
      if (f < psd.freq_hz.front() || f > psd.freq_hz.back()) return "-";
      std::size_t best = 0;
      for (std::size_t k = 1; k < psd.freq_hz.size(); ++k) {
        if (std::abs(psd.freq_hz[k] - f) <
            std::abs(psd.freq_hz[best] - f)) {
          best = k;
        }
      }
      return util::TextTable::num(psd.psd_dbm_hz[best], 1);
    };
    profile.add_row({util::TextTable::num(f / 1e6, 0), level_at(psd20),
                     level_at(psd40)});
  }
  std::printf("%s\n", profile.to_string().c_str());

  const double lvl20 = baseband::inband_level_dbm_hz(psd20, 14e6);
  const double lvl40 = baseband::inband_level_dbm_hz(psd40, 28e6);
  util::TextTable summary({"metric", "20MHz", "40MHz"});
  summary.add_row({"in-band level (dBm/Hz)", util::TextTable::num(lvl20, 2),
                   util::TextTable::num(lvl40, 2)});
  std::printf("%s\n", summary.to_string().c_str());
  std::printf("per-subcarrier PSD gap: %.2f dB (theory 10*log10(108/52) = "
              "3.17 dB)\n",
              lvl20 - lvl40);
  return 0;
}
