// acornd protocol throughput: events per second through a live daemon.
//
// An in-process daemon listens on a Unix socket; a single client
// pipelines batches of SNR/load update frames and drains the replies.
// The figure of merit is fully round-tripped protocol events per second
// — encode, socket, poll loop, shard mailbox, apply, reply — on one
// client connection. The service is built to sustain >= 10k events/s
// single-threaded; the run fails loudly if it cannot.
//
// Appends JSON lines to BENCH_service.json (ACORN_BENCH_JSON overrides
// the path) so the service's perf trajectory is tracked across PRs.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <variant>
#include <vector>

#include "common.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"

using namespace acorn;
using namespace acorn::service;

namespace {

constexpr const char* kFloor = R"(# bench floor: 3 APs, 8 clients
pathloss exponent 3.5
pathloss shadowing 4
channels 12
seed 7
ap 10 10
ap 50 10
ap 30 40
client 12 12
client 14  8
client 48 14
client 52  9
client 28 38
client 35 42
client 30 25
client 45 30
)";

constexpr std::uint32_t kWlan = 1;
constexpr int kBatch = 64;

// Pipelined updates: up to 2*kBatch requests stay on the wire — a
// batch is drained only after the next one is sent, so the daemon's
// group commit for batch k overlaps with the arrival of batch k+1, as
// a real controller client batching measurement reports would behave.
double pump_events(Client& client, std::int64_t total, util::Rng& rng) {
  const bench::Stopwatch clock;
  std::int64_t sent = 0;
  std::int64_t recvd = 0;
  while (recvd < total) {
    const int n = static_cast<int>(
        std::min<std::int64_t>(kBatch, total - sent));
    for (int i = 0; i < n; ++i) {
      const std::uint32_t client_id =
          static_cast<std::uint32_t>(rng.uniform_int(0, 7));
      if (rng.uniform() < 0.5) {
        client.send(SnrUpdate{kWlan,
                              static_cast<std::uint32_t>(rng.uniform_int(0, 2)),
                              client_id, rng.uniform(70.0, 120.0)});
      } else {
        client.send(LoadUpdate{kWlan, client_id, rng.uniform()});
      }
    }
    sent += n;
    while (sent - recvd > kBatch || (sent == total && recvd < total)) {
      (void)client.recv();
      ++recvd;
    }
  }
  return clock.seconds();
}

// Serial request/reply round trips (no pipelining): per-event latency.
double pump_serial(Client& client, std::int64_t total, util::Rng& rng) {
  const bench::Stopwatch clock;
  for (std::int64_t i = 0; i < total; ++i) {
    client.call(SnrUpdate{kWlan, 0,
                          static_cast<std::uint32_t>(rng.uniform_int(0, 7)),
                          rng.uniform(70.0, 120.0)});
  }
  return clock.seconds();
}

// One full measurement pass against a fresh daemon. When `state_dir`
// is non-empty the daemon journals every event to its write-ahead log
// and withholds replies until fsync, so the WAL rows measure true
// durable throughput, not buffered writes.
double run_pass(const bench::BenchOptions& opts, const std::string& state_dir,
                const char* suffix) {
  DaemonConfig config;
  config.unix_path =
      "/tmp/acorn_bench_" + std::to_string(::getpid()) + suffix + ".sock";
  config.epoch_s = 0.0;  // epochs on demand; the bench times raw events
  config.state_dir = state_dir;
  Daemon daemon(config);
  daemon.start();

  Client client = Client::connect_unix(config.unix_path);
  client.call(RegisterWlan{kWlan, kFloor});
  for (std::uint32_t c = 0; c < 8; ++c) {
    client.call(ClientJoin{kWlan, c});
  }
  client.call(ForceReconfigure{kWlan});

  util::Rng rng(bench::kDefaultSeed);
  const std::int64_t pipelined_n = opts.smoke ? 5000 : 200000;
  const std::int64_t serial_n = opts.smoke ? 1000 : 20000;
  const bool wal = !state_dir.empty();
  const char* tag = wal ? " [wal]" : "";

  // Warm up the path (allocators, shard caches) before timing.
  (void)pump_events(client, 1000, rng);

  const double pipe_s = pump_events(client, pipelined_n, rng);
  const double pipe_eps = static_cast<double>(pipelined_n) / pipe_s;
  std::printf(
      "pipelined (batch %d)%s: %lld events in %.3f s -> %.0f events/s\n",
      kBatch, tag, static_cast<long long>(pipelined_n), pipe_s, pipe_eps);
  bench::emit_events("service_events",
                     wal ? "pipelined_updates_wal" : "pipelined_updates",
                     pipe_s, pipelined_n);

  const double serial_s = pump_serial(client, serial_n, rng);
  const double serial_eps = static_cast<double>(serial_n) / serial_s;
  std::printf("serial round trips%s: %lld events in %.3f s -> %.0f events/s "
              "(%.1f us/event)\n",
              tag, static_cast<long long>(serial_n), serial_s, serial_eps,
              1e6 * serial_s / static_cast<double>(serial_n));
  bench::emit_events("service_events",
                     wal ? "serial_roundtrip_wal" : "serial_roundtrip",
                     serial_s, serial_n);

  // One reconfiguration epoch after the event storm, for scale.
  const bench::Stopwatch epoch_clock;
  client.call(ForceReconfigure{kWlan});
  std::printf("reconfiguration epoch after the storm%s: %.2f ms\n", tag,
              1e3 * epoch_clock.seconds());

  const Message stats = client.call(QueryStats{});
  const auto& st = std::get<StatsReply>(stats);
  std::printf("daemon counters%s: %llu frames, %llu events, %llu epochs, "
              "%llu wal records / %llu flushes\n",
              tag, static_cast<unsigned long long>(st.frames_rx),
              static_cast<unsigned long long>(st.events_total),
              static_cast<unsigned long long>(st.epochs_total),
              static_cast<unsigned long long>(st.wal_records),
              static_cast<unsigned long long>(st.wal_flushes));

  client.close();
  daemon.stop();
  return pipe_eps;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::banner("acornd protocol event throughput",
                "online controller sustains >= 10k events/s per connection");

  const double pipe_eps = run_pass(opts, "", "");

  char wal_dir[] = "/tmp/acorn_bench_wal_XXXXXX";
  if (::mkdtemp(wal_dir) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const double wal_eps = run_pass(opts, wal_dir, "_wal");
  const std::string cleanup = std::string("rm -rf '") + wal_dir + "'";
  [[maybe_unused]] const int rc = std::system(cleanup.c_str());

  bool ok = true;
  if (pipe_eps < 10000.0) {
    std::fprintf(stderr,
                 "FAIL: pipelined throughput %.0f events/s below the 10k "
                 "floor\n",
                 pipe_eps);
    ok = false;
  }
  if (wal_eps < 10000.0) {
    std::fprintf(stderr,
                 "FAIL: WAL-on pipelined throughput %.0f events/s below the "
                 "10k floor\n",
                 wal_eps);
    ok = false;
  }
  if (!ok) {
    return 1;
  }
  std::printf("throughput floor (10k events/s, WAL on and off): met\n");
  return 0;
}
