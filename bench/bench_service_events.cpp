// acornd protocol throughput: events per second through a live daemon.
//
// Part 1 (single WLAN): an in-process daemon listens on a Unix socket; a
// client pipelines batches of SNR/load update frames and drains the
// replies. The figure of merit is fully round-tripped protocol events
// per second — encode, socket, poll loop, shard mailbox, apply, reply —
// on one client connection, WAL off and on. The service is built to
// sustain >= 10k pipelined events/s; the run fails loudly if it cannot.
//
// Part 2 (fleet sweeps): N WLANs multiplexed over M pooled shard
// workers, driven by the deterministic trace/load_gen schedule (session
// joins/leaves from the association-duration model, SNR drift and load
// hints while sessions live). Each (fleet size, workers) cell reports
// aggregate events/s plus reconfiguration-epoch latency percentiles
// sampled across the fleet after the churn. Durable rows repeat the
// sweep with the WAL on: the shared group-commit mode (one coalesced
// fdatasync for the whole fleet) against the per-shard baseline (one
// fdatasync per WLAN), the ratio the shared WAL exists to win.
//
// Appends JSON lines to BENCH_service.json (ACORN_BENCH_JSON overrides
// the path), every row stamped with the recording hardware, so the
// service's perf trajectory is tracked across PRs and across machines.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "common.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "trace/load_gen.hpp"

using namespace acorn;
using namespace acorn::service;

namespace {

constexpr const char* kFloor = R"(# bench floor: 3 APs, 8 clients
pathloss exponent 3.5
pathloss shadowing 4
channels 12
seed 7
ap 10 10
ap 50 10
ap 30 40
client 12 12
client 14  8
client 48 14
client 52  9
client 28 38
client 35 42
client 30 25
client 45 30
)";

constexpr std::uint32_t kWlan = 1;
constexpr int kBatch = 64;

// A serial durable round trip cannot beat the storage device: every
// event must be individually fdatasync'd before its reply. Measure the
// device's sync cost so the serial_roundtrip_wal floor can be compared
// against physics instead of a wishful constant.
double measure_device_sync_us() {
  char path[] = "/tmp/acorn_bench_syncprobe_XXXXXX";
  const int fd = ::mkstemp(path);
  if (fd < 0) return -1.0;
  ::unlink(path);
  const char byte = 'x';
  (void)::pwrite(fd, &byte, 1, 0);
  (void)::fdatasync(fd);  // warm-up
  constexpr int kIters = 64;
  const bench::Stopwatch clock;
  for (int i = 0; i < kIters; ++i) {
    (void)::pwrite(fd, &byte, 1, 0);
    (void)::fdatasync(fd);
  }
  const double us = 1e6 * clock.seconds() / kIters;
  ::close(fd);
  return us;
}

// Pipelined updates: up to 2*kBatch requests stay on the wire — a
// batch is drained only after the next one is sent, so the daemon's
// group commit for batch k overlaps with the arrival of batch k+1, as
// a real controller client batching measurement reports would behave.
double pump_events(Client& client, std::int64_t total, util::Rng& rng) {
  const bench::Stopwatch clock;
  std::int64_t sent = 0;
  std::int64_t recvd = 0;
  while (recvd < total) {
    const int n = static_cast<int>(
        std::min<std::int64_t>(kBatch, total - sent));
    for (int i = 0; i < n; ++i) {
      const std::uint32_t client_id =
          static_cast<std::uint32_t>(rng.uniform_int(0, 7));
      if (rng.uniform() < 0.5) {
        client.send(SnrUpdate{kWlan,
                              static_cast<std::uint32_t>(rng.uniform_int(0, 2)),
                              client_id, rng.uniform(70.0, 120.0)});
      } else {
        client.send(LoadUpdate{kWlan, client_id, rng.uniform()});
      }
    }
    sent += n;
    while (sent - recvd > kBatch || (sent == total && recvd < total)) {
      (void)client.recv();
      ++recvd;
    }
  }
  return clock.seconds();
}

// Serial request/reply round trips (no pipelining): per-event latency.
double pump_serial(Client& client, std::int64_t total, util::Rng& rng) {
  const bench::Stopwatch clock;
  for (std::int64_t i = 0; i < total; ++i) {
    client.call(SnrUpdate{kWlan, 0,
                          static_cast<std::uint32_t>(rng.uniform_int(0, 7)),
                          rng.uniform(70.0, 120.0)});
  }
  return clock.seconds();
}

struct PassResult {
  double pipe_eps = 0.0;
  double serial_eps = 0.0;
};

// One full measurement pass against a fresh daemon. When `state_dir`
// is non-empty the daemon journals every event to its write-ahead log
// and withholds replies until fsync, so the WAL rows measure true
// durable throughput, not buffered writes.
PassResult run_pass(const bench::BenchOptions& opts,
                    const std::string& state_dir, const char* suffix,
                    const std::string& serial_extra,
                    WalMode wal_mode = WalMode::kShared,
                    const char* row_suffix = "") {
  DaemonConfig config;
  config.unix_path =
      "/tmp/acorn_bench_" + std::to_string(::getpid()) + suffix + ".sock";
  config.epoch_s = 0.0;  // epochs on demand; the bench times raw events
  config.state_dir = state_dir;
  config.wal_mode = wal_mode;
  Daemon daemon(config);
  daemon.start();

  Client client = Client::connect_unix(config.unix_path);
  client.call(RegisterWlan{kWlan, kFloor});
  for (std::uint32_t c = 0; c < 8; ++c) {
    client.call(ClientJoin{kWlan, c});
  }
  client.call(ForceReconfigure{kWlan});

  util::Rng rng(bench::kDefaultSeed);
  const std::int64_t pipelined_n = opts.smoke ? 5000 : 200000;
  const std::int64_t serial_n = opts.smoke ? 1000 : 20000;
  const bool wal = !state_dir.empty();
  const char* tag =
      !wal ? ""
           : (wal_mode == WalMode::kShared ? " [wal shared]"
                                           : " [wal per-shard]");

  // Warm up the path (allocators, shard caches) before timing.
  (void)pump_events(client, 1000, rng);

  const double pipe_s = pump_events(client, pipelined_n, rng);
  PassResult out;
  out.pipe_eps = static_cast<double>(pipelined_n) / pipe_s;
  std::printf(
      "pipelined (batch %d)%s: %lld events in %.3f s -> %.0f events/s\n",
      kBatch, tag, static_cast<long long>(pipelined_n), pipe_s,
      out.pipe_eps);
  bench::emit_events("service_events",
                     (wal ? std::string("pipelined_updates_wal")
                          : std::string("pipelined_updates")) +
                         row_suffix,
                     pipe_s, pipelined_n);

  const double serial_s = pump_serial(client, serial_n, rng);
  out.serial_eps = static_cast<double>(serial_n) / serial_s;
  std::printf("serial round trips%s: %lld events in %.3f s -> %.0f events/s "
              "(%.1f us/event)\n",
              tag, static_cast<long long>(serial_n), serial_s,
              out.serial_eps,
              1e6 * serial_s / static_cast<double>(serial_n));
  bench::emit_events("service_events",
                     (wal ? std::string("serial_roundtrip_wal")
                          : std::string("serial_roundtrip")) +
                         row_suffix,
                     serial_s, serial_n, nullptr, serial_extra);

  // One reconfiguration epoch after the event storm, for scale.
  const bench::Stopwatch epoch_clock;
  client.call(ForceReconfigure{kWlan});
  std::printf("reconfiguration epoch after the storm%s: %.2f ms\n", tag,
              1e3 * epoch_clock.seconds());

  const Message stats = client.call(QueryStats{});
  const auto& st = std::get<StatsReply>(stats);
  std::printf("daemon counters%s: %llu frames, %llu events, %llu epochs, "
              "%llu wal records / %llu flushes\n",
              tag, static_cast<unsigned long long>(st.frames_rx),
              static_cast<unsigned long long>(st.events_total),
              static_cast<unsigned long long>(st.epochs_total),
              static_cast<unsigned long long>(st.wal_records),
              static_cast<unsigned long long>(st.wal_flushes));

  client.close();
  daemon.stop();
  return out;
}

struct FleetOutcome {
  double events_per_s = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

// One fleet cell: `num_wlans` shards over `workers` pooled workers,
// trace-driven churn on one pipelined connection, then epoch latency
// sampled via timed ForceReconfigure round trips across the fleet.
// A non-empty `state_dir` turns durability on in the given WAL mode:
// every reply is withheld until its record is fsynced, so these rows
// measure durable fleet throughput.
FleetOutcome run_fleet(int num_wlans, int workers,
                       std::int64_t target_events,
                       const std::string& state_dir = std::string(),
                       WalMode wal_mode = WalMode::kShared,
                       const std::string& extra_json = std::string()) {
  DaemonConfig config;
  config.unix_path = "/tmp/acorn_bench_fleet_" + std::to_string(::getpid()) +
                     "_" + std::to_string(num_wlans) + "_" +
                     std::to_string(workers) + ".sock";
  config.epoch_s = 0.0;  // epochs sampled explicitly below
  config.workers = workers;
  config.state_dir = state_dir;
  config.wal_mode = wal_mode;
  Daemon daemon(config);
  daemon.start();
  Client client = Client::connect_unix(config.unix_path);

  // Register the fleet, pipelined; every WLAN shares the same floor
  // text (deployment parsing is cheap and the RateTable is shared).
  const std::string floor = trace::synthetic_floor(3, 8, 7);
  {
    int sent = 0;
    int recvd = 0;
    while (recvd < num_wlans) {
      while (sent < num_wlans && sent - recvd < kBatch) {
        client.send(
            RegisterWlan{static_cast<std::uint32_t>(1 + sent), floor});
        ++sent;
      }
      (void)client.recv();
      ++recvd;
    }
  }

  // Trace-driven churn, scaled to the target event count: generate a
  // pilot schedule, stretch the horizon to cover the target, truncate
  // the overshoot. Deterministic in (fleet size, seed).
  trace::FleetLoadConfig lc;
  lc.num_wlans = static_cast<std::uint32_t>(num_wlans);
  lc.clients_per_wlan = 8;
  lc.aps_per_wlan = 3;
  lc.seed = bench::kDefaultSeed;
  lc.duration_scale = 0.1;  // ~3 min sessions: visible churn at bench scale
  lc.horizon_s = 600.0;
  std::vector<trace::LoadEvent> events = trace::generate_fleet_load(lc);
  if (static_cast<std::int64_t>(events.size()) < target_events) {
    lc.horizon_s *= 1.2 * static_cast<double>(target_events) /
                    static_cast<double>(std::max<std::size_t>(
                        1, events.size()));
    events = trace::generate_fleet_load(lc);
  }
  if (static_cast<std::int64_t>(events.size()) > target_events) {
    events.resize(static_cast<std::size_t>(target_events));
  }

  const bench::Stopwatch clock;
  std::size_t sent = 0;
  std::size_t recvd = 0;
  while (recvd < events.size()) {
    while (sent < events.size() && sent - recvd < 2 * kBatch) {
      const trace::LoadEvent& e = events[sent];
      switch (e.kind) {
        case trace::LoadEventKind::kJoin:
          client.send(ClientJoin{e.wlan_id, e.client});
          break;
        case trace::LoadEventKind::kLeave:
          client.send(ClientLeave{e.wlan_id, e.client});
          break;
        case trace::LoadEventKind::kSnr:
          client.send(SnrUpdate{e.wlan_id, e.ap, e.client, e.value});
          break;
        case trace::LoadEventKind::kLoad:
          client.send(LoadUpdate{e.wlan_id, e.client, e.value});
          break;
      }
      ++sent;
    }
    (void)client.recv();
    ++recvd;
  }
  FleetOutcome out;
  const double churn_s = clock.seconds();
  out.events_per_s = static_cast<double>(events.size()) / churn_s;

  // Epoch latency across the fleet: timed serial ForceReconfigure round
  // trips on an even sample of WLANs (64 caps the sampling cost).
  std::vector<double> epoch_ms;
  const int stride = std::max(1, num_wlans / 64);
  for (int w = 0; w < num_wlans; w += stride) {
    const bench::Stopwatch t;
    (void)client.call(ForceReconfigure{static_cast<std::uint32_t>(1 + w)});
    epoch_ms.push_back(1e3 * t.seconds());
  }
  std::sort(epoch_ms.begin(), epoch_ms.end());
  const auto pct = [&epoch_ms](double p) {
    const std::size_t i = static_cast<std::size_t>(
        p * static_cast<double>(epoch_ms.size()));
    return epoch_ms[std::min(epoch_ms.size() - 1, i)];
  };
  out.p50_ms = pct(0.50);
  out.p95_ms = pct(0.95);
  out.p99_ms = pct(0.99);

  const bool wal = !state_dir.empty();
  const char* tag =
      !wal ? ""
           : (wal_mode == WalMode::kShared ? " [wal shared]"
                                           : " [wal per-shard]");
  std::printf("fleet %5d wlans x %d workers%s: %7zu events in %.3f s -> "
              "%8.0f events/s | epoch p50/p95/p99 %.2f/%.2f/%.2f ms\n",
              num_wlans, workers, tag, events.size(), churn_s,
              out.events_per_s, out.p50_ms, out.p95_ms, out.p99_ms);
  if (wal) {
    // The coalescing the shared mode exists for, straight from the
    // daemon: how many records each fdatasync acknowledged.
    const Message stats = client.call(QueryStats{});
    const auto& st = std::get<StatsReply>(stats);
    std::printf("    wal: %llu syncs for %llu records -> %.1f events per "
                "fdatasync\n",
                static_cast<unsigned long long>(st.wal_syncs),
                static_cast<unsigned long long>(st.wal_coalesced_events),
                st.wal_syncs > 0
                    ? static_cast<double>(st.wal_coalesced_events) /
                          static_cast<double>(st.wal_syncs)
                    : 0.0);
  }
  char extra[192];
  std::snprintf(extra, sizeof(extra),
                ",\"wlans\":%d,\"workers\":%d,\"epoch_p50_ms\":%.3f,"
                "\"epoch_p95_ms\":%.3f,\"epoch_p99_ms\":%.3f",
                num_wlans, workers, out.p50_ms, out.p95_ms, out.p99_ms);
  const std::string row_suffix =
      !wal ? ""
           : (wal_mode == WalMode::kShared ? "_wal" : "_wal_pershard");
  bench::emit_events("service_fleet",
                     "fleet_" + std::to_string(num_wlans) + "_w" +
                         std::to_string(workers) + row_suffix,
                     churn_s, static_cast<std::int64_t>(events.size()),
                     nullptr, std::string(extra) + extra_json);

  client.close();
  daemon.stop();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::banner("acornd protocol event throughput",
                "online controller sustains >= 10k events/s per connection");
  const int hw = std::max(1, static_cast<int>(
                                 std::thread::hardware_concurrency()));
  const double sync_us = measure_device_sync_us();
  std::printf("device fdatasync: %.1f us (-> <= %.0f serial durable "
              "round trips/s on this disk)\n",
              sync_us, sync_us > 0.0 ? 1e6 / sync_us : 0.0);

  const PassResult plain = run_pass(opts, "", "", "");
  char serial_extra[64];
  std::snprintf(serial_extra, sizeof(serial_extra),
                ",\"device_sync_us\":%.1f", sync_us);
  char wal_dir[] = "/tmp/acorn_bench_wal_XXXXXX";
  if (::mkdtemp(wal_dir) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const PassResult durable = run_pass(opts, wal_dir, "_wal", serial_extra);
  std::string cleanup = std::string("rm -rf '") + wal_dir + "'";
  [[maybe_unused]] int rc = std::system(cleanup.c_str());
  // Per-shard baseline of the same single-WLAN passes (with one WLAN
  // the shared mode's cross-shard coalescing cannot help; the rows
  // document that it does not hurt either).
  char pershard_dir[] = "/tmp/acorn_bench_walp_XXXXXX";
  if (::mkdtemp(pershard_dir) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const PassResult durable_pershard =
      run_pass(opts, pershard_dir, "_walp", serial_extra,
               WalMode::kPerShard, "_pershard");
  cleanup = std::string("rm -rf '") + pershard_dir + "'";
  rc = std::system(cleanup.c_str());

  // Fleet sweeps: WLANs x pooled shard workers.
  std::printf("\nfleet sweeps (trace-driven churn, pooled executor):\n");
  std::vector<int> fleets =
      opts.smoke ? std::vector<int>{16, 64}
                 : std::vector<int>{16, 256, 2048, 8192};
  std::vector<int> worker_counts{1, 4, hw};
  std::sort(worker_counts.begin(), worker_counts.end());
  worker_counts.erase(
      std::unique(worker_counts.begin(), worker_counts.end()),
      worker_counts.end());
  if (opts.smoke && worker_counts.size() > 2) worker_counts.resize(2);
  const std::int64_t fleet_target = opts.smoke ? 2000 : 100000;
  double w1_big = 0.0;
  double w4_big = 0.0;
  for (const int n : fleets) {
    for (const int m : worker_counts) {
      const FleetOutcome fo = run_fleet(n, m, fleet_target);
      if (n == 2048 && m == 1) w1_big = fo.events_per_s;
      if (n == 2048 && m == 4) w4_big = fo.events_per_s;
    }
  }

  // Durable fleet sweeps: the same churn with every reply withheld
  // until fsync. Shared mode rows across the fleet sizes, plus one
  // per-shard baseline at 256 WLANs — the cell the >= 5x coalescing
  // floor is asserted on.
  std::printf("\ndurable fleet sweeps (WAL on, group commit):\n");
  const std::vector<int> durable_fleets =
      opts.smoke ? std::vector<int>{16, 64} : std::vector<int>{16, 256, 2048};
  const std::int64_t durable_target = opts.smoke ? 2000 : 50000;
  double shared_256 = 0.0;
  double pershard_256 = 0.0;
  const int compare_fleet = opts.smoke ? 16 : 256;
  for (const int n : durable_fleets) {
    for (const int m : worker_counts) {
      char dir[] = "/tmp/acorn_bench_dfleet_XXXXXX";
      if (::mkdtemp(dir) == nullptr) continue;
      const FleetOutcome fo =
          run_fleet(n, m, durable_target, dir, WalMode::kShared,
                    serial_extra);
      if (n == compare_fleet && m == worker_counts.back()) {
        shared_256 = fo.events_per_s;
      }
      cleanup = std::string("rm -rf '") + dir + "'";
      rc = std::system(cleanup.c_str());
    }
  }
  {
    char dir[] = "/tmp/acorn_bench_dfleet_XXXXXX";
    if (::mkdtemp(dir) != nullptr) {
      const FleetOutcome fo =
          run_fleet(compare_fleet, worker_counts.back(), durable_target,
                    dir, WalMode::kPerShard, serial_extra);
      pershard_256 = fo.events_per_s;
      cleanup = std::string("rm -rf '") + dir + "'";
      rc = std::system(cleanup.c_str());
    }
  }

  bool ok = true;
  if (plain.pipe_eps < 10000.0) {
    std::fprintf(stderr,
                 "FAIL: pipelined throughput %.0f events/s below the 10k "
                 "floor\n",
                 plain.pipe_eps);
    ok = false;
  }
  if (durable.pipe_eps < 10000.0) {
    std::fprintf(stderr,
                 "FAIL: WAL-on pipelined throughput %.0f events/s below the "
                 "10k floor\n",
                 durable.pipe_eps);
    ok = false;
  }
  // Serial durable round trips are device-bound (one fdatasync each):
  // the 20k floor only applies where the disk can physically reach it.
  if (sync_us > 0.0 && sync_us <= 40.0) {
    if (durable.serial_eps < 20000.0) {
      std::fprintf(stderr,
                   "FAIL: serial WAL round trips %.0f events/s below the "
                   "20k floor (device sync %.1f us)\n",
                   durable.serial_eps, sync_us);
      ok = false;
    }
  } else {
    std::printf("serial WAL floor relaxed: device fdatasync is %.1f us "
                "(ceiling %.0f events/s); recorded, not enforced\n",
                sync_us, sync_us > 0.0 ? 1e6 / sync_us : 0.0);
  }
  // Pooled scaling floor: 4 workers must at least double the 1-worker
  // aggregate on real multi-core hardware. On fewer than 4 hardware
  // threads the sweep still runs (determinism-only, per the repo's
  // 1-core convention) but the ratio is not enforced.
  if (!opts.smoke && hw >= 4 && w1_big > 0.0 && w4_big > 0.0) {
    if (w4_big < 2.0 * w1_big) {
      std::fprintf(stderr,
                   "FAIL: 2048-WLAN fleet at 4 workers (%.0f events/s) is "
                   "not 2x the 1-worker row (%.0f events/s)\n",
                   w4_big, w1_big);
      ok = false;
    }
  } else if (!opts.smoke && hw < 4) {
    std::printf("fleet scaling floor relaxed: %d hardware thread(s) — "
                "rows record determinism, not parallel speedup\n",
                hw);
  }
  // Group-commit coalescing floor: at 256 durable WLANs one shared
  // fdatasync acknowledges the whole fleet's pending batches, so the
  // shared mode must beat the per-shard baseline by >= 5x. Only
  // enforced where the per-shard baseline is actually device-bound
  // (sync_us > 40 us: a fast NVMe or a lying volatile cache syncs so
  // cheaply that per-shard keeps up, and the ratio measures the disk,
  // not the design) and where workers can overlap (hw >= 4).
  if (!opts.smoke && hw >= 4 && sync_us > 40.0 && shared_256 > 0.0 &&
      pershard_256 > 0.0) {
    if (shared_256 < 5.0 * pershard_256) {
      std::fprintf(stderr,
                   "FAIL: shared-WAL durable fleet at %d WLANs "
                   "(%.0f events/s) is not 5x the per-shard baseline "
                   "(%.0f events/s)\n",
                   compare_fleet, shared_256, pershard_256);
      ok = false;
    }
  } else if (shared_256 > 0.0 && pershard_256 > 0.0) {
    std::printf("durable coalescing ratio: shared %.0f vs per-shard %.0f "
                "events/s (%.1fx; floor %s)\n",
                shared_256, pershard_256, shared_256 / pershard_256,
                opts.smoke ? "skipped in smoke"
                           : "relaxed on this hardware");
  }
  // And the single-WLAN serial durable path must not regress: with no
  // cross-shard traffic to coalesce, the shared mode's handoff to the
  // commit thread must cost no more than the in-shard fsync it
  // replaced (generous 0.85 bound -- both sides are device-dominated).
  if (!opts.smoke && sync_us > 40.0 &&
      durable.serial_eps < 0.85 * durable_pershard.serial_eps) {
    std::fprintf(stderr,
                 "FAIL: shared-mode serial durable round trips "
                 "(%.0f events/s) regressed vs per-shard "
                 "(%.0f events/s)\n",
                 durable.serial_eps, durable_pershard.serial_eps);
    ok = false;
  }
  if (!ok) return 1;
  std::printf("throughput floors met\n");
  return 0;
}
