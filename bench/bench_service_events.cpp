// acornd protocol throughput: events per second through a live daemon.
//
// An in-process daemon listens on a Unix socket; a single client
// pipelines batches of SNR/load update frames and drains the replies.
// The figure of merit is fully round-tripped protocol events per second
// — encode, socket, poll loop, shard mailbox, apply, reply — on one
// client connection. The service is built to sustain >= 10k events/s
// single-threaded; the run fails loudly if it cannot.
//
// Appends JSON lines to BENCH_service.json (ACORN_BENCH_JSON overrides
// the path) so the service's perf trajectory is tracked across PRs.
#include <unistd.h>

#include <cstdio>
#include <string>
#include <variant>
#include <vector>

#include "common.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"

using namespace acorn;
using namespace acorn::service;

namespace {

constexpr const char* kFloor = R"(# bench floor: 3 APs, 8 clients
pathloss exponent 3.5
pathloss shadowing 4
channels 12
seed 7
ap 10 10
ap 50 10
ap 30 40
client 12 12
client 14  8
client 48 14
client 52  9
client 28 38
client 35 42
client 30 25
client 45 30
)";

constexpr std::uint32_t kWlan = 1;
constexpr int kBatch = 64;

// Pipelined batches: kBatch requests on the wire before the first reply
// is drained, as a real controller client would batch measurement
// reports.
double pump_events(Client& client, std::int64_t total, util::Rng& rng) {
  const bench::Stopwatch clock;
  std::int64_t sent = 0;
  while (sent < total) {
    const int n = static_cast<int>(
        std::min<std::int64_t>(kBatch, total - sent));
    for (int i = 0; i < n; ++i) {
      const std::uint32_t client_id =
          static_cast<std::uint32_t>(rng.uniform_int(0, 7));
      if (rng.uniform() < 0.5) {
        client.send(SnrUpdate{kWlan,
                              static_cast<std::uint32_t>(rng.uniform_int(0, 2)),
                              client_id, rng.uniform(70.0, 120.0)});
      } else {
        client.send(LoadUpdate{kWlan, client_id, rng.uniform()});
      }
    }
    for (int i = 0; i < n; ++i) {
      (void)client.recv();
    }
    sent += n;
  }
  return clock.seconds();
}

// Serial request/reply round trips (no pipelining): per-event latency.
double pump_serial(Client& client, std::int64_t total, util::Rng& rng) {
  const bench::Stopwatch clock;
  for (std::int64_t i = 0; i < total; ++i) {
    client.call(SnrUpdate{kWlan, 0,
                          static_cast<std::uint32_t>(rng.uniform_int(0, 7)),
                          rng.uniform(70.0, 120.0)});
  }
  return clock.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::banner("acornd protocol event throughput",
                "online controller sustains >= 10k events/s per connection");

  DaemonConfig config;
  config.unix_path =
      "/tmp/acorn_bench_" + std::to_string(::getpid()) + ".sock";
  config.epoch_s = 0.0;  // epochs on demand; the bench times raw events
  Daemon daemon(config);
  daemon.start();

  Client client = Client::connect_unix(config.unix_path);
  client.call(RegisterWlan{kWlan, kFloor});
  for (std::uint32_t c = 0; c < 8; ++c) {
    client.call(ClientJoin{kWlan, c});
  }
  client.call(ForceReconfigure{kWlan});

  util::Rng rng(bench::kDefaultSeed);
  const std::int64_t pipelined_n = opts.smoke ? 5000 : 200000;
  const std::int64_t serial_n = opts.smoke ? 1000 : 20000;

  // Warm up the path (allocators, shard caches) before timing.
  (void)pump_events(client, 1000, rng);

  const double pipe_s = pump_events(client, pipelined_n, rng);
  const double pipe_eps = static_cast<double>(pipelined_n) / pipe_s;
  std::printf("pipelined (batch %d): %lld events in %.3f s -> %.0f events/s\n",
              kBatch, static_cast<long long>(pipelined_n), pipe_s, pipe_eps);
  bench::emit_events("service_events", "pipelined_updates", pipe_s,
                     pipelined_n);

  const double serial_s = pump_serial(client, serial_n, rng);
  const double serial_eps = static_cast<double>(serial_n) / serial_s;
  std::printf("serial round trips: %lld events in %.3f s -> %.0f events/s "
              "(%.1f us/event)\n",
              static_cast<long long>(serial_n), serial_s, serial_eps,
              1e6 * serial_s / static_cast<double>(serial_n));
  bench::emit_events("service_events", "serial_roundtrip", serial_s, serial_n);

  // One reconfiguration epoch after the event storm, for scale.
  const bench::Stopwatch epoch_clock;
  client.call(ForceReconfigure{kWlan});
  std::printf("reconfiguration epoch after the storm: %.2f ms\n",
              1e3 * epoch_clock.seconds());

  const Message stats = client.call(QueryStats{});
  const auto& st = std::get<StatsReply>(stats);
  std::printf("daemon counters: %llu frames, %llu events, %llu epochs\n",
              static_cast<unsigned long long>(st.frames_rx),
              static_cast<unsigned long long>(st.events_total),
              static_cast<unsigned long long>(st.epochs_total));

  client.close();
  daemon.stop();

  if (pipe_eps < 10000.0) {
    std::fprintf(stderr,
                 "FAIL: pipelined throughput %.0f events/s below the 10k "
                 "floor\n",
                 pipe_eps);
    return 1;
  }
  std::printf("throughput floor (10k events/s): met\n");
  return 0;
}
