// Validation: the medium-share assumption. ACORN's implementation
// estimates M_a = 1/(|con_a|+1) from the IAPP census (paper §5.1:
// "very high accuracy when these APs can hear each other under
// saturated traffic"). The slot-level DCF simulator — binary exponential
// backoff, collisions, retries — measures the true shares and the
// overhead the closed form ignores.
#include <cstdio>

#include "common.hpp"
#include "mac/dcf.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace acorn;

int main() {
  bench::banner("Validation: M = 1/(n+1) vs slot-level DCF",
                "equal shares hold to within ~1%; collisions cost a few "
                "percent of air time");
  util::TextTable t({"stations", "predicted share", "measured min",
                     "measured max", "collision rate", "utilization"});
  for (int n : {1, 2, 3, 4, 6, 8, 12, 16}) {
    util::Rng rng(bench::kDefaultSeed + static_cast<std::uint64_t>(n));
    const mac::DcfResult r =
        simulate_dcf(mac::DcfConfig{}, n, 80000, rng);
    const double lo = util::percentile(r.station_share, 0.0);
    const double hi = util::percentile(r.station_share, 100.0);
    t.add_row({std::to_string(n),
               util::TextTable::num(mac::predicted_share(n), 4),
               util::TextTable::num(lo, 4), util::TextTable::num(hi, 4),
               util::TextTable::num(r.collision_rate, 3),
               util::TextTable::num(r.utilization, 3)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("the flow-level model's equal-share assumption is accurate; "
              "its optimism is the ignored collision/idle overhead "
              "(bounded above by 1 - utilization).\n");
  return 0;
}
