// Ablation: hidden interferers (SINR model). The paper's contention
// model charges co-channel neighbors a medium share only when they can
// carrier-sense each other; APs below the CS threshold but above the
// noise floor at a victim's client degrade SINR instead. This bench
// builds a chain of cells where adjacent APs contend but one-hop-removed
// APs are hidden from each other, and shows (i) how much throughput the
// SINR model removes and (ii) that ACORN reacts by spreading channels
// further apart.
#include <cstdio>

#include "common.hpp"
#include "core/allocation.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

sim::Wlan chain(bool sinr) {
  // 4 APs in a line; AP i contends with i+1 (loss 90) and is hidden from
  // i+2 (loss 101: below CS at the AP, audible at clients).
  net::Topology topo;
  for (int i = 0; i < 4; ++i) topo.add_ap({i * 30.0, 0.0});
  for (int i = 0; i < 4; ++i) topo.add_client({i * 30.0 + 1.0, 2.0});
  util::Rng rng(5);
  net::PathLossModel plm;
  net::LinkBudget budget(topo, plm, rng);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      budget.set_ap_ap_loss_db(a, b, b - a == 1 ? 90.0 : 130.0);
    }
    for (int c = 0; c < 4; ++c) {
      double loss = sim::kIsolatedLoss;
      if (a == c) loss = sim::kMediumLinkLoss;
      if (std::abs(a - c) == 2) loss = 101.0;  // hidden interferer
      budget.set_ap_client_loss_db(a, c, loss);
    }
  }
  sim::WlanConfig cfg;
  cfg.sinr_interference = sinr;
  return sim::Wlan(std::move(topo), std::move(budget), cfg);
}

}  // namespace

int main() {
  bench::banner("Ablation: hidden interferers (SINR vs pure contention)",
                "below-CS co-channel APs cost SINR, not airtime; channel "
                "spreading recovers it");
  const net::Association assoc = {0, 1, 2, 3};
  // Frequency reuse-2: hidden one-hop-removed APs share a channel.
  const net::ChannelAssignment reuse2 = {
      net::Channel::basic(0), net::Channel::basic(1),
      net::Channel::basic(0), net::Channel::basic(1)};
  // Reuse-4: everyone separate.
  const net::ChannelAssignment reuse4 = {
      net::Channel::basic(0), net::Channel::basic(1),
      net::Channel::basic(2), net::Channel::basic(3)};

  util::TextTable t({"model", "reuse-2 (Mbps)", "reuse-4 (Mbps)",
                     "hidden-node cost"});
  for (const bool sinr : {false, true}) {
    const sim::Wlan wlan = chain(sinr);
    const double r2 = wlan.evaluate(assoc, reuse2).total_goodput_bps;
    const double r4 = wlan.evaluate(assoc, reuse4).total_goodput_bps;
    t.add_row({sinr ? "SINR (hidden modeled)" : "contention only (paper)",
               bench::mbps(r2), bench::mbps(r4),
               util::TextTable::num((r4 - r2) / r4 * 100.0, 1) + "%"});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Does ACORN's allocator exploit the extra channels under SINR?
  for (const bool sinr : {false, true}) {
    const sim::Wlan wlan = chain(sinr);
    const core::ChannelAllocator alloc{net::ChannelPlan(4)};
    util::Rng rng(bench::kDefaultSeed);
    const core::AllocationResult r =
        alloc.allocate(wlan, assoc, alloc.random_assignment(4, rng));
    std::printf("%s: ACORN picks %s %s %s %s -> %.2f Mbps\n",
                sinr ? "SINR model" : "contention model",
                r.assignment[0].to_string().c_str(),
                r.assignment[1].to_string().c_str(),
                r.assignment[2].to_string().c_str(),
                r.assignment[3].to_string().c_str(), r.final_bps / 1e6);
  }
  std::printf("\nunder the SINR model, co-channel reuse between hidden "
              "neighbors carries a real cost, and the allocator spreads "
              "channels accordingly.\n");
  return 0;
}
