// Network-engine scenario-sweep throughput: the table-3 / fig-10 class
// workload (random enterprise topologies, dozens of random
// configurations each, UDP + TCP full-network evaluations) timed through
// three paths:
//
//   seed  — the legacy object-at-a-time evaluator (Wlan::evaluate_
//           reference, kept as the executable spec), serial;
//   after — the flat NetSnapshot engine (Wlan::evaluate), serial;
//   after @ 2/4 threads — the same work through the deterministic
//           parallel sweep driver (sim/sweep.hpp).
//
// Every path computes the same scenarios from the same derived RNG
// streams, so the checksums must agree bit-for-bit — the bench doubles
// as an end-to-end determinism check. Rows land in BENCH_network.json.
#include <cstdio>
#include <numeric>
#include <vector>

#include "baselines/simple.hpp"
#include "common.hpp"
#include "sim/sweep.hpp"
#include "sim/wlan.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

struct CaseSpec {
  const char* name;
  bool sinr = false;       // hidden-interference SINR model on
  bool weighted = false;   // overlap-weighted contention
  int scenarios = 8;
  int configs = 25;        // random configurations per scenario
};

struct CaseResult {
  double seconds = 0.0;
  double checksum = 0.0;   // sum of all total_goodput_bps
  std::int64_t evals = 0;  // full-network evaluations performed
};

// One scenario: a random 5-AP / 14-client floor (the table-3 deployment
// class), `configs` random (association, assignment) configurations,
// each evaluated for UDP and TCP.
double run_scenario(util::Rng& rng, const CaseSpec& spec, bool reference) {
  net::Topology topo = net::Topology::random(5, 14, 140.0, rng);
  net::PathLossModel plm;
  plm.shadowing_sigma_db = 4.0;
  net::LinkBudget budget(topo, plm, rng);
  sim::WlanConfig config;
  config.sinr_interference = spec.sinr;
  config.weighted_contention = spec.weighted;
  const sim::Wlan wlan(std::move(topo), std::move(budget), config);
  double sum = 0.0;
  for (int trial = 0; trial < spec.configs; ++trial) {
    const baselines::RandomConfig cfg =
        baselines::random_configuration(wlan, net::ChannelPlan(12), rng);
    for (const mac::TrafficType traffic :
         {mac::TrafficType::kUdp, mac::TrafficType::kTcp}) {
      sum += reference
                 ? wlan.evaluate_reference(cfg.association, cfg.assignment,
                                           traffic)
                       .total_goodput_bps
                 : wlan.evaluate(cfg.association, cfg.assignment, traffic)
                       .total_goodput_bps;
    }
  }
  return sum;
}

CaseResult run_case(const CaseSpec& spec, bool reference, int threads) {
  sim::SweepOptions options;
  options.seed = bench::kDefaultSeed;
  options.num_threads = threads;
  const bench::Stopwatch watch;
  const std::vector<double> per_scenario = sim::sweep_scenarios(
      static_cast<std::size_t>(spec.scenarios), options,
      [&](util::Rng& rng, std::size_t) {
        return run_scenario(rng, spec, reference);
      });
  CaseResult r;
  r.seconds = watch.seconds();
  r.checksum =
      std::accumulate(per_scenario.begin(), per_scenario.end(), 0.0);
  r.evals = static_cast<std::int64_t>(spec.scenarios) * spec.configs * 2;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::banner("Network sweep: flat engine vs reference evaluator",
                "table-3 class random-config sweeps, seed vs after");

  std::vector<CaseSpec> cases = {
      CaseSpec{"table3_random_configs", false, false, 8, 25},
      CaseSpec{"dense_sinr_weighted", true, true, 8, 25},
  };
  if (opts.smoke) {
    for (CaseSpec& c : cases) {
      c.scenarios = 2;
      c.configs = 4;
    }
  }

  // Warm the process-wide RateTable cache (built once per link config;
  // a real sweep amortizes the ~0.2 s construction over thousands of
  // evaluations) so the timed runs measure steady-state throughput.
  {
    CaseSpec warm = cases.front();
    warm.scenarios = 1;
    warm.configs = 1;
    run_case(warm, /*reference=*/false, 1);
  }

  util::TextTable t({"case", "path", "threads", "evals/s", "speedup"});
  bool all_identical = true;
  for (const CaseSpec& spec : cases) {
    const CaseResult seed = run_case(spec, /*reference=*/true, 1);
    bench::emit_evals("bench_network_sweep", spec.name, seed.seconds,
                      seed.evals, 1, "seed");
    const double seed_eps =
        seed.seconds > 0.0 ? static_cast<double>(seed.evals) / seed.seconds
                           : 0.0;
    t.add_row({spec.name, "reference", "1",
               util::TextTable::num(seed_eps, 0), "1.00x"});

    for (const int threads : {1, 2, 4}) {
      const CaseResult after = run_case(spec, /*reference=*/false, threads);
      bench::emit_evals("bench_network_sweep", spec.name, after.seconds,
                        after.evals, threads, "after");
      const double eps = after.seconds > 0.0
                             ? static_cast<double>(after.evals) /
                                   after.seconds
                             : 0.0;
      t.add_row({spec.name, "flat", std::to_string(threads),
                 util::TextTable::num(eps, 0),
                 util::TextTable::num(
                     seed.seconds > 0.0 && after.seconds > 0.0
                         ? seed.seconds / after.seconds
                         : 0.0,
                     2) +
                     "x"});
      // The flat engine and the sweep driver must reproduce the
      // reference results bit-for-bit at every thread count.
      if (after.checksum != seed.checksum) all_identical = false;
    }
  }
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("flat engine bit-identical to reference at all thread "
              "counts: %s\n",
              all_identical ? "yes" : "NO");
  return all_identical ? 0 : 1;
}
