// Table 1: experimental transition SNRs for the sigma ratio.
// Paper reports, per mod/cod, the SNR at which sigma crosses 2 upward
// (CB starts hurting) and the SNR beyond which sigma < 2 again:
//   QPSK3/4 -7/-4, 16QAM3/4 3/5, 64QAM3/4 5/7, 64QAM5/6 8/11 (dB).
// The absolute values depend on the testbed's SNR reference; the shape
// to match is (i) a 2-3 dB window and (ii) a rising trend with
// modulation aggressiveness.
#include <cstdio>

#include "common.hpp"
#include "phy/sigma.hpp"
#include "util/table.hpp"

using namespace acorn;

int main() {
  bench::banner("Table 1: sigma = 2 transition SNRs per mod/cod",
                "window spans 2-3 dB and rises with aggressiveness");
  const phy::LinkModel link;
  const struct {
    const char* name;
    int mcs;
    double paper_enter;
    double paper_exit;
  } rows[] = {{"QPSK 3/4", 2, -7.0, -4.0},
              {"16QAM 3/4", 4, 3.0, 5.0},
              {"64QAM 3/4", 6, 5.0, 7.0},
              {"64QAM 5/6", 7, 8.0, 11.0}};

  util::TextTable t({"mod/cod", "ours: sigma>=2 (dB)", "ours: sigma<2 (dB)",
                     "window (dB)", "paper: sigma>=2", "paper: sigma<2"});
  double prev_enter = -1e9;
  bool monotone = true;
  for (const auto& row : rows) {
    const auto window = phy::sigma_window(link, phy::mcs(row.mcs));
    if (!window) {
      t.add_row({row.name, "-", "-", "-",
                 util::TextTable::num(row.paper_enter, 0),
                 util::TextTable::num(row.paper_exit, 0)});
      continue;
    }
    t.add_row({row.name, util::TextTable::num(window->enter_db, 1),
               util::TextTable::num(window->exit_db, 1),
               util::TextTable::num(window->exit_db - window->enter_db, 1),
               util::TextTable::num(row.paper_enter, 0),
               util::TextTable::num(row.paper_exit, 0)});
    if (window->enter_db < prev_enter) monotone = false;
    prev_enter = window->enter_db;
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("transition SNR rises with modulation aggressiveness: %s\n",
              monotone ? "yes (matches paper)" : "NO");
  std::printf("note: absolute SNRs differ from the paper's testbed "
              "reference; the ordering and the few-dB window are the "
              "reproduced shape.\n");
  return 0;
}
