// Figure 5: sigma values (Eq. 3) vs transmit power for four links and
// four modulation/code-rate pairs.
// Paper: for each link there is a power band where sigma >= 2 (CB hurts);
// below it both widths fail (sigma ~ 1), above it both succeed
// (sigma ~ 1). The band's location rises with modulation aggressiveness.
#include <cstdio>

#include "common.hpp"
#include "phy/sigma.hpp"
#include "util/table.hpp"

using namespace acorn;

int main() {
  bench::banner("Figure 5: sigma vs Tx for 4 links x 4 mod/cod pairs",
                "sigma >= 2 band exists per link; capped at 10 in plots");
  const phy::LinkModel link;
  // Four representative links (paper's links A-D): increasing path loss.
  const struct {
    const char* name;
    double loss_db;
  } links[] = {{"LinkA", 96.0}, {"LinkB", 102.0}, {"LinkC", 107.0},
               {"LinkD", 112.0}};
  const struct {
    const char* name;
    int mcs;
  } modcods[] = {{"QPSK 3/4", 2}, {"16QAM 3/4", 4}, {"64QAM 3/4", 6},
                 {"64QAM 5/6", 7}};

  for (const auto& mc : modcods) {
    std::printf("--- %s (MCS %d) ---\n", mc.name, mc.mcs);
    util::TextTable t({"Tx index [0:100]", "Tx (dBm)", "LinkA", "LinkB",
                       "LinkC", "LinkD"});
    // Tx index 0..100 maps to -10..25 dBm (the paper's driver scale).
    std::vector<std::vector<phy::SigmaSweepPoint>> sweeps;
    for (const auto& lk : links) {
      sweeps.push_back(
          phy::sigma_sweep(link, phy::mcs(mc.mcs), lk.loss_db));
    }
    for (std::size_t i = 0; i < sweeps[0].size(); i += 10) {
      t.add_row({std::to_string(sweeps[0][i].power_index),
                 util::TextTable::num(sweeps[0][i].tx_dbm, 1),
                 util::TextTable::num(sweeps[0][i].sigma, 2),
                 util::TextTable::num(sweeps[1][i].sigma, 2),
                 util::TextTable::num(sweeps[2][i].sigma, 2),
                 util::TextTable::num(sweeps[3][i].sigma, 2)});
    }
    std::printf("%s", t.to_string().c_str());
    // Report the sigma >= 2 band per link.
    for (std::size_t l = 0; l < 4; ++l) {
      int enter = -1;
      int exit = -1;
      for (const auto& pt : sweeps[l]) {
        if (pt.sigma >= 2.0 && enter < 0) enter = pt.power_index;
        if (pt.sigma < 2.0 && enter >= 0 && exit < 0 &&
            pt.power_index > enter) {
          exit = pt.power_index;
        }
      }
      if (enter >= 0) {
        std::printf("%s: CB hurts (sigma>=2) for Tx index [%d, %d)\n",
                    links[l].name, enter, exit < 0 ? 100 : exit);
      } else {
        std::printf("%s: CB never hurts at this mod/cod in the sweep\n",
                    links[l].name);
      }
    }
    std::printf("\n");
  }
  return 0;
}
