// Ablation: remap vs scan (paper §4.2). ACORN measures link quality on
// the *current* channel and remaps it to other widths via the ±3 dB
// calibration, assuming same-width channels are equivalent (Fig. 8).
// The paper notes the alternative — each AP scans every channel for
// exact measurements — "would add complexity and increase the
// convergence time". This bench quantifies both sides under a
// per-channel SNR ripple: the throughput ACORN loses to remapping error,
// and the scan time the alternative costs.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/allocation.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

// Deterministic per-(link, channel) SNR ripple (same construction as the
// Fig. 8 bench).
double ripple_db(int client, int channel_key, double sigma_db) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(client + 1) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<std::uint64_t>(channel_key + 1) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  h *= 0x2545F4914F6CDD1DULL;
  h ^= h >> 29;
  const double u1 = static_cast<double>(h & 0xffff) / 65535.0;
  const double u2 = static_cast<double>((h >> 16) & 0xffff) / 65535.0;
  const double u3 = static_cast<double>((h >> 32) & 0xffff) / 65535.0;
  return (u1 + u2 + u3 - 1.5) * 2.0 * sigma_db;
}

// Channel-aware oracle: evaluates the network like Wlan::evaluate but
// perturbs each client's SNR by the ripple of its AP's channel. This is
// "ground truth" that a scanning AP would measure exactly; the remap
// strategy optimizes against the unperturbed evaluator instead.
double evaluate_with_ripple(const sim::Wlan& wlan,
                            const net::Association& assoc,
                            const net::ChannelAssignment& assignment,
                            double sigma_db) {
  // Perturb by adjusting the link budget per AP-client pair via a copy.
  sim::Wlan copy = wlan;
  for (int ap = 0; ap < wlan.topology().num_aps(); ++ap) {
    const net::Channel& ch = assignment[static_cast<std::size_t>(ap)];
    for (int c = 0; c < wlan.topology().num_clients(); ++c) {
      const double base = wlan.budget().ap_client_loss_db(ap, c);
      copy.budget().set_ap_client_loss_db(
          ap, c, base - ripple_db(c, ch.primary(), sigma_db));
    }
  }
  return copy.evaluate(assoc, assignment).total_goodput_bps;
}

}  // namespace

int main() {
  bench::banner("Ablation: remap (ACORN) vs per-channel scanning",
                "scanning buys little accuracy and costs dwell time "
                "(paper's stated reason to remap)");
  const sim::ScenarioBuilder builder = bench::dense3();
  const sim::Wlan wlan = builder.build();
  const net::Association assoc = builder.intended_association();
  const net::ChannelPlan plan(4);

  util::TextTable t({"ripple sigma (dB)", "remap final (Mbps)",
                     "scan final (Mbps)", "scan gain", "scan cost (s)"});
  for (double sigma : {0.0, 0.4, 1.0, 2.0}) {
    // Remap: optimize against the flat model, then score with ripple.
    const core::ChannelAllocator alloc{plan};
    util::Rng r1(bench::kDefaultSeed);
    const core::AllocationResult remap =
        alloc.allocate(wlan, assoc, alloc.random_assignment(3, r1));
    const double remap_actual =
        evaluate_with_ripple(wlan, assoc, remap.assignment, sigma);

    // Scan: optimize against the rippled ground truth directly.
    util::Rng r2(bench::kDefaultSeed);
    const core::ThroughputOracle scan_oracle =
        [&wlan, sigma](const net::Association& a,
                       const net::ChannelAssignment& f) {
          return evaluate_with_ripple(wlan, a, f, sigma);
        };
    const core::AllocationResult scan = alloc.allocate(
        wlan, assoc, alloc.random_assignment(3, r2), scan_oracle);
    const double scan_actual =
        evaluate_with_ripple(wlan, assoc, scan.assignment, sigma);

    // Scan cost: each AP dwells ~100 ms per channel to collect stats,
    // serialized per AP so cells stay online (paper's convergence-time
    // concern).
    const double scan_cost_s =
        0.1 * plan.all_channels().size() * wlan.topology().num_aps();

    t.add_row({util::TextTable::num(sigma, 1), bench::mbps(remap_actual),
               bench::mbps(scan_actual),
               util::TextTable::num(
                   remap_actual > 0 ? scan_actual / remap_actual : 1.0, 3) +
                   "x",
               util::TextTable::num(scan_cost_s, 1)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("at the Fig. 8-measured ripple (~0.4 dB) scanning gains "
              "~nothing; only implausibly large per-channel variation "
              "would justify the scan time.\n");
  return 0;
}
