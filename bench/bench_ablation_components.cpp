// Ablation: which of ACORN's two modules does the work?
// Compares, over random deployments: full ACORN (joint), association-only
// (ACORN association + aggressive all-40 channels), allocation-only (RSS
// association + ACORN channels), and neither (RSS + all-40). Also sweeps
// the allocator's epsilon stop threshold.
#include <cstdio>

#include "baselines/kauffmann17.hpp"
#include "baselines/simple.hpp"
#include "common.hpp"
#include "core/controller.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

sim::Wlan random_wlan(util::Rng& rng) {
  net::Topology topo = net::Topology::random(5, 12, 130.0, rng);
  net::PathLossModel plm;
  plm.shadowing_sigma_db = 4.0;
  net::LinkBudget budget(topo, plm, rng);
  return sim::Wlan(std::move(topo), std::move(budget), sim::WlanConfig{});
}

}  // namespace

int main() {
  bench::banner("Ablation: joint vs single-module ACORN; epsilon sweep",
                "the paper's design argument: association and allocation "
                "are coupled under CB");
  const int kTrials = 8;
  std::vector<double> joint, assoc_only, alloc_only, neither;
  util::Rng rng(bench::kDefaultSeed);
  const baselines::Kauffmann17 k17{net::ChannelPlan(12)};

  for (int trial = 0; trial < kTrials; ++trial) {
    const sim::Wlan wlan = random_wlan(rng);
    const core::AcornController acorn;

    // Full ACORN.
    const core::ConfigureResult full = acorn.configure(wlan, rng);
    joint.push_back(full.evaluation.total_goodput_bps);

    // Association-only: ACORN's association, aggressive 40 MHz channels.
    const net::ChannelAssignment all40 = k17.allocate(wlan);
    net::Association a_only(
        static_cast<std::size_t>(wlan.topology().num_clients()),
        net::kUnassociated);
    for (int u = 0; u < wlan.topology().num_clients(); ++u) {
      acorn.associate_client(wlan, a_only, all40, u);
    }
    assoc_only.push_back(
        wlan.evaluate(a_only, all40).total_goodput_bps);

    // Allocation-only: RSS association, ACORN channels.
    const net::Association rss = baselines::rss_associate_all(wlan);
    const core::AllocationResult ch_only = acorn.reallocate(
        wlan, rss,
        acorn.allocation_module().random_assignment(
            wlan.topology().num_aps(), rng));
    alloc_only.push_back(ch_only.final_bps);

    // Neither.
    neither.push_back(wlan.evaluate(rss, all40).total_goodput_bps);
  }

  util::TextTable t({"configuration", "mean (Mbps)", "min (Mbps)",
                     "max (Mbps)", "vs neither"});
  const double base = util::mean(neither);
  auto add = [&](const char* name, const std::vector<double>& xs) {
    t.add_row({name, bench::mbps(util::mean(xs)),
               bench::mbps(util::percentile(xs, 0.0)),
               bench::mbps(util::percentile(xs, 100.0)),
               util::TextTable::num(util::mean(xs) / base, 2) + "x"});
  };
  add("joint (full ACORN)", joint);
  add("association only (+ all-40)", assoc_only);
  add("allocation only (+ RSS assoc)", alloc_only);
  add("neither (RSS + all-40)", neither);
  std::printf("%s\n", t.to_string().c_str());

  std::printf("epsilon sweep (allocation stop threshold), 1 deployment:\n");
  const sim::Wlan wlan = random_wlan(rng);
  const net::Association rss = baselines::rss_associate_all(wlan);
  util::TextTable e({"epsilon", "final (Mbps)", "switches", "evaluations"});
  for (double eps : {1.0, 1.01, 1.05, 1.10, 1.25}) {
    core::AllocationConfig cfg;
    cfg.epsilon = eps;
    const core::ChannelAllocator alloc{net::ChannelPlan(12), cfg};
    util::Rng seed_rng(bench::kDefaultSeed + 77);
    const core::AllocationResult r = alloc.allocate(
        wlan, rss,
        alloc.random_assignment(wlan.topology().num_aps(), seed_rng));
    e.add_row({util::TextTable::num(eps, 2), bench::mbps(r.final_bps),
               std::to_string(r.switches), std::to_string(r.evaluations)});
  }
  std::printf("%s\n", e.to_string().c_str());
  std::printf("paper uses epsilon = 1.05 (stop below 5%% round gain).\n");
  return 0;
}
