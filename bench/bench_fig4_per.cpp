// Figure 4: uncoded PER for QPSK (a) vs SNR and (b) vs Tx power.
// Paper: at equal SNR the widths coincide; at equal Tx the 40 MHz PER is
// much higher (the per-subcarrier SNR is ~halved).
#include <cstdio>
#include <vector>

#include "baseband/bermac.hpp"
#include "baseband/ofdm.hpp"
#include "common.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

struct Row {
  double tx_dbm;
  double snr_db;
  double per;
};

std::vector<Row> sweep(phy::ChannelWidth width, std::uint64_t seed,
                       const bench::BenchOptions& opts) {
  std::vector<Row> rows;
  util::Rng rng(seed);
  const baseband::Ofdm ofdm(width);
  std::int64_t packets = 0;
  std::int64_t samples = 0;
  const bench::Stopwatch timer;
  for (double tx = -6.0; tx <= 14.0; tx += 2.0) {
    baseband::BermacConfig cfg;
    cfg.width = width;
    cfg.packets = opts.smoke ? 4 : 40;
    cfg.packet_bytes = 1500;  // the paper's packet size
    cfg.tx_dbm = tx;
    cfg.path_loss_db = 94.0;
    cfg.use_stbc = true;  // the paper's WARP setup uses 2x2 STBC
    cfg.rayleigh = false;
    cfg.num_taps = 1;
    cfg.num_threads = opts.threads;
    const baseband::BermacResult r = run_bermac(cfg, rng);
    rows.push_back({tx, r.mean_snr_db, r.per()});
    packets += cfg.packets;
    // STBC sends the waveform from two antennas.
    samples += cfg.packets * 2 *
               static_cast<std::int64_t>(
                   ofdm.num_ofdm_symbols(
                       static_cast<std::size_t>(cfg.packet_bytes) * 8 / 2) *
                   static_cast<std::size_t>(ofdm.symbol_length()));
  }
  bench::emit_throughput(
      "bench_fig4_per",
      width == phy::ChannelWidth::k20MHz ? "qpsk_stbc_20MHz"
                                         : "qpsk_stbc_40MHz",
      timer.seconds(), packets, samples, opts.threads);
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::banner("Figure 4: uncoded QPSK PER vs SNR and vs Tx",
                "(a) equal-SNR curves coincide; (b) 40 MHz much worse at "
                "fixed Tx");
  const auto rows20 =
      sweep(phy::ChannelWidth::k20MHz, bench::kDefaultSeed, opts);
  const auto rows40 =
      sweep(phy::ChannelWidth::k40MHz, bench::kDefaultSeed, opts);

  std::printf("(a) PER vs measured per-subcarrier SNR\n");
  util::TextTable a({"width", "SNR (dB)", "PER"});
  for (const Row& r : rows20) {
    a.add_row({"20MHz", util::TextTable::num(r.snr_db, 1),
               util::TextTable::num(r.per, 3)});
  }
  for (const Row& r : rows40) {
    a.add_row({"40MHz", util::TextTable::num(r.snr_db, 1),
               util::TextTable::num(r.per, 3)});
  }
  std::printf("%s\n", a.to_string().c_str());

  std::printf("(b) PER vs Tx power (same rows, keyed by Tx)\n");
  util::TextTable b({"Tx (dBm)", "PER 20MHz", "PER 40MHz"});
  int worse = 0;
  int informative = 0;
  for (std::size_t i = 0; i < rows20.size(); ++i) {
    b.add_row({util::TextTable::num(rows20[i].tx_dbm, 0),
               util::TextTable::num(rows20[i].per, 3),
               util::TextTable::num(rows40[i].per, 3)});
    if (rows40[i].per > rows20[i].per) ++worse;
    if (rows20[i].per < 1.0 || rows40[i].per < 1.0) ++informative;
  }
  std::printf("%s\n", b.to_string().c_str());
  std::printf(
      "40MHz PER exceeds 20MHz PER at %d of %d informative Tx points\n",
      worse, informative);
  return 0;
}
