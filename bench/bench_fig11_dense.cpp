// Figure 11: dense deployment — 3 contending APs, four 20 MHz channels.
// Paper: only one AP can bond with full isolation; ACORN picks the AP
// with the good client (X,Y,Z = 40,20,20) and delivers ~2x over the
// aggressive all-40 configuration (their row: 79.98 vs 42.3 Mbps).
//
// The width-pattern evaluations are independent scenarios and run
// through sim::sweep_scenarios (`--threads N`, output bit-identical for
// any thread count).
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/controller.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

using namespace acorn;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::banner("Figure 11: 3 contending APs, 4 channels",
                "ACORN bonds only the good-client AP; ~2x over all-40");
  const sim::ScenarioBuilder builder = bench::dense3();
  const sim::Wlan wlan = builder.build();
  const net::Association assoc = builder.intended_association();

  // The paper enumerates width patterns (X, Y, Z for APs 1-3). With four
  // 20 MHz channels the concrete channels below maximize isolation for
  // each pattern.
  struct Pattern {
    const char* label;
    net::ChannelAssignment assignment;
  };
  const std::vector<Pattern> patterns = {
      {"40,40,40",
       {net::Channel::bonded(0), net::Channel::bonded(1),
        net::Channel::bonded(0)}},
      {"40,20,20 (ACORN's pick)",
       {net::Channel::bonded(0), net::Channel::basic(2),
        net::Channel::basic(3)}},
      {"20,40,20",
       {net::Channel::basic(0), net::Channel::bonded(1),
        net::Channel::basic(1)}},
      {"20,20,40",
       {net::Channel::basic(0), net::Channel::basic(1),
        net::Channel::bonded(1)}},
  };

  const std::vector<sim::Evaluation> evals = sim::sweep_scenarios(
      patterns.size(), {bench::kDefaultSeed, opts.threads},
      [&](util::Rng&, std::size_t i) {
        return wlan.evaluate(assoc, patterns[i].assignment);
      });

  util::TextTable t({"X,Y,Z widths", "AP1 (Mbps)", "AP2 (Mbps)",
                     "AP3 (Mbps)", "Total (Mbps)"});
  double all40 = 0.0;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const sim::Evaluation& eval = evals[i];
    t.add_row({patterns[i].label, bench::mbps(eval.per_ap[0].goodput_bps),
               bench::mbps(eval.per_ap[1].goodput_bps),
               bench::mbps(eval.per_ap[2].goodput_bps),
               bench::mbps(eval.total_goodput_bps)});
    if (std::string(patterns[i].label) == "40,40,40") {
      all40 = eval.total_goodput_bps;
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  // Let ACORN's allocator find its own assignment from the worst start.
  const core::AcornController acorn({net::ChannelPlan(4), {}, {}, 1800.0});
  const core::AllocationResult ours = acorn.reallocate(
      wlan, assoc,
      {net::Channel::bonded(0), net::Channel::bonded(0),
       net::Channel::bonded(0)});
  std::printf("ACORN allocation: AP1=%s AP2=%s AP3=%s -> %.2f Mbps\n",
              ours.assignment[0].to_string().c_str(),
              ours.assignment[1].to_string().c_str(),
              ours.assignment[2].to_string().c_str(),
              ours.final_bps / 1e6);
  std::printf("improvement over aggressive all-40: %.2fx (paper: ~1.9x)\n",
              ours.final_bps / all40);
  return 0;
}
