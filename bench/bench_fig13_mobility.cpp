// Figures 12-13: mobility. A laptop walks away from (a) / toward (b) its
// AP while two static clients stay put; ACORN opportunistically switches
// the cell's width at the link-quality transition.
// Paper: (a) ACORN drops 40 -> 20 at ~30 s and sustains ~10x the fixed-40
// throughput at the far end; (b) ACORN starts on 20, switches to 40 at
// ~10 s, and captures the CB gains.
#include <cstdio>

#include "common.hpp"
#include "core/width_switch.hpp"
#include "net/pathloss.hpp"
#include "sim/mobility.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

struct TraceResult {
  double switch_time_s = -1.0;
  double acorn_total = 0.0;
  double fixed_total = 0.0;
  double tail_gain = 0.0;
};

// Walk a mobile client along `walk`, with two static good clients on the
// AP; compare ACORN's opportunistic width against a fixed width.
TraceResult run_walk(const sim::Trajectory& walk, phy::ChannelWidth fixed,
                     const char* label) {
  net::Topology topo;
  topo.add_ap(net::Point{0.0, 0.0});
  topo.add_client(net::Point{2.0, 0.0});
  topo.add_client(net::Point{0.0, 2.0});
  const int mobile = topo.add_client(walk.position_at(walk.start_s()));

  net::PathLossModel plm;
  plm.exponent = 4.2;  // indoor walls: quality falls off quickly
  plm.ref_loss_db = 52.0;

  std::printf("--- %s ---\n", label);
  util::TextTable t({"t (s)", "dist (m)", "mobile snr20 (dB)",
                     "ACORN width", "ACORN (Mbps)",
                     std::string("fixed ") + to_string(fixed) + " (Mbps)"});
  TraceResult out;
  phy::ChannelWidth prev_width = phy::ChannelWidth::k40MHz;
  bool first = true;
  double tail_acorn = 0.0;
  double tail_fixed = 0.0;
  int tail_samples = 0;
  const double t_end = walk.end_s() + 20.0;
  for (double now = 0.0; now <= t_end; now += 2.5) {
    topo.client(mobile).position = walk.position_at(now);
    util::Rng rng(1);
    net::LinkBudget budget(topo, plm, rng);
    const sim::Wlan wlan(topo, budget, sim::WlanConfig{});
    const core::WidthDecision d = core::decide_width(wlan, 0, {0, 1, 2});
    const double acorn_bps = d.width == phy::ChannelWidth::k40MHz
                                 ? d.cell_bps_40
                                 : d.cell_bps_20;
    const double fixed_bps = fixed == phy::ChannelWidth::k40MHz
                                 ? d.cell_bps_40
                                 : d.cell_bps_20;
    if (first) {
      prev_width = d.width;
      first = false;
    } else if (d.width != prev_width && out.switch_time_s < 0.0) {
      out.switch_time_s = now;
      prev_width = d.width;
    }
    out.acorn_total += acorn_bps;
    out.fixed_total += fixed_bps;
    if (now >= walk.end_s()) {
      tail_acorn += acorn_bps;
      tail_fixed += fixed_bps;
      ++tail_samples;
    }
    t.add_row({util::TextTable::num(now, 1),
               util::TextTable::num(
                   net::distance(topo.ap(0).position,
                                 topo.client(mobile).position),
                   1),
               util::TextTable::num(
                   wlan.client_snr_db(0, mobile, phy::ChannelWidth::k20MHz),
                   1),
               std::string(to_string(d.width)), bench::mbps(acorn_bps),
               bench::mbps(fixed_bps)});
  }
  std::printf("%s", t.to_string().c_str());
  out.tail_gain =
      tail_fixed > 1e3 ? tail_acorn / tail_fixed
                       : (tail_samples > 0 ? 99.0 : 1.0);
  return out;
}

}  // namespace

int main() {
  bench::banner("Figure 13: mobility — opportunistic width switching",
                "(a) 40->20 switch mid-walk, ~10x tail gain over fixed-40; "
                "(b) 20->40 switch when approaching");
  // Walk from 2 m to 22 m over 30 s, then stand still (the paper's
  // client "stops at a location far from the AP" where the link is
  // degraded but alive on 20 MHz).
  const sim::Trajectory away =
      sim::Trajectory::line({2.0, 0.0}, {22.0, 0.0}, 0.0, 30.0);
  const TraceResult a =
      run_walk(away, phy::ChannelWidth::k40MHz, "(a) walking away, vs fixed 40 MHz");
  std::printf("switch 40->20 at t = %.1f s (paper: ~30 s)\n",
              a.switch_time_s);
  std::printf("tail throughput gain over fixed 40 MHz: %.1fx (paper: ~10x)\n\n",
              a.tail_gain);

  const sim::Trajectory toward =
      sim::Trajectory::line({26.0, 0.0}, {2.0, 0.0}, 0.0, 30.0);
  const TraceResult b =
      run_walk(toward, phy::ChannelWidth::k20MHz, "(b) walking toward, vs fixed 20 MHz");
  std::printf("switch 20->40 at t = %.1f s (paper: ~10 s)\n",
              b.switch_time_s);
  std::printf("total ACORN / fixed-20: %.2fx (>1: CB gains captured)\n",
              b.acorn_total / b.fixed_total);
  return 0;
}
