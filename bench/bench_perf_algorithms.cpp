// Runtime cost of the building blocks (google-benchmark): the FFT, the
// sample-level BERMAC packet chain, link-model PER evaluation, beacon
// construction, Algorithm 1 association, Algorithm 2 allocation, and a
// full auto-configuration pass. Establishes that ACORN's control plane
// is cheap enough to run at the paper's 30-minute period (it is
// microseconds-to-milliseconds).
#include <benchmark/benchmark.h>

#include "baseband/bermac.hpp"
#include "baseband/fft.hpp"
#include "common.hpp"
#include "core/controller.hpp"
#include "phy/rate_control.hpp"
#include "sim/mgmt.hpp"

using namespace acorn;

namespace {

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<baseband::Cx> data(n);
  for (auto& x : data) x = baseband::Cx(rng.normal(), rng.normal());
  for (auto _ : state) {
    baseband::fft_in_place(data);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_Fft)->Arg(64)->Arg(128)->Arg(1024);

void BM_BermacPacket(benchmark::State& state) {
  baseband::BermacConfig cfg;
  cfg.width = state.range(0) == 20 ? phy::ChannelWidth::k20MHz
                                   : phy::ChannelWidth::k40MHz;
  cfg.packets = 1;
  cfg.packet_bytes = 1500;
  cfg.tx_dbm = 10.0;
  cfg.path_loss_db = 90.0;
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_bermac(cfg, rng).bit_errors);
  }
}
BENCHMARK(BM_BermacPacket)->Arg(20)->Arg(40);

void BM_LinkPer(benchmark::State& state) {
  const phy::LinkModel link;
  double snr = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(link.per(phy::mcs(7), snr));
    snr = snr > 30.0 ? 5.0 : snr + 0.01;
  }
}
BENCHMARK(BM_LinkPer);

void BM_BestRate(benchmark::State& state) {
  const phy::LinkModel link;
  double snr = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        best_rate(link, phy::ChannelWidth::k40MHz, snr).mcs_index);
    snr = snr > 30.0 ? 5.0 : snr + 0.01;
  }
}
BENCHMARK(BM_BestRate);

void BM_Beacon(benchmark::State& state) {
  const sim::ScenarioBuilder b = bench::topology2();
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const net::InterferenceGraph graph(wlan.topology(), wlan.budget(), assoc,
                                     wlan.config().interference);
  net::ChannelAssignment ch;
  for (int i = 0; i < 5; ++i) ch.push_back(net::Channel::basic(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::make_beacon(wlan, graph, assoc, ch, 0).atd_s_per_bit);
  }
}
BENCHMARK(BM_Beacon);

void BM_Association(benchmark::State& state) {
  sim::ScenarioBuilder b = bench::topology2();
  b.cross_loss_db = 96.0;  // everyone hears everyone
  const sim::Wlan wlan = b.build();
  const core::UserAssociation ua;
  net::Association assoc = b.intended_association();
  assoc[0] = net::kUnassociated;
  net::ChannelAssignment ch;
  for (int i = 0; i < 5; ++i) ch.push_back(net::Channel::basic(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ua.select_ap(wlan, assoc, ch, 0));
  }
}
BENCHMARK(BM_Association);

// Algorithm 2 with the incremental cached oracle (the default): the
// interference graph and client lists are built once per allocate() run
// and per-cell results are memoized across candidate trials.
void BM_Allocation(benchmark::State& state) {
  const sim::ScenarioBuilder b = bench::topology2();
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  const core::ChannelAllocator alloc{
      net::ChannelPlan(static_cast<int>(state.range(0)))};
  util::Rng rng(3);
  const net::ChannelAssignment start = alloc.random_assignment(5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alloc.allocate(wlan, assoc, start).final_bps);
  }
}
BENCHMARK(BM_Allocation)->Arg(4)->Arg(12);

// The uncached path (one full Wlan::evaluate per candidate) for
// comparison; results are bit-identical, only the speed differs.
void BM_AllocationUncached(benchmark::State& state) {
  const sim::ScenarioBuilder b = bench::topology2();
  const sim::Wlan wlan = b.build();
  const net::Association assoc = b.intended_association();
  core::AllocationConfig cfg;
  cfg.cache_oracle = false;
  const core::ChannelAllocator alloc{
      net::ChannelPlan(static_cast<int>(state.range(0))), cfg};
  util::Rng rng(3);
  const net::ChannelAssignment start = alloc.random_assignment(5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alloc.allocate(wlan, assoc, start).final_bps);
  }
}
BENCHMARK(BM_AllocationUncached)->Arg(4)->Arg(12);

void BM_FullConfigure(benchmark::State& state) {
  const sim::ScenarioBuilder b = bench::topology2();
  const sim::Wlan wlan = b.build();
  const core::AcornController acorn;
  util::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        acorn.configure(wlan, rng).evaluation.total_goodput_bps);
  }
}
BENCHMARK(BM_FullConfigure);

void BM_FullConfigureUncached(benchmark::State& state) {
  const sim::ScenarioBuilder b = bench::topology2();
  const sim::Wlan wlan = b.build();
  core::AcornConfig cfg;
  cfg.allocation.cache_oracle = false;
  const core::AcornController acorn{cfg};
  util::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        acorn.configure(wlan, rng).evaluation.total_goodput_bps);
  }
}
BENCHMARK(BM_FullConfigureUncached);

}  // namespace

BENCHMARK_MAIN();
