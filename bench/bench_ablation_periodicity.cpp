// Ablation: the channel-allocation period T (paper §4.2, "Periodicity of
// our algorithm"). Too frequent: reconfiguration overhead (channel-switch
// downtime) eats throughput. Too rare: the client population churns and
// the allocation goes stale — cells keep bonds their new poor clients
// cannot use, or sit on 20 MHz after the poor clients left. The paper
// picks T = 30 min from the association-duration median; this bench
// simulates six hours of churn and sweeps T.
#include <cstdio>

#include "common.hpp"
#include "core/controller.hpp"
#include "trace/association_trace.hpp"
#include "sim/arrivals.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

struct TimelineResult {
  double mean_effective_mbps = 0.0;
  int reallocations = 0;
  int switches = 0;
};

// Start from the worst case: everything bonded on the same pair.
net::ChannelAssignment baselines_initial(const sim::Wlan& wlan) {
  return net::ChannelAssignment(
      static_cast<std::size_t>(wlan.topology().num_aps()),
      net::Channel::bonded(0));
}

TimelineResult run_timeline(const sim::Wlan& wlan,
                            const std::vector<sim::ArrivalEvent>& sessions,
                            double period_s, double horizon_s,
                            double switch_downtime_s) {
  const core::AcornController acorn;
  const int n_clients = wlan.topology().num_clients();

  net::ChannelAssignment assignment = baselines_initial(wlan);
  TimelineResult out;
  double integral_bps_s = 0.0;
  double downtime_penalty_bps_s = 0.0;
  double next_realloc = period_s;

  const double step_s = 60.0;
  net::Association assoc(static_cast<std::size_t>(n_clients),
                         net::kUnassociated);
  for (double now = 0.0; now < horizon_s; now += step_s) {
    // Session churn: associations form on arrival, dissolve on departure.
    net::Association fresh(static_cast<std::size_t>(n_clients),
                           net::kUnassociated);
    for (const sim::ArrivalEvent& s : sessions) {
      if (s.arrive_s <= now && now < s.depart_s) {
        if (fresh[static_cast<std::size_t>(s.client_slot)] ==
            net::kUnassociated) {
          if (assoc[static_cast<std::size_t>(s.client_slot)] !=
              net::kUnassociated) {
            // Already associated from a previous step: keep the AP.
            fresh[static_cast<std::size_t>(s.client_slot)] =
                assoc[static_cast<std::size_t>(s.client_slot)];
          } else {
            acorn.associate_client(wlan, fresh, assignment,
                                   s.client_slot);
          }
        }
      }
    }
    assoc = fresh;

    if (now >= next_realloc) {
      const core::AllocationResult realloc =
          acorn.reallocate(wlan, assoc, assignment);
      ++out.reallocations;
      out.switches += realloc.switches;
      // Every switching AP's cell is down for the CSA/re-sync window.
      for (int ap = 0; ap < wlan.topology().num_aps(); ++ap) {
        if (!(realloc.assignment[static_cast<std::size_t>(ap)] ==
              assignment[static_cast<std::size_t>(ap)])) {
          const double cell_bps =
              wlan.evaluate(assoc, realloc.assignment)
                  .per_ap[static_cast<std::size_t>(ap)]
                  .goodput_bps;
          downtime_penalty_bps_s += cell_bps * switch_downtime_s;
        }
      }
      assignment = realloc.assignment;
      next_realloc += period_s;
    }

    integral_bps_s +=
        wlan.evaluate(assoc, assignment).total_goodput_bps * step_s;
  }
  out.mean_effective_mbps =
      (integral_bps_s - downtime_penalty_bps_s) / horizon_s / 1e6;
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation: channel-allocation period T under churn",
                "too-frequent pays switch downtime, too-rare goes stale; "
                "the paper picks 30 min");
  // Deployment with heterogeneous client slots: some are far enough that
  // their presence should push their cell to 20 MHz.
  util::Rng rng(bench::kDefaultSeed);
  net::Topology topo = net::Topology::random(5, 15, 150.0, rng);
  net::PathLossModel plm;
  plm.shadowing_sigma_db = 5.0;
  net::LinkBudget budget(topo, plm, rng);
  const sim::Wlan wlan(std::move(topo), std::move(budget),
                       sim::WlanConfig{});

  const trace::AssociationDurationModel durations;
  sim::ArrivalConfig arrivals_cfg;
  arrivals_cfg.rate_per_s = 1.0 / 90.0;
  arrivals_cfg.horizon_s = 6.0 * 3600.0;
  arrivals_cfg.num_client_slots = wlan.topology().num_clients();
  const auto sessions = sim::generate_arrivals(
      arrivals_cfg,
      [&durations](util::Rng& r) { return durations.sample(r); }, rng);
  std::printf("%zu sessions over %.0f h, switch downtime 5 s/cell\n",
              sessions.size(), arrivals_cfg.horizon_s / 3600.0);

  util::TextTable t({"T (min)", "reallocations", "channel switches",
                     "effective throughput (Mbps)"});
  double best_tput = 0.0;
  double best_t = 0.0;
  for (double period_min : {5.0, 15.0, 30.0, 60.0, 120.0, 360.0}) {
    const TimelineResult r =
        run_timeline(wlan, sessions, period_min * 60.0,
                     arrivals_cfg.horizon_s, 5.0);
    t.add_row({util::TextTable::num(period_min, 0),
               std::to_string(r.reallocations),
               std::to_string(r.switches),
               util::TextTable::num(r.mean_effective_mbps, 1)});
    if (r.mean_effective_mbps > best_tput) {
      best_tput = r.mean_effective_mbps;
      best_t = period_min;
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("best period in this run: %.0f min\n", best_t);
  std::printf("shape: once converged the allocation is stable under pure "
              "membership churn, so anywhere in 5-60 min is equivalent "
              "(switch downtime is negligible at this rate); only very "
              "rare reallocation leaves the initial misconfiguration "
              "standing (~5%% loss at T = 6 h). Consistent with the "
              "paper's choice of T = 30 min from the association-duration "
              "median: frequent enough to track topology change, rare "
              "enough to cost nothing.\n");
  return 0;
}
