// Figure 9: CDF of user association durations (CRAWDAD-style trace).
// Paper: 206 APs over 3 years; median ~31 min, >90% below 40 min, heavy
// tail to several hours; basis for the T = 30 min allocation period.
#include <cstdio>

#include "common.hpp"
#include "trace/association_trace.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace acorn;

int main() {
  bench::banner("Figure 9: CDF of association durations",
                "median ~31 min; >90% < 40 min; tail to hours; T = 30 min");
  const trace::AssociationDurationModel model;
  util::Rng rng(bench::kDefaultSeed);
  trace::TraceConfig cfg;
  cfg.num_aps = 206;
  cfg.sessions_per_ap = 200;
  const auto records = trace::generate_trace(cfg, model, rng);
  const util::Ecdf ecdf(trace::durations_of(records));

  util::TextTable t({"duration (s)", "duration (min)", "empirical CDF",
                     "model CDF"});
  for (double d : {300.0, 600.0, 1200.0, 1800.0, 2400.0, 3600.0, 7200.0,
                   14400.0, 25000.0}) {
    t.add_row({util::TextTable::num(d, 0), util::TextTable::num(d / 60.0, 0),
               util::TextTable::num(ecdf.at(d), 3),
               util::TextTable::num(model.cdf(d), 3)});
  }
  std::printf("%s\n", t.to_string().c_str());

  const double median = ecdf.quantile(0.5);
  const double q90 = ecdf.quantile(0.9);
  std::printf("sessions: %zu across %d APs\n", ecdf.size(), cfg.num_aps);
  std::printf("median: %.1f min (paper ~31)\n", median / 60.0);
  std::printf("90th percentile: %.1f min (paper: >90%% below 40)\n",
              q90 / 60.0);
  std::printf("recommended channel-allocation period: %.0f min (paper: 30)\n",
              trace::recommended_period_s(model) / 60.0);
  return 0;
}
