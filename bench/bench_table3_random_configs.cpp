// Table 3: ACORN vs the 10 best of 50 random manual configurations,
// total network throughput, UDP and TCP.
// Paper: ACORN 259.2 (UDP) / 178.9 (TCP) vs best-random 201.6 / 161.7 —
// ACORN beats every random configuration on both transports.
//
// The 50 random trials are independent scenarios: each derives its own
// RNG stream and runs through sim::sweep_scenarios, so `--threads N`
// parallelizes the sweep with bit-identical results for any thread
// count.
#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "baselines/simple.hpp"
#include "common.hpp"
#include "core/controller.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

using namespace acorn;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::banner("Table 3: ACORN vs 10 best of 50 random configurations",
                "ACORN highest on both UDP and TCP");
  util::Rng rng(bench::kDefaultSeed);
  // A randomly picked enterprise-ish topology (paper: "a randomly picked
  // topology"): 5 APs, 14 clients on a 140 m floor with shadowing.
  net::Topology topo = net::Topology::random(5, 14, 140.0, rng);
  net::PathLossModel plm;
  plm.shadowing_sigma_db = 4.0;
  net::LinkBudget budget(topo, plm, rng);
  const sim::Wlan wlan(std::move(topo), std::move(budget),
                       sim::WlanConfig{});

  const core::AcornController acorn;
  const core::ConfigureResult udp_result =
      acorn.configure(wlan, rng, nullptr, mac::TrafficType::kUdp);
  const double acorn_udp = udp_result.evaluation.total_goodput_bps;
  const double acorn_tcp =
      wlan.evaluate(udp_result.association, udp_result.assignment,
                    mac::TrafficType::kTcp)
          .total_goodput_bps;

  constexpr std::size_t kTrials = 50;
  const std::vector<std::pair<double, double>> trials =
      sim::sweep_scenarios(
          kTrials, {bench::kDefaultSeed, opts.threads},
          [&wlan](util::Rng& trial_rng, std::size_t) {
            const baselines::RandomConfig cfg = baselines::random_configuration(
                wlan, net::ChannelPlan(12), trial_rng);
            return std::make_pair(
                wlan.evaluate(cfg.association, cfg.assignment,
                              mac::TrafficType::kUdp)
                    .total_goodput_bps,
                wlan.evaluate(cfg.association, cfg.assignment,
                              mac::TrafficType::kTcp)
                    .total_goodput_bps);
          });
  std::vector<double> random_udp;
  std::vector<double> random_tcp;
  for (const auto& [udp, tcp] : trials) {
    random_udp.push_back(udp);
    random_tcp.push_back(tcp);
  }
  std::sort(random_udp.rbegin(), random_udp.rend());
  std::sort(random_tcp.rbegin(), random_tcp.rend());

  auto print_row = [](const char* label, double ours,
                      const std::vector<double>& best10) {
    std::printf("%s: ACORN %.2f | 10 best random: ", label, ours / 1e6);
    for (int i = 0; i < 10; ++i) {
      std::printf("%.2f%s", best10[static_cast<std::size_t>(i)] / 1e6,
                  i + 1 < 10 ? ", " : "\n");
    }
  };
  print_row("Network Tput UDP (Mbps)", acorn_udp, random_udp);
  print_row("Network Tput TCP (Mbps)", acorn_tcp, random_tcp);

  util::TextTable t({"metric", "ACORN", "best random", "ACORN / best"});
  t.add_row({"UDP (Mbps)", bench::mbps(acorn_udp),
             bench::mbps(random_udp[0]),
             util::TextTable::num(acorn_udp / random_udp[0], 2) + "x"});
  t.add_row({"TCP (Mbps)", bench::mbps(acorn_tcp),
             bench::mbps(random_tcp[0]),
             util::TextTable::num(acorn_tcp / random_tcp[0], 2) + "x"});
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("ACORN beats all 50 random configurations on UDP: %s, "
              "on TCP: %s\n",
              acorn_udp >= random_udp[0] ? "yes" : "NO",
              acorn_tcp >= random_tcp[0] ? "yes" : "NO");
  return 0;
}
