// Ablation: transmit power. The paper's §1/§3 argue (i) Tx cannot exceed
// the regulatory max (identical for both widths) and (ii) raising Tx to
// rescue a bonded link "may project additional interference on other
// links". This bench shows both effects: on an isolated cell more power
// eventually makes CB win, but in a dense deployment globally raising
// power expands the interference graph and lowers total throughput.
#include <cstdio>

#include "common.hpp"
#include "core/allocation.hpp"
#include "phy/rate_control.hpp"
#include "util/table.hpp"

using namespace acorn;

int main() {
  bench::banner("Ablation: transmit power vs CB benefit and interference",
                "more Tx flips CB back on for a link, but densifies "
                "contention network-wide");
  // (1) Isolated link: sweep Tx at a fixed marginal path loss; CB loses
  //     at low Tx and wins past a crossover — with Tx capped, ACORN's
  //     width decision is the only remedy for the poor-link regime.
  std::printf("(1) isolated marginal link (loss %.0f dB): width winner vs "
              "Tx\n",
              sim::kPoorLinkLoss);
  const phy::LinkModel link;
  util::TextTable t({"Tx (dBm)", "20MHz (Mbps)", "40MHz (Mbps)", "winner"});
  for (double tx = 9.0; tx <= 25.0; tx += 2.0) {
    const phy::WidthComparison cmp =
        compare_widths(link, tx, sim::kPoorLinkLoss);
    t.add_row({util::TextTable::num(tx, 0),
               bench::mbps(cmp.on20.goodput_bps),
               bench::mbps(cmp.on40.goodput_bps),
               cmp.cb_wins() ? "40MHz" : "20MHz"});
  }
  std::printf("%s\n", t.to_string().c_str());

  // (2) Dense floor: raise everyone's Tx together. Link SNRs improve,
  //     but every extra dB pulls more APs into carrier-sense range of
  //     each other, shrinking medium shares.
  std::printf("(2) dense floor: all APs at the same Tx, ACORN allocation\n");
  util::TextTable d({"Tx (dBm)", "max degree", "total (Mbps)"});
  for (double tx = 9.0; tx <= 24.0; tx += 3.0) {
    util::Rng rng(bench::kDefaultSeed);
    net::Topology topo = net::Topology::random(6, 18, 90.0, rng);
    for (int ap = 0; ap < topo.num_aps(); ++ap) topo.ap(ap).tx_dbm = tx;
    net::PathLossModel plm;
    plm.shadowing_sigma_db = 3.0;
    net::LinkBudget budget(topo, plm, rng);
    const sim::Wlan wlan(std::move(topo), std::move(budget),
                         sim::WlanConfig{});
    const net::Association assoc = [&wlan] {
      net::Association a;
      for (int c = 0; c < wlan.topology().num_clients(); ++c) {
        // Nearest AP by budget.
        int best = 0;
        double best_rss = -1e9;
        for (int ap = 0; ap < wlan.topology().num_aps(); ++ap) {
          const double rss =
              wlan.budget().rx_at_client_dbm(wlan.topology(), ap, c);
          if (rss > best_rss) {
            best_rss = rss;
            best = ap;
          }
        }
        a.push_back(best);
      }
      return a;
    }();
    const net::InterferenceGraph graph(wlan.topology(), wlan.budget(),
                                       assoc,
                                       wlan.config().interference);
    const core::ChannelAllocator alloc{net::ChannelPlan(4)};
    util::Rng seed_rng(bench::kDefaultSeed + 1);
    const core::AllocationResult r = alloc.allocate(
        wlan, assoc,
        alloc.random_assignment(wlan.topology().num_aps(), seed_rng));
    d.add_row({util::TextTable::num(tx, 0),
               std::to_string(graph.max_degree()),
               bench::mbps(r.final_bps)});
  }
  std::printf("%s\n", d.to_string().c_str());
  std::printf("with only 4 channels, the extra contention of high Tx can "
              "outweigh the per-link SNR gains — the paper's reason to "
              "treat Tx as fixed and manage widths instead.\n");
  return 0;
}
