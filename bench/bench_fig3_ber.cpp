// Figure 3: uncoded BER for QPSK (a) vs SNR and (b) vs Tx power.
// Paper: (a) at equal per-subcarrier SNR the widths coincide and both fit
// the theoretical curve (R^2 0.8 / 0.89); (b) at equal Tx the 40 MHz
// channel has more bit errors.
#include <cstdio>
#include <vector>

#include "baseband/bermac.hpp"
#include "baseband/ofdm.hpp"
#include "common.hpp"
#include "phy/modulation.hpp"
#include "util/stats.hpp"

using namespace acorn;

namespace {

struct Point {
  double snr_db;
  double ber;
};

std::vector<Point> sweep_tx(phy::ChannelWidth width, std::uint64_t seed,
                            const bench::BenchOptions& opts,
                            std::vector<Point>* vs_tx) {
  std::vector<Point> out;
  util::Rng rng(seed);
  const baseband::Ofdm ofdm(width);
  std::int64_t packets = 0;
  std::int64_t samples = 0;
  const bench::Stopwatch timer;
  for (double tx = -4.0; tx <= 16.0; tx += 2.0) {
    baseband::BermacConfig cfg;
    cfg.width = width;
    cfg.packets = opts.smoke ? 4 : 30;
    cfg.packet_bytes = 750;
    cfg.tx_dbm = tx;
    cfg.path_loss_db = 96.0;
    cfg.use_stbc = false;  // SISO isolates the pure width effect
    cfg.rayleigh = false;
    cfg.num_taps = 1;
    cfg.num_threads = opts.threads;
    const baseband::BermacResult r = run_bermac(cfg, rng);
    out.push_back({r.mean_snr_db, r.ber()});
    if (vs_tx != nullptr) vs_tx->push_back({tx, r.ber()});
    packets += cfg.packets;
    samples += cfg.packets *
               static_cast<std::int64_t>(
                   ofdm.num_ofdm_symbols(
                       static_cast<std::size_t>(cfg.packet_bytes) * 8 / 2) *
                   static_cast<std::size_t>(ofdm.symbol_length()));
  }
  bench::emit_throughput(
      "bench_fig3_ber",
      width == phy::ChannelWidth::k20MHz ? "qpsk_siso_20MHz"
                                         : "qpsk_siso_40MHz",
      timer.seconds(), packets, samples, opts.threads);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::banner("Figure 3: uncoded QPSK BER vs SNR and vs Tx",
                "(a) widths coincide vs SNR, fit theory (R^2 ~ 0.8-0.9); "
                "(b) 40 MHz worse at fixed Tx");
  std::vector<Point> tx20;
  std::vector<Point> tx40;
  const auto snr20 =
      sweep_tx(phy::ChannelWidth::k20MHz, bench::kDefaultSeed, opts, &tx20);
  const auto snr40 =
      sweep_tx(phy::ChannelWidth::k40MHz, bench::kDefaultSeed, opts, &tx40);

  std::printf("(a) BER vs per-subcarrier SNR\n");
  util::TextTable a({"width", "SNR (dB)", "measured BER", "theory BER"});
  std::vector<double> log_meas20, log_theory20, log_meas40, log_theory40;
  auto emit = [&a](const char* width, const std::vector<Point>& pts,
                   std::vector<double>* log_meas,
                   std::vector<double>* log_theory) {
    for (const Point& p : pts) {
      const double theory =
          phy::uncoded_ber_db(phy::Modulation::kQpsk, p.snr_db);
      a.add_row({width, util::TextTable::num(p.snr_db, 1),
                 p.ber > 0 ? util::TextTable::num(p.ber, 7) : "0",
                 util::TextTable::num(theory, 7)});
      if (p.ber > 0 && theory > 0) {
        log_meas->push_back(std::log10(p.ber));
        log_theory->push_back(std::log10(theory));
      }
    }
  };
  emit("20MHz", snr20, &log_meas20, &log_theory20);
  emit("40MHz", snr40, &log_meas40, &log_theory40);
  std::printf("%s\n", a.to_string().c_str());
  if (log_meas20.size() >= 2) {
    std::printf("R^2 vs theory (log-domain): 20MHz %.2f",
                util::r_squared(log_meas20, log_theory20));
  }
  if (log_meas40.size() >= 2) {
    std::printf(", 40MHz %.2f", util::r_squared(log_meas40, log_theory40));
  }
  std::printf("  (paper: 0.80 / 0.89)\n\n");

  std::printf("(b) BER vs transmit power (fixed path loss %g dB)\n", 96.0);
  util::TextTable b({"Tx (dBm)", "BER 20MHz", "BER 40MHz"});
  for (std::size_t i = 0; i < tx20.size(); ++i) {
    b.add_row({util::TextTable::num(tx20[i].snr_db, 0),
               tx20[i].ber > 0 ? util::TextTable::num(tx20[i].ber, 7) : "0",
               tx40[i].ber > 0 ? util::TextTable::num(tx40[i].ber, 7) : "0"});
  }
  std::printf("%s\n", b.to_string().c_str());
  int worse = 0;
  int comparable = 0;
  for (std::size_t i = 0; i < tx20.size(); ++i) {
    if (tx40[i].ber > tx20[i].ber) ++worse;
    if (tx40[i].ber > 0 || tx20[i].ber > 0) ++comparable;
  }
  std::printf("40MHz has higher BER at %d of %d Tx points with errors\n",
              worse, comparable);
  return 0;
}
