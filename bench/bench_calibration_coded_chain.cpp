// Calibration: the sample-level coded PHY chain (real K=7 Viterbi,
// puncturing, HT interleaving, QAM, OFDM, AWGN) measured against the
// analytic link abstraction (union bound + Eq. 6) that every higher-level
// experiment uses. The claim being validated: the analytic model places
// each MCS's PER waterfall within ~2 dB of the measured chain, so the
// WLAN-level results do not hinge on the abstraction.
#include <cstdio>

#include "baseband/phy_chain.hpp"
#include "common.hpp"
#include "phy/link.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

// Analytic 50%-PER SNR (no fading margin / MIMO gain: apples-to-apples
// with the SISO static-channel chain).
double predicted_waterfall_db(const phy::LinkModel& model, int mcs,
                              int payload_bits) {
  for (double snr = -5.0; snr <= 40.0; snr += 0.05) {
    const double ber = model.coded_ber(phy::mcs(mcs), snr);
    if (phy::packet_error_rate(ber, payload_bits) < 0.5) return snr;
  }
  return 40.0;
}

double measured_waterfall_db(int mcs, int payload_bytes, bool soft) {
  for (double pl = 112.0; pl >= 78.0; pl -= 0.5) {
    baseband::PhyChainConfig cfg;
    cfg.mcs_index = mcs;
    cfg.tx_dbm = 0.0;
    cfg.path_loss_db = pl;
    cfg.rayleigh = false;
    cfg.num_taps = 1;
    cfg.packet_bytes = payload_bytes;
    cfg.soft_decision = soft;
    util::Rng rng(bench::kDefaultSeed + static_cast<std::uint64_t>(mcs));
    const baseband::PhyChainResult r = run_phy_chain(cfg, 12, rng);
    if (r.per() < 0.5) return r.mean_snr_db;
  }
  return 100.0;
}

}  // namespace

int main() {
  bench::banner("Calibration: coded chain vs analytic link abstraction",
                "per-MCS PER waterfalls agree within ~2 dB");
  phy::LinkConfig lc;
  lc.shadow_db = 0.0;
  lc.stbc_gain_db = 0.0;
  lc.noise_figure_db = 0.0;
  const phy::LinkModel model(lc);
  const int payload_bytes = 300;

  util::TextTable t({"MCS", "modulation", "rate", "predicted 50% PER (dB)",
                     "measured hard (dB)", "delta (dB)",
                     "measured soft (dB)", "soft gain (dB)"});
  double worst = 0.0;
  for (int mcs = 0; mcs <= 7; ++mcs) {
    const phy::McsEntry& e = phy::mcs(mcs);
    const double pred = predicted_waterfall_db(model, mcs, payload_bytes * 8);
    const double hard = measured_waterfall_db(mcs, payload_bytes, false);
    const double soft = measured_waterfall_db(mcs, payload_bytes, true);
    const double delta = hard - pred;
    worst = std::max(worst, std::abs(delta));
    t.add_row({std::to_string(mcs), std::string(to_string(e.modulation)),
               std::string(to_string(e.code_rate)),
               util::TextTable::num(pred, 1), util::TextTable::num(hard, 1),
               util::TextTable::num(delta, 1),
               util::TextTable::num(soft, 1),
               util::TextTable::num(hard - soft, 1)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("worst |delta| (hard vs model): %.1f dB — the union bound is "
              "slightly conservative (predicts failure a little early), as "
              "a bound should be. Soft-decision decoding buys the usual "
              "~2 dB on top (the paper's commodity cards are hard-decision "
              "era; the analytic model matches the hard chain).\n",
              worst);
  return 0;
}
