// Calibration: the sample-level coded PHY chain (real K=7 Viterbi,
// puncturing, HT interleaving, QAM, OFDM, AWGN) measured against the
// analytic link abstraction (union bound + Eq. 6) that every higher-level
// experiment uses. The claim being validated: the analytic model places
// each MCS's PER waterfall within ~2 dB of the measured chain, so the
// WLAN-level results do not hinge on the abstraction.
#include <cstdio>

#include "baseband/convolutional.hpp"
#include "baseband/interleaver.hpp"
#include "baseband/ofdm.hpp"
#include "baseband/phy_chain.hpp"
#include "common.hpp"
#include "phy/link.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

struct SweepCost {
  std::int64_t packets = 0;
  std::int64_t samples = 0;
  double seconds = 0.0;
};

// Analytic 50%-PER SNR (no fading margin / MIMO gain: apples-to-apples
// with the SISO static-channel chain).
double predicted_waterfall_db(const phy::LinkModel& model, int mcs,
                              int payload_bits) {
  for (double snr = -5.0; snr <= 40.0; snr += 0.05) {
    const double ber = model.coded_ber(phy::mcs(mcs), snr);
    if (phy::packet_error_rate(ber, payload_bits) < 0.5) return snr;
  }
  return 40.0;
}

// Time-domain samples one coded packet occupies at this MCS.
std::int64_t samples_per_packet(int mcs, int payload_bytes) {
  const phy::McsEntry& e = phy::mcs(mcs);
  const baseband::Ofdm ofdm(phy::ChannelWidth::k20MHz);
  const baseband::BlockInterleaver inter =
      baseband::BlockInterleaver::for_ht(phy::ChannelWidth::k20MHz,
                                         e.modulation);
  const std::size_t coded = 2 * (static_cast<std::size_t>(payload_bytes) * 8 +
                                 baseband::ConvolutionalCode::kConstraint - 1);
  const std::size_t punct = baseband::punctured_length(coded, e.code_rate);
  const auto n_cbps = static_cast<std::size_t>(inter.block_size());
  const std::size_t n_sym = (punct + n_cbps - 1) / n_cbps;
  return static_cast<std::int64_t>(
      n_sym * static_cast<std::size_t>(ofdm.symbol_length()));
}

double measured_waterfall_db(int mcs, int payload_bytes, bool soft,
                             const bench::BenchOptions& opts,
                             SweepCost& cost) {
  const int packets = opts.smoke ? 4 : 12;
  const double step = opts.smoke ? 2.0 : 0.5;
  const std::int64_t spp = samples_per_packet(mcs, payload_bytes);
  const bench::Stopwatch timer;
  struct SecondsGuard {
    const bench::Stopwatch& timer;
    SweepCost& cost;
    ~SecondsGuard() { cost.seconds += timer.seconds(); }
  } guard{timer, cost};
  for (double pl = 112.0; pl >= 78.0; pl -= step) {
    baseband::PhyChainConfig cfg;
    cfg.mcs_index = mcs;
    cfg.tx_dbm = 0.0;
    cfg.path_loss_db = pl;
    cfg.rayleigh = false;
    cfg.num_taps = 1;
    cfg.packet_bytes = payload_bytes;
    cfg.soft_decision = soft;
    cfg.num_threads = opts.threads;
    util::Rng rng(bench::kDefaultSeed + static_cast<std::uint64_t>(mcs));
    const baseband::PhyChainResult r = run_phy_chain(cfg, packets, rng);
    cost.packets += packets;
    cost.samples += packets * spp;
    if (r.per() < 0.5) return r.mean_snr_db;
  }
  return 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::banner("Calibration: coded chain vs analytic link abstraction",
                "per-MCS PER waterfalls agree within ~2 dB");
  phy::LinkConfig lc;
  lc.shadow_db = 0.0;
  lc.stbc_gain_db = 0.0;
  lc.noise_figure_db = 0.0;
  const phy::LinkModel model(lc);
  const int payload_bytes = 300;

  util::TextTable t({"MCS", "modulation", "rate", "predicted 50% PER (dB)",
                     "measured hard (dB)", "delta (dB)",
                     "measured soft (dB)", "soft gain (dB)"});
  double worst = 0.0;
  SweepCost hard_cost;
  SweepCost soft_cost;
  for (int mcs = 0; mcs <= 7; ++mcs) {
    const phy::McsEntry& e = phy::mcs(mcs);
    const double pred = predicted_waterfall_db(model, mcs, payload_bytes * 8);
    const double hard =
        measured_waterfall_db(mcs, payload_bytes, false, opts, hard_cost);
    const double soft =
        measured_waterfall_db(mcs, payload_bytes, true, opts, soft_cost);
    const double delta = hard - pred;
    worst = std::max(worst, std::abs(delta));
    t.add_row({std::to_string(mcs), std::string(to_string(e.modulation)),
               std::string(to_string(e.code_rate)),
               util::TextTable::num(pred, 1), util::TextTable::num(hard, 1),
               util::TextTable::num(delta, 1),
               util::TextTable::num(soft, 1),
               util::TextTable::num(hard - soft, 1)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("worst |delta| (hard vs model): %.1f dB — the union bound is "
              "slightly conservative (predicts failure a little early), as "
              "a bound should be. Soft-decision decoding buys the usual "
              "~2 dB on top (the paper's commodity cards are hard-decision "
              "era; the analytic model matches the hard chain).\n",
              worst);
  bench::emit_throughput("bench_calibration_coded_chain", "hard_viterbi",
                         hard_cost.seconds, hard_cost.packets,
                         hard_cost.samples, opts.threads);
  bench::emit_throughput("bench_calibration_coded_chain", "soft_viterbi",
                         soft_cost.seconds, soft_cost.packets,
                         soft_cost.samples, opts.threads);
  return 0;
}
