# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_baseband_engine_smoke "/root/repo/build-review/bench/bench_baseband_engine" "--smoke")
set_tests_properties(bench_baseband_engine_smoke PROPERTIES  ENVIRONMENT "ACORN_BENCH_JSON=/root/repo/build-review/bench/bench_smoke.json;ACORN_BENCH_LABEL=smoke" LABELS "perf_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig3_ber_smoke "/root/repo/build-review/bench/bench_fig3_ber" "--smoke")
set_tests_properties(bench_fig3_ber_smoke PROPERTIES  ENVIRONMENT "ACORN_BENCH_JSON=/root/repo/build-review/bench/bench_smoke.json;ACORN_BENCH_LABEL=smoke" LABELS "perf_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig4_per_smoke "/root/repo/build-review/bench/bench_fig4_per" "--smoke")
set_tests_properties(bench_fig4_per_smoke PROPERTIES  ENVIRONMENT "ACORN_BENCH_JSON=/root/repo/build-review/bench/bench_smoke.json;ACORN_BENCH_LABEL=smoke" LABELS "perf_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_calibration_coded_chain_smoke "/root/repo/build-review/bench/bench_calibration_coded_chain" "--smoke")
set_tests_properties(bench_calibration_coded_chain_smoke PROPERTIES  ENVIRONMENT "ACORN_BENCH_JSON=/root/repo/build-review/bench/bench_smoke.json;ACORN_BENCH_LABEL=smoke" LABELS "perf_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_viterbi_kernel_smoke "/root/repo/build-review/bench/bench_viterbi_kernel" "--smoke")
set_tests_properties(bench_viterbi_kernel_smoke PROPERTIES  ENVIRONMENT "ACORN_BENCH_JSON=/root/repo/build-review/bench/bench_smoke.json;ACORN_BENCH_LABEL=smoke" LABELS "perf_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
