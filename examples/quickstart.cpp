// Quickstart: auto-configure a small 802.11n WLAN with ACORN.
//
// Builds a two-cell deployment (one cell with poor links, one with good
// links), runs the full controller — Algorithm 1 user association as the
// clients arrive, then Algorithm 2 channel-bonding selection — and prints
// the resulting configuration.
//
//   ./quickstart
#include <cstdio>

#include "core/controller.hpp"
#include "sim/scenario.hpp"
#include "util/table.hpp"

using namespace acorn;

int main() {
  // 1. Describe the deployment. ScenarioBuilder pins every path loss so
  //    the example is reproducible; real users would build a Topology +
  //    LinkBudget from positions and a PathLossModel instead.
  sim::ScenarioBuilder builder;
  builder.cells = {
      // AP0: two clients with poor links (CB would starve them).
      sim::CellSpec{{sim::kPoorLinkLoss, sim::kPoorLinkLoss + 0.2}},
      // AP1: two strong clients (CB doubles their throughput).
      sim::CellSpec{{sim::kGoodLinkLoss, sim::kGoodLinkLoss + 2.0}},
  };
  const sim::Wlan wlan = builder.build();

  // 2. Run ACORN: twelve 20 MHz channels (the 5 GHz plan), default
  //    epsilon = 1.05, clients activated one by one.
  const core::AcornController acorn;
  util::Rng rng(42);
  const core::ConfigureResult result = acorn.configure(wlan, rng);

  // 3. Inspect the decisions.
  std::printf("ACORN auto-configuration\n========================\n");
  util::TextTable t({"AP", "channel", "clients", "share M", "cell Mbps"});
  for (const sim::ApStats& ap : result.evaluation.per_ap) {
    t.add_row({"AP" + std::to_string(ap.ap_id),
               result.assignment[static_cast<std::size_t>(ap.ap_id)]
                   .to_string(),
               std::to_string(ap.num_clients),
               util::TextTable::num(ap.medium_share, 2),
               util::TextTable::num(ap.goodput_bps / 1e6, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("total network throughput: %.2f Mbps\n",
              result.evaluation.total_goodput_bps / 1e6);
  std::printf("allocation took %d channel switches over %lld evaluations\n",
              result.allocation.switches,
              static_cast<long long>(result.allocation.evaluations));
  std::printf("\nnote how the poor cell got a 20 MHz channel and the good "
              "cell a 40 MHz bond.\n");
  return 0;
}
