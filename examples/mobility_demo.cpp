// Mobility demo: a client walks away from its AP while ACORN tracks the
// link quality and opportunistically falls back from the 40 MHz bond to
// a 20 MHz half (paper §5.2, Figs. 12-13). Prints a live-style timeline.
//
//   ./mobility_demo [walk_distance_m]
#include <cstdio>
#include <cstdlib>

#include "core/width_switch.hpp"
#include "net/pathloss.hpp"
#include "sim/mobility.hpp"
#include "sim/wlan.hpp"

using namespace acorn;

int main(int argc, char** argv) {
  const double walk_m = argc > 1 ? std::atof(argv[1]) : 22.0;
  std::printf("mobility demo: walking from 2 m to %.0f m over 30 s\n\n",
              walk_m);

  net::Topology topo;
  topo.add_ap({0.0, 0.0});
  topo.add_client({2.0, 0.0});   // static good client
  topo.add_client({0.0, 2.0});   // static good client
  const int mobile = topo.add_client({2.0, 0.0});

  net::PathLossModel plm;
  plm.exponent = 4.2;
  plm.ref_loss_db = 52.0;

  const sim::Trajectory walk =
      sim::Trajectory::line({2.0, 0.0}, {walk_m, 0.0}, 0.0, 30.0);

  phy::ChannelWidth last = phy::ChannelWidth::k40MHz;
  for (double t = 0.0; t <= walk.end_s() + 10.0; t += 2.0) {
    topo.client(mobile).position = walk.position_at(t);
    util::Rng rng(1);
    net::LinkBudget budget(topo, plm, rng);
    const sim::Wlan wlan(topo, budget, sim::WlanConfig{});
    const core::WidthDecision d = core::decide_width(wlan, 0, {0, 1, mobile});
    const double snr =
        wlan.client_snr_db(0, mobile, phy::ChannelWidth::k20MHz);
    const double bps = d.width == phy::ChannelWidth::k40MHz
                           ? d.cell_bps_40
                           : d.cell_bps_20;
    std::printf("t=%5.1fs  d=%5.1fm  snr20=%5.1f dB  width=%s  cell=%6.2f "
                "Mbps%s\n",
                t,
                net::distance(topo.ap(0).position,
                              topo.client(mobile).position),
                snr, to_string(d.width).c_str(), bps / 1e6,
                d.width != last ? "   << WIDTH SWITCH" : "");
    last = d.width;
  }
  std::printf("\nACORN keeps the bond while the link is strong and drops "
              "to 20 MHz when the mobile client would otherwise drag the "
              "whole cell down (802.11 performance anomaly).\n");
  return 0;
}
