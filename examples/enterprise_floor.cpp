// Enterprise floor: a 9-AP, 36-client office deployment with log-distance
// path loss and shadowing. Compares three management schemes — ACORN,
// the adapted Kauffmann et al. [17] baseline, and stock behaviour (RSS
// association + aggressive 40 MHz everywhere) — then demonstrates the
// periodic re-allocation loop driven by client churn.
//
//   ./enterprise_floor [seed]
#include <cstdio>
#include <cstdlib>

#include "baselines/kauffmann17.hpp"
#include "baselines/simple.hpp"
#include "core/controller.hpp"
#include "sim/arrivals.hpp"
#include "sim/events.hpp"
#include "trace/association_trace.hpp"
#include "util/table.hpp"

using namespace acorn;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 2026;
  std::printf("enterprise floor, seed %llu\n",
              static_cast<unsigned long long>(seed));
  util::Rng rng(seed);

  // A 90 m x 90 m floor: 9 APs on a jittered grid, 36 clients uniform.
  net::Topology topo = net::Topology::random(9, 36, 90.0, rng);
  net::PathLossModel plm;
  plm.shadowing_sigma_db = 5.0;
  net::LinkBudget budget(topo, plm, rng);
  const sim::Wlan wlan(std::move(topo), std::move(budget),
                       sim::WlanConfig{});

  // --- Scheme comparison -------------------------------------------------
  const core::AcornController acorn;
  const core::ConfigureResult ours = acorn.configure(wlan, rng);

  const baselines::Kauffmann17 k17{net::ChannelPlan(12)};
  const baselines::Kauffmann17::Result theirs = k17.configure(wlan);

  const net::Association rss = baselines::rss_associate_all(wlan);
  const net::ChannelAssignment all40 = k17.allocate(wlan);

  util::TextTable t({"scheme", "UDP total (Mbps)", "TCP total (Mbps)",
                     "bonded APs"});
  auto bonded_count = [](const net::ChannelAssignment& a) {
    int n = 0;
    for (const net::Channel& c : a) n += c.is_bonded() ? 1 : 0;
    return n;
  };
  auto add_scheme = [&](const char* name, const net::Association& assoc,
                        const net::ChannelAssignment& assignment) {
    t.add_row({name,
               util::TextTable::num(
                   wlan.evaluate(assoc, assignment,
                                 mac::TrafficType::kUdp)
                           .total_goodput_bps /
                       1e6,
                   1),
               util::TextTable::num(
                   wlan.evaluate(assoc, assignment,
                                 mac::TrafficType::kTcp)
                           .total_goodput_bps /
                       1e6,
                   1),
               std::to_string(bonded_count(assignment))});
  };
  add_scheme("ACORN (joint)", ours.association, ours.assignment);
  add_scheme("[17] adapted", theirs.association, theirs.assignment);
  add_scheme("RSS + all-40", rss, all40);
  std::printf("\n%s\n", t.to_string().c_str());

  // --- Periodic operation under churn -------------------------------------
  // Sessions arrive as a Poisson process with CRAWDAD-like durations;
  // every T = 30 min ACORN re-runs channel allocation for the clients
  // currently active.
  const trace::AssociationDurationModel durations;
  sim::ArrivalConfig arrivals_cfg;
  arrivals_cfg.rate_per_s = 1.0 / 180.0;
  arrivals_cfg.horizon_s = 4.0 * 3600.0;
  arrivals_cfg.num_client_slots = wlan.topology().num_clients();
  const auto sessions = sim::generate_arrivals(
      arrivals_cfg,
      [&durations](util::Rng& r) { return durations.sample(r); }, rng);

  std::printf("periodic operation: %zu sessions over %.0f h, T = %.0f min\n",
              sessions.size(), arrivals_cfg.horizon_s / 3600.0,
              acorn.config().period_s / 60.0);
  sim::EventQueue queue;
  net::ChannelAssignment assignment = ours.assignment;
  util::TextTable ops({"t (min)", "active clients", "switches",
                       "network Mbps"});
  for (double when = acorn.config().period_s;
       when < arrivals_cfg.horizon_s; when += acorn.config().period_s) {
    queue.schedule(when, [&](double now) {
      // Active clients re-associate; inactive ones detach.
      net::Association assoc(
          static_cast<std::size_t>(wlan.topology().num_clients()),
          net::kUnassociated);
      int active = 0;
      for (const sim::ArrivalEvent& s : sessions) {
        if (s.arrive_s <= now && now < s.depart_s) {
          if (assoc[static_cast<std::size_t>(s.client_slot)] ==
              net::kUnassociated) {
            acorn.associate_client(wlan, assoc, assignment, s.client_slot);
            ++active;
          }
        }
      }
      const core::AllocationResult realloc =
          acorn.reallocate(wlan, assoc, assignment);
      assignment = realloc.assignment;
      ops.add_row({util::TextTable::num(now / 60.0, 0),
                   std::to_string(active),
                   std::to_string(realloc.switches),
                   util::TextTable::num(realloc.final_bps / 1e6, 1)});
    });
  }
  queue.run();
  std::printf("%s\n", ops.to_string().c_str());
  std::printf("(%zu maintenance passes executed)\n", queue.processed());
  return 0;
}
