// acornctl: auto-configure a WLAN described in a deployment file, or
// drive a running acornd daemon over its wire protocol.
//
//   ./acornctl <deployment-file> [--tcp] [--compare] [--seed N]
//              [--sweep N [--threads T]]
//   ./acornctl --demo            # run a built-in sample deployment
//
//   ./acornctl --connect ENDPOINT CMD ...   # client mode
//     ENDPOINT: unix:/path/to/sock | host:port
//     CMD:
//       register <id> <deployment-file|--demo>
//       remove   <id>
//       join     <id> <client>
//       leave    <id> <client>
//       snr      <id> <ap> <client> <loss-db>
//       load     <id> <client> <fraction>
//       reconfig <id>
//       config   <id>
//       stats
//       shutdown
//
// --sweep N scores N random (association, channel) configurations of the
// same deployment through the deterministic parallel sweep driver
// (sim/sweep.hpp) and reports how the ACORN configuration ranks against
// them; the result is bit-identical for any --threads value.
//
// --dcb-sweep N runs the gap-to-optimal report on N dense random-drop
// scenarios (dcb/gap_report.hpp): Algorithm 2 vs the exact Kai et al.
// optimum plus all three DCB width policies; bit-identical for any
// --threads value. --dcb-drop prints one generated random-drop
// deployment file instead. Family knobs: --dcb-aps/--dcb-clients/
// --dcb-area/--dcb-channels/--wide-prob.
//
// File format (see sim/deployment_file.hpp):
//   ap <x> <y> [tx_dbm]
//   client <x> <y>
//   pathloss exponent|ref|shadowing <value>
//   channels <n>
//   seed <n>
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "baselines/kauffmann17.hpp"
#include "baselines/simple.hpp"
#include "core/controller.hpp"
#include "dcb/gap_report.hpp"
#include "dcb/random_drop.hpp"
#include "service/client.hpp"
#include "sim/deployment_file.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

using namespace acorn;

namespace {

constexpr const char* kDemo = R"(# demo floor: 3 APs, 8 clients
pathloss exponent 3.5
pathloss shadowing 4
channels 12
seed 7
ap 10 10
ap 50 10
ap 30 40
client 12 12
client 14  8
client 48 14
client 52  9
client 28 38
client 35 42
client 30 25
client 45 30
)";

void print_configuration(const sim::Wlan& wlan,
                         const core::ConfigureResult& result) {
  util::TextTable t({"AP", "position", "channel", "clients", "share",
                     "cell Mbps"});
  for (const sim::ApStats& ap : result.evaluation.per_ap) {
    const net::Point p = wlan.topology().ap(ap.ap_id).position;
    t.add_row({"AP" + std::to_string(ap.ap_id),
               "(" + util::TextTable::num(p.x, 0) + "," +
                   util::TextTable::num(p.y, 0) + ")",
               result.assignment[static_cast<std::size_t>(ap.ap_id)]
                   .to_string(),
               std::to_string(ap.num_clients),
               util::TextTable::num(ap.medium_share, 2),
               util::TextTable::num(ap.goodput_bps / 1e6, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("clients: ");
  for (int c = 0; c < wlan.topology().num_clients(); ++c) {
    const int owner = result.association[static_cast<std::size_t>(c)];
    std::printf("c%d->%s ", c,
                owner == net::kUnassociated
                    ? "??"
                    : ("AP" + std::to_string(owner)).c_str());
  }
  std::printf("\ntotal: %.2f Mbps\n",
              result.evaluation.total_goodput_bps / 1e6);
}

int print_reply(const service::Message& reply) {
  using namespace service;
  if (const auto* ok = std::get_if<OkReply>(&reply)) {
    std::printf("ok (value %d)\n", ok->value);
    return 0;
  }
  if (const auto* err = std::get_if<ErrorReply>(&reply)) {
    std::fprintf(stderr, "error %u: %s\n", err->code, err->text.c_str());
    return 1;
  }
  if (const auto* cfg = std::get_if<ConfigReply>(&reply)) {
    std::printf("wlan %u: epoch %llu, %llu events applied, %.2f Mbps\n",
                cfg->wlan_id,
                static_cast<unsigned long long>(cfg->epoch),
                static_cast<unsigned long long>(cfg->events_applied),
                cfg->total_goodput_bps / 1e6);
    util::TextTable t({"AP", "allocated", "operating"});
    for (std::size_t ap = 0; ap < cfg->allocated.size(); ++ap) {
      t.add_row({"AP" + std::to_string(ap),
                 cfg->allocated[ap].to_string(),
                 cfg->operating[ap].to_string()});
    }
    std::printf("%s", t.to_string().c_str());
    std::printf("clients: ");
    for (std::size_t c = 0; c < cfg->association.size(); ++c) {
      const int owner = cfg->association[c];
      if (owner == net::kUnassociated) {
        std::printf("c%zu->?? ", c);
      } else {
        std::printf("c%zu->AP%d ", c, owner);
      }
    }
    std::printf("\n");
    return 0;
  }
  if (const auto* st = std::get_if<StatsReply>(&reply)) {
    auto u = [](std::uint64_t v) {
      return static_cast<unsigned long long>(v);
    };
    std::printf(
        "wlans %u | frames %llu events %llu errors %llu\n"
        "epochs %llu (last %.2f ms) snapshots %llu\n"
        "wal: records %llu flushes %llu syncs %llu coalesced %llu "
        "(avg batch %.1f)\n"
        "switches: channel %llu width %llu assoc %llu\n"
        "allocator: candidate evals %llu\n"
        "oracle: cell evals %llu hits %llu, share evals %llu hits %llu\n",
        st->num_wlans, u(st->frames_rx), u(st->events_total),
        u(st->protocol_errors), u(st->epochs_total), st->last_epoch_ms,
        u(st->snapshots_written), u(st->wal_records), u(st->wal_flushes),
        u(st->wal_syncs), u(st->wal_coalesced_events),
        st->wal_syncs > 0 ? static_cast<double>(st->wal_coalesced_events) /
                                static_cast<double>(st->wal_syncs)
                          : 0.0,
        u(st->channel_switches), u(st->width_switches), u(st->assoc_changes),
        u(st->alloc_evaluations),
        u(st->oracle_cell_evals), u(st->oracle_cell_hits),
        u(st->oracle_share_evals), u(st->oracle_share_hits));
    std::printf("latency us (log2 buckets):");
    for (std::size_t i = 0; i < st->latency_us_log2.size(); ++i) {
      if (st->latency_us_log2[i] != 0) {
        std::printf(" [<%llu us]=%llu", 1ull << (i + 1),
                    u(st->latency_us_log2[i]));
      }
    }
    std::printf("\n");
    std::printf("wal sync us (log2 buckets):");
    for (std::size_t i = 0; i < st->wal_sync_us_log2.size(); ++i) {
      if (st->wal_sync_us_log2[i] != 0) {
        std::printf(" [<%llu us]=%llu", 1ull << (i + 1),
                    u(st->wal_sync_us_log2[i]));
      }
    }
    std::printf("\n");
    std::printf("wal batch size (log2 buckets):");
    for (std::size_t i = 0; i < st->wal_batch_log2.size(); ++i) {
      if (st->wal_batch_log2[i] != 0) {
        std::printf(" [<%llu ev]=%llu", 1ull << (i + 1),
                    u(st->wal_batch_log2[i]));
      }
    }
    std::printf("\n");
    return 0;
  }
  std::fprintf(stderr, "unexpected reply type\n");
  return 1;
}

int run_connect(const std::string& endpoint, int argc, char** argv,
                int first) {
  using namespace service;
  if (first >= argc) {
    std::fprintf(stderr, "--connect needs a command (see --help)\n");
    return 2;
  }
  const std::string cmd = argv[first];
  const auto arg_u32 = [&](int k) {
    return static_cast<std::uint32_t>(
        std::strtoul(argv[first + k], nullptr, 10));
  };
  const int nargs = argc - first - 1;
  const auto need = [&](int n, const char* usage) {
    if (nargs != n) {
      std::fprintf(stderr, "usage: acornctl --connect ENDPOINT %s\n", usage);
      std::exit(2);
    }
  };

  Message request;
  if (cmd == "register") {
    need(2, "register <id> <deployment-file|--demo>");
    std::string text;
    if (std::strcmp(argv[first + 2], "--demo") == 0) {
      text = kDemo;
    } else {
      std::ifstream file(argv[first + 2]);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", argv[first + 2]);
        return 2;
      }
      std::ostringstream ss;
      ss << file.rdbuf();
      text = ss.str();
    }
    request = RegisterWlan{arg_u32(1), std::move(text)};
  } else if (cmd == "remove") {
    need(1, "remove <id>");
    request = RemoveWlan{arg_u32(1)};
  } else if (cmd == "join") {
    need(2, "join <id> <client>");
    request = ClientJoin{arg_u32(1), arg_u32(2)};
  } else if (cmd == "leave") {
    need(2, "leave <id> <client>");
    request = ClientLeave{arg_u32(1), arg_u32(2)};
  } else if (cmd == "snr") {
    need(4, "snr <id> <ap> <client> <loss-db>");
    request = SnrUpdate{arg_u32(1), arg_u32(2), arg_u32(3),
                        std::atof(argv[first + 4])};
  } else if (cmd == "load") {
    need(3, "load <id> <client> <fraction>");
    request = LoadUpdate{arg_u32(1), arg_u32(2), std::atof(argv[first + 3])};
  } else if (cmd == "reconfig") {
    need(1, "reconfig <id>");
    request = ForceReconfigure{arg_u32(1)};
  } else if (cmd == "config") {
    need(1, "config <id>");
    request = QueryConfig{arg_u32(1)};
  } else if (cmd == "stats") {
    need(0, "stats");
    request = QueryStats{};
  } else if (cmd == "shutdown") {
    need(0, "shutdown");
    request = Shutdown{};
  } else {
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
  }

  try {
    Client client = Client::connect(endpoint);
    return print_reply(client.call(request));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      return run_connect(argv[i + 1], argc, argv, i + 2);
    }
  }
  bool tcp = false;
  bool compare = false;
  std::uint64_t seed = 42;
  const char* path = nullptr;
  bool demo = false;
  int sweep_n = 0;
  int sweep_threads = 1;
  int dcb_sweep_n = 0;
  bool dcb_drop = false;
  dcb::GapReportConfig dcb_config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tcp") == 0) {
      tcp = true;
    } else if (std::strcmp(argv[i], "--compare") == 0) {
      compare = true;
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      sweep_n = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      sweep_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--dcb-sweep") == 0 && i + 1 < argc) {
      dcb_sweep_n = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--dcb-drop") == 0) {
      dcb_drop = true;
    } else if (std::strcmp(argv[i], "--dcb-aps") == 0 && i + 1 < argc) {
      dcb_config.drop.num_aps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--dcb-clients") == 0 &&
               i + 1 < argc) {
      dcb_config.drop.num_clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--dcb-area") == 0 && i + 1 < argc) {
      dcb_config.drop.area_m = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--dcb-channels") == 0 &&
               i + 1 < argc) {
      dcb_config.drop.num_channels = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--wide-prob") == 0 && i + 1 < argc) {
      dcb_config.wide_probability = std::atof(argv[++i]);
    } else {
      path = argv[i];
    }
  }
  // The DCB modes generate their own deployments (the dense random-drop
  // family) — no deployment file involved.
  if (dcb_drop) {
    util::Rng rng(seed);
    const sim::DeploymentSpec drop =
        dcb::random_drop(dcb_config.drop, rng);
    std::fputs(sim::format_deployment(drop).c_str(), stdout);
    return 0;
  }
  if (dcb_sweep_n > 0) {
    dcb_config.num_scenarios = dcb_sweep_n;
    dcb_config.seed = seed;
    dcb_config.num_threads = sweep_threads;
    try {
      const dcb::GapReport report = dcb::run_gap_report(dcb_config);
      std::fputs(dcb::format_gap_report(report).c_str(), stdout);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dcb sweep failed: %s\n", e.what());
      return 1;
    }
    return 0;
  }
  if (path == nullptr && !demo) {
    std::fprintf(stderr,
                 "usage: %s <deployment-file> [--tcp] [--compare] "
                 "[--seed N] [--sweep N [--threads T]] | --demo\n"
                 "       %s --dcb-sweep N [--threads T] [--seed N]\n"
                 "           [--dcb-aps N] [--dcb-clients N] "
                 "[--dcb-area M] [--dcb-channels N] [--wide-prob P]\n"
                 "       %s --dcb-drop [--seed N] [--dcb-aps N] ...\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }

  sim::DeploymentSpec spec;
  try {
    if (demo) {
      spec = sim::parse_deployment(std::string(kDemo));
    } else {
      std::ifstream file(path);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 2;
      }
      spec = sim::parse_deployment(file);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 2;
  }

  const sim::Wlan wlan = spec.build();
  std::printf("deployment: %d APs, %d clients, %d channels\n",
              wlan.topology().num_aps(), wlan.topology().num_clients(),
              spec.num_channels);

  core::AcornConfig cfg;
  cfg.plan = net::ChannelPlan(spec.num_channels);
  const core::AcornController acorn(cfg);
  util::Rng rng(seed);
  const mac::TrafficType traffic =
      tcp ? mac::TrafficType::kTcp : mac::TrafficType::kUdp;
  const core::ConfigureResult result =
      acorn.configure(wlan, rng, nullptr, traffic);
  std::printf("\nACORN configuration (%s):\n", tcp ? "TCP" : "UDP");
  print_configuration(wlan, result);

  if (compare) {
    const baselines::Kauffmann17 k17{net::ChannelPlan(spec.num_channels)};
    const baselines::Kauffmann17::Result theirs = k17.configure(wlan);
    const double theirs_bps =
        wlan.evaluate(theirs.association, theirs.assignment, traffic)
            .total_goodput_bps;
    const net::Association rss = baselines::rss_associate_all(wlan);
    const net::ChannelAssignment all40 = k17.allocate(wlan);
    const double stock_bps =
        wlan.evaluate(rss, all40, traffic).total_goodput_bps;
    std::printf("\ncomparison:\n  [17] adapted : %.2f Mbps\n"
                "  RSS + all-40 : %.2f Mbps\n  ACORN        : %.2f Mbps\n",
                theirs_bps / 1e6, stock_bps / 1e6,
                result.evaluation.total_goodput_bps / 1e6);
  }

  if (sweep_n > 0) {
    sim::SweepOptions sweep_opts;
    sweep_opts.seed = seed;
    sweep_opts.num_threads = sweep_threads;
    const std::vector<double> trials = sim::sweep_scenarios(
        static_cast<std::size_t>(sweep_n), sweep_opts,
        [&](util::Rng& rng, std::size_t) {
          const baselines::RandomConfig cfg = baselines::random_configuration(
              wlan, net::ChannelPlan(spec.num_channels), rng);
          return wlan.evaluate(cfg.association, cfg.assignment, traffic)
              .total_goodput_bps;
        });
    std::vector<double> sorted = trials;
    std::sort(sorted.rbegin(), sorted.rend());
    const double acorn_bps = result.evaluation.total_goodput_bps;
    const std::size_t beaten = static_cast<std::size_t>(
        std::count_if(trials.begin(), trials.end(),
                      [&](double t) { return acorn_bps >= t; }));
    std::printf("\nrandom-config sweep (%d trials, %d threads):\n"
                "  best random   : %.2f Mbps\n"
                "  median random : %.2f Mbps\n"
                "  ACORN         : %.2f Mbps (beats %zu/%d)\n",
                sweep_n, sweep_threads, sorted[0] / 1e6,
                sorted[sorted.size() / 2] / 1e6, acorn_bps / 1e6, beaten,
                sweep_n);
  }
  return 0;
}
