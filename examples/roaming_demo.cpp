// Roaming demo: a client walks from one AP's coverage into another's
// while its association state machine (scan / associate / monitor / roam
// with hysteresis) follows along on the discrete-event engine.
//
//   ./roaming_demo [walk_seconds]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "net/pathloss.hpp"
#include "sim/client_fsm.hpp"
#include "sim/mobility.hpp"

using namespace acorn;

int main(int argc, char** argv) {
  const double walk_s = argc > 1 ? std::atof(argv[1]) : 60.0;
  std::printf("roaming demo: walking between two APs over %.0f s\n\n",
              walk_s);

  const net::Point ap0{0.0, 0.0};
  const net::Point ap1{60.0, 0.0};
  net::PathLossModel plm;
  plm.exponent = 3.8;

  const sim::Trajectory walk =
      sim::Trajectory::line({5.0, 0.0}, {55.0, 0.0}, 0.0, walk_s);

  sim::EventQueue queue;
  // RSS hook: computed from the walker's current position.
  auto rss = [&](int ap) {
    const net::Point me = walk.position_at(queue.now());
    const double dist = net::distance(me, ap == 0 ? ap0 : ap1);
    return 15.0 - plm.median_loss_db(dist);
  };
  // Policy hook: strongest AP (an RSS client; swap in Algorithm 1 for
  // network-aware choices).
  auto selector = [&]() -> std::optional<int> {
    const double r0 = rss(0);
    const double r1 = rss(1);
    if (std::max(r0, r1) < -92.0) return std::nullopt;
    return r0 >= r1 ? 0 : 1;
  };

  sim::ClientFsmConfig cfg;
  cfg.monitor_interval_s = 1.0;
  sim::ClientFsm fsm(0, cfg, rss, selector);
  fsm.join(queue);
  queue.run_until(walk_s + 5.0);

  std::printf("%-8s %-12s -> %-12s  serving AP\n", "t (s)", "from", "to");
  for (const sim::ClientTransition& tr : fsm.history()) {
    const std::string ap_label =
        tr.ap >= 0 ? "AP" + std::to_string(tr.ap) : std::string("-");
    std::printf("%-8.2f %-12s -> %-12s  %s\n", tr.time_s,
                sim::to_string(tr.from), sim::to_string(tr.to),
                ap_label.c_str());
  }
  std::printf("\nfinal state: %s on AP%d\n", sim::to_string(fsm.state()),
              fsm.serving_ap());
  std::printf("the roam happens once the far AP clears the %.0f dB "
              "hysteresis — no ping-pong at the cell edge.\n",
              cfg.roam_hysteresis_db);
  return 0;
}
