// OFDM playground: drive the sample-level baseband (the WARP-testbed
// substitute) directly. Sends a text message through the full chain —
// QPSK, 2x2 Alamouti STBC, 64/128-point OFDM with cyclic prefix, Rayleigh
// multipath + thermal noise — at both channel widths and shows why
// bonding hurts at low SNR.
//
//   ./ofdm_playground [tx_dbm] [path_loss_db]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baseband/bermac.hpp"
#include "baseband/ofdm.hpp"
#include "baseband/psd.hpp"
#include "baseband/qpsk.hpp"
#include "phy/noise.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

using namespace acorn;

namespace {

void show_message_roundtrip(double tx_dbm, double loss_db) {
  const std::string message =
      "channel bonding is not panacea - ACORN, CoNEXT 2010";
  std::vector<std::uint8_t> bits;
  for (char ch : message) {
    for (int b = 7; b >= 0; --b) {
      bits.push_back(static_cast<std::uint8_t>((ch >> b) & 1));
    }
  }
  std::printf("message round-trip over the 20 MHz SISO chain:\n");
  const baseband::Ofdm ofdm(phy::ChannelWidth::k20MHz);
  util::Rng rng(7);
  baseband::ChannelConfig ch_cfg;
  ch_cfg.sample_rate_hz = ofdm.sample_rate_hz();
  ch_cfg.path_loss_db = loss_db;
  ch_cfg.num_taps = 3;
  baseband::FadingChannel channel(ch_cfg, rng);

  const auto symbols = baseband::qpsk_modulate(bits);
  const auto tx = ofdm.modulate(symbols, util::dbm_to_mw(tx_dbm));
  const auto rx = channel.transmit(tx, rng);
  const auto h = channel.frequency_response(
      static_cast<std::size_t>(ofdm.fft_size()));
  const auto eq = ofdm.demodulate(rx, h, symbols.size(),
                                  util::dbm_to_mw(tx_dbm));
  const auto decoded_bits = baseband::qpsk_demodulate(eq);
  std::string decoded;
  for (std::size_t i = 0; i + 8 <= bits.size(); i += 8) {
    char c = 0;
    for (int b = 0; b < 8; ++b) {
      c = static_cast<char>((c << 1) | decoded_bits[i + static_cast<std::size_t>(b)]);
    }
    decoded.push_back(c);
  }
  int errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] != decoded_bits[i]) ++errors;
  }
  std::printf("  sent:     %s\n  received: %s\n  bit errors: %d / %zu\n\n",
              message.c_str(), decoded.c_str(), errors, bits.size());
}

}  // namespace

int main(int argc, char** argv) {
  const double tx_dbm = argc > 1 ? std::atof(argv[1]) : 8.0;
  const double loss_db = argc > 2 ? std::atof(argv[2]) : 92.0;
  std::printf("OFDM playground: Tx %.1f dBm, path loss %.1f dB\n\n", tx_dbm,
              loss_db);

  show_message_roundtrip(tx_dbm, loss_db);

  std::printf("link budget per width (same total Tx):\n");
  for (const auto width :
       {phy::ChannelWidth::k20MHz, phy::ChannelWidth::k40MHz}) {
    std::printf("  %s: %d data subcarriers, per-subcarrier SNR %.1f dB\n",
                to_string(width).c_str(), phy::data_subcarriers(width),
                phy::snr_per_subcarrier_db(tx_dbm, loss_db, width));
  }
  std::printf("  (CB penalty: %.2f dB)\n\n", phy::cb_snr_penalty_db());

  std::printf("BERMAC (2x2 STBC, 1500-byte packets, Rayleigh fading):\n");
  for (const auto width :
       {phy::ChannelWidth::k20MHz, phy::ChannelWidth::k40MHz}) {
    baseband::BermacConfig cfg;
    cfg.width = width;
    cfg.packets = 60;
    cfg.tx_dbm = tx_dbm;
    cfg.path_loss_db = loss_db;
    util::Rng rng(11);
    const baseband::BermacResult r = run_bermac(cfg, rng);
    std::printf("  %s: measured SNR %.1f dB, BER %.2e, PER %.2f\n",
                to_string(width).c_str(), r.mean_snr_db, r.ber(), r.per());
  }
  std::printf("\ntry lowering tx_dbm (e.g. './ofdm_playground 0 96') to see "
              "the 40 MHz channel fail first.\n");
  return 0;
}
