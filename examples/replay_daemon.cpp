// replay_daemon: drive an in-process acornd through a scripted day of
// events — register a WLAN, let clients trickle in, drift one client
// across the floor with SNR updates, and reconfigure each "hour" —
// printing the controller's decisions after every epoch.
//
//   ./replay_daemon [--state-dir DIR]
//
// With --state-dir the daemon persists a snapshot at every epoch; run it
// twice with the same directory to watch the second run recover the
// first run's final state before the replay starts.
#include <cstdio>
#include <cstring>
#include <string>
#include <variant>

#include "service/client.hpp"
#include "service/daemon.hpp"

using namespace acorn;
using namespace acorn::service;

namespace {

constexpr const char* kFloor = R"(# replay floor: 3 APs, 8 clients
pathloss exponent 3.5
pathloss shadowing 4
channels 12
seed 7
ap 10 10
ap 50 10
ap 30 40
client 12 12
client 14  8
client 48 14
client 52  9
client 28 38
client 35 42
client 30 25
client 45 30
)";

constexpr std::uint32_t kWlan = 1;

void show_config(Client& client) {
  const Message reply = client.call(QueryConfig{kWlan});
  const auto& cfg = std::get<ConfigReply>(reply);
  std::printf("  epoch %llu: %.2f Mbps |",
              static_cast<unsigned long long>(cfg.epoch),
              cfg.total_goodput_bps / 1e6);
  for (std::size_t ap = 0; ap < cfg.operating.size(); ++ap) {
    std::printf(" AP%zu=%s", ap, cfg.operating[ap].to_string().c_str());
  }
  std::printf(" | assoc:");
  for (std::size_t c = 0; c < cfg.association.size(); ++c) {
    std::printf(" %d", cfg.association[c]);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  DaemonConfig config;
  config.unix_path = "/tmp/acorn_replay.sock";
  config.epoch_s = 0.0;  // epochs on demand: the script paces time
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--state-dir") == 0 && i + 1 < argc) {
      config.state_dir = argv[++i];
    }
  }

  Daemon daemon(config);
  daemon.start();
  Client client = Client::connect_unix(config.unix_path);

  std::printf("replaying onto acornd at %s\n", config.unix_path.c_str());
  if (!config.state_dir.empty()) {
    const Message stats = client.call(QueryStats{});
    const auto& st = std::get<StatsReply>(stats);
    if (st.num_wlans > 0) {
      std::printf("recovered %u WLAN(s) from %s:\n", st.num_wlans,
                  config.state_dir.c_str());
      show_config(client);
      client.call(RemoveWlan{kWlan});  // start the replay fresh
    }
  }

  std::printf("08:00 register WLAN %u (3 APs, 8 clients)\n", kWlan);
  client.call(RegisterWlan{kWlan, kFloor});

  std::printf("09:00 clients arrive\n");
  for (std::uint32_t c = 0; c < 8; ++c) {
    const Message reply = client.call(ClientJoin{kWlan, c});
    std::printf("  client %u -> AP%d\n", c,
                std::get<OkReply>(reply).value);
  }
  client.call(ForceReconfigure{kWlan});
  show_config(client);

  std::printf("12:00 client 7 wanders toward AP0 (loss drifts)\n");
  for (int step = 0; step < 4; ++step) {
    client.call(SnrUpdate{kWlan, 0, 7, 105.0 - 10.0 * step});
    client.call(SnrUpdate{kWlan, 1, 7, 95.0 + 8.0 * step});
    client.call(SnrUpdate{kWlan, 2, 7, 88.0 + 10.0 * step});
    client.call(ForceReconfigure{kWlan});
    show_config(client);
  }

  std::printf("17:00 half the floor leaves\n");
  for (std::uint32_t c = 0; c < 4; ++c) {
    client.call(ClientLeave{kWlan, c});
  }
  client.call(ForceReconfigure{kWlan});
  show_config(client);

  const Message stats = client.call(QueryStats{});
  const auto& st = std::get<StatsReply>(stats);
  std::printf("day done: %llu events, %llu epochs, %llu snapshots, "
              "%llu channel switches\n",
              static_cast<unsigned long long>(st.events_total),
              static_cast<unsigned long long>(st.epochs_total),
              static_cast<unsigned long long>(st.snapshots_written),
              static_cast<unsigned long long>(st.channel_switches));

  client.close();
  daemon.stop();
  return 0;
}
