// replay_daemon: a trace-driven load generator for acornd.
//
// Boots an in-process daemon, registers a fleet of synthetic floors and
// replays the deterministic schedule from trace/load_gen against it —
// session joins/leaves drawn from the CRAWDAD-fitted association-
// duration model via the Poisson arrival process, with SNR drift and
// offered-load hints while each session is live. Every WLAN is
// reconfigured each simulated `--epoch-every` seconds, mirroring the
// paper's periodic controller epoch.
//
//   ./replay_daemon [--wlans N] [--clients K] [--aps A] [--horizon S]
//                   [--rate R] [--seed S] [--workers M]
//                   [--epoch-every S] [--state-dir DIR]
//
//   --wlans N        fleet size (default 4)
//   --clients K      client slots per WLAN (default 8)
//   --aps A          APs per synthetic floor (default 3)
//   --horizon S      simulated seconds of churn (default 3600)
//   --rate R         session arrivals per WLAN per second (default 1/60)
//   --seed S         schedule + floor seed (default 1)
//   --workers M      pooled shard workers (default: hardware threads;
//                    0 = one dedicated thread per WLAN)
//   --epoch-every S  simulated seconds between reconfigurations (300)
//   --state-dir DIR  persist snapshots + WAL; run twice with the same
//                    directory to watch recovery before the replay
//
// The same flags always produce the same schedule, so two runs — at any
// worker count — drive the daemon through identical per-WLAN event
// sequences.
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <variant>
#include <vector>

#include "service/client.hpp"
#include "service/daemon.hpp"
#include "trace/load_gen.hpp"

using namespace acorn;
using namespace acorn::service;

namespace {

constexpr int kWindow = 128;  // frames in flight on the connection

void show_config(Client& client, std::uint32_t wlan) {
  const Message reply = client.call(QueryConfig{wlan});
  const auto& cfg = std::get<ConfigReply>(reply);
  std::printf("  wlan %u epoch %llu: %.2f Mbps |", wlan,
              static_cast<unsigned long long>(cfg.epoch),
              cfg.total_goodput_bps / 1e6);
  for (std::size_t ap = 0; ap < cfg.operating.size(); ++ap) {
    std::printf(" AP%zu=%s", ap, cfg.operating[ap].to_string().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  trace::FleetLoadConfig load;
  load.num_wlans = 4;
  load.horizon_s = 3600.0;
  double epoch_every_s = 300.0;
  DaemonConfig config;
  config.unix_path =
      "/tmp/acorn_replay_" + std::to_string(::getpid()) + ".sock";
  config.epoch_s = 0.0;  // epochs on demand: the schedule paces time

  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--wlans") == 0) {
      load.num_wlans = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (std::strcmp(argv[i], "--clients") == 0) {
      load.clients_per_wlan = std::atoi(value());
    } else if (std::strcmp(argv[i], "--aps") == 0) {
      load.aps_per_wlan = std::atoi(value());
    } else if (std::strcmp(argv[i], "--horizon") == 0) {
      load.horizon_s = std::atof(value());
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      load.arrivals_per_s = std::atof(value());
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      load.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      config.workers = std::atoi(value());
    } else if (std::strcmp(argv[i], "--epoch-every") == 0) {
      epoch_every_s = std::atof(value());
    } else if (std::strcmp(argv[i], "--state-dir") == 0) {
      config.state_dir = value();
    } else if (std::strcmp(argv[i], "--wal-mode") == 0) {
      const char* mode = value();
      if (std::strcmp(mode, "shared") == 0) {
        config.wal_mode = WalMode::kShared;
      } else if (std::strcmp(mode, "per-shard") == 0) {
        config.wal_mode = WalMode::kPerShard;
      } else {
        std::fprintf(stderr, "--wal-mode must be shared or per-shard\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (load.num_wlans == 0 || load.horizon_s <= 0.0 || epoch_every_s <= 0.0) {
    std::fprintf(stderr, "need --wlans >= 1, --horizon > 0, "
                         "--epoch-every > 0\n");
    return 2;
  }

  Daemon daemon(config);
  daemon.start();
  Client client = Client::connect_unix(config.unix_path);
  std::printf("replaying onto acornd at %s\n", config.unix_path.c_str());

  if (!config.state_dir.empty()) {
    const Message stats = client.call(QueryStats{});
    const auto& st = std::get<StatsReply>(stats);
    if (st.num_wlans > 0) {
      std::printf("recovered %u WLAN(s) from %s:\n", st.num_wlans,
                  config.state_dir.c_str());
      show_config(client, 1);
      // Start the replay fresh so both runs replay the same schedule.
      for (std::uint32_t w = 0; w < st.num_wlans; ++w) {
        client.call(RemoveWlan{1 + w});
      }
    }
  }

  std::printf("registering %u WLAN(s): %d APs x %d client slots each\n",
              load.num_wlans, load.aps_per_wlan, load.clients_per_wlan);
  const std::string floor = trace::synthetic_floor(
      load.aps_per_wlan, load.clients_per_wlan, load.seed);
  for (std::uint32_t w = 0; w < load.num_wlans; ++w) {
    client.call(RegisterWlan{load.first_wlan_id + w, floor});
  }

  std::printf("generating %.0f s of fleet load (seed %llu, %.3f "
              "arrivals/WLAN/s)...\n",
              load.horizon_s, static_cast<unsigned long long>(load.seed),
              load.arrivals_per_s);
  const std::vector<trace::LoadEvent> events =
      trace::generate_fleet_load(load);
  std::printf("%zu events; reconfiguring every %.0f simulated seconds\n",
              events.size(), epoch_every_s);

  // Replay pipelined: up to kWindow frames stay in flight; at every
  // epoch boundary the window drains and each WLAN reconfigures, so
  // epochs see exactly the events that "happened" before them.
  std::size_t sent = 0;
  std::size_t recvd = 0;
  std::uint64_t epochs = 0;
  double next_epoch_s = epoch_every_s;
  const auto drain = [&]() {
    while (recvd < sent) {
      (void)client.recv();
      ++recvd;
    }
  };
  while (sent < events.size()) {
    const trace::LoadEvent& e = events[sent];
    if (e.t_s >= next_epoch_s) {
      drain();
      for (std::uint32_t w = 0; w < load.num_wlans; ++w) {
        client.call(ForceReconfigure{load.first_wlan_id + w});
      }
      epochs += load.num_wlans;
      std::printf("  t=%6.0fs: %zu/%zu events replayed, %llu epochs\n",
                  next_epoch_s, sent, events.size(),
                  static_cast<unsigned long long>(epochs));
      next_epoch_s += epoch_every_s;
      continue;
    }
    switch (e.kind) {
      case trace::LoadEventKind::kJoin:
        client.send(ClientJoin{e.wlan_id, e.client});
        break;
      case trace::LoadEventKind::kLeave:
        client.send(ClientLeave{e.wlan_id, e.client});
        break;
      case trace::LoadEventKind::kSnr:
        client.send(SnrUpdate{e.wlan_id, e.ap, e.client, e.value});
        break;
      case trace::LoadEventKind::kLoad:
        client.send(LoadUpdate{e.wlan_id, e.client, e.value});
        break;
    }
    ++sent;
    if (sent - recvd >= kWindow) {
      (void)client.recv();
      ++recvd;
    }
  }
  drain();
  for (std::uint32_t w = 0; w < load.num_wlans; ++w) {
    client.call(ForceReconfigure{load.first_wlan_id + w});
  }
  epochs += load.num_wlans;

  for (std::uint32_t w = 0; w < std::min<std::uint32_t>(load.num_wlans, 4);
       ++w) {
    show_config(client, load.first_wlan_id + w);
  }
  const Message stats = client.call(QueryStats{});
  const auto& st = std::get<StatsReply>(stats);
  std::printf("replay done: %llu events, %llu epochs, %llu snapshots, "
              "%llu channel switches, %llu wal records\n",
              static_cast<unsigned long long>(st.events_total),
              static_cast<unsigned long long>(st.epochs_total),
              static_cast<unsigned long long>(st.snapshots_written),
              static_cast<unsigned long long>(st.channel_switches),
              static_cast<unsigned long long>(st.wal_records));

  client.close();
  daemon.stop();
  return 0;
}
