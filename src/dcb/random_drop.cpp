#include "dcb/random_drop.hpp"

#include <stdexcept>

namespace acorn::dcb {

sim::DeploymentSpec random_drop(const RandomDropConfig& config,
                                util::Rng& rng) {
  if (config.num_aps < 1 || config.num_clients < 0 ||
      config.area_m <= 0.0 || config.num_channels < 1) {
    throw std::invalid_argument("random_drop: bad config");
  }
  sim::DeploymentSpec spec;
  spec.topology =
      net::Topology::random(config.num_aps, config.num_clients,
                            config.area_m, rng, config.grid_aps);
  for (int ap = 0; ap < spec.topology.num_aps(); ++ap) {
    spec.topology.ap(ap).tx_dbm = config.ap_tx_dbm;
  }
  spec.pathloss = config.pathloss;
  spec.num_channels = config.num_channels;
  // Freeze the shadowing draw into the spec so the emitted file
  // reproduces the exact same link budget.
  spec.seed = rng.next_u64();
  return spec;
}

}  // namespace acorn::dcb
