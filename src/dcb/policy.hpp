// Dynamic channel bonding (DCB) policy layer.
//
// The paper fixes each AP's channel width per reconfiguration epoch
// (Algorithm 2 assigns a basic or bonded color and the AP transmits at
// that width until the next epoch). The related work — Faridi/Bellalta,
// "Analysis of Dynamic Channel Bonding in Dense Networks of WLANs" —
// instead lets a bonded AP choose its width *per transmission
// opportunity*: transmit 40 MHz when the secondary half is idle, fall
// back to 20 MHz on the primary otherwise (always-max), or bond only
// with probability p (probabilistic).
//
// Three model layers, cross-validated against each other:
//   1. slot level   — mac::simulate_dcf_multichannel, the ground truth:
//                     binary exponential backoff per station with
//                     per-basic-channel occupancy and per-transmission
//                     width decisions;
//   2. distilled    — distill_shares below: closed-form per-cell
//                     effective medium shares (how much air time a cell
//                     gets at full width vs the narrow fallback),
//                     validated against layer 1 in
//                     tests/test_dcb_policy.cpp;
//   3. flow level   — evaluate_policy below: the distilled shares feed
//                     the existing sim::NetSnapshot cell kernel, so
//                     whole scenario sweeps stay at network-evaluation
//                     speed instead of slot-simulation speed.
#pragma once

#include <string>
#include <vector>

#include "mac/dcf.hpp"
#include "mac/traffic.hpp"
#include "net/interference.hpp"
#include "sim/netkernel.hpp"

namespace acorn::dcb {

/// A per-transmission width policy applied uniformly to every bonded
/// AP in the network (APs on basic channels have no width choice).
struct WidthPolicy {
  mac::WidthMode mode = mac::WidthMode::kStaticWidth;
  /// Bonding probability for kProbabilistic (ignored otherwise).
  double wide_probability = 0.5;

  /// The paper's baseline: the allocated width is used for every
  /// transmission.
  static WidthPolicy static_width() { return {}; }
  /// Bond whenever the secondary half is idle at the transmission
  /// opportunity.
  static WidthPolicy always_max() {
    return {mac::WidthMode::kAlwaysMax, 1.0};
  }
  /// Bond with probability `p` when the secondary half is idle.
  static WidthPolicy probabilistic(double p) {
    return {mac::WidthMode::kProbabilistic, p};
  }

  std::string name() const;
};

/// Distilled per-cell air-time split: the effective medium share a cell
/// spends transmitting at its full allocated width vs narrowed to the
/// primary 20 MHz half. For basic channels and the static policy
/// `narrow` is 0 and `full` is the paper's M_a.
struct WidthShares {
  double full = 0.0;
  double narrow = 0.0;
  double total() const { return full + narrow; }
};

/// Closed-form mean-field distillation of the multi-channel DCF under
/// `policy`. For a bonded AP a with primary half p and secondary s:
///   M_p      = 1 / (1 + |contenders overlapping p|)   (primary share)
///   u_sec    = min(1, sum over contenders b that overlap s but not p
///                  of b's saturated duty cycle 1/(1+|con_b|), with
///                  con_b counted by narrow footprints — DCB neighbors
///                  vacate b's channel except when widening)
///   full_a   = M_p * w * (1 - u_sec),  narrow_a = M_p - full_a
/// where w = 1 for always-max and `wide_probability` for the
/// probabilistic policy. Non-bonded APs and the static policy keep the
/// paper's M_a = 1/(|con_a|+1) at the allocated width. First-order
/// model: validated against mac::simulate_dcf_multichannel with a
/// documented tolerance in tests/test_dcb_policy.cpp (the slot
/// simulator's protocol overhead — DIFS + backoff gaps a saturated
/// secondary occupant leaves behind — lets some wide transmissions
/// through even when u_sec = 1; the gap shrinks as frames lengthen).
std::vector<WidthShares> distill_shares(
    const net::InterferenceGraph& graph,
    const net::ChannelAssignment& assignment, const WidthPolicy& policy);

/// Flow-level outcome of running `policy` over one assignment.
struct DcbEvaluation {
  std::vector<WidthShares> shares;
  /// Per-cell transport goodput (full + narrow portions summed).
  std::vector<double> cell_goodput_bps;
  double total_goodput_bps = 0.0;
};

/// Evaluate the network under `policy`. The static policy reproduces
/// `snap.evaluate(assignment, traffic)` bit-identically (same kernel,
/// same shares). DCB policies evaluate each bonded cell twice — at the
/// bonded width under the base assignment and at the primary 20 MHz
/// half under a narrowed variant — weighting each evaluation by the
/// distilled shares above. Hidden-interference activity uses the base
/// assignment's unweighted shares for both portions (the interferer
/// duty cycle is set by contention, not by this cell's width choice).
DcbEvaluation evaluate_policy(const sim::NetSnapshot& snap,
                              const net::ChannelAssignment& assignment,
                              const WidthPolicy& policy,
                              mac::TrafficType traffic =
                                  mac::TrafficType::kUdp);

/// All three policy flavors with the given probabilistic p — the
/// standard sweep set reported by the gap report and bench_dcb.
std::vector<WidthPolicy> standard_policies(double p = 0.5);

}  // namespace acorn::dcb
