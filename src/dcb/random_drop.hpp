// Dense random-drop scenario generator (Faridi/Bellalta-style): n APs
// dropped uniformly at random in a square floor (no grid tiling — the
// point is *overlapping* cells), clients uniform, log-distance path
// loss with shadowing. Complements the scripted sim::ScenarioBuilder
// (which places link classes by hand) with the high-density random
// deployments the DCB literature evaluates on. Generates a
// sim::DeploymentSpec so every scenario can be emitted as a portable
// deployment file via sim::format_deployment.
#pragma once

#include "net/pathloss.hpp"
#include "sim/deployment_file.hpp"
#include "util/rng.hpp"

namespace acorn::dcb {

struct RandomDropConfig {
  int num_aps = 5;
  int num_clients = 15;
  /// Side of the square floor (m). 5 APs in 60 m x 60 m is ~14 AP/ha —
  /// dense enough that most cells carrier-sense several neighbors.
  double area_m = 60.0;
  /// Uniform AP placement by default; true tiles a jittered grid like
  /// the enterprise topologies.
  bool grid_aps = false;
  double ap_tx_dbm = 15.0;
  net::PathLossModel pathloss{/*ref_loss_db=*/46.8, /*exponent=*/3.5,
                              /*shadowing_sigma_db=*/4.0};
  /// Basic 20 MHz channels available to the allocator. 4 keeps the
  /// color count (4 basic + 2 bonded = 6) small enough that the exact
  /// optimum is computable for every scenario of the dense family.
  int num_channels = 4;

  /// AP density in APs per hectare, a standard density metric for
  /// random-drop studies.
  double aps_per_hectare() const {
    return static_cast<double>(num_aps) / (area_m * area_m / 1e4);
  }
};

/// Draw one random deployment. All randomness (AP/client positions and
/// the spec's shadowing seed) comes from `rng`, so a derived sweep
/// stream (sim::sweep_scenarios) makes scenario i reproducible and
/// thread-count independent.
sim::DeploymentSpec random_drop(const RandomDropConfig& config,
                                util::Rng& rng);

}  // namespace acorn::dcb
