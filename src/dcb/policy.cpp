#include "dcb/policy.hpp"

#include <algorithm>
#include <cstdio>

namespace acorn::dcb {

std::string WidthPolicy::name() const {
  switch (mode) {
    case mac::WidthMode::kStaticWidth:
      return "static";
    case mac::WidthMode::kAlwaysMax:
      return "always-max";
    case mac::WidthMode::kProbabilistic: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "prob-%g", wide_probability);
      return buf;
    }
  }
  return "unknown";
}

std::vector<WidthShares> distill_shares(
    const net::InterferenceGraph& graph,
    const net::ChannelAssignment& assignment, const WidthPolicy& policy) {
  const int n = graph.num_aps();
  std::vector<WidthShares> shares(static_cast<std::size_t>(n));
  for (int ap = 0; ap < n; ++ap) {
    WidthShares& s = shares[static_cast<std::size_t>(ap)];
    const net::Channel& ch = assignment[static_cast<std::size_t>(ap)];
    if (!ch.is_bonded() || policy.mode == mac::WidthMode::kStaticWidth) {
      s.full = net::medium_access_share(graph, assignment, ap);
      continue;
    }
    const net::Channel primary = net::Channel::basic(ch.primary());
    const net::Channel secondary = net::Channel::basic(ch.primary() + 1);
    int primary_contenders = 0;
    double secondary_busy = 0.0;
    for (int b : graph.neighbors(ap)) {
      const net::Channel& other = assignment[static_cast<std::size_t>(b)];
      if (other.conflicts(primary)) {
        ++primary_contenders;
      } else if (other.conflicts(secondary)) {
        // Invisible to the primary countdown but occupying the
        // secondary half. Saturated duty cycle: b's share of its own
        // channel, counting b's contenders by their *narrow*
        // footprints — under a DCB policy every bonded neighbor
        // (including `ap` itself) vacates b's channel except when it
        // opportunistically widens, so b owns the gaps they leave.
        int con_b = 0;
        for (int c : graph.neighbors(b)) {
          const net::Channel& cc =
              assignment[static_cast<std::size_t>(c)];
          const net::Channel narrow_c =
              cc.is_bonded() ? net::Channel::basic(cc.primary()) : cc;
          if (narrow_c.conflicts(other)) ++con_b;
        }
        secondary_busy += 1.0 / (1.0 + static_cast<double>(con_b));
      }
    }
    const double primary_share =
        1.0 / (1.0 + static_cast<double>(primary_contenders));
    const double secondary_idle = 1.0 - std::min(1.0, secondary_busy);
    const double wide = policy.mode == mac::WidthMode::kAlwaysMax
                            ? 1.0
                            : policy.wide_probability;
    s.full = primary_share * wide * secondary_idle;
    s.narrow = primary_share - s.full;
  }
  return shares;
}

DcbEvaluation evaluate_policy(const sim::NetSnapshot& snap,
                              const net::ChannelAssignment& assignment,
                              const WidthPolicy& policy,
                              mac::TrafficType traffic) {
  DcbEvaluation out;
  out.shares = distill_shares(snap.graph(), assignment, policy);
  const int n = snap.num_aps();
  out.cell_goodput_bps.assign(static_cast<std::size_t>(n), 0.0);

  if (policy.mode == mac::WidthMode::kStaticWidth) {
    // The paper's model, bit-identical to the standard evaluation path.
    const sim::Evaluation eval = snap.evaluate(assignment, traffic);
    for (int ap = 0; ap < n; ++ap) {
      out.cell_goodput_bps[static_cast<std::size_t>(ap)] =
          eval.per_ap[static_cast<std::size_t>(ap)].goodput_bps;
    }
    out.total_goodput_bps = eval.total_goodput_bps;
    return out;
  }

  std::vector<double> activity;
  snap.unweighted_shares(assignment, activity);
  net::ChannelAssignment variant = assignment;
  for (int ap = 0; ap < n; ++ap) {
    const WidthShares& s = out.shares[static_cast<std::size_t>(ap)];
    const net::Channel ch = assignment[static_cast<std::size_t>(ap)];
    double cell = 0.0;
    if (s.full > 0.0) {
      cell += snap.evaluate_cell(ap, s.full, assignment, activity, traffic)
                  .goodput_bps;
    }
    if (ch.is_bonded() && s.narrow > 0.0) {
      variant[static_cast<std::size_t>(ap)] =
          net::Channel::basic(ch.primary());
      cell += snap.evaluate_cell(ap, s.narrow, variant, activity, traffic)
                  .goodput_bps;
      variant[static_cast<std::size_t>(ap)] = ch;
    }
    out.cell_goodput_bps[static_cast<std::size_t>(ap)] = cell;
    out.total_goodput_bps += cell;
  }
  return out;
}

std::vector<WidthPolicy> standard_policies(double p) {
  return {WidthPolicy::static_width(), WidthPolicy::always_max(),
          WidthPolicy::probabilistic(p)};
}

}  // namespace acorn::dcb
