// Gap-to-optimal report: how far Algorithm 2's allocations sit from the
// exact optimum (Kai et al. baseline) on the dense random-drop family,
// plus what each DCB width policy would deliver on top of Algorithm 2's
// allocation. Rides sim::sweep_scenarios, so the report is bit-identical
// at any thread count: scenario i derives its rng stream from (seed, i)
// and writes only its own slot. Every future allocator PR can quote
// "Algorithm 2 is within X% of optimal on the dense family" from this
// instead of assuming it.
#pragma once

#include <string>
#include <vector>

#include "dcb/policy.hpp"
#include "dcb/random_drop.hpp"
#include "mac/traffic.hpp"
#include "sim/wlan.hpp"

namespace acorn::dcb {

struct GapReportConfig {
  /// Scenario family. The default (5 APs, 4 basic channels = 6 colors)
  /// keeps the exact search at 6^5 = 7776 assignments per scenario.
  RandomDropConfig drop;
  int num_scenarios = 200;
  std::uint64_t seed = 1;
  /// Sweep worker threads (0 = hardware concurrency). A pure
  /// performance knob — results are bit-identical at any value.
  int num_threads = 1;
  /// p for the probabilistic width policy column.
  double wide_probability = 0.5;
  mac::TrafficType traffic = mac::TrafficType::kUdp;
  /// Exact-search budget: scenarios whose |colors|^n_aps exceeds this
  /// fall back to Kai's bounded search and are flagged inexact (they
  /// are excluded from the gap aggregates, which only make sense
  /// against a true optimum).
  long long max_exact_evaluations = 1'000'000;
  sim::WlanConfig wlan;
};

struct GapScenario {
  double acorn_bps = 0.0;
  double optimal_bps = 0.0;
  /// (optimal - acorn) / optimal, in [0, 1]; 0 when optimal is 0.
  double gap = 0.0;
  /// True when `optimal_bps` came from the exhaustive branch.
  bool exact = false;
  long long acorn_evaluations = 0;
  long long optimal_evaluations = 0;
  /// Total goodput of each standard width policy (static, always-max,
  /// probabilistic-p) evaluated on Algorithm 2's allocation.
  std::vector<double> policy_bps;
};

struct GapReport {
  GapReportConfig config;
  std::vector<GapScenario> scenarios;
  /// Aggregates over the exact scenarios only.
  int num_exact = 0;
  double mean_gap = 0.0;
  double p95_gap = 0.0;
  double max_gap = 0.0;
  /// Mean per-policy totals (bps) over all scenarios, same order as
  /// dcb::standard_policies.
  std::vector<double> mean_policy_bps;
};

/// Run the sweep and aggregate. Deterministic for a fixed config
/// regardless of config.num_threads.
GapReport run_gap_report(const GapReportConfig& config);

/// Human-readable multi-line summary (what `acornctl --dcb-sweep`
/// prints).
std::string format_gap_report(const GapReport& report);

}  // namespace acorn::dcb
