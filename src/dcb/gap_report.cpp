#include "dcb/gap_report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "baselines/kai.hpp"
#include "baselines/simple.hpp"
#include "core/allocation.hpp"
#include "core/oracle_cache.hpp"
#include "sim/sweep.hpp"
#include "util/stats.hpp"

namespace acorn::dcb {

GapReport run_gap_report(const GapReportConfig& config) {
  if (config.num_scenarios <= 0) {
    throw std::invalid_argument(
        "GapReportConfig.num_scenarios must be positive");
  }
  GapReport report;
  report.config = config;

  const std::vector<WidthPolicy> policies =
      standard_policies(config.wide_probability);

  core::AllocationConfig alloc_config;
  alloc_config.num_threads = 1;  // parallelism lives at the sweep level
  baselines::KaiConfig kai_config;
  kai_config.max_exact_evaluations = config.max_exact_evaluations;

  report.scenarios = sim::sweep_scenarios(
      static_cast<std::size_t>(config.num_scenarios),
      sim::SweepOptions{config.seed, config.num_threads},
      [&](util::Rng& rng, std::size_t) {
        const sim::DeploymentSpec spec = random_drop(config.drop, rng);
        const sim::Wlan wlan = spec.build(config.wlan);
        const net::ChannelPlan plan(spec.num_channels);
        const net::Association assoc = baselines::rss_associate_all(wlan);
        const core::CachedOracle oracle(wlan, assoc, config.traffic);

        const core::ChannelAllocator allocator(plan, alloc_config);
        const core::AllocationResult acorn = allocator.allocate(
            wlan, assoc,
            allocator.random_assignment(wlan.topology().num_aps(), rng),
            oracle);
        const baselines::KaiResult optimal =
            baselines::kai_optimal_allocation(oracle, plan, rng,
                                              kai_config);

        GapScenario out;
        out.acorn_bps = acorn.final_bps;
        out.optimal_bps = optimal.total_bps;
        out.exact = optimal.exact;
        out.acorn_evaluations = acorn.evaluations;
        out.optimal_evaluations = optimal.evaluations;
        out.gap = optimal.total_bps > 0.0
                      ? std::max(0.0, (optimal.total_bps -
                                       acorn.final_bps) /
                                          optimal.total_bps)
                      : 0.0;
        out.policy_bps.reserve(policies.size());
        for (const WidthPolicy& policy : policies) {
          out.policy_bps.push_back(
              evaluate_policy(oracle.snapshot(), acorn.assignment, policy,
                              config.traffic)
                  .total_goodput_bps);
        }
        return out;
      });

  std::vector<double> exact_gaps;
  report.mean_policy_bps.assign(policies.size(), 0.0);
  for (const GapScenario& s : report.scenarios) {
    if (s.exact) {
      ++report.num_exact;
      exact_gaps.push_back(s.gap);
    }
    for (std::size_t p = 0; p < s.policy_bps.size(); ++p) {
      report.mean_policy_bps[p] += s.policy_bps[p];
    }
  }
  if (!report.scenarios.empty()) {
    for (double& bps : report.mean_policy_bps) {
      bps /= static_cast<double>(report.scenarios.size());
    }
  }
  if (!exact_gaps.empty()) {
    double sum = 0.0;
    for (double g : exact_gaps) sum += g;
    report.mean_gap = sum / static_cast<double>(exact_gaps.size());
    report.p95_gap = util::percentile(exact_gaps, 95.0);
    report.max_gap = *std::max_element(exact_gaps.begin(),
                                       exact_gaps.end());
  }
  return report;
}

std::string format_gap_report(const GapReport& report) {
  std::ostringstream out;
  char buf[160];
  const RandomDropConfig& drop = report.config.drop;
  std::snprintf(buf, sizeof(buf),
                "dcb gap report: %d scenarios (%d APs, %d clients, "
                "%.0f m floor, %.1f AP/ha, %d channels, seed %llu)\n",
                static_cast<int>(report.scenarios.size()), drop.num_aps,
                drop.num_clients, drop.area_m, drop.aps_per_hectare(),
                drop.num_channels,
                static_cast<unsigned long long>(report.config.seed));
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  exact optimum on %d/%d scenarios\n", report.num_exact,
                static_cast<int>(report.scenarios.size()));
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  algorithm-2 gap to optimal: mean %.2f%%  p95 %.2f%%  "
                "max %.2f%%\n",
                100.0 * report.mean_gap, 100.0 * report.p95_gap,
                100.0 * report.max_gap);
  out << buf;
  const std::vector<WidthPolicy> policies =
      standard_policies(report.config.wide_probability);
  for (std::size_t p = 0; p < report.mean_policy_bps.size(); ++p) {
    std::snprintf(buf, sizeof(buf),
                  "  width policy %-10s mean total %.1f Mbit/s\n",
                  policies[p].name().c_str(),
                  report.mean_policy_bps[p] / 1e6);
    out << buf;
  }
  return out.str();
}

}  // namespace acorn::dcb
