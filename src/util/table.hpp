// Plain-text table rendering for bench output. Benches print paper tables
// and figure series as aligned columns so the harness output is directly
// comparable to the paper's rows.
#pragma once

#include <string>
#include <vector>

namespace acorn::util {

/// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 2);

  /// Render with column padding and a header separator.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace acorn::util
