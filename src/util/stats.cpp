#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acorn::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double jain_fairness(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("jain_fairness of empty set");
  double sum = 0.0;
  double sq = 0.0;
  for (double x : xs) {
    if (x < 0.0) throw std::invalid_argument("negative allocation");
    sum += x;
    sq += x * x;
  }
  if (sq == 0.0) return 1.0;  // all-zero allocation is trivially equal
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

double r_squared(std::span<const double> observed,
                 std::span<const double> predicted) {
  if (observed.size() != predicted.size() || observed.empty()) {
    throw std::invalid_argument("r_squared requires equal nonzero lengths");
  }
  const double m = mean(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ss_tot += (observed[i] - m) * (observed[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("linear_fit requires >= 2 paired samples");
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  LinearFit fit;
  fit.slope = sxx == 0.0 ? 0.0 : sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  std::vector<double> pred(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    pred[i] = fit.intercept + fit.slope * xs[i];
  }
  fit.r2 = r_squared(ys, pred);
  return fit;
}

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  if (sorted_.empty()) throw std::invalid_argument("Ecdf of empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double p) const {
  if (p <= 0.0 || p > 1.0) throw std::invalid_argument("quantile p out of range");
  const auto idx = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted_.size()))) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram needs bins > 0 and hi > lo");
  }
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_center(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

}  // namespace acorn::util
