// Unit helpers for RF quantities: decibel conversions, dBm power, bandwidth.
//
// Conventions used across the library:
//   * absolute power is carried in dBm (double), linear power in milliwatts;
//   * ratios (SNR, gains, losses) are carried in dB;
//   * bandwidth is in Hz.
#pragma once

#include <cmath>

namespace acorn::util {

/// Convert a linear power ratio to decibels. `ratio` must be > 0.
inline double lin_to_db(double ratio) { return 10.0 * std::log10(ratio); }

/// Convert decibels to a linear power ratio.
inline double db_to_lin(double db) { return std::pow(10.0, db / 10.0); }

/// Convert milliwatts to dBm. `mw` must be > 0.
inline double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

/// Convert dBm to milliwatts.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

/// Sum two powers expressed in dBm (linear-domain addition).
inline double dbm_sum(double a_dbm, double b_dbm) {
  return mw_to_dbm(dbm_to_mw(a_dbm) + dbm_to_mw(b_dbm));
}

constexpr double kMHz = 1.0e6;
constexpr double kGHz = 1.0e9;

/// Speed of light (m/s), used by free-space path-loss reference terms.
constexpr double kSpeedOfLight = 299'792'458.0;

}  // namespace acorn::util
