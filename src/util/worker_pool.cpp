#include "util/worker_pool.hpp"

namespace acorn::util {

WorkerPool::WorkerPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int slot = 1; slot < threads_; ++slot) {
    workers_.emplace_back([this, slot] { worker_loop(slot); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::run_slice(int slice, int num_tasks, int num_slices,
                           const std::function<void(int)>& fn) {
  // Contiguous slices, the same partition the allocator's ad-hoc thread
  // spawns used: slice t gets [t * chunk, min((t+1) * chunk, n)).
  const int chunk = (num_tasks + num_slices - 1) / num_slices;
  const int begin = slice * chunk;
  const int end = std::min(begin + chunk, num_tasks);
  for (int task = begin; task < end; ++task) fn(task);
}

void WorkerPool::worker_loop(int slot) {
  std::uint64_t seen = 0;
  while (true) {
    std::unique_lock<std::mutex> lock(mutex_);
    wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const int num_tasks = num_tasks_;
    const int num_slices = num_slices_;
    const std::function<void(int)>* fn = fn_;
    lock.unlock();
    std::exception_ptr error;
    if (slot < num_slices) {
      try {
        run_slice(slot, num_tasks, num_slices, *fn);
      } catch (...) {
        error = std::current_exception();
      }
    }
    lock.lock();
    if (error && !error_) error_ = error;
    if (--remaining_ == 0) {
      lock.unlock();
      done_.notify_one();
    }
  }
}

void WorkerPool::run(int num_tasks, const std::function<void(int)>& fn) {
  if (num_tasks <= 0) return;
  if (threads_ <= 1 || num_tasks == 1) {
    for (int task = 0; task < num_tasks; ++task) fn(task);
    return;
  }
  const int num_slices = std::min(threads_, num_tasks);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    num_tasks_ = num_tasks;
    num_slices_ = num_slices;
    fn_ = &fn;
    error_ = nullptr;
    remaining_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  wake_.notify_all();
  // The caller is participant 0.
  std::exception_ptr error;
  try {
    run_slice(0, num_tasks, num_slices, fn);
  } catch (...) {
    error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return remaining_ == 0; });
  if (error && !error_) error_ = error;
  const std::exception_ptr rethrow = error_;
  error_ = nullptr;
  lock.unlock();
  if (rethrow) std::rethrow_exception(rethrow);
}

PooledExecutor::PooledExecutor(int workers)
    : workers_(workers < 1 ? 1 : workers) {
  threads_.reserve(static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
  timer_thread_ = std::thread([this] { timer_loop(); });
}

PooledExecutor::~PooledExecutor() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  ready_cv_.notify_all();
  timer_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  timer_thread_.join();
}

void PooledExecutor::enqueue_locked(Task& task) {
  task.state_ = Task::State::kReady;
  ready_.push_back(&task);
  ready_cv_.notify_one();
}

void PooledExecutor::arm_timer_locked(Task& task, Clock::time_point deadline) {
  timers_.push(TimerEntry{deadline, ++task.timer_gen_, &task});
  timer_cv_.notify_one();
}

void PooledExecutor::attach(Task& task) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (task.attached_ || stop_) return;
  task.attached_ = true;
  // First pass now: it drains anything submitted before attach and arms
  // the task's timer from run_pass()'s return value.
  enqueue_locked(task);
}

void PooledExecutor::detach(Task& task) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!task.attached_) return;
  task.attached_ = false;
  ++task.timer_gen_;  // kill any armed timer entry
  if (task.state_ == Task::State::kReady) {
    std::erase(ready_, &task);
    task.state_ = Task::State::kIdle;
  }
  // A worker mid-pass finishes its pass, sees attached_ == false, parks
  // the task idle and signals; after that no worker can reach it.
  quiesce_cv_.wait(lock, [&] {
    return task.state_ == Task::State::kIdle;
  });
}

void PooledExecutor::notify(Task& task) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!task.attached_ || stop_) return;
  switch (task.state_) {
    case Task::State::kIdle:
      ++task.timer_gen_;  // supersede the armed timer, if any
      enqueue_locked(task);
      break;
    case Task::State::kRunning:
      // The pass under way may already have missed this work: run
      // another one when it returns, whatever deadline it reports.
      task.state_ = Task::State::kRunningDirty;
      break;
    case Task::State::kReady:
    case Task::State::kRunningDirty:
      break;  // a pass is already due
  }
}

void PooledExecutor::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    ready_cv_.wait(lock, [&] { return stop_ || !ready_.empty(); });
    if (stop_) return;
    Task* task = ready_.front();
    ready_.pop_front();
    task->state_ = Task::State::kRunning;
    lock.unlock();
    const Clock::time_point next = task->run_pass();
    lock.lock();
    const bool dirty = task->state_ == Task::State::kRunningDirty;
    if (!task->attached_) {
      // detach() is waiting for this pass to end.
      task->state_ = Task::State::kIdle;
      quiesce_cv_.notify_all();
    } else if (dirty || next == Clock::time_point::min()) {
      // More work (a notify raced the pass, or the pass yielded with
      // backlog left): back of the queue, fair to the other shards.
      enqueue_locked(*task);
    } else {
      task->state_ = Task::State::kIdle;
      if (next != Clock::time_point::max()) arm_timer_locked(*task, next);
    }
  }
}

void PooledExecutor::timer_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    // Dead entries (superseded by a later arm, a notify, or a detach)
    // are discarded here, lazily, instead of being dug out of the heap
    // at invalidation time.
    while (!timers_.empty() &&
           timers_.top().gen != timers_.top().task->timer_gen_) {
      timers_.pop();
    }
    if (timers_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const TimerEntry top = timers_.top();
    if (Clock::now() < top.deadline) {
      timer_cv_.wait_until(lock, top.deadline);
      continue;  // re-validate: the heap may have changed while waiting
    }
    timers_.pop();
    Task& task = *top.task;
    if (task.attached_ && task.state_ == Task::State::kIdle) {
      enqueue_locked(task);
    }
  }
}

}  // namespace acorn::util
