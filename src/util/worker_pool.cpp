#include "util/worker_pool.hpp"

namespace acorn::util {

WorkerPool::WorkerPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int slot = 1; slot < threads_; ++slot) {
    workers_.emplace_back([this, slot] { worker_loop(slot); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::run_slice(int slice, int num_tasks, int num_slices,
                           const std::function<void(int)>& fn) {
  // Contiguous slices, the same partition the allocator's ad-hoc thread
  // spawns used: slice t gets [t * chunk, min((t+1) * chunk, n)).
  const int chunk = (num_tasks + num_slices - 1) / num_slices;
  const int begin = slice * chunk;
  const int end = std::min(begin + chunk, num_tasks);
  for (int task = begin; task < end; ++task) fn(task);
}

void WorkerPool::worker_loop(int slot) {
  std::uint64_t seen = 0;
  while (true) {
    std::unique_lock<std::mutex> lock(mutex_);
    wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const int num_tasks = num_tasks_;
    const int num_slices = num_slices_;
    const std::function<void(int)>* fn = fn_;
    lock.unlock();
    std::exception_ptr error;
    if (slot < num_slices) {
      try {
        run_slice(slot, num_tasks, num_slices, *fn);
      } catch (...) {
        error = std::current_exception();
      }
    }
    lock.lock();
    if (error && !error_) error_ = error;
    if (--remaining_ == 0) {
      lock.unlock();
      done_.notify_one();
    }
  }
}

void WorkerPool::run(int num_tasks, const std::function<void(int)>& fn) {
  if (num_tasks <= 0) return;
  if (threads_ <= 1 || num_tasks == 1) {
    for (int task = 0; task < num_tasks; ++task) fn(task);
    return;
  }
  const int num_slices = std::min(threads_, num_tasks);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    num_tasks_ = num_tasks;
    num_slices_ = num_slices;
    fn_ = &fn;
    error_ = nullptr;
    remaining_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  wake_.notify_all();
  // The caller is participant 0.
  std::exception_ptr error;
  try {
    run_slice(0, num_tasks, num_slices, fn);
  } catch (...) {
    error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return remaining_ == 0; });
  if (error && !error_) error_ = error;
  const std::exception_ptr rethrow = error_;
  error_ = nullptr;
  lock.unlock();
  if (rethrow) std::rethrow_exception(rethrow);
}

}  // namespace acorn::util
