// A small persistent fork-join worker pool.
//
// The allocator's candidate scan used to construct and join a fresh
// std::vector<std::thread> for every inner iteration of every round —
// thousands of thread spawns per allocate() run once the scan itself is
// fast. WorkerPool keeps `threads - 1` workers parked on a condition
// variable for the pool's lifetime; each run() hands every participant
// (the callers's thread included) a disjoint slice of a task index
// range and blocks until all slices are done.
//
// Determinism: run() imposes no ordering of its own — tasks must write
// to disjoint output slots, exactly like the slices the allocator's scan
// already used. A pool with threads <= 1 degenerates to running every
// task inline on the caller's thread.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace acorn::util {

class WorkerPool {
 public:
  /// Spawns `threads - 1` workers (the caller's thread is the remaining
  /// participant). threads <= 1 spawns nothing.
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return threads_; }

  /// Run fn(task) for every task in [0, num_tasks), partitioned across
  /// all participants as contiguous slices; returns when every call has
  /// finished. `fn` must be safe to invoke concurrently on distinct
  /// arguments. Exceptions thrown by fn on any thread are rethrown on
  /// the caller (first one wins; the others are dropped).
  void run(int num_tasks, const std::function<void(int)>& fn);

 private:
  void worker_loop(int slot);
  void run_slice(int slice, int num_tasks, int num_slices,
                 const std::function<void(int)>& fn);

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  // One fork-join generation per run() call: workers start a generation
  // when it becomes visible and report in when their slice is finished.
  std::uint64_t generation_ = 0;
  int num_tasks_ = 0;
  int num_slices_ = 0;
  const std::function<void(int)>* fn_ = nullptr;
  int remaining_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace acorn::util
