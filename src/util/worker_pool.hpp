// A small persistent fork-join worker pool.
//
// The allocator's candidate scan used to construct and join a fresh
// std::vector<std::thread> for every inner iteration of every round —
// thousands of thread spawns per allocate() run once the scan itself is
// fast. WorkerPool keeps `threads - 1` workers parked on a condition
// variable for the pool's lifetime; each run() hands every participant
// (the callers's thread included) a disjoint slice of a task index
// range and blocks until all slices are done.
//
// Determinism: run() imposes no ordering of its own — tasks must write
// to disjoint output slots, exactly like the slices the allocator's scan
// already used. A pool with threads <= 1 degenerates to running every
// task inline on the caller's thread.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace acorn::util {

class WorkerPool {
 public:
  /// Spawns `threads - 1` workers (the caller's thread is the remaining
  /// participant). threads <= 1 spawns nothing.
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return threads_; }

  /// Run fn(task) for every task in [0, num_tasks), partitioned across
  /// all participants as contiguous slices; returns when every call has
  /// finished. `fn` must be safe to invoke concurrently on distinct
  /// arguments. Exceptions thrown by fn on any thread are rethrown on
  /// the caller (first one wins; the others are dropped).
  void run(int num_tasks, const std::function<void(int)>& fn);

 private:
  void worker_loop(int slot);
  void run_slice(int slice, int num_tasks, int num_slices,
                 const std::function<void(int)>& fn);

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  // One fork-join generation per run() call: workers start a generation
  // when it becomes visible and report in when their slice is finished.
  std::uint64_t generation_ = 0;
  int num_tasks_ = 0;
  int num_slices_ = 0;
  const std::function<void(int)>* fn_ = nullptr;
  int remaining_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

/// Cooperative N-tasks-over-M-workers executor: many long-lived tasks
/// (acornd's WLAN shards) multiplexed over a small fixed worker set,
/// instead of one dedicated thread per task.
///
/// Each task is a state machine the executor drives through
///
///   kIdle -> kReady -> kRunning -> (kRunningDirty -> kReady | kIdle)
///
/// notify() marks new work: an idle task is enqueued, a running one is
/// flagged dirty so its current pass is followed by another. A worker
/// pops a ready task and calls run_pass() with no executor lock held;
/// run_pass() returns when the task next wants the CPU — time_point::min()
/// to requeue immediately (backlog left), time_point::max() to sleep
/// until the next notify(), anything else to arm a timer. Exactly one
/// worker runs a given task at a time, and the handoff between passes is
/// synchronized through the executor mutex, so task-local state needs no
/// locking of its own (the single-writer invariant shards rely on).
///
/// Timers are central: one timer thread owns a min-heap of
/// (deadline, generation, task) entries — the "timer wheel" that replaces
/// per-shard wait_until()s — and requeues a task when its deadline
/// arrives. Every notify()/detach()/re-arm bumps the task's generation,
/// so superseded heap entries are discarded lazily when they surface
/// instead of being searched for.
class PooledExecutor {
 public:
  using Clock = std::chrono::steady_clock;

  /// One schedulable entity. Derive, implement run_pass(), attach().
  class Task {
   public:
    virtual ~Task() = default;

   private:
    friend class PooledExecutor;
    /// One scheduling pass; called by exactly one worker at a time.
    /// Returns when the task next wants to run: Clock::time_point::min()
    /// = requeue now, Clock::time_point::max() = idle until notify(),
    /// otherwise = wake at that deadline.
    virtual Clock::time_point run_pass() = 0;

    enum class State : std::uint8_t { kIdle, kReady, kRunning,
                                      kRunningDirty };
    State state_ = State::kIdle;
    bool attached_ = false;
    /// Generation of the newest timer arm; heap entries carrying an
    /// older generation are dead.
    std::uint64_t timer_gen_ = 0;
  };

  /// Spawns `workers` run_pass() workers plus the timer thread.
  explicit PooledExecutor(int workers);
  ~PooledExecutor();

  PooledExecutor(const PooledExecutor&) = delete;
  PooledExecutor& operator=(const PooledExecutor&) = delete;

  int workers() const { return workers_; }

  /// Register the task and schedule an immediate first pass (which arms
  /// the task's own timer from its return value).
  void attach(Task& task);
  /// Unregister: blocks until no worker is inside the task's run_pass(),
  /// cancels its timer, drops it from the ready queue. After detach the
  /// task is never run again (notify() becomes a no-op) until
  /// re-attached; safe to destroy or to drain inline.
  void detach(Task& task);
  /// New work arrived for the task.
  void notify(Task& task);

 private:
  struct TimerEntry {
    Clock::time_point deadline;
    std::uint64_t gen = 0;
    Task* task = nullptr;
    bool operator>(const TimerEntry& o) const {
      return deadline > o.deadline;
    }
  };

  void worker_loop();
  void timer_loop();
  void enqueue_locked(Task& task);
  void arm_timer_locked(Task& task, Clock::time_point deadline);

  const int workers_;
  std::mutex mutex_;
  std::condition_variable ready_cv_;   // workers wait here
  std::condition_variable timer_cv_;   // timer thread waits here
  std::condition_variable quiesce_cv_; // detach() waits for kRunning*
  std::deque<Task*> ready_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timers_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
  std::thread timer_thread_;
};

}  // namespace acorn::util
