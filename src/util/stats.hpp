// Small statistics toolkit used by the benches and the trace analysis:
// summary statistics, percentiles, empirical CDFs, and the coefficient of
// determination (R^2) used in the paper's Fig. 3(a) theory-fit check.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace acorn::util {

/// Arithmetic mean. Returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample variance (n-1 denominator). Returns 0 for fewer than 2 samples.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile(std::span<const double> xs, double p);

double median(std::span<const double> xs);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1]; 1 means
/// perfectly equal allocation. Used for the paper's throughput-vs-
/// fairness tradeoff discussion (§4).
double jain_fairness(std::span<const double> xs);

/// Coefficient of determination of `predicted` against `observed`:
/// R^2 = 1 - SS_res / SS_tot. Spans must have equal, nonzero length.
double r_squared(std::span<const double> observed,
                 std::span<const double> predicted);

/// Ordinary least squares fit y = a + b*x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Empirical CDF over a sample. Evaluation is O(log n).
class Ecdf {
 public:
  explicit Ecdf(std::vector<double> samples);

  /// P[X <= x].
  double at(double x) const;
  /// Smallest sample value q with P[X <= q] >= p, p in (0, 1].
  double quantile(double p) const;
  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Fixed-bin histogram over [lo, hi); values outside are clamped to the
/// edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_center(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace acorn::util
