#include "util/rng.hpp"

#include <cmath>

namespace acorn::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into the double mantissa -> uniform on [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection-free modulo is fine here: span is tiny relative to 2^64 in all
  // library call sites, so bias is negligible for simulation purposes.
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 nudged away from zero to keep log() finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() {
  Rng child(0);
  SplitMix64 sm(next_u64());
  for (auto& word : child.s_) word = sm.next();
  return child;
}

}  // namespace acorn::util
