#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace acorn::util {

namespace detail {

ZigguratNormal::ZigguratNormal() {
  ys[1] = std::exp(-0.5 * kR * kR);
  xs[1] = kR;
  xs[0] = kV / ys[1];
  ys[0] = 0.0;
  for (std::size_t i = 2; i <= 128; ++i) {
    ys[i] = ys[i - 1] + kV / xs[i - 1];
    xs[i] = ys[i] >= 1.0 ? 0.0 : std::sqrt(-2.0 * std::log(ys[i]));
  }
  for (std::size_t i = 0; i < 128; ++i) {
    layers[i] = Layer{xs[i] * 0x1.0p-53, xs[i + 1]};
  }
}

const ZigguratNormal kZigguratNormal{};

}  // namespace detail

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

double Rng::uniform() {
  // 53 random bits into the double mantissa -> uniform on [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection-free modulo is fine here: span is tiny relative to 2^64 in all
  // library call sites, so bias is negligible for simulation purposes.
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 nudged away from zero to keep log() finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::normal_fast_slow(std::uint64_t bits) {
  const detail::ZigguratNormal& t = detail::kZigguratNormal;
  for (;;) {
    const std::size_t idx = bits & 127u;
    const double sign = (bits & 128u) ? -1.0 : 1.0;
    const double x = static_cast<double>(bits >> 11) * t.layers[idx].scale;
    if (x < t.xs[idx + 1]) return sign * x;  // strictly inside the layer
    if (idx == 0) {
      // Tail (x > r): Marsaglia's exact tail sampler.
      for (;;) {
        double u1 = uniform();
        if (u1 < 1e-300) u1 = 1e-300;
        double u2 = uniform();
        if (u2 < 1e-300) u2 = 1e-300;
        const double xt = -std::log(u1) / detail::ZigguratNormal::kR;
        const double yt = -std::log(u2);
        if (2.0 * yt >= xt * xt) {
          return sign * (detail::ZigguratNormal::kR + xt);
        }
      }
    }
    const double y = t.ys[idx] + uniform() * (t.ys[idx + 1] - t.ys[idx]);
    if (y < std::exp(-0.5 * x * x)) return sign * x;
    bits = next_u64();
  }
}

double Rng::exponential(double rate) {
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

void Rng::fill_bits(std::span<std::uint8_t> bits) {
  std::size_t i = 0;
  const std::size_t n = bits.size();
  while (i < n) {
    std::uint64_t word = next_u64();
    const std::size_t take = std::min<std::size_t>(64, n - i);
    for (std::size_t b = 0; b < take; ++b) {
      bits[i + b] = static_cast<std::uint8_t>((word >> b) & 1u);
    }
    i += take;
  }
}

void Rng::fill_normals(std::span<double> out) {
  const detail::ZigguratNormal& t = detail::kZigguratNormal;
  constexpr std::size_t kBatch = 64;
  std::uint64_t raw[kBatch];
  double* o = out.data();
  std::size_t remaining = out.size();
  // Keep the xoshiro state in locals across each batch so the generator
  // loop runs register-to-register; spill back only around the rare
  // slow-path call (which draws more words through the member state).
  std::uint64_t s0 = s_[0];
  std::uint64_t s1 = s_[1];
  std::uint64_t s2 = s_[2];
  std::uint64_t s3 = s_[3];
  while (remaining > 0) {
    const std::size_t take = std::min(kBatch, remaining);
    for (std::size_t j = 0; j < take; ++j) {
      raw[j] = rotl(s1 * 5, 7) * 9;
      const std::uint64_t tt = s1 << 17;
      s2 ^= s0;
      s3 ^= s1;
      s1 ^= s2;
      s0 ^= s3;
      s2 ^= tt;
      s3 = rotl(s3, 45);
    }
    for (std::size_t j = 0; j < take; ++j) {
      const std::uint64_t bits = raw[j];
      const detail::ZigguratNormal::Layer layer = t.layers[bits & 127u];
      const double x = static_cast<double>(bits >> 11) * layer.scale;
      if (x < layer.edge) [[likely]] {
        o[j] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(x) |
                                     ((bits & 128u) << 56));
      } else {
        s_ = {s0, s1, s2, s3};
        o[j] = normal_fast_slow(bits);
        s0 = s_[0];
        s1 = s_[1];
        s2 = s_[2];
        s3 = s_[3];
      }
    }
    o += take;
    remaining -= take;
  }
  s_ = {s0, s1, s2, s3};
}

Rng Rng::split() {
  Rng child(0);
  SplitMix64 sm(next_u64());
  for (auto& word : child.s_) word = sm.next();
  return child;
}

void Rng::jump() {
  // Published xoshiro256** jump polynomial: advances 2^128 steps.
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      next_u64();
    }
  }
  s_ = acc;
  has_cached_normal_ = false;
}

Rng Rng::derive_stream(std::uint64_t seed, std::uint64_t index) {
  // Hash seed and index independently before combining so that
  // consecutive indices land in unrelated SplitMix64 sequences (seeding
  // with seed + index directly would hand streams i and i+1 three
  // overlapping state words).
  SplitMix64 seed_hash(seed);
  SplitMix64 index_hash(index);
  SplitMix64 sm(seed_hash.next() ^ index_hash.next());
  Rng r(0);
  for (auto& word : r.s_) word = sm.next();
  return r;
}

}  // namespace acorn::util
