#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace acorn::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable needs columns");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total >= 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace acorn::util
