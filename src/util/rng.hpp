// Deterministic random number generation for simulations and benches.
//
// Every stochastic component in the library takes an explicit Rng so that
// all experiments are reproducible from a printed seed. The generator is
// xoshiro256** seeded through SplitMix64, both public-domain algorithms by
// Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>

namespace acorn::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library-wide PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedu);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next_u64(); }
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal (Box-Muller with caching).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);
  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Split off an independent child generator (for per-component streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace acorn::util
