// Deterministic random number generation for simulations and benches.
//
// Every stochastic component in the library takes an explicit Rng so that
// all experiments are reproducible from a printed seed. The generator is
// xoshiro256** seeded through SplitMix64, both public-domain algorithms by
// Blackman & Vigna.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>

namespace acorn::util {

namespace detail {

/// 128-layer ziggurat tables for the standard normal density
/// f(x) = exp(-x^2/2) (Marsaglia & Tsang 2000). Layer i covers the
/// vertical band [ys[i], ys[i+1]]; xs[i] is its right edge except
/// xs[0], which is the tail layer's pseudo-width v/f(r). Exposed here
/// (built once at startup in rng.cpp) so the normal_fast() fast path
/// inlines into the AWGN loop.
struct ZigguratNormal {
  static constexpr double kR = 3.442619855899;       // base-layer x
  static constexpr double kV = 9.91256303526217e-3;  // area per layer
  std::array<double, 129> xs{};
  std::array<double, 129> ys{};
  /// Per-layer hot-path constants packed into one load: `scale` is
  /// xs[i] * 2^-53 (exact — power-of-two factor), so the 53 mantissa
  /// bits map to a magnitude with a single multiply; `edge` is xs[i+1],
  /// the strict-accept threshold.
  struct Layer {
    double scale;
    double edge;
  };
  std::array<Layer, 128> layers{};
  ZigguratNormal();
};

extern const ZigguratNormal kZigguratNormal;

}  // namespace detail

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library-wide PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedu);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next_u64(); }
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal (Box-Muller with caching).
  double normal();
  /// Standard normal via the 128-layer ziggurat: same distribution as
  /// normal() but ~5x faster, used by the sample-rate AWGN path. Draws a
  /// different number of raw u64s than normal(), so the two are not
  /// stream-compatible — switching one call site between them changes
  /// every draw after it. One u64 per attempt: bits 0-6 pick the layer,
  /// bit 7 the sign, bits 11-63 the 53-bit uniform magnitude; ~98% of
  /// draws take the inlined path below.
  double normal_fast() {
    const std::uint64_t bits = next_u64();
    const detail::ZigguratNormal::Layer layer =
        detail::kZigguratNormal.layers[bits & 127u];
    const double x = static_cast<double>(bits >> 11) * layer.scale;
    if (x < layer.edge) [[likely]] {
      // Branchless sign: OR bit 7 into the sign bit (x >= 0 here). The
      // sign bit is a coin flip, so a conditional negate mispredicts
      // half the time.
      return std::bit_cast<double>(std::bit_cast<std::uint64_t>(x) |
                                   ((bits & 128u) << 56));
    }
    return normal_fast_slow(bits);
  }
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);
  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Fill each byte with an independent fair bit (0 or 1), drawing 64
  /// bits per underlying u64 instead of one.
  void fill_bits(std::span<std::uint8_t> bits);

  /// Fill `out` with standard normals (same ziggurat as normal_fast).
  /// Batching decouples the raw-u64 generation from the table lookups,
  /// so consecutive samples pipeline instead of serializing on the
  /// generator state — about 2x normal_fast in a hot loop. Draws raw
  /// words in a different order than repeated normal_fast calls when a
  /// rejection occurs, so the two are not stream-compatible.
  void fill_normals(std::span<double> out);

  /// Split off an independent child generator (for per-component streams).
  Rng split();

  /// Advance 2^128 steps (the published xoshiro256** jump polynomial):
  /// partitions one seed's sequence into non-overlapping blocks.
  void jump();

  /// Deterministic independent stream for (seed, index): the generator a
  /// parallel packet driver hands to worker `index`. Pure function of its
  /// arguments — the same pair always yields the same stream, regardless
  /// of thread count or call order.
  static Rng derive_stream(std::uint64_t seed, std::uint64_t index);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  /// Ziggurat edge cases: the wedge accept/reject and the exact tail
  /// sampler. `bits` is the rejected attempt's raw draw.
  double normal_fast_slow(std::uint64_t bits);

  std::array<std::uint64_t, 4> s_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace acorn::util
