#include "net/channels.hpp"

#include <stdexcept>

namespace acorn::net {

Channel Channel::basic(int idx) {
  if (idx < 0) throw std::invalid_argument("negative channel index");
  return Channel(phy::ChannelWidth::k20MHz, idx);
}

Channel Channel::bonded(int pair) {
  if (pair < 0) throw std::invalid_argument("negative bond index");
  return Channel(phy::ChannelWidth::k40MHz, 2 * pair);
}

std::vector<int> Channel::occupied() const {
  if (is_bonded()) return {first_, first_ + 1};
  return {first_};
}

bool Channel::conflicts(const Channel& other) const {
  for (int a : occupied()) {
    for (int b : other.occupied()) {
      if (a == b) return true;
    }
  }
  return false;
}

double Channel::overlap_fraction(const Channel& other) const {
  int shared = 0;
  for (int a : occupied()) {
    for (int b : other.occupied()) {
      if (a == b) ++shared;
    }
  }
  return static_cast<double>(shared) /
         static_cast<double>(occupied().size());
}

std::string Channel::to_string() const {
  if (is_bonded()) {
    return "ch" + std::to_string(first_) + "+" + std::to_string(first_ + 1) +
           " (40MHz)";
  }
  return "ch" + std::to_string(first_) + " (20MHz)";
}

ChannelPlan::ChannelPlan(int num_basic) : num_basic_(num_basic) {
  if (num_basic < 1) throw std::invalid_argument("need >= 1 basic channel");
}

std::vector<Channel> ChannelPlan::basic_channels() const {
  std::vector<Channel> out;
  out.reserve(static_cast<std::size_t>(num_basic_));
  for (int i = 0; i < num_basic_; ++i) out.push_back(Channel::basic(i));
  return out;
}

std::vector<Channel> ChannelPlan::bonded_channels() const {
  std::vector<Channel> out;
  out.reserve(static_cast<std::size_t>(num_bonded()));
  for (int i = 0; i < num_bonded(); ++i) out.push_back(Channel::bonded(i));
  return out;
}

std::vector<Channel> ChannelPlan::all_channels() const {
  std::vector<Channel> out = basic_channels();
  const std::vector<Channel> bonds = bonded_channels();
  out.insert(out.end(), bonds.begin(), bonds.end());
  return out;
}

}  // namespace acorn::net
