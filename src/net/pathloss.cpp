#include "net/pathloss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acorn::net {

double PathLossModel::median_loss_db(double dist_m) const {
  const double d = std::max(dist_m, 1.0);  // clamp inside reference distance
  return ref_loss_db + 10.0 * exponent * std::log10(d);
}

LinkBudget::LinkBudget(const Topology& topo, const PathLossModel& model,
                       util::Rng& rng)
    : n_aps_(topo.num_aps()), n_clients_(topo.num_clients()) {
  ap_client_.resize(static_cast<std::size_t>(n_aps_) *
                    static_cast<std::size_t>(std::max(n_clients_, 1)));
  ap_ap_.resize(static_cast<std::size_t>(n_aps_) *
                static_cast<std::size_t>(n_aps_));
  for (int a = 0; a < n_aps_; ++a) {
    for (int c = 0; c < n_clients_; ++c) {
      const double dist =
          distance(topo.ap(a).position, topo.client(c).position);
      const double shadow = model.shadowing_sigma_db > 0.0
                                ? rng.normal(0.0, model.shadowing_sigma_db)
                                : 0.0;
      ap_client_[static_cast<std::size_t>(a * n_clients_ + c)] =
          model.median_loss_db(dist) + shadow;
    }
  }
  for (int a = 0; a < n_aps_; ++a) {
    for (int b = a; b < n_aps_; ++b) {
      double loss = 0.0;
      if (a != b) {
        const double dist = distance(topo.ap(a).position, topo.ap(b).position);
        const double shadow = model.shadowing_sigma_db > 0.0
                                  ? rng.normal(0.0, model.shadowing_sigma_db)
                                  : 0.0;
        loss = model.median_loss_db(dist) + shadow;
      }
      ap_ap_[static_cast<std::size_t>(a * n_aps_ + b)] = loss;
      ap_ap_[static_cast<std::size_t>(b * n_aps_ + a)] = loss;
    }
  }
}

double LinkBudget::ap_client_loss_db(int ap, int client) const {
  if (ap < 0 || ap >= n_aps_ || client < 0 || client >= n_clients_) {
    throw std::out_of_range("LinkBudget ap/client id");
  }
  return ap_client_[static_cast<std::size_t>(ap * n_clients_ + client)];
}

double LinkBudget::ap_ap_loss_db(int ap_a, int ap_b) const {
  if (ap_a < 0 || ap_a >= n_aps_ || ap_b < 0 || ap_b >= n_aps_) {
    throw std::out_of_range("LinkBudget ap id");
  }
  return ap_ap_[static_cast<std::size_t>(ap_a * n_aps_ + ap_b)];
}

double LinkBudget::rx_at_client_dbm(const Topology& topo, int ap,
                                    int client) const {
  return topo.ap(ap).tx_dbm - ap_client_loss_db(ap, client);
}

double LinkBudget::rx_at_ap_dbm(const Topology& topo, int ap_a,
                                int ap_b) const {
  return topo.ap(ap_a).tx_dbm - ap_ap_loss_db(ap_a, ap_b);
}

void LinkBudget::set_ap_client_loss_db(int ap, int client, double loss_db) {
  if (ap < 0 || ap >= n_aps_ || client < 0 || client >= n_clients_) {
    throw std::out_of_range("LinkBudget ap/client id");
  }
  ap_client_[static_cast<std::size_t>(ap * n_clients_ + client)] = loss_db;
}

void LinkBudget::set_ap_ap_loss_db(int ap_a, int ap_b, double loss_db) {
  if (ap_a < 0 || ap_a >= n_aps_ || ap_b < 0 || ap_b >= n_aps_ ||
      ap_a == ap_b) {
    throw std::out_of_range("LinkBudget ap id");
  }
  ap_ap_[static_cast<std::size_t>(ap_a * n_aps_ + ap_b)] = loss_db;
  ap_ap_[static_cast<std::size_t>(ap_b * n_aps_ + ap_a)] = loss_db;
}

}  // namespace acorn::net
