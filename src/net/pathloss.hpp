// Large-scale propagation: log-distance path loss with optional
// per-link log-normal shadowing, frozen at construction so that a
// deployment's link budget is stable across the simulation (the paper's
// Fig. 8 shows enterprise 802.11n links are slowly varying).
#pragma once

#include <vector>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace acorn::net {

struct PathLossModel {
  /// Reference loss at 1 m. Free space at 5.2 GHz is ~46.8 dB.
  double ref_loss_db = 46.8;
  /// Path-loss exponent; 3.5 is typical for obstructed indoor.
  double exponent = 3.5;
  /// Per-link log-normal shadowing std-dev (dB); drawn once per link.
  double shadowing_sigma_db = 0.0;

  /// Deterministic (median) loss at `dist_m` meters.
  double median_loss_db(double dist_m) const;
};

/// Pairwise link budget for a fixed topology: path losses between every
/// AP-client and AP-AP pair, including the frozen shadowing draw.
class LinkBudget {
 public:
  LinkBudget(const Topology& topo, const PathLossModel& model,
             util::Rng& rng);

  double ap_client_loss_db(int ap, int client) const;
  double ap_ap_loss_db(int ap_a, int ap_b) const;

  /// Received power at a client from an AP (its configured Tx power).
  double rx_at_client_dbm(const Topology& topo, int ap, int client) const;
  /// Received power at AP b from AP a.
  double rx_at_ap_dbm(const Topology& topo, int ap_a, int ap_b) const;

  /// Override a specific AP-client loss (used by tests and by benches
  /// that script the paper's fixed topologies with known link classes).
  void set_ap_client_loss_db(int ap, int client, double loss_db);
  void set_ap_ap_loss_db(int ap_a, int ap_b, double loss_db);

 private:
  int n_aps_;
  int n_clients_;
  std::vector<double> ap_client_;  // [ap * n_clients + client]
  std::vector<double> ap_ap_;      // [a * n_aps + b], symmetric
};

}  // namespace acorn::net
