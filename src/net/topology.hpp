// Physical deployment: AP and client placement on a 2-D floor plan.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace acorn::net {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(Point a, Point b);

struct ApNode {
  int id = 0;
  Point position;
  /// Transmit power; the paper runs its testbed at the maximum power.
  double tx_dbm = 15.0;
};

struct ClientNode {
  int id = 0;
  Point position;
};

class Topology {
 public:
  /// Add an AP; returns its id (dense, starting at 0).
  int add_ap(Point position, double tx_dbm = 15.0);
  /// Add a client; returns its id (dense, starting at 0).
  int add_client(Point position);

  int num_aps() const { return static_cast<int>(aps_.size()); }
  int num_clients() const { return static_cast<int>(clients_.size()); }
  const ApNode& ap(int id) const;
  const ClientNode& client(int id) const;
  ApNode& ap(int id);
  ClientNode& client(int id);
  const std::vector<ApNode>& aps() const { return aps_; }
  const std::vector<ClientNode>& clients() const { return clients_; }

  /// Uniform-random deployment in a square of side `area_m`: APs first
  /// (optionally on a jittered grid so cells tile the floor), then
  /// clients uniformly.
  static Topology random(int n_aps, int n_clients, double area_m,
                         util::Rng& rng, bool grid_aps = true);

 private:
  std::vector<ApNode> aps_;
  std::vector<ClientNode> clients_;
};

}  // namespace acorn::net
