#include "net/interference.hpp"

#include <algorithm>
#include <stdexcept>

namespace acorn::net {

InterferenceGraph::InterferenceGraph(const Topology& topo,
                                     const LinkBudget& budget,
                                     const Association& assoc,
                                     const InterferenceConfig& config)
    : n_aps_(topo.num_aps()),
      adj_(static_cast<std::size_t>(n_aps_) * static_cast<std::size_t>(n_aps_),
           0) {
  if (static_cast<int>(assoc.size()) != topo.num_clients()) {
    throw std::invalid_argument("association size != client count");
  }
  auto mark = [&](int a, int b) {
    adj_[static_cast<std::size_t>(a * n_aps_ + b)] = 1;
    adj_[static_cast<std::size_t>(b * n_aps_ + a)] = 1;
  };
  for (int a = 0; a < n_aps_; ++a) {
    for (int b = a + 1; b < n_aps_; ++b) {
      // Direct AP-AP competition.
      if (budget.rx_at_ap_dbm(topo, a, b) >= config.carrier_sense_dbm ||
          budget.rx_at_ap_dbm(topo, b, a) >= config.carrier_sense_dbm) {
        mark(a, b);
        continue;
      }
      // AP competing with the other AP's clients (footnote 5).
      bool edge = false;
      for (int c = 0; c < topo.num_clients() && !edge; ++c) {
        const int owner = assoc[static_cast<std::size_t>(c)];
        if (owner == b &&
            budget.rx_at_client_dbm(topo, a, c) >= config.carrier_sense_dbm) {
          edge = true;
        }
        if (owner == a &&
            budget.rx_at_client_dbm(topo, b, c) >= config.carrier_sense_dbm) {
          edge = true;
        }
      }
      if (edge) mark(a, b);
    }
  }
}

bool InterferenceGraph::adjacent(int ap_a, int ap_b) const {
  if (ap_a < 0 || ap_a >= n_aps_ || ap_b < 0 || ap_b >= n_aps_) {
    throw std::out_of_range("InterferenceGraph ap id");
  }
  return adj_[static_cast<std::size_t>(ap_a * n_aps_ + ap_b)] != 0;
}

std::vector<int> InterferenceGraph::neighbors(int ap) const {
  std::vector<int> out;
  for (int b = 0; b < n_aps_; ++b) {
    if (b != ap && adjacent(ap, b)) out.push_back(b);
  }
  return out;
}

int InterferenceGraph::degree(int ap) const {
  return static_cast<int>(neighbors(ap).size());
}

int InterferenceGraph::max_degree() const {
  int best = 0;
  for (int a = 0; a < n_aps_; ++a) best = std::max(best, degree(a));
  return best;
}

std::vector<int> contenders(const InterferenceGraph& graph,
                            const ChannelAssignment& assignment, int ap) {
  if (static_cast<int>(assignment.size()) != graph.num_aps()) {
    throw std::invalid_argument("assignment size != AP count");
  }
  std::vector<int> out;
  for (int b : graph.neighbors(ap)) {
    if (assignment[static_cast<std::size_t>(ap)].conflicts(
            assignment[static_cast<std::size_t>(b)])) {
      out.push_back(b);
    }
  }
  return out;
}

double medium_access_share(const InterferenceGraph& graph,
                           const ChannelAssignment& assignment, int ap) {
  return 1.0 /
         (static_cast<double>(contenders(graph, assignment, ap).size()) + 1.0);
}

double medium_access_share_weighted(const InterferenceGraph& graph,
                                    const ChannelAssignment& assignment,
                                    int ap) {
  if (static_cast<int>(assignment.size()) != graph.num_aps()) {
    throw std::invalid_argument("assignment size != AP count");
  }
  double load = 1.0;  // this AP's own demand
  const Channel& own = assignment[static_cast<std::size_t>(ap)];
  for (int b : graph.neighbors(ap)) {
    load += own.overlap_fraction(assignment[static_cast<std::size_t>(b)]);
  }
  return 1.0 / load;
}

}  // namespace acorn::net
