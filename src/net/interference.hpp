// The interference graph of the paper's §4.2 (and footnote 5): vertices
// are APs; an edge joins APs i and j when they directly compete for the
// medium, or when either competes with at least one of the other AP's
// clients. "Competes" means received power above the carrier-sense
// threshold. Channel assignment then restricts contention to spectrally
// overlapping colors.
#pragma once

#include <vector>

#include "net/channels.hpp"
#include "net/pathloss.hpp"
#include "net/topology.hpp"

namespace acorn::net {

/// client id -> AP id, or kUnassociated.
using Association = std::vector<int>;
inline constexpr int kUnassociated = -1;

struct InterferenceConfig {
  /// Carrier-sense threshold: a transmitter heard above this power level
  /// forces deferral (typical 802.11 value around -82 dBm).
  double carrier_sense_dbm = -82.0;
};

class InterferenceGraph {
 public:
  InterferenceGraph(const Topology& topo, const LinkBudget& budget,
                    const Association& assoc,
                    const InterferenceConfig& config = {});

  int num_aps() const { return n_aps_; }
  bool adjacent(int ap_a, int ap_b) const;
  std::vector<int> neighbors(int ap) const;
  int degree(int ap) const;
  /// The maximum node degree Delta used in the paper's O(1/(Delta+1))
  /// approximation bound.
  int max_degree() const;

 private:
  int n_aps_;
  std::vector<char> adj_;  // row-major adjacency
};

/// Per-AP channel assignment: index = AP id.
using ChannelAssignment = std::vector<Channel>;

/// The set con_a of APs that contend with `ap` under assignment F:
/// interference-graph neighbors whose channel spectrally overlaps.
std::vector<int> contenders(const InterferenceGraph& graph,
                            const ChannelAssignment& assignment, int ap);

/// The paper's channel-access share estimate M_a = 1 / (|con_a| + 1).
double medium_access_share(const InterferenceGraph& graph,
                           const ChannelAssignment& assignment, int ap);

/// Overlap-weighted variant: a contender that overlaps only half of this
/// AP's band (a 20 MHz neighbor inside a 40 MHz bond) costs half a
/// contention slot: M_a = 1 / (1 + sum_b overlap_fraction). Reduces to
/// `medium_access_share` when every overlap is total. Used by the
/// contention-model ablation.
double medium_access_share_weighted(const InterferenceGraph& graph,
                                    const ChannelAssignment& assignment,
                                    int ap);

}  // namespace acorn::net
