#include "net/topology.hpp"

#include <cmath>
#include <stdexcept>

namespace acorn::net {

double distance(Point a, Point b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

int Topology::add_ap(Point position, double tx_dbm) {
  const int id = num_aps();
  aps_.push_back(ApNode{id, position, tx_dbm});
  return id;
}

int Topology::add_client(Point position) {
  const int id = num_clients();
  clients_.push_back(ClientNode{id, position});
  return id;
}

const ApNode& Topology::ap(int id) const {
  return aps_.at(static_cast<std::size_t>(id));
}

const ClientNode& Topology::client(int id) const {
  return clients_.at(static_cast<std::size_t>(id));
}

ApNode& Topology::ap(int id) { return aps_.at(static_cast<std::size_t>(id)); }

ClientNode& Topology::client(int id) {
  return clients_.at(static_cast<std::size_t>(id));
}

Topology Topology::random(int n_aps, int n_clients, double area_m,
                          util::Rng& rng, bool grid_aps) {
  if (n_aps < 1 || n_clients < 0 || area_m <= 0.0) {
    throw std::invalid_argument("bad topology parameters");
  }
  Topology topo;
  if (grid_aps) {
    const int cols = static_cast<int>(std::ceil(std::sqrt(n_aps)));
    const int rows = (n_aps + cols - 1) / cols;
    const double dx = area_m / cols;
    const double dy = area_m / rows;
    for (int i = 0; i < n_aps; ++i) {
      const int r = i / cols;
      const int c = i % cols;
      // Cell center plus up to 20% jitter, so deployments are not
      // perfectly symmetric.
      const double x = (c + 0.5) * dx + rng.uniform(-0.2, 0.2) * dx;
      const double y = (r + 0.5) * dy + rng.uniform(-0.2, 0.2) * dy;
      topo.add_ap(Point{x, y});
    }
  } else {
    for (int i = 0; i < n_aps; ++i) {
      topo.add_ap(Point{rng.uniform(0.0, area_m), rng.uniform(0.0, area_m)});
    }
  }
  for (int i = 0; i < n_clients; ++i) {
    topo.add_client(Point{rng.uniform(0.0, area_m), rng.uniform(0.0, area_m)});
  }
  return topo;
}

}  // namespace acorn::net
