// The channel vocabulary for 802.11n auto-configuration.
//
// A "color" in the paper's graph-coloring formulation is either a basic
// 20 MHz channel c_i or a composite 40 MHz channel {c_i, c_j} built from
// two adjacent basic channels. Basic colors c_i and c_j do not conflict
// with each other, but each conflicts with the composite {c_i, c_j}
// (paper §4.2). A Channel is therefore represented by the set of basic
// 20 MHz channel indices it occupies.
#pragma once

#include <string>
#include <vector>

#include "phy/mcs.hpp"

namespace acorn::net {

class Channel {
 public:
  /// Basic 20 MHz channel with index `idx` >= 0.
  static Channel basic(int idx);
  /// Composite 40 MHz channel occupying basic channels (2*pair, 2*pair+1)
  /// — 802.11n bonds a primary with its adjacent secondary.
  static Channel bonded(int pair);

  phy::ChannelWidth width() const { return width_; }
  bool is_bonded() const { return width_ == phy::ChannelWidth::k40MHz; }

  /// Lowest-index 20 MHz channel occupied.
  int primary() const { return first_; }
  /// Occupied basic channel indices (one or two).
  std::vector<int> occupied() const;

  /// Spectral-overlap conflict: true when the occupied sets intersect.
  bool conflicts(const Channel& other) const;

  /// Fraction of this channel's bandwidth overlapped by `other` (0, 0.5
  /// or 1).
  double overlap_fraction(const Channel& other) const;

  std::string to_string() const;

  friend bool operator==(const Channel& a, const Channel& b) {
    return a.width_ == b.width_ && a.first_ == b.first_;
  }
  friend bool operator!=(const Channel& a, const Channel& b) {
    return !(a == b);
  }

 private:
  Channel(phy::ChannelWidth width, int first) : width_(width), first_(first) {}
  phy::ChannelWidth width_;
  int first_;  // lowest occupied basic index
};

/// The set of colors available to the allocator: `num_basic` 20 MHz
/// channels (the paper uses the twelve 5 GHz channels) plus the
/// floor(num_basic/2) valid 40 MHz bonds.
class ChannelPlan {
 public:
  explicit ChannelPlan(int num_basic = 12);

  int num_basic() const { return num_basic_; }
  int num_bonded() const { return num_basic_ / 2; }

  std::vector<Channel> basic_channels() const;
  std::vector<Channel> bonded_channels() const;
  /// All colors: basic first, then composite.
  std::vector<Channel> all_channels() const;

 private:
  int num_basic_;
};

}  // namespace acorn::net
