#include "trace/load_gen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "sim/arrivals.hpp"
#include "util/rng.hpp"

namespace acorn::trace {

std::vector<LoadEvent> generate_fleet_load(const FleetLoadConfig& config) {
  if (config.num_wlans == 0 || config.clients_per_wlan < 1 ||
      config.aps_per_wlan < 1 || config.horizon_s <= 0.0 ||
      config.arrivals_per_s <= 0.0 || config.duration_scale <= 0.0) {
    throw std::invalid_argument("bad fleet load config");
  }
  std::vector<LoadEvent> out;
  for (std::uint32_t w = 0; w < config.num_wlans; ++w) {
    // One independent stream per WLAN: WLAN k's schedule does not
    // depend on how many other WLANs the fleet holds.
    util::Rng rng = util::Rng::derive_stream(config.seed, w);
    const std::uint32_t wlan_id = config.first_wlan_id + w;

    sim::ArrivalConfig arrivals;
    arrivals.rate_per_s = config.arrivals_per_s;
    arrivals.horizon_s = config.horizon_s;
    arrivals.num_client_slots = config.clients_per_wlan;
    const std::vector<sim::ArrivalEvent> sessions = sim::generate_arrivals(
        arrivals,
        [&config](util::Rng& r) {
          return config.duration_scale * config.durations.sample(r);
        },
        rng);

    std::vector<LoadEvent> local;
    for (const sim::ArrivalEvent& s : sessions) {
      const auto client = static_cast<std::uint32_t>(s.client_slot);
      local.push_back(LoadEvent{s.arrive_s, LoadEventKind::kJoin, wlan_id,
                                client, 0, 0.0});
      // Measurement churn while the session is live: Poisson-spaced SNR
      // drift against a random AP (loss in the band the paper's link
      // classes span) and offered-load hints.
      const double end = std::min(s.depart_s, config.horizon_s);
      if (config.snr_per_session_s > 0.0) {
        double t = s.arrive_s + rng.exponential(config.snr_per_session_s);
        while (t < end) {
          const auto ap = static_cast<std::uint32_t>(
              rng.uniform_int(0, config.aps_per_wlan - 1));
          local.push_back(LoadEvent{t, LoadEventKind::kSnr, wlan_id, client,
                                    ap, rng.uniform(70.0, 115.0)});
          t += rng.exponential(config.snr_per_session_s);
        }
      }
      if (config.load_per_session_s > 0.0) {
        double t = s.arrive_s + rng.exponential(config.load_per_session_s);
        while (t < end) {
          local.push_back(LoadEvent{t, LoadEventKind::kLoad, wlan_id,
                                    client, 0, rng.uniform()});
          t += rng.exponential(config.load_per_session_s);
        }
      }
      if (s.depart_s < config.horizon_s) {
        local.push_back(LoadEvent{s.depart_s, LoadEventKind::kLeave, wlan_id,
                                  client, 0, 0.0});
      }
    }
    // Per-WLAN time order first (sessions overlap, so their SNR/load
    // updates interleave); stable, so equal times keep generation order.
    std::stable_sort(local.begin(), local.end(),
                     [](const LoadEvent& a, const LoadEvent& b) {
                       return a.t_s < b.t_s;
                     });
    out.insert(out.end(), local.begin(), local.end());
  }
  // Cross-WLAN merge: stable by time, ties keep ascending WLAN order.
  std::stable_sort(out.begin(), out.end(),
                   [](const LoadEvent& a, const LoadEvent& b) {
                     return a.t_s < b.t_s;
                   });
  return out;
}

std::string synthetic_floor(int num_aps, int num_clients,
                            std::uint64_t seed) {
  if (num_aps < 1 || num_clients < 0) {
    throw std::invalid_argument("bad synthetic floor shape");
  }
  util::Rng rng = util::Rng::derive_stream(seed, 0xf100eull);
  const int cols =
      static_cast<int>(std::ceil(std::sqrt(static_cast<double>(num_aps))));
  const int rows = (num_aps + cols - 1) / cols;
  const double spacing = 40.0;

  std::string text;
  char line[96];
  std::snprintf(line, sizeof(line),
                "# synthetic floor: %d APs, %d clients\n", num_aps,
                num_clients);
  text += line;
  text += "pathloss exponent 3.5\npathloss shadowing 4\nchannels 12\n";
  std::snprintf(line, sizeof(line), "seed %llu\n",
                static_cast<unsigned long long>(seed));
  text += line;
  for (int ap = 0; ap < num_aps; ++ap) {
    std::snprintf(line, sizeof(line), "ap %.1f %.1f\n",
                  10.0 + spacing * (ap % cols),
                  10.0 + spacing * (ap / cols));
    text += line;
  }
  const double width = spacing * cols;
  const double height = spacing * rows;
  for (int c = 0; c < num_clients; ++c) {
    std::snprintf(line, sizeof(line), "client %.1f %.1f\n",
                  rng.uniform(0.0, width), rng.uniform(0.0, height));
    text += line;
  }
  return text;
}

}  // namespace acorn::trace
