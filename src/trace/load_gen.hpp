// Deterministic fleet-scale load schedules for acornd.
//
// Bridges the trace layer (the CRAWDAD-fitted association-duration
// model) and the Poisson arrival process (sim/arrivals) into one merged
// event schedule a driver can replay against the daemon: a client join
// at each session start, a leave at its end, and Poisson-spaced SNR
// drift and offered-load hints while the session is live.
//
// Determinism: the schedule is a pure function of its config. Each WLAN
// draws from its own Rng::derive_stream(seed, wlan_index) stream, so
// WLAN k's events are identical whether the fleet holds 1 WLAN or
// 10000, and the cross-WLAN merge is a stable sort by time — the same
// config always yields the same byte-for-byte schedule, which is what
// lets the fleet tests compare pooled and thread-per-WLAN daemons
// event-for-event.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/association_trace.hpp"

namespace acorn::trace {

enum class LoadEventKind : std::uint8_t { kJoin, kLeave, kSnr, kLoad };

struct LoadEvent {
  double t_s = 0.0;
  LoadEventKind kind = LoadEventKind::kJoin;
  std::uint32_t wlan_id = 0;
  std::uint32_t client = 0;
  /// kSnr only: the AP whose path loss to `client` changed.
  std::uint32_t ap = 0;
  /// kSnr: loss_db; kLoad: offered-load fraction.
  double value = 0.0;
};

struct FleetLoadConfig {
  std::uint32_t num_wlans = 1;
  std::uint32_t first_wlan_id = 1;
  int clients_per_wlan = 8;
  int aps_per_wlan = 3;
  double horizon_s = 3600.0;
  /// Mean session arrivals per WLAN per second.
  double arrivals_per_s = 1.0 / 60.0;
  /// Mean SNR-drift updates per live session per second.
  double snr_per_session_s = 1.0 / 30.0;
  /// Mean offered-load hints per live session per second.
  double load_per_session_s = 1.0 / 60.0;
  /// Scales the duration model's draws (median ~31 min) so short
  /// horizons still see departures.
  double duration_scale = 1.0;
  std::uint64_t seed = 1;
  AssociationDurationModel durations;
};

/// Generate the merged fleet schedule, sorted by time (ties keep WLAN
/// order). Throws std::invalid_argument on a nonsensical config.
std::vector<LoadEvent> generate_fleet_load(const FleetLoadConfig& config);

/// Deployment text (sim/deployment_file grammar) for a synthetic floor:
/// APs on a grid 40 m apart, clients scattered uniformly over the
/// covered rectangle, both deterministic in `seed`.
std::string synthetic_floor(int num_aps, int num_clients,
                            std::uint64_t seed);

}  // namespace acorn::trace
