// Synthetic stand-in for the CRAWDAD ile-sans-fil association trace the
// paper analyzes (206 commercial APs over 3 years). The paper extracts
// the CDF of association durations and reports: median ~31 minutes, more
// than 90% below 40 minutes, with a tail reaching several hours (Fig. 9);
// from this it picks a channel-allocation period T = 30 minutes.
//
// The generator is a two-component log-normal mixture fitted to exactly
// those reported statistics: a tight body around the ~30-minute median
// plus a small heavy tail of long-lived associations.
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace acorn::trace {

struct AssociationDurationModel {
  /// Body: log-normal around the reported ~31-minute median.
  double body_median_s = 1800.0;
  double body_sigma = 0.18;
  /// Tail: a few percent of day-scale associations.
  double tail_weight = 0.07;
  double tail_median_s = 5000.0;
  double tail_sigma = 0.9;

  /// Draw one association duration (seconds).
  double sample(util::Rng& rng) const;

  /// Analytic CDF of the mixture.
  double cdf(double duration_s) const;

  /// Quantile by bisection on the analytic CDF.
  double quantile(double p) const;
};

/// One association session in the synthetic trace.
struct AssociationRecord {
  int ap_id = 0;
  double start_s = 0.0;
  double duration_s = 0.0;
};

struct TraceConfig {
  /// The CRAWDAD set covers 206 APs.
  int num_aps = 206;
  /// Sessions generated per AP.
  int sessions_per_ap = 100;
  /// Mean gap between consecutive sessions at one AP (Poisson).
  double mean_gap_s = 600.0;
};

/// Generate a synthetic multi-AP association trace.
std::vector<AssociationRecord> generate_trace(
    const TraceConfig& config, const AssociationDurationModel& model,
    util::Rng& rng);

/// Durations only (for CDF analysis).
std::vector<double> durations_of(const std::vector<AssociationRecord>& trace);

/// The paper's periodicity rule: run channel allocation roughly at the
/// median association duration, rounded to a 5-minute grid (their data
/// says 31 min -> they run every 30 min).
double recommended_period_s(const AssociationDurationModel& model);

}  // namespace acorn::trace
