#include "trace/association_trace.hpp"

#include <cmath>
#include <stdexcept>

namespace acorn::trace {

namespace {
double lognormal_cdf(double x, double median, double sigma) {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - std::log(median)) / sigma;
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}
}  // namespace

double AssociationDurationModel::sample(util::Rng& rng) const {
  if (rng.bernoulli(tail_weight)) {
    return rng.lognormal(std::log(tail_median_s), tail_sigma);
  }
  return rng.lognormal(std::log(body_median_s), body_sigma);
}

double AssociationDurationModel::cdf(double duration_s) const {
  return (1.0 - tail_weight) *
             lognormal_cdf(duration_s, body_median_s, body_sigma) +
         tail_weight * lognormal_cdf(duration_s, tail_median_s, tail_sigma);
}

double AssociationDurationModel::quantile(double p) const {
  if (p <= 0.0 || p >= 1.0) throw std::invalid_argument("p out of (0,1)");
  double lo = 1.0;
  double hi = 1.0e6;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::vector<AssociationRecord> generate_trace(
    const TraceConfig& config, const AssociationDurationModel& model,
    util::Rng& rng) {
  if (config.num_aps < 1 || config.sessions_per_ap < 1 ||
      config.mean_gap_s <= 0.0) {
    throw std::invalid_argument("bad trace config");
  }
  std::vector<AssociationRecord> out;
  out.reserve(static_cast<std::size_t>(config.num_aps) *
              static_cast<std::size_t>(config.sessions_per_ap));
  for (int ap = 0; ap < config.num_aps; ++ap) {
    double t = 0.0;
    for (int s = 0; s < config.sessions_per_ap; ++s) {
      t += rng.exponential(1.0 / config.mean_gap_s);
      AssociationRecord rec;
      rec.ap_id = ap;
      rec.start_s = t;
      rec.duration_s = model.sample(rng);
      t += rec.duration_s;
      out.push_back(rec);
    }
  }
  return out;
}

std::vector<double> durations_of(
    const std::vector<AssociationRecord>& trace) {
  std::vector<double> out;
  out.reserve(trace.size());
  for (const AssociationRecord& r : trace) out.push_back(r.duration_s);
  return out;
}

double recommended_period_s(const AssociationDurationModel& model) {
  const double median = model.quantile(0.5);
  const double grid = 300.0;  // 5-minute grid
  return std::max(grid, std::round(median / grid) * grid);
}

}  // namespace acorn::trace
