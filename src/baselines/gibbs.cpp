#include "baselines/gibbs.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/units.hpp"

namespace acorn::baselines {

GibbsAllocator::GibbsAllocator(net::ChannelPlan plan, GibbsConfig config)
    : plan_(plan), config_(config) {
  if (config_.sweeps < 1 || config_.initial_temperature <= 0.0 ||
      config_.cooling <= 0.0 || config_.cooling > 1.0) {
    throw std::invalid_argument("bad Gibbs configuration");
  }
}

double GibbsAllocator::energy_mw(const sim::Wlan& wlan,
                                 const net::ChannelAssignment& assignment,
                                 int ap, const net::Channel& c) const {
  double energy = 0.0;
  for (int other = 0; other < wlan.topology().num_aps(); ++other) {
    if (other == ap) continue;
    const net::Channel& other_ch =
        assignment[static_cast<std::size_t>(other)];
    // Fraction of the neighbor's transmit power landing inside this
    // channel, and of this AP's power landing inside the neighbor's.
    const double captured_here = other_ch.overlap_fraction(c);
    const double projected_there = c.overlap_fraction(other_ch);
    if (captured_here <= 0.0 && projected_there <= 0.0) continue;
    const double rx_here =
        util::dbm_to_mw(wlan.budget().rx_at_ap_dbm(wlan.topology(), other, ap));
    const double rx_there =
        util::dbm_to_mw(wlan.budget().rx_at_ap_dbm(wlan.topology(), ap, other));
    energy += captured_here * rx_here + projected_there * rx_there;
  }
  return energy;
}

void GibbsAllocator::sweep(const sim::Wlan& wlan,
                           net::ChannelAssignment& assignment,
                           const std::vector<net::Channel>& colors,
                           double temperature, util::Rng& rng) const {
  std::vector<double> weights(colors.size());
  for (int ap = 0; ap < wlan.topology().num_aps(); ++ap) {
    // Boltzmann weights over the candidate colors. Energies are
    // rescaled by their minimum so exp() stays in range.
    double min_energy = 1e300;
    std::vector<double> energies(colors.size());
    for (std::size_t k = 0; k < colors.size(); ++k) {
      energies[k] = energy_mw(wlan, assignment, ap, colors[k]);
      min_energy = std::min(min_energy, energies[k]);
    }
    double total = 0.0;
    for (std::size_t k = 0; k < colors.size(); ++k) {
      weights[k] = std::exp(-(energies[k] - min_energy) /
                            (temperature * std::max(min_energy, 1e-15)));
      total += weights[k];
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = colors.size() - 1;
    for (std::size_t k = 0; k < colors.size(); ++k) {
      pick -= weights[k];
      if (pick <= 0.0) {
        chosen = k;
        break;
      }
    }
    assignment[static_cast<std::size_t>(ap)] = colors[chosen];
  }
}

net::ChannelAssignment GibbsAllocator::allocate(const sim::Wlan& wlan,
                                                util::Rng& rng) const {
  const std::vector<net::Channel> colors =
      config_.bonds_only ? plan_.bonded_channels() : plan_.all_channels();
  if (colors.empty()) throw std::logic_error("empty color set");
  const int n_aps = wlan.topology().num_aps();

  net::ChannelAssignment assignment;
  assignment.reserve(static_cast<std::size_t>(n_aps));
  for (int i = 0; i < n_aps; ++i) {
    assignment.push_back(colors[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(colors.size()) - 1))]);
  }

  double temperature = config_.initial_temperature;
  for (int s = 0; s < config_.sweeps; ++s) {
    sweep(wlan, assignment, colors, temperature, rng);
    temperature *= config_.cooling;
  }
  return assignment;
}

net::ChannelAssignment GibbsAllocator::allocate_best(
    const sim::Wlan& wlan, const net::Association& assoc, util::Rng& rng,
    const core::ThroughputOracle& oracle) const {
  const std::vector<net::Channel> colors =
      config_.bonds_only ? plan_.bonded_channels() : plan_.all_channels();
  if (colors.empty()) throw std::logic_error("empty color set");
  if (!oracle) throw std::invalid_argument("null oracle");
  const int n_aps = wlan.topology().num_aps();

  net::ChannelAssignment assignment;
  assignment.reserve(static_cast<std::size_t>(n_aps));
  for (int i = 0; i < n_aps; ++i) {
    assignment.push_back(colors[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(colors.size()) - 1))]);
  }
  net::ChannelAssignment best = assignment;
  double best_bps = oracle(assoc, assignment);

  double temperature = config_.initial_temperature;
  for (int s = 0; s < config_.sweeps; ++s) {
    sweep(wlan, assignment, colors, temperature, rng);
    temperature *= config_.cooling;
    const double bps = oracle(assoc, assignment);
    if (bps > best_bps) {
      best_bps = bps;
      best = assignment;
    }
  }
  return best;
}

}  // namespace acorn::baselines
