// Gibbs-sampler channel allocation in the spirit of the original
// Kauffmann et al. system (the paper's ref [17]): each AP periodically
// resamples its channel from a Boltzmann distribution over a local energy
// (the interference it measures plus the interference it would project),
// with a falling temperature. Unlike ACORN it neither knows client link
// qualities nor mixes channel widths by design — widths are whatever the
// caller includes in the plan's color set.
#pragma once

#include "core/allocation.hpp"
#include "net/channels.hpp"
#include "sim/wlan.hpp"
#include "util/rng.hpp"

namespace acorn::baselines {

struct GibbsConfig {
  /// Sweeps over the AP set.
  int sweeps = 20;
  /// Initial temperature (relative to the energy scale in mW).
  double initial_temperature = 1.0;
  /// Geometric cooling factor per sweep.
  double cooling = 0.7;
  /// Restrict the color set to 40 MHz bonds (the aggressive adaptation
  /// the paper evaluates); false samples over all colors.
  bool bonds_only = true;
};

class GibbsAllocator {
 public:
  GibbsAllocator(net::ChannelPlan plan, GibbsConfig config = {});

  /// Local energy of AP `ap` using channel `c`: interference power it
  /// receives from co-channel neighbors plus the power it projects onto
  /// them (both overlap-weighted), in mW.
  double energy_mw(const sim::Wlan& wlan,
                   const net::ChannelAssignment& assignment, int ap,
                   const net::Channel& c) const;

  /// Run the sampler from a random initialization.
  net::ChannelAssignment allocate(const sim::Wlan& wlan,
                                  util::Rng& rng) const;

  /// Same sampler and random stream as `allocate`, but score the
  /// assignment left by every sweep with `oracle` (the same throughput
  /// oracle ACORN's allocator drives — pass core::make_cached_oracle for
  /// the fast incremental one) and return the best-scoring assignment
  /// observed instead of whatever the final sweep happened to leave.
  /// Lets the benches compare baselines on equal measurement footing.
  net::ChannelAssignment allocate_best(const sim::Wlan& wlan,
                                       const net::Association& assoc,
                                       util::Rng& rng,
                                       const core::ThroughputOracle& oracle)
      const;

 private:
  /// One Gibbs sweep over every AP at `temperature`, in place.
  void sweep(const sim::Wlan& wlan, net::ChannelAssignment& assignment,
             const std::vector<net::Channel>& colors, double temperature,
             util::Rng& rng) const;

  net::ChannelPlan plan_;
  GibbsConfig config_;
};

}  // namespace acorn::baselines
