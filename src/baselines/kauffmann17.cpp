#include "baselines/kauffmann17.hpp"

#include <algorithm>
#include <numeric>

#include "phy/noise.hpp"
#include "sim/mgmt.hpp"
#include "util/units.hpp"

namespace acorn::baselines {

Kauffmann17::Kauffmann17(net::ChannelPlan plan, Kauffmann17Config config)
    : plan_(plan), config_(config) {}

std::optional<int> Kauffmann17::select_ap(
    const sim::Wlan& wlan, const net::Association& assoc,
    const net::ChannelAssignment& assignment, int u) const {
  const std::vector<int> in_range =
      sim::aps_in_range(wlan, u, config_.min_rss_dbm);
  if (in_range.empty()) return std::nullopt;
  const net::InterferenceGraph graph(wlan.topology(), wlan.budget(), assoc,
                                     wlan.config().interference);
  double best_x = -1.0;
  int best_ap = in_range.front();
  for (int ap : in_range) {
    const sim::Beacon beacon =
        sim::make_beacon_with_client(wlan, graph, assoc, assignment, ap, u);
    const double x = beacon.access_share / beacon.atd_s_per_bit;
    if (x > best_x) {
      best_x = x;
      best_ap = ap;
    }
  }
  return best_ap;
}

double Kauffmann17::noise_plus_interference_mw(
    const sim::Wlan& wlan, const net::ChannelAssignment& assignment, int ap,
    const net::Channel& channel) const {
  double total_mw =
      util::dbm_to_mw(phy::noise_floor_dbm(phy::width_hz(channel.width())));
  for (int other = 0; other < wlan.topology().num_aps(); ++other) {
    if (other == ap) continue;
    const net::Channel& other_ch =
        assignment[static_cast<std::size_t>(other)];
    // Fraction of the other AP's transmit power that lands inside the
    // candidate channel's band.
    const double captured = other_ch.overlap_fraction(channel);
    if (captured <= 0.0) continue;
    const double rx_dbm =
        wlan.budget().rx_at_ap_dbm(wlan.topology(), other, ap);
    total_mw += captured * util::dbm_to_mw(rx_dbm);
  }
  return total_mw;
}

net::ChannelAssignment Kauffmann17::allocate(const sim::Wlan& wlan) const {
  const int n_aps = wlan.topology().num_aps();
  const std::vector<net::Channel> bonds = plan_.bonded_channels();
  // Deterministic start: every AP on the first bond (worst case for the
  // greedy to untangle).
  net::ChannelAssignment assignment(static_cast<std::size_t>(n_aps),
                                    bonds.front());
  for (int pass = 0; pass < config_.passes; ++pass) {
    bool changed = false;
    for (int ap = 0; ap < n_aps; ++ap) {
      double best_mw = noise_plus_interference_mw(
          wlan, assignment, ap, assignment[static_cast<std::size_t>(ap)]);
      net::Channel best = assignment[static_cast<std::size_t>(ap)];
      for (const net::Channel& c : bonds) {
        if (c == assignment[static_cast<std::size_t>(ap)]) continue;
        const double mw =
            noise_plus_interference_mw(wlan, assignment, ap, c);
        if (mw < best_mw) {
          best_mw = mw;
          best = c;
        }
      }
      if (best != assignment[static_cast<std::size_t>(ap)]) {
        assignment[static_cast<std::size_t>(ap)] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return assignment;
}

Kauffmann17::Result Kauffmann17::configure(
    const sim::Wlan& wlan, const std::vector<int>* arrival_order) const {
  Result result;
  result.assignment = allocate(wlan);
  result.association.assign(
      static_cast<std::size_t>(wlan.topology().num_clients()),
      net::kUnassociated);
  std::vector<int> order;
  if (arrival_order != nullptr) {
    order = *arrival_order;
  } else {
    order.resize(static_cast<std::size_t>(wlan.topology().num_clients()));
    std::iota(order.begin(), order.end(), 0);
  }
  for (int u : order) {
    const std::optional<int> ap =
        select_ap(wlan, result.association, result.assignment, u);
    if (ap) result.association[static_cast<std::size_t>(u)] = *ap;
  }
  return result;
}

}  // namespace acorn::baselines
