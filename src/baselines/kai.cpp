#include "baselines/kai.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace acorn::baselines {

namespace {

KaiResult exact_search(const core::CachedOracle& oracle,
                       const std::vector<net::Channel>& colors, int n_aps) {
  KaiResult best;
  best.exact = true;
  best.total_bps = -1.0;
  net::ChannelAssignment current(static_cast<std::size_t>(n_aps),
                                 colors.front());
  std::vector<std::size_t> idx(static_cast<std::size_t>(n_aps), 0);
  while (true) {
    for (int i = 0; i < n_aps; ++i) {
      current[static_cast<std::size_t>(i)] =
          colors[idx[static_cast<std::size_t>(i)]];
    }
    ++best.evaluations;
    const double total = oracle.total_bps(current);
    if (total > best.total_bps) {
      best.total_bps = total;
      best.assignment = current;
    }
    int pos = 0;
    while (pos < n_aps) {
      if (++idx[static_cast<std::size_t>(pos)] < colors.size()) break;
      idx[static_cast<std::size_t>(pos)] = 0;
      ++pos;
    }
    if (pos == n_aps) break;
  }
  return best;
}

KaiResult bounded_search(const core::CachedOracle& oracle,
                         const std::vector<net::Channel>& colors,
                         int n_aps, util::Rng& rng,
                         const KaiConfig& config) {
  KaiResult best;
  best.total_bps = -1.0;
  std::vector<core::FlipCandidate> candidates;
  std::vector<double> scores;
  for (int restart = 0; restart < config.restarts; ++restart) {
    net::ChannelAssignment current(static_cast<std::size_t>(n_aps),
                                   colors.front());
    for (int i = 0; i < n_aps; ++i) {
      current[static_cast<std::size_t>(i)] = colors[static_cast<
          std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(colors.size()) - 1))];
    }
    ++best.evaluations;
    double current_bps = oracle.total_bps(current);
    // Steepest ascent: score every single-AP flip in one batched scan,
    // commit the best strict improvement, repeat until a local optimum
    // or the evaluation budget runs out.
    bool improved = true;
    while (improved && best.evaluations < config.max_search_evaluations) {
      improved = false;
      candidates.clear();
      for (int ap = 0; ap < n_aps; ++ap) {
        for (const net::Channel& color : colors) {
          if (color == current[static_cast<std::size_t>(ap)]) continue;
          candidates.push_back({ap, color});
        }
      }
      scores.assign(candidates.size(), 0.0);
      oracle.total_bps_batch(current, candidates, scores);
      best.evaluations += static_cast<long long>(candidates.size());
      std::size_t winner = candidates.size();
      double winner_bps = current_bps;
      for (std::size_t j = 0; j < candidates.size(); ++j) {
        if (scores[j] > winner_bps) {
          winner_bps = scores[j];
          winner = j;
        }
      }
      if (winner < candidates.size()) {
        current[static_cast<std::size_t>(candidates[winner].ap)] =
            candidates[winner].channel;
        current_bps = winner_bps;
        improved = true;
      }
    }
    if (current_bps > best.total_bps) {
      best.total_bps = current_bps;
      best.assignment = current;
    }
  }
  return best;
}

}  // namespace

KaiResult kai_optimal_allocation(const core::CachedOracle& oracle,
                                 const net::ChannelPlan& plan,
                                 util::Rng& rng, const KaiConfig& config) {
  const int n_aps = oracle.snapshot().num_aps();
  if (n_aps < 1) throw std::invalid_argument("kai: empty network");
  const std::vector<net::Channel> colors = plan.all_channels();
  const double combos =
      std::pow(static_cast<double>(colors.size()), n_aps);
  if (combos <= static_cast<double>(config.max_exact_evaluations)) {
    return exact_search(oracle, colors, n_aps);
  }
  return bounded_search(oracle, colors, n_aps, rng, config);
}

KaiResult kai_optimal_allocation(const sim::Wlan& wlan,
                                 const net::Association& assoc,
                                 const net::ChannelPlan& plan,
                                 util::Rng& rng, mac::TrafficType traffic,
                                 const KaiConfig& config) {
  const core::CachedOracle oracle(wlan, assoc, traffic);
  return kai_optimal_allocation(oracle, plan, rng, config);
}

}  // namespace acorn::baselines
