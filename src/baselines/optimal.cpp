#include "baselines/optimal.hpp"

#include <cmath>
#include <stdexcept>

#include "core/oracle_cache.hpp"

namespace acorn::baselines {

OptimalResult optimal_assignment(const sim::Wlan& wlan,
                                 const net::Association& assoc,
                                 const net::ChannelPlan& plan,
                                 mac::TrafficType traffic,
                                 long long max_evaluations) {
  const int n_aps = wlan.topology().num_aps();
  const std::vector<net::Channel> colors = plan.all_channels();
  const double combos =
      std::pow(static_cast<double>(colors.size()), n_aps);
  if (combos > static_cast<double>(max_evaluations)) {
    throw std::invalid_argument("search space too large for brute force");
  }

  // Drive the incremental cached oracle: the interference graph and
  // client lists are association-invariant across the whole sweep, and
  // neighboring odometer states share almost every cell, so the memo hit
  // rate is enormous. Values are bit-identical to wlan.evaluate.
  const core::CachedOracle oracle(wlan, assoc, traffic);

  OptimalResult best;
  best.total_bps = -1.0;
  net::ChannelAssignment current(static_cast<std::size_t>(n_aps),
                                 colors.front());
  std::vector<std::size_t> idx(static_cast<std::size_t>(n_aps), 0);
  while (true) {
    for (int i = 0; i < n_aps; ++i) {
      current[static_cast<std::size_t>(i)] =
          colors[idx[static_cast<std::size_t>(i)]];
    }
    ++best.evaluated;
    const double total = oracle.total_bps(current);
    if (total > best.total_bps) {
      best.total_bps = total;
      best.assignment = current;
    }
    // Odometer increment.
    int pos = 0;
    while (pos < n_aps) {
      if (++idx[static_cast<std::size_t>(pos)] < colors.size()) break;
      idx[static_cast<std::size_t>(pos)] = 0;
      ++pos;
    }
    if (pos == n_aps) break;
  }
  return best;
}

}  // namespace acorn::baselines
