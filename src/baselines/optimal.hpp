// Exhaustive-search comparators for small deployments: the exact optimal
// channel assignment (the problem is NP-complete, so this is exponential
// in the number of APs) and helpers for the approximation-ratio study of
// Fig. 14.
#pragma once

#include "net/channels.hpp"
#include "sim/wlan.hpp"

namespace acorn::baselines {

struct OptimalResult {
  net::ChannelAssignment assignment;
  double total_bps = 0.0;
  /// Number of assignments evaluated (|colors|^num_aps).
  long long evaluated = 0;
};

/// Brute-force the best channel assignment for a fixed association.
/// Throws std::invalid_argument when |colors|^num_aps would exceed
/// `max_evaluations`.
OptimalResult optimal_assignment(const sim::Wlan& wlan,
                                 const net::Association& assoc,
                                 const net::ChannelPlan& plan,
                                 mac::TrafficType traffic =
                                     mac::TrafficType::kUdp,
                                 long long max_evaluations = 20'000'000);

}  // namespace acorn::baselines
