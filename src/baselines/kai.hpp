// Kai et al., "To Bond or not to Bond" — optimal joint channel/width
// allocation as a yardstick baseline. For small deployments the optimum
// is exact (the same exhaustive odometer as `optimal_assignment`, driven
// through the memoizing CachedOracle); above the exact budget it falls
// back to a bounded multi-restart steepest-ascent search over single-AP
// color flips, which is not guaranteed optimal and says so in the
// result. The gap-to-optimal report (dcb::run_gap_report) uses the
// exact branch only.
#pragma once

#include "core/oracle_cache.hpp"
#include "net/channels.hpp"
#include "sim/wlan.hpp"
#include "util/rng.hpp"

namespace acorn::baselines {

struct KaiConfig {
  /// Use the exhaustive branch when |colors|^n_aps fits this budget.
  long long max_exact_evaluations = 1'000'000;
  /// Bounded-search branch: independent restarts from random initial
  /// assignments, each run to a local optimum by steepest ascent.
  int restarts = 4;
  /// Total oracle-evaluation budget for the bounded-search branch.
  long long max_search_evaluations = 200'000;
};

struct KaiResult {
  net::ChannelAssignment assignment;
  double total_bps = 0.0;
  /// True when the exhaustive branch ran: `assignment` is the global
  /// optimum for this (association, plan), not a local one.
  bool exact = false;
  long long evaluations = 0;
};

/// Compute Kai et al.'s allocation against an existing oracle (bound to
/// the wlan/association under study). `rng` feeds only the bounded
/// branch's random restarts; the exact branch never draws from it, so
/// exact results are rng-independent.
KaiResult kai_optimal_allocation(const core::CachedOracle& oracle,
                                 const net::ChannelPlan& plan,
                                 util::Rng& rng,
                                 const KaiConfig& config = {});

/// Convenience overload building its own CachedOracle.
KaiResult kai_optimal_allocation(const sim::Wlan& wlan,
                                 const net::Association& assoc,
                                 const net::ChannelPlan& plan,
                                 util::Rng& rng,
                                 mac::TrafficType traffic =
                                     mac::TrafficType::kUdp,
                                 const KaiConfig& config = {});

}  // namespace acorn::baselines
