#include "baselines/simple.hpp"

#include "sim/mgmt.hpp"

namespace acorn::baselines {

std::optional<int> rss_association(const sim::Wlan& wlan, int client,
                                   double min_rss_dbm) {
  const std::vector<int> in_range =
      sim::aps_in_range(wlan, client, min_rss_dbm);
  if (in_range.empty()) return std::nullopt;
  int best_ap = in_range.front();
  double best_rss = -1e9;
  for (int ap : in_range) {
    const double rss =
        wlan.budget().rx_at_client_dbm(wlan.topology(), ap, client);
    if (rss > best_rss) {
      best_rss = rss;
      best_ap = ap;
    }
  }
  return best_ap;
}

net::Association rss_associate_all(const sim::Wlan& wlan,
                                   double min_rss_dbm) {
  net::Association assoc(
      static_cast<std::size_t>(wlan.topology().num_clients()),
      net::kUnassociated);
  for (int c = 0; c < wlan.topology().num_clients(); ++c) {
    const std::optional<int> ap = rss_association(wlan, c, min_rss_dbm);
    if (ap) assoc[static_cast<std::size_t>(c)] = *ap;
  }
  return assoc;
}

net::Association random_associate_all(const sim::Wlan& wlan, util::Rng& rng,
                                      double min_rss_dbm) {
  net::Association assoc(
      static_cast<std::size_t>(wlan.topology().num_clients()),
      net::kUnassociated);
  for (int c = 0; c < wlan.topology().num_clients(); ++c) {
    const std::vector<int> in_range =
        sim::aps_in_range(wlan, c, min_rss_dbm);
    if (in_range.empty()) continue;
    const auto pick = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(in_range.size()) - 1));
    assoc[static_cast<std::size_t>(c)] = in_range[pick];
  }
  return assoc;
}

net::ChannelAssignment fixed_width_assignment(const net::ChannelPlan& plan,
                                              int num_aps,
                                              phy::ChannelWidth width) {
  const std::vector<net::Channel> pool =
      width == phy::ChannelWidth::k20MHz ? plan.basic_channels()
                                         : plan.bonded_channels();
  net::ChannelAssignment out;
  out.reserve(static_cast<std::size_t>(num_aps));
  for (int i = 0; i < num_aps; ++i) {
    out.push_back(pool[static_cast<std::size_t>(i) % pool.size()]);
  }
  return out;
}

RandomConfig random_configuration(const sim::Wlan& wlan,
                                  const net::ChannelPlan& plan,
                                  util::Rng& rng, double min_rss_dbm) {
  RandomConfig cfg;
  const std::vector<net::Channel> colors = plan.all_channels();
  for (int ap = 0; ap < wlan.topology().num_aps(); ++ap) {
    cfg.assignment.push_back(colors[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(colors.size()) - 1))]);
  }
  cfg.association = random_associate_all(wlan, rng, min_rss_dbm);
  return cfg;
}

}  // namespace acorn::baselines
