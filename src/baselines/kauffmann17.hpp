// The comparison scheme the paper evaluates against (its §5.2 "[17]"):
// Kauffmann et al.'s measurement-based self-organization, adapted by the
// paper's authors to 802.11n as follows.
//
//  * Association: selfish/greedy — the client picks the AP that maximizes
//    its own per-client throughput M_i/ATD_i (equivalently, minimizes its
//    transmission delay), with no regard for the impact on other cells.
//  * Channel selection: a greedy single-width strategy where every AP
//    aggressively uses 40 MHz channels: it scans the bonded channels and
//    selects the one minimizing total noise plus interference measured at
//    the AP.
#pragma once

#include <optional>

#include "net/channels.hpp"
#include "sim/wlan.hpp"

namespace acorn::baselines {

struct Kauffmann17Config {
  double min_rss_dbm = -97.0;
  /// Passes over the AP set during channel selection (the greedy usually
  /// stabilizes in one or two).
  int passes = 3;
};

class Kauffmann17 {
 public:
  Kauffmann17(net::ChannelPlan plan, Kauffmann17Config config = {});

  /// Selfish association: AP maximizing the client's own throughput.
  std::optional<int> select_ap(const sim::Wlan& wlan,
                               const net::Association& assoc,
                               const net::ChannelAssignment& assignment,
                               int u) const;

  /// Greedy all-40 MHz channel selection: each AP (in id order, for
  /// `passes` rounds) picks the bonded channel with the least noise +
  /// interference received from co-channel APs.
  net::ChannelAssignment allocate(const sim::Wlan& wlan) const;

  /// Interference + noise (mW) AP `ap` would measure on `channel`,
  /// given the other APs' current channels.
  double noise_plus_interference_mw(const sim::Wlan& wlan,
                                    const net::ChannelAssignment& assignment,
                                    int ap, const net::Channel& channel) const;

  /// Full pipeline mirroring ACORN's configure(): greedy 40 MHz channels
  /// first, then clients associate selfishly in `order`.
  struct Result {
    net::Association association;
    net::ChannelAssignment assignment;
  };
  Result configure(const sim::Wlan& wlan,
                   const std::vector<int>* arrival_order = nullptr) const;

 private:
  net::ChannelPlan plan_;
  Kauffmann17Config config_;
};

}  // namespace acorn::baselines
