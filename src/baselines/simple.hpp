// Simple association and allocation policies used as controls:
// RSS-greedy association (what stock clients do), uniform-random
// association, fixed-width channel plans, and fully random manual
// configurations (paper Table 3).
#pragma once

#include <optional>

#include "net/channels.hpp"
#include "sim/wlan.hpp"
#include "util/rng.hpp"

namespace acorn::baselines {

/// Stock client behaviour: associate with the strongest-signal AP.
std::optional<int> rss_association(const sim::Wlan& wlan, int client,
                                   double min_rss_dbm = -97.0);

/// Full-network RSS association.
net::Association rss_associate_all(const sim::Wlan& wlan,
                                   double min_rss_dbm = -97.0);

/// Uniform-random association among in-range APs (Table 3's random
/// configurations let "each client associate with one of the APs in
/// range with equal probability").
net::Association random_associate_all(const sim::Wlan& wlan, util::Rng& rng,
                                      double min_rss_dbm = -97.0);

/// Every AP on a fixed width; 20 MHz channels round-robin across the
/// plan, 40 MHz bonds round-robin across the valid bonds.
net::ChannelAssignment fixed_width_assignment(const net::ChannelPlan& plan,
                                              int num_aps,
                                              phy::ChannelWidth width);

/// One random manual configuration: random colors (both widths) and
/// random association.
struct RandomConfig {
  net::Association association;
  net::ChannelAssignment assignment;
};
RandomConfig random_configuration(const sim::Wlan& wlan,
                                  const net::ChannelPlan& plan,
                                  util::Rng& rng,
                                  double min_rss_dbm = -97.0);

}  // namespace acorn::baselines
