// Forward error correction model for the 802.11n convolutional code
// (K = 7, generators 133/171 octal, punctured to the higher rates).
//
// Coded BER is estimated with the classic hard-decision Viterbi union
// bound over the code's distance spectrum — the standard link-abstraction
// technique. The resulting curves are monotone in SNR and reproduce the
// waterfall sharpening with code rate that drives the paper's Table 1.
#pragma once

#include <string_view>

namespace acorn::phy {

enum class CodeRate { kRate12, kRate23, kRate34, kRate56 };

/// Numeric value of the code rate (0.5, 2/3, 3/4, 5/6).
double code_rate_value(CodeRate rate);

std::string_view to_string(CodeRate rate);

/// Free distance of the (punctured) code.
int free_distance(CodeRate rate);

/// Coded BER after hard-decision Viterbi decoding, given the uncoded
/// (channel) bit error probability `p`. Clamped to [0, 0.5].
double coded_ber(CodeRate rate, double channel_ber);

/// Probability that a packet of `payload_bits` bits is received in error,
/// assuming independent residual bit errors (paper Eq. 6):
///   PER = 1 - (1 - BER)^L.
double packet_error_rate(double coded_ber, int payload_bits);

}  // namespace acorn::phy
