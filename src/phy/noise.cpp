#include "phy/noise.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace acorn::phy {

double noise_floor_dbm(double bandwidth_hz, double noise_figure_db) {
  if (bandwidth_hz <= 0.0) throw std::invalid_argument("bandwidth <= 0");
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

double noise_per_subcarrier_dbm(double noise_figure_db) {
  return noise_floor_dbm(kSubcarrierSpacingHz, noise_figure_db);
}

double tx_per_subcarrier_dbm(double tx_dbm, ChannelWidth width) {
  return tx_dbm - 10.0 * std::log10(static_cast<double>(data_subcarriers(width)));
}

double cb_snr_penalty_db() {
  return 10.0 * std::log10(108.0 / 52.0);  // = 3.17 dB
}

double snr_per_subcarrier_db(double tx_dbm, double path_loss_db,
                             ChannelWidth width, double noise_figure_db) {
  const double rx_per_sc =
      tx_per_subcarrier_dbm(tx_dbm, width) - path_loss_db;
  return rx_per_sc - noise_per_subcarrier_dbm(noise_figure_db);
}

double shannon_capacity_bps(double bandwidth_hz, double snr_linear) {
  if (snr_linear < 0.0) throw std::invalid_argument("negative SNR");
  return bandwidth_hz * std::log2(1.0 + snr_linear);
}

double shannon_capacity_for_width_bps(double tx_dbm, double path_loss_db,
                                      ChannelWidth width,
                                      double noise_figure_db) {
  const double rx_dbm = tx_dbm - path_loss_db;
  const double noise_dbm = noise_floor_dbm(width_hz(width), noise_figure_db);
  const double snr = util::db_to_lin(rx_dbm - noise_dbm);
  return shannon_capacity_bps(width_hz(width), snr);
}

}  // namespace acorn::phy
