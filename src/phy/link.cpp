#include "phy/link.hpp"

#include <stdexcept>

#include "phy/coding.hpp"
#include "phy/modulation.hpp"
#include "phy/noise.hpp"

namespace acorn::phy {

MimoMode mode_for(const McsEntry& entry) {
  return entry.streams == 1 ? MimoMode::kStbc : MimoMode::kSdm;
}

LinkModel::LinkModel(LinkConfig config) : config_(config) {
  if (config_.payload_bytes <= 0) {
    throw std::invalid_argument("payload_bytes must be positive");
  }
}

double LinkModel::snr_db(double tx_dbm, double path_loss_db,
                         ChannelWidth width) const {
  return snr_per_subcarrier_db(tx_dbm, path_loss_db, width,
                               config_.noise_figure_db);
}

double LinkModel::effective_snr_db(double snr_db, const McsEntry& entry) const {
  switch (mode_for(entry)) {
    case MimoMode::kStbc: return snr_db + config_.stbc_gain_db;
    case MimoMode::kSdm: return snr_db - config_.sdm_penalty_db;
  }
  throw std::logic_error("unknown MIMO mode");
}

double LinkModel::coded_ber(const McsEntry& entry, double snr_db) const {
  const double eff = effective_snr_db(snr_db, entry);
  const double raw =
      uncoded_ber_shadowed_db(entry.modulation, eff, config_.shadow_db);
  return acorn::phy::coded_ber(entry.code_rate, raw);
}

double LinkModel::per(const McsEntry& entry, double snr_db) const {
  return packet_error_rate(coded_ber(entry, snr_db),
                           config_.payload_bytes * 8);
}

double LinkModel::per_at(const McsEntry& entry, double tx_dbm,
                         double path_loss_db, ChannelWidth width) const {
  return per(entry, snr_db(tx_dbm, path_loss_db, width));
}

double LinkModel::goodput_bps(const McsEntry& entry, ChannelWidth width,
                              GuardInterval gi, double snr_db) const {
  return (1.0 - per(entry, snr_db)) * entry.rate_bps(width, gi);
}

}  // namespace acorn::phy
