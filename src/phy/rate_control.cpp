#include "phy/rate_control.hpp"

namespace acorn::phy {

RateDecision best_rate(const LinkModel& link, ChannelWidth width,
                       double snr_db, GuardInterval gi) {
  RateDecision best;
  double best_goodput = -1.0;
  for (const auto& entry : mcs_table()) {
    const double goodput = link.goodput_bps(entry, width, gi, snr_db);
    if (goodput > best_goodput) {
      best_goodput = goodput;
      best.mcs_index = entry.index;
      best.mode = mode_for(entry);
      best.goodput_bps = goodput;
      best.per = link.per(entry, snr_db);
    }
  }
  return best;
}

RateDecision best_rate_at(const LinkModel& link, ChannelWidth width,
                          double tx_dbm, double path_loss_db,
                          GuardInterval gi) {
  return best_rate(link, width, link.snr_db(tx_dbm, path_loss_db, width), gi);
}

WidthComparison compare_widths(const LinkModel& link, double tx_dbm,
                               double path_loss_db, GuardInterval gi) {
  WidthComparison cmp;
  cmp.on20 =
      best_rate_at(link, ChannelWidth::k20MHz, tx_dbm, path_loss_db, gi);
  cmp.on40 =
      best_rate_at(link, ChannelWidth::k40MHz, tx_dbm, path_loss_db, gi);
  return cmp;
}

}  // namespace acorn::phy
