// ACORN's link-quality estimator (paper §4.2, "Estimating throughput").
//
// APs measure SNR on the channel width they currently use; to predict the
// link on the *other* width, the paper chains three modules:
//   1. SNR calibration — apply a +/- 3 dB shift when the width changes;
//   2. BER estimation — theoretical coded BER at the calibrated SNR;
//   3. PER estimation — Eq. 6 under independent bit errors.
// ACORN only needs a coarse good/poor classification, not exact PER.
#pragma once

#include "phy/link.hpp"

namespace acorn::phy {

enum class LinkQuality { kGood, kPoor };

struct EstimatorConfig {
  /// The calibration shift the paper applies on width change. The paper
  /// rounds the true 10*log10(108/52) = 3.17 dB penalty to 3 dB.
  double width_shift_db = 3.0;
  /// Payload used for the PER estimate.
  int payload_bytes = 1500;
  /// Fading margin: per-packet SNR jitter assumed when evaluating the
  /// theoretical BER. 0 reproduces the paper's raw formulas; the default
  /// matches the link model's margin, which is what a deployed estimator
  /// ends up with after calibrating against its own testbed (the paper's
  /// §3.1 curve fit plays that role).
  double shadow_db = 2.5;
  /// STBC/SDM adjustments mirrored from the link model.
  double stbc_gain_db = 3.0;
  double sdm_penalty_db = 6.0;
  /// PER above which a link is classified poor at its best usable MCS.
  double poor_per_threshold = 0.30;
};

/// Prediction for one (MCS, width) choice.
struct LinkEstimate {
  double snr_db = 0.0;   // calibrated per-subcarrier SNR
  double ber = 0.0;      // estimated coded BER
  double per = 0.0;      // estimated PER (Eq. 6)
  double goodput_bps = 0.0;  // (1 - PER) * nominal rate
  int mcs_index = 0;         // the MCS this estimate is for
};

class LinkEstimator {
 public:
  explicit LinkEstimator(EstimatorConfig config = {});

  const EstimatorConfig& config() const { return config_; }

  /// Calibrate a measured per-subcarrier SNR from one width to another.
  /// Same width -> unchanged; 20->40 subtracts the shift; 40->20 adds it.
  double calibrate_snr_db(double measured_snr_db, ChannelWidth measured_on,
                          ChannelWidth target) const;

  /// Full pipeline: estimate BER/PER/goodput for (entry, target width)
  /// from an SNR measured on `measured_on`.
  LinkEstimate estimate(const McsEntry& entry, double measured_snr_db,
                        ChannelWidth measured_on, ChannelWidth target,
                        GuardInterval gi = GuardInterval::kLong800ns) const;

  /// Best goodput across all MCS for a target width (what an auto-rate
  /// link would achieve); used by ACORN's throughput estimates.
  LinkEstimate best_estimate(double measured_snr_db, ChannelWidth measured_on,
                             ChannelWidth target,
                             GuardInterval gi = GuardInterval::kLong800ns) const;

  /// Coarse classification at the target width.
  LinkQuality classify(double measured_snr_db, ChannelWidth measured_on,
                       ChannelWidth target) const;

 private:
  EstimatorConfig config_;
  LinkModel model_;
};

}  // namespace acorn::phy
