#include "phy/estimator.hpp"

namespace acorn::phy {

namespace {
LinkConfig to_link_config(const EstimatorConfig& cfg) {
  LinkConfig lc;
  lc.shadow_db = cfg.shadow_db;
  lc.payload_bytes = cfg.payload_bytes;
  lc.stbc_gain_db = cfg.stbc_gain_db;
  lc.sdm_penalty_db = cfg.sdm_penalty_db;
  return lc;
}
}  // namespace

LinkEstimator::LinkEstimator(EstimatorConfig config)
    : config_(config), model_(to_link_config(config)) {}

double LinkEstimator::calibrate_snr_db(double measured_snr_db,
                                       ChannelWidth measured_on,
                                       ChannelWidth target) const {
  if (measured_on == target) return measured_snr_db;
  if (target == ChannelWidth::k40MHz) {
    return measured_snr_db - config_.width_shift_db;
  }
  return measured_snr_db + config_.width_shift_db;
}

LinkEstimate LinkEstimator::estimate(const McsEntry& entry,
                                     double measured_snr_db,
                                     ChannelWidth measured_on,
                                     ChannelWidth target,
                                     GuardInterval gi) const {
  LinkEstimate est;
  est.mcs_index = entry.index;
  est.snr_db = calibrate_snr_db(measured_snr_db, measured_on, target);
  est.ber = model_.coded_ber(entry, est.snr_db);
  est.per = packet_error_rate(est.ber, config_.payload_bytes * 8);
  est.goodput_bps = (1.0 - est.per) * entry.rate_bps(target, gi);
  return est;
}

LinkEstimate LinkEstimator::best_estimate(double measured_snr_db,
                                          ChannelWidth measured_on,
                                          ChannelWidth target,
                                          GuardInterval gi) const {
  LinkEstimate best;
  best.goodput_bps = -1.0;
  for (const auto& entry : mcs_table()) {
    const LinkEstimate est =
        estimate(entry, measured_snr_db, measured_on, target, gi);
    if (est.goodput_bps > best.goodput_bps) best = est;
  }
  return best;
}

LinkQuality LinkEstimator::classify(double measured_snr_db,
                                    ChannelWidth measured_on,
                                    ChannelWidth target) const {
  const LinkEstimate best =
      best_estimate(measured_snr_db, measured_on, target);
  return best.per <= config_.poor_per_threshold ? LinkQuality::kGood
                                                : LinkQuality::kPoor;
}

}  // namespace acorn::phy
