// Exact MCS decision table: the auto-rate argmax of `best_rate` collapsed
// to an SNR threshold scan (Halperin's Effective-SNR observation — rate
// selection is "compare an SNR against per-MCS thresholds").
//
// `best_rate` re-evaluates the coded-BER chain (Gauss-Hermite shadowing
// quadrature, erfc, pow) for all 16 MCS rows on every call, yet for a
// fixed (LinkConfig, width, GI) the winning row is a piecewise-constant
// function of SNR with a handful of crossover points. RateTable finds
// those crossovers once at construction — coarse grid scan plus bisection
// down to adjacent doubles — and `decide()` then does a short threshold
// scan followed by ONE PER evaluation for the winning row. The returned
// RateDecision (index, mode, PER, goodput) is bit-identical to
// `best_rate` for every SNR (randomized property test in
// tests/test_phy_rate_table.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "phy/rate_control.hpp"

namespace acorn::phy {

class RateTable {
 public:
  /// One maximal SNR interval with a constant argmax row: the winner for
  /// all snr in [start_snr_db, next segment's start).
  struct Segment {
    double start_snr_db = 0.0;  // -inf for the first segment
    int mcs_index = 0;
    MimoMode mode = MimoMode::kStbc;
    double rate_bps = 0.0;  // mcs(index).rate_bps(width, gi), precomputed
  };

  /// How construction probes the per-row goodput curves.
  ///
  /// kBracketed (the default) keeps the exact 0.1 dB grid + bisection
  /// discovery but makes each argmax probe cheap. A one-time pre-pass
  /// bisects each row's dead zone: per-row goodput is monotone in SNR,
  /// so a row observed at exactly 0 at some SNR is exactly 0 everywhere
  /// below — afterwards dead rows cost nothing to "probe". Points where
  /// every row is provably dead hand the argmax to the first row for
  /// free (best_rate's strict-> tie rule). Everywhere else a seeded
  /// two-pass scan finds the winner: a descending-nominal-rate pass
  /// finds the max goodput M, skipping rows whose PHY rate can't exceed
  /// M (goodput = (1-PER)*rate <= rate), then an ascending pass returns
  /// the FIRST row attaining M — best_rate's exact first-index-wins
  /// winner. Segments are bit-identical to kDenseReference.
  ///
  /// kDenseReference runs the original full 16-row best_rate sweep per
  /// probe — the reference the equivalence property test pins
  /// kBracketed against.
  enum class Construction { kBracketed, kDenseReference };

  /// Precompute the decision thresholds for (link config, width, gi).
  RateTable(const LinkModel& link, ChannelWidth width, GuardInterval gi,
            Construction construction = Construction::kBracketed);

  /// link.goodput_bps evaluations construction spent (the dominant
  /// construction cost: each runs the Gauss-Hermite/erfc coded-PER
  /// chain). Bracketed construction needs ~8x fewer than dense.
  std::uint64_t construction_goodput_probes() const {
    return construction_probes_;
  }

  ChannelWidth width() const { return width_; }
  GuardInterval gi() const { return gi_; }
  const std::vector<Segment>& segments() const { return segments_; }

  /// Winning MCS row index at `snr_db` — the threshold scan alone.
  int pick_index(double snr_db) const {
    return segment_for(snr_db).mcs_index;
  }

  /// Full auto-rate decision; bit-identical to
  /// best_rate(link, width, snr_db, gi) at a fraction of the cost (one
  /// PER evaluation instead of a 16-row goodput sweep).
  RateDecision decide(double snr_db) const {
    const Segment& seg = segment_for(snr_db);
    RateDecision d;
    d.mcs_index = seg.mcs_index;
    d.mode = seg.mode;
    d.per = link_.per(mcs(seg.mcs_index), snr_db);
    d.goodput_bps = (1.0 - d.per) * seg.rate_bps;
    return d;
  }

  /// Process-wide table cache keyed by everything the thresholds depend
  /// on (the LinkConfig fields that enter PER, the width and the GI), so
  /// scenario sweeps that build thousands of Wlans with the same link
  /// config pay construction once.
  static std::shared_ptr<const RateTable> shared(const LinkModel& link,
                                                 ChannelWidth width,
                                                 GuardInterval gi);

  /// The winning segment at `snr_db`, for callers that need the
  /// precomputed rate alongside their own PER evaluation (the network
  /// kernel feeds `rate_bps` and PER into the MAC model separately).
  const Segment& segment_for_snr(double snr_db) const {
    return segment_for(snr_db);
  }

 private:
  const Segment& segment_for(double snr_db) const {
    // Segments are few (~a dozen); a backward linear scan beats binary
    // search and favors the common high-SNR operating points.
    std::size_t i = segments_.size() - 1;
    while (i > 0 && snr_db < segments_[i].start_snr_db) --i;
    return segments_[i];
  }

  // Runs the grid + bisection scan, filling segments_.
  void build(bool bracketed);

  LinkModel link_;
  ChannelWidth width_;
  GuardInterval gi_;
  std::vector<Segment> segments_;  // ascending start_snr_db
  std::uint64_t construction_probes_ = 0;
};

}  // namespace acorn::phy
