// Noise-floor and SNR accounting for channel bonding (paper §3.1).
//
// Two facts drive everything in the paper:
//   * total thermal noise grows 3 dB when the band doubles (Eq. 1), while
//     the per-subcarrier noise stays nearly constant (the FFT bin width is
//     312.5 kHz for both widths);
//   * the fixed transmit power is spread over 108 instead of 52 data
//     subcarriers, so energy per subcarrier drops 10*log10(108/52) =
//     3.17 dB — the "3 dB SNR penalty" of CB.
#pragma once

#include "phy/mcs.hpp"

namespace acorn::phy {

/// OFDM subcarrier spacing, identical for 20 and 40 MHz 802.11n channels.
inline constexpr double kSubcarrierSpacingHz = 312.5e3;

/// Thermal noise floor over bandwidth `bandwidth_hz` (paper Eq. 1):
///   N(dBm) = -174 + 10*log10(B) [+ receiver noise figure].
double noise_floor_dbm(double bandwidth_hz, double noise_figure_db = 0.0);

/// Noise power inside one FFT bin (one subcarrier).
double noise_per_subcarrier_dbm(double noise_figure_db = 0.0);

/// Transmit power allocated to a single data subcarrier when the total
/// power `tx_dbm` is split evenly across the width's data subcarriers.
double tx_per_subcarrier_dbm(double tx_dbm, ChannelWidth width);

/// The CB SNR penalty: per-subcarrier SNR difference between a 20 MHz and
/// a 40 MHz channel at equal total Tx (positive, = 10*log10(108/52)).
double cb_snr_penalty_db();

/// Per-subcarrier SNR at the receiver:
///   Tx - path_loss - 10*log10(Nsc) - noise_per_bin.
double snr_per_subcarrier_db(double tx_dbm, double path_loss_db,
                             ChannelWidth width, double noise_figure_db = 0.0);

/// Shannon capacity (paper Eq. 2): C = B * log2(1 + SNR), SNR linear over
/// the whole band. Demonstrates the low-SNR regime where widening the band
/// (and thus halving SNR) shrinks capacity.
double shannon_capacity_bps(double bandwidth_hz, double snr_linear);

/// Whole-band Shannon capacity for a width at given Tx/path loss, using
/// the total-band SNR implied by Eq. 1.
double shannon_capacity_for_width_bps(double tx_dbm, double path_loss_db,
                                      ChannelWidth width,
                                      double noise_figure_db = 0.0);

}  // namespace acorn::phy
