// Link-level abstraction of an 802.11n AP-client link.
//
// Given transmit power, path loss and channel width, produces the
// per-subcarrier SNR, coded BER, PER and goodput for any MCS. MIMO mode is
// implied by the MCS stream count: single-stream MCS run as 2x2 Alamouti
// STBC (diversity + array gain), two-stream MCS as SDM (power split across
// streams plus separation loss). This mirrors the paper's observation that
// the vendor auto-rate picks STBC on poor links and SDM on strong ones.
#pragma once

#include "phy/mcs.hpp"

namespace acorn::phy {

struct LinkConfig {
  /// Receiver noise figure applied on top of thermal noise (dB).
  double noise_figure_db = 5.0;
  /// Std-dev of per-packet SNR jitter (dB); models residual small-scale
  /// variation on a MIMO-stabilised link (paper Fig. 8 shows it is small).
  double shadow_db = 2.5;
  /// MAC payload carried by each PHY frame.
  int payload_bytes = 1500;
  /// Effective SNR gain of 2x2 Alamouti STBC (array + diversity gain).
  double stbc_gain_db = 3.0;
  /// Effective per-stream SNR loss of SDM (3 dB power split + separation).
  double sdm_penalty_db = 6.0;
};

/// The MIMO mode implied by an MCS row (1 stream -> STBC, 2 -> SDM).
MimoMode mode_for(const McsEntry& entry);

class LinkModel {
 public:
  explicit LinkModel(LinkConfig config = {});

  const LinkConfig& config() const { return config_; }

  /// Per-subcarrier reference SNR (single-stream, before MIMO adjustment).
  double snr_db(double tx_dbm, double path_loss_db, ChannelWidth width) const;

  /// SNR after the MIMO-mode adjustment for the given MCS.
  double effective_snr_db(double snr_db, const McsEntry& entry) const;

  /// Coded BER at the given reference SNR for an MCS (includes the
  /// MIMO-mode adjustment and per-packet SNR jitter averaging).
  double coded_ber(const McsEntry& entry, double snr_db) const;

  /// PER (Eq. 6) at the given reference per-subcarrier SNR.
  double per(const McsEntry& entry, double snr_db) const;

  /// PER for a concrete radio state (Tx power, path loss, width).
  double per_at(const McsEntry& entry, double tx_dbm, double path_loss_db,
                ChannelWidth width) const;

  /// Goodput T = (1 - PER) * R for one MCS at the reference SNR.
  double goodput_bps(const McsEntry& entry, ChannelWidth width,
                     GuardInterval gi, double snr_db) const;

 private:
  LinkConfig config_;
};

}  // namespace acorn::phy
