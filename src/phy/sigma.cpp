#include "phy/sigma.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "phy/noise.hpp"

namespace acorn::phy {

double rate_ratio_40_over_20(const McsEntry& entry) {
  const GuardInterval gi = GuardInterval::kLong800ns;
  return entry.rate_bps(ChannelWidth::k40MHz, gi) /
         entry.rate_bps(ChannelWidth::k20MHz, gi);
}

double sigma_at_snr(const LinkModel& link, const McsEntry& entry,
                    double snr20_db) {
  const double per20 = link.per(entry, snr20_db);
  const double per40 = link.per(entry, snr20_db - cb_snr_penalty_db());
  const double deliver40 = 1.0 - per40;
  if (deliver40 <= 0.0) {
    return (1.0 - per20) <= 0.0 ? 1.0
                                : std::numeric_limits<double>::infinity();
  }
  return (1.0 - per20) / deliver40;
}

double sigma(const LinkModel& link, const McsEntry& entry, double tx_dbm,
             double path_loss_db) {
  const double snr20 = link.snr_db(tx_dbm, path_loss_db, ChannelWidth::k20MHz);
  return sigma_at_snr(link, entry, snr20);
}

std::optional<SigmaWindow> sigma_window(const LinkModel& link,
                                        const McsEntry& entry,
                                        double threshold, double snr_lo_db,
                                        double snr_hi_db, double step_db) {
  std::optional<double> enter;
  std::optional<double> exit;
  for (double snr = snr_lo_db; snr <= snr_hi_db; snr += step_db) {
    const double s = sigma_at_snr(link, entry, snr);
    // At very low SNR both PERs are ~1, so sigma is numerically unstable
    // (0/0); the paper treats this regime as sigma ~ 1. Require a minimum
    // delivery probability on the 20 MHz side before counting a crossing.
    const double per20 = link.per(entry, snr);
    if (per20 > 1.0 - 1e-6) continue;
    if (!enter && s >= threshold) enter = snr;
    if (enter && !exit && s < threshold) {
      exit = snr;
      break;
    }
  }
  if (!enter) return std::nullopt;
  return SigmaWindow{*enter, exit.value_or(snr_hi_db)};
}

std::vector<SigmaSweepPoint> sigma_sweep(const LinkModel& link,
                                         const McsEntry& entry,
                                         double path_loss_db, double tx_lo_dbm,
                                         double tx_hi_dbm, int steps,
                                         double cap) {
  std::vector<SigmaSweepPoint> out;
  out.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const double tx =
        tx_lo_dbm + (tx_hi_dbm - tx_lo_dbm) * i / std::max(1, steps - 1);
    double s = sigma(link, entry, tx, path_loss_db);
    if (!std::isfinite(s)) s = cap;
    out.push_back(SigmaSweepPoint{i, tx, std::min(s, cap)});
  }
  return out;
}

}  // namespace acorn::phy
