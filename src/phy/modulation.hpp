// Modulation schemes used by 802.11n and their uncoded AWGN bit-error
// rates. These are the standard Gray-coded coherent-detection formulas
// (Rappaport, "Wireless Communications" — the paper's reference [19]).
#pragma once

#include <string_view>

namespace acorn::phy {

enum class Modulation { kBpsk, kQpsk, kQam16, kQam64 };

/// Bits carried per modulation symbol (1, 2, 4, 6).
int bits_per_symbol(Modulation mod);

/// Constellation size M (2, 4, 16, 64).
int constellation_size(Modulation mod);

std::string_view to_string(Modulation mod);

/// Gaussian tail probability Q(x) = P[N(0,1) > x].
double q_function(double x);

/// Uncoded bit error rate on an AWGN channel given the per-subcarrier
/// symbol SNR (Es/N0, linear). Uses exact BPSK/QPSK expressions and the
/// nearest-neighbour approximation for square QAM.
double uncoded_ber(Modulation mod, double es_over_n0);

/// Same, taking Es/N0 in dB.
double uncoded_ber_db(Modulation mod, double es_over_n0_db);

/// Uncoded BER averaged over per-packet log-normal SNR jitter of
/// `shadow_db` dB std-dev (Gauss-Hermite quadrature, deterministic).
/// Models the residual small-scale variation of a MIMO-stabilised link;
/// shadow_db = 0 reduces to `uncoded_ber_db`.
double uncoded_ber_shadowed_db(Modulation mod, double es_over_n0_db,
                               double shadow_db);

}  // namespace acorn::phy
