#include "phy/mcs.hpp"

#include <array>
#include <stdexcept>

#include "util/units.hpp"

namespace acorn::phy {

double width_hz(ChannelWidth width) {
  return width == ChannelWidth::k20MHz ? 20.0 * util::kMHz : 40.0 * util::kMHz;
}

int data_subcarriers(ChannelWidth width) {
  return width == ChannelWidth::k20MHz ? 52 : 108;
}

std::string to_string(ChannelWidth width) {
  return width == ChannelWidth::k20MHz ? "20MHz" : "40MHz";
}

std::string to_string(MimoMode mode) {
  return mode == MimoMode::kStbc ? "STBC" : "SDM";
}

double McsEntry::rate_bps(ChannelWidth width, GuardInterval gi) const {
  // rate = data_subcarriers * bits_per_symbol * code_rate * streams / T_sym.
  const double t_symbol =
      gi == GuardInterval::kLong800ns ? 4.0e-6 : 3.6e-6;
  return data_subcarriers(width) * bits_per_symbol(modulation) *
         code_rate_value(code_rate) * streams / t_symbol;
}

namespace {

constexpr McsEntry row(int index, int streams, Modulation mod, CodeRate rate) {
  return McsEntry{index, streams, mod, rate};
}

const std::array<McsEntry, 16> kTable = {
    // One spatial stream.
    row(0, 1, Modulation::kBpsk, CodeRate::kRate12),
    row(1, 1, Modulation::kQpsk, CodeRate::kRate12),
    row(2, 1, Modulation::kQpsk, CodeRate::kRate34),
    row(3, 1, Modulation::kQam16, CodeRate::kRate12),
    row(4, 1, Modulation::kQam16, CodeRate::kRate34),
    row(5, 1, Modulation::kQam64, CodeRate::kRate23),
    row(6, 1, Modulation::kQam64, CodeRate::kRate34),
    row(7, 1, Modulation::kQam64, CodeRate::kRate56),
    // Two spatial streams.
    row(8, 2, Modulation::kBpsk, CodeRate::kRate12),
    row(9, 2, Modulation::kQpsk, CodeRate::kRate12),
    row(10, 2, Modulation::kQpsk, CodeRate::kRate34),
    row(11, 2, Modulation::kQam16, CodeRate::kRate12),
    row(12, 2, Modulation::kQam16, CodeRate::kRate34),
    row(13, 2, Modulation::kQam64, CodeRate::kRate23),
    row(14, 2, Modulation::kQam64, CodeRate::kRate34),
    row(15, 2, Modulation::kQam64, CodeRate::kRate56),
};

}  // namespace

std::span<const McsEntry> mcs_table() { return kTable; }

const McsEntry& mcs(int index) {
  if (index < 0 || index > kMaxMcs) throw std::out_of_range("MCS index");
  return kTable[static_cast<std::size_t>(index)];
}

}  // namespace acorn::phy
