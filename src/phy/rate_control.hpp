// Stand-in for the vendor's proprietary auto-rate: an exhaustive search
// over MCS 0-15 (and thereby over the STBC/SDM mode split) that maximizes
// goodput at the link's current SNR. This is exactly how the paper obtains
// its Fig. 6(b) "optimal MCS" points.
#pragma once

#include "phy/link.hpp"

namespace acorn::phy {

struct RateDecision {
  int mcs_index = 0;
  MimoMode mode = MimoMode::kStbc;
  double goodput_bps = 0.0;
  double per = 0.0;
};

/// Best MCS (and implied mode) for a given width at per-subcarrier SNR
/// `snr_db` measured on that width.
RateDecision best_rate(const LinkModel& link, ChannelWidth width,
                       double snr_db,
                       GuardInterval gi = GuardInterval::kLong800ns);

/// Best rate for a concrete radio state (Tx power + path loss).
RateDecision best_rate_at(const LinkModel& link, ChannelWidth width,
                          double tx_dbm, double path_loss_db,
                          GuardInterval gi = GuardInterval::kLong800ns);

/// Width comparison for one link: best-rate goodputs on 20 and 40 MHz at
/// the same Tx. Used by Fig. 6 and by ACORN's opportunistic width switch.
struct WidthComparison {
  RateDecision on20;
  RateDecision on40;
  /// True when CB improves the link's goodput.
  bool cb_wins() const { return on40.goodput_bps > on20.goodput_bps; }
};
WidthComparison compare_widths(const LinkModel& link, double tx_dbm,
                               double path_loss_db,
                               GuardInterval gi = GuardInterval::kLong800ns);

}  // namespace acorn::phy
