#include "phy/modulation.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace acorn::phy {

int bits_per_symbol(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  throw std::invalid_argument("unknown modulation");
}

int constellation_size(Modulation mod) { return 1 << bits_per_symbol(mod); }

std::string_view to_string(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kQpsk: return "QPSK";
    case Modulation::kQam16: return "16QAM";
    case Modulation::kQam64: return "64QAM";
  }
  return "?";
}

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double uncoded_ber(Modulation mod, double es_over_n0) {
  if (es_over_n0 < 0.0) throw std::invalid_argument("negative SNR");
  switch (mod) {
    case Modulation::kBpsk:
      // Es == Eb for BPSK.
      return q_function(std::sqrt(2.0 * es_over_n0));
    case Modulation::kQpsk:
      // Gray-coded QPSK: per-bit error equals BPSK at the same Eb/N0;
      // Eb/N0 = Es/N0 / 2, so Pb = Q(sqrt(Es/N0)).
      return q_function(std::sqrt(es_over_n0));
    case Modulation::kQam16:
    case Modulation::kQam64: {
      const double m = constellation_size(mod);
      const double k = bits_per_symbol(mod);
      // Nearest-neighbour bound for Gray-coded square M-QAM.
      const double arg = std::sqrt(3.0 * es_over_n0 / (m - 1.0));
      const double pb = 4.0 / k * (1.0 - 1.0 / std::sqrt(m)) * q_function(arg);
      return std::min(pb, 0.5);
    }
  }
  throw std::invalid_argument("unknown modulation");
}

double uncoded_ber_db(Modulation mod, double es_over_n0_db) {
  return uncoded_ber(mod, util::db_to_lin(es_over_n0_db));
}

double uncoded_ber_shadowed_db(Modulation mod, double es_over_n0_db,
                               double shadow_db) {
  if (shadow_db <= 0.0) return uncoded_ber_db(mod, es_over_n0_db);
  // 7-point Gauss-Hermite quadrature over N(0, shadow_db^2) dB offsets:
  // E[BER] = (1/sqrt(pi)) * sum w_i * BER(snr + sqrt(2)*sigma*x_i).
  static constexpr std::array<double, 7> kNodes = {
      -2.651961356835233, -1.673551628767471, -0.816287882858965, 0.0,
      0.816287882858965,  1.673551628767471,  2.651961356835233};
  static constexpr std::array<double, 7> kWeights = {
      9.71781245099519e-4, 5.45155828191270e-2, 4.25607252610128e-1,
      8.10264617556807e-1, 4.25607252610128e-1, 5.45155828191270e-2,
      9.71781245099519e-4};
  double acc = 0.0;
  for (std::size_t i = 0; i < kNodes.size(); ++i) {
    const double snr = es_over_n0_db + std::sqrt(2.0) * shadow_db * kNodes[i];
    acc += kWeights[i] * uncoded_ber_db(mod, snr);
  }
  return acc / std::sqrt(M_PI);
}

}  // namespace acorn::phy
