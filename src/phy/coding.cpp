#include "phy/coding.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <span>
#include <stdexcept>

namespace acorn::phy {

double code_rate_value(CodeRate rate) {
  switch (rate) {
    case CodeRate::kRate12: return 1.0 / 2.0;
    case CodeRate::kRate23: return 2.0 / 3.0;
    case CodeRate::kRate34: return 3.0 / 4.0;
    case CodeRate::kRate56: return 5.0 / 6.0;
  }
  throw std::invalid_argument("unknown code rate");
}

std::string_view to_string(CodeRate rate) {
  switch (rate) {
    case CodeRate::kRate12: return "1/2";
    case CodeRate::kRate23: return "2/3";
    case CodeRate::kRate34: return "3/4";
    case CodeRate::kRate56: return "5/6";
  }
  return "?";
}

int free_distance(CodeRate rate) {
  switch (rate) {
    case CodeRate::kRate12: return 10;
    case CodeRate::kRate23: return 6;
    case CodeRate::kRate34: return 5;
    case CodeRate::kRate56: return 4;
  }
  throw std::invalid_argument("unknown code rate");
}

namespace {

// Information-bit weight spectra c_d for the K=7 (133,171) code and its
// standard 802.11 puncturing patterns, starting at d = dfree. Published
// values (Haccoun & Begin, IEEE Trans. Comm. 1989), as used throughout
// the 802.11 link-abstraction literature.
constexpr std::array<double, 10> kSpectrum12 = {
    36, 0, 211, 0, 1404, 0, 11633, 0, 77433, 0};
constexpr std::array<double, 10> kSpectrum23 = {
    3, 70, 285, 1276, 6160, 27128, 117019, 498860, 2103891, 8784123};
constexpr std::array<double, 10> kSpectrum34 = {
    42, 201, 1492, 10469, 62935, 379644, 2253373, 13073811, 75152755,
    428005675};
constexpr std::array<double, 10> kSpectrum56 = {
    92, 528, 8694, 79453, 792114, 7375573, 67884974, 610875423,
    5427275376.0, 47664215639.0};

std::span<const double> spectrum(CodeRate rate) {
  switch (rate) {
    case CodeRate::kRate12: return kSpectrum12;
    case CodeRate::kRate23: return kSpectrum23;
    case CodeRate::kRate34: return kSpectrum34;
    case CodeRate::kRate56: return kSpectrum56;
  }
  throw std::invalid_argument("unknown code rate");
}

// glibc's lgamma writes the global `signgam`, so calling it from
// concurrent PER evaluations is a data race (caught by TSan under the
// parallel sweep driver). The arguments here are tiny integers, so a
// one-time log-factorial table — filled by the same std::lgamma calls
// under the C++ magic-static guard — keeps the values bit-identical and
// the hot path race-free.
double log_factorial(int n) {
  constexpr int kTableSize = 256;
  static const std::array<double, kTableSize> table = [] {
    std::array<double, kTableSize> t{};
    for (int i = 0; i < kTableSize; ++i) t[i] = std::lgamma(i + 1.0);
    return t;
  }();
  return n >= 0 && n < kTableSize ? table[static_cast<std::size_t>(n)]
                                  : std::lgamma(n + 1.0);
}

double log_binomial(int n, int k) {
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

// Pairwise error probability of choosing a codeword at Hamming distance d
// on a BSC with crossover probability p (hard-decision Viterbi).
double pairwise_error(int d, double p) {
  if (p <= 0.0) return 0.0;
  if (p >= 0.5) return 0.5;
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  double sum = 0.0;
  if (d % 2 == 1) {
    for (int k = (d + 1) / 2; k <= d; ++k) {
      sum += std::exp(log_binomial(d, k) + k * log_p + (d - k) * log_q);
    }
  } else {
    sum += 0.5 * std::exp(log_binomial(d, d / 2) + (d / 2) * (log_p + log_q));
    for (int k = d / 2 + 1; k <= d; ++k) {
      sum += std::exp(log_binomial(d, k) + k * log_p + (d - k) * log_q);
    }
  }
  return sum;
}

}  // namespace

double coded_ber(CodeRate rate, double channel_ber) {
  if (channel_ber < 0.0 || channel_ber > 1.0) {
    throw std::invalid_argument("channel BER out of [0,1]");
  }
  const double p = std::min(channel_ber, 0.5);
  const auto cds = spectrum(rate);
  const int dfree = free_distance(rate);
  double pb = 0.0;
  for (std::size_t i = 0; i < cds.size(); ++i) {
    pb += cds[i] * pairwise_error(dfree + static_cast<int>(i), p);
  }
  // The union bound diverges near p = 0.5; residual errors can never make
  // decoded bits worse than a coin flip.
  return std::clamp(pb, 0.0, 0.5);
}

double packet_error_rate(double ber, int payload_bits) {
  if (payload_bits <= 0) throw std::invalid_argument("payload_bits <= 0");
  if (ber <= 0.0) return 0.0;
  if (ber >= 0.5) return 1.0;
  // 1 - (1-b)^L computed stably for tiny b.
  return -std::expm1(static_cast<double>(payload_bits) * std::log1p(-ber));
}

}  // namespace acorn::phy
