#include "phy/rate_table.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <numeric>
#include <span>
#include <utility>

namespace acorn::phy {

namespace {

// The scanned SNR range. Below kLoDb every row's PER is exactly 1 (the
// coded BER clamps to 0.5 and (1-0.5)^payload underflows to 0), so the
// argmax is frozen at its first row; above kHiDb every PER is exactly 0
// and the highest-rate row has won for good. Outside the range the
// boundary segment therefore extends unchanged.
constexpr double kLoDb = -80.0;
constexpr double kHiDb = 100.0;
constexpr double kGridStepDb = 0.1;

}  // namespace

RateTable::RateTable(const LinkModel& link, ChannelWidth width,
                     GuardInterval gi, Construction construction)
    : link_(link), width_(width), gi_(gi) {
  build(construction == Construction::kBracketed);
}

void RateTable::build(bool bracketed) {
  const std::span<const McsEntry> table = mcs_table();
  const int n_rows = static_cast<int>(table.size());

  // Nominal PHY rates bound each row's goodput from above
  // (goodput = (1-PER) * rate), which is what lets the bracketed probe
  // skip rows. by_rate lists rows by descending rate.
  std::vector<double> rate(static_cast<std::size_t>(n_rows));
  std::vector<int> by_rate(static_cast<std::size_t>(n_rows));
  for (int i = 0; i < n_rows; ++i) {
    rate[static_cast<std::size_t>(i)] =
        table[static_cast<std::size_t>(i)].rate_bps(width_, gi_);
  }
  std::iota(by_rate.begin(), by_rate.end(), 0);
  std::stable_sort(by_rate.begin(), by_rate.end(), [&](int a, int b) {
    return rate[static_cast<std::size_t>(a)] >
           rate[static_cast<std::size_t>(b)];
  });

  // Dead-zone pre-pass: per-row goodput is monotone nondecreasing in
  // SNR, so once a row is observed at exactly 0 at some SNR it is
  // exactly 0 at every SNR below. Bisect each row's 0 -> >0 crossing to
  // 0.01 dB and remember the highest observed-dead point; any later
  // probe at or below it returns the exact 0.0 the PER chain would,
  // without running it. ~15 goodput evaluations per row, repaid
  // thousands of times over the grid scan.
  const double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> dead_below(static_cast<std::size_t>(n_rows), kNegInf);
  double all_dead_below = kNegInf;
  if (bracketed) {
    for (int i = 0; i < n_rows; ++i) {
      const auto eval = [&](double snr) {
        ++construction_probes_;
        return link_.goodput_bps(table[static_cast<std::size_t>(i)], width_,
                                 gi_, snr);
      };
      double lo = kLoDb;
      if (eval(lo) != 0.0) continue;  // alive over the whole range
      double hi = kHiDb;
      if (eval(hi) == 0.0) {
        dead_below[static_cast<std::size_t>(i)] = hi;
        continue;
      }
      while (hi - lo > 0.01) {
        const double mid = 0.5 * (lo + hi);
        if (!(mid > lo && mid < hi)) break;
        if (eval(mid) == 0.0) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      dead_below[static_cast<std::size_t>(i)] = lo;
    }
    all_dead_below =
        *std::min_element(dead_below.begin(), dead_below.end());
  }

  // Per-point goodput memo so neither pass of the pruned argmax ever
  // evaluates the PER chain twice for the same row.
  std::vector<double> g(static_cast<std::size_t>(n_rows), 0.0);
  std::vector<char> have(static_cast<std::size_t>(n_rows), 0);
  double cur_snr = 0.0;
  const auto begin_point = [&](double snr) {
    cur_snr = snr;
    std::fill(have.begin(), have.end(), 0);
  };
  const auto probe = [&](int i) {
    const auto s = static_cast<std::size_t>(i);
    if (!have[s]) {
      if (cur_snr <= dead_below[s]) {
        g[s] = 0.0;
      } else {
        g[s] = link_.goodput_bps(table[s], width_, gi_, cur_snr);
        ++construction_probes_;
      }
      have[s] = 1;
    }
    return g[s];
  };

  // Exact winner at cur_snr, matching best_rate bit for bit: the winner
  // is the lowest-index row attaining the maximum goodput (best_rate's
  // strict `>` keeps the first maximizer). Pass 1 finds the max M
  // probing rows by descending rate — once a row's nominal rate drops
  // to M or below, no remaining row can exceed M. Pass 2 scans table
  // order for the first row that attains M, skipping rows whose rate is
  // already below it. `seed` (the previous point's winner) is probed
  // first so M starts high and pass 1 usually stops immediately.
  int seed = 0;
  const auto exact_winner_at = [&]() -> int {
    double m = probe(seed);
    for (const int i : by_rate) {
      if (rate[static_cast<std::size_t>(i)] <= m) break;
      const double gp = probe(i);
      if (gp > m) m = gp;
    }
    for (int i = 0; i < n_rows; ++i) {
      if (rate[static_cast<std::size_t>(i)] < m) continue;
      if (probe(i) == m) {
        seed = i;
        return table[static_cast<std::size_t>(i)].index;
      }
    }
    // Unreachable: the maximizer has rate >= its own goodput == m.
    seed = 0;
    return table[0].index;
  };

  // Winner of one probe point (grid and bisection alike). Where every
  // row is provably dead the all-zero argmax goes to the first row for
  // free — best_rate's strict `>` keeps the first of equals.
  const auto point_winner = [&](double snr) -> int {
    if (!bracketed) {
      construction_probes_ += static_cast<std::uint64_t>(n_rows);
      return best_rate(link_, width_, snr, gi_).mcs_index;
    }
    if (snr <= all_dead_below) return table[0].index;
    begin_point(snr);
    return exact_winner_at();
  };

  std::vector<std::pair<double, int>> boundaries;  // (start snr, winner)

  // Bisect every boundary in (a, b] down to adjacent doubles, recursing
  // when a third winner shows up between two known ones. Appends
  // boundaries in ascending order.
  const auto refine = [&](auto&& self, double a, int wa, double b,
                          int wb) -> void {
    if (wa == wb) return;
    double lo = a;
    int wlo = wa;
    double hi = b;
    while (true) {
      const double mid = 0.5 * (lo + hi);
      if (!(mid > lo && mid < hi)) break;  // adjacent doubles
      const int wm = point_winner(mid);
      if (wm == wlo) {
        lo = mid;
      } else if (wm == wb) {
        hi = mid;
        wb = wm;
      } else {
        self(self, lo, wlo, mid, wm);
        lo = mid;
        wlo = wm;
      }
    }
    boundaries.emplace_back(hi, wb);
  };

  // Coarse grid scan; every winner flip between neighbours is refined.
  // 0.1 dB is far below the spacing of real MCS crossovers, so a winner
  // that appears only inside one grid cell would have to win on an
  // interval narrower than that — the randomized property test guards
  // the assumption.
  int prev_winner = point_winner(kLoDb);
  const int first_winner = prev_winner;
  double prev_snr = kLoDb;
  const int steps = static_cast<int>((kHiDb - kLoDb) / kGridStepDb);
  for (int i = 1; i <= steps; ++i) {
    const double snr = kLoDb + kGridStepDb * i;
    const int w = point_winner(snr);
    if (w != prev_winner) refine(refine, prev_snr, prev_winner, snr, w);
    prev_winner = w;
    prev_snr = snr;
  }

  const auto make_segment = [&](double start, int index) {
    const McsEntry& entry = mcs(index);
    return Segment{start, index, mode_for(entry),
                   entry.rate_bps(width_, gi_)};
  };
  segments_.reserve(boundaries.size() + 1);
  segments_.push_back(
      make_segment(-std::numeric_limits<double>::infinity(), first_winner));
  for (const auto& [snr, index] : boundaries) {
    segments_.push_back(make_segment(snr, index));
  }
}

std::shared_ptr<const RateTable> RateTable::shared(const LinkModel& link,
                                                   ChannelWidth width,
                                                   GuardInterval gi) {
  // Key: the LinkConfig fields PER depends on (noise figure only enters
  // the SNR computation upstream of the table) plus width and GI.
  using Key = std::array<std::uint64_t, 6>;
  const LinkConfig& c = link.config();
  const Key key = {std::bit_cast<std::uint64_t>(c.shadow_db),
                   std::bit_cast<std::uint64_t>(c.stbc_gain_db),
                   std::bit_cast<std::uint64_t>(c.sdm_penalty_db),
                   static_cast<std::uint64_t>(c.payload_bytes),
                   static_cast<std::uint64_t>(width),
                   static_cast<std::uint64_t>(gi)};
  static std::mutex mutex;
  static std::map<Key, std::shared_ptr<const RateTable>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = cache[key];
  if (!slot) slot = std::make_shared<RateTable>(link, width, gi);
  return slot;
}

}  // namespace acorn::phy
