#include "phy/rate_table.hpp"

#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>

namespace acorn::phy {

namespace {

// The scanned SNR range. Below kLoDb every row's PER is exactly 1 (the
// coded BER clamps to 0.5 and (1-0.5)^payload underflows to 0), so the
// argmax is frozen at its first row; above kHiDb every PER is exactly 0
// and the highest-rate row has won for good. Outside the range the
// boundary segment therefore extends unchanged.
constexpr double kLoDb = -80.0;
constexpr double kHiDb = 100.0;
constexpr double kGridStepDb = 0.1;

int argmax_index(const LinkModel& link, ChannelWidth width, GuardInterval gi,
                 double snr_db) {
  return best_rate(link, width, snr_db, gi).mcs_index;
}

}  // namespace

RateTable::RateTable(const LinkModel& link, ChannelWidth width,
                     GuardInterval gi)
    : link_(link), width_(width), gi_(gi) {
  const auto winner = [&](double snr) {
    return argmax_index(link_, width_, gi_, snr);
  };
  std::vector<std::pair<double, int>> boundaries;  // (start snr, winner)

  // Bisect every boundary in (a, b] down to adjacent doubles, recursing
  // when a third winner shows up between two known ones. Appends
  // boundaries in ascending order.
  const auto refine = [&](auto&& self, double a, int wa, double b,
                          int wb) -> void {
    if (wa == wb) return;
    double lo = a;
    int wlo = wa;
    double hi = b;
    while (true) {
      const double mid = 0.5 * (lo + hi);
      if (!(mid > lo && mid < hi)) break;  // adjacent doubles
      const int wm = winner(mid);
      if (wm == wlo) {
        lo = mid;
      } else if (wm == wb) {
        hi = mid;
        wb = wm;
      } else {
        self(self, lo, wlo, mid, wm);
        lo = mid;
        wlo = wm;
      }
    }
    boundaries.emplace_back(hi, wb);
  };

  // Coarse grid scan; every winner flip between neighbours is refined.
  // 0.1 dB is far below the spacing of real MCS crossovers, so a winner
  // that appears only inside one grid cell would have to win on an
  // interval narrower than that — the randomized property test guards
  // the assumption.
  int prev_winner = winner(kLoDb);
  const int first_winner = prev_winner;
  double prev_snr = kLoDb;
  const int steps = static_cast<int>((kHiDb - kLoDb) / kGridStepDb);
  for (int i = 1; i <= steps; ++i) {
    const double snr = kLoDb + kGridStepDb * i;
    const int w = winner(snr);
    if (w != prev_winner) refine(refine, prev_snr, prev_winner, snr, w);
    prev_winner = w;
    prev_snr = snr;
  }

  const auto make_segment = [&](double start, int index) {
    const McsEntry& entry = mcs(index);
    return Segment{start, index, mode_for(entry),
                   entry.rate_bps(width_, gi_)};
  };
  segments_.reserve(boundaries.size() + 1);
  segments_.push_back(
      make_segment(-std::numeric_limits<double>::infinity(), first_winner));
  for (const auto& [snr, index] : boundaries) {
    segments_.push_back(make_segment(snr, index));
  }
}

std::shared_ptr<const RateTable> RateTable::shared(const LinkModel& link,
                                                   ChannelWidth width,
                                                   GuardInterval gi) {
  // Key: the LinkConfig fields PER depends on (noise figure only enters
  // the SNR computation upstream of the table) plus width and GI.
  using Key = std::array<std::uint64_t, 6>;
  const LinkConfig& c = link.config();
  const Key key = {std::bit_cast<std::uint64_t>(c.shadow_db),
                   std::bit_cast<std::uint64_t>(c.stbc_gain_db),
                   std::bit_cast<std::uint64_t>(c.sdm_penalty_db),
                   static_cast<std::uint64_t>(c.payload_bytes),
                   static_cast<std::uint64_t>(width),
                   static_cast<std::uint64_t>(gi)};
  static std::mutex mutex;
  static std::map<Key, std::shared_ptr<const RateTable>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = cache[key];
  if (!slot) slot = std::make_shared<RateTable>(link, width, gi);
  return slot;
}

}  // namespace acorn::phy
