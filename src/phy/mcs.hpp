// The 802.11n Modulation and Coding Scheme (MCS) table for one and two
// spatial streams (MCS 0-15), both channel widths and both guard
// intervals, plus the channel-width vocabulary used across the library.
#pragma once

#include <span>
#include <string>

#include "phy/coding.hpp"
#include "phy/modulation.hpp"

namespace acorn::phy {

/// 20 MHz basic channel or 40 MHz bonded (CB) channel.
enum class ChannelWidth { k20MHz, k40MHz };

/// Bandwidth in Hz of a width.
double width_hz(ChannelWidth width);

/// Number of data subcarriers (52 for 20 MHz, 108 for 40 MHz).
int data_subcarriers(ChannelWidth width);

std::string to_string(ChannelWidth width);

enum class GuardInterval { kLong800ns, kShort400ns };

/// MIMO operating mode (paper §2): SDM doubles streams for rate, STBC
/// trades the second stream for diversity/reliability.
enum class MimoMode { kStbc, kSdm };

std::string to_string(MimoMode mode);

/// One row of the 802.11n MCS table.
struct McsEntry {
  int index = 0;  // 0..15
  int streams = 1;
  Modulation modulation = Modulation::kBpsk;
  CodeRate code_rate = CodeRate::kRate12;

  /// Nominal PHY bit rate in bits/s.
  double rate_bps(ChannelWidth width, GuardInterval gi) const;
};

/// Full MCS 0-15 table.
std::span<const McsEntry> mcs_table();

/// Table row for a given index; throws std::out_of_range for index > 15.
const McsEntry& mcs(int index);

/// Highest single-stream MCS (7) and highest two-stream MCS (15).
inline constexpr int kMaxSingleStreamMcs = 7;
inline constexpr int kMaxMcs = 15;

}  // namespace acorn::phy
