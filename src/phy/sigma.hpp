// The paper's sigma ratio (Eq. 3):
//
//   sigma = (1 - PER20) / (1 - PER40)
//
// CB hurts throughput whenever sigma > R40/R20 (~ 2). This header provides
// sigma evaluation on a link model plus the Table 1 transition-point search
// (the SNR window in which sigma >= 2 for each modulation/code pair).
#pragma once

#include <optional>
#include <vector>

#include "phy/link.hpp"

namespace acorn::phy {

/// Ratio of nominal rates R40/R20 for an MCS (independent of GI).
double rate_ratio_40_over_20(const McsEntry& entry);

/// sigma (Eq. 3) for one link state: the 20 and 40 MHz PERs are evaluated
/// at the per-subcarrier SNRs implied by the same Tx and path loss.
/// Returns +inf when the 40 MHz side delivers no packets at all.
double sigma(const LinkModel& link, const McsEntry& entry, double tx_dbm,
             double path_loss_db);

/// sigma as a function of the 20 MHz per-subcarrier SNR directly; the
/// 40 MHz SNR is lower by the CB penalty.
double sigma_at_snr(const LinkModel& link, const McsEntry& entry,
                    double snr20_db);

/// The SNR window [enter, exit] (in 20 MHz per-subcarrier SNR, dB) where
/// sigma >= threshold; std::nullopt when sigma never reaches the
/// threshold. This regenerates the paper's Table 1: the window rises with
/// modulation aggressiveness and spans roughly 2-3 dB.
struct SigmaWindow {
  double enter_db = 0.0;  // lowest SNR with sigma >= threshold
  double exit_db = 0.0;   // lowest SNR beyond which sigma < threshold again
};
std::optional<SigmaWindow> sigma_window(const LinkModel& link,
                                        const McsEntry& entry,
                                        double threshold = 2.0,
                                        double snr_lo_db = -15.0,
                                        double snr_hi_db = 40.0,
                                        double step_db = 0.05);

/// sigma sweep over a transmit-power index scale (the paper's Fig. 5 uses
/// a 0..100 driver power scale). Values are capped at `cap` as in the
/// paper's plots.
struct SigmaSweepPoint {
  int power_index = 0;
  double tx_dbm = 0.0;
  double sigma = 0.0;
};
std::vector<SigmaSweepPoint> sigma_sweep(const LinkModel& link,
                                         const McsEntry& entry,
                                         double path_loss_db,
                                         double tx_lo_dbm = -10.0,
                                         double tx_hi_dbm = 25.0,
                                         int steps = 101, double cap = 10.0);

}  // namespace acorn::phy
