#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace acorn::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_seq_(other.next_seq_),
      buf_(std::move(other.buf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_seq_ = other.next_seq_;
    buf_ = std::move(other.buf_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) ::close(std::exchange(fd_, -1));
}

Client Client::connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(unix)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::invalid_argument("unix socket path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(" + path + ")");
  }
  Client c;
  c.fd_ = fd;
  return c;
}

Client Client::connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(tcp)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::invalid_argument("bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Client c;
  c.fd_ = fd;
  return c;
}

Client Client::connect(const std::string& endpoint) {
  if (endpoint.rfind("unix:", 0) == 0) {
    return connect_unix(endpoint.substr(5));
  }
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument(
        "endpoint must be unix:/path or host:port, got " + endpoint);
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::stoi(endpoint.substr(colon + 1));
  if (port <= 0 || port > 65535) {
    throw std::invalid_argument("bad port in endpoint " + endpoint);
  }
  return connect_tcp(host.empty() ? "127.0.0.1" : host,
                     static_cast<std::uint16_t>(port));
}

void Client::set_recv_timeout_ms(long ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO)");
  }
}

std::uint32_t Client::send(const Message& msg) {
  const std::uint32_t seq = next_seq_++;
  const std::vector<std::uint8_t> bytes = encode_frame(seq, msg);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write");
    }
    off += static_cast<std::size_t>(n);
  }
  return seq;
}

Frame Client::recv() {
  while (true) {
    if (std::optional<Frame> frame = buf_.next()) return std::move(*frame);
    std::uint8_t chunk[16384];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) throw std::runtime_error("daemon closed the connection");
    throw_errno("read");
  }
}

Message Client::call(const Message& msg) {
  const std::uint32_t seq = send(msg);
  while (true) {
    Frame frame = recv();
    if (frame.seq == seq) return std::move(frame.msg);
  }
}

}  // namespace acorn::service
