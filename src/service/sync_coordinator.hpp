// Fleet-wide group commit for acornd's shared-WAL mode.
//
// Per-shard WAL files serialize durable throughput at the device sync
// ceiling *per shard*: every WlanShard issues its own fdatasync
// (~130-155 us on commodity ext4), so a fleet of hundreds of WLANs
// contends for 6-7k syncs/s of physical budget. The SyncCoordinator
// lifts PR 6's group commit from one shard to the whole fleet: shards
// never touch the disk — they package their pending records, withheld
// replies, and follower subscriptions into a CommitBatch and hand it
// over; a single commit thread drains every queued batch, appends the
// records of *all* shards to one shared segment (eventlog.hpp's
// `seg_<index>.walseg`), and issues ONE write + ONE fdatasync for the
// lot. After the sync it releases each batch in submission order:
// forwards the now-durable records to the batch's `--follow`
// subscribers (followers only ever see durable events), posts the
// withheld replies, and fires the shard's completion hook. While one
// sync is in flight new batches pile up behind it, so coalescing scales
// with load by construction — an idle fleet pays one sync per event,
// a busy one pays one sync per *fleet-wide burst*.
//
// Ordering contract: batches from one shard are released strictly in
// submission order (the queue is FIFO and the commit thread never
// reorders), which preserves the per-connection reply FIFO the shards
// rely on. A batch with no records to write ("barrier" batch) still
// rides the queue for exactly that reason.
//
// Retirement replaces truncation: shards report checkpoint progress
// (note_checkpoint after every successful snapshot), and a closed
// segment is unlinked once every WLAN with records in it has
// checkpointed past its newest ordinal — oldest segment first, so the
// on-disk log is always a contiguous suffix and a removal tombstone
// (seq 0, appended durably by remove_wlan before RemoveWlan replies or
// an id is re-registered) can never outlive the records it fences.
//
// Failure policy mirrors the per-shard WalWriter: a failed fdatasync is
// retried after a short backoff; after kMaxSyncFailures consecutive
// failures the coordinator degrades — loudly — to non-durable
// operation, releasing batches immediately so clients and followers
// are not withheld forever on a dead disk.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/eventlog.hpp"
#include "service/metrics.hpp"

namespace acorn::service {

/// Release callback — same shape as WlanShard::CompletionFn, invoked
/// from the commit thread.
using CommitPostFn =
    std::function<void(std::uint64_t conn_id,
                       std::chrono::steady_clock::time_point t0,
                       std::vector<std::uint8_t> frame)>;

/// One shard's pending group-commit unit.
struct CommitBatch {
  std::uint32_t wlan_id = 0;
  /// Records in seq order. All of them are forwarded to `followers`
  /// once durable; only those with seq > write_from_seq are appended to
  /// the shared segment (the rest are already covered by the shard's
  /// newest snapshot).
  std::vector<WalRecord> records;
  std::uint64_t write_from_seq = 0;
  struct Reply {
    std::uint64_t conn_id = 0;
    std::chrono::steady_clock::time_point t0;
    std::vector<std::uint8_t> frame;
  };
  /// Withheld replies, released in order after the sync.
  std::vector<Reply> replies;
  /// Follower connection ids subscribed to this shard.
  std::vector<std::uint64_t> followers;
  CommitPostFn post;
  /// Fired last (commit thread), durable or degraded — the shard's
  /// in-flight accounting hook. The shard must not be destroyed while
  /// any of its batches are in flight (WlanShard::stop waits for this).
  std::function<void()> on_durable;
  /// Internal (remove_wlan): append a seq-0 removal tombstone for
  /// wlan_id instead of records.
  bool tombstone = false;
};

class SyncCoordinator {
 public:
  struct Options {
    /// State directory holding the `seg_<index>.walseg` files.
    std::string dir;
    /// Rotate to a fresh segment once the current one exceeds this many
    /// durable bytes (tests shrink it to force rotation/retirement).
    std::uint64_t segment_bytes = 64ull << 20;
    ServiceMetrics* metrics = nullptr;
    /// Chatty mode (--log): announce rotation/retirement/degradation.
    bool log = false;
  };

  explicit SyncCoordinator(Options options);
  ~SyncCoordinator();
  SyncCoordinator(const SyncCoordinator&) = delete;
  SyncCoordinator& operator=(const SyncCoordinator&) = delete;

  /// Adopt a recovery scan (before start()): existing segments' per-WLAN
  /// coverage for retirement, and the next free segment index.
  void seed(const SegmentLoadResult& scan);

  void start();
  /// Drains every queued batch (releasing replies), then joins.
  void stop();

  void submit(CommitBatch batch);

  /// Shard `wlan_id`'s newest durable snapshot covers ordinals <= seq;
  /// wakes the commit thread to retire fully-covered segments.
  void note_checkpoint(std::uint32_t wlan_id, std::uint64_t seq);

  /// Durably append a removal tombstone for `wlan_id` and drop its
  /// retirement bookkeeping. Blocks until the tombstone is on disk (or
  /// the coordinator is degraded/stopped): RemoveWlan must not be
  /// acknowledged — and the id must not be re-registered — while a dead
  /// incarnation's records could still replay.
  void remove_wlan(std::uint32_t wlan_id);

  /// True when any live segment (or the open one) still holds records
  /// for `wlan_id` — a re-registration must fence them with remove_wlan.
  bool has_records(std::uint32_t wlan_id) const;

  /// False once the coordinator gave up on the disk; shards then stop
  /// withholding replies (non-durable operation, already logged loudly).
  bool durable() const;

  /// Live (closed, not yet retired) segment count + the open segment.
  std::size_t segment_count() const;

 private:
  void run();
  /// Append + sync + release one drained run of batches.
  void commit(std::vector<CommitBatch>& batches);
  /// Give up on the disk: close the writer, go non-durable, loudly.
  void degrade(const char* why);
  /// Open the next segment if none is open (mutex_ held).
  bool ensure_writer_locked();
  void maybe_rotate();
  void retire_covered();

  const Options options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<CommitBatch> queue_;
  bool running_ = false;
  bool retire_pending_ = false;
  std::atomic<bool> durable_{true};

  // The segment writer itself is commit-thread-only; the retirement
  // bookkeeping below it is guarded by mutex_ (note_checkpoint /
  // has_records / segment_count race the commit thread).
  WalSegmentWriter writer_;
  std::uint64_t next_index_ = 1;
  bool open_segment_ = false;
  /// Per-WLAN newest ordinal in the *open* segment.
  std::map<std::uint32_t, std::uint64_t> open_cover_;
  /// Closed segments' coverage, ascending index.
  std::map<std::uint64_t, std::map<std::uint32_t, std::uint64_t>> closed_;
  /// Per-WLAN newest snapshot-covered ordinal.
  std::map<std::uint32_t, std::uint64_t> checkpoints_;

  std::thread thread_;
};

}  // namespace acorn::service
