// Per-WLAN shard worker of acornd.
//
// Each registered WLAN gets one shard: a single-writer task owning the
// Wlan model, the live association and channel assignment, and an
// incremental CachedOracle. A shard executes either on its own
// dedicated thread (the thread-per-WLAN reference mode) or — the
// default — as a util::PooledExecutor task, where one of M pooled
// workers drains its mailbox per scheduling pass and a central timer
// wheel drives its epoch deadline; both modes run the same drain logic
// and produce byte-identical state. Protocol events (join/leave/SNR/load) are applied
// immediately — Algorithm 1 associates a joining client on the spot —
// while the expensive work (Algorithm 2 channel re-allocation plus the
// opportunistic width fallback of core/width_switch) runs in periodic
// *reconfiguration epochs*, so a burst of events costs one epoch, not
// one full recompute per event. An epoch also re-probes — through the
// same Algorithm 1 trial association — exactly those clients whose
// links changed since the previous epoch (SNR updates mark them dirty),
// so mobility drives incremental re-association rather than a full
// re-association sweep.
//
// The CachedOracle/NetSnapshot pair is reused across epochs and config
// queries for as long as the association and link budget are unchanged;
// any state-changing event invalidates it (the snapshot's precomputed
// SNRs would be stale) and the next epoch rebuilds it once.
//
// Epoch hysteresis: Algorithm 2 already stops below the paper's 5%
// aggregate-improvement epsilon; the width fallback adds its own — a
// bonded AP switches its operating width only when the alternative wins
// by `width_hysteresis` (default 1.05), so a client hovering at the
// 20/40 crossover cannot make the AP flap every epoch.
//
// Durability: when a state directory is configured, the shard writes a
// versioned snapshot (write-temp + fsync + atomic rename) at the end of
// every epoch and once more on clean shutdown; see snapshot.hpp. The
// events *between* epochs are covered by a per-shard write-ahead log
// (eventlog.hpp): every applied mutating message is appended to the log
// and its reply is withheld until a group-commit fsync — issued when
// the mailbox drains, or after `wal_flush_us` under sustained backlog,
// so a pipelined burst pays one fsync, not one per event. A failed
// fsync withholds the batch and retries after a backoff; only after
// repeated failures is the WAL disabled (loudly), downgrading the
// shard to non-durable operation rather than hanging its clients. The
// epoch snapshot supersedes the
// log, which is truncated right after a successful snapshot write.
// Recovery = snapshot + replay of the log suffix (records whose ordinal
// exceeds the snapshot's events_applied) through apply_locked; the
// deterministic pipeline makes the result byte-identical to the
// pre-crash state.
//
// Followers: a connection subscribed via FollowLog is attached to every
// shard. On attach the shard emits its full state as a SnapshotFrame;
// afterwards every durable record is forwarded as a LogRecordFrame (in
// fsync batches, so a follower only ever sees acknowledged events).
// Epochs the timer starts internally are logged and forwarded as
// synthesized ForceReconfigure records, keeping replay and followers
// deterministic.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/controller.hpp"
#include "core/oracle_cache.hpp"
#include "service/eventlog.hpp"
#include "service/metrics.hpp"
#include "service/snapshot.hpp"
#include "service/wire.hpp"
#include "sim/deployment_file.hpp"
#include "util/worker_pool.hpp"

namespace acorn::service {

class SyncCoordinator;

struct ShardOptions {
  /// Reconfiguration period; <= 0 disables the timer (epochs then run
  /// only on ForceReconfigure and shutdown).
  double epoch_s = 1.0;
  /// Required advantage factor before the width fallback switches a
  /// bonded AP's operating width.
  double width_hysteresis = 1.05;
  /// Snapshot + WAL directory; empty disables persistence.
  std::string state_dir;
  /// Group-commit bound in microseconds: replies to logged events are
  /// withheld until the WAL fsyncs. The shard syncs as soon as its
  /// mailbox drains (an idle sync costs no batching opportunity);
  /// under a sustained backlog this bounds how long records may sit
  /// unflushed before a mid-backlog sync (0 = sync per event).
  std::uint32_t wal_flush_us = 200;
  /// Emit a one-line epoch summary to stderr.
  bool log_epochs = false;
  /// Pooled execution: when set, the shard runs as a task of this
  /// executor (one of its M workers drains the mailbox per pass) instead
  /// of owning a dedicated thread. Null keeps the thread-per-WLAN
  /// reference mode. The executor must outlive the shard's stop().
  util::PooledExecutor* executor = nullptr;
  /// When set, every reconfiguration epoch's wall time is recorded here
  /// (daemon-wide percentiles for --log and stats consumers).
  LatencyHistogram* epoch_latency = nullptr;
  /// Shared-WAL mode: when set, the shard never opens a private WAL
  /// file — it packages records + withheld replies into CommitBatches
  /// for this coordinator's fleet-wide group commit, and reports
  /// snapshot checkpoints for segment retirement. The coordinator must
  /// outlive the shard's stop(). Null keeps the per-shard WAL.
  SyncCoordinator* coordinator = nullptr;
  /// Group-commit observability (wal_syncs / coalesced events / sync
  /// latency). Per-shard mode records here on every local fsync; in
  /// shared mode the coordinator owns the recording.
  ServiceMetrics* metrics = nullptr;
};

/// Shard-local counters, aggregated into the daemon's StatsReply.
struct ShardCounters {
  std::uint64_t events = 0;
  std::uint64_t epochs = 0;
  std::uint64_t snapshots_written = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t wal_flushes = 0;
  std::uint64_t channel_switches = 0;
  std::uint64_t width_switches = 0;
  std::uint64_t assoc_changes = 0;
  /// Oracle evaluations spent in Algorithm 2 (64-bit at the source;
  /// clamped non-negative when folded in from AllocationResult).
  std::uint64_t alloc_evaluations = 0;
  std::uint64_t oracle_cell_evals = 0;
  std::uint64_t oracle_cell_hits = 0;
  std::uint64_t oracle_share_evals = 0;
  std::uint64_t oracle_share_hits = 0;
  double last_epoch_ms = 0.0;
};

class WlanShard : public util::PooledExecutor::Task {
 public:
  struct Job {
    enum class Kind {
      kMessage,
      kAttachFollower,  // conn_id subscribes: snapshot now, records after
      kDetachFollower,  // conn_id went away
    };
    Kind kind = Kind::kMessage;
    std::uint64_t conn_id = 0;
    std::uint32_t seq = 0;
    std::chrono::steady_clock::time_point t0;
    Message msg;
  };
  /// Invoked (from the shard thread) with the encoded reply frame.
  using CompletionFn = std::function<void(
      std::uint64_t conn_id, std::chrono::steady_clock::time_point t0,
      std::vector<std::uint8_t> reply_frame)>;

  /// Build from registration or recovery state (`state.association`
  /// empty means a fresh WLAN: everyone unassociated, channels seeded
  /// deterministically from the deployment's RNG seed), then replay the
  /// WAL suffix (`replay` records whose seq exceeds the snapshot's
  /// events_applied, applied through apply_locked). Throws
  /// std::invalid_argument on a malformed deployment or snapshot.
  WlanShard(ShardOptions options, WlanSnapshot state, CompletionFn post,
            std::vector<WalRecord> replay = {});
  ~WlanShard();

  WlanShard(const WlanShard&) = delete;
  WlanShard& operator=(const WlanShard&) = delete;

  /// Checkpoints the current state (snapshot write + WAL truncate, so a
  /// fresh registration or a finished recovery is durable immediately),
  /// then spawns the worker thread.
  void start();
  /// Drains pending jobs, flushes withheld replies, writes a final
  /// snapshot, joins the thread.
  void stop();

  void submit(Job job);

  std::uint32_t id() const { return wlan_id_; }
  ShardCounters counters() const;
  /// Current durable state (what the next snapshot would contain).
  WlanSnapshot state_snapshot() const;

 private:
  void run();
  /// PooledExecutor::Task: one scheduling pass — the same drain logic as
  /// run(), bounded per pass for fairness, returning the next deadline
  /// (epoch timer or WAL retry) for the executor's timer wheel.
  std::chrono::steady_clock::time_point run_pass() override;
  /// Drain the remaining mailbox on the caller's thread (pooled-mode
  /// stop(), after the executor detach).
  void drain_inline();
  void process(Job& job);
  Message apply_locked(const Message& msg);
  void publish_counters_locked();
  void run_epoch();
  void run_epoch_locked();
  void ensure_oracle();
  void invalidate_oracle();
  void write_state_snapshot();
  bool write_snapshot_locked();
  WlanSnapshot build_snapshot_locked() const;
  std::vector<int> clients_of_locked(int ap) const;
  /// True for the message types the WAL records (state mutators).
  static bool loggable(const Message& msg);
  /// Mode dispatch: flush_wal (per-shard WAL) or flush_shared (shared
  /// segments via the SyncCoordinator).
  void flush(bool need_sync, bool final = false);
  /// Release withheld replies + forward durable records to followers.
  /// `need_sync` false when a snapshot already made everything durable.
  /// On fsync failure nothing is released or forwarded (followers must
  /// only see durable events): the flush retries after a backoff, and
  /// only after repeated failures is the WAL disabled — loudly — so
  /// replies and followers are not withheld forever on a dead disk.
  /// `final` (shutdown) skips the retries and always releases.
  void flush_wal(bool need_sync, bool final = false);
  /// Shared-mode counterpart: hands the pending records/replies to the
  /// coordinator as one CommitBatch (released on its commit thread, in
  /// submission order). With nothing in flight and no sync needed, the
  /// batch short-circuits to a direct release; otherwise even a no-sync
  /// release rides the queue so replies cannot overtake an in-flight
  /// batch. `final` (shutdown) waits for every in-flight batch.
  void flush_shared(bool need_sync, bool final = false);
  /// Post pending records to followers + pending replies, in order, on
  /// the calling thread (the tail of flush_wal, shared by the
  /// shared-mode short-circuit).
  void release_pending();
  /// Blocks until the coordinator has released every batch this shard
  /// submitted (shutdown: the shard must outlive its in-flight hooks).
  void wait_shared_drain();
  bool shared_mode() const { return options_.coordinator != nullptr; }
  bool shared_inflight() const {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    return commits_inflight_ > 0;
  }
  std::chrono::steady_clock::time_point flush_deadline() const;

  const ShardOptions options_;
  const std::uint32_t wlan_id_;
  const std::string deployment_text_;

  // Model + controller state; guarded by state_mutex_ (the shard thread
  // writes, stats/state queries from other threads read).
  mutable std::mutex state_mutex_;
  sim::DeploymentSpec spec_;
  sim::Wlan wlan_;
  core::AcornController controller_;
  net::Association assoc_;
  std::vector<net::Channel> allocated_;
  std::vector<net::Channel> operating_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> loss_overrides_;
  std::map<std::uint32_t, double> loads_;
  /// Clients whose links changed since the last epoch; each gets an
  /// Algorithm 1 re-association probe when the next epoch runs.
  std::set<int> dirty_clients_;
  std::uint64_t epoch_ = 0;
  std::uint64_t events_applied_ = 0;
  ShardCounters counters_;
  std::shared_ptr<core::CachedOracle> oracle_;

  // Copy of counters_ (+ live oracle stats) republished after every
  // event/epoch so counters() never waits on an in-progress epoch.
  mutable std::mutex counters_mutex_;
  ShardCounters published_counters_;

  CompletionFn post_;

  // Write-ahead log + group-commit state. Everything below is touched
  // only from the shard thread (construction/start/stop excepted, when
  // no worker is running), so it needs no lock of its own.
  WalWriter wal_;
  /// events_applied_ value the newest on-disk snapshot covers; records
  /// with seq <= this are redundant and are not appended.
  std::uint64_t wal_base_seq_ = 0;
  struct PendingReply {
    std::uint64_t conn_id = 0;
    std::chrono::steady_clock::time_point t0;
    std::vector<std::uint8_t> frame;
  };
  /// Replies withheld until the records they acknowledge are durable
  /// (WAL fsync or snapshot). FIFO, so per-connection order holds even
  /// for interleaved non-logged requests.
  std::vector<PendingReply> pending_replies_;
  /// Durable-records-in-waiting for follower forwarding.
  std::vector<WalRecord> pending_records_;
  std::uint64_t pending_max_seq_ = 0;
  bool wal_dirty_ = false;
  std::chrono::steady_clock::time_point first_unflushed_;
  /// Consecutive failed WAL fsyncs; past a small bound the log is
  /// disabled instead of withholding replies forever on a sick disk.
  std::uint32_t wal_sync_failures_ = 0;
  /// No flush retry before this instant (set after a failed fsync so a
  /// sick disk is not hammered in a tight loop).
  std::chrono::steady_clock::time_point wal_retry_after_{};
  /// Records appended since the last successful local fsync (per-shard
  /// mode batch-size observability).
  std::uint64_t wal_unsynced_records_ = 0;
  /// Shared mode: batches handed to the coordinator whose on_durable
  /// hook has not fired yet. Guarded by inflight_mutex_ (the hook runs
  /// on the coordinator's commit thread).
  std::uint32_t commits_inflight_ = 0;
  mutable std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  /// Follower connections attached via Job::Kind::kAttachFollower.
  std::vector<std::uint64_t> followers_;
  /// Suppresses disk writes while the constructor replays the WAL.
  bool replaying_ = false;

  // Mailbox.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> jobs_;
  bool running_ = false;
  /// Pooled mode: attached to options_.executor (start() set it up,
  /// stop() has not yet detached). Guarded by queue_mutex_.
  bool pool_attached_ = false;
  std::chrono::steady_clock::time_point next_epoch_;
  std::thread thread_;
};

}  // namespace acorn::service
