// acornd: the long-running multi-WLAN controller daemon.
//
// One nonblocking poll(2) event loop accepts TCP (127.0.0.1) and Unix
// domain connections, reassembles length-prefixed wire frames
// (service/wire.hpp) and dispatches them:
//
//   * registry operations (register/remove WLAN), stats queries and
//     shutdown are handled inline on the loop thread;
//   * WLAN-scoped events (join/leave/SNR/load/reconfigure/config) are
//     forwarded to that WLAN's shard worker (service/shard.hpp), whose
//     reply comes back through a completion queue + wake pipe and is
//     written out by the loop.
//
// A framing error on a connection (garbage length prefix, unknown type,
// truncated body) closes that connection: once the stream is
// desynchronized no later frame boundary can be trusted.
//
// On startup with a state directory, every `wlan_*.snap` snapshot is
// recovered into a live shard — followed by a replay of that WLAN's
// write-ahead log suffix (service/eventlog.hpp), so events acknowledged
// after the last epoch snapshot survive a crash too — before the
// listeners open, so clients see the pre-crash state from the first
// accepted connection.
//
// Replication: a connection that sends FollowLog becomes a *follower* —
// it receives every shard's state as a SnapshotFrame and from then on
// every durable (fsynced) event as a LogRecordFrame, in order.
// Conversely a daemon started with `follow` set connects to that
// endpoint as a warm standby: it applies the streamed snapshot + log
// records through the same deterministic shard pipeline, so its state
// is byte-identical to the leader's durable state.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/metrics.hpp"
#include "service/shard.hpp"
#include "service/sync_coordinator.hpp"
#include "service/wire.hpp"

namespace acorn::service {

/// Durability layout. kShared (the default) funnels every shard's
/// records through one SyncCoordinator into shared `seg_<n>.walseg`
/// files — one fdatasync acknowledges the whole fleet's pending batches
/// instead of one per shard. kPerShard keeps PR 6's private
/// `wlan_<id>.wal` per shard as the reference implementation. Both
/// modes recover each other's files, so a state dir can move between
/// them across restarts.
enum class WalMode {
  kPerShard,
  kShared,
};

struct DaemonConfig {
  /// Snapshot + WAL directory (created if missing); empty = no
  /// persistence.
  std::string state_dir;
  /// Bind a TCP listener on 127.0.0.1:`tcp_port` (0 = ephemeral port,
  /// readable via Daemon::tcp_port()). Disabled when `tcp` is false.
  bool tcp = false;
  std::uint16_t tcp_port = 0;
  /// Bind a Unix-domain listener at this path; empty disables it.
  std::string unix_path;
  /// Shard reconfiguration period (seconds); <= 0 = only on demand.
  double epoch_s = 1.0;
  double width_hysteresis = 1.05;
  /// WAL group-commit window (microseconds); see ShardOptions.
  std::uint32_t wal_flush_us = 200;
  /// Durability layout; see WalMode.
  WalMode wal_mode = WalMode::kShared;
  /// Shared mode: rotate to a fresh segment past this many bytes
  /// (tests shrink it to exercise rotation + retirement).
  std::uint64_t wal_segment_bytes = 64ull << 20;
  /// Shard execution model: -1 = pooled over hardware_concurrency()
  /// workers (the default), N > 0 = pooled over N workers, 0 = the
  /// thread-per-WLAN reference mode (one dedicated thread per shard).
  /// Pooled execution multiplexes every registered WLAN over the fixed
  /// worker set, so one daemon can host thousands of small WLANs.
  int workers = -1;
  /// Leader endpoint (`unix:/path` or `host:port`) to follow as a warm
  /// standby; empty = normal (leader) operation. A following daemon
  /// mirrors the leader's WLANs with epoch timers disabled — epochs
  /// arrive as replicated ForceReconfigure records.
  std::string follow;
  /// Emit per-epoch and periodic stats log lines to stderr.
  bool log = false;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Recover snapshots, bind listeners, spawn the event loop. Throws
  /// std::system_error when a listener cannot be bound.
  void start();
  /// Graceful shutdown: stop the loop, drain shards (each writes a
  /// final snapshot), close sockets. Idempotent.
  void stop();
  /// Async-signal-safe: flag the event loop to exit (atomic store plus
  /// one wake-pipe write). Call stop() afterwards — or let the
  /// destructor — to drain shards and release resources.
  void request_stop();
  /// Block until a Shutdown request (or stop()) terminates the loop.
  void wait();

  bool running() const;
  /// Actual TCP port (after an ephemeral bind), 0 when TCP is off.
  int tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return config_.unix_path; }

  /// Aggregated daemon + shard statistics (same data as a StatsReply).
  StatsReply stats() const;

  /// Registered WLAN ids, ascending.
  std::vector<std::uint32_t> wlan_ids() const;
  /// Current durable state of one WLAN (what its next snapshot would
  /// contain), or nullopt when the id is not registered.
  std::optional<WlanSnapshot> wlan_state(std::uint32_t wlan_id) const;

 private:
  struct Conn {
    int fd = -1;
    FrameBuffer in;
    std::vector<std::uint8_t> out;
    std::size_t out_pos = 0;
  };
  struct Completion {
    std::uint64_t conn_id = 0;
    std::chrono::steady_clock::time_point t0;
    std::vector<std::uint8_t> frame;
  };

  void loop();
  void accept_all(int listen_fd);
  void handle_readable(std::uint64_t conn_id);
  void dispatch(std::uint64_t conn_id, Frame frame,
                std::chrono::steady_clock::time_point t0);
  void reply_now(std::uint64_t conn_id, std::uint32_t seq, Message msg,
                 std::chrono::steady_clock::time_point t0);
  void enqueue_bytes(std::uint64_t conn_id, std::vector<std::uint8_t> bytes);
  void flush(Conn& conn);
  void close_conn(std::uint64_t conn_id);
  void drain_completions();
  void post_completion(Completion c);
  void recover_shards();
  WlanShard* find_shard(std::uint32_t wlan_id);
  ShardOptions shard_options(double epoch_s);
  std::unique_ptr<WlanShard> make_shard(ShardOptions opts, WlanSnapshot state,
                                        std::vector<WalRecord> replay = {});
  void follow_loop();
  /// One leader session: connect, subscribe, apply frames until error
  /// or shutdown. Returns normally on clean EOF/desync (caller retries).
  void follow_session();

  DaemonConfig config_;
  ServiceMetrics metrics_;
  /// Pooled shard executor (null in thread-per-WLAN reference mode).
  /// Created before any shard starts, destroyed after every shard has
  /// stopped (shards detach through it).
  std::unique_ptr<util::PooledExecutor> executor_;
  /// Shared-WAL group-commit thread (null in per-shard mode or without
  /// a state dir). Started before any shard, stopped after every shard
  /// has stopped (shards wait out their in-flight batches in stop()).
  std::unique_ptr<SyncCoordinator> coordinator_;

  int tcp_listen_fd_ = -1;
  int unix_listen_fd_ = -1;
  int tcp_port_ = 0;
  int wake_fds_[2] = {-1, -1};

  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  bool shutdown_requested_ = false;  // loop thread only

  std::map<std::uint64_t, Conn> conns_;  // loop thread only
  std::uint64_t next_conn_id_ = 1;       // loop thread only
  /// Connections subscribed via FollowLog; loop thread only.
  std::set<std::uint64_t> follower_conns_;
  /// Listeners are not polled before this instant (set after a hard
  /// accept() failure such as EMFILE); loop thread only.
  std::chrono::steady_clock::time_point listener_pause_until_{};

  mutable std::mutex shards_mutex_;
  std::map<std::uint32_t, std::unique_ptr<WlanShard>> shards_;

  std::mutex comp_mutex_;
  std::vector<Completion> completions_;

  std::thread follow_thread_;  // runs follow_loop() when config_.follow set
};

}  // namespace acorn::service
