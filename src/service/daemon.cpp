#include "service/daemon.hpp"

#include "service/client.hpp"
#include "service/eventlog.hpp"
#include "service/snapshot.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace acorn::service {

namespace {

/// A client that pipelines requests (QueryConfig replies can be large)
/// but never reads its responses would otherwise grow the per-connection
/// output buffer without bound; past this many unread bytes the
/// connection is dropped.
constexpr std::size_t kMaxConnOutBytes = 8u << 20;

/// How long to stop polling a listener after a hard accept() failure
/// (e.g. EMFILE) — the fd stays readable, so re-polling immediately
/// would busy-spin at 100% CPU.
constexpr auto kAcceptBackoff = std::chrono::milliseconds(100);

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Daemon::Daemon(DaemonConfig config) : config_(std::move(config)) {}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  if (running_.load()) return;

  if (config_.workers != 0 && !executor_) {
    const int workers =
        config_.workers > 0
            ? config_.workers
            : std::max(1, static_cast<int>(
                              std::thread::hardware_concurrency()));
    executor_ = std::make_unique<util::PooledExecutor>(workers);
  }

  if (!config_.state_dir.empty()) {
    ::mkdir(config_.state_dir.c_str(), 0755);  // EEXIST is fine
    if (config_.wal_mode == WalMode::kShared) {
      SyncCoordinator::Options co;
      co.dir = config_.state_dir;
      co.segment_bytes = config_.wal_segment_bytes;
      co.metrics = &metrics_;
      co.log = config_.log;
      coordinator_ = std::make_unique<SyncCoordinator>(std::move(co));
    }
    recover_shards();
  }

  if (::pipe(wake_fds_) != 0) throw_errno("pipe");
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);

  if (config_.tcp) {
    tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_listen_fd_ < 0) throw_errno("socket(tcp)");
    const int one = 1;
    ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(config_.tcp_port);
    if (::bind(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(tcp_listen_fd_, 64) != 0) {
      throw_errno("bind/listen(tcp)");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    tcp_port_ = static_cast<int>(ntohs(addr.sin_port));
    set_nonblocking(tcp_listen_fd_);
  }

  if (!config_.unix_path.empty()) {
    unix_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_listen_fd_ < 0) throw_errno("socket(unix)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw std::invalid_argument("unix socket path too long");
    }
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(config_.unix_path.c_str());  // stale socket from a crash
    if (::bind(unix_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(unix_listen_fd_, 64) != 0) {
      throw_errno("bind/listen(unix)");
    }
    set_nonblocking(unix_listen_fd_);
  }

  running_.store(true);
  loop_thread_ = std::thread([this] { loop(); });
  if (!config_.follow.empty()) {
    follow_thread_ = std::thread([this] { follow_loop(); });
  }
}

void Daemon::request_stop() {
  if (running_.exchange(false)) {
    const ssize_t ignored [[maybe_unused]] = ::write(wake_fds_[1], "x", 1);
  }
}

void Daemon::stop() {
  request_stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  if (follow_thread_.joinable()) follow_thread_.join();

  {
    const std::lock_guard<std::mutex> lock(shards_mutex_);
    for (auto& [id, shard] : shards_) shard->stop();
    shards_.clear();
  }
  // Every shard has stopped (each waited out its in-flight commit
  // batches), so the coordinator's queue is quiescent; drain and join
  // it before the worker set goes.
  if (coordinator_) {
    coordinator_->stop();
    coordinator_.reset();
  }
  executor_.reset();
  for (auto& [id, conn] : conns_) ::close(conn.fd);
  conns_.clear();
  if (tcp_listen_fd_ >= 0) ::close(std::exchange(tcp_listen_fd_, -1));
  if (unix_listen_fd_ >= 0) {
    ::close(std::exchange(unix_listen_fd_, -1));
    ::unlink(config_.unix_path.c_str());
  }
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(std::exchange(fd, -1));
  }
}

void Daemon::wait() {
  if (loop_thread_.joinable()) loop_thread_.join();
}

bool Daemon::running() const { return running_.load(); }

ShardOptions Daemon::shard_options(double epoch_s) {
  ShardOptions opts;
  opts.epoch_s = epoch_s;
  opts.width_hysteresis = config_.width_hysteresis;
  opts.state_dir = config_.state_dir;
  opts.wal_flush_us = config_.wal_flush_us;
  opts.log_epochs = config_.log;
  opts.executor = executor_.get();
  opts.epoch_latency = &metrics_.epoch_latency;
  opts.coordinator = coordinator_.get();
  opts.metrics = &metrics_;
  return opts;
}

std::unique_ptr<WlanShard> Daemon::make_shard(ShardOptions opts,
                                              WlanSnapshot state,
                                              std::vector<WalRecord> replay) {
  return std::make_unique<WlanShard>(
      std::move(opts), std::move(state),
      [this](std::uint64_t conn_id, std::chrono::steady_clock::time_point t0,
             std::vector<std::uint8_t> frame) {
        post_completion(Completion{conn_id, t0, std::move(frame)});
      },
      std::move(replay));
}

void Daemon::recover_shards() {
  // Followers recover their local state too, but with epoch timers off:
  // once the leader stream attaches, epochs arrive as log records.
  const double epoch_s = config_.follow.empty() ? config_.epoch_s : 0.0;

  // Both modes replay both layouts, so a state dir can move between
  // --wal-mode settings across restarts without losing acknowledged
  // events: the per-WLAN files are the pre-shared-mode layout (and the
  // shared mode's upgrade input), the segments the shared layout.
  SegmentLoadResult segments = load_wal_segments(config_.state_dir);
  if (!segments.clean) {
    std::fprintf(stderr,
                 "acornd: shared WAL tail torn/corrupt, replaying the "
                 "intact prefix\n");
  }
  if (coordinator_) {
    coordinator_->seed(segments);
    coordinator_->start();
  }

  for (WlanSnapshot& snap : load_snapshots(config_.state_dir)) {
    const std::uint32_t id = snap.wlan_id;
    try {
      WalLoadResult wal = load_wal(config_.state_dir, id);
      if (!wal.clean) {
        std::fprintf(stderr,
                     "acornd: wlan %u: WAL tail torn/corrupt, replaying "
                     "%zu intact records\n",
                     id, wal.records.size());
      }
      std::vector<WalRecord> replay = std::move(wal.records);
      if (const auto seg = segments.records.find(id);
          seg != segments.records.end()) {
        // Merge the layouts by ordinal; the replay loop skips whichever
        // duplicates the snapshot already covers.
        replay.insert(replay.end(),
                      std::make_move_iterator(seg->second.begin()),
                      std::make_move_iterator(seg->second.end()));
        std::stable_sort(replay.begin(), replay.end(),
                         [](const WalRecord& a, const WalRecord& b) {
                           return a.seq < b.seq;
                         });
      }
      auto shard = make_shard(shard_options(epoch_s), std::move(snap),
                              std::move(replay));
      shard->start();
      const std::lock_guard<std::mutex> lock(shards_mutex_);
      shards_.emplace(id, std::move(shard));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "acornd: cannot recover wlan %u: %s\n", id,
                   e.what());
    }
  }

  if (coordinator_) {
    // Records for WLANs with no snapshot belong to removed (or never
    // durably registered) ids — the tombstone that fenced them may have
    // died with the crash. Re-assert it so a later re-registration of
    // the id cannot merge a dead incarnation's records.
    for (const auto& [id, records] : segments.records) {
      bool live;
      {
        const std::lock_guard<std::mutex> lock(shards_mutex_);
        live = shards_.count(id) != 0;
      }
      if (!live) coordinator_->remove_wlan(id);
    }
  } else {
    // Per-shard mode: every recovered shard just checkpointed past the
    // merged replay in start(), so the segments are fully superseded —
    // and records of unknown ids are removed with them, matching this
    // mode's delete-on-remove semantics. Dropping the files keeps a
    // later switch back to shared mode from re-reading stale history.
    bool removed = false;
    for (const SegmentCoverage& seg : segments.segments) {
      ::unlink(wal_segment_path(config_.state_dir, seg.index).c_str());
      removed = true;
    }
    if (removed) fsync_dir(config_.state_dir);
  }
}

void Daemon::post_completion(Completion c) {
  {
    const std::lock_guard<std::mutex> lock(comp_mutex_);
    completions_.push_back(std::move(c));
  }
  // A full pipe means a wake byte is already pending; EAGAIN is fine.
  const ssize_t ignored [[maybe_unused]] = ::write(wake_fds_[1], "x", 1);
}

void Daemon::loop() {
  using clock = std::chrono::steady_clock;
  auto last_log = clock::now();
  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> pfd_conn;  // conn id per pollfd (0 = listener)

  while (running_.load()) {
    pfds.clear();
    pfd_conn.clear();
    const auto add = [&](int fd, short events, std::uint64_t conn_id) {
      pfds.push_back(pollfd{fd, events, 0});
      pfd_conn.push_back(conn_id);
    };
    add(wake_fds_[0], POLLIN, 0);
    const auto now = clock::now();
    const bool listeners_paused = now < listener_pause_until_;
    if (!listeners_paused) {
      if (tcp_listen_fd_ >= 0) add(tcp_listen_fd_, POLLIN, 0);
      if (unix_listen_fd_ >= 0) add(unix_listen_fd_, POLLIN, 0);
    }
    bool out_pending = false;
    for (auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (conn.out_pos < conn.out.size()) {
        events |= POLLOUT;
        out_pending = true;
      }
      add(conn.fd, events, id);
    }

    if (shutdown_requested_ && !out_pending) break;
    int timeout_ms = shutdown_requested_ ? 20 : (config_.log ? 1000 : -1);
    if (listeners_paused) {
      const auto wait = std::chrono::ceil<std::chrono::milliseconds>(
          listener_pause_until_ - now);
      const int wait_ms = static_cast<int>(
          std::max<std::chrono::milliseconds::rep>(1, wait.count()));
      if (timeout_ms < 0 || wait_ms < timeout_ms) timeout_ms = wait_ms;
    }
    const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) break;

    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const short revents = pfds[i].revents;
      if (revents == 0) continue;
      const int fd = pfds[i].fd;
      if (fd == wake_fds_[0]) {
        std::uint8_t drain[256];
        while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
        }
        drain_completions();
      } else if (fd == tcp_listen_fd_ || fd == unix_listen_fd_) {
        accept_all(fd);
      } else {
        const std::uint64_t conn_id = pfd_conn[i];
        const auto it = conns_.find(conn_id);
        if (it == conns_.end()) continue;
        if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
            (revents & POLLIN) == 0) {
          close_conn(conn_id);
          continue;
        }
        if ((revents & POLLOUT) != 0) flush(it->second);
        if ((revents & POLLIN) != 0) handle_readable(conn_id);
      }
    }

    if (config_.log) {
      const auto now = clock::now();
      if (now - last_log >= std::chrono::seconds(10)) {
        last_log = now;
        const StatsReply s = stats();
        const std::vector<std::uint64_t> eh =
            metrics_.epoch_latency.snapshot();
        const double avg_batch =
            s.wal_syncs > 0 ? static_cast<double>(s.wal_coalesced_events) /
                                  static_cast<double>(s.wal_syncs)
                            : 0.0;
        std::fprintf(stderr,
                     "acornd: %u wlans / %d workers, %llu frames, "
                     "%llu events, %llu epochs (p50 %.1f ms, p99 %.1f ms), "
                     "%llu snapshots, %llu wal syncs "
                     "(avg batch %.1f, p99 sync %.0f us)\n",
                     s.num_wlans,
                     executor_ ? executor_->workers() : -1,
                     static_cast<unsigned long long>(s.frames_rx),
                     static_cast<unsigned long long>(s.events_total),
                     static_cast<unsigned long long>(s.epochs_total),
                     latency_percentile_us(eh, 0.5) / 1e3,
                     latency_percentile_us(eh, 0.99) / 1e3,
                     static_cast<unsigned long long>(s.snapshots_written),
                     static_cast<unsigned long long>(s.wal_syncs), avg_batch,
                     latency_percentile_us(s.wal_sync_us_log2, 0.99));
      }
    }
  }
  running_.store(false);
}

void Daemon::accept_all(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;  // that one connection is gone; keep draining
      }
      // Hard failure (EMFILE/ENFILE/ENOBUFS/...): the listener stays
      // readable, so pause polling it instead of busy-spinning.
      std::fprintf(stderr, "acornd: accept: %s\n", std::strerror(errno));
      listener_pause_until_ = std::chrono::steady_clock::now() +
                              kAcceptBackoff;
      return;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    conns_.emplace(next_conn_id_, Conn{fd, {}, {}, 0});
    ++next_conn_id_;
  }
}

void Daemon::handle_readable(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  std::uint8_t buf[16384];
  while (true) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn(conn_id);  // EOF or hard error
    return;
  }
  while (true) {
    const auto t0 = std::chrono::steady_clock::now();
    std::optional<Frame> frame;
    try {
      frame = conn.in.next();
    } catch (const WireError& e) {
      // The stream is desynchronized: answer with an error (best
      // effort) and drop the connection.
      metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      reply_now(conn_id, 0,
                ErrorReply{static_cast<std::uint16_t>(ErrorCode::kBadArgument),
                           e.what()},
                t0);
      if (auto it2 = conns_.find(conn_id); it2 != conns_.end()) {
        flush(it2->second);
      }
      close_conn(conn_id);
      return;
    }
    if (!frame) return;
    metrics_.frames_rx.fetch_add(1, std::memory_order_relaxed);
    dispatch(conn_id, std::move(*frame), t0);
    if (conns_.find(conn_id) == conns_.end()) return;  // dispatch closed it
  }
}

void Daemon::dispatch(std::uint64_t conn_id, Frame frame,
                      std::chrono::steady_clock::time_point t0) {
  metrics_.events_total.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t seq = frame.seq;

  if (auto* reg = std::get_if<RegisterWlan>(&frame.msg)) {
    std::unique_ptr<WlanShard> shard;
    {
      const std::lock_guard<std::mutex> lock(shards_mutex_);
      if (shards_.count(reg->wlan_id) != 0) {
        reply_now(conn_id, seq,
                  ErrorReply{static_cast<std::uint16_t>(
                                 ErrorCode::kAlreadyRegistered),
                             "wlan id already registered"},
                  t0);
        return;
      }
    }
    // Re-registration of an id whose records still sit in shared WAL
    // segments: append a durable tombstone first, so a crash can never
    // merge the dead incarnation's records (per-WLAN ordinals restart
    // at zero) into the new one's replay.
    if (coordinator_ && coordinator_->has_records(reg->wlan_id)) {
      coordinator_->remove_wlan(reg->wlan_id);
    }
    try {
      WlanSnapshot fresh;
      fresh.wlan_id = reg->wlan_id;
      fresh.deployment = reg->deployment;
      shard = make_shard(shard_options(config_.epoch_s), std::move(fresh));
    } catch (const std::exception& e) {
      reply_now(conn_id, seq,
                ErrorReply{static_cast<std::uint16_t>(
                               ErrorCode::kBadDeployment),
                           e.what()},
                t0);
      return;
    }
    shard->start();
    WlanShard* raw = shard.get();
    {
      const std::lock_guard<std::mutex> lock(shards_mutex_);
      shards_.emplace(reg->wlan_id, std::move(shard));
    }
    // Followers that subscribed before this WLAN existed get its
    // snapshot now and its log records from here on.
    for (const std::uint64_t follower : follower_conns_) {
      raw->submit(WlanShard::Job{WlanShard::Job::Kind::kAttachFollower,
                                 follower, 0, t0, Message{}});
    }
    reply_now(conn_id, seq, OkReply{static_cast<std::int32_t>(reg->wlan_id)},
              t0);
    return;
  }

  if (auto* rem = std::get_if<RemoveWlan>(&frame.msg)) {
    std::unique_ptr<WlanShard> shard;
    {
      const std::lock_guard<std::mutex> lock(shards_mutex_);
      const auto it = shards_.find(rem->wlan_id);
      if (it != shards_.end()) {
        shard = std::move(it->second);
        shards_.erase(it);
      }
    }
    if (!shard) {
      reply_now(conn_id, seq,
                ErrorReply{static_cast<std::uint16_t>(ErrorCode::kUnknownWlan),
                           "unknown wlan id"},
                t0);
      return;
    }
    shard->stop();
    if (!config_.state_dir.empty()) {
      remove_snapshot(config_.state_dir, rem->wlan_id);
      remove_wal(config_.state_dir, rem->wlan_id);
      // Persist the unlinks: a power cut must not resurrect the WLAN.
      fsync_dir(config_.state_dir);
    }
    // Shared mode: fence the removed WLAN's segment records with a
    // durable tombstone before acknowledging (the reply promises the
    // removal survives a crash — including against id reuse).
    if (coordinator_) coordinator_->remove_wlan(rem->wlan_id);
    // Tell followers to tear the WLAN down too. record_seq 0 marks a
    // control record (not part of any shard's event ordinals).
    if (!follower_conns_.empty()) {
      const std::vector<std::uint8_t> bytes = encode_frame(
          0, LogRecordFrame{rem->wlan_id, 0,
                            encode_payload(0, RemoveWlan{rem->wlan_id})});
      for (const std::uint64_t follower : follower_conns_) {
        enqueue_bytes(follower, bytes);
      }
    }
    reply_now(conn_id, seq, OkReply{}, t0);
    return;
  }

  if (std::get_if<FollowLog>(&frame.msg) != nullptr) {
    reply_now(conn_id, seq, OkReply{}, t0);
    follower_conns_.insert(conn_id);
    const std::lock_guard<std::mutex> lock(shards_mutex_);
    for (auto& [id, shard] : shards_) {
      shard->submit(WlanShard::Job{WlanShard::Job::Kind::kAttachFollower,
                                   conn_id, 0, t0, Message{}});
    }
    return;
  }

  if (std::get_if<QueryStats>(&frame.msg) != nullptr) {
    reply_now(conn_id, seq, stats(), t0);
    return;
  }

  if (std::get_if<Shutdown>(&frame.msg) != nullptr) {
    reply_now(conn_id, seq, OkReply{}, t0);
    shutdown_requested_ = true;
    return;
  }

  // Everything else is WLAN-scoped: route to the shard.
  std::uint32_t wlan_id = 0;
  std::visit(
      [&wlan_id](const auto& m) {
        if constexpr (requires { m.wlan_id; }) wlan_id = m.wlan_id;
      },
      frame.msg);
  WlanShard* shard = find_shard(wlan_id);
  if (shard == nullptr) {
    reply_now(conn_id, seq,
              ErrorReply{static_cast<std::uint16_t>(ErrorCode::kUnknownWlan),
                         "unknown wlan id"},
              t0);
    return;
  }
  shard->submit(WlanShard::Job{WlanShard::Job::Kind::kMessage, conn_id, seq,
                               t0, std::move(frame.msg)});
}

WlanShard* Daemon::find_shard(std::uint32_t wlan_id) {
  const std::lock_guard<std::mutex> lock(shards_mutex_);
  const auto it = shards_.find(wlan_id);
  return it == shards_.end() ? nullptr : it->second.get();
}

void Daemon::reply_now(std::uint64_t conn_id, std::uint32_t seq, Message msg,
                       std::chrono::steady_clock::time_point t0) {
  metrics_.request_latency.record(std::chrono::steady_clock::now() - t0);
  enqueue_bytes(conn_id, encode_frame(seq, msg));
}

void Daemon::enqueue_bytes(std::uint64_t conn_id,
                           std::vector<std::uint8_t> bytes) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // client went away; drop the reply
  Conn& conn = it->second;
  if (conn.out_pos == conn.out.size()) {
    conn.out.clear();
    conn.out_pos = 0;
  }
  conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
  flush(conn);
  if (conn.out.size() - conn.out_pos > kMaxConnOutBytes) {
    std::fprintf(stderr,
                 "acornd: dropping connection %llu: %zu unread reply "
                 "bytes buffered\n",
                 static_cast<unsigned long long>(conn_id),
                 conn.out.size() - conn.out_pos);
    close_conn(conn_id);
  }
}

void Daemon::flush(Conn& conn) {
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_pos,
                              conn.out.size() - conn.out_pos);
    if (n > 0) {
      conn.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN (poll will retry) or a hard error (POLLIN path closes)
  }
  if (conn.out_pos == conn.out.size()) {
    conn.out.clear();
    conn.out_pos = 0;
  }
}

void Daemon::close_conn(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::close(it->second.fd);
  conns_.erase(it);
  if (follower_conns_.erase(conn_id) != 0) {
    const std::lock_guard<std::mutex> lock(shards_mutex_);
    for (auto& [id, shard] : shards_) {
      shard->submit(WlanShard::Job{WlanShard::Job::Kind::kDetachFollower,
                                   conn_id, 0,
                                   std::chrono::steady_clock::now(),
                                   Message{}});
    }
  }
}

void Daemon::drain_completions() {
  std::vector<Completion> batch;
  {
    const std::lock_guard<std::mutex> lock(comp_mutex_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    metrics_.request_latency.record(std::chrono::steady_clock::now() - c.t0);
    enqueue_bytes(c.conn_id, std::move(c.frame));
  }
}

StatsReply Daemon::stats() const {
  StatsReply s;
  s.frames_rx = metrics_.frames_rx.load(std::memory_order_relaxed);
  s.events_total = metrics_.events_total.load(std::memory_order_relaxed);
  s.protocol_errors =
      metrics_.protocol_errors.load(std::memory_order_relaxed);
  s.latency_us_log2 = metrics_.request_latency.snapshot();
  s.wal_syncs = metrics_.wal_syncs.load(std::memory_order_relaxed);
  s.wal_coalesced_events =
      metrics_.wal_coalesced_events.load(std::memory_order_relaxed);
  s.wal_sync_us_log2 = metrics_.wal_sync_latency.snapshot();
  s.wal_batch_log2 = metrics_.wal_batch_events.snapshot();
  const std::lock_guard<std::mutex> lock(shards_mutex_);
  s.num_wlans = static_cast<std::uint32_t>(shards_.size());
  for (const auto& [id, shard] : shards_) {
    const ShardCounters c = shard->counters();
    s.epochs_total += c.epochs;
    s.snapshots_written += c.snapshots_written;
    s.wal_records += c.wal_records;
    s.wal_flushes += c.wal_flushes;
    s.channel_switches += c.channel_switches;
    s.width_switches += c.width_switches;
    s.assoc_changes += c.assoc_changes;
    s.alloc_evaluations += c.alloc_evaluations;
    s.oracle_cell_evals += c.oracle_cell_evals;
    s.oracle_cell_hits += c.oracle_cell_hits;
    s.oracle_share_evals += c.oracle_share_evals;
    s.oracle_share_hits += c.oracle_share_hits;
    if (c.last_epoch_ms > 0.0) s.last_epoch_ms = c.last_epoch_ms;
  }
  return s;
}

std::vector<std::uint32_t> Daemon::wlan_ids() const {
  const std::lock_guard<std::mutex> lock(shards_mutex_);
  std::vector<std::uint32_t> ids;
  ids.reserve(shards_.size());
  for (const auto& [id, shard] : shards_) ids.push_back(id);
  return ids;
}

std::optional<WlanSnapshot> Daemon::wlan_state(std::uint32_t wlan_id) const {
  const std::lock_guard<std::mutex> lock(shards_mutex_);
  const auto it = shards_.find(wlan_id);
  if (it == shards_.end()) return std::nullopt;
  return it->second->state_snapshot();
}

void Daemon::follow_session() {
  Client client = Client::connect(config_.follow);
  // Short read timeout so shutdown is noticed promptly; an expired wait
  // surfaces as EAGAIN and just re-checks running_.
  client.set_recv_timeout_ms(100);
  client.send(Message{FollowLog{}});
  // Per-WLAN high-water mark of applied record ordinals. Records at or
  // below it are duplicates from a re-subscription; a gap above it means
  // the stream desynchronized and the session restarts from a fresh
  // snapshot.
  std::map<std::uint32_t, std::uint64_t> applied;
  while (running_.load()) {
    Frame frame;
    try {
      frame = client.recv();
    } catch (const std::system_error& e) {
      if (e.code() == std::errc::resource_unavailable_try_again ||
          e.code() == std::errc::operation_would_block ||
          e.code() == std::errc::timed_out) {
        continue;
      }
      throw;
    }

    if (auto* sf = std::get_if<SnapshotFrame>(&frame.msg)) {
      WlanSnapshot snap = decode_snapshot(sf->snapshot);
      const std::uint32_t id = snap.wlan_id;
      const std::uint64_t base_seq = snap.events_applied;
      // Retire any previous incarnation *before* the replacement is
      // built: stop() writes a final snapshot, which must not clobber
      // the fresh checkpoint the new shard writes in start() (both
      // would also hold the same wlan_<id>.wal open). A standby
      // restarted after a resubscribe would otherwise recover the old
      // shard's stale state and discard every streamed record above it
      // as a sequence gap.
      std::unique_ptr<WlanShard> old;
      {
        const std::lock_guard<std::mutex> lock(shards_mutex_);
        const auto it = shards_.find(id);
        if (it != shards_.end()) {
          old = std::move(it->second);
          shards_.erase(it);
        }
      }
      if (old) old->stop();
      applied.erase(id);
      auto shard = make_shard(shard_options(0.0), std::move(snap));
      shard->start();
      {
        const std::lock_guard<std::mutex> lock(shards_mutex_);
        shards_[id] = std::move(shard);
      }
      applied[id] = base_seq;
      continue;
    }

    if (auto* rec = std::get_if<LogRecordFrame>(&frame.msg)) {
      const std::uint32_t id = rec->wlan_id;
      const Frame payload = decode_payload(rec->payload);
      if (rec->record_seq == 0) {
        // Control record, outside any shard's event ordinals.
        if (std::get_if<RemoveWlan>(&payload.msg) != nullptr) {
          std::unique_ptr<WlanShard> victim;
          {
            const std::lock_guard<std::mutex> lock(shards_mutex_);
            const auto it = shards_.find(id);
            if (it != shards_.end()) {
              victim = std::move(it->second);
              shards_.erase(it);
            }
          }
          if (victim) victim->stop();
          if (!config_.state_dir.empty()) {
            remove_snapshot(config_.state_dir, id);
            remove_wal(config_.state_dir, id);
            fsync_dir(config_.state_dir);
          }
          if (coordinator_) coordinator_->remove_wlan(id);
          applied.erase(id);
        }
        continue;
      }
      const auto it = applied.find(id);
      if (it == applied.end()) continue;   // no snapshot seen for this WLAN
      if (rec->record_seq <= it->second) continue;  // duplicate
      if (rec->record_seq != it->second + 1) {
        throw std::runtime_error("replicated log gap (expected " +
                                 std::to_string(it->second + 1) + ", got " +
                                 std::to_string(rec->record_seq) + ")");
      }
      WlanShard* shard = find_shard(id);
      if (shard == nullptr) {
        // The ordinal map tracks this WLAN but no shard exists: the
        // session state diverged. Advancing the high-water mark here
        // would count the record as applied without applying it, so
        // tear the session down and resubscribe for a fresh snapshot.
        throw std::runtime_error("replicated log record for wlan " +
                                 std::to_string(id) +
                                 " with no live shard");
      }
      // conn id 0 never matches a live connection, so the shard's
      // reply completion is dropped on the floor — the leader already
      // answered the originating client.
      shard->submit(WlanShard::Job{WlanShard::Job::Kind::kMessage, 0, 0,
                                   std::chrono::steady_clock::now(),
                                   payload.msg});
      it->second = rec->record_seq;
      continue;
    }
    // OkReply acknowledging the subscription (or anything else): ignore.
  }
}

void Daemon::follow_loop() {
  while (running_.load()) {
    try {
      follow_session();
    } catch (const std::exception& e) {
      if (running_.load()) {
        std::fprintf(stderr, "acornd: follow %s: %s (reconnecting)\n",
                     config_.follow.c_str(), e.what());
      }
    }
    for (int i = 0; i < 5 && running_.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

}  // namespace acorn::service
