// Per-shard write-ahead event log for acornd.
//
// Snapshots (snapshot.hpp) persist full WLAN state once per epoch, which
// leaves every event applied *between* epochs volatile: a crash loses
// them even though the daemon already acknowledged them to the client.
// The WAL closes that hole. Each shard appends every state-mutating wire
// message (ClientJoin, ClientLeave, SnrUpdate, LoadUpdate,
// ForceReconfigure) to `<dir>/wlan_<id>.wal` *before* the reply is
// released, and recovery replays the log suffix on top of the newest
// snapshot. Because the whole controller pipeline is deterministic,
// replaying the same records reproduces byte-identical state.
//
// File layout: a fixed header, then records back to back.
//
//   header:  [u32 magic "ACWL"][u16 version]
//   record:  [u32 payload_len][u64 seq][payload][u64 fnv1a]
//
// `payload` is a wire payload (version/type/seq/body — the bytes
// encode_payload produces, no length prefix), so the WAL reuses the wire
// codec verbatim. `seq` is the shard's events-applied ordinal after the
// record's message was applied; recovery replays only records with
// seq > snapshot.events_applied, which makes a crash *between* the epoch
// snapshot rename and the log truncation harmless (the stale prefix is
// skipped, not replayed twice). The trailing checksum is the same FNV-1a
// the snapshot trailer uses, computed over the record's header bytes and
// payload.
//
// Appends are buffered in memory and hit the disk in one write+fsync per
// `sync()` — the group-commit flush the shard batches acknowledgements
// behind. A crash can therefore tear the final record (partial write) or
// lose buffered-but-unsynced records; both only affect events whose
// replies were never released, so an *acknowledged* event is always
// durable. `load_wal` stops at the first torn, corrupt, or out-of-order
// record and returns the valid prefix.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace acorn::service {

inline constexpr std::uint32_t kWalMagic = 0x4c574341;  // "ACWL"
inline constexpr std::uint16_t kWalVersion = 1;

/// One replayable event: a wire payload plus its events-applied ordinal.
struct WalRecord {
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
};

struct WalLoadResult {
  std::vector<WalRecord> records;
  /// False when the scan stopped early (torn tail after a crash, header
  /// or checksum corruption) — `records` still holds the valid prefix.
  bool clean = true;
};

/// `<dir>/wlan_<id>.wal`, shared by the writer and recovery.
std::string wal_path(const std::string& dir, std::uint32_t wlan_id);

/// Delete a WLAN's log (after an explicit RemoveWlan).
void remove_wal(const std::string& dir, std::uint32_t wlan_id);

/// Read and verify a log. A missing file is an empty, clean log.
WalLoadResult load_wal(const std::string& dir, std::uint32_t wlan_id);

/// Serialize one record (header + payload + checksum) — exposed so tests
/// can craft logs byte-for-byte.
std::vector<std::uint8_t> encode_wal_record(std::uint64_t seq,
                                            std::span<const std::uint8_t>
                                                payload);

/// Buffered appender. Not thread-safe: owned by one shard thread.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter() { close(); }
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Open (creating if absent) `<dir>/wlan_<id>.wal` for appending.
  /// Returns false on I/O failure, leaving the writer closed.
  bool open(const std::string& dir, std::uint32_t wlan_id);
  bool is_open() const { return fd_ >= 0; }

  /// Queue one record in the in-memory buffer (no syscall). The header
  /// is queued first on an empty file.
  void append(std::uint64_t seq, std::span<const std::uint8_t> payload);

  /// Flush the buffer to disk and fsync — the group-commit barrier.
  /// Returns false on I/O failure. The buffer is retained for retry,
  /// and a partially written tail is truncated off the file first so a
  /// retry can never leave a torn record in front of live ones; if the
  /// truncate itself fails the writer closes (is_open() goes false)
  /// rather than risk appending after an untrustworthy tail.
  bool sync();

  /// Drop all log contents (buffered and on disk): the snapshot that
  /// was just written covers them. Returns false on I/O failure.
  bool reset();

  std::size_t buffered_bytes() const { return buf_.size(); }

  void close();

 private:
  int fd_ = -1;
  std::uint64_t file_size_ = 0;  // bytes durably on disk
  std::vector<std::uint8_t> buf_;
};

}  // namespace acorn::service
