// Per-shard write-ahead event log for acornd.
//
// Snapshots (snapshot.hpp) persist full WLAN state once per epoch, which
// leaves every event applied *between* epochs volatile: a crash loses
// them even though the daemon already acknowledged them to the client.
// The WAL closes that hole. Each shard appends every state-mutating wire
// message (ClientJoin, ClientLeave, SnrUpdate, LoadUpdate,
// ForceReconfigure) to `<dir>/wlan_<id>.wal` *before* the reply is
// released, and recovery replays the log suffix on top of the newest
// snapshot. Because the whole controller pipeline is deterministic,
// replaying the same records reproduces byte-identical state.
//
// File layout: a fixed header, then records back to back.
//
//   header:  [u32 magic "ACWL"][u16 version]
//   record:  [u32 payload_len][u64 seq][payload][u64 fnv1a]
//
// `payload` is a wire payload (version/type/seq/body — the bytes
// encode_payload produces, no length prefix), so the WAL reuses the wire
// codec verbatim. `seq` is the shard's events-applied ordinal after the
// record's message was applied; recovery replays only records with
// seq > snapshot.events_applied, which makes a crash *between* the epoch
// snapshot rename and the log truncation harmless (the stale prefix is
// skipped, not replayed twice). The trailing checksum is the same FNV-1a
// the snapshot trailer uses, computed over the record's header bytes and
// payload.
//
// Appends are buffered in memory and hit the disk in one write+fsync per
// `sync()` — the group-commit flush the shard batches acknowledgements
// behind. A crash can therefore tear the final record (partial write) or
// lose buffered-but-unsynced records; both only affect events whose
// replies were never released, so an *acknowledged* event is always
// durable. `load_wal` stops at the first torn, corrupt, or out-of-order
// record and returns the valid prefix.
// Shared-WAL mode (the fleet default) replaces the per-WLAN files with
// per-state-dir *segments*: `seg_<index>.walseg` files holding records
// from every shard, each tagged with its WLAN id
//
//   header:  [u32 magic "ACWS"][u16 version][u64 index]
//   record:  [u32 payload_len][u32 wlan_id][u64 seq][payload][u64 fnv1a]
//
// so one fdatasync (issued by service::SyncCoordinator) acknowledges
// every shard's pending batch instead of one per shard. `seq` is still
// the owning shard's events-applied ordinal: recovery scans the segments
// in index order, splits records per WLAN, and replays exactly as in
// per-shard mode. Truncation becomes *retirement*: a closed segment is
// deleted once every WLAN with records in it has checkpointed (written a
// snapshot) past its newest record — oldest segment first, so the live
// segments always form a contiguous index suffix. A record with seq 0 is
// a removal *tombstone*: it fences off every earlier record of its WLAN
// (RemoveWlan, or a re-registration reusing the id — per-WLAN ordinals
// restart, so a dead incarnation's records must never merge into a new
// one's replay).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace acorn::service {

inline constexpr std::uint32_t kWalMagic = 0x4c574341;  // "ACWL"
inline constexpr std::uint16_t kWalVersion = 1;
inline constexpr std::uint32_t kWalSegMagic = 0x53574341;  // "ACWS"
inline constexpr std::uint16_t kWalSegVersion = 1;

/// One replayable event: a wire payload plus its events-applied ordinal.
struct WalRecord {
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
};

struct WalLoadResult {
  std::vector<WalRecord> records;
  /// False when the scan stopped early (torn tail after a crash, header
  /// or checksum corruption) — `records` still holds the valid prefix.
  bool clean = true;
};

/// Fsync a directory so a just-created/renamed/unlinked entry survives a
/// power cut (fsyncing the file alone does not persist its dir entry).
/// Returns false on failure; callers treat that as the write failing.
bool fsync_dir(const std::string& dir);

/// `<dir>/wlan_<id>.wal`, shared by the writer and recovery.
std::string wal_path(const std::string& dir, std::uint32_t wlan_id);

/// Delete a WLAN's log (after an explicit RemoveWlan).
void remove_wal(const std::string& dir, std::uint32_t wlan_id);

/// Read and verify a log. A missing file is an empty, clean log.
WalLoadResult load_wal(const std::string& dir, std::uint32_t wlan_id);

/// Serialize one record (header + payload + checksum) — exposed so tests
/// can craft logs byte-for-byte.
std::vector<std::uint8_t> encode_wal_record(std::uint64_t seq,
                                            std::span<const std::uint8_t>
                                                payload);

/// Buffered appender. Not thread-safe: owned by one shard thread.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter() { close(); }
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Open (creating if absent) `<dir>/wlan_<id>.wal` for appending.
  /// Returns false on I/O failure, leaving the writer closed.
  bool open(const std::string& dir, std::uint32_t wlan_id);
  bool is_open() const { return fd_ >= 0; }

  /// Queue one record in the in-memory buffer (no syscall). The header
  /// is queued first on an empty file.
  void append(std::uint64_t seq, std::span<const std::uint8_t> payload);

  /// Flush the buffer to disk and fsync — the group-commit barrier.
  /// Returns false on I/O failure. The buffer is retained for retry,
  /// and a partially written tail is truncated off the file first so a
  /// retry can never leave a torn record in front of live ones; if the
  /// truncate itself fails the writer closes (is_open() goes false)
  /// rather than risk appending after an untrustworthy tail.
  bool sync();

  /// Drop all log contents (buffered and on disk): the snapshot that
  /// was just written covers them. Returns false on I/O failure.
  bool reset();

  std::size_t buffered_bytes() const { return buf_.size(); }

  void close();

 private:
  int fd_ = -1;
  std::uint64_t file_size_ = 0;  // bytes durably on disk
  std::vector<std::uint8_t> buf_;
};

// ---- Shared, segmented WAL ----------------------------------------------

/// `<dir>/seg_<index>.walseg`.
std::string wal_segment_path(const std::string& dir, std::uint64_t index);

/// Serialize one segment record (header + payload + checksum).
std::vector<std::uint8_t> encode_segment_record(
    std::uint32_t wlan_id, std::uint64_t seq,
    std::span<const std::uint8_t> payload);

/// Per-WLAN newest record ordinal in one segment — the retirement unit:
/// the segment may be deleted once every entry is covered by that WLAN's
/// snapshot.
struct SegmentCoverage {
  std::uint64_t index = 0;
  std::map<std::uint32_t, std::uint64_t> max_seq;
};

struct SegmentLoadResult {
  /// Records split per WLAN, in scan order (ascending segment index,
  /// file order within a segment) — per-WLAN seq-ascending by
  /// construction, ready for WlanShard replay.
  std::map<std::uint32_t, std::vector<WalRecord>> records;
  /// One entry per segment file found, ascending index.
  std::vector<SegmentCoverage> segments;
  /// First index not yet used (new writers start here; appending to a
  /// possibly-torn tail segment is never attempted).
  std::uint64_t next_index = 1;
  /// False when any segment stopped early (torn tail, bit rot); the
  /// valid prefix of that segment is kept and later segments are still
  /// scanned — per-WLAN ordinal contiguity at replay guards against a
  /// mid-history hole inventing state.
  bool clean = true;
};

/// Scan `dir` for segments and split their records per WLAN. A missing
/// or empty directory is an empty, clean result.
SegmentLoadResult load_wal_segments(const std::string& dir);

/// Buffered appender for one shared segment. Owned by the
/// SyncCoordinator's commit thread; same torn-tail discipline as
/// WalWriter (failed writes truncate back to the durable boundary).
class WalSegmentWriter {
 public:
  WalSegmentWriter() = default;
  ~WalSegmentWriter() { close(); }
  WalSegmentWriter(const WalSegmentWriter&) = delete;
  WalSegmentWriter& operator=(const WalSegmentWriter&) = delete;

  /// Create `<dir>/seg_<index>.walseg` (O_EXCL: an existing file means
  /// an index collision and fails) and fsync the directory so the
  /// segment cannot vanish in a power cut after its records were
  /// acknowledged. Returns false on I/O failure, leaving the writer
  /// closed.
  bool open(const std::string& dir, std::uint64_t index);
  bool is_open() const { return fd_ >= 0; }
  std::uint64_t index() const { return index_; }
  /// Bytes durably on disk (rotation bound input).
  std::uint64_t file_size() const { return file_size_; }
  std::size_t buffered_bytes() const { return buf_.size(); }

  /// Queue one tagged record (no syscall).
  void append(std::uint32_t wlan_id, std::uint64_t seq,
              std::span<const std::uint8_t> payload);

  /// Flush the buffer + fdatasync — the fleet-wide group-commit
  /// barrier. Retry-safe exactly like WalWriter::sync().
  bool sync();

  void close();

 private:
  int fd_ = -1;
  std::uint64_t index_ = 0;
  std::uint64_t file_size_ = 0;
  std::vector<std::uint8_t> buf_;
};

}  // namespace acorn::service
