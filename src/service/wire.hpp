// Wire protocol of the `acornd` controller service.
//
// Frames are length-prefixed binary blobs on a byte stream (TCP or Unix
// domain): a little-endian u32 payload length, then the payload
//
//   [u16 version][u16 type][u32 seq][body]
//
// `seq` is chosen by the client and echoed verbatim in the response so
// requests may be pipelined. Every multi-byte integer is little-endian;
// doubles travel as the little-endian bit pattern of their IEEE-754
// representation, so a round trip is bit-exact. Strings and vectors are
// a u32 element count followed by the elements.
//
// Decoding is strict: unknown version or type, truncated bodies,
// trailing bytes, or a length prefix above kMaxFramePayload all throw
// WireError — the daemon drops the connection, since a framing error
// means the rest of the stream cannot be trusted. A *short* buffer is
// not an error: FrameBuffer::next() simply returns nullopt until the
// frame's bytes have all arrived.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "net/channels.hpp"
#include "net/interference.hpp"

namespace acorn::service {

inline constexpr std::uint16_t kWireVersion = 2;
/// Upper bound on one frame's payload (a SnapshotFrame carrying a large
/// WLAN's full state is the largest legitimate body); anything bigger is
/// a garbage length prefix.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 23;

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

enum class MsgType : std::uint16_t {
  // Requests.
  kRegisterWlan = 1,
  kRemoveWlan = 2,
  kClientJoin = 3,
  kClientLeave = 4,
  kSnrUpdate = 5,
  kLoadUpdate = 6,
  kForceReconfigure = 7,
  kQueryConfig = 8,
  kQueryStats = 9,
  kShutdown = 10,
  kFollowLog = 11,
  // Responses.
  kOkReply = 100,
  kErrorReply = 101,
  kConfigReply = 102,
  kStatsReply = 103,
  // Replication stream (daemon -> follower, after a FollowLog request).
  kSnapshotFrame = 104,
  kLogRecordFrame = 105,
};

// ---- Requests -----------------------------------------------------------

/// Register a WLAN instance under `wlan_id`. `deployment` is a
/// sim/deployment_file.hpp description (APs, clients, pathloss, channel
/// plan, shadowing seed) — the same text a snapshot stores, so a
/// registered WLAN and a recovered one are built identically.
struct RegisterWlan {
  std::uint32_t wlan_id = 0;
  std::string deployment;
};

struct RemoveWlan {
  std::uint32_t wlan_id = 0;
};

/// Client `client` arrives: Algorithm 1 associates it immediately.
struct ClientJoin {
  std::uint32_t wlan_id = 0;
  std::uint32_t client = 0;
};

struct ClientLeave {
  std::uint32_t wlan_id = 0;
  std::uint32_t client = 0;
};

/// Measurement update: the AP->client path loss changed (mobility,
/// shadowing drift). Applied to the link budget; the next epoch sees it.
struct SnrUpdate {
  std::uint32_t wlan_id = 0;
  std::uint32_t ap = 0;
  std::uint32_t client = 0;
  double loss_db = 0.0;
};

/// Offered-load hint for a client (fraction of saturation), recorded in
/// the shard state and reported back through config queries.
struct LoadUpdate {
  std::uint32_t wlan_id = 0;
  std::uint32_t client = 0;
  double load = 1.0;
};

/// Run a reconfiguration epoch now instead of waiting for the period.
struct ForceReconfigure {
  std::uint32_t wlan_id = 0;
};

struct QueryConfig {
  std::uint32_t wlan_id = 0;
};

struct QueryStats {};

struct Shutdown {};

/// Subscribe this connection to the replication stream: the daemon
/// replies OkReply, then sends one SnapshotFrame per registered WLAN and
/// a LogRecordFrame for every durable event from that point on.
struct FollowLog {};

// ---- Responses ----------------------------------------------------------

/// Generic success. `value` carries the small result of the request when
/// there is one (the AP chosen by a join, -1 when none in range).
struct OkReply {
  std::int32_t value = 0;
};

struct ErrorReply {
  std::uint16_t code = 0;
  std::string text;
};

/// Error codes carried by ErrorReply.
enum class ErrorCode : std::uint16_t {
  kUnknownWlan = 1,
  kAlreadyRegistered = 2,
  kBadDeployment = 3,
  kBadArgument = 4,
};

/// Full controller state of one WLAN. `allocated` is the channel
/// allocation Algorithm 2 committed; `operating` is what each AP
/// currently transmits on after the opportunistic width fallback (a
/// bonded AP may operate on one 20 MHz half without changing the
/// interference it projects).
struct ConfigReply {
  std::uint32_t wlan_id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t events_applied = 0;
  double total_goodput_bps = 0.0;
  net::Association association;
  std::vector<net::Channel> allocated;
  std::vector<net::Channel> operating;
};

/// Daemon-wide observability counters (the `stats` request).
struct StatsReply {
  std::uint32_t num_wlans = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t events_total = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t epochs_total = 0;
  std::uint64_t snapshots_written = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t wal_flushes = 0;
  std::uint64_t channel_switches = 0;
  std::uint64_t width_switches = 0;
  std::uint64_t assoc_changes = 0;
  std::uint64_t alloc_evaluations = 0;
  std::uint64_t oracle_cell_evals = 0;
  std::uint64_t oracle_cell_hits = 0;
  std::uint64_t oracle_share_evals = 0;
  std::uint64_t oracle_share_hits = 0;
  double last_epoch_ms = 0.0;
  /// Per-request latency histogram: bucket i counts requests completed
  /// in [2^i, 2^(i+1)) microseconds (bucket 0 is < 2 us).
  std::vector<std::uint64_t> latency_us_log2;
  /// Group-commit observability. `wal_syncs` counts fdatasync calls
  /// that made records durable; `wal_coalesced_events` counts the
  /// records those syncs covered, so coalesced/syncs is the mean
  /// group-commit batch size.
  std::uint64_t wal_syncs = 0;
  std::uint64_t wal_coalesced_events = 0;
  /// fdatasync latency histogram, same log2-microsecond buckets as
  /// `latency_us_log2`.
  std::vector<std::uint64_t> wal_sync_us_log2;
  /// Group-commit batch-size distribution: bucket i counts syncs that
  /// covered [2^i, 2^(i+1)) records (bucket 0 is 1 record).
  std::vector<std::uint64_t> wal_batch_log2;
};

/// One WLAN's full state, as an encoded service::WlanSnapshot blob (the
/// snapshot codec carries its own checksum). Sent to a follower when it
/// subscribes and whenever a WLAN is (re)registered on the primary.
struct SnapshotFrame {
  std::vector<std::uint8_t> snapshot;
};

/// One durable WAL record forwarded to a follower: `payload` is a wire
/// payload (version/type/seq/body, no length prefix) of the mutating
/// message, `record_seq` its events-applied ordinal on the primary. A
/// RemoveWlan payload (record_seq 0) tears the WLAN down on the follower.
struct LogRecordFrame {
  std::uint32_t wlan_id = 0;
  std::uint64_t record_seq = 0;
  std::vector<std::uint8_t> payload;
};

using Message =
    std::variant<RegisterWlan, RemoveWlan, ClientJoin, ClientLeave, SnrUpdate,
                 LoadUpdate, ForceReconfigure, QueryConfig, QueryStats,
                 Shutdown, FollowLog, OkReply, ErrorReply, ConfigReply,
                 StatsReply, SnapshotFrame, LogRecordFrame>;

struct Frame {
  std::uint32_t seq = 0;
  Message msg;
};

MsgType type_of(const Message& msg);

// ---- Byte-level helpers (shared with the snapshot codec) ----------------

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void channel(const net::Channel& c);
  void bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  /// Length-prefixed byte blob (u32 count + raw bytes).
  void blob(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    bytes(b);
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked cursor over one payload; every read throws WireError
/// instead of walking off the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() {
    const auto b = take(2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }
  std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[static_cast<std::size_t>(i)];
    return v;
  }
  std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[static_cast<std::size_t>(i)];
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    const auto b = take(n);
    return std::string(b.begin(), b.end());
  }
  net::Channel channel();
  /// Length-prefixed byte blob; bounds-checked like every other read.
  std::vector<std::uint8_t> blob() {
    const std::uint32_t n = u32();
    const auto b = take(n);
    return std::vector<std::uint8_t>(b.begin(), b.end());
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  void expect_end() const {
    if (pos_ != data_.size()) throw WireError("trailing bytes in frame");
  }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (n > remaining()) throw WireError("truncated frame body");
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// ---- Frame codec --------------------------------------------------------

/// Encode one frame, length prefix included: ready to write to a socket.
std::vector<std::uint8_t> encode_frame(std::uint32_t seq, const Message& msg);

/// Encode a payload only (version/type/seq/body, no length prefix) —
/// the unit the write-ahead log stores and LogRecordFrame forwards.
std::vector<std::uint8_t> encode_payload(std::uint32_t seq,
                                         const Message& msg);

/// Decode one payload (the bytes *after* the length prefix). Throws
/// WireError on any malformation.
Frame decode_payload(std::span<const std::uint8_t> payload);

/// Reassembles frames from a byte stream. Append whatever the socket
/// produced; `next()` yields complete frames (throwing WireError on
/// malformed ones) and nullopt when more bytes are needed.
class FrameBuffer {
 public:
  void append(const std::uint8_t* data, std::size_t n);
  std::optional<Frame> next();
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace acorn::service
