#include "service/snapshot.hpp"

#include <cstdio>
#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "service/eventlog.hpp"
#include "service/wire.hpp"

namespace acorn::service {

namespace {

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

void encode_channels(ByteWriter& w, const std::vector<net::Channel>& cs) {
  w.u32(static_cast<std::uint32_t>(cs.size()));
  for (const net::Channel& c : cs) w.channel(c);
}

std::vector<net::Channel> decode_channels(ByteReader& r) {
  const std::uint32_t n = r.u32();
  if (5 * static_cast<std::size_t>(n) > r.remaining()) {
    throw WireError("snapshot channel count exceeds payload");
  }
  std::vector<net::Channel> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.channel());
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const WlanSnapshot& snap) {
  ByteWriter w;
  w.u32(kSnapshotMagic);
  w.u16(kSnapshotVersion);
  w.u32(snap.wlan_id);
  w.u64(snap.epoch);
  w.u64(snap.events_applied);
  w.str(snap.deployment);
  w.u32(static_cast<std::uint32_t>(snap.association.size()));
  for (int ap : snap.association) w.i32(ap);
  encode_channels(w, snap.allocated);
  encode_channels(w, snap.operating);
  w.u32(static_cast<std::uint32_t>(snap.loss_overrides.size()));
  for (const LossOverride& o : snap.loss_overrides) {
    w.u32(o.ap);
    w.u32(o.client);
    w.f64(o.loss_db);
  }
  w.u32(static_cast<std::uint32_t>(snap.loads.size()));
  for (const LoadHint& l : snap.loads) {
    w.u32(l.client);
    w.f64(l.load);
  }
  w.u32(static_cast<std::uint32_t>(snap.dirty_clients.size()));
  for (std::uint32_t c : snap.dirty_clients) w.u32(c);
  const std::uint64_t checksum = fnv1a(w.data());
  w.u64(checksum);
  return w.take();
}

WlanSnapshot decode_snapshot(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 8) throw WireError("snapshot too short");
  const std::span<const std::uint8_t> body = bytes.first(bytes.size() - 8);
  ByteReader trailer(bytes.subspan(bytes.size() - 8));
  if (trailer.u64() != fnv1a(body)) {
    throw WireError("snapshot checksum mismatch");
  }
  ByteReader r(body);
  if (r.u32() != kSnapshotMagic) throw WireError("bad snapshot magic");
  const std::uint16_t version = r.u16();
  if (version < 1 || version > kSnapshotVersion) {
    throw WireError("unsupported snapshot version " + std::to_string(version));
  }
  WlanSnapshot snap;
  snap.wlan_id = r.u32();
  snap.epoch = r.u64();
  snap.events_applied = r.u64();
  snap.deployment = r.str();
  const std::uint32_t n_assoc = r.u32();
  if (4 * static_cast<std::size_t>(n_assoc) > r.remaining()) {
    throw WireError("snapshot association count exceeds payload");
  }
  snap.association.reserve(n_assoc);
  for (std::uint32_t i = 0; i < n_assoc; ++i) {
    snap.association.push_back(r.i32());
  }
  snap.allocated = decode_channels(r);
  snap.operating = decode_channels(r);
  const std::uint32_t n_over = r.u32();
  if (16 * static_cast<std::size_t>(n_over) > r.remaining()) {
    throw WireError("snapshot override count exceeds payload");
  }
  snap.loss_overrides.reserve(n_over);
  for (std::uint32_t i = 0; i < n_over; ++i) {
    LossOverride o;
    o.ap = r.u32();
    o.client = r.u32();
    o.loss_db = r.f64();
    snap.loss_overrides.push_back(o);
  }
  const std::uint32_t n_loads = r.u32();
  if (12 * static_cast<std::size_t>(n_loads) > r.remaining()) {
    throw WireError("snapshot load count exceeds payload");
  }
  snap.loads.reserve(n_loads);
  for (std::uint32_t i = 0; i < n_loads; ++i) {
    LoadHint l;
    l.client = r.u32();
    l.load = r.f64();
    snap.loads.push_back(l);
  }
  if (version >= 2) {
    const std::uint32_t n_dirty = r.u32();
    if (4 * static_cast<std::size_t>(n_dirty) > r.remaining()) {
      throw WireError("snapshot dirty count exceeds payload");
    }
    snap.dirty_clients.reserve(n_dirty);
    for (std::uint32_t i = 0; i < n_dirty; ++i) {
      snap.dirty_clients.push_back(r.u32());
    }
  } else {
    // Version 1 predates the dirty-client set. Rejecting it would
    // silently drop every persisted pre-upgrade WLAN on first restart;
    // instead accept it and — having lost the record of *which* links
    // changed — conservatively mark every client dirty so the first
    // post-upgrade epoch re-probes them all.
    snap.dirty_clients.reserve(snap.association.size());
    for (std::uint32_t c = 0;
         c < static_cast<std::uint32_t>(snap.association.size()); ++c) {
      snap.dirty_clients.push_back(c);
    }
  }
  r.expect_end();
  return snap;
}

std::string snapshot_path(const std::string& dir, std::uint32_t wlan_id) {
  return dir + "/wlan_" + std::to_string(wlan_id) + ".snap";
}

bool write_snapshot(const std::string& dir, const WlanSnapshot& snap) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(snap);
  const std::string path = snapshot_path(dir, snap.wlan_id);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  // Durability before visibility: the data must be on disk before the
  // rename publishes it, or a power cut could expose an empty file.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // The rename only updated the directory, and fsync on the file does
  // not persist its directory entry: without this a power cut can roll
  // the directory back to the *old* snapshot after the caller has
  // already truncated the WAL records that bridged the two.
  return fsync_dir(dir);
}

void remove_snapshot(const std::string& dir, std::uint32_t wlan_id) {
  const std::string path = snapshot_path(dir, wlan_id);
  ::unlink(path.c_str());
  ::unlink((path + ".tmp").c_str());
}

std::vector<WlanSnapshot> load_snapshots(const std::string& dir) {
  std::vector<WlanSnapshot> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() < 6 || name.compare(0, 5, "wlan_") != 0 ||
        name.compare(name.size() - 5, 5, ".snap") != 0) {
      continue;
    }
    const std::string path = dir + "/" + name;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) continue;
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.insert(bytes.end(), buf, buf + n);
    }
    std::fclose(f);
    try {
      out.push_back(decode_snapshot(bytes));
    } catch (const WireError& e) {
      std::fprintf(stderr, "acornd: skipping corrupt snapshot %s: %s\n",
                   path.c_str(), e.what());
    }
  }
  ::closedir(d);
  return out;
}

}  // namespace acorn::service
