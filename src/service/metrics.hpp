// Built-in observability for acornd: a lock-free log2 latency histogram
// and the daemon-wide event counters. Everything is std::atomic with
// relaxed ordering — the counters are statistics, not synchronization,
// and the event loop must never stall on them.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <vector>

namespace acorn::service {

/// Log2-bucketed latency histogram: bucket i counts samples whose
/// microsecond value v satisfies 2^i <= v+1 < 2^(i+1) (bucket 0 holds
/// sub-microsecond completions). 32 buckets cover ~1 hour.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(std::chrono::steady_clock::duration d) {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(d)
                        .count();
    record_us(us < 0 ? 0 : static_cast<std::uint64_t>(us));
  }

  void record_us(std::uint64_t us) {
    const int bucket = 63 - std::countl_zero(us | 1);
    buckets_[static_cast<std::size_t>(
                 bucket >= static_cast<int>(kBuckets)
                     ? static_cast<int>(kBuckets) - 1
                     : bucket)]
        .fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<std::uint64_t> snapshot() const {
    std::vector<std::uint64_t> out(kBuckets);
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Daemon-wide counters; shard-local counters (epochs, switches, oracle
/// hits) live in the shards and are aggregated at stats time.
struct ServiceMetrics {
  std::atomic<std::uint64_t> frames_rx{0};
  std::atomic<std::uint64_t> events_total{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  LatencyHistogram request_latency;
};

}  // namespace acorn::service
