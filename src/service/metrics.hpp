// Built-in observability for acornd: a lock-free log2 latency histogram
// and the daemon-wide event counters. Everything is std::atomic with
// relaxed ordering — the counters are statistics, not synchronization,
// and the event loop must never stall on them.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <vector>

namespace acorn::service {

/// Log2-bucketed latency histogram: bucket i counts samples whose
/// microsecond value v satisfies 2^i <= v+1 < 2^(i+1) (bucket 0 holds
/// sub-microsecond completions). 32 buckets cover ~1 hour.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(std::chrono::steady_clock::duration d) {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(d)
                        .count();
    record_us(us < 0 ? 0 : static_cast<std::uint64_t>(us));
  }

  void record_us(std::uint64_t us) {
    const int bucket = 63 - std::countl_zero(us | 1);
    buckets_[static_cast<std::size_t>(
                 bucket >= static_cast<int>(kBuckets)
                     ? static_cast<int>(kBuckets) - 1
                     : bucket)]
        .fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<std::uint64_t> snapshot() const {
    std::vector<std::uint64_t> out(kBuckets);
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Approximate p-quantile (p in [0, 1]) in microseconds from a log2
/// histogram snapshot: the upper edge of the bucket holding the
/// quantile sample, 0 when the histogram is empty. Good to a factor of
/// two — enough for the fleet dashboards and --log lines it feeds.
inline double latency_percentile_us(const std::vector<std::uint64_t>& buckets,
                                    double p) {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  const double target = p * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (static_cast<double>(seen) >= target) {
      return static_cast<double>(1ull << (i + 1));
    }
  }
  return static_cast<double>(1ull << buckets.size());
}

/// Daemon-wide counters; shard-local counters (epochs, switches, oracle
/// hits) live in the shards and are aggregated at stats time.
struct ServiceMetrics {
  std::atomic<std::uint64_t> frames_rx{0};
  std::atomic<std::uint64_t> events_total{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  LatencyHistogram request_latency;
  /// Wall time of completed reconfiguration epochs across all shards
  /// (pooled workers and dedicated threads record into the same
  /// histogram).
  LatencyHistogram epoch_latency;
  /// Group-commit observability, fed by every WAL fsync in either mode
  /// (per-shard WalWriter flushes and shared-segment SyncCoordinator
  /// commits alike): how many fsyncs hit the device, how many logged
  /// events each one acknowledged, and how long the write+sync took.
  std::atomic<std::uint64_t> wal_syncs{0};
  std::atomic<std::uint64_t> wal_coalesced_events{0};
  /// Distribution of events-acknowledged-per-fsync (the coalescing
  /// factor; recorded via record_us with the batch size as the value).
  LatencyHistogram wal_batch_events;
  /// Wall time of each WAL write+fdatasync.
  LatencyHistogram wal_sync_latency;
};

}  // namespace acorn::service
